// Diffs two BENCH_<target>.json files (written by bench/bench_common's
// JsonReport) with a numeric tolerance, so perf work can assert "the table
// values did not move" across commits or thread counts.
//
// Usage:
//   tamp_bench_compare [--tol X] [--strict-timing] [--expect-diff] A B
//
// Metric keys must match within the relative tolerance (default 1e-12:
// bit-identical modulo printing); a metric present in only one file is a
// failure. Timing keys — "threads", everything under "stages.", and any
// key with a dot-separated component ending in "_s" (the repo convention
// for wall-clock seconds: a table's TT column, or the "obs" section's
// duration histograms like obs.sim.assign_s.le_0.001) — are reported but
// never fail the comparison unless --strict-timing is given: wall clock is
// machine-dependent, table values and the obs work counts are not.
// --expect-diff inverts the exit code (self-test of the tool itself,
// mirroring the lint gate's --expect-violations).
//
// Exit code 0 when metrics match (inverted under --expect-diff), 1 when
// they differ, 2 on usage / IO / parse errors.
//
// The parser handles exactly the restricted schema JsonReport emits — a
// flat object of string / number / one-level object-of-number values — by
// design: no third-party JSON dependency, runs anywhere the toolchain runs.

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  explicit Parser(const std::string& t) : text(t) {}

  void SkipSpace() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool Fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at offset " + std::to_string(pos);
    }
    return false;
  }

  bool Expect(char c) {
    SkipSpace();
    if (pos >= text.size() || text[pos] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }

  bool ParseString(std::string* out) {
    SkipSpace();
    if (pos >= text.size() || text[pos] != '"') return Fail("expected string");
    ++pos;
    out->clear();
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) {
        ++pos;  // JsonEscape only emits \" and \\ (and \n etc. pass through).
      }
      out->push_back(text[pos]);
      ++pos;
    }
    if (pos >= text.size()) return Fail("unterminated string");
    ++pos;
    return true;
  }

  bool ParseNumber(double* out) {
    SkipSpace();
    const char* start = text.c_str() + pos;
    char* end = nullptr;
    *out = std::strtod(start, &end);
    if (end == start) return Fail("expected number");
    pos += static_cast<std::size_t>(end - start);
    return true;
  }
};

/// One parsed report: the flattened numeric view ("threads", "stages.X",
/// "metrics.Y" -> value) plus the string fields ("target").
struct Report {
  std::map<std::string, double> numbers;
  std::map<std::string, std::string> strings;
};

bool ParseReport(Parser& p, Report* out) {
  if (!p.Expect('{')) return false;
  p.SkipSpace();
  if (p.pos < p.text.size() && p.text[p.pos] == '}') {
    ++p.pos;
    return true;
  }
  while (true) {
    std::string key;
    if (!p.ParseString(&key)) return false;
    if (!p.Expect(':')) return false;
    p.SkipSpace();
    if (p.pos >= p.text.size()) return p.Fail("truncated value");
    const char c = p.text[p.pos];
    if (c == '"') {
      std::string value;
      if (!p.ParseString(&value)) return false;
      out->strings[key] = value;
    } else if (c == '{') {
      ++p.pos;
      p.SkipSpace();
      if (p.pos < p.text.size() && p.text[p.pos] == '}') {
        ++p.pos;
      } else {
        while (true) {
          std::string inner;
          double value = 0.0;
          if (!p.ParseString(&inner)) return false;
          if (!p.Expect(':')) return false;
          if (!p.ParseNumber(&value)) return false;
          out->numbers[key + "." + inner] = value;
          p.SkipSpace();
          if (p.pos < p.text.size() && p.text[p.pos] == ',') {
            ++p.pos;
            continue;
          }
          break;
        }
        if (!p.Expect('}')) return false;
      }
    } else {
      double value = 0.0;
      if (!p.ParseNumber(&value)) return false;
      out->numbers[key] = value;
    }
    p.SkipSpace();
    if (p.pos < p.text.size() && p.text[p.pos] == ',') {
      ++p.pos;
      continue;
    }
    break;
  }
  return p.Expect('}');
}

bool LoadReport(const std::string& path, Report* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "could not read " + path;
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  Parser p(text);
  if (!ParseReport(p, out)) {
    *error = path + ": " + p.error;
    return false;
  }
  return true;
}

bool IsTimingKey(const std::string& key) {
  if (key == "threads" || key.rfind("stages.", 0) == 0) return true;
  // Wall-clock-derived values carry an `_s` name component: either the key
  // itself ends in `_s` (a seconds-valued cell), or some dotted component
  // does (a duration histogram's .count/.sum/.le_* sub-keys, e.g.
  // obs.km.solve_s.le_0.001).
  std::size_t start = 0;
  while (start <= key.size()) {
    std::size_t dot = key.find('.', start);
    if (dot == std::string::npos) dot = key.size();
    if (dot - start >= 2 && key.compare(dot - 2, 2, "_s") == 0) return true;
    start = dot + 1;
  }
  return false;
}

bool WithinTolerance(double a, double b, double tol) {
  const double scale =
      std::max(1.0, std::max(std::fabs(a), std::fabs(b)));
  return std::fabs(a - b) <= tol * scale;
}

}  // namespace

int main(int argc, char** argv) {
  double tol = 1e-12;
  bool strict_timing = false;
  bool expect_diff = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--tol") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_compare: --tol needs a value\n");
        return 2;
      }
      tol = std::strtod(argv[++i], nullptr);
    } else if (a == "--strict-timing") {
      strict_timing = true;
    } else if (a == "--expect-diff") {
      expect_diff = true;
    } else {
      paths.push_back(a);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: tamp_bench_compare [--tol X] [--strict-timing] "
                 "[--expect-diff] <a.json> <b.json>\n");
    return 2;
  }

  Report a, b;
  std::string error;
  if (!LoadReport(paths[0], &a, &error) || !LoadReport(paths[1], &b, &error)) {
    std::fprintf(stderr, "bench_compare: %s\n", error.c_str());
    return 2;
  }

  int metric_diffs = 0;
  int timing_diffs = 0;
  auto report_diff = [&](const std::string& key, const char* what) {
    const bool timing = IsTimingKey(key);
    (timing ? timing_diffs : metric_diffs) += 1;
    std::fprintf(stderr, "%s%s: %s\n", timing ? "(timing) " : "", key.c_str(),
                 what);
  };

  // Union of keys, walked in order (both maps are sorted).
  auto ia = a.numbers.begin();
  auto ib = b.numbers.begin();
  while (ia != a.numbers.end() || ib != b.numbers.end()) {
    if (ib == b.numbers.end() ||
        (ia != a.numbers.end() && ia->first < ib->first)) {
      report_diff(ia->first, "only in first file");
      ++ia;
    } else if (ia == a.numbers.end() || ib->first < ia->first) {
      report_diff(ib->first, "only in second file");
      ++ib;
    } else {
      if (!WithinTolerance(ia->second, ib->second, tol)) {
        char buf[160];
        std::snprintf(buf, sizeof(buf), "%.17g vs %.17g (|delta| = %.3g)",
                      ia->second, ib->second,
                      std::fabs(ia->second - ib->second));
        report_diff(ia->first, buf);
      }
      ++ia;
      ++ib;
    }
  }

  const std::size_t compared = a.numbers.size();
  std::fprintf(stderr,
               "bench_compare: %zu keys, %d metric diff(s), %d timing "
               "diff(s), tol %.3g\n",
               compared, metric_diffs, timing_diffs, tol);

  const bool failed = metric_diffs > 0 || (strict_timing && timing_diffs > 0);
  if (expect_diff) return failed ? 0 : 1;
  return failed ? 1 : 0;
}
