// Dependency-free repo lint gate. Enforces TAMP source conventions:
//
//   1. Every header (.h) starts with #pragma once.
//   2. No using-directives ("using namespace") in headers.
//   3. No raw ==/!= against floating-point literals (use a tolerance).
//   4. No rand()/srand()/unseeded std RNG outside src/common/rng.
//   5. No raw std::thread / std::jthread / std::async outside
//      src/common/parallel (the deterministic runtime owns all threads).
//   6. No raw std::chrono clocks outside src/common/ (Stopwatch and the
//      obs trace recorder own all time reads; scattered clock calls make
//      timing untraceable and are invisible to the observability layer).
//
// Usage:
//   tamp_lint <repo_root> [subdir...]         lint subdirs (default: src
//                                             tests tools bench examples)
//   tamp_lint --expect-violations <root> ...  invert exit code (self-test)
//
// Exit code 0 when clean, 1 when violations were found (inverted under
// --expect-violations), 2 on usage/IO errors.
//
// The rules are lexical by design: no compiler, no AST, no third-party
// dependencies, so the gate runs anywhere the toolchain runs. Lines can be
// exempted with a trailing "lint:allow" comment when an exact float compare
// or similar is deliberate.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;
  std::size_t line;
  std::string rule;
  std::string detail;
};

// Rule needles are assembled at runtime so the lint binary's own source does
// not trip the rules it enforces.
const std::string kUsingNamespace = std::string("using ") + "namespace";
const std::string kPragmaOnce = std::string("#pragma") + " once";
const std::string kAllowMarker = std::string("lint:") + "allow";

/// Strips // and /* */ comments and the contents of string/char literals,
/// preserving line structure so reported line numbers stay correct.
std::string StripCommentsAndStrings(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = (i + 1 < text.size()) ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          state = State::kString;
          out.push_back(c);
        } else if (c == '\'') {
          state = State::kChar;
          out.push_back(c);
        } else {
          out.push_back(c);
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out.push_back(c);
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else if (c == '\n') {
          out.push_back(c);
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out.push_back(c);
        } else if (c == '\n') {
          state = State::kCode;  // unterminated; recover per line
          out.push_back(c);
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out.push_back(c);
        } else if (c == '\n') {
          state = State::kCode;
          out.push_back(c);
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool IsHeader(const fs::path& p) { return p.extension() == ".h"; }

bool IsSource(const fs::path& p) {
  const auto ext = p.extension();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

// Float literal: 1.0, .5, 2., 1e-3, 1.5e+2f — with optional f/F/l/L suffix.
const char* kFloatLit =
    R"((?:\d+\.\d*|\.\d+|\d+[eE][-+]?\d+)(?:[eE][-+]?\d+)?[fFlL]?)";

const std::regex& FloatEqRegex() {
  // ==/!= with a float literal on either side. Negative lookbehind is not
  // available in std::regex, so <=/>= are excluded by requiring the char
  // before == to not be <, >, !, or = when the literal is on the right.
  static const std::regex re(
      std::string(R"((?:^|[^<>!=])(==|!=)\s*[-+]?)") + kFloatLit +
      std::string(R"(|)") + kFloatLit + std::string(R"(\s*(==|!=)[^=])"));
  return re;
}

const std::regex& RawRandRegex() {
  // rand( / srand( / random_shuffle as standalone tokens, plus the
  // implementation-defined default_random_engine.
  static const std::regex re(
      R"((^|[^\w:])(s?rand\s*\(|random_shuffle|default_random_engine))");
  return re;
}

const std::regex& RawThreadRegex() {
  // std::thread / std::jthread objects and std::async launches. Matching
  // the qualified names keeps `std::this_thread::` (sleep/yield) and the
  // <thread> include legal; only thread *creation* is restricted.
  static const std::regex re(
      R"((^|[^\w:])std\s*::\s*(j?thread\b|async\s*\())");
  return re;
}

const std::regex& RawClockRegex() {
  // std::chrono::steady_clock / system_clock / high_resolution_clock.
  // Durations and <chrono> itself stay legal; only clock *reads* funnel
  // through src/common/ (Stopwatch, obs::TraceRecorder).
  static const std::regex re(
      R"(std\s*::\s*chrono\s*::\s*(steady_clock|system_clock|high_resolution_clock)\b)");
  return re;
}

bool LineAllowed(const std::string& raw_line) {
  return raw_line.find(kAllowMarker) != std::string::npos;
}

void LintFile(const fs::path& path, const std::string& rel,
              std::vector<Violation>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out->push_back({rel, 0, "io", "could not read file"});
    return;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const std::string code = StripCommentsAndStrings(text);
  const std::vector<std::string> raw_lines = SplitLines(text);
  const std::vector<std::string> code_lines = SplitLines(code);

  const bool header = IsHeader(path);
  // Exemption: the RNG wrapper module is the one place allowed to touch raw
  // generators; its job is to seed them.
  const bool rng_module = rel.find("src/common/rng") != std::string::npos;
  // Exemption: the deterministic parallel runtime is the one place allowed
  // to create threads; everything else goes through ParallelFor/Map.
  const bool parallel_module =
      rel.find("src/common/parallel") != std::string::npos;
  // Exemption: src/common/ owns all clock reads (Stopwatch, the obs trace
  // recorder); everything else measures time through those.
  const bool common_module = rel.find("src/common/") != std::string::npos;

  if (header && code.find(kPragmaOnce) == std::string::npos) {
    out->push_back({rel, 1, "pragma-once",
                    std::string("header missing '") + kPragmaOnce + "'"});
  }

  for (std::size_t i = 0; i < code_lines.size(); ++i) {
    const std::string& line = code_lines[i];
    const std::string& raw =
        (i < raw_lines.size()) ? raw_lines[i] : code_lines[i];
    if (LineAllowed(raw)) continue;

    if (header && line.find(kUsingNamespace) != std::string::npos) {
      out->push_back({rel, i + 1, "using-namespace-in-header",
                      "using-directive in a header leaks into every "
                      "includer; use explicit qualification"});
    }
    if (std::regex_search(line, FloatEqRegex())) {
      out->push_back({rel, i + 1, "float-equality",
                      "raw ==/!= against a floating-point literal; compare "
                      "with a tolerance or mark the line lint" +
                          std::string(":allow")});
    }
    if (!rng_module && std::regex_search(line, RawRandRegex())) {
      out->push_back({rel, i + 1, "raw-rng",
                      "raw/unseeded RNG outside src/common/rng; use "
                      "tamp::common::Rng for reproducibility"});
    }
    if (!parallel_module && std::regex_search(line, RawThreadRegex())) {
      out->push_back({rel, i + 1, "raw-thread",
                      "raw std::thread/std::async outside "
                      "src/common/parallel; use tamp::ParallelFor so runs "
                      "stay deterministic and TAMP_THREADS-controlled"});
    }
    if (!common_module && std::regex_search(line, RawClockRegex())) {
      out->push_back({rel, i + 1, "raw-clock",
                      "raw std::chrono clock outside src/common/; use "
                      "tamp::Stopwatch or obs::TraceSpan so timings reach "
                      "the observability layer"});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool expect_violations = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--expect-violations") {
      expect_violations = true;
    } else {
      args.push_back(a);
    }
  }
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: tamp_lint [--expect-violations] <root> [subdir...]\n");
    return 2;
  }

  const fs::path root = args[0];
  std::vector<std::string> subdirs(args.begin() + 1, args.end());
  if (subdirs.empty()) {
    subdirs = {"src", "tests", "tools", "bench", "examples"};
  }

  std::vector<Violation> violations;
  std::size_t files_scanned = 0;
  for (const std::string& sub : subdirs) {
    const fs::path dir = root / sub;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !IsSource(entry.path())) continue;
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      // The lint self-test corpus is deliberately full of violations.
      if (!expect_violations &&
          rel.find("tools/lint/testdata") != std::string::npos) {
        continue;
      }
      ++files_scanned;
      LintFile(entry.path(), rel, &violations);
    }
  }

  for (const Violation& v : violations) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.detail.c_str());
  }
  std::fprintf(stderr, "tamp_lint: scanned %zu files, %zu violation(s)\n",
               files_scanned, violations.size());

  if (files_scanned == 0) {
    std::fprintf(stderr, "tamp_lint: no files scanned (bad root?)\n");
    return 2;
  }
  const bool failed = !violations.empty();
  if (expect_violations) return failed ? 0 : 1;
  return failed ? 1 : 0;
}
