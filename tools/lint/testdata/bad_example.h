// Seeded-violation corpus for the lint self-test. Every rule the lint gate
// enforces is deliberately violated below; the self-test asserts the gate
// still catches them. This directory is skipped by normal lint runs.

// violation: header does not contain a pragma-once line.

#include <cstdlib>

using namespace std;  // violation: using-directive in a header.

namespace tamp_testdata {

inline bool ExactCompare(double x) {
  return x == 0.0;  // violation: raw float equality.
}

inline int UnseededDraw() {
  return rand();  // violation: raw RNG outside src/common/rng.
}

}  // namespace tamp_testdata
