// Seeded violation corpus: raw std::chrono clock reads outside src/common/.
// The lint gate's self-test expects the raw-clock rule to fire on each.
#include <chrono>

double NowSeconds() {
  auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

long SystemMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

double HighResSeconds() {
  auto t = std::chrono::high_resolution_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
