// Lint self-test corpus: every line below must trip the raw-thread rule.
// (Not compiled; scanned by the lint_self_test ctest entry.)
#include <future>
#include <thread>

void SpawnsRawThreads() {
  std::thread t([] {});               // violation: raw-thread
  std::jthread jt([] {});             // violation: raw-thread
  auto f = std::async([] { return 1; });  // violation: raw-thread
  t.join();
  (void)f;
}

void AllowedUses() {
  std::this_thread::yield();  // legal: not thread creation
  // A mention of std::thread inside a comment is legal too.
}
