#include "analysis.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

namespace tamp::analyze {
namespace {

// Needles are assembled at runtime so the analyzer's own source does not
// carry live markers (a literal marker in this file would register as a
// suppression site on its own line).
const std::string kAllowMarker = std::string("lint:") + "allow";
const std::string kPathDirective = std::string("analyze:") + "path=";

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when text[quote] == '"' opens a raw string literal: preceded by R
/// with an optional u8/u/U/L encoding prefix at an identifier boundary.
bool IsRawStringStart(const std::string& text, std::size_t quote) {
  if (quote == 0 || text[quote - 1] != 'R') return false;
  std::size_t start = quote - 1;  // Index of 'R'.
  if (start >= 2 && text[start - 1] == '8' && text[start - 2] == 'u') {
    start -= 2;
  } else if (start >= 1 && (text[start - 1] == 'u' || text[start - 1] == 'U' ||
                            text[start - 1] == 'L')) {
    start -= 1;
  }
  // `kFooR"..."` is not a raw string (and not valid C++ either); require a
  // non-identifier character before the prefix.
  return start == 0 || !IsIdentChar(text[start - 1]);
}

}  // namespace

const char* SeverityName(Severity s) {
  return s == Severity::kError ? "error" : "warn";
}

std::string StripCommentsAndStrings(const std::string& text, StripMode mode) {
  const bool keep_literals = mode == StripMode::kCommentsOnly;
  // Length-preserving: every stripped character becomes a space (newlines
  // stay newlines), so byte offsets — and therefore LineOfPos — are shared
  // by the raw text and every stripped view.
  std::string out;
  out.reserve(text.size());
  const auto blank = [&out](char c) { out.push_back(c == '\n' ? '\n' : ' '); };
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = (i + 1 < text.size()) ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out.append("  ");
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out.append("  ");
          ++i;
        } else if (c == '"' && IsRawStringStart(text, i)) {
          // R"delim( ... )delim" — no escapes apply inside; scan for the
          // exact closing sequence so a ')' or '"' in the contents cannot
          // desync later lines.
          std::size_t p = i + 1;
          std::string delim;
          while (p < text.size() && text[p] != '(' &&
                 delim.size() < 16) {  // 16: the standard's delimiter cap.
            delim.push_back(text[p]);
            ++p;
          }
          const std::string closer = ")" + delim + "\"";
          const std::size_t close = text.find(closer, p);
          const std::size_t end =
              (close == std::string::npos) ? text.size() - 1
                                           : close + closer.size() - 1;
          out.push_back('"');
          for (std::size_t k = i + 1; k < end; ++k) {
            if (keep_literals) {
              out.push_back(text[k]);
            } else {
              blank(text[k]);
            }
          }
          if (end > i) {
            if (close == std::string::npos) {
              blank(text[end]);
            } else {
              out.push_back('"');
            }
          }
          i = end;
        } else if (c == '"') {
          state = State::kString;
          out.push_back(c);
        } else if (c == '\'') {
          state = State::kChar;
          out.push_back(c);
        } else {
          out.push_back(c);
        }
        break;
      case State::kLineComment:
        if (c == '\n') state = State::kCode;
        blank(c);
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out.append("  ");
          ++i;
        } else {
          blank(c);
        }
        break;
      case State::kString:
        if (c == '\\') {
          if (keep_literals) {
            out.push_back(c);
            if (i + 1 < text.size()) out.push_back(text[i + 1]);
          } else {
            out.push_back(' ');
            if (i + 1 < text.size()) blank(next);
          }
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out.push_back(c);
        } else if (c == '\n') {
          state = State::kCode;  // Unterminated; recover per line.
          out.push_back(c);
        } else if (keep_literals) {
          out.push_back(c);
        } else {
          blank(c);
        }
        break;
      case State::kChar:
        if (c == '\\') {
          if (keep_literals) {
            out.push_back(c);
            if (i + 1 < text.size()) out.push_back(text[i + 1]);
          } else {
            out.push_back(' ');
            if (i + 1 < text.size()) blank(next);
          }
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out.push_back(c);
        } else if (c == '\n') {
          state = State::kCode;
          out.push_back(c);
        } else if (keep_literals) {
          out.push_back(c);
        } else {
          blank(c);
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::size_t FileContext::LineOfPos(std::size_t pos) const {
  if (line_starts_.empty()) {
    line_starts_.push_back(0);
    for (std::size_t i = 0; i < text.size(); ++i) {
      if (text[i] == '\n') line_starts_.push_back(i + 1);
    }
  }
  auto it =
      std::upper_bound(line_starts_.begin(), line_starts_.end(), pos);
  return static_cast<std::size_t>(it - line_starts_.begin());
}

bool FileContext::InDir(std::string_view prefix) const {
  return scope_path.rfind(prefix, 0) == 0;
}

namespace {

/// Parses a lint:allow marker's optional (rule, rule, ...) argument list.
AllowSpec ParseAllowSpec(const std::string& line, std::size_t marker_end) {
  AllowSpec spec;
  std::size_t p = marker_end;
  while (p < line.size() && line[p] == ' ') ++p;
  if (p >= line.size() || line[p] != '(') {
    spec.all = true;  // Legacy bare form.
    return spec;
  }
  ++p;
  std::string name;
  for (; p < line.size() && line[p] != ')'; ++p) {
    const char c = line[p];
    if (IsIdentChar(c) || c == '-') {
      name.push_back(c);
    } else if (!name.empty()) {
      spec.rules.insert(name);
      name.clear();
    }
  }
  if (!name.empty()) spec.rules.insert(name);
  if (spec.rules.empty()) spec.all = true;  // Empty parens == bare form.
  return spec;
}

}  // namespace

FileContext MakeFileContext(std::string rel_path, std::string text) {
  FileContext ctx;
  ctx.rel_path = std::move(rel_path);
  ctx.scope_path = ctx.rel_path;
  ctx.is_header = ctx.rel_path.size() >= 2 &&
                  ctx.rel_path.compare(ctx.rel_path.size() - 2, 2, ".h") == 0;
  ctx.text = std::move(text);
  ctx.code = StripCommentsAndStrings(ctx.text, StripMode::kCommentsAndStrings);
  ctx.text_nc = StripCommentsAndStrings(ctx.text, StripMode::kCommentsOnly);
  ctx.raw_lines = SplitLines(ctx.text);
  ctx.code_lines = SplitLines(ctx.code);
  ctx.nc_lines = SplitLines(ctx.text_nc);

  for (std::size_t i = 0; i < ctx.raw_lines.size(); ++i) {
    const std::string& line = ctx.raw_lines[i];
    const std::size_t at = line.find(kAllowMarker);
    if (at == std::string::npos) continue;
    // A marker on a pure-comment line can never suppress anything
    // (findings attach to code), so the token there is prose — e.g. docs
    // *about* the marker — not a suppression site.
    if (i < ctx.code_lines.size() &&
        ctx.code_lines[i].find_first_not_of(" \t") == std::string::npos) {
      continue;
    }
    ctx.allows[i + 1] = ParseAllowSpec(line, at + kAllowMarker.size());
  }

  // Testdata files can pretend to live at a scoped path so path-scoped
  // rules (unordered-iteration, the obs contract) fire on them; the
  // directive is ignored everywhere else, so real code cannot relocate
  // itself out of a rule's scope.
  if (ctx.rel_path.find("testdata") != std::string::npos) {
    const std::size_t scan = std::min<std::size_t>(ctx.raw_lines.size(), 5);
    for (std::size_t i = 0; i < scan; ++i) {
      const std::string& line = ctx.raw_lines[i];
      const std::size_t at = line.find(kPathDirective);
      if (at == std::string::npos) continue;
      std::size_t start = at + kPathDirective.size();
      std::size_t end = start;
      while (end < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[end]))) {
        ++end;
      }
      if (end > start) ctx.scope_path = line.substr(start, end - start);
      break;
    }
  }
  return ctx;
}

void Emitter::Report(const FileContext& file, std::size_t line,
                     const Rule& rule, std::string detail) {
  findings_.push_back({file.rel_path, line, std::string(rule.name()),
                       rule.severity(), std::move(detail)});
}

void Emitter::ReportAt(std::string file, std::size_t line, const Rule& rule,
                       std::string detail) {
  findings_.push_back({std::move(file), line, std::string(rule.name()),
                       rule.severity(), std::move(detail)});
}

void Rule::CheckFile(const FileContext&, const Corpus&, Emitter*) {}
void Rule::Finish(const Corpus&, Emitter*) {}
void Rule::PostSuppression(const Corpus&, const std::vector<UnusedAllow>&,
                           Emitter*) {}

RuleRegistry& RuleRegistry::Global() {
  static RuleRegistry* registry = new RuleRegistry;
  return *registry;
}

bool RuleRegistry::Register(std::unique_ptr<Rule> rule) {
  owned_.push_back(std::move(rule));
  sorted_.clear();
  return true;
}

const std::vector<Rule*>& RuleRegistry::rules() const {
  if (sorted_.size() != owned_.size()) {
    sorted_.clear();
    for (const auto& r : owned_) sorted_.push_back(r.get());
    std::sort(sorted_.begin(), sorted_.end(), [](Rule* a, Rule* b) {
      return a->name() < b->name();
    });
  }
  return sorted_;
}

Rule* RuleRegistry::Find(std::string_view name) const {
  for (Rule* r : rules()) {
    if (r->name() == name) return r;
  }
  return nullptr;
}

AnalysisResult RunAnalysis(const Corpus& corpus) {
  Emitter emitter;
  const std::vector<Rule*>& rules = RuleRegistry::Global().rules();
  for (const FileContext& file : corpus.files) {
    for (Rule* rule : rules) rule->CheckFile(file, corpus, &emitter);
  }
  for (Rule* rule : rules) rule->Finish(corpus, &emitter);

  // Suppression: a finding on a line carrying lint:allow (bare) or
  // lint:allow(<its rule>) is dropped; each marker remembers whether it
  // suppressed anything.
  std::map<std::string, const FileContext*> by_path;
  for (const FileContext& file : corpus.files) by_path[file.rel_path] = &file;
  std::set<std::pair<std::string, std::size_t>> used_allows;

  AnalysisResult result;
  for (Finding& f : emitter.findings()) {
    const FileContext* file = nullptr;
    if (auto it = by_path.find(f.file); it != by_path.end()) {
      file = it->second;
    }
    bool suppressed = false;
    if (file != nullptr) {
      if (auto it = file->allows.find(f.line); it != file->allows.end()) {
        const AllowSpec& spec = it->second;
        if (spec.all || spec.rules.count(f.rule) > 0) {
          suppressed = true;
          used_allows.insert({f.file, f.line});
        }
      }
    }
    if (suppressed) {
      ++result.suppressed;
    } else {
      result.findings.push_back(std::move(f));
    }
  }

  std::vector<UnusedAllow> unused;
  for (const FileContext& file : corpus.files) {
    for (const auto& [line, spec] : file.allows) {
      if (used_allows.count({file.rel_path, line}) == 0) {
        unused.push_back({file.rel_path, line, &spec});
      }
    }
  }
  Emitter post;
  for (Rule* rule : rules) rule->PostSuppression(corpus, unused, &post);
  for (Finding& f : post.findings()) result.findings.push_back(std::move(f));

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.detail) <
                     std::tie(b.file, b.line, b.rule, b.detail);
            });
  for (const Finding& f : result.findings) {
    if (f.severity == Severity::kError) {
      ++result.errors;
    } else {
      ++result.warnings;
    }
  }
  return result;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Minimal parser for the restricted schema FindingsToJson emits (the
/// bench_compare idiom: no third-party JSON dependency).
struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  explicit Parser(const std::string& t) : text(t) {}

  void SkipSpace() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  }

  bool Fail(const std::string& what) {
    if (error.empty()) error = what + " at offset " + std::to_string(pos);
    return false;
  }

  bool Expect(char c) {
    SkipSpace();
    if (pos >= text.size() || text[pos] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }

  bool Peek(char c) {
    SkipSpace();
    return pos < text.size() && text[pos] == c;
  }

  bool ParseString(std::string* out) {
    SkipSpace();
    if (pos >= text.size() || text[pos] != '"') return Fail("expected string");
    ++pos;
    out->clear();
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos];
      if (c == '\\' && pos + 1 < text.size()) {
        ++pos;
        const char esc = text[pos];
        if (esc == 'n') {
          c = '\n';
        } else if (esc == 't') {
          c = '\t';
        } else if (esc == 'u' && pos + 4 < text.size()) {
          c = static_cast<char>(
              std::strtol(text.substr(pos + 1, 4).c_str(), nullptr, 16));
          pos += 4;
        } else {
          c = esc;  // \" and \\ pass through.
        }
      }
      out->push_back(c);
      ++pos;
    }
    if (pos >= text.size()) return Fail("unterminated string");
    ++pos;
    return true;
  }

  bool ParseNumber(double* out) {
    SkipSpace();
    const char* start = text.c_str() + pos;
    char* end = nullptr;
    *out = std::strtod(start, &end);
    if (end == start) return Fail("expected number");
    pos += static_cast<std::size_t>(end - start);
    return true;
  }
};

}  // namespace

std::string FindingsToJson(const AnalysisResult& result,
                           std::size_t files_scanned) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"tool\": \"tamp_analyze\",\n";
  out << "  \"files_scanned\": " << files_scanned << ",\n";
  out << "  \"errors\": " << result.errors << ",\n";
  out << "  \"warnings\": " << result.warnings << ",\n";
  out << "  \"suppressed\": " << result.suppressed << ",\n";
  out << "  \"findings\": [";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"file\": \"" << JsonEscape(f.file) << "\", \"line\": "
        << f.line << ", \"rule\": \"" << JsonEscape(f.rule)
        << "\", \"severity\": \"" << SeverityName(f.severity)
        << "\", \"detail\": \"" << JsonEscape(f.detail) << "\"}";
  }
  out << (result.findings.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.str();
}

bool ParseFindingsJson(const std::string& json, std::vector<Finding>* out,
                       std::string* error) {
  out->clear();
  Parser p(json);
  auto fail = [&](const std::string& why) {
    *error = p.error.empty() ? why : p.error;
    return false;
  };
  if (!p.Expect('{')) return fail("not an object");
  bool first = true;
  while (true) {
    p.SkipSpace();
    if (p.Peek('}')) {
      ++p.pos;
      return true;
    }
    if (!first && !p.Expect(',')) return fail("bad separator");
    first = false;
    std::string key;
    if (!p.ParseString(&key) || !p.Expect(':')) return fail("bad key");
    if (key == "findings") {
      if (!p.Expect('[')) return fail("findings not an array");
      while (true) {
        p.SkipSpace();
        if (p.Peek(']')) {
          ++p.pos;
          break;
        }
        if (!out->empty() && !p.Expect(',')) return fail("bad separator");
        if (!p.Expect('{')) return fail("finding not an object");
        Finding f;
        bool ffirst = true;
        while (true) {
          p.SkipSpace();
          if (p.Peek('}')) {
            ++p.pos;
            break;
          }
          if (!ffirst && !p.Expect(',')) return fail("bad separator");
          ffirst = false;
          std::string fkey;
          if (!p.ParseString(&fkey) || !p.Expect(':')) return fail("bad key");
          if (fkey == "line") {
            double v = 0;
            if (!p.ParseNumber(&v)) return fail("bad line");
            f.line = static_cast<std::size_t>(v);
          } else {
            std::string v;
            if (!p.ParseString(&v)) return fail("bad value for " + fkey);
            if (fkey == "file") {
              f.file = v;
            } else if (fkey == "rule") {
              f.rule = v;
            } else if (fkey == "severity") {
              f.severity = (v == "warn") ? Severity::kWarn : Severity::kError;
            } else if (fkey == "detail") {
              f.detail = v;
            }
          }
        }
        out->push_back(std::move(f));
      }
    } else if (p.Peek('"')) {
      std::string ignored;
      if (!p.ParseString(&ignored)) return fail("bad string value");
    } else {
      double ignored = 0;
      if (!p.ParseNumber(&ignored)) return fail("bad numeric value");
    }
  }
}

}  // namespace tamp::analyze
