// Core framework for tamp_analyze, the repo's determinism-contract static
// analyzer (DESIGN.md §4g). A rule is one class in one file under rules/,
// self-registered with TAMP_REGISTER_ANALYSIS_RULE; the driver loads every
// scanned file once into a FileContext (raw text plus two stripped views),
// runs each rule's per-file pass, then each rule's cross-file Finish pass,
// applies per-rule suppressions, and finally hands unused suppression
// markers to the PostSuppression hook.
//
// The passes are lexical by design — no compiler, no AST, no third-party
// dependencies — so the gate runs anywhere the toolchain runs. Rules that
// need semantic guarantees (header self-sufficiency, race detection) are
// delegated to the build itself (cmake/HeaderSelfSufficiency.cmake,
// clang-tidy, TSan); this tool owns the repo-specific contracts those
// generic tools cannot know about.

#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace tamp::analyze {

enum class Severity { kWarn, kError };

const char* SeverityName(Severity s);

/// One reported rule hit. `file` is repo-root-relative with '/' separators.
struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  Severity severity = Severity::kError;
  std::string detail;

  bool operator==(const Finding& other) const = default;
};

/// A lint:allow marker parsed from a source line. `all` is the legacy bare
/// form (suppresses every rule on the line); otherwise `rules` lists the
/// rule names inside the parentheses.
struct AllowSpec {
  bool all = false;
  std::set<std::string> rules;
};

/// How StripCommentsAndStrings treats string/char literal contents.
enum class StripMode {
  kCommentsAndStrings,  // Literals reduced to their bare quotes.
  kCommentsOnly,        // Literal contents preserved (for obs-name scans).
};

/// Strips // and /* */ comments (always) and optionally the contents of
/// string/char literals, preserving line structure so reported line numbers
/// stay correct. Handles C++ raw string literals (R"delim(...)delim", with
/// u8/u/U/L encoding prefixes): their contents never desync the stripper,
/// and embedded newlines are preserved.
std::string StripCommentsAndStrings(const std::string& text, StripMode mode);

std::vector<std::string> SplitLines(const std::string& text);

/// One scanned file, fully loaded. Rules match against `code_lines`
/// (comments and string contents stripped) unless they need literal string
/// contents, in which case they use `text_nc` / `nc_lines` (comments
/// stripped, literals kept).
struct FileContext {
  std::string rel_path;    // Actual path relative to the repo root.
  std::string scope_path;  // Path used for rule scoping; differs from
                           // rel_path only for testdata files carrying an
                           // analyze:path= directive.
  bool is_header = false;

  std::string text;     // Raw bytes.
  std::string code;     // StripMode::kCommentsAndStrings view.
  std::string text_nc;  // StripMode::kCommentsOnly view.
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;
  std::vector<std::string> nc_lines;

  /// lint:allow markers by 1-based line number.
  std::map<std::size_t, AllowSpec> allows;

  /// 1-based line number of a byte offset into `text` / the stripped views
  /// (both preserve line structure).
  std::size_t LineOfPos(std::size_t pos) const;

  /// True when scope_path lives under `prefix` ("src/", "src/assign/", ...).
  bool InDir(std::string_view prefix) const;

 private:
  mutable std::vector<std::size_t> line_starts_;  // Lazy, built on first use.
};

/// Builds a FileContext from raw bytes. `rel_path` must use '/' separators.
FileContext MakeFileContext(std::string rel_path, std::string text);

/// The whole scanned tree plus the obs-name manifest, shared by Finish
/// passes.
struct Corpus {
  std::vector<FileContext> files;

  /// src/common/obs/names.inc entries as (name, 1-based line).
  std::vector<std::pair<std::string, std::size_t>> manifest;
  std::string manifest_rel;  // Path the manifest was loaded from.
  bool manifest_loaded = false;

  /// True when the scan covered the full src/ tree; cross-file "manifest
  /// name never referenced" checks only make sense then (a partial scan —
  /// self-tests, explicit subdirs — would see almost every name as dead).
  bool covers_src = false;
};

class Rule;

/// Collects findings during the passes. Suppression is applied by the
/// driver after every pass ran, so rules just report.
class Emitter {
 public:
  void Report(const FileContext& file, std::size_t line, const Rule& rule,
              std::string detail);
  /// For Finish passes reporting against files outside the corpus (the
  /// manifest itself).
  void ReportAt(std::string file, std::size_t line, const Rule& rule,
                std::string detail);

  std::vector<Finding>& findings() { return findings_; }
  const std::vector<Finding>& findings() const { return findings_; }

 private:
  std::vector<Finding> findings_;
};

/// An unused lint:allow marker (no finding of an allowed rule on its line).
struct UnusedAllow {
  std::string file;
  std::size_t line = 0;
  const AllowSpec* spec = nullptr;
};

/// One analysis rule. Implementations override the passes they need;
/// name() doubles as the testdata file prefix ('-' mapped to '_') and the
/// lint:allow(<name>) suppression key.
class Rule {
 public:
  virtual ~Rule() = default;

  virtual std::string_view name() const = 0;
  virtual Severity severity() const { return Severity::kError; }
  /// One-line rationale, shown by --list-rules and the docs table.
  virtual std::string_view summary() const = 0;

  /// Per-file pass. `corpus` provides run-wide context (the obs-name
  /// manifest); most rules only look at `file`.
  virtual void CheckFile(const FileContext& file, const Corpus& corpus,
                         Emitter* emitter);
  /// Cross-file pass, after every CheckFile ran.
  virtual void Finish(const Corpus& corpus, Emitter* emitter);
  /// After suppression accounting; `unused` lists markers that suppressed
  /// nothing. Findings reported here are exempt from suppression.
  virtual void PostSuppression(const Corpus& corpus,
                               const std::vector<UnusedAllow>& unused,
                               Emitter* emitter);
};

class RuleRegistry {
 public:
  static RuleRegistry& Global();

  /// Returns true so registration can initialize a namespace-scope bool.
  bool Register(std::unique_ptr<Rule> rule);

  /// Registered rules ordered by name (deterministic reports).
  const std::vector<Rule*>& rules() const;
  Rule* Find(std::string_view name) const;

 private:
  std::vector<std::unique_ptr<Rule>> owned_;
  mutable std::vector<Rule*> sorted_;
};

/// Self-registration: one rule = one file + one macro (mirrors the
/// REGISTER_BENCHMARK_TASK idiom). Place at namespace scope in the rule's
/// .cc file.
#define TAMP_REGISTER_ANALYSIS_RULE(ClassName)                      \
  const bool tamp_analyze_rule_##ClassName##_registered =           \
      ::tamp::analyze::RuleRegistry::Global().Register(             \
          std::make_unique<ClassName>())

/// Result of a full analysis run over a corpus.
struct AnalysisResult {
  std::vector<Finding> findings;  // Post-suppression, sorted.
  std::size_t suppressed = 0;
  std::size_t errors = 0;
  std::size_t warnings = 0;
};

/// Runs every registered rule over the corpus: per-file passes, Finish
/// passes, suppression, PostSuppression.
AnalysisResult RunAnalysis(const Corpus& corpus);

/// Serializes findings as the machine-readable report
/// ({"tool": "tamp_analyze", "files_scanned": N, "findings": [...]}).
std::string FindingsToJson(const AnalysisResult& result,
                           std::size_t files_scanned);

/// Parses FindingsToJson output back into findings; returns false (with
/// *error set) on malformed input. Backs the --json-roundtrip self-check.
bool ParseFindingsJson(const std::string& json, std::vector<Finding>* out,
                       std::string* error);

}  // namespace tamp::analyze
