// Negative case: using-declarations (not directives) and a mention of the
// forbidden phrase inside a comment — using namespace — stay legal.
#pragma once

#include <string>

namespace tamp_testdata {

using std::string;  // a using-declaration is scoped and explicit: legal

inline string Greet() { return "hi"; }

}  // namespace tamp_testdata
