// analyze:path=src/assign/unordered_iteration_ok.cc
// Negative case: unordered containers used for lookup only, and iteration
// over *ordered* containers — both legal. The hazard is order-dependent
// traversal, not hashing itself.

#include <map>
#include <unordered_map>
#include <vector>

namespace tamp_testdata {

double LookupTotal(const std::unordered_map<long, double>& weights,
                   const std::vector<long>& sorted_ids) {
  double total = 0.0;
  // Deterministic: the iteration order comes from the sorted id list; the
  // unordered map only answers point lookups.
  for (const long id : sorted_ids) {
    const auto it = weights.find(id);
    if (it != weights.end()) total += it->second;
  }
  return total;
}

double OrderedTotal(const std::map<long, double>& by_id) {
  double total = 0.0;
  for (const auto& [id, w] : by_id) {  // std::map iterates in key order
    total += w;
  }
  return total;
}

// Mirrors the sharding union-find + signature-keyed warm pool: component
// discovery walks vectors in index order, and the pool's unordered map is
// only ever probed by key — neither traverses hash order.
int Find(std::vector<int>& parent, int x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];  // path halving
    x = parent[x];
  }
  return x;
}

int CountComponents(int n, const std::vector<std::pair<int, int>>& edges,
                    std::unordered_map<unsigned long long, int>& warm_pool) {
  std::vector<int> parent(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) parent[static_cast<std::size_t>(i)] = i;
  for (const auto& [a, b] : edges) {  // edge list: index-ordered vector
    parent[static_cast<std::size_t>(Find(parent, a))] = Find(parent, b);
  }
  int roots = 0;
  for (int i = 0; i < n; ++i) {  // root scan in index order
    if (Find(parent, i) == i) ++roots;
  }
  // Point lookup by signature — never iterated.
  const auto it = warm_pool.find(static_cast<unsigned long long>(n));
  return it != warm_pool.end() ? roots + it->second : roots;
}

}  // namespace tamp_testdata
