// analyze:path=src/assign/unordered_iteration_ok.cc
// Negative case: unordered containers used for lookup only, and iteration
// over *ordered* containers — both legal. The hazard is order-dependent
// traversal, not hashing itself.

#include <map>
#include <unordered_map>
#include <vector>

namespace tamp_testdata {

double LookupTotal(const std::unordered_map<long, double>& weights,
                   const std::vector<long>& sorted_ids) {
  double total = 0.0;
  // Deterministic: the iteration order comes from the sorted id list; the
  // unordered map only answers point lookups.
  for (const long id : sorted_ids) {
    const auto it = weights.find(id);
    if (it != weights.end()) total += it->second;
  }
  return total;
}

double OrderedTotal(const std::map<long, double>& by_id) {
  double total = 0.0;
  for (const auto& [id, w] : by_id) {  // std::map iterates in key order
    total += w;
  }
  return total;
}

}  // namespace tamp_testdata
