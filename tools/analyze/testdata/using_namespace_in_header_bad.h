// Seeded violation: using-directive at namespace scope in a header.
#pragma once

#include <string>

using namespace std;  // violation: leaks into every includer

namespace tamp_testdata {

inline string Greet() { return "hi"; }

}  // namespace tamp_testdata
