// Seeded violations: raw randomness sources that break run-to-run
// reproducibility (seeds must flow through src/common/rng).

#include <cstdlib>
#include <random>

namespace tamp_testdata {

int UnseededDraw() {
  return rand() % 100;  // violation: rand()
}

void ReseedFromTime() {
  srand(42);  // violation: srand()
}

double EngineDraw() {
  std::default_random_engine engine;  // violation: unspecified engine
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine);
}

}  // namespace tamp_testdata
