// Seeded violations: suppression markers on lines where no rule fires.
// Stale markers hide nothing today but will silently swallow a real
// finding added to that line tomorrow.

namespace tamp_testdata {

int Clean() {
  int x = 0;  // lint:allow(raw-rng)
  return x;   // lint:allow
}

}  // namespace tamp_testdata
