// Negative case: a marker that suppresses a real finding is used, so the
// unused-suppression rule stays silent about it.

#include <cstdlib>

namespace tamp_testdata {

int LegacyDraw() {
  return rand();  // lint:allow(raw-rng)
}

}  // namespace tamp_testdata
