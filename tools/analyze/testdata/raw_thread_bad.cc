// Seeded violations: raw threading primitives outside the deterministic
// runtime in src/common/parallel.

#include <future>
#include <thread>

namespace tamp_testdata {

void SpawnWorker() {
  std::thread worker([] {});  // violation: raw std::thread
  worker.join();
}

void SpawnAsync() {
  auto f = std::async([] { return 1; });  // violation: raw std::async
  f.get();
}

}  // namespace tamp_testdata
