// analyze:path=src/core/float_reduce_ok.cc
// Negative case: the sanctioned patterns. Per-iteration locals, per-index
// slots, serial accumulation outside parallel bodies, and the
// ParallelOrderedReduce fold are all deterministic.

#include <cstddef>
#include <vector>

namespace tamp_testdata {

void PerIndexParts(const std::vector<double>& xs, std::vector<double>& out) {
  tamp::ParallelFor(xs.size(), [&](std::size_t i) {
    double local = 0.0;  // per-iteration local: legal
    local += xs[i];
    out[i] += local;  // index-owned slot: legal under the contract
  });
}

double SerialSum(const std::vector<double>& parts) {
  double total = 0.0;
  for (const double p : parts) {
    total += p;  // outside any parallel body: legal
  }
  return total;
}

double OrderedFold(const std::vector<double>& xs) {
  // The runtime folds per-index parts in index order regardless of which
  // worker produced them, so the rounding is reproducible.
  return tamp::ParallelOrderedReduce(
      xs.size(), 0.0, [&](std::size_t i) { return xs[i]; },
      [](double acc, double part) { return acc + part; });
}

}  // namespace tamp_testdata
