// Seeded violation: this header deliberately lacks the include-guard
// pragma. (Not compiled; scanned by the analyze self-test ctests.)

namespace tamp_testdata {

inline int Answer() { return 42; }

}  // namespace tamp_testdata
