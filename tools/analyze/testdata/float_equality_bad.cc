// Seeded violations: direct floating-point equality comparisons.

namespace tamp_testdata {

bool Converged(double score, double prev) {
  if (score == prev) {  // violation: exact FP equality
    return true;
  }
  return score != 0.5;  // violation: exact FP inequality against a literal
}

bool IsUnit(float weight) {
  return weight == 1.0f;  // violation
}

}  // namespace tamp_testdata
