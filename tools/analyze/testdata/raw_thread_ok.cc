// Negative case: thread-adjacent std facilities that do not create
// execution agents stay legal outside src/common/parallel.

#include <thread>

namespace tamp_testdata {

void Politeness() {
  std::this_thread::yield();  // no new execution agent: legal
}

// A type merely named like the banned ones is not a match.
struct thread_stats {
  int count = 0;
};

}  // namespace tamp_testdata
