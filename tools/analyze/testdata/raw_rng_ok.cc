// Negative case: explicitly-seeded, fixed-algorithm generators are the
// sanctioned path (src/common/rng wraps exactly this).

#include <random>

namespace tamp_testdata {

double SeededDraw(unsigned seed) {
  std::mt19937 gen(seed);  // fixed algorithm + explicit seed: legal
  return std::uniform_real_distribution<double>(0.0, 1.0)(gen);
}

// Identifiers that merely end in a banned token are not matches.
int shuffle_count = 0;
int grand_total() { return shuffle_count; }

}  // namespace tamp_testdata
