// Negative case: duration arithmetic without reading any clock is legal —
// only clock *reads* make time an input to the computation.

#include <chrono>

namespace tamp_testdata {

double SumSeconds(double a, double b) {
  std::chrono::duration<double> total{a + b};  // pure arithmetic: legal
  return total.count();
}

long ToMillis(double seconds) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::duration<double>(seconds))
      .count();
}

}  // namespace tamp_testdata
