// analyze:path=src/assign/unordered_iteration_bad.cc
// Seeded violations: traversal of unordered containers in plan-computing
// code. Hash order is unspecified, so any order-sensitive consumer (FP
// accumulation, first-wins matching) breaks bit-identical plans.

#include <unordered_map>
#include <unordered_set>

namespace tamp_testdata {

double SumWeights(const std::unordered_map<long, double>& weights) {
  double total = 0.0;
  for (const auto& [id, w] : weights) {  // violation: hash-order range-for
    total += w;
  }
  return total;
}

long FirstId(const std::unordered_set<long>& ids) {
  for (auto it = ids.begin(); it != ids.end(); ++it) {  // violation: begin()
    return *it;
  }
  return -1;
}

}  // namespace tamp_testdata
