// analyze:path=src/core/float_reduce_bad.cc
// Seeded violations: floating-point accumulation into captured state
// inside parallel bodies. Worker completion order is nondeterministic, so
// the rounding of the running sum differs run to run.

#include <cstddef>
#include <vector>

namespace tamp_testdata {

struct Stats {
  double sum = 0.0;
};

double SharedSum(const std::vector<double>& xs) {
  double total = 0.0;
  tamp::ParallelFor(xs.size(), [&](std::size_t i) {
    total += xs[i];  // violation: shared FP accumulation
  });
  return total;
}

void ScaleInto(Stats& stats, const std::vector<double>& xs) {
  tamp::ParallelFor(xs.size(), [&](std::size_t i) {
    stats.sum *= xs[i];  // violation: compound product on captured member
  });
}

}  // namespace tamp_testdata
