// analyze:path=src/core/obs_name_manifest_ok.cc
// Negative case: every name below is a literal listed in names.inc, and
// the bound counter is actually incremented. Uses only names that live
// code also references, so the manifest's reverse check stays green.

namespace tamp_testdata {

struct FakeRegistry;

void Instrumented(FakeRegistry& registry) {
  obs::Counter& batches_counter = registry.GetCounter("sim.batches");
  batches_counter.Increment();

  obs::TraceSpan batch_span("sim.batch");

  // Continuation-line name: the scan crosses newlines.
  registry.GetHistogram(
      "sim.pool_depth");

  // The std::optional<TraceSpan> idiom with the name as second argument.
  std::optional<obs::TraceSpan> stage_span(std::in_place, "ppi.stage1");
}

}  // namespace tamp_testdata
