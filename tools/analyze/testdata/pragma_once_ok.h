// Negative case: a guarded header must not trip pragma-once.
#pragma once

namespace tamp_testdata {

inline int Answer() { return 42; }

}  // namespace tamp_testdata
