// Negative case: tolerance-based comparison plus raw-string-literal
// regression cases for the stripper. Each raw string below contains text
// that WOULD trip float-equality (or desynchronize a naive stripper) if
// literal contents leaked into the stripped code view.

#include <cmath>
#include <string>

namespace tamp_testdata {

bool Near(double a, double b) {
  return std::fabs(a - b) < 1e-9;  // tolerance compare: legal
}

// A raw string with an embedded unescaped quote: a stripper that treats
// `R"(` as a normal string-open terminates at the inner quote and leaks
// `== 1.0` into the code view.
const std::string kDoc = R"(an embedded " quote then x == 1.0 done)";

// A delimited raw string whose body contains `)"` — only the `)x"` closer
// ends it. The `== 2.0` inside must stay stripped.
const std::string kTricky = R"x(contains )" inside, and y == 2.0 too)x";

// Multi-line raw string: newlines inside literals are preserved by the
// stripper so later line numbers stay aligned.
const std::string kMultiLine = R"(first line
second == 3.0 line
third line)";

// After all of the above, an ordinary string on a correctly-resynced
// stripper is still recognized as a string.
const std::string kAfter = "z == 4.0 stays stripped";

}  // namespace tamp_testdata
