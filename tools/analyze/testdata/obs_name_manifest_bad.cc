// analyze:path=src/core/obs_name_manifest_bad.cc
// Seeded violations for the obs-name manifest contract. The pretend-path
// directive above puts this file in scope (the rule only checks src/).

#include <string>

namespace tamp_testdata {

struct FakeRegistry;

void Violations(FakeRegistry& registry, const std::string& suffix) {
  // Violation 1: a typo'd metric name absent from names.inc — the classic
  // silent-fork failure where code and dashboards disagree on spelling.
  registry.GetCounter("sim.batchez").Increment();

  // Violation 2 (the PR-4 dead-counter class): a counter bound with a
  // manifest-listed name but never incremented anywhere in this file. It
  // shows up in every snapshot as a plausible, confident zero.
  obs::Counter& calls_counter = registry.GetCounter("ppi.calls");
  (void)calls_counter;

  // Violation 3: a non-literal name defeats the manifest in both
  // directions — nothing can vouch the string exists or is spelled right.
  const std::string dynamic_name = "sim." + suffix;
  registry.GetCounter(dynamic_name).Increment();

  // Violation 4: a span name absent from names.inc.
  obs::TraceSpan warmup_span("sim.warmup");
}

}  // namespace tamp_testdata
