// Seeded violations: wall-clock reads outside src/common make timing an
// input to the algorithm and break replayability.

#include <chrono>

namespace tamp_testdata {

double NowSeconds() {
  auto t = std::chrono::steady_clock::now();  // violation
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

long WallMillis() {
  auto t = std::chrono::system_clock::now();  // violation
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             t.time_since_epoch())
      .count();
}

}  // namespace tamp_testdata
