// tamp_analyze — the repo's determinism-contract static analyzer
// (DESIGN.md §4g). Multi-pass lexical analysis over the tree with a
// self-registering rule registry (one rule = one file under rules/),
// per-rule lint:allow(<rule>) suppressions with an unused-suppression
// check, and machine-readable JSON findings alongside the human report.
//
// Usage:
//   tamp_analyze <root> [subdir...]        analyze subdirs (default: src
//                                          tests tools bench examples)
//   tamp_analyze --expect-violations ...   invert exit code (gate self-test)
//   tamp_analyze --self-test <rule>|all    per-rule testdata corpus check:
//                                          every <rule>_bad file must trip
//                                          the rule, every <rule>_ok file
//                                          must not
//   tamp_analyze --json PATH ...           also write findings as JSON
//   tamp_analyze --json-roundtrip ...      re-parse the written JSON and
//                                          verify it matches (requires
//                                          --json)
//   tamp_analyze --list-rules              print the rule table
//   tamp_analyze --werror ...              warnings fail the run too
//
// Exit code 0 when clean (inverted under --expect-violations), 1 when
// error-severity findings were reported, 2 on usage/IO errors.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis.h"

namespace {

namespace fs = std::filesystem;
using tamp::analyze::AnalysisResult;
using tamp::analyze::Corpus;
using tamp::analyze::FileContext;
using tamp::analyze::Finding;
using tamp::analyze::Rule;
using tamp::analyze::RuleRegistry;
using tamp::analyze::Severity;

constexpr const char* kManifestRel = "src/common/obs/names.inc";
constexpr const char* kTestdataRel = "tools/analyze/testdata";

bool IsSource(const fs::path& p) {
  const auto ext = p.extension();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

/// Loads src/common/obs/names.inc: every TAMP_OBS_NAME("...") line becomes
/// a (name, line) manifest entry.
void LoadManifest(const fs::path& root, Corpus* corpus) {
  corpus->manifest_rel = kManifestRel;
  std::string text;
  if (!ReadFile(root / kManifestRel, &text)) return;
  corpus->manifest_loaded = true;
  const std::vector<std::string> lines = tamp::analyze::SplitLines(text);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const std::size_t macro = line.find("TAMP_OBS_NAME");
    if (macro == std::string::npos) continue;
    if (line.rfind("//", 0) == 0 || line.rfind("#", 0) == 0) continue;
    const std::size_t open = line.find('"', macro);
    if (open == std::string::npos) continue;
    const std::size_t close = line.find('"', open + 1);
    if (close == std::string::npos) continue;
    corpus->manifest.emplace_back(line.substr(open + 1, close - open - 1),
                                  i + 1);
  }
}

int LoadCorpusFile(const fs::path& path, const fs::path& root,
                   Corpus* corpus) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "tamp_analyze: could not read %s\n",
                 path.string().c_str());
    return 2;
  }
  const std::string rel = fs::relative(path, root).generic_string();
  corpus->files.push_back(tamp::analyze::MakeFileContext(rel, std::move(text)));
  return 0;
}

void PrintFindings(const AnalysisResult& result, std::size_t files_scanned) {
  for (const Finding& f : result.findings) {
    std::fprintf(stderr, "%s:%zu: %s: [%s] %s\n", f.file.c_str(), f.line,
                 tamp::analyze::SeverityName(f.severity), f.rule.c_str(),
                 f.detail.c_str());
  }
  std::fprintf(stderr,
               "tamp_analyze: scanned %zu files, %zu error(s), %zu "
               "warning(s), %zu suppressed\n",
               files_scanned, result.errors, result.warnings,
               result.suppressed);
}

int ListRules() {
  for (const Rule* rule : RuleRegistry::Global().rules()) {
    std::fprintf(stdout, "%-28s %-5s %s\n",
                 std::string(rule->name()).c_str(),
                 tamp::analyze::SeverityName(rule->severity()),
                 std::string(rule->summary()).c_str());
  }
  return 0;
}

std::string RuleFilePrefix(std::string_view rule_name) {
  std::string prefix(rule_name);
  for (char& c : prefix) {
    if (c == '-') c = '_';
  }
  return prefix;
}

/// Per-rule corpus self-test: analyzes the rule's <rule>_bad / <rule>_ok
/// testdata files and checks the rule fires on every bad file and on no ok
/// file (findings of other rules are ignored — corpus files only need to
/// be correct for the rule they exercise).
int SelfTestRule(const Rule& rule, const fs::path& root) {
  const fs::path dir = root / kTestdataRel;
  const std::string prefix = RuleFilePrefix(rule.name());
  std::vector<std::string> bad_files;
  std::vector<std::string> ok_files;
  Corpus corpus;
  LoadManifest(root, &corpus);
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file() || !IsSource(entry.path())) continue;
    const std::string stem = entry.path().filename().string();
    const bool bad = stem.rfind(prefix + "_bad", 0) == 0;
    const bool ok = stem.rfind(prefix + "_ok", 0) == 0;
    if (!bad && !ok) continue;
    if (int rc = LoadCorpusFile(entry.path(), root, &corpus); rc != 0) {
      return rc;
    }
    const std::string& rel = corpus.files.back().rel_path;
    (bad ? bad_files : ok_files).push_back(rel);
  }
  const std::string name(rule.name());
  if (bad_files.empty() || ok_files.empty()) {
    std::fprintf(stderr,
                 "tamp_analyze: rule '%s' is missing testdata coverage "
                 "(need %s_bad* and %s_ok* under %s)\n",
                 name.c_str(), prefix.c_str(), prefix.c_str(), kTestdataRel);
    return 1;
  }

  const AnalysisResult result = tamp::analyze::RunAnalysis(corpus);
  int failures = 0;
  for (const std::string& rel : bad_files) {
    std::size_t hits = 0;
    for (const Finding& f : result.findings) {
      if (f.rule == name && f.file == rel) ++hits;
    }
    if (hits == 0) {
      std::fprintf(stderr, "self-test[%s]: FAIL %s: expected >=1 finding\n",
                   name.c_str(), rel.c_str());
      ++failures;
    }
  }
  for (const std::string& rel : ok_files) {
    for (const Finding& f : result.findings) {
      if (f.rule == name && f.file == rel) {
        std::fprintf(stderr,
                     "self-test[%s]: FAIL %s:%zu: unexpected finding: %s\n",
                     name.c_str(), rel.c_str(), f.line, f.detail.c_str());
        ++failures;
      }
    }
  }
  if (failures == 0) {
    std::fprintf(stderr, "self-test[%s]: OK (%zu bad, %zu ok)\n",
                 name.c_str(), bad_files.size(), ok_files.size());
  }
  return failures == 0 ? 0 : 1;
}

int SelfTest(const std::string& which, const fs::path& root) {
  if (which == "all") {
    int rc = 0;
    for (const Rule* rule : RuleRegistry::Global().rules()) {
      rc |= SelfTestRule(*rule, root);
    }
    return rc;
  }
  const Rule* rule = RuleRegistry::Global().Find(which);
  if (rule == nullptr) {
    std::fprintf(stderr, "tamp_analyze: unknown rule '%s'\n", which.c_str());
    return 2;
  }
  return SelfTestRule(*rule, root);
}

}  // namespace

int main(int argc, char** argv) {
  bool expect_violations = false;
  bool werror = false;
  bool json_roundtrip = false;
  std::string json_path;
  std::string self_test;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--expect-violations") {
      expect_violations = true;
    } else if (a == "--werror") {
      werror = true;
    } else if (a == "--json-roundtrip") {
      json_roundtrip = true;
    } else if (a == "--list-rules") {
      return ListRules();
    } else if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a == "--self-test" && i + 1 < argc) {
      self_test = argv[++i];
    } else if (a.rfind("--", 0) == 0) {
      std::fprintf(stderr, "tamp_analyze: unknown option '%s'\n", a.c_str());
      return 2;
    } else {
      args.push_back(a);
    }
  }
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: tamp_analyze [--expect-violations] [--werror] "
                 "[--json PATH [--json-roundtrip]] [--self-test RULE|all] "
                 "[--list-rules] <root> [subdir...]\n");
    return 2;
  }
  const fs::path root = args[0];
  if (!self_test.empty()) return SelfTest(self_test, root);

  std::vector<std::string> subdirs(args.begin() + 1, args.end());
  const bool default_scan = subdirs.empty();
  if (default_scan) subdirs = {"src", "tests", "tools", "bench", "examples"};

  Corpus corpus;
  LoadManifest(root, &corpus);
  for (const std::string& sub : subdirs) {
    const fs::path dir = root / sub;
    if (!fs::exists(dir)) continue;
    if (sub == "src" || sub == "src/") corpus.covers_src = true;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !IsSource(entry.path())) continue;
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      // The self-test corpus is deliberately full of violations.
      if (!expect_violations && rel.find(kTestdataRel) != std::string::npos) {
        continue;
      }
      if (int rc = LoadCorpusFile(entry.path(), root, &corpus); rc != 0) {
        return rc;
      }
    }
  }
  if (corpus.files.empty()) {
    std::fprintf(stderr, "tamp_analyze: no files scanned (bad root?)\n");
    return 2;
  }

  const AnalysisResult result = tamp::analyze::RunAnalysis(corpus);
  PrintFindings(result, corpus.files.size());

  if (!json_path.empty()) {
    const std::string json =
        tamp::analyze::FindingsToJson(result, corpus.files.size());
    std::ofstream out(json_path, std::ios::binary);
    if (!out || !(out << json)) {
      std::fprintf(stderr, "tamp_analyze: could not write %s\n",
                   json_path.c_str());
      return 2;
    }
    out.close();
    if (json_roundtrip) {
      std::string reread;
      std::vector<Finding> parsed;
      std::string error;
      if (!ReadFile(json_path, &reread) ||
          !tamp::analyze::ParseFindingsJson(reread, &parsed, &error)) {
        std::fprintf(stderr, "tamp_analyze: JSON round-trip parse failed: %s\n",
                     error.c_str());
        return 2;
      }
      if (parsed != result.findings) {
        std::fprintf(stderr,
                     "tamp_analyze: JSON round-trip mismatch (%zu parsed vs "
                     "%zu reported findings)\n",
                     parsed.size(), result.findings.size());
        return 2;
      }
      std::fprintf(stderr, "tamp_analyze: JSON round-trip OK (%zu findings)\n",
                   parsed.size());
    }
  } else if (json_roundtrip) {
    std::fprintf(stderr, "tamp_analyze: --json-roundtrip requires --json\n");
    return 2;
  }

  const bool failed =
      result.errors > 0 || (werror && result.warnings > 0);
  if (expect_violations) return failed ? 0 : 1;
  return failed ? 1 : 0;
}
