#include <regex>
#include <string>

#include "analysis.h"

namespace tamp::analyze {
namespace {

const std::regex& RawClockRegex() {
  // std::chrono::steady_clock / system_clock / high_resolution_clock.
  // Durations and <chrono> itself stay legal; only clock *reads* funnel
  // through src/common/ (Stopwatch, obs::TraceRecorder).
  static const std::regex re(
      R"(std\s*::\s*chrono\s*::\s*(steady_clock|system_clock|high_resolution_clock)\b)");
  return re;
}

class RawClockRule : public Rule {
 public:
  std::string_view name() const override { return "raw-clock"; }
  std::string_view summary() const override {
    return "no raw std::chrono clock reads outside src/common";
  }

  void CheckFile(const FileContext& file, const Corpus&,
                 Emitter* emitter) override {
    // Exemption: src/common/ owns all clock reads (Stopwatch, the obs
    // trace recorder); everything else measures time through those.
    if (file.InDir("src/common/")) return;
    for (std::size_t i = 0; i < file.code_lines.size(); ++i) {
      std::smatch match;
      if (std::regex_search(file.code_lines[i], match, RawClockRegex())) {
        emitter->Report(file, i + 1, *this,
                        "raw 'std::chrono::" + match.str(1) +
                            "' outside src/common/; use tamp::Stopwatch or "
                            "obs::TraceSpan so timings reach the "
                            "observability layer");
      }
    }
  }
};

TAMP_REGISTER_ANALYSIS_RULE(RawClockRule);

}  // namespace
}  // namespace tamp::analyze
