#include <regex>
#include <string>

#include "analysis.h"

namespace tamp::analyze {
namespace {

const std::regex& RawThreadRegex() {
  // std::thread / std::jthread objects and std::async launches. Matching
  // the qualified names keeps `std::this_thread::` (sleep/yield) and the
  // <thread> include legal; only thread *creation* is restricted.
  static const std::regex re(
      R"((^|[^\w:])std\s*::\s*(j?thread\b|async\s*\())");
  return re;
}

class RawThreadRule : public Rule {
 public:
  std::string_view name() const override { return "raw-thread"; }
  std::string_view summary() const override {
    return "no raw thread creation outside src/common/parallel";
  }

  void CheckFile(const FileContext& file, const Corpus&,
                 Emitter* emitter) override {
    // Exemption: the deterministic parallel runtime is the one place
    // allowed to create threads; everything else goes through
    // ParallelFor/Map.
    if (file.InDir("src/common/parallel")) return;
    for (std::size_t i = 0; i < file.code_lines.size(); ++i) {
      std::smatch match;
      if (std::regex_search(file.code_lines[i], match, RawThreadRegex())) {
        // Reconstruct the matched token without the boundary char or the
        // trailing call paren, so the report names exactly what was used.
        std::string token = match.str(2);
        while (!token.empty() &&
               (token.back() == '(' || token.back() == ' ')) {
          token.pop_back();
        }
        emitter->Report(file, i + 1, *this,
                        "raw 'std::" + token +
                            "' outside src/common/parallel; use "
                            "tamp::ParallelFor so runs stay deterministic "
                            "and TAMP_THREADS-controlled");
      }
    }
  }
};

TAMP_REGISTER_ANALYSIS_RULE(RawThreadRule);

}  // namespace
}  // namespace tamp::analyze
