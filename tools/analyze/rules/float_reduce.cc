#include <cctype>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "analysis.h"

namespace tamp::analyze {
namespace {

/// Declaration-ish line: optional qualifiers, a type token (possibly
/// templated / qualified), then the declared identifier. Heuristic — it
/// exists to recognize per-iteration locals, whose accumulation is legal.
const std::regex& DeclLineRegex() {
  static const std::regex re(
      R"(^\s*(?:(?:const|constexpr|static|thread_local|mutable)\s+)*([A-Za-z_][\w:]*)\s*(?:<[^;]*>)?\s*[&*]*\s+([A-Za-z_]\w*)\s*(?:[=;{(,]|$))");
  return re;
}

/// Further declarators on the same line: `double a = 0.0, b = 0.0;`.
const std::regex& ExtraDeclaratorRegex() {
  static const std::regex re(R"(,\s*[&*]*\s*([A-Za-z_]\w*)\s*(?:[=;{]|$))");
  return re;
}

/// Lambda parameter list: `[&](size_t i)` — params are per-index locals.
const std::regex& LambdaParamsRegex() {
  static const std::regex re(R"(\]\s*\(([^)]*)\))");
  return re;
}

/// Compound accumulation `base(.member)* (+|-|*|/)= ...` with no subscript
/// anywhere in the chain (a subscripted target is an index-owned slot,
/// which the ParallelFor contract allows).
const std::regex& CompoundAssignRegex() {
  static const std::regex re(
      R"((?:^|[^\w.\]>])([A-Za-z_]\w*)((?:(?:\.|->)[A-Za-z_]\w*)*)\s*([-+*/])=(?:[^=]|$))");
  return re;
}

bool IsDeclKeyword(const std::string& token) {
  static const std::set<std::string> kKeywords = {
      "return", "throw", "delete",   "new",       "case",     "goto",
      "else",   "do",    "co_return", "co_yield", "operator", "using",
      "typedef", "if",   "while",    "for",       "switch",   "break",
      "continue"};
  return kKeywords.count(token) > 0;
}

/// Extents of every ParallelFor / ParallelMap call body in the stripped
/// text, as [open_paren + 1, close_paren) byte ranges.
std::vector<std::pair<std::size_t, std::size_t>> FindParallelBodies(
    const std::string& code) {
  std::vector<std::pair<std::size_t, std::size_t>> bodies;
  const std::string tokens[] = {std::string("Parallel") + "For",
                                std::string("Parallel") + "Map"};
  for (const std::string& token : tokens) {
    std::size_t at = 0;
    while ((at = code.find(token, at)) != std::string::npos) {
      const std::size_t tok_start = at;
      at += token.size();
      if (tok_start > 0) {
        const char before = code[tok_start - 1];
        if (std::isalnum(static_cast<unsigned char>(before)) != 0 ||
            before == '_') {
          continue;  // Tail of a longer identifier.
        }
      }
      std::size_t p = tok_start + token.size();
      // Skip template arguments (ParallelMap<T>), counting '>' so nested
      // templates close correctly.
      while (p < code.size() &&
             std::isspace(static_cast<unsigned char>(code[p])) != 0) {
        ++p;
      }
      if (p < code.size() && code[p] == '<') {
        int angle = 0;
        for (; p < code.size(); ++p) {
          if (code[p] == '<') ++angle;
          if (code[p] == '>' && --angle == 0) {
            ++p;
            break;
          }
        }
        while (p < code.size() &&
               std::isspace(static_cast<unsigned char>(code[p])) != 0) {
          ++p;
        }
      }
      if (p >= code.size() || code[p] != '(') continue;  // Not a call.
      int depth = 0;
      std::size_t close = p;
      for (; close < code.size(); ++close) {
        if (code[close] == '(') ++depth;
        if (code[close] == ')' && --depth == 0) break;
      }
      if (close >= code.size()) continue;  // Unbalanced; give up here.
      bodies.emplace_back(p + 1, close);
      at = p;
    }
  }
  return bodies;
}

class FloatReduceRule : public Rule {
 public:
  std::string_view name() const override { return "float-reduce"; }
  std::string_view summary() const override {
    return "no shared accumulation inside parallel bodies; use "
           "ParallelOrderedReduce";
  }

  void CheckFile(const FileContext& file, const Corpus&,
                 Emitter* emitter) override {
    if (!file.InDir("src/")) return;
    // The runtime itself implements the ordered-reduce contract.
    if (file.InDir("src/common/parallel")) return;
    if (file.code.find(std::string("Parallel")) == std::string::npos) return;

    for (const auto& [begin, end] : FindParallelBodies(file.code)) {
      const std::string body = file.code.substr(begin, end - begin);

      // Identifiers owned by one loop iteration: lambda parameters plus
      // anything declared inside the body. Accumulating into those is the
      // normal per-index partial-sum pattern and stays legal.
      std::set<std::string> locals;
      std::smatch params;
      if (std::regex_search(body, params, LambdaParamsRegex())) {
        const std::string list = params.str(1);
        const std::regex ident_re(R"(([A-Za-z_]\w*)\s*(?:,|$))");
        auto it = std::sregex_iterator(list.begin(), list.end(), ident_re);
        for (; it != std::sregex_iterator(); ++it) {
          locals.insert((*it)[1].str());
        }
      }
      for (const std::string& line : SplitLines(body)) {
        std::smatch decl;
        if (!std::regex_search(line, decl, DeclLineRegex())) continue;
        if (IsDeclKeyword(decl.str(1))) continue;
        locals.insert(decl.str(2));
        const std::string rest = decl.suffix().str();
        auto it = std::sregex_iterator(rest.begin(), rest.end(),
                                       ExtraDeclaratorRegex());
        for (; it != std::sregex_iterator(); ++it) {
          locals.insert((*it)[1].str());
        }
      }

      auto it = std::sregex_iterator(body.begin(), body.end(),
                                     CompoundAssignRegex());
      for (; it != std::sregex_iterator(); ++it) {
        const std::smatch& m = *it;
        const std::string base = m.str(1);
        if (locals.count(base) > 0) continue;
        const std::size_t pos =
            begin + static_cast<std::size_t>(m.position(1));
        emitter->Report(
            file, file.LineOfPos(pos), *this,
            "'" + base + m.str(2) + " " + m.str(3) +
                "=' accumulates into captured state inside a parallel "
                "body: completion order is nondeterministic, so "
                "floating-point results differ run to run; compute "
                "per-index parts and fold with ParallelOrderedReduce");
      }
    }
  }
};

TAMP_REGISTER_ANALYSIS_RULE(FloatReduceRule);

}  // namespace
}  // namespace tamp::analyze
