#include <map>
#include <regex>
#include <set>
#include <string>

#include "analysis.h"

namespace tamp::analyze {
namespace {

/// A metric instrument fetched with a string literal name:
/// GetCounter("km.solves"), GetHistogram(\n    "assign.index_build_s", ...).
/// \s crosses newlines, so names on continuation lines are caught.
const std::regex& MetricLiteralRegex() {
  static const std::regex re(
      R"(Get(Counter|Gauge|Histogram)\s*\(\s*"([^"]*)\")");
  return re;
}

/// Any Get* call at all — used to flag non-literal names, which the
/// manifest cannot vouch for.
const std::regex& MetricCallRegex() {
  static const std::regex re(
      R"(Get(?:Counter|Gauge|Histogram)\s*\(\s*([^\s]))");
  return re;
}

/// A span constructed with a literal name. The gap tolerates the two live
/// idioms — `obs::TraceSpan s("x")` and
/// `std::optional<obs::TraceSpan> s(std::in_place, "x")` — but stops at
/// statement/body boundaries so unrelated later strings don't bind.
const std::regex& SpanLiteralRegex() {
  static const std::regex re(R"re(TraceSpan\b([^;{}"=]*)"([^"]*)")re");
  return re;
}

/// A counter reference bound to a local: `obs::Counter& n = r.GetCounter("x")`.
const std::regex& CounterBindingRegex() {
  static const std::regex re(
      R"(Counter&\s+([A-Za-z_]\w*)\s*=[^;]*GetCounter\s*\(\s*"([^"]*)\")");
  return re;
}

class ObsNameManifestRule : public Rule {
 public:
  std::string_view name() const override { return "obs-name-manifest"; }
  std::string_view summary() const override {
    return "obs names: literal, listed in names.inc, and actually used";
  }

  void CheckFile(const FileContext& file, const Corpus& corpus,
                 Emitter* emitter) override {
    // The registry implementation and the manifest itself are the contract,
    // not subject to it; the contract covers the instrumented library.
    if (!file.InDir("src/") || file.InDir("src/common/obs/")) return;

    std::set<std::string> manifest_names;
    for (const auto& [obs_name, line] : corpus.manifest) {
      manifest_names.insert(obs_name);
    }

    // The scans need literal string contents, so they run over the
    // comments-stripped (not string-stripped) view.
    const std::string& text = file.text_nc;

    std::set<std::size_t> literal_call_offsets;
    auto scan_names = [&](const std::regex& re) {
      for (auto it = std::sregex_iterator(text.begin(), text.end(), re);
           it != std::sregex_iterator(); ++it) {
        const std::smatch& m = *it;
        literal_call_offsets.insert(static_cast<std::size_t>(m.position(0)));
        const std::string obs_name = m.str(2);
        referenced_.insert(obs_name);
        if (manifest_names.count(obs_name) == 0) {
          emitter->Report(
              file, file.LineOfPos(static_cast<std::size_t>(m.position(0))),
              *this,
              "obs name \"" + obs_name +
                  "\" is not in src/common/obs/names.inc; add it to the "
                  "manifest (or fix the typo) so the bench gate and "
                  "dashboards can rely on it");
        }
      }
    };
    scan_names(MetricLiteralRegex());
    scan_names(SpanLiteralRegex());

    // Non-literal metric names defeat the manifest in both directions.
    for (auto it = std::sregex_iterator(text.begin(), text.end(),
                                        MetricCallRegex());
         it != std::sregex_iterator(); ++it) {
      const std::smatch& m = *it;
      if (m.str(1) == "\"") continue;
      emitter->Report(
          file, file.LineOfPos(static_cast<std::size_t>(m.position(0))),
          *this,
          "obs instrument fetched with a non-literal name; the manifest "
          "check cannot vouch for dynamic names — use a string literal "
          "listed in names.inc");
    }

    // The PR-4 dead-counter class: a counter registered (so it appears in
    // every snapshot, reading as a confident zero) but never incremented
    // in the translation unit that owns it.
    for (auto it = std::sregex_iterator(text.begin(), text.end(),
                                        CounterBindingRegex());
         it != std::sregex_iterator(); ++it) {
      const std::smatch& m = *it;
      const std::string var = m.str(1);
      const std::regex use_re("\\b" + var + R"(\s*\.\s*Increment\s*\()");
      if (!std::regex_search(text, use_re)) {
        emitter->Report(
            file, file.LineOfPos(static_cast<std::size_t>(m.position(0))),
            *this,
            "counter '" + var + "' (\"" + m.str(2) +
                "\") is registered but never incremented in this file — it "
                "will report a plausible 0 forever; increment it or drop "
                "the registration");
      }
    }
  }

  void Finish(const Corpus& corpus, Emitter* emitter) override {
    // Reverse direction: every manifest name must still be referenced.
    // Only meaningful when the whole src/ tree was scanned — a partial
    // scan would see nearly every name as dead.
    if (!corpus.covers_src) return;
    if (!corpus.manifest_loaded) {
      emitter->ReportAt(corpus.manifest_rel, 1, *this,
                        "obs name manifest missing; create it with one "
                        "TAMP_OBS_NAME(\"<name>\") line per metric/span");
      return;
    }
    std::set<std::string> seen;
    for (const auto& [obs_name, line] : corpus.manifest) {
      if (!seen.insert(obs_name).second) {
        emitter->ReportAt(corpus.manifest_rel, line, *this,
                          "duplicate manifest entry \"" + obs_name + "\"");
      }
      if (referenced_.count(obs_name) == 0) {
        emitter->ReportAt(corpus.manifest_rel, line, *this,
                          "manifest name \"" + obs_name +
                              "\" is referenced nowhere in src/; delete the "
                              "entry or restore the instrumentation");
      }
    }
  }

 private:
  std::set<std::string> referenced_;
};

TAMP_REGISTER_ANALYSIS_RULE(ObsNameManifestRule);

}  // namespace
}  // namespace tamp::analyze
