#include <regex>
#include <string>

#include "analysis.h"

namespace tamp::analyze {
namespace {

// Float literal: 1.0, .5, 2., 1e-3, 1.5e+2f — with optional f/F/l/L suffix.
const char* kFloatLit =
    R"((?:\d+\.\d*|\.\d+|\d+[eE][-+]?\d+)(?:[eE][-+]?\d+)?[fFlL]?)";

const std::regex& FloatEqRegex() {
  // ==/!= with a float literal on either side. Negative lookbehind is not
  // available in std::regex, so <=/>= are excluded by requiring the char
  // before == to not be <, >, !, or = when the literal is on the right.
  static const std::regex re(
      std::string(R"((?:^|[^<>!=])(==|!=)\s*[-+]?)") + kFloatLit +
      std::string(R"(|)") + kFloatLit + std::string(R"(\s*(==|!=)[^=])"));
  return re;
}

class FloatEqualityRule : public Rule {
 public:
  std::string_view name() const override { return "float-equality"; }
  std::string_view summary() const override {
    return "no raw ==/!= against floating-point literals";
  }

  void CheckFile(const FileContext& file, const Corpus&,
                 Emitter* emitter) override {
    for (std::size_t i = 0; i < file.code_lines.size(); ++i) {
      if (std::regex_search(file.code_lines[i], FloatEqRegex())) {
        emitter->Report(file, i + 1, *this,
                        "raw ==/!= against a floating-point literal; "
                        "compare with a tolerance or mark the line "
                        "lint" +
                            std::string(":allow(float-equality)"));
      }
    }
  }
};

TAMP_REGISTER_ANALYSIS_RULE(FloatEqualityRule);

}  // namespace
}  // namespace tamp::analyze
