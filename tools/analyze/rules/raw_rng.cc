#include <regex>
#include <string>

#include "analysis.h"

namespace tamp::analyze {
namespace {

const std::regex& RawRandRegex() {
  // rand( / srand( / random_shuffle as standalone tokens, plus the
  // implementation-defined default_random_engine.
  static const std::regex re(
      R"((^|[^\w:])(s?rand\s*\(|random_shuffle|default_random_engine))");
  return re;
}

class RawRngRule : public Rule {
 public:
  std::string_view name() const override { return "raw-rng"; }
  std::string_view summary() const override {
    return "no raw/unseeded RNG outside src/common/rng";
  }

  void CheckFile(const FileContext& file, const Corpus&,
                 Emitter* emitter) override {
    // Exemption: the RNG wrapper module is the one place allowed to touch
    // raw generators; its job is to seed them.
    if (file.InDir("src/common/rng")) return;
    for (std::size_t i = 0; i < file.code_lines.size(); ++i) {
      std::smatch match;
      if (std::regex_search(file.code_lines[i], match, RawRandRegex())) {
        emitter->Report(file, i + 1, *this,
                        "raw/unseeded RNG outside src/common/rng (matched "
                        "'" +
                            match.str(2) +
                            "'); use tamp::common::Rng for reproducibility");
      }
    }
  }
};

TAMP_REGISTER_ANALYSIS_RULE(RawRngRule);

}  // namespace
}  // namespace tamp::analyze
