#include <string>

#include "analysis.h"

namespace tamp::analyze {
namespace {

class UnusedSuppressionRule : public Rule {
 public:
  std::string_view name() const override { return "unused-suppression"; }
  Severity severity() const override { return Severity::kWarn; }
  std::string_view summary() const override {
    return "every suppression marker must suppress something";
  }

  void PostSuppression(const Corpus&, const std::vector<UnusedAllow>& unused,
                       Emitter* emitter) override {
    for (const UnusedAllow& site : unused) {
      std::string which;
      if (site.spec->all) {
        which = "bare marker";
      } else {
        for (const std::string& rule : site.spec->rules) {
          which += (which.empty() ? "" : ", ") + rule;
        }
        which = "marker for " + which;
      }
      emitter->ReportAt(site.file, site.line, *this,
                        which +
                            " suppresses nothing on this line; the "
                            "violation it excused is gone — delete the "
                            "marker so it cannot mask a future one");
    }
  }
};

TAMP_REGISTER_ANALYSIS_RULE(UnusedSuppressionRule);

}  // namespace
}  // namespace tamp::analyze
