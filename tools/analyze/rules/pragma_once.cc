#include <string>

#include "analysis.h"

namespace tamp::analyze {
namespace {

// The needle is assembled at runtime so this file does not contain the
// directive it checks for.
const std::string kPragmaOnce = std::string("#pragma") + " once";

class PragmaOnceRule : public Rule {
 public:
  std::string_view name() const override { return "pragma-once"; }
  std::string_view summary() const override {
    return "every header starts with the include guard pragma";
  }

  void CheckFile(const FileContext& file, const Corpus&,
                 Emitter* emitter) override {
    if (!file.is_header) return;
    if (file.code.find(kPragmaOnce) == std::string::npos) {
      emitter->Report(file, 1, *this,
                      "header missing '" + kPragmaOnce + "'");
    }
  }
};

TAMP_REGISTER_ANALYSIS_RULE(PragmaOnceRule);

}  // namespace
}  // namespace tamp::analyze
