#include <regex>
#include <set>
#include <string>

#include "analysis.h"

namespace tamp::analyze {
namespace {

// Scope: the directories that compute assignment plans. Hash-order
// iteration there feeds accumulation or matching order and silently breaks
// the bit-identical-plans contract (DESIGN.md §4d) the parity tests pin.
constexpr const char* kScopes[] = {"src/assign/", "src/core/", "src/meta/"};

const std::regex& UnorderedDeclRegex() {
  // A (possibly reference) variable declared with an unordered container
  // type on one line: `std::unordered_map<int64_t, double>& min_b = ...;`.
  // Greedy `<.*>` swallows nested template arguments; the terminator set
  // includes `,` and `)` so function parameters are collected too.
  static const std::regex re(
      R"(unordered_(?:map|set|multimap|multiset)\s*<.*>\s*[&]?\s*([A-Za-z_]\w*)\s*[;=({,)])");
  return re;
}

const std::regex& RangeForRegex() {
  static const std::regex re(R"(for\s*\(.*[^:]:\s*([A-Za-z_]\w*)\s*\))");
  return re;
}

const std::regex& BeginCallRegex() {
  static const std::regex re(
      R"(([A-Za-z_]\w*)\s*\.\s*c?r?begin\s*\()");
  return re;
}

class UnorderedIterationRule : public Rule {
 public:
  std::string_view name() const override { return "unordered-iteration"; }
  std::string_view summary() const override {
    return "no iteration over unordered containers in plan-computing code";
  }

  void CheckFile(const FileContext& file, const Corpus&,
                 Emitter* emitter) override {
    bool scoped = false;
    for (const char* scope : kScopes) scoped = scoped || file.InDir(scope);
    if (!scoped) return;

    // Pass 1: collect identifiers declared (or bound by reference) with an
    // unordered container type anywhere in the file.
    std::set<std::string> unordered_vars;
    for (const std::string& line : file.code_lines) {
      auto begin = std::sregex_iterator(line.begin(), line.end(),
                                        UnorderedDeclRegex());
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        unordered_vars.insert((*it)[1].str());
      }
    }
    if (unordered_vars.empty()) return;

    // Pass 2: flag range-for over, or begin() iteration of, any of them.
    // Lookup-only use (find/emplace/count/clear) stays legal — the hazard
    // is order-dependent traversal, not hashing itself.
    for (std::size_t i = 0; i < file.code_lines.size(); ++i) {
      const std::string& line = file.code_lines[i];
      std::smatch match;
      std::string var;
      if (std::regex_search(line, match, RangeForRegex()) &&
          unordered_vars.count(match.str(1)) > 0) {
        var = match.str(1);
      } else if (std::regex_search(line, match, BeginCallRegex()) &&
                 unordered_vars.count(match.str(1)) > 0) {
        var = match.str(1);
      }
      if (!var.empty()) {
        emitter->Report(
            file, i + 1, *this,
            "iteration over unordered container '" + var +
                "' visits elements in hash order, which is unspecified "
                "and breaks bit-identical plans; iterate a sorted copy of "
                "the keys, or use std::map/std::vector");
      }
    }
  }
};

TAMP_REGISTER_ANALYSIS_RULE(UnorderedIterationRule);

}  // namespace
}  // namespace tamp::analyze
