#include <string>

#include "analysis.h"

namespace tamp::analyze {
namespace {

const std::string kUsingNamespace = std::string("using ") + "namespace";

class UsingNamespaceInHeaderRule : public Rule {
 public:
  std::string_view name() const override {
    return "using-namespace-in-header";
  }
  std::string_view summary() const override {
    return "no using-directives in headers (they leak into every includer)";
  }

  void CheckFile(const FileContext& file, const Corpus&,
                 Emitter* emitter) override {
    if (!file.is_header) return;
    for (std::size_t i = 0; i < file.code_lines.size(); ++i) {
      if (file.code_lines[i].find(kUsingNamespace) != std::string::npos) {
        emitter->Report(file, i + 1, *this,
                        "using-directive in a header leaks into every "
                        "includer; use explicit qualification");
      }
    }
  }
};

TAMP_REGISTER_ANALYSIS_RULE(UsingNamespaceInHeaderRule);

}  // namespace
}  // namespace tamp::analyze
