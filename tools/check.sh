#!/usr/bin/env bash
# One-command pre-merge gate for the TAMP repo.
#
#   tools/check.sh                 Release build + ctest, the bench metrics
#                                  gate (micro benches vs bench/baselines/),
#                                  clang-tidy (when installed), ASan+UBSan
#                                  build + ctest, a TSan build + ctest over
#                                  the concurrency tests at TAMP_THREADS=4,
#                                  and the tamp_analyze static-analysis
#                                  gate. Exits nonzero on the first failure.
#   tools/check.sh --analyze-only  Only the analyze gate (and its
#                                  self-tests). --lint-only is a legacy
#                                  alias.
#
# Options:
#   --analyze-binary PATH  Use an already-built tamp_analyze instead of
#                          building one (used by the ctest smoke entry).
#                          --lint-binary is a legacy alias.
#   --jobs N               Parallel build jobs (default: nproc).
#
# When clang-tidy is on PATH, the Release stage also runs it with the repo
# .clang-tidy config over the library sources (advisory unless
# TAMP_TIDY_WERROR=1).

set -u -o pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"
ANALYZE_ONLY=0
ANALYZE_BINARY=""

while [ $# -gt 0 ]; do
  case "$1" in
    --analyze-only|--lint-only) ANALYZE_ONLY=1 ;;
    --analyze-binary|--lint-binary) ANALYZE_BINARY="$2"; shift ;;
    --jobs) JOBS="$2"; shift ;;
    *) echo "check.sh: unknown option '$1'" >&2; exit 2 ;;
  esac
  shift
done

FAILURES=0

run_stage() {
  local name="$1"; shift
  echo "==> [$name] $*"
  if "$@"; then
    echo "==> [$name] OK"
  else
    echo "==> [$name] FAILED" >&2
    FAILURES=$((FAILURES + 1))
    return 1
  fi
}

build_analyze_binary() {
  local dir="$REPO_ROOT/build-check-analyze"
  cmake -B "$dir" -S "$REPO_ROOT" \
        -DTAMP_BUILD_TESTS=OFF -DTAMP_BUILD_BENCHMARKS=OFF \
        -DTAMP_BUILD_EXAMPLES=OFF >/dev/null \
    && cmake --build "$dir" --target tamp_analyze -j "$JOBS" >/dev/null \
    && ANALYZE_BINARY="$dir/tools/tamp_analyze"
}

analyze_stage() {
  if [ -z "$ANALYZE_BINARY" ]; then
    run_stage "analyze-build" build_analyze_binary || return 1
  fi
  run_stage "analyze" "$ANALYZE_BINARY" "$REPO_ROOT" || return 1
  run_stage "analyze-self-test" "$ANALYZE_BINARY" --self-test all \
            "$REPO_ROOT" || return 1
}

full_build_stage() {
  local name="$1" dir="$2"; shift 2
  run_stage "$name-configure" cmake -B "$dir" -S "$REPO_ROOT" \
            -DTAMP_WERROR=ON "$@" || return 1
  run_stage "$name-build" cmake --build "$dir" -j "$JOBS" || return 1
  run_stage "$name-ctest" ctest --test-dir "$dir" --output-on-failure \
            -j "$JOBS" || return 1
}

tsan_stage() {
  local dir="$REPO_ROOT/build-check-tsan"
  run_stage "tsan-configure" cmake -B "$dir" -S "$REPO_ROOT" \
            -DTAMP_WERROR=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo \
            -DTAMP_SANITIZE=thread || return 1
  run_stage "tsan-build" cmake --build "$dir" -j "$JOBS" || return 1
  # Force a multi-threaded pool so TSan actually observes interleavings;
  # with the default TAMP_THREADS the single-core CI box would take the
  # serial path and the stage would vacuously pass.
  run_stage "tsan-ctest" env TAMP_THREADS=4 ctest --test-dir "$dir" \
            --output-on-failure -j "$JOBS" || return 1
}

# Metrics-regression gate: re-emit each micro bench target's
# BENCH_micro_*.json from the release build and diff its deterministic
# work-count metrics against the committed bench/baselines/ copy. Timing
# ("stages", "_s" keys, "threads") is advisory in tamp_bench_compare, so
# this is machine-independent; min_time stays tiny because only the counts
# are gated. The committed 1- vs 4-thread table JSONs are cross-compared
# too, pinning the bit-identical-across-threads contract.
bench_gate_stage() {
  local dir="$REPO_ROOT/build-check-release"
  local compare="$dir/tools/tamp_bench_compare"
  local baselines="$REPO_ROOT/bench/baselines"
  local target
  for target in micro_matching micro_nn micro_similarity micro_cluster \
                micro_candidates micro_incremental; do
    run_stage "bench-run-$target" env TAMP_BENCH_JSON_DIR="$dir" \
              "$dir/bench/bench_$target" --benchmark_min_time=0.01 \
              || return 1
    run_stage "bench-gate-$target" "$compare" \
              "$baselines/BENCH_$target.json" \
              "$dir/BENCH_$target.json" || return 1
  done
  # The event-driven simulator's headline bench: every (dataset, scenario)
  # workload spec through the event core. Its per-spec event counts are
  # pure functions of the workload seeds, so they gate bitwise; the
  # events/second figures (`*_s` / `events_per_s` keys) stay advisory.
  run_stage "bench-run-stream" env TAMP_BENCH_JSON_DIR="$dir" \
            "$dir/bench/bench_stream" || return 1
  run_stage "bench-gate-stream" "$compare" \
            "$baselines/BENCH_stream.json" \
            "$dir/BENCH_stream.json" || return 1
  # Geo-sharded assignment at fleet scale (W = 1k/10k/100k synthetic
  # clustered fleets): shard counts, max shard size, candidate rows and
  # matched pairs are pure functions of the synthesis seeds and gate
  # bitwise; assign_per_s and the `_s` stage clocks stay advisory.
  run_stage "bench-run-scale" env TAMP_BENCH_JSON_DIR="$dir" \
            "$dir/bench/bench_scale" || return 1
  run_stage "bench-gate-scale" "$compare" \
            "$baselines/BENCH_scale.json" \
            "$dir/BENCH_scale.json" || return 1
  run_stage "bench-gate-threads-invariance" "$compare" \
            "$baselines/BENCH_table4_cluster_ablation.threads1.json" \
            "$baselines/BENCH_table4_cluster_ablation.threads4.json" \
            || return 1
}

clang_tidy_stage() {
  command -v clang-tidy >/dev/null 2>&1 || {
    echo "==> [clang-tidy] WARNING: clang-tidy not on PATH — the tidy gate" \
         "(bugprone-*/concurrency-*/performance-*) DID NOT RUN; install" \
         "clang-tidy to close this gap" >&2
    return 0
  }
  local dir="$REPO_ROOT/build-check-release"
  local files
  files=$(find "$REPO_ROOT/src" -name '*.cc' | sort)
  echo "==> [clang-tidy] running over src/ with $(clang-tidy --version \
       | grep -o 'version [0-9.]*' | head -1)"
  # shellcheck disable=SC2086
  if clang-tidy -p "$dir" $files --quiet; then
    echo "==> [clang-tidy] OK"
  else
    echo "==> [clang-tidy] findings reported" >&2
    if [ "${TAMP_TIDY_WERROR:-0}" = "1" ]; then
      FAILURES=$((FAILURES + 1))
    fi
  fi
}

if [ "$ANALYZE_ONLY" = "1" ]; then
  analyze_stage
else
  full_build_stage "release" "$REPO_ROOT/build-check-release" \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  bench_gate_stage
  clang_tidy_stage
  full_build_stage "asan-ubsan" "$REPO_ROOT/build-check-asan" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTAMP_SANITIZE=address,undefined
  tsan_stage
  analyze_stage
fi

if [ "$FAILURES" -gt 0 ]; then
  echo "check.sh: $FAILURES stage(s) failed" >&2
  exit 1
fi
echo "check.sh: all stages passed"
