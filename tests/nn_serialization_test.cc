#include "nn/serialization.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tamp::nn {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

ModelBundle MakeBundle(int sets) {
  ModelBundle bundle;
  bundle.config.input_dim = 3;
  bundle.config.hidden_dim = 5;
  bundle.config.seq_out = 2;
  EncoderDecoder model(bundle.config);
  tamp::Rng rng(7);
  for (int s = 0; s < sets; ++s) {
    bundle.param_sets.push_back(model.InitParams(rng));
  }
  return bundle;
}

TEST(SerializationTest, RoundTripIsExact) {
  std::string path = TempPath("bundle_roundtrip.tamp");
  ModelBundle bundle = MakeBundle(3);
  ASSERT_TRUE(SaveModelBundle(path, bundle).ok());

  StatusOr<ModelBundle> loaded = LoadModelBundle(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->config.input_dim, 3);
  EXPECT_EQ(loaded->config.hidden_dim, 5);
  EXPECT_EQ(loaded->config.seq_out, 2);
  ASSERT_EQ(loaded->param_sets.size(), 3u);
  for (size_t s = 0; s < 3; ++s) {
    ASSERT_EQ(loaded->param_sets[s].size(), bundle.param_sets[s].size());
    for (size_t i = 0; i < bundle.param_sets[s].size(); ++i) {
      // %.17g round-trips doubles exactly.
      EXPECT_EQ(loaded->param_sets[s][i], bundle.param_sets[s][i]);
    }
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, LoadedModelPredictsIdentically) {
  std::string path = TempPath("bundle_predict.tamp");
  ModelBundle bundle = MakeBundle(1);
  ASSERT_TRUE(SaveModelBundle(path, bundle).ok());
  StatusOr<ModelBundle> loaded = LoadModelBundle(path);
  ASSERT_TRUE(loaded.ok());

  EncoderDecoder model(bundle.config);
  Sequence input = {{0.1, 0.2, 0.3}, {0.4, 0.5, 0.6}};
  Sequence a = model.Predict(bundle.param_sets[0], input);
  Sequence b = model.Predict(loaded->param_sets[0], input);
  ASSERT_EQ(a.size(), b.size());
  for (size_t t = 0; t < a.size(); ++t) EXPECT_EQ(a[t], b[t]);
  std::remove(path.c_str());
}

TEST(SerializationTest, EmptyBundleRoundTrips) {
  std::string path = TempPath("bundle_empty.tamp");
  ModelBundle bundle = MakeBundle(0);
  ASSERT_TRUE(SaveModelBundle(path, bundle).ok());
  StatusOr<ModelBundle> loaded = LoadModelBundle(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->param_sets.empty());
  std::remove(path.c_str());
}

TEST(SerializationTest, SaveRejectsWrongParamCount) {
  ModelBundle bundle = MakeBundle(1);
  bundle.param_sets[0].pop_back();
  Status status = SaveModelBundle(TempPath("bundle_bad.tamp"), bundle);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SerializationTest, LoadMissingFileIsNotFound) {
  StatusOr<ModelBundle> result =
      LoadModelBundle(TempPath("does_not_exist.tamp"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(SerializationTest, LoadRejectsWrongMagic) {
  std::string path = TempPath("bundle_magic.tamp");
  std::ofstream(path) << "NOT A MODEL\n";
  StatusOr<ModelBundle> result = LoadModelBundle(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, LoadRejectsTruncatedData) {
  std::string path = TempPath("bundle_trunc.tamp");
  ModelBundle bundle = MakeBundle(1);
  ASSERT_TRUE(SaveModelBundle(path, bundle).ok());
  // Chop off the tail of the file.
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path) << contents.substr(0, contents.size() / 2);
  StatusOr<ModelBundle> result = LoadModelBundle(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, LoadRejectsNegativeDimensions) {
  std::string path = TempPath("bundle_dims.tamp");
  std::ofstream(path) << "TAMP_MODEL v1\n-3 5 2 1\n0 100\n";
  StatusOr<ModelBundle> result = LoadModelBundle(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tamp::nn
