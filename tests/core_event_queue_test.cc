#include "core/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace tamp::core {
namespace {

std::vector<SimEvent> Drain(EventQueue& queue) {
  std::vector<SimEvent> out;
  while (!queue.empty()) out.push_back(queue.Pop());
  return out;
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  queue.Push({30.0, EventKind::kAssignTrigger, 0});
  queue.Push({10.0, EventKind::kTaskArrival, 0});
  queue.Push({20.0, EventKind::kWorkerLogin, 0});
  std::vector<SimEvent> order = Drain(queue);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0].time_min, 10.0);
  EXPECT_EQ(order[1].time_min, 20.0);
  EXPECT_EQ(order[2].time_min, 30.0);
}

TEST(EventQueueTest, SameInstantOrdersByKindThenId) {
  // The same-instant priority contract (DESIGN.md §4j): arrivals and
  // expiries settle, then logins, then completions, THEN the assignment
  // trigger, and logouts last — so a session ending exactly at a trigger
  // still serves it and a task expiring exactly at a trigger never runs.
  EventQueue queue;
  queue.Push({5.0, EventKind::kWorkerLogout, 0});
  queue.Push({5.0, EventKind::kAssignTrigger, 0});
  queue.Push({5.0, EventKind::kWorkerCompletion, 2});
  queue.Push({5.0, EventKind::kWorkerLogin, 1});
  queue.Push({5.0, EventKind::kTaskExpiry, 7});
  queue.Push({5.0, EventKind::kTaskArrival, 9});
  std::vector<SimEvent> order = Drain(queue);
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order[0].kind, EventKind::kTaskArrival);
  EXPECT_EQ(order[1].kind, EventKind::kTaskExpiry);
  EXPECT_EQ(order[2].kind, EventKind::kWorkerLogin);
  EXPECT_EQ(order[3].kind, EventKind::kWorkerCompletion);
  EXPECT_EQ(order[4].kind, EventKind::kAssignTrigger);
  EXPECT_EQ(order[5].kind, EventKind::kWorkerLogout);
}

TEST(EventQueueTest, SameKindTieBreaksOnStableId) {
  EventQueue queue;
  queue.Push({1.0, EventKind::kTaskArrival, 5});
  queue.Push({1.0, EventKind::kTaskArrival, 2});
  queue.Push({1.0, EventKind::kTaskArrival, 9});
  std::vector<SimEvent> order = Drain(queue);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0].id, 2);
  EXPECT_EQ(order[1].id, 5);
  EXPECT_EQ(order[2].id, 9);
}

TEST(EventQueueTest, PopSequenceIsInsertionOrderInvariant) {
  // The total-order contract: the pop sequence is a pure function of the
  // pushed multiset. Shuffle the same event set many ways (including
  // duplicate times across kinds) and expect the identical drain.
  std::vector<SimEvent> events;
  Rng rng(20250809);
  for (int i = 0; i < 200; ++i) {
    SimEvent event;
    // A coarse time grid forces plenty of exact ties.
    event.time_min = static_cast<double>(rng.UniformInt(0, 24));
    event.kind = static_cast<EventKind>(rng.UniformInt(0, 5));
    event.id = i;
    events.push_back(event);
  }
  std::vector<SimEvent> reference;
  {
    EventQueue queue;
    for (const SimEvent& event : events) queue.Push(event);
    reference = Drain(queue);
  }
  // The reference must respect the (time, kind, id) total order.
  for (size_t i = 1; i < reference.size(); ++i) {
    EXPECT_TRUE(EventBefore(reference[i - 1], reference[i]));
  }
  for (int shuffle = 0; shuffle < 10; ++shuffle) {
    rng.Shuffle(events);
    EventQueue queue;
    for (const SimEvent& event : events) queue.Push(event);
    EXPECT_EQ(Drain(queue), reference) << "shuffle " << shuffle;
  }
}

TEST(EventQueueTest, InterleavedPushPopKeepsOrder) {
  EventQueue queue;
  queue.Push({2.0, EventKind::kAssignTrigger, 0});
  queue.Push({1.0, EventKind::kTaskArrival, 0});
  EXPECT_EQ(queue.Pop().time_min, 1.0);
  // A push below the current front surfaces immediately.
  queue.Push({0.5, EventKind::kTaskArrival, 1});
  EXPECT_EQ(queue.Peek().time_min, 0.5);
  EXPECT_EQ(queue.Pop().id, 1);
  EXPECT_EQ(queue.Pop().kind, EventKind::kAssignTrigger);
  EXPECT_TRUE(queue.empty());
}

TEST(EventKindNameTest, AllNamed) {
  EXPECT_EQ(EventKindName(EventKind::kTaskArrival), "task_arrival");
  EXPECT_EQ(EventKindName(EventKind::kTaskExpiry), "task_expiry");
  EXPECT_EQ(EventKindName(EventKind::kWorkerLogin), "worker_login");
  EXPECT_EQ(EventKindName(EventKind::kWorkerCompletion),
            "worker_completion");
  EXPECT_EQ(EventKindName(EventKind::kAssignTrigger), "assign_trigger");
  EXPECT_EQ(EventKindName(EventKind::kWorkerLogout), "worker_logout");
}

}  // namespace
}  // namespace tamp::core
