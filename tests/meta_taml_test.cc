#include "meta/taml.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/encoder_decoder.h"

namespace tamp::meta {
namespace {

LearningTask MakeTask(int id, double vx, tamp::Rng& rng) {
  LearningTask task;
  task.worker_id = id;
  auto sample = [&]() {
    TrainingSample s;
    double x = rng.Uniform(0.2, 0.6), y = rng.Uniform(0.2, 0.6);
    for (int t = 0; t < 3; ++t) s.input.push_back({x + vx * t, y});
    s.target.push_back({x + vx * 3, y});
    s.target_km.push_back({(x + vx * 3) * 10.0, y * 10.0});
    return s;
  };
  for (int i = 0; i < 6; ++i) task.support.push_back(sample());
  for (int i = 0; i < 4; ++i) task.query.push_back(sample());
  for (const auto& s : task.support) {
    task.location_cloud.push_back(s.target_km[0]);
  }
  return task;
}

nn::EncoderDecoder SmallModel() {
  nn::Seq2SeqConfig config;
  config.hidden_dim = 6;
  return nn::EncoderDecoder(config);
}

/// Builds a two-leaf tree: leaf A = tasks {0,1}, leaf B = tasks {2,3}.
std::unique_ptr<cluster::TaskTreeNode> TwoLeafTree() {
  auto root = std::make_unique<cluster::TaskTreeNode>();
  root->tasks = {0, 1, 2, 3};
  for (int half = 0; half < 2; ++half) {
    auto leaf = std::make_unique<cluster::TaskTreeNode>();
    leaf->tasks = half == 0 ? std::vector<int>{0, 1} : std::vector<int>{2, 3};
    leaf->parent = root.get();
    leaf->depth = 1;
    root->children.push_back(std::move(leaf));
  }
  return root;
}

TEST(InitializeTreeParamsTest, PropagatesToAllNodes) {
  auto root = TwoLeafTree();
  std::vector<double> theta = {1.0, 2.0, 3.0};
  InitializeTreeParams(*root, theta);
  EXPECT_EQ(root->theta, theta);
  for (const auto& child : root->children) EXPECT_EQ(child->theta, theta);
}

TEST(TamlTest, TrainsLeavesAndUpdatesInteriorNodes) {
  tamp::Rng rng(3);
  nn::EncoderDecoder model = SmallModel();
  std::vector<LearningTask> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(MakeTask(i, i < 2 ? 0.04 : -0.04, rng));
  }
  auto root = TwoLeafTree();
  std::vector<double> init = model.InitParams(rng);
  InitializeTreeParams(*root, init);

  MetaTrainConfig config;
  config.iterations = 10;
  config.batch_size = 2;
  TamlResult result = Taml(*root, tasks, model, config, rng);

  EXPECT_GT(result.avg_loss, 0.0);
  EXPECT_EQ(result.gradient.size(), model.param_count());
  // Leaves must have moved away from the shared initialization...
  for (const auto& child : root->children) {
    EXPECT_NE(child->theta, init);
  }
  // ...and in different directions (their data differs).
  EXPECT_NE(root->children[0]->theta, root->children[1]->theta);
  // The interior node also takes a (single) meta step.
  EXPECT_NE(root->theta, init);
}

TEST(TamlTest, SingleNodeTreeEqualsMetaTraining) {
  tamp::Rng rng(5);
  nn::EncoderDecoder model = SmallModel();
  std::vector<LearningTask> tasks = {MakeTask(0, 0.03, rng),
                                     MakeTask(1, 0.03, rng)};
  auto root = std::make_unique<cluster::TaskTreeNode>();
  root->tasks = {0, 1};
  InitializeTreeParams(*root, model.InitParams(rng));
  MetaTrainConfig config;
  config.iterations = 5;
  TamlResult result = Taml(*root, tasks, model, config, rng);
  EXPECT_GT(result.avg_loss, 0.0);
}

TEST(FindLeafForTaskTest, FindsCoveringLeaf) {
  auto root = TwoLeafTree();
  const cluster::TaskTreeNode* leaf0 = FindLeafForTask(*root, 1);
  ASSERT_NE(leaf0, nullptr);
  EXPECT_EQ(leaf0, root->children[0].get());
  const cluster::TaskTreeNode* leaf1 = FindLeafForTask(*root, 3);
  EXPECT_EQ(leaf1, root->children[1].get());
  EXPECT_EQ(FindLeafForTask(*root, 99), nullptr);
}

TEST(FindMostSimilarNodeTest, PicksTheMatchingCluster) {
  auto root = TwoLeafTree();
  // The newcomer resembles tasks 2 and 3.
  auto similarity_to = [](int task_id) {
    return task_id >= 2 ? 0.9 : 0.1;
  };
  const cluster::TaskTreeNode* best = FindMostSimilarNode(*root, similarity_to);
  EXPECT_EQ(best, root->children[1].get());
}

TEST(FindMostSimilarNodeTest, RootWinsWhenSimilarityIsBalanced) {
  auto root = TwoLeafTree();
  // Equal similarity everywhere: every node scores the same; post-order
  // visits children first, so a strictly-greater root never replaces them,
  // and the result is one of the equally good nodes.
  const cluster::TaskTreeNode* best =
      FindMostSimilarNode(*root, [](int) { return 0.5; });
  ASSERT_NE(best, nullptr);
}

TEST(FindMostSimilarNodeTest, SingleNodeTreeReturnsRoot) {
  cluster::TaskTreeNode root;
  root.tasks = {0};
  const cluster::TaskTreeNode* best =
      FindMostSimilarNode(root, [](int) { return 0.3; });
  EXPECT_EQ(best, &root);
}

}  // namespace
}  // namespace tamp::meta
