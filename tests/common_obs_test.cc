// Tests of the observability layer (src/common/obs): metric registry
// behavior under the parallel pool, histogram bucket-edge semantics, trace
// span nesting/ordering, and the exported Chrome-trace / stats JSON.
#include "common/obs/metrics.h"
#include "common/obs/trace.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"

namespace tamp {
namespace {

/// Restores the configured thread count on scope exit so tests compose.
class ScopedThreads {
 public:
  explicit ScopedThreads(int threads) { SetParallelThreadCount(threads); }
  ~ScopedThreads() { SetParallelThreadCount(0); }
};

/// Enables trace recording for one test and leaves the recorder disabled
/// and empty afterwards, so trace tests compose in any order.
class ScopedTrace {
 public:
  ScopedTrace() {
    obs::TraceRecorder::Global().Clear();
    obs::TraceRecorder::Global().Enable();
  }
  ~ScopedTrace() {
    obs::TraceRecorder::Global().Disable();
    obs::TraceRecorder::Global().Clear();
  }
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(CounterTest, IncrementValueReset) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(GaugeTest, KeepsLastValue) {
  obs::Gauge g;
  g.Set(2.5);
  g.Set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(HistogramTest, EdgesAreInclusiveUpperBounds) {
  obs::Histogram h({1.0, 2.0, 5.0});
  h.Record(0.5);  // bucket 0 (<= 1)
  h.Record(1.0);  // bucket 0: an exact edge hit belongs to that bucket
  h.Record(1.5);  // bucket 1 (<= 2)
  h.Record(2.0);  // bucket 1
  h.Record(5.0);  // bucket 2 (<= 5)
  h.Record(5.1);  // overflow bucket
  EXPECT_EQ(h.bucket(0), 2);
  EXPECT_EQ(h.bucket(1), 2);
  EXPECT_EQ(h.bucket(2), 1);
  EXPECT_EQ(h.bucket(3), 1);  // edges().size() = overflow
  EXPECT_EQ(h.count(), 6);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 5.0 + 5.1, 1e-12);
}

TEST(HistogramTest, SnapshotExportsCumulativeBuckets) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Histogram& h =
      registry.GetHistogram("test.obs.snapshot_hist", {0.5, 1.5});
  h.Reset();
  h.Record(0.25);
  h.Record(1.0);
  h.Record(9.0);
  const std::map<std::string, double> snap = registry.Snapshot();
  EXPECT_EQ(snap.at("test.obs.snapshot_hist.count"), 3.0);
  EXPECT_NEAR(snap.at("test.obs.snapshot_hist.sum"), 10.25, 1e-12);
  EXPECT_NEAR(snap.at("test.obs.snapshot_hist.avg"), 10.25 / 3.0, 1e-12);
  // Cumulative (Prometheus-style): le_0.5 <= le_1.5 <= le_inf == count.
  EXPECT_EQ(snap.at("test.obs.snapshot_hist.le_0.5"), 1.0);
  EXPECT_EQ(snap.at("test.obs.snapshot_hist.le_1.5"), 2.0);
  EXPECT_EQ(snap.at("test.obs.snapshot_hist.le_inf"), 3.0);
}

TEST(MetricsRegistryTest, ReturnsStableReferences) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter& a = registry.GetCounter("test.obs.stable");
  obs::Counter& b = registry.GetCounter("test.obs.stable");
  EXPECT_EQ(&a, &b);
  obs::Gauge& g1 = registry.GetGauge("test.obs.stable_gauge");
  obs::Gauge& g2 = registry.GetGauge("test.obs.stable_gauge");
  EXPECT_EQ(&g1, &g2);
}

TEST(MetricsRegistryTest, CountersExactUnderParallelPool) {
  // The contract the simulator/PPI instrumentation relies on: instruments
  // hit from pool workers lose no updates, so deterministic work counts
  // snapshot identically at any thread count. Run under TSan in
  // tools/check.sh with TAMP_THREADS=4.
  ScopedThreads threads(4);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter& counter = registry.GetCounter("test.obs.parallel_counter");
  obs::Histogram& hist =
      registry.GetHistogram("test.obs.parallel_hist", obs::CountEdges());
  counter.Reset();
  hist.Reset();
  constexpr size_t kN = 10000;
  ParallelFor(kN, [&](size_t i) {
    counter.Increment();
    hist.Record(static_cast<double>(i % 7));
  });
  EXPECT_EQ(counter.value(), static_cast<int64_t>(kN));
  EXPECT_EQ(hist.count(), static_cast<int64_t>(kN));
}

TEST(MetricsRegistryTest, ConcurrentRegistrationIsSafe) {
  // First-use registration may race from worker lambdas; every thread must
  // land on the same instrument.
  ScopedThreads threads(4);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  constexpr size_t kN = 512;
  ParallelFor(kN, [&](size_t i) {
    const std::string name =
        "test.obs.concurrent_reg." + std::to_string(i % 8);
    registry.GetCounter(name).Increment();
  });
  int64_t total = 0;
  for (int k = 0; k < 8; ++k) {
    total += registry
                 .GetCounter("test.obs.concurrent_reg." + std::to_string(k))
                 .value();
  }
  EXPECT_EQ(total, static_cast<int64_t>(kN));
}

TEST(TraceSpanTest, DisabledRecorderRecordsNothing) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Disable();
  recorder.Clear();
  { obs::TraceSpan span("test.disabled"); }
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST(TraceSpanTest, NestedSpansRecordDepthAndOrder) {
  ScopedTrace trace;
  {
    obs::TraceSpan outer("test.outer");
    { obs::TraceSpan inner("test.inner_a"); }
    { obs::TraceSpan inner("test.inner_b"); }
  }
  const std::vector<obs::TraceEvent> events =
      obs::TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Completion order: inner spans close before the outer one.
  EXPECT_EQ(events[0].name, "test.inner_a");
  EXPECT_EQ(events[1].name, "test.inner_b");
  EXPECT_EQ(events[2].name, "test.outer");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].depth, 0);
  // Containment: both inner spans start and end inside the outer span.
  const obs::TraceEvent& outer = events[2];
  for (int i = 0; i < 2; ++i) {
    EXPECT_GE(events[i].ts_us, outer.ts_us);
    EXPECT_LE(events[i].ts_us + events[i].dur_us,
              outer.ts_us + outer.dur_us);
  }
  // inner_a completes before inner_b starts.
  EXPECT_LE(events[0].ts_us + events[0].dur_us, events[1].ts_us);
}

TEST(TraceSpanTest, AggregateStatsGroupByName) {
  ScopedTrace trace;
  for (int i = 0; i < 3; ++i) {
    obs::TraceSpan span("test.repeated");
  }
  { obs::TraceSpan span("test.once"); }
  const std::map<std::string, obs::SpanStats> stats =
      obs::TraceRecorder::Global().AggregateStats();
  ASSERT_EQ(stats.count("test.repeated"), 1u);
  ASSERT_EQ(stats.count("test.once"), 1u);
  EXPECT_EQ(stats.at("test.repeated").count, 3);
  EXPECT_EQ(stats.at("test.once").count, 1);
  EXPECT_GE(stats.at("test.repeated").total_s, 0.0);
}

TEST(TraceSpanTest, ChromeTraceJsonParsesAndNests) {
  // Golden-file shape check: write the Chrome trace for a known nesting,
  // re-parse it with a minimal scanner, and verify the event structure
  // (names, depths, containment) survives the round trip.
  ScopedTrace trace;
  {
    obs::TraceSpan outer("test.golden_outer");
    obs::TraceSpan inner("test.golden_inner");
  }
  const std::string path =
      ::testing::TempDir() + "/tamp_obs_golden_trace.json";
  ASSERT_TRUE(obs::TraceRecorder::Global().WriteChromeTrace(path).ok());
  const std::string text = ReadFile(path);

  // Chrome trace_event envelope with one complete ("X") event per span.
  EXPECT_NE(text.find("\"traceEvents\": ["), std::string::npos);
  std::size_t x_events = 0;
  for (std::size_t at = text.find("\"ph\": \"X\""); at != std::string::npos;
       at = text.find("\"ph\": \"X\"", at + 1)) {
    ++x_events;
  }
  EXPECT_EQ(x_events, 2u);

  // Braces balance (the writer emits no nested objects beyond args).
  long depth = 0;
  for (char c : text) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);

  // Per-event fields: pull each event's name / ts / dur / args.depth.
  struct Parsed {
    std::string name;
    double ts = 0, dur = 0;
    int depth = 0;
  };
  std::vector<Parsed> parsed;
  auto number_after = [&text](std::size_t from, const char* field) {
    const std::size_t at = text.find(field, from);
    EXPECT_NE(at, std::string::npos) << field;
    return std::strtod(text.c_str() + at + std::strlen(field), nullptr);
  };
  for (std::size_t at = text.find("{\"name\": \"");
       at != std::string::npos; at = text.find("{\"name\": \"", at + 1)) {
    Parsed p;
    const std::size_t name_start = at + std::strlen("{\"name\": \"");
    p.name = text.substr(name_start, text.find('"', name_start) - name_start);
    p.ts = number_after(at, "\"ts\": ");
    p.dur = number_after(at, "\"dur\": ");
    p.depth = static_cast<int>(number_after(at, "\"depth\": "));
    parsed.push_back(p);
  }
  ASSERT_EQ(parsed.size(), 2u);
  // Completion order: inner closes first.
  EXPECT_EQ(parsed[0].name, "test.golden_inner");
  EXPECT_EQ(parsed[1].name, "test.golden_outer");
  EXPECT_EQ(parsed[0].depth, 1);
  EXPECT_EQ(parsed[1].depth, 0);
  EXPECT_GE(parsed[0].ts, parsed[1].ts);
  EXPECT_LE(parsed[0].ts + parsed[0].dur, parsed[1].ts + parsed[1].dur);
}

TEST(TraceSpanTest, StatsJsonCarriesMetricsAndSpans) {
  ScopedTrace trace;
  obs::MetricsRegistry::Global().GetCounter("test.obs.stats_json").Reset();
  obs::MetricsRegistry::Global().GetCounter("test.obs.stats_json")
      .Increment(7);
  { obs::TraceSpan span("test.stats_span"); }
  const std::string path = ::testing::TempDir() + "/tamp_obs_stats.json";
  ASSERT_TRUE(obs::WriteStatsJson(path).ok());
  const std::string text = ReadFile(path);
  EXPECT_NE(text.find("\"metrics\": {"), std::string::npos);
  EXPECT_NE(text.find("\"test.obs.stats_json\": 7"), std::string::npos);
  EXPECT_NE(text.find("\"spans\": {"), std::string::npos);
  EXPECT_NE(text.find("\"test.stats_span.count\": 1"), std::string::npos);
  EXPECT_NE(text.find("test.stats_span.total_s"), std::string::npos);
}

TEST(PresetEdgesTest, SortedAndStrictlyIncreasing) {
  for (const std::vector<double>* edges :
       {&obs::DurationEdgesSeconds(), &obs::CountEdges()}) {
    ASSERT_GE(edges->size(), 2u);
    for (size_t i = 1; i < edges->size(); ++i) {
      EXPECT_GT((*edges)[i], (*edges)[i - 1]) << "edge index " << i;
    }
  }
}

}  // namespace
}  // namespace tamp
