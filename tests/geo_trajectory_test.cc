#include "geo/trajectory.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tamp::geo {
namespace {

Trajectory MakeLine() {
  // Straight line along x at speed 1 km/min.
  return Trajectory({{0.0, 0.0, 0.0}, {5.0, 0.0, 5.0}, {10.0, 0.0, 10.0}});
}

TEST(TrajectoryTest, BasicAccessors) {
  Trajectory t = MakeLine();
  EXPECT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t.start_time(), 0.0);
  EXPECT_DOUBLE_EQ(t.end_time(), 10.0);
  EXPECT_DOUBLE_EQ(t.PathLength(), 10.0);
}

TEST(TrajectoryTest, AppendKeepsOrderInvariant) {
  Trajectory t;
  t.Append({0, 0, 1.0});
  t.Append({1, 0, 2.0});
  EXPECT_EQ(t.size(), 2u);
}

TEST(TrajectoryTest, PositionAtInterpolates) {
  Trajectory t = MakeLine();
  Point mid = t.PositionAt(2.5);
  EXPECT_NEAR(mid.x, 2.5, 1e-12);
  EXPECT_NEAR(mid.y, 0.0, 1e-12);
}

TEST(TrajectoryTest, PositionAtClampsToEndpoints) {
  Trajectory t = MakeLine();
  EXPECT_DOUBLE_EQ(t.PositionAt(-5.0).x, 0.0);
  EXPECT_DOUBLE_EQ(t.PositionAt(99.0).x, 10.0);
}

TEST(TrajectoryTest, PositionAtHandlesDwell) {
  // Same place at two timestamps (a dwell).
  Trajectory t({{1.0, 1.0, 0.0}, {1.0, 1.0, 10.0}, {2.0, 1.0, 11.0}});
  Point during_dwell = t.PositionAt(5.0);
  EXPECT_DOUBLE_EQ(during_dwell.x, 1.0);
}

TEST(TrajectoryTest, SliceSelectsWindow) {
  Trajectory t = MakeLine();
  Trajectory s = t.Slice(4.0, 11.0);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0].time_min, 5.0);
  EXPECT_DOUBLE_EQ(s[1].time_min, 10.0);
}

TEST(TrajectoryTest, LocationsDropTimestamps) {
  auto locs = MakeLine().Locations();
  ASSERT_EQ(locs.size(), 3u);
  EXPECT_DOUBLE_EQ(locs[1].x, 5.0);
}

TEST(TrajectoryTest, MinDistanceTo) {
  Trajectory t = MakeLine();
  EXPECT_NEAR(t.MinDistanceTo({5.0, 3.0}), 3.0, 1e-12);
}

// ---- Detour planning (the geometry behind Lemma 1 / the acceptance
// test). ----

TEST(PlanTaskVisitTest, OnRouteTaskHasZeroDetour) {
  Trajectory t = MakeLine();
  auto plan = PlanTaskVisit(t, {2.0, 0.0}, /*speed=*/1.0, /*deadline=*/100.0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_NEAR(plan->detour_km, 0.0, 1e-12);
  EXPECT_NEAR(plan->arrival_time_min, 2.0, 1e-12);
}

TEST(PlanTaskVisitTest, OffRouteDetourIsTriangleExcess) {
  Trajectory t = MakeLine();
  // Task 3km above x=5: insert on either segment; best insertion is at the
  // point (5, 0): detour = dis((0,0),(5,3)) + dis((5,3),(5,0)) - 5 for
  // segment 0... the optimum over both segments.
  auto plan = PlanTaskVisit(t, {5.0, 3.0}, 1.0, 100.0);
  ASSERT_TRUE(plan.has_value());
  double leg1 = std::sqrt(25.0 + 9.0);
  double expected = leg1 + 3.0 - 5.0;  // Segment 0 insertion.
  EXPECT_NEAR(plan->detour_km, expected, 1e-9);
}

TEST(PlanTaskVisitTest, DeadlineExcludesLateSegments) {
  Trajectory t = MakeLine();
  // Task at (6,1). Without a deadline the cheap insertion is segment 1
  // (departing (5,0) at t=5, arrival ~6.41). With deadline 6.2 only the
  // early, costlier insertion from (0,0) (arrival ~6.08) is feasible.
  auto unconstrained = PlanTaskVisit(t, {6.0, 1.0}, 1.0, /*deadline=*/100.0);
  ASSERT_TRUE(unconstrained.has_value());
  EXPECT_EQ(unconstrained->segment_index, 1u);

  auto plan = PlanTaskVisit(t, {6.0, 1.0}, 1.0, /*deadline=*/6.2);
  ASSERT_TRUE(plan.has_value());
  EXPECT_LE(plan->arrival_time_min, 6.2);
  EXPECT_EQ(plan->segment_index, 0u);
  EXPECT_GT(plan->detour_km, unconstrained->detour_km);
}

TEST(PlanTaskVisitTest, UnreachableDeadlineReturnsNullopt) {
  Trajectory t = MakeLine();
  auto plan = PlanTaskVisit(t, {100.0, 100.0}, 1.0, /*deadline=*/1.0);
  EXPECT_FALSE(plan.has_value());
}

TEST(PlanTaskVisitTest, EmptyTrajectoryReturnsNullopt) {
  Trajectory empty;
  EXPECT_FALSE(PlanTaskVisit(empty, {0, 0}, 1.0, 10.0).has_value());
}

TEST(PlanTaskVisitTest, ZeroSpeedReturnsNullopt) {
  EXPECT_FALSE(PlanTaskVisit(MakeLine(), {1, 0}, 0.0, 10.0).has_value());
}

TEST(PlanTaskVisitTest, OutAndBackFromFinalPoint) {
  // Single-point trajectory: only the out-and-back option exists.
  Trajectory t({{0.0, 0.0, 0.0}});
  auto plan = PlanTaskVisit(t, {2.0, 0.0}, 1.0, 10.0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_NEAR(plan->detour_km, 4.0, 1e-12);  // 2 km out + 2 km back.
  EXPECT_NEAR(plan->arrival_time_min, 2.0, 1e-12);
}

TEST(PlanTaskVisitTest, PrefersCheapestFeasibleInsertion) {
  // Route with a corner; task sits exactly on the second segment.
  Trajectory t({{0, 0, 0.0}, {4, 0, 4.0}, {4, 4, 8.0}});
  auto plan = PlanTaskVisit(t, {4.0, 2.0}, 1.0, 100.0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_NEAR(plan->detour_km, 0.0, 1e-12);
  EXPECT_EQ(plan->segment_index, 1u);
}

TEST(PlanFromPointTest, OutAndBackDetour) {
  auto plan = PlanFromPoint({0, 0}, /*now=*/10.0, {3.0, 4.0}, 1.0,
                            /*deadline=*/20.0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_NEAR(plan->detour_km, 10.0, 1e-12);
  EXPECT_NEAR(plan->arrival_time_min, 15.0, 1e-12);
}

TEST(PlanFromPointTest, DeadlineRespected) {
  EXPECT_FALSE(
      PlanFromPoint({0, 0}, 10.0, {3.0, 4.0}, 1.0, /*deadline=*/14.0)
          .has_value());
  EXPECT_TRUE(
      PlanFromPoint({0, 0}, 10.0, {3.0, 4.0}, 1.0, /*deadline=*/15.0)
          .has_value());
}

// ---- The running example of the paper (Fig. 2): worker w4 moves from
// (4,2) to (9,2) (speed 1/unit); task tau2 at (6,1) with deadline 4. ----
TEST(PlanTaskVisitTest, PaperRunningExampleWorker4Task2) {
  Trajectory w4({{4.0, 2.0, 0.0}, {9.0, 2.0, 5.0}});
  auto plan = PlanTaskVisit(w4, {6.0, 1.0}, 1.0, /*deadline=*/4.0);
  ASSERT_TRUE(plan.has_value());
  // Detour = dis((4,2),(6,1)) + dis((6,1),(9,2)) - 5.
  double expected =
      std::sqrt(4.0 + 1.0) + std::sqrt(9.0 + 1.0) - 5.0;
  EXPECT_NEAR(plan->detour_km, expected, 1e-9);
  EXPECT_LE(plan->arrival_time_min, 4.0);
}

}  // namespace
}  // namespace tamp::geo
