#include "data/tasks.h"

#include <gtest/gtest.h>

namespace tamp::data {
namespace {

geo::GridSpec TestGrid() { return geo::GridSpec(20.0, 10.0, 50, 100); }

std::vector<TaskHotspot> TestHotspots() {
  return {{{5.0, 5.0}, 0.5, 2.0}, {{15.0, 5.0}, 0.5, 1.0}};
}

TaskStreamConfig TestConfig() {
  TaskStreamConfig config;
  config.num_tasks = 500;
  config.horizon_start_min = 480.0;
  config.horizon_end_min = 1200.0;
  config.valid_lo_units = 3.0;
  config.valid_hi_units = 4.0;
  config.time_unit_min = 10.0;
  return config;
}

TEST(GenerateTaskStreamTest, CountAndIds) {
  tamp::Rng rng(3);
  auto tasks = GenerateTaskStream(TestConfig(), TestHotspots(), TestGrid(), rng);
  ASSERT_EQ(tasks.size(), 500u);
  for (size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].id, static_cast<int>(i));
  }
}

TEST(GenerateTaskStreamTest, ReleasesAreSortedWithinHorizon) {
  tamp::Rng rng(5);
  auto tasks = GenerateTaskStream(TestConfig(), TestHotspots(), TestGrid(), rng);
  for (size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_GE(tasks[i].release_time_min, 480.0);
    EXPECT_LE(tasks[i].release_time_min, 1200.0);
    if (i > 0) {
      EXPECT_GE(tasks[i].release_time_min, tasks[i - 1].release_time_min);
    }
  }
}

TEST(GenerateTaskStreamTest, DeadlinesWithinValidityBounds) {
  tamp::Rng rng(7);
  auto tasks = GenerateTaskStream(TestConfig(), TestHotspots(), TestGrid(), rng);
  for (const auto& t : tasks) {
    double validity = t.deadline_min - t.release_time_min;
    EXPECT_GE(validity, 30.0 - 1e-9);  // 3 units x 10 min.
    EXPECT_LE(validity, 40.0 + 1e-9);  // 4 units x 10 min.
  }
}

TEST(GenerateTaskStreamTest, LocationsClusterAroundHotspots) {
  tamp::Rng rng(9);
  auto hotspots = TestHotspots();
  auto tasks = GenerateTaskStream(TestConfig(), hotspots, TestGrid(), rng);
  int near_any = 0;
  for (const auto& t : tasks) {
    for (const auto& h : hotspots) {
      if (geo::Distance(t.location, h.center) < 2.0) {
        ++near_any;
        break;
      }
    }
  }
  // With spread 0.5, nearly every task is within 2 km of a hotspot.
  EXPECT_GT(near_any, 480);
}

TEST(GenerateTaskStreamTest, HotspotWeightsShapeDemand) {
  tamp::Rng rng(11);
  auto hotspots = TestHotspots();  // Weights 2:1.
  auto tasks = GenerateTaskStream(TestConfig(), hotspots, TestGrid(), rng);
  int near_first = 0, near_second = 0;
  for (const auto& t : tasks) {
    if (geo::Distance(t.location, hotspots[0].center) < 2.0) ++near_first;
    if (geo::Distance(t.location, hotspots[1].center) < 2.0) ++near_second;
  }
  EXPECT_GT(near_first, near_second);
}

TEST(GenerateTaskStreamTest, RushHourConcentratesArrivals) {
  tamp::Rng rng(13);
  TaskStreamConfig config = TestConfig();
  config.num_tasks = 4000;
  config.rush_amplitude = 3.0;
  auto tasks = GenerateTaskStream(config, TestHotspots(), TestGrid(), rng);
  // Count arrivals near the first rush peak (25% of horizon) vs the
  // quiet middle (50%).
  double span = 1200.0 - 480.0;
  double peak = 480.0 + 0.25 * span;
  double mid = 480.0 + 0.5 * span;
  int at_peak = 0, at_mid = 0;
  for (const auto& t : tasks) {
    if (std::abs(t.release_time_min - peak) < 30.0) ++at_peak;
    if (std::abs(t.release_time_min - mid) < 30.0) ++at_mid;
  }
  EXPECT_GT(at_peak, at_mid);
}

TEST(SampleTaskLocationsTest, CountAndBounds) {
  tamp::Rng rng(15);
  geo::GridSpec grid = TestGrid();
  auto locs = SampleTaskLocations(300, TestHotspots(), grid, rng);
  ASSERT_EQ(locs.size(), 300u);
  for (const auto& p : locs) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, grid.width_km());
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, grid.height_km());
  }
}

TEST(GenerateTaskStreamTest, ZeroTasks) {
  tamp::Rng rng(17);
  TaskStreamConfig config = TestConfig();
  config.num_tasks = 0;
  EXPECT_TRUE(
      GenerateTaskStream(config, TestHotspots(), TestGrid(), rng).empty());
}

}  // namespace
}  // namespace tamp::data
