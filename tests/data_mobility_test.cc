#include "data/mobility.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tamp::data {
namespace {

geo::GridSpec TestGrid() { return geo::GridSpec(20.0, 10.0, 50, 100); }

DayParams TestDay() {
  DayParams day;
  day.day_start_min = 480.0;
  day.day_end_min = 1200.0;
  day.sample_period_min = 10.0;
  return day;
}

class ArchetypeSweep : public ::testing::TestWithParam<Archetype> {};

TEST_P(ArchetypeSweep, DayTrajectoryIsWellFormed) {
  tamp::Rng rng(5);
  geo::GridSpec grid = TestGrid();
  MobilityProfile profile =
      MakeProfile(GetParam(), 0, {5.0, 5.0}, 1.5, grid, rng);
  geo::Trajectory day = GenerateDay(profile, TestDay(), /*day_index=*/2,
                                    grid, rng);
  // 480..1200 every 10 min -> 73 points.
  EXPECT_EQ(day.size(), 73u);
  EXPECT_DOUBLE_EQ(day.start_time(), 2 * 1440.0 + 480.0);
  EXPECT_DOUBLE_EQ(day.end_time(), 2 * 1440.0 + 1200.0);
  for (const auto& p : day.points()) {
    EXPECT_GE(p.loc.x, 0.0);
    EXPECT_LE(p.loc.x, grid.width_km());
    EXPECT_GE(p.loc.y, 0.0);
    EXPECT_LE(p.loc.y, grid.height_km());
  }
  // Timestamps strictly increase.
  for (size_t i = 1; i < day.size(); ++i) {
    EXPECT_GT(day[i].time_min, day[i - 1].time_min);
  }
}

INSTANTIATE_TEST_SUITE_P(Archetypes, ArchetypeSweep,
                         ::testing::Values(Archetype::kCommuter,
                                           Archetype::kHubAndSpoke,
                                           Archetype::kRoamer,
                                           Archetype::kVenueHopper));

TEST(MobilityTest, DeterministicForSameSeed) {
  geo::GridSpec grid = TestGrid();
  tamp::Rng rng_a(9), rng_b(9);
  MobilityProfile pa =
      MakeProfile(Archetype::kCommuter, 0, {5, 5}, 1.5, grid, rng_a);
  MobilityProfile pb =
      MakeProfile(Archetype::kCommuter, 0, {5, 5}, 1.5, grid, rng_b);
  geo::Trajectory da = GenerateDay(pa, TestDay(), 0, grid, rng_a);
  geo::Trajectory db = GenerateDay(pb, TestDay(), 0, grid, rng_b);
  ASSERT_EQ(da.size(), db.size());
  for (size_t i = 0; i < da.size(); ++i) {
    EXPECT_DOUBLE_EQ(da[i].loc.x, db[i].loc.x);
    EXPECT_DOUBLE_EQ(da[i].loc.y, db[i].loc.y);
  }
}

TEST(MobilityTest, CommuterDaysAreSimilarAcrossDays) {
  // A commuter's routine is regular: day-over-day positions at the same
  // time-of-day are close (that is the predictability meta-learning
  // exploits).
  geo::GridSpec grid = TestGrid();
  tamp::Rng rng(11);
  MobilityProfile profile =
      MakeProfile(Archetype::kCommuter, 0, {5, 5}, 1.0, grid, rng);
  profile.improvisation_prob = 0.0;
  geo::Trajectory day0 = GenerateDay(profile, TestDay(), 0, grid, rng);
  geo::Trajectory day1 = GenerateDay(profile, TestDay(), 1, grid, rng);
  ASSERT_EQ(day0.size(), day1.size());
  double mean_gap = 0.0;
  for (size_t i = 0; i < day0.size(); ++i) {
    mean_gap += geo::Distance(day0[i].loc, day1[i].loc);
  }
  mean_gap /= day0.size();
  EXPECT_LT(mean_gap, 2.0);
}

TEST(MobilityTest, DifferentZonesProduceDistantProfiles) {
  geo::GridSpec grid = TestGrid();
  tamp::Rng rng(13);
  MobilityProfile west =
      MakeProfile(Archetype::kCommuter, 0, {3, 5}, 0.8, grid, rng);
  MobilityProfile east =
      MakeProfile(Archetype::kCommuter, 1, {17, 5}, 0.8, grid, rng);
  // Home anchors (index 0) live near their zones.
  EXPECT_LT(geo::Distance(west.anchors[0], {3, 5}), 4.0);
  EXPECT_LT(geo::Distance(east.anchors[0], {17, 5}), 4.0);
  EXPECT_GT(geo::Distance(west.anchors[0], east.anchors[0]), 6.0);
}

TEST(MobilityTest, HubAndSpokeReturnsToHub) {
  geo::GridSpec grid = TestGrid();
  tamp::Rng rng(17);
  MobilityProfile profile =
      MakeProfile(Archetype::kHubAndSpoke, 0, {10, 5}, 1.0, grid, rng);
  profile.noise_km = 0.0;
  profile.improvisation_prob = 0.0;
  geo::Trajectory day = GenerateDay(profile, TestDay(), 0, grid, rng);
  // The hub must be visited repeatedly: count samples within 0.5 km.
  const geo::Point& hub = profile.anchors[0];
  int near_hub = 0;
  for (const auto& p : day.points()) {
    if (geo::Distance(p.loc, hub) < 0.5) ++near_hub;
  }
  EXPECT_GT(near_hub, 5);
}

}  // namespace
}  // namespace tamp::data
