// Determinism tests of the deployed parallel layer: the repo invariant
// "every experiment is deterministic given its config" must survive the
// thread count. MetaTrain and PairwiseSimilarity::Materialize() are run at
// 1 and N threads and compared bit-for-bit (EXPECT_EQ on doubles — exact).
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "meta/learning_task.h"
#include "meta/meta_training.h"
#include "nn/encoder_decoder.h"
#include "similarity/cluster_quality.h"

namespace tamp {
namespace {

class ScopedThreads {
 public:
  explicit ScopedThreads(int threads) { SetParallelThreadCount(threads); }
  ~ScopedThreads() { SetParallelThreadCount(0); }
};

meta::LearningTask MakeTask(int worker_id, double vx, double vy, Rng& rng) {
  meta::LearningTask task;
  task.worker_id = worker_id;
  auto make_sample = [&]() {
    meta::TrainingSample sample;
    double x = rng.Uniform(0.1, 0.5), y = rng.Uniform(0.1, 0.5);
    for (int t = 0; t < 4; ++t) {
      sample.input.push_back({x + vx * t, y + vy * t});
    }
    sample.target.push_back({x + vx * 4, y + vy * 4});
    sample.target_km.push_back({(x + vx * 4) * 10.0, (y + vy * 4) * 10.0});
    return sample;
  };
  for (int i = 0; i < 6; ++i) task.support.push_back(make_sample());
  for (int i = 0; i < 4; ++i) task.query.push_back(make_sample());
  return task;
}

/// One full MetaTrain run from a fixed seed at the given thread count.
std::vector<double> RunMetaTrain(int threads, meta::MetaUpdateRule rule) {
  ScopedThreads scoped(threads);
  Rng data_rng(21);
  nn::Seq2SeqConfig model_config;
  model_config.hidden_dim = 6;
  nn::EncoderDecoder model(model_config);
  std::vector<meta::LearningTask> tasks;
  std::vector<int> members;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back(MakeTask(i, 0.01 * (i + 1), 0.02, data_rng));
    members.push_back(i);
  }
  // One task with no query data: exercises the skipped-pick path.
  tasks[3].query.clear();

  Rng rng(42);
  std::vector<double> theta = model.InitParams(rng);
  meta::MetaTrainConfig config;
  config.iterations = 10;
  config.batch_size = 4;
  config.adapt_steps = 2;
  config.update_rule = rule;
  // Non-uniform weights so the cached-weights path is exercised too.
  config.weight_fn = [](const geo::Point& p) { return 1.0 + 0.1 * p.x; };
  meta::MetaTrain(model, tasks, members, theta, config, rng);
  return theta;
}

TEST(ParallelDeterminismTest, MetaTrainBitIdenticalAcrossThreadCounts) {
  for (meta::MetaUpdateRule rule :
       {meta::MetaUpdateRule::kFomaml, meta::MetaUpdateRule::kReptile}) {
    std::vector<double> serial = RunMetaTrain(1, rule);
    for (int threads : {2, 4, 8}) {
      std::vector<double> parallel = RunMetaTrain(threads, rule);
      ASSERT_EQ(parallel.size(), serial.size());
      for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(parallel[i], serial[i])
            << "param " << i << " differs at " << threads << " threads";
      }
    }
  }
}

/// A deliberately ill-conditioned pair function: accumulating in a
/// different order would visibly change the low bits.
double FragilePairValue(int i, int j) {
  double acc = 0.0;
  for (int k = 0; k < 40; ++k) {
    acc += 1.0 / (1.0 + static_cast<double>(i) * 31.0 +
                  static_cast<double>(j) * 7.0 + static_cast<double>(k));
  }
  return acc;
}

std::vector<double> MaterializeAll(int threads, int n) {
  ScopedThreads scoped(threads);
  similarity::PairwiseSimilarity sim(n, FragilePairValue);
  sim.Materialize();
  std::vector<double> values;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) values.push_back(sim(i, j));
  }
  return values;
}

TEST(ParallelDeterminismTest, MaterializeBitIdenticalAcrossThreadCounts) {
  constexpr int kN = 40;
  std::vector<double> serial = MaterializeAll(1, kN);
  for (int threads : {2, 4, 8}) {
    std::vector<double> parallel = MaterializeAll(threads, kN);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t v = 0; v < serial.size(); ++v) {
      EXPECT_EQ(parallel[v], serial[v])
          << "pair value " << v << " differs at " << threads << " threads";
    }
  }
}

TEST(ParallelDeterminismTest, MaterializedMatrixSafeForConcurrentReads) {
  ScopedThreads scoped(4);
  similarity::PairwiseSimilarity sim(24, FragilePairValue);
  sim.Materialize();
  // Hammer concurrent reads over the full matrix; under TSan this verifies
  // the post-materialize read path is data-race-free.
  std::vector<double> sums = ParallelMap<double>(64, [&](size_t r) {
    double acc = 0.0;
    for (int i = 0; i < sim.size(); ++i) {
      for (int j = 0; j < sim.size(); ++j) acc += sim(i, j);
    }
    return acc + static_cast<double>(r) * 0.0;
  });
  for (size_t r = 1; r < sums.size(); ++r) EXPECT_EQ(sums[r], sums[0]);
}

TEST(ParallelDeterminismTest, MaterializeIsIdempotent) {
  ScopedThreads scoped(4);
  int calls_n = 6;
  similarity::PairwiseSimilarity sim(calls_n, FragilePairValue);
  sim.Materialize();
  std::vector<double> first;
  for (int i = 0; i < calls_n; ++i) {
    for (int j = 0; j < calls_n; ++j) first.push_back(sim(i, j));
  }
  sim.Materialize();  // No-op second pass.
  std::vector<double> second;
  for (int i = 0; i < calls_n; ++i) {
    for (int j = 0; j < calls_n; ++j) second.push_back(sim(i, j));
  }
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace tamp
