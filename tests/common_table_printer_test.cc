#include "common/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace tamp {
namespace {

TEST(TablePrinterTest, AlignedTextOutput) {
  TablePrinter t({"algo", "RMSE"});
  t.AddRow({"GTTAML", "0.8937"});
  t.AddRow({"MAML", "0.9722"});
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("| algo   | RMSE   |"), std::string::npos);
  EXPECT_NE(out.find("GTTAML"), std::string::npos);
  EXPECT_NE(out.find("MAML"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|--------|"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, CsvQuotesCommasAndQuotes) {
  TablePrinter t({"x"});
  t.AddRow({"hello, world"});
  t.AddRow({"say \"hi\""});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "x\n\"hello, world\"\n\"say \"\"hi\"\"\"\n");
}

TEST(TablePrinterTest, RowCount) {
  TablePrinter t({"c"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"v"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(FmtTest, FixedPrecision) {
  EXPECT_EQ(Fmt(0.89371, 4), "0.8937");
  EXPECT_EQ(Fmt(2.0, 1), "2.0");
  EXPECT_EQ(Fmt(-1.25, 2), "-1.25");
}

TEST(FmtTest, Integers) {
  EXPECT_EQ(Fmt(static_cast<int64_t>(12345)), "12345");
  EXPECT_EQ(Fmt(static_cast<int64_t>(-7)), "-7");
}

}  // namespace
}  // namespace tamp
