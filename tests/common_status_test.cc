#include "common/status.h"

#include <gtest/gtest.h>

namespace tamp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("k must be > 0");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "k must be > 0");
  EXPECT_EQ(s.ToString(), "InvalidArgument: k must be > 0");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MovesOutValue) {
  StatusOr<std::string> result(std::string("hello"));
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "hello");
}

namespace helpers {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Chain(int x) {
  TAMP_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Ok();
}

}  // namespace helpers

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(helpers::Chain(1).ok());
  EXPECT_FALSE(helpers::Chain(-1).ok());
  EXPECT_EQ(helpers::Chain(-1).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tamp
