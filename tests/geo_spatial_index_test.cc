#include "geo/spatial_index.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tamp::geo {
namespace {

int BruteCount(const std::vector<Point>& points, const Point& center,
               double radius) {
  int count = 0;
  for (const Point& p : points) {
    if (Distance(p, center) < radius) ++count;
  }
  return count;
}

TEST(SpatialCountIndexTest, EmptyIndex) {
  GridSpec grid(10.0, 10.0, 10, 10);
  SpatialCountIndex index(grid, {});
  EXPECT_EQ(index.num_points(), 0u);
  EXPECT_EQ(index.CountWithin({5.0, 5.0}, 3.0), 0);
}

TEST(SpatialCountIndexTest, SimpleCounts) {
  GridSpec grid(10.0, 10.0, 10, 10);
  std::vector<Point> pts = {{1, 1}, {1.2, 1.0}, {9, 9}};
  SpatialCountIndex index(grid, pts);
  EXPECT_EQ(index.CountWithin({1, 1}, 0.5), 2);
  EXPECT_EQ(index.CountWithin({9, 9}, 0.5), 1);
  EXPECT_EQ(index.CountWithin({5, 5}, 0.5), 0);
  EXPECT_EQ(index.CountWithin({5, 5}, 100.0), 3);
}

TEST(SpatialCountIndexTest, ZeroRadiusCountsNothing) {
  GridSpec grid(10.0, 10.0, 5, 5);
  SpatialCountIndex index(grid, {{3, 3}});
  EXPECT_EQ(index.CountWithin({3, 3}, 0.0), 0);
}

TEST(SpatialCountIndexTest, StrictInequalityOnBoundary) {
  GridSpec grid(10.0, 10.0, 5, 5);
  SpatialCountIndex index(grid, {{3.0, 3.0}});
  // dis == radius is NOT within (Eq. 7 uses strict <).
  EXPECT_EQ(index.CountWithin({3.0, 4.0}, 1.0), 0);
  EXPECT_EQ(index.CountWithin({3.0, 4.0}, 1.0001), 1);
}

TEST(SpatialCountIndexTest, MatchesBruteForceOnRandomData) {
  GridSpec grid(20.0, 10.0, 16, 32);
  tamp::Rng rng(77);
  std::vector<Point> pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back({rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 10.0)});
  }
  SpatialCountIndex index(grid, pts);
  for (int q = 0; q < 100; ++q) {
    Point center{rng.Uniform(-1.0, 21.0), rng.Uniform(-1.0, 11.0)};
    double radius = rng.Uniform(0.1, 5.0);
    EXPECT_EQ(index.CountWithin(center, radius),
              BruteCount(pts, center, radius))
        << "center=(" << center.x << "," << center.y << ") r=" << radius;
  }
}

TEST(SpatialCountIndexTest, QueryWithinReturnsThePoints) {
  GridSpec grid(10.0, 10.0, 10, 10);
  std::vector<Point> pts = {{1, 1}, {2, 2}, {8, 8}};
  SpatialCountIndex index(grid, pts);
  auto near = index.QueryWithin({1.5, 1.5}, 1.5);
  EXPECT_EQ(near.size(), 2u);
}

TEST(SpatialCountIndexTest, MeanCountPerDisk) {
  GridSpec grid(10.0, 10.0, 10, 10);
  std::vector<Point> pts(100, Point{5, 5});
  SpatialCountIndex index(grid, pts);
  // 100 points on 100 km^2 -> density 1/km^2; disk r=1 has area pi.
  EXPECT_NEAR(index.MeanCountPerDisk(1.0), M_PI, 1e-9);
}

TEST(SpatialCountIndexTest, MeanCountPerDiskFloorsAtPositive) {
  GridSpec grid(10.0, 10.0, 10, 10);
  SpatialCountIndex index(grid, {});
  EXPECT_GT(index.MeanCountPerDisk(1.0), 0.0);
}

}  // namespace
}  // namespace tamp::geo
