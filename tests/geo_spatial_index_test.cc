#include "geo/spatial_index.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tamp::geo {
namespace {

int BruteCount(const std::vector<Point>& points, const Point& center,
               double radius) {
  int count = 0;
  for (const Point& p : points) {
    if (Distance(p, center) < radius) ++count;
  }
  return count;
}

TEST(SpatialCountIndexTest, EmptyIndex) {
  GridSpec grid(10.0, 10.0, 10, 10);
  SpatialCountIndex index(grid, {});
  EXPECT_EQ(index.num_points(), 0u);
  EXPECT_EQ(index.CountWithin({5.0, 5.0}, 3.0), 0);
}

TEST(SpatialCountIndexTest, SimpleCounts) {
  GridSpec grid(10.0, 10.0, 10, 10);
  std::vector<Point> pts = {{1, 1}, {1.2, 1.0}, {9, 9}};
  SpatialCountIndex index(grid, pts);
  EXPECT_EQ(index.CountWithin({1, 1}, 0.5), 2);
  EXPECT_EQ(index.CountWithin({9, 9}, 0.5), 1);
  EXPECT_EQ(index.CountWithin({5, 5}, 0.5), 0);
  EXPECT_EQ(index.CountWithin({5, 5}, 100.0), 3);
}

TEST(SpatialCountIndexTest, ZeroRadiusCountsNothing) {
  GridSpec grid(10.0, 10.0, 5, 5);
  SpatialCountIndex index(grid, {{3, 3}});
  EXPECT_EQ(index.CountWithin({3, 3}, 0.0), 0);
}

TEST(SpatialCountIndexTest, StrictInequalityOnBoundary) {
  GridSpec grid(10.0, 10.0, 5, 5);
  SpatialCountIndex index(grid, {{3.0, 3.0}});
  // dis == radius is NOT within (Eq. 7 uses strict <).
  EXPECT_EQ(index.CountWithin({3.0, 4.0}, 1.0), 0);
  EXPECT_EQ(index.CountWithin({3.0, 4.0}, 1.0001), 1);
}

TEST(SpatialCountIndexTest, MatchesBruteForceOnRandomData) {
  GridSpec grid(20.0, 10.0, 16, 32);
  tamp::Rng rng(77);
  std::vector<Point> pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back({rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 10.0)});
  }
  SpatialCountIndex index(grid, pts);
  for (int q = 0; q < 100; ++q) {
    Point center{rng.Uniform(-1.0, 21.0), rng.Uniform(-1.0, 11.0)};
    double radius = rng.Uniform(0.1, 5.0);
    EXPECT_EQ(index.CountWithin(center, radius),
              BruteCount(pts, center, radius))
        << "center=(" << center.x << "," << center.y << ") r=" << radius;
  }
}

TEST(SpatialCountIndexTest, QueryWithinReturnsThePoints) {
  GridSpec grid(10.0, 10.0, 10, 10);
  std::vector<Point> pts = {{1, 1}, {2, 2}, {8, 8}};
  SpatialCountIndex index(grid, pts);
  auto near = index.QueryWithin({1.5, 1.5}, 1.5);
  EXPECT_EQ(near.size(), 2u);
}

TEST(SpatialCountIndexTest, MeanCountPerDisk) {
  GridSpec grid(10.0, 10.0, 10, 10);
  std::vector<Point> pts(100, Point{5, 5});
  SpatialCountIndex index(grid, pts);
  // 100 points on 100 km^2 -> density 1/km^2; disk r=1 has area pi.
  EXPECT_NEAR(index.MeanCountPerDisk(1.0), M_PI, 1e-9);
}

TEST(SpatialCountIndexTest, MeanCountPerDiskFloorsAtPositive) {
  GridSpec grid(10.0, 10.0, 10, 10);
  SpatialCountIndex index(grid, {});
  EXPECT_GT(index.MeanCountPerDisk(1.0), 0.0);
}

std::vector<int> BruteLabels(
    const std::vector<SpatialLabelIndex::Entry>& entries, const Point& center,
    double radius) {
  std::vector<int> labels;
  for (const auto& e : entries) {
    if (Distance(e.loc, center) <= radius) labels.push_back(e.label);
  }
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  return labels;
}

TEST(SpatialLabelIndexTest, EmptyIndex) {
  SpatialLabelIndex index({});
  EXPECT_EQ(index.num_entries(), 0u);
  std::vector<int> out = {7};
  index.CollectLabelsWithin({0, 0}, 5.0, out);
  EXPECT_TRUE(out.empty());
}

TEST(SpatialLabelIndexTest, ClosedBoundaryIsIncluded) {
  // Unlike SpatialCountIndex (Eq. 7, strict <), the label index serves the
  // Theorem-2 prune, whose membership tests are closed: dis == radius must
  // be a hit or the prune would drop boundary candidates.
  SpatialLabelIndex index({{{3.0, 3.0}, 1}});
  std::vector<int> out;
  index.CollectLabelsWithin({3.0, 4.0}, 1.0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 1);
  index.CollectLabelsWithin({3.0, 4.0}, 0.9999, out);
  EXPECT_TRUE(out.empty());
}

TEST(SpatialLabelIndexTest, DeduplicatesAndSortsLabels) {
  // Three points of worker 2 plus one of worker 0 inside the ball: the
  // result is each label once, ascending.
  SpatialLabelIndex index(
      {{{1.0, 1.0}, 2}, {{1.1, 1.0}, 2}, {{0.9, 1.0}, 2}, {{1.0, 1.2}, 0}});
  std::vector<int> out;
  index.CollectLabelsWithin({1.0, 1.0}, 0.5, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 2);
}

TEST(SpatialLabelIndexTest, NegativeRadiusReturnsNothing) {
  SpatialLabelIndex index({{{0.0, 0.0}, 0}});
  std::vector<int> out = {1, 2};
  index.CollectLabelsWithin({0.0, 0.0}, -1.0, out);
  EXPECT_TRUE(out.empty());
}

TEST(SpatialLabelIndexTest, MatchesBruteForceOnRandomData) {
  // Points anywhere (no GridSpec): the index derives its own bounding box
  // and cell size. Queries may fall outside the box.
  tamp::Rng rng(123);
  std::vector<SpatialLabelIndex::Entry> entries;
  for (int i = 0; i < 400; ++i) {
    entries.push_back({{rng.Uniform(-7.0, 25.0), rng.Uniform(3.0, 11.0)},
                       static_cast<int>(rng.UniformInt(0, 49))});
  }
  SpatialLabelIndex index(entries);
  EXPECT_EQ(index.num_entries(), entries.size());
  std::vector<int> out;
  for (int q = 0; q < 100; ++q) {
    Point center{rng.Uniform(-10.0, 28.0), rng.Uniform(0.0, 14.0)};
    double radius = rng.Uniform(0.0, 6.0);
    index.CollectLabelsWithin(center, radius, out);
    EXPECT_EQ(out, BruteLabels(entries, center, radius))
        << "center=(" << center.x << "," << center.y << ") r=" << radius;
  }
}

TEST(SpatialLabelIndexTest, ScratchPathMatchesSortUniquePath) {
  // The stamp-dedup fast path must return exactly what the plain
  // sort+unique path returns, with one scratch reused across queries —
  // including across two different indexes (epochs outlive the index).
  tamp::Rng rng(321);
  std::vector<SpatialLabelIndex::Entry> entries;
  for (int i = 0; i < 300; ++i) {
    entries.push_back({{rng.Uniform(0.0, 12.0), rng.Uniform(0.0, 9.0)},
                       static_cast<int>(rng.UniformInt(0, 39))});
  }
  SpatialLabelIndex index(entries);
  SpatialLabelIndex coarse(entries, /*target_cell_km=*/3.0);
  SpatialLabelIndex::QueryScratch scratch;
  std::vector<int> fast, plain;
  for (int q = 0; q < 60; ++q) {
    Point center{rng.Uniform(-2.0, 14.0), rng.Uniform(-2.0, 11.0)};
    double radius = rng.Uniform(0.0, 5.0);
    const SpatialLabelIndex& idx = (q % 2 == 0) ? index : coarse;
    idx.CollectLabelsWithin(center, radius, fast, &scratch);
    idx.CollectLabelsWithin(center, radius, plain);
    EXPECT_EQ(fast, plain)
        << "center=(" << center.x << "," << center.y << ") r=" << radius;
  }
}

TEST(SpatialLabelIndexTest, ScratchWithNegativeLabelsFallsBack) {
  SpatialLabelIndex index({{{1.0, 1.0}, -4}, {{1.1, 1.0}, 2},
                           {{1.0, 1.1}, -4}});
  SpatialLabelIndex::QueryScratch scratch;
  std::vector<int> out;
  index.CollectLabelsWithin({1.0, 1.0}, 1.0, out, &scratch);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], -4);
  EXPECT_EQ(out[1], 2);
}

TEST(SpatialLabelIndexTest, SinglePointAndDegenerateExtent) {
  // All entries at one location: the bounding box has zero extent, which
  // must not divide by zero or lose points.
  SpatialLabelIndex index({{{5.0, 5.0}, 3}, {{5.0, 5.0}, 1}});
  std::vector<int> out;
  index.CollectLabelsWithin({5.0, 5.0}, 0.0, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 3);
}

}  // namespace
}  // namespace tamp::geo
