#include "geo/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tamp::geo {
namespace {

int BruteCount(const std::vector<Point>& points, const Point& center,
               double radius) {
  int count = 0;
  for (const Point& p : points) {
    if (Distance(p, center) < radius) ++count;
  }
  return count;
}

TEST(SpatialCountIndexTest, EmptyIndex) {
  GridSpec grid(10.0, 10.0, 10, 10);
  SpatialCountIndex index(grid, {});
  EXPECT_EQ(index.num_points(), 0u);
  EXPECT_EQ(index.CountWithin({5.0, 5.0}, 3.0), 0);
}

TEST(SpatialCountIndexTest, SimpleCounts) {
  GridSpec grid(10.0, 10.0, 10, 10);
  std::vector<Point> pts = {{1, 1}, {1.2, 1.0}, {9, 9}};
  SpatialCountIndex index(grid, pts);
  EXPECT_EQ(index.CountWithin({1, 1}, 0.5), 2);
  EXPECT_EQ(index.CountWithin({9, 9}, 0.5), 1);
  EXPECT_EQ(index.CountWithin({5, 5}, 0.5), 0);
  EXPECT_EQ(index.CountWithin({5, 5}, 100.0), 3);
}

TEST(SpatialCountIndexTest, ZeroRadiusCountsNothing) {
  GridSpec grid(10.0, 10.0, 5, 5);
  SpatialCountIndex index(grid, {{3, 3}});
  EXPECT_EQ(index.CountWithin({3, 3}, 0.0), 0);
}

TEST(SpatialCountIndexTest, StrictInequalityOnBoundary) {
  GridSpec grid(10.0, 10.0, 5, 5);
  SpatialCountIndex index(grid, {{3.0, 3.0}});
  // dis == radius is NOT within (Eq. 7 uses strict <).
  EXPECT_EQ(index.CountWithin({3.0, 4.0}, 1.0), 0);
  EXPECT_EQ(index.CountWithin({3.0, 4.0}, 1.0001), 1);
}

TEST(SpatialCountIndexTest, MatchesBruteForceOnRandomData) {
  GridSpec grid(20.0, 10.0, 16, 32);
  tamp::Rng rng(77);
  std::vector<Point> pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back({rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 10.0)});
  }
  SpatialCountIndex index(grid, pts);
  for (int q = 0; q < 100; ++q) {
    Point center{rng.Uniform(-1.0, 21.0), rng.Uniform(-1.0, 11.0)};
    double radius = rng.Uniform(0.1, 5.0);
    EXPECT_EQ(index.CountWithin(center, radius),
              BruteCount(pts, center, radius))
        << "center=(" << center.x << "," << center.y << ") r=" << radius;
  }
}

TEST(SpatialCountIndexTest, QueryWithinReturnsThePoints) {
  GridSpec grid(10.0, 10.0, 10, 10);
  std::vector<Point> pts = {{1, 1}, {2, 2}, {8, 8}};
  SpatialCountIndex index(grid, pts);
  auto near = index.QueryWithin({1.5, 1.5}, 1.5);
  EXPECT_EQ(near.size(), 2u);
}

TEST(SpatialCountIndexTest, MeanCountPerDisk) {
  GridSpec grid(10.0, 10.0, 10, 10);
  std::vector<Point> pts(100, Point{5, 5});
  SpatialCountIndex index(grid, pts);
  // 100 points on 100 km^2 -> density 1/km^2; disk r=1 has area pi.
  EXPECT_NEAR(index.MeanCountPerDisk(1.0), M_PI, 1e-9);
}

TEST(SpatialCountIndexTest, MeanCountPerDiskFloorsAtPositive) {
  GridSpec grid(10.0, 10.0, 10, 10);
  SpatialCountIndex index(grid, {});
  EXPECT_GT(index.MeanCountPerDisk(1.0), 0.0);
}

std::vector<int> BruteLabels(
    const std::vector<SpatialLabelIndex::Entry>& entries, const Point& center,
    double radius) {
  std::vector<int> labels;
  for (const auto& e : entries) {
    if (Distance(e.loc, center) <= radius) labels.push_back(e.label);
  }
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  return labels;
}

TEST(SpatialLabelIndexTest, EmptyIndex) {
  SpatialLabelIndex index(std::vector<SpatialLabelIndex::Entry>{});
  EXPECT_EQ(index.num_entries(), 0u);
  std::vector<int> out = {7};
  index.CollectLabelsWithin({0, 0}, 5.0, out);
  EXPECT_TRUE(out.empty());
}

TEST(SpatialLabelIndexTest, ClosedBoundaryIsIncluded) {
  // Unlike SpatialCountIndex (Eq. 7, strict <), the label index serves the
  // Theorem-2 prune, whose membership tests are closed: dis == radius must
  // be a hit or the prune would drop boundary candidates.
  SpatialLabelIndex index({{{3.0, 3.0}, 1}});
  std::vector<int> out;
  index.CollectLabelsWithin({3.0, 4.0}, 1.0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 1);
  index.CollectLabelsWithin({3.0, 4.0}, 0.9999, out);
  EXPECT_TRUE(out.empty());
}

TEST(SpatialLabelIndexTest, DeduplicatesAndSortsLabels) {
  // Three points of worker 2 plus one of worker 0 inside the ball: the
  // result is each label once, ascending.
  SpatialLabelIndex index(
      {{{1.0, 1.0}, 2}, {{1.1, 1.0}, 2}, {{0.9, 1.0}, 2}, {{1.0, 1.2}, 0}});
  std::vector<int> out;
  index.CollectLabelsWithin({1.0, 1.0}, 0.5, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 2);
}

TEST(SpatialLabelIndexTest, NegativeRadiusReturnsNothing) {
  SpatialLabelIndex index({{{0.0, 0.0}, 0}});
  std::vector<int> out = {1, 2};
  index.CollectLabelsWithin({0.0, 0.0}, -1.0, out);
  EXPECT_TRUE(out.empty());
}

TEST(SpatialLabelIndexTest, MatchesBruteForceOnRandomData) {
  // Points anywhere (no GridSpec): the index derives its own bounding box
  // and cell size. Queries may fall outside the box.
  tamp::Rng rng(123);
  std::vector<SpatialLabelIndex::Entry> entries;
  for (int i = 0; i < 400; ++i) {
    entries.push_back({{rng.Uniform(-7.0, 25.0), rng.Uniform(3.0, 11.0)},
                       static_cast<int>(rng.UniformInt(0, 49))});
  }
  SpatialLabelIndex index(entries);
  EXPECT_EQ(index.num_entries(), entries.size());
  std::vector<int> out;
  for (int q = 0; q < 100; ++q) {
    Point center{rng.Uniform(-10.0, 28.0), rng.Uniform(0.0, 14.0)};
    double radius = rng.Uniform(0.0, 6.0);
    index.CollectLabelsWithin(center, radius, out);
    EXPECT_EQ(out, BruteLabels(entries, center, radius))
        << "center=(" << center.x << "," << center.y << ") r=" << radius;
  }
}

TEST(SpatialLabelIndexTest, ScratchPathMatchesSortUniquePath) {
  // The stamp-dedup fast path must return exactly what the plain
  // sort+unique path returns, with one scratch reused across queries —
  // including across two different indexes (epochs outlive the index).
  tamp::Rng rng(321);
  std::vector<SpatialLabelIndex::Entry> entries;
  for (int i = 0; i < 300; ++i) {
    entries.push_back({{rng.Uniform(0.0, 12.0), rng.Uniform(0.0, 9.0)},
                       static_cast<int>(rng.UniformInt(0, 39))});
  }
  SpatialLabelIndex index(entries);
  SpatialLabelIndex coarse(entries, /*target_cell_km=*/3.0);
  SpatialLabelIndex::QueryScratch scratch;
  std::vector<int> fast, plain;
  for (int q = 0; q < 60; ++q) {
    Point center{rng.Uniform(-2.0, 14.0), rng.Uniform(-2.0, 11.0)};
    double radius = rng.Uniform(0.0, 5.0);
    const SpatialLabelIndex& idx = (q % 2 == 0) ? index : coarse;
    idx.CollectLabelsWithin(center, radius, fast, &scratch);
    idx.CollectLabelsWithin(center, radius, plain);
    EXPECT_EQ(fast, plain)
        << "center=(" << center.x << "," << center.y << ") r=" << radius;
  }
}

TEST(SpatialLabelIndexTest, ScratchWithNegativeLabelsFallsBack) {
  SpatialLabelIndex index({{{1.0, 1.0}, -4}, {{1.1, 1.0}, 2},
                           {{1.0, 1.1}, -4}});
  SpatialLabelIndex::QueryScratch scratch;
  std::vector<int> out;
  index.CollectLabelsWithin({1.0, 1.0}, 1.0, out, &scratch);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], -4);
  EXPECT_EQ(out[1], 2);
}

TEST(SpatialLabelIndexTest, SinglePointAndDegenerateExtent) {
  // All entries at one location: the bounding box has zero extent, which
  // must not divide by zero or lose points.
  SpatialLabelIndex index({{{5.0, 5.0}, 3}, {{5.0, 5.0}, 1}});
  std::vector<int> out;
  index.CollectLabelsWithin({5.0, 5.0}, 0.0, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 3);
}

TEST(SpatialLabelIndexTest, ScratchEpochWrapDoesNotDropLabels) {
  // Regression: a scratch whose epoch is about to wrap must not let stale
  // stamps alias the new epoch and silently drop labels. Seed the epoch at
  // the very edge, run queries across the wrap, and compare against the
  // scratchless path every time.
  SpatialLabelIndex index(
      {{{1.0, 1.0}, 0}, {{1.1, 1.0}, 1}, {{0.9, 1.1}, 2}, {{1.2, 0.9}, 1}});
  SpatialLabelIndex::QueryScratch scratch;
  std::vector<int> warm_up;
  index.CollectLabelsWithin({1.0, 1.0}, 2.0, warm_up, &scratch);
  // All three labels now carry stamps equal to the current epoch; force
  // the *next* query to wrap to 0 and take the reset branch.
  scratch.epoch = std::numeric_limits<uint64_t>::max();
  for (int q = 0; q < 4; ++q) {
    std::vector<int> fast, plain;
    index.CollectLabelsWithin({1.0, 1.0}, 2.0, fast, &scratch);
    index.CollectLabelsWithin({1.0, 1.0}, 2.0, plain);
    EXPECT_EQ(fast, plain) << "query " << q << " after the wrap";
    EXPECT_NE(scratch.epoch, 0u);
  }
}

TEST(SpatialLabelIndexTest, DeltaUpdatesMatchRebuiltIndex) {
  // Insert/RemoveLabel on a live index must answer queries exactly like an
  // index bulk-built from the surviving entries — including points pushed
  // outside the original frame (overflow list).
  tamp::Rng rng(555);
  std::vector<SpatialLabelIndex::Entry> entries;
  for (int i = 0; i < 200; ++i) {
    entries.push_back({{rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 8.0)},
                       static_cast<int>(rng.UniformInt(0, 29))});
  }
  SpatialLabelIndex index(entries);
  const uint64_t gen0 = index.generation();

  // Remove two labels, move one (remove + re-insert elsewhere, partly
  // outside the frame), and add a newcomer.
  auto apply_delta = [&](std::vector<SpatialLabelIndex::Entry>& model) {
    std::erase_if(model, [](const SpatialLabelIndex::Entry& e) {
      return e.label == 3 || e.label == 17;
    });
    std::erase_if(model,
                  [](const SpatialLabelIndex::Entry& e) { return e.label == 5; });
    model.push_back({{-4.0, 2.0}, 5});   // Outside the original frame.
    model.push_back({{2.5, 2.5}, 5});
    model.push_back({{11.5, 3.0}, 77});  // Newcomer, also outside.
    model.push_back({{6.0, 6.0}, 77});
  };
  size_t removed = index.RemoveLabel(3);
  removed += index.RemoveLabel(17);
  removed += index.RemoveLabel(5);
  EXPECT_GT(removed, 0u);
  index.Insert({{-4.0, 2.0}, 5});
  index.Insert({{2.5, 2.5}, 5});
  index.Insert({{11.5, 3.0}, 77});
  index.Insert({{6.0, 6.0}, 77});
  // generation advances once per entry op (the delta-ops counter contract).
  EXPECT_EQ(index.generation(), gen0 + removed + 4);

  apply_delta(entries);
  SpatialLabelIndex rebuilt(entries);
  EXPECT_EQ(index.num_entries(), rebuilt.num_entries());
  SpatialLabelIndex::QueryScratch scratch;
  std::vector<int> live, fresh;
  for (int q = 0; q < 80; ++q) {
    Point center{rng.Uniform(-6.0, 13.0), rng.Uniform(-2.0, 10.0)};
    double radius = rng.Uniform(0.0, 5.0);
    index.CollectLabelsWithin(center, radius, live, &scratch);
    rebuilt.CollectLabelsWithin(center, radius, fresh);
    EXPECT_EQ(live, fresh)
        << "center=(" << center.x << "," << center.y << ") r=" << radius;
    EXPECT_EQ(live, BruteLabels(entries, center, radius));
  }
}

std::vector<int> BruteLabelsCapped(
    const std::vector<SpatialLabelIndex::Entry>& entries, const Point& center,
    const std::vector<double>& radius_of_label) {
  std::vector<int> labels;
  for (const auto& e : entries) {
    const double r = radius_of_label[static_cast<size_t>(e.label)];
    if (r >= 0.0 && Distance(e.loc, center) <= r) labels.push_back(e.label);
  }
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  return labels;
}

TEST(SpatialLabelIndexTest, CappedQueryMatchesBruteForce) {
  // Per-label radii, including zero (closed ball: an entry exactly at the
  // center is a hit), negative (label disabled), and radii far below the
  // outer max — with and without scratch, plus delta-inserted entries.
  tamp::Rng rng(808);
  std::vector<SpatialLabelIndex::Entry> entries;
  for (int i = 0; i < 300; ++i) {
    entries.push_back({{rng.Uniform(0.0, 15.0), rng.Uniform(0.0, 10.0)},
                       static_cast<int>(rng.UniformInt(0, 24))});
  }
  SpatialLabelIndex index(entries);
  index.Insert({{-3.0, 5.0}, 24});  // Overflow entry must obey caps too.
  entries.push_back({{-3.0, 5.0}, 24});
  SpatialLabelIndex::QueryScratch scratch;
  std::vector<double> radii(25, 0.0);
  std::vector<int> fast, plain;
  for (int q = 0; q < 80; ++q) {
    Point center{rng.Uniform(-5.0, 18.0), rng.Uniform(-2.0, 12.0)};
    double max_radius = 0.0;
    for (double& r : radii) {
      const double roll = rng.Uniform(-1.0, 4.0);
      r = (roll < 0.0) ? -1.0 : roll;
      max_radius = std::max(max_radius, r);
    }
    index.CollectLabelsWithinCaps(center, max_radius, radii, fast, &scratch);
    index.CollectLabelsWithinCaps(center, max_radius, radii, plain);
    const std::vector<int> expected = BruteLabelsCapped(entries, center, radii);
    EXPECT_EQ(fast, expected) << "query " << q;
    EXPECT_EQ(plain, expected) << "query " << q;
  }
}

TEST(SpatialLabelIndexTest, DefaultConstructedIndexAcceptsInserts) {
  // The pre-first-build state of long-lived holders: no grid frame, every
  // insert goes to overflow, queries still answer exactly.
  SpatialLabelIndex index;
  EXPECT_EQ(index.num_entries(), 0u);
  index.Insert({{1.0, 1.0}, 4});
  index.Insert({{2.0, 2.0}, 9});
  EXPECT_EQ(index.num_entries(), 2u);
  EXPECT_EQ(index.generation(), 2u);
  std::vector<int> out;
  index.CollectLabelsWithin({1.0, 1.0}, 1.5, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 4);
  EXPECT_EQ(out[1], 9);
  EXPECT_EQ(index.RemoveLabel(4), 1u);
  index.CollectLabelsWithin({1.0, 1.0}, 1.5, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 9);
}

}  // namespace
}  // namespace tamp::geo
