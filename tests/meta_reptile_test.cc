// The Reptile meta-update rule as an alternative to first-order MAML:
// both must reduce the post-adaptation query loss, and they must produce
// genuinely different meta-gradients.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "meta/meta_training.h"
#include "nn/encoder_decoder.h"

namespace tamp::meta {
namespace {

LearningTask MakeLinearTask(int id, double vx, tamp::Rng& rng) {
  LearningTask task;
  task.worker_id = id;
  auto sample = [&]() {
    TrainingSample s;
    double x = rng.Uniform(0.1, 0.5), y = rng.Uniform(0.2, 0.6);
    for (int t = 0; t < 4; ++t) s.input.push_back({x + vx * t, y});
    s.target.push_back({x + vx * 4, y});
    s.target_km.push_back({(x + vx * 4) * 10.0, y * 10.0});
    return s;
  };
  for (int i = 0; i < 8; ++i) task.support.push_back(sample());
  for (int i = 0; i < 4; ++i) task.query.push_back(sample());
  return task;
}

nn::EncoderDecoder SmallModel() {
  nn::Seq2SeqConfig config;
  config.hidden_dim = 6;
  return nn::EncoderDecoder(config);
}

double AvgAdaptedQueryLoss(const nn::EncoderDecoder& model,
                           const std::vector<double>& theta,
                           const std::vector<LearningTask>& tasks,
                           const MetaTrainConfig& config) {
  double total = 0.0;
  int count = 0;
  for (const auto& task : tasks) {
    std::vector<double> adapted = AdaptKSteps(
        model, theta, task.support, config.adapt_steps, config.beta, config);
    for (const auto& sample : task.query) {
      total += model.EvalLoss(adapted, sample.input, sample.target, {});
      ++count;
    }
  }
  return total / count;
}

class UpdateRuleSweep : public ::testing::TestWithParam<MetaUpdateRule> {};

TEST_P(UpdateRuleSweep, ReducesQueryLoss) {
  tamp::Rng rng(13);
  nn::EncoderDecoder model = SmallModel();
  std::vector<double> theta = model.InitParams(rng);
  std::vector<LearningTask> tasks;
  for (int i = 0; i < 5; ++i) tasks.push_back(MakeLinearTask(i, 0.04, rng));
  std::vector<int> members = {0, 1, 2, 3, 4};

  MetaTrainConfig config;
  config.update_rule = GetParam();
  config.iterations = 35;
  config.alpha = 0.1;
  config.beta = 0.15;
  config.batch_size = 3;

  double before = AvgAdaptedQueryLoss(model, theta, tasks, config);
  MetaTrain(model, tasks, members, theta, config, rng);
  double after = AvgAdaptedQueryLoss(model, theta, tasks, config);
  EXPECT_LT(after, before);
}

INSTANTIATE_TEST_SUITE_P(Rules, UpdateRuleSweep,
                         ::testing::Values(MetaUpdateRule::kFomaml,
                                           MetaUpdateRule::kReptile));

TEST(ReptileTest, RulesProduceDifferentParameters) {
  tamp::Rng rng_a(21), rng_b(21);
  nn::EncoderDecoder model = SmallModel();
  tamp::Rng init_rng(3);
  std::vector<double> theta_a = model.InitParams(init_rng);
  std::vector<double> theta_b = theta_a;

  tamp::Rng data_rng(5);
  std::vector<LearningTask> tasks;
  for (int i = 0; i < 4; ++i) tasks.push_back(MakeLinearTask(i, 0.03, data_rng));
  std::vector<int> members = {0, 1, 2, 3};

  MetaTrainConfig fomaml;
  fomaml.iterations = 5;
  MetaTrainConfig reptile = fomaml;
  reptile.update_rule = MetaUpdateRule::kReptile;

  MetaTrain(model, tasks, members, theta_a, fomaml, rng_a);
  MetaTrain(model, tasks, members, theta_b, reptile, rng_b);
  EXPECT_NE(theta_a, theta_b);
}

TEST(ReptileTest, ReptileGradientPointsTowardAdaptedParams) {
  // One task, one iteration: the Reptile meta-gradient must equal
  // (theta - adapted) / beta up to clipping.
  tamp::Rng rng(31);
  nn::EncoderDecoder model = SmallModel();
  std::vector<double> theta = model.InitParams(rng);
  std::vector<double> original = theta;
  tamp::Rng data_rng(7);
  std::vector<LearningTask> tasks = {MakeLinearTask(0, 0.05, data_rng)};

  MetaTrainConfig config;
  config.update_rule = MetaUpdateRule::kReptile;
  config.iterations = 1;
  config.batch_size = 1;
  config.grad_clip = 1e9;  // No clipping, for the exact identity.

  std::vector<double> adapted = AdaptKSteps(
      model, original, tasks[0].support, config.adapt_steps, config.beta,
      config);
  MetaTrainResult result =
      MetaTrain(model, tasks, {0}, theta, config, rng);
  for (size_t i = 0; i < theta.size(); ++i) {
    double expected = (original[i] - adapted[i]) / config.beta;
    EXPECT_NEAR(result.meta_gradient[i], expected, 1e-9);
    // And theta moved by -alpha * that gradient.
    EXPECT_NEAR(theta[i], original[i] - config.alpha * expected, 1e-9);
  }
}

}  // namespace
}  // namespace tamp::meta
