// Bit-identity contract of the batched SoA forecast engine
// (nn::BatchedSeq2Seq) against the scalar per-worker reference: raw
// PredictBatch vs Predict, the fleet rollout, scratch shrink-then-grow
// reuse, the trainer's batched Evaluate, the full simulator plan, and the
// thread-invariant work counters. Every comparison is EXPECT_EQ on
// doubles — exact, not approximate.
#include "nn/batched_seq2seq.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/obs/metrics.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "core/rollout.h"
#include "data/workload.h"
#include "meta/trainer.h"
#include "nn/encoder_decoder.h"

namespace tamp::nn {
namespace {

/// Restores the parallel thread count on scope exit so a failing test
/// can't leak its thread setting into the rest of the binary.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int threads) : saved_(ParallelThreadCount()) {
    SetParallelThreadCount(threads);
  }
  ~ThreadCountGuard() { SetParallelThreadCount(saved_); }

 private:
  int saved_;
};

Sequence MakeWindow(tamp::Rng& rng, int steps, int dim) {
  Sequence window;
  for (int t = 0; t < steps; ++t) {
    std::vector<double> step;
    for (int d = 0; d < dim; ++d) step.push_back(rng.Uniform01());
    window.push_back(std::move(step));
  }
  return window;
}

void ExpectSequenceEq(const Sequence& a, const Sequence& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t t = 0; t < a.size(); ++t) {
    ASSERT_EQ(a[t].size(), b[t].size());
    for (size_t d = 0; d < a[t].size(); ++d) EXPECT_EQ(a[t][d], b[t][d]);
  }
}

/// Rows interleave three parameter groups (A B C A B A A C C B): shared
/// GEMM tiles and singleton GEMV runs coexist in one plan, and the
/// gather/scatter has to restore the caller's row order.
TEST(BatchedSeq2SeqTest, PredictBatchMatchesScalarBitwise) {
  for (int seq_out : {1, 3}) {
    for (int threads : {1, 4}) {
      ThreadCountGuard guard(threads);
      Seq2SeqConfig config;
      config.input_dim = 3;
      config.hidden_dim = 8;
      config.seq_out = seq_out;
      tamp::Rng rng(11);
      EncoderDecoder model(config);
      BatchedSeq2Seq engine(config);
      std::vector<std::vector<double>> groups = {
          model.InitParams(rng), model.InitParams(rng), model.InitParams(rng)};
      const int pattern[] = {0, 1, 2, 0, 1, 0, 0, 2, 2, 1};

      std::vector<Sequence> windows;
      std::vector<const std::vector<double>*> row_params;
      std::vector<const Sequence*> inputs;
      for (int r = 0; r < 10; ++r) {
        windows.push_back(MakeWindow(rng, 5, 3));
        row_params.push_back(&groups[pattern[r]]);
      }
      for (const Sequence& w : windows) inputs.push_back(&w);

      BatchedSeq2SeqScratch scratch;
      std::vector<Sequence> batched;
      engine.PredictBatch(row_params, inputs, &batched, scratch);

      ASSERT_EQ(batched.size(), windows.size());
      for (size_t r = 0; r < windows.size(); ++r) {
        Sequence scalar = model.Predict(*row_params[r], windows[r]);
        ExpectSequenceEq(batched[r], scalar);
      }
    }
  }
}

TEST(BatchedSeq2SeqTest, FleetRolloutMatchesScalarOnBothGrids) {
  const geo::GridSpec grids[] = {geo::GridSpec(28.0, 14.0, 50, 100),
                                 geo::GridSpec(36.0, 36.0, 60, 60)};
  for (const geo::GridSpec& grid : grids) {
    for (int threads : {1, 4}) {
      ThreadCountGuard guard(threads);
      Seq2SeqConfig config;
      config.input_dim = 3;
      config.hidden_dim = 6;
      config.seq_out = 3;  // horizon 7 => 3 + 3 + 1 truncated chunks.
      tamp::Rng rng(23);
      EncoderDecoder model(config);
      BatchedSeq2Seq engine(config);

      std::vector<std::vector<double>> params;
      std::vector<double> shared = model.InitParams(rng);
      std::vector<std::vector<geo::Point>> recents;
      std::vector<const std::vector<double>*> row_params;
      for (int w = 0; w < 9; ++w) {
        params.push_back(model.InitParams(rng));
        std::vector<geo::Point> walk;
        for (int s = 0; s < 4; ++s) {
          walk.push_back(grid.Clamp({rng.Uniform(0.0, grid.width_km()),
                                     rng.Uniform(0.0, grid.height_km())}));
        }
        recents.push_back(std::move(walk));
      }
      for (int w = 0; w < 9; ++w) {
        row_params.push_back(w % 3 == 0 ? &shared : &params[w]);
      }

      core::FleetForecastScratch scratch;
      std::vector<std::vector<geo::TimedPoint>> batched;
      core::RolloutPredictBatch(engine, row_params, recents, grid,
                                /*horizon_steps=*/7, /*now_min=*/600.0,
                                /*step_period_min=*/10.0, scratch, &batched);

      ASSERT_EQ(batched.size(), recents.size());
      for (size_t w = 0; w < recents.size(); ++w) {
        auto scalar = core::RolloutPredict(model, *row_params[w], recents[w],
                                           grid, 7, 600.0, 10.0);
        ASSERT_EQ(batched[w].size(), scalar.size());
        for (size_t i = 0; i < scalar.size(); ++i) {
          EXPECT_EQ(batched[w][i].loc.x, scalar[i].loc.x);
          EXPECT_EQ(batched[w][i].loc.y, scalar[i].loc.y);
          EXPECT_EQ(batched[w][i].time_min, scalar[i].time_min);
        }
      }
    }
  }
}

/// Scratch reuse must be stateless: a big batch, then a small one, then
/// big again — each must match a fresh-scratch run bit for bit (stale
/// tails from the larger plan must never leak into the smaller).
TEST(BatchedSeq2SeqTest, EngineScratchShrinkThenGrowParity) {
  Seq2SeqConfig config;
  config.input_dim = 2;
  config.hidden_dim = 7;
  config.seq_out = 2;
  tamp::Rng rng(31);
  EncoderDecoder model(config);
  BatchedSeq2Seq engine(config);

  std::vector<std::vector<double>> params;
  std::vector<Sequence> windows;
  for (int r = 0; r < 8; ++r) {
    params.push_back(model.InitParams(rng));
    windows.push_back(MakeWindow(rng, 6, 2));
  }

  auto run = [&](size_t rows, BatchedSeq2SeqScratch& scratch) {
    std::vector<const std::vector<double>*> row_params;
    std::vector<const Sequence*> inputs;
    for (size_t r = 0; r < rows; ++r) {
      row_params.push_back(&params[r]);
      inputs.push_back(&windows[r]);
    }
    std::vector<Sequence> out;
    engine.PredictBatch(row_params, inputs, &out, scratch);
    return out;
  };

  BatchedSeq2SeqScratch reused;
  for (size_t rows : {8u, 2u, 8u}) {
    std::vector<Sequence> with_reuse = run(rows, reused);
    BatchedSeq2SeqScratch fresh;
    std::vector<Sequence> from_fresh = run(rows, fresh);
    ASSERT_EQ(with_reuse.size(), rows);
    for (size_t r = 0; r < rows; ++r) {
      ExpectSequenceEq(with_reuse[r], from_fresh[r]);
    }
  }
}

/// The scalar path's PredictScratch has the same contract: long window,
/// short window, long again, all bitwise equal to scratch-free calls.
TEST(BatchedSeq2SeqTest, PredictScratchShrinkThenGrowParity) {
  Seq2SeqConfig config;
  config.hidden_dim = 9;
  config.seq_out = 2;
  tamp::Rng rng(37);
  EncoderDecoder model(config);
  std::vector<double> params = model.InitParams(rng);

  PredictScratch scratch;
  for (int steps : {8, 2, 8}) {
    Sequence window = MakeWindow(rng, steps, 2);
    Sequence with_scratch = model.Predict(params, window, &scratch);
    Sequence without = model.Predict(params, window);
    ExpectSequenceEq(with_scratch, without);
    EXPECT_EQ(model.EvalLoss(params, window, without, {}, &scratch),
              model.EvalLoss(params, window, without, {}));
  }
}

TEST(BatchedSeq2SeqTest, TrainerEvaluateBatchedMatchesScalar) {
  meta::TrainerConfig config;
  config.model.hidden_dim = 6;
  tamp::Rng rng(43);
  EncoderDecoder model(config.model);

  meta::TrainedModels models;
  models.model_config = config.model;
  std::vector<meta::LearningTask> tasks;
  for (int w = 0; w < 5; ++w) {
    models.worker_params.push_back(model.InitParams(rng));
    meta::LearningTask task;
    task.worker_id = w;
    // Worker 3's eval windows have mixed lengths: the batched path must
    // fall back to the scalar chain for that worker and still agree.
    for (int i = 0; i < 4; ++i) {
      meta::TrainingSample sample;
      int steps = (w == 3 && i % 2 == 1) ? 3 : 4;
      sample.input = MakeWindow(rng, steps, 2);
      sample.target.push_back({rng.Uniform01(), rng.Uniform01()});
      sample.target_km.push_back(
          {sample.target[0][0] * 20.0, sample.target[0][1] * 10.0});
      task.eval.push_back(std::move(sample));
    }
    tasks.push_back(std::move(task));
  }

  geo::GridSpec grid(20.0, 10.0, 50, 100);
  for (int threads : {1, 4}) {
    ThreadCountGuard guard(threads);
    meta::TrainerConfig batched_config = config;
    batched_config.batched_eval = true;
    meta::TrainerConfig scalar_config = config;
    scalar_config.batched_eval = false;
    meta::EvalResult batched =
        meta::MobilityTrainer(batched_config).Evaluate(models, tasks, grid,
                                                       2.0);
    meta::EvalResult scalar =
        meta::MobilityTrainer(scalar_config).Evaluate(models, tasks, grid,
                                                      2.0);
    EXPECT_EQ(batched.aggregate.rmse_km, scalar.aggregate.rmse_km);
    EXPECT_EQ(batched.aggregate.mae_km, scalar.aggregate.mae_km);
    EXPECT_EQ(batched.aggregate.matching_rate, scalar.aggregate.matching_rate);
    EXPECT_EQ(batched.aggregate.num_points, scalar.aggregate.num_points);
    ASSERT_EQ(batched.per_worker.size(), scalar.per_worker.size());
    for (size_t w = 0; w < scalar.per_worker.size(); ++w) {
      EXPECT_EQ(batched.per_worker[w].rmse_km, scalar.per_worker[w].rmse_km);
      EXPECT_EQ(batched.per_worker[w].mae_km, scalar.per_worker[w].mae_km);
      EXPECT_EQ(batched.per_worker[w].matching_rate,
                scalar.per_worker[w].matching_rate);
    }
  }
}

/// The work counters are part of the bench gate, so they must not depend
/// on the thread count, and the cell count must equal the scalar path's
/// LstmCell::Forward call count with strictly fewer kernel launches.
TEST(BatchedSeq2SeqTest, WorkCountersAreExactAndThreadInvariant) {
  Seq2SeqConfig config;
  config.input_dim = 3;
  config.hidden_dim = 8;
  config.seq_out = 2;
  tamp::Rng rng(47);
  EncoderDecoder model(config);
  BatchedSeq2Seq engine(config);

  std::vector<std::vector<double>> params;
  std::vector<Sequence> windows;
  std::vector<const std::vector<double>*> row_params;
  std::vector<const Sequence*> inputs;
  const int rows = 70;  // > kTileCols: at least two tiles.
  for (int r = 0; r < rows; ++r) {
    params.push_back(model.InitParams(rng));
    windows.push_back(MakeWindow(rng, 5, 3));
  }
  for (int r = 0; r < rows; ++r) {
    row_params.push_back(&params[r]);
    inputs.push_back(&windows[r]);
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter& cells = registry.GetCounter("nn.forecast_cells");
  obs::Counter& gemm = registry.GetCounter("nn.batched_gemm_calls");
  obs::Counter& batch_rows = registry.GetCounter("nn.batch_rows");

  int64_t cell_delta[2] = {0, 0};
  int64_t gemm_delta[2] = {0, 0};
  int64_t rows_delta[2] = {0, 0};
  const int thread_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    ThreadCountGuard guard(thread_counts[i]);
    BatchedSeq2SeqScratch scratch;
    std::vector<Sequence> out;
    const int64_t c0 = cells.value();
    const int64_t g0 = gemm.value();
    const int64_t r0 = batch_rows.value();
    engine.PredictBatch(row_params, inputs, &out, scratch);
    cell_delta[i] = cells.value() - c0;
    gemm_delta[i] = gemm.value() - g0;
    rows_delta[i] = batch_rows.value() - r0;
  }

  // Scalar reference: one LstmCell::Forward per row per (seq_in + seq_out)
  // step; kernels: one gate launch per tile per cell step plus one readout
  // launch per tile per decoder step.
  const int64_t expected_cells = static_cast<int64_t>(rows) * (5 + 2);
  const int64_t tiles = (rows + 63) / 64;
  EXPECT_EQ(cell_delta[0], expected_cells);
  EXPECT_EQ(gemm_delta[0], tiles * (7 + 2));
  EXPECT_EQ(rows_delta[0], rows);
  EXPECT_LT(gemm_delta[0], expected_cells);
  EXPECT_EQ(cell_delta[0], cell_delta[1]);
  EXPECT_EQ(gemm_delta[0], gemm_delta[1]);
  EXPECT_EQ(rows_delta[0], rows_delta[1]);
}

/// End to end: the full simulator plan — every SimMetrics field, including
/// the accumulated float cost — is identical under --forecast=batched and
/// --forecast=scalar, at 1 and 4 threads.
TEST(BatchedSeq2SeqTest, SimulatorPlanParityScalarVsBatched) {
  data::WorkloadConfig workload_config;
  workload_config.num_workers = 12;
  workload_config.num_train_days = 2;
  workload_config.num_tasks = 60;
  workload_config.num_historical_tasks = 300;
  workload_config.seed = 33;
  data::Workload workload = data::GenerateWorkload(workload_config);

  core::PipelineConfig pipeline_config;
  pipeline_config.trainer.model.hidden_dim = 6;
  pipeline_config.trainer.meta.iterations = 3;
  pipeline_config.trainer.fine_tune_steps = 3;
  pipeline_config.trainer.projection_dim = 8;
  pipeline_config.trainer.tree.game.k = 2;
  pipeline_config.sim.prediction_horizon_steps = 4;

  core::PipelineConfig batched_config = pipeline_config;
  batched_config.sim.forecast_mode = core::ForecastMode::kBatched;
  core::PipelineConfig scalar_config = pipeline_config;
  scalar_config.sim.forecast_mode = core::ForecastMode::kScalar;
  core::TampPipeline batched_pipeline(batched_config);
  core::TampPipeline scalar_pipeline(scalar_config);
  core::OfflineResult offline = batched_pipeline.TrainOffline(workload);

  for (int threads : {1, 4}) {
    ThreadCountGuard guard(threads);
    for (core::AssignMethod method :
         {core::AssignMethod::kKm, core::AssignMethod::kPpi}) {
      core::SimMetrics batched =
          batched_pipeline.RunOnline(workload, offline, method);
      core::SimMetrics scalar =
          scalar_pipeline.RunOnline(workload, offline, method);
      EXPECT_EQ(batched.total_tasks, scalar.total_tasks);
      EXPECT_EQ(batched.assignments, scalar.assignments);
      EXPECT_EQ(batched.accepted, scalar.accepted);
      EXPECT_EQ(batched.completed, scalar.completed);
      EXPECT_EQ(batched.total_cost_km, scalar.total_cost_km);
    }
  }
}

}  // namespace
}  // namespace tamp::nn
