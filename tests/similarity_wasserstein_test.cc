#include "similarity/wasserstein.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tamp::similarity {
namespace {

TEST(Wasserstein1DTest, IdenticalSamplesAreZero) {
  EXPECT_DOUBLE_EQ(Wasserstein1D({1, 2, 3}, {3, 2, 1}), 0.0);
}

TEST(Wasserstein1DTest, PureShiftEqualsShiftMagnitude) {
  // W1 of a distribution against its translation is the translation.
  EXPECT_NEAR(Wasserstein1D({0, 1, 2}, {5, 6, 7}), 5.0, 1e-12);
}

TEST(Wasserstein1DTest, TwoPointMasses) {
  EXPECT_NEAR(Wasserstein1D({0.0}, {4.0}), 4.0, 1e-12);
}

TEST(Wasserstein1DTest, UnequalSampleCounts) {
  // {0,0} vs {0,0,3}: F_a jumps to 1 at 0; F_b is 2/3 at 0 and 1 at 3.
  // Integral of |F_a - F_b| = (1 - 2/3) * 3 = 1.
  EXPECT_NEAR(Wasserstein1D({0.0, 0.0}, {0.0, 0.0, 3.0}), 1.0, 1e-12);
}

TEST(Wasserstein1DTest, DuplicateValuesCollapse) {
  // Repeated samples are just CDF steps of height k/n: duplicating every
  // sample leaves the empirical distribution — and thus W1 — unchanged.
  std::vector<double> a = {0.0, 1.0};
  std::vector<double> a2 = {0.0, 0.0, 1.0, 1.0};
  std::vector<double> b = {2.0, 5.0};
  EXPECT_NEAR(Wasserstein1D(a, b), Wasserstein1D(a2, b), 1e-12);
}

TEST(Wasserstein1DTest, SingleElementAgainstMany) {
  // One point mass at 0 vs uniform {0,1,2}: mean transport = (0+1+2)/3.
  EXPECT_NEAR(Wasserstein1D({0.0}, {0.0, 1.0, 2.0}), 1.0, 1e-12);
}

TEST(Wasserstein1DTest, DisjointSupportsIsAtLeastTheGap) {
  // Supports [0,1] and [5,6]: every unit of mass travels at least 4 (the
  // gap) and at most 6 (the span).
  std::vector<double> a = {0.0, 0.5, 1.0};
  std::vector<double> b = {5.0, 5.5, 6.0};
  double w = Wasserstein1D(a, b);
  EXPECT_GE(w, 4.0);
  EXPECT_LE(w, 6.0);
  EXPECT_NEAR(w, 5.0, 1e-12);  // Matching quantiles: pure shift by 5.
}

TEST(Wasserstein1DTest, IsSymmetric) {
  std::vector<double> a = {0.1, 0.5, 2.0, 2.2};
  std::vector<double> b = {1.0, 1.5};
  EXPECT_NEAR(Wasserstein1D(a, b), Wasserstein1D(b, a), 1e-12);
}

TEST(ExactWasserstein2DTest, IdenticalSetsAreZero) {
  std::vector<geo::Point> a = {{0, 0}, {1, 1}, {2, 0}};
  EXPECT_NEAR(ExactWasserstein2D(a, a), 0.0, 1e-12);
}

TEST(ExactWasserstein2DTest, PureTranslation) {
  std::vector<geo::Point> a = {{0, 0}, {1, 0}};
  std::vector<geo::Point> b = {{0, 3}, {1, 3}};
  EXPECT_NEAR(ExactWasserstein2D(a, b), 3.0, 1e-12);
}

TEST(ExactWasserstein2DTest, OptimalCouplingNotGreedy) {
  // a = {(0,0), (10,0)}, b = {(1,0), (9,0)}: optimal pairing is 0->1 and
  // 10->9, mean cost 1 (crossed pairing would cost 9).
  std::vector<geo::Point> a = {{0, 0}, {10, 0}};
  std::vector<geo::Point> b = {{9, 0}, {1, 0}};
  EXPECT_NEAR(ExactWasserstein2D(a, b), 1.0, 1e-12);
}

TEST(SlicedWasserstein2DTest, ZeroForIdenticalClouds) {
  std::vector<geo::Point> a = {{0, 0}, {2, 1}, {1, 3}};
  EXPECT_NEAR(SlicedWasserstein2D(a, a, 8), 0.0, 1e-12);
}

TEST(SlicedWasserstein2DTest, GrowsWithSeparation) {
  tamp::Rng rng(3);
  std::vector<geo::Point> base, near, far;
  for (int i = 0; i < 40; ++i) {
    geo::Point p{rng.Normal(0.0, 1.0), rng.Normal(0.0, 1.0)};
    base.push_back(p);
    near.push_back({p.x + 1.0, p.y});
    far.push_back({p.x + 8.0, p.y});
  }
  double d_near = SlicedWasserstein2D(base, near, 16);
  double d_far = SlicedWasserstein2D(base, far, 16);
  EXPECT_LT(d_near, d_far);
}

TEST(SlicedWasserstein2DTest, LowerBoundsExactAndTracksIt) {
  // Each 1-D projection is a contraction, so sliced W <= exact W; for
  // translations the gap is the average |cos| factor (2/pi).
  tamp::Rng rng(9);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<geo::Point> a, b;
    for (int i = 0; i < 12; ++i) {
      a.push_back({rng.Uniform(0, 5), rng.Uniform(0, 5)});
      b.push_back({rng.Uniform(3, 9), rng.Uniform(1, 7)});
    }
    double sliced = SlicedWasserstein2D(a, b, 32);
    double exact = ExactWasserstein2D(a, b);
    EXPECT_LE(sliced, exact + 1e-9);
    EXPECT_GT(sliced, 0.3 * exact);
  }
}

TEST(DistributionSimilarityTest, IdenticalDistributionsScoreOne) {
  std::vector<geo::Point> a = {{0, 0}, {1, 1}};
  EXPECT_NEAR(DistributionSimilarity(a, a, 8, 2.0), 1.0, 1e-12);
}

TEST(DistributionSimilarityTest, EmptyCloudScoresZero) {
  std::vector<geo::Point> a = {{0, 0}};
  EXPECT_EQ(DistributionSimilarity({}, a, 8, 2.0), 0.0);
}

TEST(DistributionSimilarityTest, DecreasesWithDistance) {
  std::vector<geo::Point> base = {{0, 0}, {1, 0}};
  std::vector<geo::Point> near = {{0.5, 0}, {1.5, 0}};
  std::vector<geo::Point> far = {{20, 0}, {21, 0}};
  double s_near = DistributionSimilarity(base, near, 8, 2.0);
  double s_far = DistributionSimilarity(base, far, 8, 2.0);
  EXPECT_GT(s_near, s_far);
  EXPECT_GT(s_near, 0.5);
  EXPECT_LT(s_far, 0.2);
}

TEST(DistributionSimilarityTest, AlwaysInUnitInterval) {
  tamp::Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<geo::Point> a, b;
    for (int i = 0; i < 10; ++i) {
      a.push_back({rng.Uniform(0, 30), rng.Uniform(0, 30)});
      b.push_back({rng.Uniform(0, 30), rng.Uniform(0, 30)});
    }
    double s = DistributionSimilarity(a, b, 8, 2.0);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

}  // namespace
}  // namespace tamp::similarity
