#include "common/check.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  TAMP_CHECK(1 + 1 == 2);
  TAMP_CHECK_MSG(true, "never printed");
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAbortsWithFileLineAndExpression) {
  EXPECT_DEATH(TAMP_CHECK(2 < 1),
               "TAMP_CHECK failed at .*common_check_test\\.cc:[0-9]+: 2 < 1");
}

TEST(CheckDeathTest, FailingCheckMsgIncludesContextString) {
  EXPECT_DEATH(TAMP_CHECK_MSG(false, "worker count mismatch"),
               "TAMP_CHECK failed at .*:[0-9]+: false \\(worker count "
               "mismatch\\)");
}

TEST(CheckTest, DcheckPassesOnTrueCondition) {
  TAMP_DCHECK(3 > 2);
  SUCCEED();
}

#ifdef NDEBUG
TEST(CheckTest, DcheckCompiledOutInReleaseBuilds) {
  TAMP_DCHECK(false);  // Must not abort when NDEBUG is defined.
  SUCCEED();
}
#else
TEST(CheckDeathTest, DcheckAbortsInDebugBuilds) {
  EXPECT_DEATH(TAMP_DCHECK(false), "TAMP_DCHECK failed at .*:[0-9]+: false");
}
#endif

TEST(CheckFiniteTest, PassesThroughFiniteValues) {
  EXPECT_DOUBLE_EQ(TAMP_CHECK_FINITE(1.5), 1.5);
  EXPECT_DOUBLE_EQ(TAMP_CHECK_FINITE(0.0), 0.0);
  EXPECT_DOUBLE_EQ(TAMP_CHECK_FINITE(-273.15), -273.15);
  EXPECT_FLOAT_EQ(TAMP_CHECK_FINITE(2.5f), 2.5f);
}

TEST(CheckFiniteDeathTest, RejectsNan) {
  const double nan = std::nan("");
  EXPECT_DEATH(TAMP_CHECK_FINITE(nan),
               "TAMP_CHECK_FINITE failed at .*:[0-9]+: nan is not finite "
               "\\(value: nan\\)");
}

TEST(CheckFiniteDeathTest, RejectsPositiveAndNegativeInfinity) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DEATH(TAMP_CHECK_FINITE(inf), "inf is not finite \\(value: inf\\)");
  EXPECT_DEATH(TAMP_CHECK_FINITE(-inf),
               "-inf is not finite \\(value: -inf\\)");
}

TEST(CheckFiniteTest, WorksInsideExpressions) {
  const double x = 2.0;
  EXPECT_DOUBLE_EQ(TAMP_CHECK_FINITE(x * 3.0) + 1.0, 7.0);
}

TEST(CheckIndexTest, ReturnsIndexWhenInBounds) {
  std::vector<int> v = {10, 20, 30};
  EXPECT_EQ(v[TAMP_CHECK_INDEX(0u, v.size())], 10);
  EXPECT_EQ(v[TAMP_CHECK_INDEX(2u, v.size())], 30);
  const int signed_index = 1;
  EXPECT_EQ(v[static_cast<size_t>(TAMP_CHECK_INDEX(signed_index, 3))], 20);
}

TEST(CheckIndexDeathTest, RejectsOutOfRangeIndex) {
  std::vector<int> v = {1, 2, 3};
  EXPECT_DEATH(
      TAMP_CHECK_INDEX(3u, v.size()),
      "TAMP_CHECK_INDEX failed at .*:[0-9]+: 3u \\(index 3 out of range "
      "\\[0, 3\\)\\)");
}

TEST(CheckIndexDeathTest, RejectsNegativeIndex) {
  EXPECT_DEATH(TAMP_CHECK_INDEX(-1, 5),
               "-1 \\(index -1 out of range \\[0, 5\\)\\)");
}

TEST(CheckIndexDeathTest, RejectsAnyIndexIntoEmptyRange) {
  EXPECT_DEATH(TAMP_CHECK_INDEX(0, 0), "index 0 out of range \\[0, 0\\)");
}

}  // namespace
