#include "assign/candidates.h"

#include <gtest/gtest.h>

#include "assign/matching_rate.h"

namespace tamp::assign {
namespace {

CandidateWorker MakeWorker(std::vector<geo::TimedPoint> predicted,
                           double detour_km = 4.0, double speed = 1.0) {
  CandidateWorker w;
  w.id = 0;
  w.predicted = std::move(predicted);
  w.detour_budget_km = detour_km;
  w.speed_kmpm = speed;
  w.matching_rate = 0.5;
  return w;
}

SpatialTask MakeTask(geo::Point loc, double deadline) {
  SpatialTask t;
  t.id = 0;
  t.location = loc;
  t.deadline_min = deadline;
  return t;
}

TEST(EvaluateCandidateTest, PointWithinBoundJoinsB) {
  // Worker detour budget 4 -> d/2 = 2; generous deadline.
  auto worker = MakeWorker({{0.0, 0.0, 10.0}, {1.0, 0.0, 20.0}});
  auto task = MakeTask({1.5, 0.0}, 1000.0);
  CandidateInfo info = EvaluateCandidate(task, worker, /*a=*/0.4, /*now=*/0.0);
  // dis are 1.5 and 0.5; with a=0.4: 1.5+0.4 <= 2 and 0.5+0.4 <= 2.
  EXPECT_EQ(info.b_distances.size(), 2u);
  EXPECT_DOUBLE_EQ(info.min_b, 0.5);
  EXPECT_DOUBLE_EQ(info.min_dis, 0.5);
  EXPECT_TRUE(info.stage3_feasible);
}

TEST(EvaluateCandidateTest, MatchRadiusShrinksB) {
  auto worker = MakeWorker({{0.0, 0.0, 10.0}, {1.0, 0.0, 20.0}});
  auto task = MakeTask({1.5, 0.0}, 1000.0);
  // With a=0.8: 1.5+0.8 > 2 excludes the first point; 0.5+0.8 <= 2 stays.
  CandidateInfo info = EvaluateCandidate(task, worker, 0.8, 0.0);
  EXPECT_EQ(info.b_distances.size(), 1u);
  EXPECT_DOUBLE_EQ(info.min_b, 0.5);
}

TEST(EvaluateCandidateTest, DeadlineTightensTheBound) {
  // Lemma 2: d_t = speed * (deadline - now). With speed 1 and deadline in
  // 1 minute, d_t = 1 < d/2 = 2, so points need dis + a <= 1: the far
  // point (1.5 + 0.4 > 1) drops out, the near one (0.5 + 0.4 <= 1) stays.
  // With the looser deadline of the first test both were in B.
  auto worker = MakeWorker({{0.0, 0.0, 10.0}, {1.0, 0.0, 20.0}});
  auto task = MakeTask({1.5, 0.0}, 1.0);
  CandidateInfo info = EvaluateCandidate(task, worker, 0.4, 0.0);
  ASSERT_EQ(info.b_distances.size(), 1u);
  EXPECT_DOUBLE_EQ(info.min_b, 0.5);
  EXPECT_TRUE(info.stage3_feasible);
}

TEST(EvaluateCandidateTest, ExpiredDeadlineMakesEverythingInfeasible) {
  auto worker = MakeWorker({{0.0, 0.0, 10.0}}, 4.0, 1.0);
  auto task = MakeTask({0.0, 0.0}, -5.0);
  CandidateInfo info = EvaluateCandidate(task, worker, 0.0, 0.0);
  EXPECT_TRUE(info.b_distances.empty());
  EXPECT_FALSE(info.stage3_feasible);
}

TEST(EvaluateCandidateTest, NoPredictionsFallBackToCurrentLocation) {
  // Without predicted points B must stay empty (no Theorem-2 confidence),
  // but the known current location still feeds the stage-3 distance test.
  auto worker = MakeWorker({});
  worker.current_location = {0.5, 0.0};
  auto task = MakeTask({0.0, 0.0}, 100.0);
  CandidateInfo info = EvaluateCandidate(task, worker, 0.0, 0.0);
  EXPECT_TRUE(info.b_distances.empty());
  EXPECT_TRUE(info.stage3_feasible);
  EXPECT_DOUBLE_EQ(info.min_dis, 0.5);

  // A far-away worker with no predictions is infeasible.
  worker.current_location = {50.0, 0.0};
  CandidateInfo far = EvaluateCandidate(task, worker, 0.0, 0.0);
  EXPECT_FALSE(far.stage3_feasible);
}

TEST(EvaluateCandidateTest, DetourBudgetHalved) {
  // Theorem 2 uses d/2, not d: a point at distance 1.5 with a=0 passes
  // only when d/2 >= 1.5, i.e. d >= 3.
  auto task = MakeTask({1.5, 0.0}, 1000.0);
  auto tight = MakeWorker({{0.0, 0.0, 5.0}}, /*detour=*/2.9);
  auto loose = MakeWorker({{0.0, 0.0, 5.0}}, /*detour=*/3.1);
  EXPECT_TRUE(
      EvaluateCandidate(task, tight, 0.0, 0.0).b_distances.empty());
  EXPECT_EQ(EvaluateCandidate(task, loose, 0.0, 0.0).b_distances.size(), 1u);
}

TEST(EvaluateCandidateTest, DeadlineEqualToNowIsExpired) {
  // The deadline test is strict (reach the task *before* tau.t): a task
  // whose deadline is exactly `now` admits nobody, even a worker standing
  // on it.
  auto worker = MakeWorker({{0.0, 0.0, 1.0}});
  worker.current_location = {0.0, 0.0};
  auto task = MakeTask({0.0, 0.0}, /*deadline=*/7.0);
  CandidateInfo info = EvaluateCandidate(task, worker, 0.5, /*now=*/7.0);
  EXPECT_TRUE(info.b_distances.empty());
  EXPECT_FALSE(info.stage3_feasible);
}

TEST(EvaluateCandidateTest, ExactBoundaryIsInsideB) {
  // Theorem-2 membership is the closed inequality dis + a <= bound: with
  // d/2 = 2, a point at distance 1.5 and a = 0.5 sits exactly on the
  // boundary and must be counted (the spatial-index prune relies on the
  // same closed-ball convention).
  auto worker = MakeWorker({{1.5, 0.0, 10.0}});
  auto task = MakeTask({0.0, 0.0}, 1000.0);
  CandidateInfo on = EvaluateCandidate(task, worker, 0.5, 0.0);
  ASSERT_EQ(on.b_distances.size(), 1u);
  EXPECT_DOUBLE_EQ(on.min_b, 1.5);
  // Any radius past the boundary excludes it.
  CandidateInfo off = EvaluateCandidate(task, worker, 0.5 + 1e-9, 0.0);
  EXPECT_TRUE(off.b_distances.empty());
}

TEST(EvaluateCandidateTest, DeclinedWorkerIsNeverProposedAgain) {
  auto worker = MakeWorker({{0.0, 0.0, 10.0}});
  worker.id = 42;
  worker.current_location = {0.0, 0.0};
  auto task = MakeTask({0.0, 0.0}, 1000.0);
  ASSERT_TRUE(EvaluateCandidate(task, worker, 0.5, 0.0).stage3_feasible);
  task.declined_worker_ids.push_back(42);
  CandidateInfo info = EvaluateCandidate(task, worker, 0.5, 0.0);
  EXPECT_TRUE(info.b_distances.empty());
  EXPECT_FALSE(info.stage3_feasible);
}

TEST(MatchingRateTest, CountsWithinRadius) {
  std::vector<geo::Point> real = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  std::vector<geo::Point> pred = {{0, 0.1}, {1, 3.0}, {2, 0.4}, {9, 9}};
  EXPECT_DOUBLE_EQ(MatchingRate(real, pred, 0.5), 0.5);
}

TEST(MatchingRateTest, BoundaryIsInclusive) {
  std::vector<geo::Point> real = {{0, 0}};
  std::vector<geo::Point> pred = {{0.5, 0}};
  EXPECT_DOUBLE_EQ(MatchingRate(real, pred, 0.5), 1.0);
}

TEST(MatchingRateTest, EmptyIsZero) {
  EXPECT_EQ(MatchingRate({}, {}, 1.0), 0.0);
}

TEST(MatchingRateTest, PerfectPredictionIsOne) {
  std::vector<geo::Point> pts = {{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(MatchingRate(pts, pts, 0.0), 1.0);
}

}  // namespace
}  // namespace tamp::assign
