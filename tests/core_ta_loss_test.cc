#include "core/ta_loss.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tamp::core {
namespace {

geo::GridSpec TestGrid() { return geo::GridSpec(10.0, 10.0, 20, 20); }

TEST(TaskOrientedWeighterTest, MatchesEquationSeven) {
  // Three historical tasks near (2,2); query exactly there.
  std::vector<geo::Point> tasks = {{2.0, 2.0}, {2.1, 2.0}, {2.0, 2.2},
                                   {8.0, 8.0}};
  TaLossParams params;
  params.kappa = 0.5;
  params.delta = 0.5;
  params.dq_km = 1.0;
  params.max_weight = 1e9;  // Disable the stability cap for the raw check.
  TaskOrientedWeighter weighter(TestGrid(), tasks, params);
  // rho = 4 tasks * pi * 1 / 100.
  double rho = 4.0 * M_PI / 100.0;
  EXPECT_NEAR(weighter.rho(), rho, 1e-12);
  // Count within 1 km of (2,2) is 3.
  EXPECT_NEAR(weighter.Weight({2.0, 2.0}), 0.5 * 3.0 / rho + 0.5, 1e-9);
}

TEST(TaskOrientedWeighterTest, DenseAreasWeighMoreThanSparse) {
  tamp::Rng rng(3);
  std::vector<geo::Point> tasks;
  for (int i = 0; i < 200; ++i) {
    tasks.push_back({rng.Normal(2.0, 0.5), rng.Normal(2.0, 0.5)});
  }
  TaLossParams params;
  TaskOrientedWeighter weighter(TestGrid(), tasks, params);
  EXPECT_GT(weighter.Weight({2.0, 2.0}), weighter.Weight({8.0, 8.0}));
}

TEST(TaskOrientedWeighterTest, EmptyRegionFallsBackToDelta) {
  std::vector<geo::Point> tasks = {{9.0, 9.0}};
  TaLossParams params;
  params.delta = 0.7;
  TaskOrientedWeighter weighter(TestGrid(), tasks, params);
  EXPECT_DOUBLE_EQ(weighter.Weight({1.0, 1.0}), 0.7);
}

TEST(TaskOrientedWeighterTest, WeightsAreAlwaysAtLeastDelta) {
  tamp::Rng rng(5);
  std::vector<geo::Point> tasks;
  for (int i = 0; i < 50; ++i) {
    tasks.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  TaLossParams params;
  TaskOrientedWeighter weighter(TestGrid(), tasks, params);
  for (int q = 0; q < 50; ++q) {
    geo::Point p{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    EXPECT_GE(weighter.Weight(p), params.delta);
  }
}

TEST(TaskOrientedWeighterTest, AsFunctionWrapsWeight) {
  std::vector<geo::Point> tasks = {{5.0, 5.0}};
  TaLossParams params;
  TaskOrientedWeighter weighter(TestGrid(), tasks, params);
  auto fn = weighter.AsFunction();
  EXPECT_DOUBLE_EQ(fn({5.0, 5.0}), weighter.Weight({5.0, 5.0}));
}

TEST(TaskOrientedWeighterTest, EmptyHistoryIsFinite) {
  TaLossParams params;
  TaskOrientedWeighter weighter(TestGrid(), std::vector<geo::Point>{},
                                params);
  double w = weighter.Weight({5.0, 5.0});
  EXPECT_TRUE(std::isfinite(w));
  EXPECT_DOUBLE_EQ(w, params.delta);
}

TEST(TaskOrientedWeighterTest, CapsExtremeWeights) {
  // 500 tasks stacked on one point: the raw Eq. 7 ratio explodes; the
  // stability cap bounds it.
  std::vector<geo::Point> tasks(500, geo::Point{3.0, 3.0});
  TaLossParams params;
  params.max_weight = 4.0;
  TaskOrientedWeighter weighter(TestGrid(), tasks, params);
  EXPECT_DOUBLE_EQ(weighter.Weight({3.0, 3.0}), 4.0);
  // Away from the stack the base weight applies, uncapped.
  EXPECT_DOUBLE_EQ(weighter.Weight({9.0, 9.0}), params.delta);
}

TEST(TaskOrientedWeighterTest, KappaScalesDensityTerm) {
  std::vector<geo::Point> tasks(20, geo::Point{3.0, 3.0});
  TaLossParams lo, hi;
  lo.kappa = 0.1;
  hi.kappa = 0.9;
  lo.max_weight = hi.max_weight = 1e9;
  TaskOrientedWeighter w_lo(TestGrid(), tasks, lo);
  TaskOrientedWeighter w_hi(TestGrid(), tasks, hi);
  double base_lo = w_lo.Weight({3.0, 3.0}) - lo.delta;
  double base_hi = w_hi.Weight({3.0, 3.0}) - hi.delta;
  EXPECT_NEAR(base_hi / base_lo, 9.0, 1e-9);
}

}  // namespace
}  // namespace tamp::core
