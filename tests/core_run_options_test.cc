// Tests of the core::RunOptions façade: Validate() field checks, the
// shared --name=value flag surface, and the AssignMethod / WorkloadKind
// name round-trips every entry point leans on.
#include "core/run_options.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/workload.h"

namespace tamp {
namespace {

/// Builds an argv for ParseRunFlags ("prog" + the given flags).
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    storage_.insert(storage_.begin(), "prog");
    for (std::string& s : storage_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

Status Parse(std::vector<std::string> args, core::RunOptions* options) {
  Argv argv(std::move(args));
  return core::ParseRunFlags(argv.argc(), argv.argv(), options);
}

TEST(RunOptionsValidateTest, DefaultsAreValid) {
  core::RunOptions options;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(RunOptionsValidateTest, RejectsOutOfRangeFields) {
  {
    core::RunOptions o;
    o.threads = -1;
    EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    core::RunOptions o;
    o.sim.prediction_horizon_steps = 0;
    Status s = o.Validate();
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(s.message().find("horizon"), std::string::npos);
  }
  {
    core::RunOptions o;
    o.sim.match_radius_km = 0.0;
    EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    core::RunOptions o;
    o.sim.ppi.epsilon = 0;
    EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    core::RunOptions o;
    o.sim.ggpso.crossover_rate = 1.5;
    EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  }
}

TEST(RunOptionsValidateTest, RejectsDuplicateMethods) {
  core::RunOptions options;
  options.methods = {core::AssignMethod::kKm, core::AssignMethod::kPpi,
                     core::AssignMethod::kKm};
  Status s = options.Validate();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("KM"), std::string::npos);
}

TEST(ParseRunFlagsTest, HelpIsFailedPreconditionWithHelpText) {
  core::RunOptions options;
  Status s = Parse({"--help"}, &options);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(s.message(), core::RunFlagsHelp());
}

TEST(ParseRunFlagsTest, ParsesEveryFlag) {
  core::RunOptions options;
  ASSERT_TRUE(Parse({"--dataset=gowalla", "--seed=42", "--threads=3",
                     "--horizon=6", "--methods=KM,PPI",
                     "--json-dir=/tmp/out", "--trace=t.json",
                     "--metrics=m.json"},
                    &options)
                  .ok());
  EXPECT_EQ(options.workload.kind, data::WorkloadKind::kGowallaFoursquare);
  EXPECT_EQ(options.seed, 42u);
  EXPECT_EQ(options.threads, 3);
  EXPECT_EQ(options.sim.prediction_horizon_steps, 6);
  ASSERT_EQ(options.methods.size(), 2u);
  EXPECT_EQ(options.methods[0], core::AssignMethod::kKm);
  EXPECT_EQ(options.methods[1], core::AssignMethod::kPpi);
  EXPECT_EQ(options.sinks.bench_json_dir, "/tmp/out");
  EXPECT_EQ(options.sinks.trace_path, "t.json");
  EXPECT_EQ(options.sinks.metrics_path, "m.json");
}

TEST(ParseRunFlagsTest, ParsesForecastPath) {
  core::RunOptions options;
  ASSERT_TRUE(Parse({"--forecast=scalar"}, &options).ok());
  EXPECT_EQ(options.sim.forecast_mode, core::ForecastMode::kScalar);
  ASSERT_TRUE(Parse({"--forecast=batched"}, &options).ok());
  EXPECT_EQ(options.sim.forecast_mode, core::ForecastMode::kBatched);
  Status bad = Parse({"--forecast=vectorized"}, &options);
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.message().find("--forecast"), std::string::npos);
}

TEST(ParseRunFlagsTest, LeavesCallerDefaultsAlone) {
  core::RunOptions options;
  options.seed = 99;
  options.sim.prediction_horizon_steps = 4;
  ASSERT_TRUE(Parse({"--threads=2"}, &options).ok());
  EXPECT_EQ(options.seed, 99u);
  EXPECT_EQ(options.sim.prediction_horizon_steps, 4);
  EXPECT_EQ(options.threads, 2);
}

TEST(ParseRunFlagsTest, RejectsMalformedInput) {
  core::RunOptions options;
  EXPECT_EQ(Parse({"--bogus=1"}, &options).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse({"positional"}, &options).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse({"--seed=abc"}, &options).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse({"--seed=-5"}, &options).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse({"--dataset=mars"}, &options).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse({"--methods=KM,WARP"}, &options).code(),
            StatusCode::kInvalidArgument);
}

TEST(AssignMethodNameTest, RoundTripsThroughParse) {
  for (core::AssignMethod method : core::AllAssignMethods()) {
    const std::string_view name = core::AssignMethodName(method);
    StatusOr<core::AssignMethod> parsed = core::ParseAssignMethod(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(*parsed, method) << name;
  }
}

TEST(AssignMethodNameTest, ParseIsCaseInsensitive) {
  StatusOr<core::AssignMethod> parsed = core::ParseAssignMethod("ppi");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, core::AssignMethod::kPpi);
}

TEST(AssignMethodNameTest, ParseRejectsUnknownListingAccepted) {
  StatusOr<core::AssignMethod> parsed = core::ParseAssignMethod("WARP");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("GGPSO"), std::string::npos);
}

TEST(WorkloadKindNameTest, RoundTripsAndAcceptsLongForms) {
  for (data::WorkloadKind kind : {data::WorkloadKind::kPortoDidi,
                                  data::WorkloadKind::kGowallaFoursquare}) {
    StatusOr<data::WorkloadKind> parsed =
        data::ParseWorkloadKind(data::WorkloadKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  StatusOr<data::WorkloadKind> long_form =
      data::ParseWorkloadKind("gowalla_foursquare");
  ASSERT_TRUE(long_form.ok());
  EXPECT_EQ(*long_form, data::WorkloadKind::kGowallaFoursquare);
  EXPECT_FALSE(data::ParseWorkloadKind("mars").ok());
}

TEST(ModeEnumTest, CandidateModeRoundTripsThroughFlag) {
  // Name -> --candidates=<name> -> ParseRunFlags -> same enum, for every
  // mode: the flag surface and the enum table can never drift apart.
  for (core::CandidateMode mode : core::AllCandidateModes()) {
    const std::string name(core::CandidateModeName(mode));
    core::RunOptions options;
    ASSERT_TRUE(Parse({"--candidates=" + name}, &options).ok()) << name;
    EXPECT_EQ(options.sim.candidate_mode, mode) << name;
    StatusOr<core::CandidateMode> parsed = core::ParseCandidateMode(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(*parsed, mode) << name;
  }
  core::RunOptions options;
  Status bad = Parse({"--candidates=psychic"}, &options);
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.message().find("--candidates"), std::string::npos);
}

TEST(ModeEnumTest, ForecastModeRoundTripsThroughFlag) {
  for (core::ForecastMode mode : core::AllForecastModes()) {
    const std::string name(core::ForecastModeName(mode));
    core::RunOptions options;
    ASSERT_TRUE(Parse({"--forecast=" + name}, &options).ok()) << name;
    EXPECT_EQ(options.sim.forecast_mode, mode) << name;
    StatusOr<core::ForecastMode> parsed = core::ParseForecastMode(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(*parsed, mode) << name;
  }
}

TEST(ModeEnumTest, SimEngineRoundTripsThroughFlag) {
  for (core::SimEngine engine : core::AllSimEngines()) {
    const std::string name(core::SimEngineName(engine));
    core::RunOptions options;
    ASSERT_TRUE(Parse({"--engine=" + name}, &options).ok()) << name;
    EXPECT_EQ(options.sim.engine, engine) << name;
    StatusOr<core::SimEngine> parsed = core::ParseSimEngine(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(*parsed, engine) << name;
  }
  core::RunOptions options;
  Status bad = Parse({"--engine=quantum"}, &options);
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.message().find("--engine"), std::string::npos);
}

TEST(ModeEnumTest, ShardModeRoundTripsThroughFlag) {
  for (core::ShardMode mode : core::AllShardModes()) {
    const std::string name(core::ShardModeName(mode));
    core::RunOptions options;
    ASSERT_TRUE(Parse({"--sharding=" + name}, &options).ok()) << name;
    EXPECT_EQ(options.sim.shard_mode, mode) << name;
    StatusOr<core::ShardMode> parsed = core::ParseShardMode(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(*parsed, mode) << name;
  }
  core::RunOptions defaults;
  EXPECT_EQ(defaults.sim.shard_mode, core::ShardMode::kOff);
  Status bad = Parse({"--sharding=hexagons"}, &defaults);
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.message().find("--sharding"), std::string::npos);
  EXPECT_NE(bad.message().find("components"), std::string::npos);
}

TEST(ModeEnumTest, ParseIsCaseInsensitive) {
  StatusOr<core::CandidateMode> candidates =
      core::ParseCandidateMode("Incremental");
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(*candidates, core::CandidateMode::kIncremental);
  StatusOr<core::SimEngine> engine = core::ParseSimEngine("EVENT");
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(*engine, core::SimEngine::kEvent);
  StatusOr<core::ShardMode> shard = core::ParseShardMode("Components");
  ASSERT_TRUE(shard.ok());
  EXPECT_EQ(*shard, core::ShardMode::kComponents);
}

TEST(WorkloadSpecTest, RoundTripsThroughFlag) {
  for (const data::WorkloadSpec& spec : data::AllWorkloadSpecs()) {
    const std::string name = data::WorkloadSpecName(spec);
    core::RunOptions options;
    ASSERT_TRUE(Parse({"--workload=" + name}, &options).ok()) << name;
    EXPECT_EQ(options.workload, spec) << name;
    StatusOr<data::WorkloadSpec> parsed = data::ParseWorkloadSpec(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(*parsed, spec) << name;
  }
}

TEST(WorkloadSpecTest, BareDatasetMeansBaselineAndDatasetOnlySetsKind) {
  core::RunOptions options;
  ASSERT_TRUE(Parse({"--workload=gowalla"}, &options).ok());
  EXPECT_EQ(options.workload.kind, data::WorkloadKind::kGowallaFoursquare);
  EXPECT_EQ(options.workload.scenario, data::WorkloadScenario::kBaseline);
  // --dataset after --workload only swaps the kind, keeping the scenario.
  core::RunOptions churned;
  ASSERT_TRUE(
      Parse({"--workload=porto_churn", "--dataset=gowalla"}, &churned).ok());
  EXPECT_EQ(churned.workload.kind, data::WorkloadKind::kGowallaFoursquare);
  EXPECT_EQ(churned.workload.scenario, data::WorkloadScenario::kChurn);
  Status bad = Parse({"--workload=porto_monsoon"}, &options);
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.message().find("--workload"), std::string::npos);
}

TEST(DeprecatedModeSettersTest, MapOntoTheEnums) {
  // One release of compatibility: the old boolean switches must keep
  // steering the typed enums until they are removed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  core::SimulatorConfig config;
  config.set_use_spatial_index(false);
  EXPECT_EQ(config.candidate_mode, core::CandidateMode::kDense);
  config.set_use_spatial_index(true);
  EXPECT_EQ(config.candidate_mode, core::CandidateMode::kIndexed);
  config.set_use_incremental(true);
  EXPECT_EQ(config.candidate_mode, core::CandidateMode::kIncremental);
  config.set_use_incremental(false);
  EXPECT_EQ(config.candidate_mode, core::CandidateMode::kIndexed);
  config.set_use_batched_forecast(false);
  EXPECT_EQ(config.forecast_mode, core::ForecastMode::kScalar);
  config.set_use_batched_forecast(true);
  EXPECT_EQ(config.forecast_mode, core::ForecastMode::kBatched);
#pragma GCC diagnostic pop
}

TEST(EffectiveMethodsTest, EmptyMeansAll) {
  core::RunOptions options;
  EXPECT_EQ(core::EffectiveMethods(options), core::AllAssignMethods());
  options.methods = {core::AssignMethod::kUpperBound};
  ASSERT_EQ(core::EffectiveMethods(options).size(), 1u);
  EXPECT_EQ(core::EffectiveMethods(options)[0],
            core::AssignMethod::kUpperBound);
}

}  // namespace
}  // namespace tamp
