// Tests of the core::RunOptions façade: Validate() field checks, the
// shared --name=value flag surface, and the AssignMethod / WorkloadKind
// name round-trips every entry point leans on.
#include "core/run_options.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/workload.h"

namespace tamp {
namespace {

/// Builds an argv for ParseRunFlags ("prog" + the given flags).
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    storage_.insert(storage_.begin(), "prog");
    for (std::string& s : storage_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

Status Parse(std::vector<std::string> args, core::RunOptions* options) {
  Argv argv(std::move(args));
  return core::ParseRunFlags(argv.argc(), argv.argv(), options);
}

TEST(RunOptionsValidateTest, DefaultsAreValid) {
  core::RunOptions options;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(RunOptionsValidateTest, RejectsOutOfRangeFields) {
  {
    core::RunOptions o;
    o.threads = -1;
    EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    core::RunOptions o;
    o.sim.prediction_horizon_steps = 0;
    Status s = o.Validate();
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(s.message().find("horizon"), std::string::npos);
  }
  {
    core::RunOptions o;
    o.sim.match_radius_km = 0.0;
    EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    core::RunOptions o;
    o.sim.ppi.epsilon = 0;
    EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    core::RunOptions o;
    o.sim.ggpso.crossover_rate = 1.5;
    EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  }
}

TEST(RunOptionsValidateTest, RejectsDuplicateMethods) {
  core::RunOptions options;
  options.methods = {core::AssignMethod::kKm, core::AssignMethod::kPpi,
                     core::AssignMethod::kKm};
  Status s = options.Validate();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("KM"), std::string::npos);
}

TEST(ParseRunFlagsTest, HelpIsFailedPreconditionWithHelpText) {
  core::RunOptions options;
  Status s = Parse({"--help"}, &options);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(s.message(), core::RunFlagsHelp());
}

TEST(ParseRunFlagsTest, ParsesEveryFlag) {
  core::RunOptions options;
  ASSERT_TRUE(Parse({"--dataset=gowalla", "--seed=42", "--threads=3",
                     "--horizon=6", "--methods=KM,PPI",
                     "--json-dir=/tmp/out", "--trace=t.json",
                     "--metrics=m.json"},
                    &options)
                  .ok());
  EXPECT_EQ(options.dataset, data::WorkloadKind::kGowallaFoursquare);
  EXPECT_EQ(options.seed, 42u);
  EXPECT_EQ(options.threads, 3);
  EXPECT_EQ(options.sim.prediction_horizon_steps, 6);
  ASSERT_EQ(options.methods.size(), 2u);
  EXPECT_EQ(options.methods[0], core::AssignMethod::kKm);
  EXPECT_EQ(options.methods[1], core::AssignMethod::kPpi);
  EXPECT_EQ(options.sinks.bench_json_dir, "/tmp/out");
  EXPECT_EQ(options.sinks.trace_path, "t.json");
  EXPECT_EQ(options.sinks.metrics_path, "m.json");
}

TEST(ParseRunFlagsTest, ParsesForecastPath) {
  core::RunOptions options;
  ASSERT_TRUE(Parse({"--forecast=scalar"}, &options).ok());
  EXPECT_FALSE(options.sim.use_batched_forecast);
  ASSERT_TRUE(Parse({"--forecast=batched"}, &options).ok());
  EXPECT_TRUE(options.sim.use_batched_forecast);
  Status bad = Parse({"--forecast=vectorized"}, &options);
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.message().find("--forecast"), std::string::npos);
}

TEST(ParseRunFlagsTest, LeavesCallerDefaultsAlone) {
  core::RunOptions options;
  options.seed = 99;
  options.sim.prediction_horizon_steps = 4;
  ASSERT_TRUE(Parse({"--threads=2"}, &options).ok());
  EXPECT_EQ(options.seed, 99u);
  EXPECT_EQ(options.sim.prediction_horizon_steps, 4);
  EXPECT_EQ(options.threads, 2);
}

TEST(ParseRunFlagsTest, RejectsMalformedInput) {
  core::RunOptions options;
  EXPECT_EQ(Parse({"--bogus=1"}, &options).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse({"positional"}, &options).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse({"--seed=abc"}, &options).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse({"--seed=-5"}, &options).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse({"--dataset=mars"}, &options).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse({"--methods=KM,WARP"}, &options).code(),
            StatusCode::kInvalidArgument);
}

TEST(AssignMethodNameTest, RoundTripsThroughParse) {
  for (core::AssignMethod method : core::AllAssignMethods()) {
    const std::string_view name = core::AssignMethodName(method);
    StatusOr<core::AssignMethod> parsed = core::ParseAssignMethod(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(*parsed, method) << name;
  }
}

TEST(AssignMethodNameTest, ParseIsCaseInsensitive) {
  StatusOr<core::AssignMethod> parsed = core::ParseAssignMethod("ppi");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, core::AssignMethod::kPpi);
}

TEST(AssignMethodNameTest, ParseRejectsUnknownListingAccepted) {
  StatusOr<core::AssignMethod> parsed = core::ParseAssignMethod("WARP");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("GGPSO"), std::string::npos);
}

TEST(WorkloadKindNameTest, RoundTripsAndAcceptsLongForms) {
  for (data::WorkloadKind kind : {data::WorkloadKind::kPortoDidi,
                                  data::WorkloadKind::kGowallaFoursquare}) {
    StatusOr<data::WorkloadKind> parsed =
        data::ParseWorkloadKind(data::WorkloadKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  StatusOr<data::WorkloadKind> long_form =
      data::ParseWorkloadKind("gowalla_foursquare");
  ASSERT_TRUE(long_form.ok());
  EXPECT_EQ(*long_form, data::WorkloadKind::kGowallaFoursquare);
  EXPECT_FALSE(data::ParseWorkloadKind("mars").ok());
}

TEST(EffectiveMethodsTest, EmptyMeansAll) {
  core::RunOptions options;
  EXPECT_EQ(core::EffectiveMethods(options), core::AllAssignMethods());
  options.methods = {core::AssignMethod::kUpperBound};
  ASSERT_EQ(core::EffectiveMethods(options).size(), 1u);
  EXPECT_EQ(core::EffectiveMethods(options)[0],
            core::AssignMethod::kUpperBound);
}

}  // namespace
}  // namespace tamp
