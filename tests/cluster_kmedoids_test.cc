#include "cluster/kmedoids.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tamp::cluster {
namespace {

TEST(KMedoidsTest, RecoversTwoSeparatedGroups) {
  // Items 0-4 near each other, 5-9 near each other, far apart across.
  auto dist = [](int i, int j) {
    bool gi = i < 5, gj = j < 5;
    double base = std::fabs((i % 5) - (j % 5)) * 0.1;
    return gi == gj ? base : 10.0 + base;
  };
  tamp::Rng rng(3);
  KMedoidsResult result = KMedoids(10, 2, dist, rng);
  for (int i = 1; i < 5; ++i) {
    EXPECT_EQ(result.assignments[i], result.assignments[0]);
  }
  for (int i = 6; i < 10; ++i) {
    EXPECT_EQ(result.assignments[i], result.assignments[5]);
  }
  EXPECT_NE(result.assignments[0], result.assignments[5]);
}

TEST(KMedoidsTest, MedoidsAreClusterMembers) {
  auto dist = [](int i, int j) { return std::fabs(i - j); };
  tamp::Rng rng(5);
  KMedoidsResult result = KMedoids(12, 3, dist, rng);
  for (size_t c = 0; c < result.medoids.size(); ++c) {
    int medoid = result.medoids[c];
    ASSERT_GE(medoid, 0);
    ASSERT_LT(medoid, 12);
    EXPECT_EQ(result.assignments[medoid], static_cast<int>(c));
  }
}

TEST(KMedoidsTest, KClampedToN) {
  auto dist = [](int i, int j) { return std::fabs(i - j); };
  tamp::Rng rng(7);
  KMedoidsResult result = KMedoids(3, 8, dist, rng);
  EXPECT_LE(result.medoids.size(), 3u);
}

TEST(KMedoidsTest, SingleItem) {
  auto dist = [](int, int) { return 0.0; };
  tamp::Rng rng(9);
  KMedoidsResult result = KMedoids(1, 1, dist, rng);
  EXPECT_EQ(result.assignments[0], 0);
  EXPECT_EQ(result.medoids[0], 0);
}

TEST(KMedoidsTest, TotalCostIsSumOfMemberDistances) {
  auto dist = [](int i, int j) { return std::fabs(i - j); };
  tamp::Rng rng(11);
  KMedoidsResult result = KMedoids(6, 2, dist, rng);
  double expected = 0.0;
  for (int i = 0; i < 6; ++i) {
    expected += dist(i, result.medoids[result.assignments[i]]);
  }
  EXPECT_NEAR(result.total_cost, expected, 1e-9);
}

TEST(KMedoidsTest, DeterministicGivenSeed) {
  auto dist = [](int i, int j) { return std::fabs(i * i - j * j) * 0.01; };
  tamp::Rng a(21), b(21);
  KMedoidsResult ra = KMedoids(15, 3, dist, a);
  KMedoidsResult rb = KMedoids(15, 3, dist, b);
  EXPECT_EQ(ra.assignments, rb.assignments);
  EXPECT_EQ(ra.medoids, rb.medoids);
}

}  // namespace
}  // namespace tamp::cluster
