#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace tamp {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, Uniform01StaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.Uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, Uniform01MeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversFullRangeInclusive) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(2, 6);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntSingleValue) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(9, 9), 9);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(2.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, PoissonMeanMatchesLambda) {
  Rng rng(17);
  for (double lambda : {0.5, 4.0, 20.0, 100.0}) {
    const int n = 20000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += rng.Poisson(lambda);
    EXPECT_NEAR(sum / n, lambda, 0.05 * lambda + 0.05) << "lambda=" << lambda;
  }
}

TEST(RngTest, PoissonZeroLambdaIsZero) {
  Rng rng(19);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-1.0), 0);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(23);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(29);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SampleIndexFollowsWeights) {
  Rng rng(31);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.SampleIndex(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.015);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.015);
}

TEST(RngTest, SampleIndexAllZeroWeightsIsUniform) {
  Rng rng(37);
  std::vector<double> weights = {0.0, 0.0, 0.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 9000; ++i) ++counts[rng.SampleIndex(weights)];
  for (int c : counts) EXPECT_GT(c, 2000);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(41);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(43);
  std::vector<int> empty;
  rng.Shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {5};
  rng.Shuffle(one);
  EXPECT_EQ(one[0], 5);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(47);
  for (int trial = 0; trial < 50; ++trial) {
    auto sample = rng.SampleWithoutReplacement(20, 7);
    ASSERT_EQ(sample.size(), 7u);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 7u);
    for (size_t s : sample) EXPECT_LT(s, 20u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(53);
  auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

/// Property sweep: every seed yields in-range uniform values and distinct
/// sampled indices.
class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, BasicInvariantsHoldForSeed) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    double u = rng.Uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
  auto s = rng.SampleWithoutReplacement(64, 16);
  std::set<size_t> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 16u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 1234567ULL,
                                           0xFFFFFFFFFFFFFFFFULL));

}  // namespace
}  // namespace tamp
