#include "nn/gru_cell.h"

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/optimizer.h"

namespace tamp::nn {
namespace {

std::vector<double> NumericalGradient(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> params, double h = 1e-6) {
  std::vector<double> grad(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    double orig = params[i];
    params[i] = orig + h;
    double plus = f(params);
    params[i] = orig - h;
    double minus = f(params);
    params[i] = orig;
    grad[i] = (plus - minus) / (2.0 * h);
  }
  return grad;
}

double MaxRelError(const std::vector<double>& a,
                   const std::vector<double>& b) {
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double denom = std::max({std::fabs(a[i]), std::fabs(b[i]), 1e-4});
    worst = std::max(worst, std::fabs(a[i] - b[i]) / denom);
  }
  return worst;
}

TEST(GruCellTest, ParamCountMatchesLayout) {
  GruCell cell(2, 5, 0);
  // W [15x2] + U [15x5] + b [15].
  EXPECT_EQ(cell.param_count(), 15u * 2 + 15u * 5 + 15u);
}

TEST(GruCellTest, ForwardIsDeterministicAndBounded) {
  tamp::Rng rng(3);
  GruCell cell(2, 4, 0);
  std::vector<double> params(cell.param_count());
  cell.InitParams(rng, params);
  std::vector<double> x = {0.4, -0.2};
  std::vector<double> h(4, 0.0);
  GruStepCache cache;
  cell.Forward(params, x.data(), h, cache);
  for (double v : h) {
    // h is a convex combination of tanh candidates and the zero state.
    EXPECT_GT(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
  std::vector<double> h2(4, 0.0);
  GruStepCache cache2;
  cell.Forward(params, x.data(), h2, cache2);
  EXPECT_EQ(h, h2);
}

TEST(GruCellTest, GradientMatchesFiniteDifferencesOverTwoSteps) {
  tamp::Rng rng(5);
  const int input_dim = 2, hidden = 3;
  GruCell cell(input_dim, hidden, 0);
  std::vector<double> params(cell.param_count());
  cell.InitParams(rng, params);
  std::vector<std::vector<double>> xs = {{0.3, -0.7}, {0.9, 0.1}};

  auto loss_fn = [&](const std::vector<double>& p) {
    std::vector<double> h(hidden, 0.0);
    GruStepCache cache;
    for (const auto& x : xs) cell.Forward(p, x.data(), h, cache);
    double loss = 0.0;
    for (double v : h) loss += v * v;
    return loss;
  };

  std::vector<double> h(hidden, 0.0);
  std::vector<GruStepCache> caches(xs.size());
  for (size_t t = 0; t < xs.size(); ++t) {
    cell.Forward(params, xs[t].data(), h, caches[t]);
  }
  std::vector<double> dh(hidden);
  for (int k = 0; k < hidden; ++k) dh[k] = 2.0 * h[k];
  std::vector<double> grad(params.size(), 0.0);
  for (int t = static_cast<int>(xs.size()) - 1; t >= 0; --t) {
    cell.Backward(params, caches[t], dh, grad, nullptr);
  }
  std::vector<double> numeric = NumericalGradient(loss_fn, params);
  EXPECT_LT(MaxRelError(grad, numeric), 1e-4);
}

TEST(GruCellTest, InputGradientMatchesFiniteDifferences) {
  tamp::Rng rng(7);
  GruCell cell(3, 4, 0);
  std::vector<double> params(cell.param_count());
  cell.InitParams(rng, params);
  std::vector<double> x = {0.2, -0.5, 0.8};

  auto loss_of_x = [&](const std::vector<double>& xin) {
    std::vector<double> h(4, 0.0);
    GruStepCache cache;
    cell.Forward(params, xin.data(), h, cache);
    double loss = 0.0;
    for (double v : h) loss += v * v;
    return loss;
  };
  std::vector<double> h(4, 0.0);
  GruStepCache cache;
  cell.Forward(params, x.data(), h, cache);
  std::vector<double> dh(4);
  for (int k = 0; k < 4; ++k) dh[k] = 2.0 * h[k];
  std::vector<double> grad(params.size(), 0.0);
  std::vector<double> dx(3);
  cell.Backward(params, cache, dh, grad, dx.data());
  std::vector<double> numeric = NumericalGradient(loss_of_x, x);
  EXPECT_LT(MaxRelError(dx, numeric), 1e-4);
}

TEST(GruCellTest, LearnsASimpleRecurrentTask) {
  // Predict the running mean of a 1-D input stream: GRU + linear head
  // trained with SGD must beat the untrained loss by a wide margin.
  tamp::Rng rng(11);
  const int hidden = 6;
  GruCell cell(1, hidden, 0);
  Linear head(hidden, 1, cell.param_count());
  std::vector<double> params(cell.param_count() + head.param_count());
  cell.InitParams(rng, params);
  head.InitParams(rng, params);

  auto run_episode = [&](std::vector<double>& grad_out, bool train,
                         tamp::Rng& data_rng) {
    std::vector<double> xs(6);
    double mean = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
      xs[i] = data_rng.Uniform(-1.0, 1.0);
      mean += xs[i];
    }
    mean /= xs.size();
    std::vector<double> h(hidden, 0.0);
    std::vector<GruStepCache> caches(xs.size());
    for (size_t t = 0; t < xs.size(); ++t) {
      cell.Forward(params, &xs[t], h, caches[t]);
    }
    std::vector<double> y;
    head.Forward(params, h.data(), y);
    double err = y[0] - mean;
    if (train) {
      std::fill(grad_out.begin(), grad_out.end(), 0.0);
      std::vector<double> dy = {2.0 * err};
      std::vector<double> dh(hidden);
      head.Backward(params, h.data(), dy.data(), grad_out, dh.data());
      for (int t = static_cast<int>(xs.size()) - 1; t >= 0; --t) {
        cell.Backward(params, caches[t], dh, grad_out, nullptr);
      }
      ClipGradientNorm(grad_out, 5.0);
      Sgd(0.05).Step(params, grad_out);
    }
    return err * err;
  };

  std::vector<double> grad(params.size());
  tamp::Rng eval_rng(100);
  double before = 0.0;
  for (int i = 0; i < 50; ++i) before += run_episode(grad, false, eval_rng);
  tamp::Rng train_rng(200);
  for (int i = 0; i < 1500; ++i) run_episode(grad, true, train_rng);
  tamp::Rng eval_rng2(100);
  double after = 0.0;
  for (int i = 0; i < 50; ++i) after += run_episode(grad, false, eval_rng2);
  EXPECT_LT(after, before * 0.3) << "before " << before << " after " << after;
}

}  // namespace
}  // namespace tamp::nn
