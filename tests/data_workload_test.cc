#include "data/workload.h"

#include <gtest/gtest.h>

namespace tamp::data {
namespace {

WorkloadConfig SmallConfig() {
  WorkloadConfig config;
  config.num_workers = 10;
  config.num_train_days = 3;
  config.num_test_days = 1;
  config.num_tasks = 100;
  config.num_historical_tasks = 200;
  config.seq_in = 5;
  config.seq_out = 2;
  config.seed = 21;
  return config;
}

TEST(ExtractSamplesTest, ShapesAndNormalization) {
  geo::GridSpec grid(20.0, 10.0, 50, 100);
  geo::Trajectory traj;
  for (int i = 0; i < 10; ++i) {
    traj.Append({1.0 * i, 0.5 * i, 10.0 * i});
  }
  auto samples = ExtractSamples(traj, 3, 2, grid);
  // Windows: 10 - (3+2) + 1 = 6.
  ASSERT_EQ(samples.size(), 6u);
  for (const auto& s : samples) {
    ASSERT_EQ(s.input.size(), 3u);
    ASSERT_EQ(s.target.size(), 2u);
    ASSERT_EQ(s.target_km.size(), 2u);
    for (const auto& step : s.input) {
      // (x, y, time-of-day), all normalized.
      ASSERT_EQ(static_cast<int>(step.size()), kSampleInputDim);
      for (double v : step) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
      }
    }
  }
  // Time-of-day increases along the input window.
  EXPECT_GT(samples[0].input[1][2], samples[0].input[0][2]);
  // First sample: input = points 0..2, target = points 3..4.
  EXPECT_NEAR(samples[0].target_km[0].x, 3.0, 1e-12);
  EXPECT_NEAR(samples[0].target_km[1].x, 4.0, 1e-12);
}

TEST(ExtractSamplesTest, TooShortTrajectoryYieldsNothing) {
  geo::GridSpec grid(10, 10, 10, 10);
  geo::Trajectory traj({{0, 0, 0}, {1, 1, 10}});
  EXPECT_TRUE(ExtractSamples(traj, 3, 2, grid).empty());
}

TEST(ExtractSamplesTest, WindowsNeverSpanDays) {
  geo::GridSpec grid(10, 10, 10, 10);
  geo::Trajectory traj;
  // Day 0: 4 points; day 1: 4 points. seq_in=3, seq_out=1 -> windows of 4.
  for (int i = 0; i < 4; ++i) traj.Append({1.0 * i, 0.0, 1000.0 + i * 10});
  for (int i = 0; i < 4; ++i) traj.Append({1.0 * i, 5.0, 2440.0 + i * 10});
  auto samples = ExtractSamples(traj, 3, 1, grid);
  // One full window per day, none across the boundary.
  EXPECT_EQ(samples.size(), 2u);
}

TEST(GenerateWorkloadTest, ShapesAreConsistent) {
  Workload w = GenerateWorkload(SmallConfig());
  EXPECT_EQ(w.workers.size(), 10u);
  EXPECT_EQ(w.learning_tasks.size(), 10u);
  EXPECT_EQ(w.task_stream.size(), 100u);
  EXPECT_EQ(w.historical_task_locations.size(), 200u);
  EXPECT_FALSE(w.hotspots.empty());
  for (size_t i = 0; i < w.workers.size(); ++i) {
    EXPECT_EQ(w.workers[i].id, static_cast<int>(i));
    EXPECT_EQ(w.learning_tasks[i].worker_id, static_cast<int>(i));
    EXPECT_FALSE(w.learning_tasks[i].support.empty());
    EXPECT_FALSE(w.learning_tasks[i].query.empty());
    EXPECT_FALSE(w.learning_tasks[i].eval.empty());
    EXPECT_FALSE(w.learning_tasks[i].pois.empty());
    EXPECT_FALSE(w.learning_tasks[i].location_cloud.empty());
  }
}

TEST(GenerateWorkloadTest, SampleShapesFollowConfig) {
  WorkloadConfig config = SmallConfig();
  config.seq_in = 4;
  config.seq_out = 3;
  Workload w = GenerateWorkload(config);
  const auto& sample = w.learning_tasks[0].support[0];
  EXPECT_EQ(sample.input.size(), 4u);
  EXPECT_EQ(sample.target.size(), 3u);
  EXPECT_EQ(sample.target_km.size(), 3u);
}

TEST(GenerateWorkloadTest, DeterministicForSeed) {
  Workload a = GenerateWorkload(SmallConfig());
  Workload b = GenerateWorkload(SmallConfig());
  ASSERT_EQ(a.task_stream.size(), b.task_stream.size());
  for (size_t i = 0; i < a.task_stream.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.task_stream[i].location.x, b.task_stream[i].location.x);
    EXPECT_DOUBLE_EQ(a.task_stream[i].release_time_min,
                     b.task_stream[i].release_time_min);
  }
  EXPECT_DOUBLE_EQ(a.workers[3].train[5].loc.x, b.workers[3].train[5].loc.x);
}

TEST(GenerateWorkloadTest, TestStreamLiesInTestHorizon) {
  WorkloadConfig config = SmallConfig();
  Workload w = GenerateWorkload(config);
  double test_day_start = 1440.0 * config.num_train_days;
  for (const auto& task : w.task_stream) {
    EXPECT_GE(task.release_time_min, test_day_start);
    EXPECT_GT(task.deadline_min, task.release_time_min);
  }
  for (const auto& worker : w.workers) {
    EXPECT_GE(worker.test.start_time(), test_day_start);
    EXPECT_LT(worker.train.end_time(), test_day_start);
  }
}

TEST(GenerateWorkloadTest, NewcomersHaveLessHistory) {
  WorkloadConfig config = SmallConfig();
  config.newcomer_fraction = 0.3;
  Workload w = GenerateWorkload(config);
  int newcomers = 0;
  for (const auto& worker : w.workers) {
    if (worker.is_newcomer) {
      ++newcomers;
      EXPECT_LT(worker.train.size(), w.workers.back().train.size());
    }
  }
  EXPECT_EQ(newcomers, 3);
}

TEST(GenerateWorkloadTest, GowallaWorkloadUsesItsOwnGrid) {
  WorkloadConfig config = SmallConfig();
  config.kind = WorkloadKind::kGowallaFoursquare;
  Workload w = GenerateWorkload(config);
  EXPECT_DOUBLE_EQ(w.grid.width_km(), 36.0);
  EXPECT_DOUBLE_EQ(w.grid.height_km(), 36.0);
  EXPECT_EQ(w.learning_tasks.size(), 10u);
}

TEST(GenerateWorkloadTest, GowallaTasksAlignWithWorkerDistributions) {
  // Appendix C: workload 2's task and worker distributions are more
  // similar. Measure: mean distance from task locations to the nearest
  // zone hotspot should be small for both workloads, but the *worker*
  // location clouds should be much closer to task hotspots in workload 2.
  WorkloadConfig config = SmallConfig();
  config.num_workers = 20;
  Workload porto = GenerateWorkload(config);
  config.kind = WorkloadKind::kGowallaFoursquare;
  Workload gowalla = GenerateWorkload(config);

  auto mean_dist_to_hotspots = [](const Workload& w) {
    double total = 0.0;
    int count = 0;
    for (const auto& task : w.learning_tasks) {
      for (const auto& p : task.location_cloud) {
        double best = 1e9;
        for (const auto& h : w.hotspots) {
          best = std::min(best, geo::Distance(p, h.center));
        }
        total += best;
        ++count;
      }
    }
    return total / count;
  };
  double porto_scaled =
      mean_dist_to_hotspots(porto) / porto.grid.width_km();
  double gowalla_scaled =
      mean_dist_to_hotspots(gowalla) / gowalla.grid.width_km();
  EXPECT_LT(gowalla_scaled, porto_scaled);
}

}  // namespace
}  // namespace tamp::data
