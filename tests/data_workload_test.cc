#include "data/workload.h"

#include <gtest/gtest.h>

namespace tamp::data {
namespace {

WorkloadConfig SmallConfig() {
  WorkloadConfig config;
  config.num_workers = 10;
  config.num_train_days = 3;
  config.num_test_days = 1;
  config.num_tasks = 100;
  config.num_historical_tasks = 200;
  config.seq_in = 5;
  config.seq_out = 2;
  config.seed = 21;
  return config;
}

TEST(ExtractSamplesTest, ShapesAndNormalization) {
  geo::GridSpec grid(20.0, 10.0, 50, 100);
  geo::Trajectory traj;
  for (int i = 0; i < 10; ++i) {
    traj.Append({1.0 * i, 0.5 * i, 10.0 * i});
  }
  auto samples = ExtractSamples(traj, 3, 2, grid);
  // Windows: 10 - (3+2) + 1 = 6.
  ASSERT_EQ(samples.size(), 6u);
  for (const auto& s : samples) {
    ASSERT_EQ(s.input.size(), 3u);
    ASSERT_EQ(s.target.size(), 2u);
    ASSERT_EQ(s.target_km.size(), 2u);
    for (const auto& step : s.input) {
      // (x, y, time-of-day), all normalized.
      ASSERT_EQ(static_cast<int>(step.size()), kSampleInputDim);
      for (double v : step) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
      }
    }
  }
  // Time-of-day increases along the input window.
  EXPECT_GT(samples[0].input[1][2], samples[0].input[0][2]);
  // First sample: input = points 0..2, target = points 3..4.
  EXPECT_NEAR(samples[0].target_km[0].x, 3.0, 1e-12);
  EXPECT_NEAR(samples[0].target_km[1].x, 4.0, 1e-12);
}

TEST(ExtractSamplesTest, TooShortTrajectoryYieldsNothing) {
  geo::GridSpec grid(10, 10, 10, 10);
  geo::Trajectory traj({{0, 0, 0}, {1, 1, 10}});
  EXPECT_TRUE(ExtractSamples(traj, 3, 2, grid).empty());
}

TEST(ExtractSamplesTest, WindowsNeverSpanDays) {
  geo::GridSpec grid(10, 10, 10, 10);
  geo::Trajectory traj;
  // Day 0: 4 points; day 1: 4 points. seq_in=3, seq_out=1 -> windows of 4.
  for (int i = 0; i < 4; ++i) traj.Append({1.0 * i, 0.0, 1000.0 + i * 10});
  for (int i = 0; i < 4; ++i) traj.Append({1.0 * i, 5.0, 2440.0 + i * 10});
  auto samples = ExtractSamples(traj, 3, 1, grid);
  // One full window per day, none across the boundary.
  EXPECT_EQ(samples.size(), 2u);
}

TEST(GenerateWorkloadTest, ShapesAreConsistent) {
  Workload w = GenerateWorkload(SmallConfig());
  EXPECT_EQ(w.workers.size(), 10u);
  EXPECT_EQ(w.learning_tasks.size(), 10u);
  EXPECT_EQ(w.task_stream.size(), 100u);
  EXPECT_EQ(w.historical_task_locations.size(), 200u);
  EXPECT_FALSE(w.hotspots.empty());
  for (size_t i = 0; i < w.workers.size(); ++i) {
    EXPECT_EQ(w.workers[i].id, static_cast<int>(i));
    EXPECT_EQ(w.learning_tasks[i].worker_id, static_cast<int>(i));
    EXPECT_FALSE(w.learning_tasks[i].support.empty());
    EXPECT_FALSE(w.learning_tasks[i].query.empty());
    EXPECT_FALSE(w.learning_tasks[i].eval.empty());
    EXPECT_FALSE(w.learning_tasks[i].pois.empty());
    EXPECT_FALSE(w.learning_tasks[i].location_cloud.empty());
  }
}

TEST(GenerateWorkloadTest, SampleShapesFollowConfig) {
  WorkloadConfig config = SmallConfig();
  config.seq_in = 4;
  config.seq_out = 3;
  Workload w = GenerateWorkload(config);
  const auto& sample = w.learning_tasks[0].support[0];
  EXPECT_EQ(sample.input.size(), 4u);
  EXPECT_EQ(sample.target.size(), 3u);
  EXPECT_EQ(sample.target_km.size(), 3u);
}

TEST(GenerateWorkloadTest, DeterministicForSeed) {
  Workload a = GenerateWorkload(SmallConfig());
  Workload b = GenerateWorkload(SmallConfig());
  ASSERT_EQ(a.task_stream.size(), b.task_stream.size());
  for (size_t i = 0; i < a.task_stream.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.task_stream[i].location.x, b.task_stream[i].location.x);
    EXPECT_DOUBLE_EQ(a.task_stream[i].release_time_min,
                     b.task_stream[i].release_time_min);
  }
  EXPECT_DOUBLE_EQ(a.workers[3].train[5].loc.x, b.workers[3].train[5].loc.x);
}

TEST(GenerateWorkloadTest, TestStreamLiesInTestHorizon) {
  WorkloadConfig config = SmallConfig();
  Workload w = GenerateWorkload(config);
  double test_day_start = 1440.0 * config.num_train_days;
  for (const auto& task : w.task_stream) {
    EXPECT_GE(task.release_time_min, test_day_start);
    EXPECT_GT(task.deadline_min, task.release_time_min);
  }
  for (const auto& worker : w.workers) {
    EXPECT_GE(worker.test.start_time(), test_day_start);
    EXPECT_LT(worker.train.end_time(), test_day_start);
  }
}

TEST(GenerateWorkloadTest, NewcomersHaveLessHistory) {
  WorkloadConfig config = SmallConfig();
  config.newcomer_fraction = 0.3;
  Workload w = GenerateWorkload(config);
  int newcomers = 0;
  for (const auto& worker : w.workers) {
    if (worker.is_newcomer) {
      ++newcomers;
      EXPECT_LT(worker.train.size(), w.workers.back().train.size());
    }
  }
  EXPECT_EQ(newcomers, 3);
}

TEST(GenerateWorkloadTest, GowallaWorkloadUsesItsOwnGrid) {
  WorkloadConfig config = SmallConfig();
  config.kind = WorkloadKind::kGowallaFoursquare;
  Workload w = GenerateWorkload(config);
  EXPECT_DOUBLE_EQ(w.grid.width_km(), 36.0);
  EXPECT_DOUBLE_EQ(w.grid.height_km(), 36.0);
  EXPECT_EQ(w.learning_tasks.size(), 10u);
}

TEST(GenerateWorkloadTest, GowallaTasksAlignWithWorkerDistributions) {
  // Appendix C: workload 2's task and worker distributions are more
  // similar. Measure: mean distance from task locations to the nearest
  // zone hotspot should be small for both workloads, but the *worker*
  // location clouds should be much closer to task hotspots in workload 2.
  WorkloadConfig config = SmallConfig();
  config.num_workers = 20;
  Workload porto = GenerateWorkload(config);
  config.kind = WorkloadKind::kGowallaFoursquare;
  Workload gowalla = GenerateWorkload(config);

  auto mean_dist_to_hotspots = [](const Workload& w) {
    double total = 0.0;
    int count = 0;
    for (const auto& task : w.learning_tasks) {
      for (const auto& p : task.location_cloud) {
        double best = 1e9;
        for (const auto& h : w.hotspots) {
          best = std::min(best, geo::Distance(p, h.center));
        }
        total += best;
        ++count;
      }
    }
    return total / count;
  };
  double porto_scaled =
      mean_dist_to_hotspots(porto) / porto.grid.width_km();
  double gowalla_scaled =
      mean_dist_to_hotspots(gowalla) / gowalla.grid.width_km();
  EXPECT_LT(gowalla_scaled, porto_scaled);
}

TEST(WorkloadScenarioTest, BaselineIsUnperturbedAndFullyAvailable) {
  // The scenario axis must not disturb the paper's baseline: explicit
  // kBaseline generates the bit-identical stream (the generator consumes
  // exactly the RNG draws it always did), one availability session
  // spanning the online envelope, and a zero dropout model.
  WorkloadConfig config = SmallConfig();
  Workload implicit = GenerateWorkload(config);
  config.scenario = WorkloadScenario::kBaseline;
  Workload w = GenerateWorkload(config);
  EXPECT_EQ(w.scenario, WorkloadScenario::kBaseline);
  EXPECT_EQ(w.dropout.prob, 0.0);
  ASSERT_EQ(w.task_stream.size(), implicit.task_stream.size());
  for (size_t i = 0; i < w.task_stream.size(); ++i) {
    EXPECT_EQ(w.task_stream[i].release_time_min,
              implicit.task_stream[i].release_time_min);
    EXPECT_EQ(w.task_stream[i].location.x, implicit.task_stream[i].location.x);
  }
  for (const WorkerRecord& worker : w.workers) {
    ASSERT_EQ(worker.availability.size(), 1u);
    EXPECT_EQ(worker.availability[0].start_min, worker.online_start_min);
    EXPECT_EQ(worker.availability[0].end_min, worker.online_end_min);
  }
}

TEST(WorkloadScenarioTest, ChurnSplitsTheWindowIntoDisjointSessions) {
  WorkloadConfig config = SmallConfig();
  config.scenario = WorkloadScenario::kChurn;
  config.churn.sessions = 4;
  config.churn.dropout_prob = 0.25;
  Workload w = GenerateWorkload(config);
  EXPECT_EQ(w.scenario, WorkloadScenario::kChurn);
  EXPECT_EQ(w.dropout.prob, 0.25);
  for (const WorkerRecord& worker : w.workers) {
    ASSERT_EQ(worker.availability.size(), 4u);
    for (size_t s = 0; s < worker.availability.size(); ++s) {
      const AvailabilitySession& session = worker.availability[s];
      EXPECT_LT(session.start_min, session.end_min);
      EXPECT_GE(session.start_min, worker.test.start_time());
      EXPECT_LE(session.end_min, worker.test.end_time() + 1e-9);
      if (s > 0) {
        EXPECT_GE(session.start_min, worker.availability[s - 1].end_min);
      }
    }
    // The envelope tracks the session extremes.
    EXPECT_EQ(worker.online_start_min, worker.availability.front().start_min);
    EXPECT_EQ(worker.online_end_min, worker.availability.back().end_min);
  }
  // The stream itself is the baseline's (churn only touches workers).
  Workload baseline = GenerateWorkload(SmallConfig());
  ASSERT_EQ(w.task_stream.size(), baseline.task_stream.size());
  EXPECT_EQ(w.task_stream.back().release_time_min,
            baseline.task_stream.back().release_time_min);
}

TEST(WorkloadScenarioTest, SurgeAddsABurstAroundOneHotspot) {
  WorkloadConfig config = SmallConfig();
  config.scenario = WorkloadScenario::kSurge;
  config.surge.extra_task_factor = 0.5;
  Workload w = GenerateWorkload(config);
  Workload baseline = GenerateWorkload(SmallConfig());
  // 100 baseline + 50 surge tasks, re-id'd 0..n-1, sorted by release.
  ASSERT_EQ(w.task_stream.size(), 150u);
  for (size_t i = 0; i < w.task_stream.size(); ++i) {
    EXPECT_EQ(w.task_stream[i].id, static_cast<int>(i));
    if (i > 0) {
      EXPECT_GE(w.task_stream[i].release_time_min,
                w.task_stream[i - 1].release_time_min);
    }
  }
  // Workers are untouched by a demand surge.
  ASSERT_EQ(w.workers.size(), baseline.workers.size());
  for (size_t i = 0; i < w.workers.size(); ++i) {
    EXPECT_EQ(w.workers[i].online_start_min,
              baseline.workers[i].online_start_min);
    EXPECT_EQ(w.workers[i].test.start_time(),
              baseline.workers[i].test.start_time());
  }
  EXPECT_EQ(w.dropout.prob, 0.0);
}

TEST(WorkloadSpecTest, NamesRoundTripAndListAllCombinations) {
  const std::vector<WorkloadSpec>& specs = AllWorkloadSpecs();
  EXPECT_EQ(specs.size(),
            AllWorkloadKinds().size() * AllWorkloadScenarios().size());
  for (const WorkloadSpec& spec : specs) {
    StatusOr<WorkloadSpec> parsed = ParseWorkloadSpec(WorkloadSpecName(spec));
    ASSERT_TRUE(parsed.ok()) << WorkloadSpecName(spec);
    EXPECT_EQ(*parsed, spec);
  }
  // Bare dataset names and long dataset forms mean the baseline scenario.
  StatusOr<WorkloadSpec> bare = ParseWorkloadSpec("porto");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->scenario, WorkloadScenario::kBaseline);
  StatusOr<WorkloadSpec> long_form = ParseWorkloadSpec("gowalla_foursquare");
  ASSERT_TRUE(long_form.ok());
  EXPECT_EQ(long_form->kind, WorkloadKind::kGowallaFoursquare);
  EXPECT_FALSE(ParseWorkloadSpec("porto_monsoon").ok());
  EXPECT_FALSE(ParseWorkloadSpec("").ok());
}

TEST(AvailabilityTest, AvailableAtHonorsSessionsWithEnvelopeFallback) {
  WorkerRecord record;
  record.online_start_min = 10.0;
  record.online_end_min = 20.0;
  // Empty sessions: the envelope decides (hand-built workloads).
  EXPECT_TRUE(record.AvailableAt(10.0));
  EXPECT_TRUE(record.AvailableAt(20.0));  // Closed on both ends.
  EXPECT_FALSE(record.AvailableAt(20.5));
  record.availability = {{10.0, 12.0}, {18.0, 20.0}};
  EXPECT_TRUE(record.AvailableAt(12.0));
  EXPECT_FALSE(record.AvailableAt(15.0));  // In the envelope, not a session.
  EXPECT_TRUE(record.AvailableAt(18.0));
}

}  // namespace
}  // namespace tamp::data
