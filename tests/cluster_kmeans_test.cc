#include "cluster/kmeans.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tamp::cluster {
namespace {

/// Three well-separated blobs in 2-D.
std::vector<std::vector<double>> MakeBlobs(tamp::Rng& rng, int per_blob) {
  std::vector<std::vector<double>> points;
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  for (int b = 0; b < 3; ++b) {
    for (int i = 0; i < per_blob; ++i) {
      points.push_back({centers[b][0] + rng.Normal(0.0, 0.4),
                        centers[b][1] + rng.Normal(0.0, 0.4)});
    }
  }
  return points;
}

TEST(KMeansTest, RecoversSeparatedBlobs) {
  tamp::Rng rng(5);
  auto points = MakeBlobs(rng, 20);
  KMeansResult result = KMeans(points, 3, rng);
  // All points of a blob share a cluster id, and the three ids differ.
  std::set<int> ids;
  for (int b = 0; b < 3; ++b) {
    int first = result.assignments[b * 20];
    ids.insert(first);
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(result.assignments[b * 20 + i], first) << "blob " << b;
    }
  }
  EXPECT_EQ(ids.size(), 3u);
}

TEST(KMeansTest, ClampsKToPointCount) {
  tamp::Rng rng(7);
  std::vector<std::vector<double>> points = {{0.0}, {1.0}};
  KMeansResult result = KMeans(points, 10, rng);
  EXPECT_LE(result.centroids.size(), 2u);
}

TEST(KMeansTest, SingleClusterCentroidIsMean) {
  tamp::Rng rng(9);
  std::vector<std::vector<double>> points = {{0.0, 0.0}, {2.0, 4.0}};
  KMeansResult result = KMeans(points, 1, rng);
  ASSERT_EQ(result.centroids.size(), 1u);
  EXPECT_NEAR(result.centroids[0][0], 1.0, 1e-9);
  EXPECT_NEAR(result.centroids[0][1], 2.0, 1e-9);
}

TEST(KMeansTest, InertiaDecreasesVsRandomAssignment) {
  tamp::Rng rng(11);
  auto points = MakeBlobs(rng, 15);
  KMeansResult result = KMeans(points, 3, rng);
  // Within-blob noise is 0.4 sigma; inertia per point should be ~2*0.16.
  EXPECT_LT(result.inertia / points.size(), 1.0);
}

TEST(SoftKMeansTest, ResponsibilitiesAreDistributions) {
  tamp::Rng rng(13);
  auto points = MakeBlobs(rng, 10);
  SoftKMeansResult result = SoftKMeans(points, 3, 2.0, rng);
  for (const auto& resp : result.responsibilities) {
    double sum = 0.0;
    for (double r : resp) {
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, 1.0);
      sum += r;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(SoftKMeansTest, HighStiffnessApproachesHardAssignment) {
  tamp::Rng rng(17);
  auto points = MakeBlobs(rng, 10);
  SoftKMeansResult result = SoftKMeans(points, 3, 50.0, rng);
  for (const auto& resp : result.responsibilities) {
    double max_r = 0.0;
    for (double r : resp) max_r = std::max(max_r, r);
    EXPECT_GT(max_r, 0.99);
  }
}

TEST(SoftKMeansTest, SeparatedBlobsGetDistinctArgmaxClusters) {
  tamp::Rng rng(19);
  auto points = MakeBlobs(rng, 12);
  SoftKMeansResult result = SoftKMeans(points, 3, 5.0, rng);
  auto argmax = [&](int p) {
    const auto& r = result.responsibilities[p];
    return static_cast<int>(std::max_element(r.begin(), r.end()) - r.begin());
  };
  std::set<int> ids;
  for (int b = 0; b < 3; ++b) {
    int first = argmax(b * 12);
    ids.insert(first);
    for (int i = 1; i < 12; ++i) EXPECT_EQ(argmax(b * 12 + i), first);
  }
  EXPECT_EQ(ids.size(), 3u);
}

}  // namespace
}  // namespace tamp::cluster
