#include "assign/candidate_index.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "assign/candidates.h"
#include "assign/ggpso.h"
#include "assign/km_assigner.h"
#include "assign/ppi.h"
#include "common/obs/metrics.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "data/workload.h"

namespace tamp::assign {
namespace {

SpatialTask MakeTask(int id, geo::Point loc, double deadline) {
  SpatialTask t;
  t.id = id;
  t.location = loc;
  t.deadline_min = deadline;
  return t;
}

CandidateWorker MakeWorker(int id, std::vector<geo::TimedPoint> predicted,
                           geo::Point current, double detour_km, double speed,
                           double mr) {
  CandidateWorker w;
  w.id = id;
  w.predicted = std::move(predicted);
  w.current_location = current;
  w.detour_budget_km = detour_km;
  w.speed_kmpm = speed;
  w.matching_rate = mr;
  return w;
}

/// Random heterogeneous batch: varied budgets, speeds, deadlines, and a
/// fraction of workers with no predicted points at all.
void RandomBatch(tamp::Rng& rng, int num_tasks, int num_workers,
                 std::vector<SpatialTask>* tasks,
                 std::vector<CandidateWorker>* workers) {
  tasks->clear();
  workers->clear();
  for (int i = 0; i < num_tasks; ++i) {
    tasks->push_back(MakeTask(i, {rng.Uniform(0, 25), rng.Uniform(0, 12)},
                              rng.Uniform(-5.0, 60.0)));
  }
  for (int i = 0; i < num_workers; ++i) {
    std::vector<geo::TimedPoint> pred;
    const int steps = static_cast<int>(rng.UniformInt(0, 5));
    for (int p = 0; p < steps; ++p) {
      pred.push_back(
          {{rng.Uniform(0, 25), rng.Uniform(0, 12)}, 10.0 * (p + 1)});
    }
    workers->push_back(MakeWorker(
        i, std::move(pred), {rng.Uniform(0, 25), rng.Uniform(0, 12)},
        rng.Uniform(0.5, 6.0), rng.Uniform(0.1, 1.0), rng.Uniform01()));
  }
}

TEST(CandidateIndexTest, QueryIsSupersetOfAcceptingWorkers) {
  // The contract everything rests on: any worker whose EvaluateCandidate
  // outcome matters (non-empty B or stage-3 feasible) must be returned by
  // the pruning query for that task.
  tamp::Rng rng(91);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<SpatialTask> tasks;
    std::vector<CandidateWorker> workers;
    RandomBatch(rng, 30, 40, &tasks, &workers);
    const double a = rng.Uniform(0.0, 1.0);
    const double now = rng.Uniform(0.0, 10.0);
    CandidateIndex index(workers);
    std::vector<int> hits;
    for (const SpatialTask& task : tasks) {
      index.QueryWorkers(task.location, index.PruneRadius(task, a, now),
                         hits);
      for (size_t w = 0; w < workers.size(); ++w) {
        CandidateInfo info = EvaluateCandidate(task, workers[w], a, now);
        if (info.b_distances.empty() && !info.stage3_feasible) continue;
        EXPECT_TRUE(std::binary_search(hits.begin(), hits.end(),
                                       static_cast<int>(w)))
            << "trial=" << trial << " task=" << task.id << " worker=" << w;
      }
    }
  }
}

TEST(CandidateIndexTest, GenerateCandidatesDenseIndexedParity) {
  tamp::Rng rng(17);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<SpatialTask> tasks;
    std::vector<CandidateWorker> workers;
    RandomBatch(rng, 25, 35, &tasks, &workers);
    const double a = rng.Uniform(0.0, 1.0);
    const double now = rng.Uniform(0.0, 10.0);
    CandidateIndex index(workers);
    CandidateGenStats dense_stats, indexed_stats;
    auto dense = GenerateCandidates(tasks, workers, a, now, nullptr,
                                    &dense_stats);
    auto indexed = GenerateCandidates(tasks, workers, a, now, &index,
                                      &indexed_stats);
    ASSERT_EQ(dense.size(), indexed.size());
    for (size_t t = 0; t < dense.size(); ++t) {
      ASSERT_EQ(dense[t].size(), indexed[t].size()) << "task " << t;
      for (size_t k = 0; k < dense[t].size(); ++k) {
        EXPECT_EQ(dense[t][k].worker, indexed[t][k].worker);
        EXPECT_EQ(dense[t][k].b_count, indexed[t][k].b_count);
        EXPECT_EQ(dense[t][k].min_b, indexed[t][k].min_b);
        EXPECT_EQ(dense[t][k].min_dis, indexed[t][k].min_dis);
        EXPECT_EQ(dense[t][k].stage3_feasible, indexed[t][k].stage3_feasible);
      }
    }
    EXPECT_EQ(dense_stats.evaluated,
              static_cast<int64_t>(tasks.size() * workers.size()));
    EXPECT_EQ(dense_stats.pruned, 0);
    EXPECT_LE(indexed_stats.evaluated, dense_stats.evaluated);
    EXPECT_EQ(indexed_stats.evaluated + indexed_stats.pruned,
              dense_stats.evaluated);
  }
}

TEST(CandidateIndexTest, ObsCountersIncrementExactlyOncePerBuild) {
  // Regression (satellite audit): assign.candidates_pruned must advance by
  // exactly `dense - evaluated` per indexed build — once, not once per
  // task slot or per thread — and mirror the CandidateGenStats the caller
  // receives. A double increment would silently inflate the bench-gated
  // op counts.
  tamp::Rng rng(271);
  std::vector<SpatialTask> tasks;
  std::vector<CandidateWorker> workers;
  RandomBatch(rng, 30, 40, &tasks, &workers);
  const double a = 0.5, now = 4.0;
  CandidateIndex index(workers);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const int64_t evals_before =
      registry.GetCounter("assign.candidate_evals").value();
  const int64_t pruned_before =
      registry.GetCounter("assign.candidates_pruned").value();
  CandidateGenStats stats;
  GenerateCandidates(tasks, workers, a, now, &index, &stats);
  const int64_t evals_delta =
      registry.GetCounter("assign.candidate_evals").value() - evals_before;
  const int64_t pruned_delta =
      registry.GetCounter("assign.candidates_pruned").value() - pruned_before;
  EXPECT_EQ(evals_delta, stats.evaluated);
  EXPECT_EQ(pruned_delta, stats.pruned);
  EXPECT_EQ(evals_delta + pruned_delta,
            static_cast<int64_t>(tasks.size()) *
                static_cast<int64_t>(workers.size()));
}

TEST(CandidateIndexTest, ExpiredTaskPrunesEveryWorker) {
  std::vector<CandidateWorker> workers = {
      MakeWorker(0, {{{1.0, 1.0}, 10.0}}, {1.0, 1.0}, 4.0, 0.5, 0.5)};
  CandidateIndex index(workers);
  SpatialTask task = MakeTask(0, {1.0, 1.0}, /*deadline=*/5.0);
  EXPECT_LT(index.PruneRadius(task, 0.5, /*now=*/5.0), 0.0);
  std::vector<int> hits;
  index.QueryWorkers(task.location, index.PruneRadius(task, 0.5, 5.0), hits);
  EXPECT_TRUE(hits.empty());
}

/// Workload-scale plan parity. Workers' platform-visible routines are
/// synthesized from their real test trajectories (sampled forward from
/// `now`), so the batch has the spatial structure of the paper's datasets
/// without running the NN forecaster.
class PlanParityTest : public ::testing::TestWithParam<data::WorkloadKind> {
 protected:
  struct Batch {
    std::vector<SpatialTask> tasks;
    std::vector<CandidateWorker> workers;
    double now = 0.0;
  };

  static Batch BuildBatch(data::WorkloadKind kind) {
    data::WorkloadConfig config;
    config.kind = kind;
    config.num_workers = 50;
    config.num_train_days = 1;
    config.num_tasks = 300;
    config.num_historical_tasks = 50;
    config.seed = 4242;
    data::Workload workload = data::GenerateWorkload(config);

    Batch batch;
    // A mid-horizon batch instant with a healthy pool.
    batch.now = workload.task_stream[workload.task_stream.size() / 2]
                    .release_time_min;
    for (const SpatialTask& task : workload.task_stream) {
      if (task.release_time_min <= batch.now &&
          task.deadline_min > batch.now) {
        batch.tasks.push_back(task);
      }
    }
    for (size_t w = 0; w < workload.workers.size(); ++w) {
      const data::WorkerRecord& record = workload.workers[w];
      std::vector<geo::TimedPoint> pred;
      for (int s = 1; s <= 5; ++s) {
        const double t = batch.now + 10.0 * s;
        pred.push_back({record.test.PositionAt(t), t});
      }
      batch.workers.push_back(MakeWorker(
          record.id, std::move(pred), record.test.PositionAt(batch.now),
          record.detour_budget_km, record.speed_kmpm,
          0.2 + 0.6 * static_cast<double>(w) /
                    static_cast<double>(workload.workers.size())));
    }
    return batch;
  }

  static void ExpectSamePlan(const AssignmentPlan& a,
                             const AssignmentPlan& b) {
    ASSERT_EQ(a.pairs.size(), b.pairs.size());
    for (size_t i = 0; i < a.pairs.size(); ++i) {
      EXPECT_EQ(a.pairs[i].task_index, b.pairs[i].task_index);
      EXPECT_EQ(a.pairs[i].worker_index, b.pairs[i].worker_index);
      // Bit-identical, not approximately equal: the indexed path must
      // evaluate exactly the same arithmetic on the surviving pairs.
      EXPECT_EQ(a.pairs[i].expected_detour_km, b.pairs[i].expected_detour_km);
    }
  }
};

TEST_P(PlanParityTest, PpiDenseAndIndexedBitIdentical) {
  Batch batch = BuildBatch(GetParam());
  ASSERT_FALSE(batch.tasks.empty());
  PpiConfig dense_config;
  dense_config.use_spatial_index = false;
  PpiConfig indexed_config;
  indexed_config.use_spatial_index = true;
  for (int threads : {1, 4}) {
    SetParallelThreadCount(threads);
    AssignmentPlan dense =
        PpiAssign(batch.tasks, batch.workers, batch.now, dense_config);
    AssignmentPlan indexed =
        PpiAssign(batch.tasks, batch.workers, batch.now, indexed_config);
    EXPECT_FALSE(dense.pairs.empty());
    ExpectSamePlan(dense, indexed);
  }
  SetParallelThreadCount(0);
}

TEST_P(PlanParityTest, KmDenseAndIndexedBitIdentical) {
  Batch batch = BuildBatch(GetParam());
  for (int threads : {1, 4}) {
    SetParallelThreadCount(threads);
    AssignmentPlan dense =
        KmAssign(batch.tasks, batch.workers, batch.now, /*match_radius_km=*/1.0,
                 /*weight_floor_km=*/1e-3, /*use_spatial_index=*/false);
    AssignmentPlan indexed =
        KmAssign(batch.tasks, batch.workers, batch.now, 1.0, 1e-3, true);
    EXPECT_FALSE(dense.pairs.empty());
    ExpectSamePlan(dense, indexed);
  }
  SetParallelThreadCount(0);
}

TEST_P(PlanParityTest, GgpsoDenseAndIndexedBitIdentical) {
  Batch batch = BuildBatch(GetParam());
  GgpsoConfig dense_config;
  dense_config.generations = 15;
  dense_config.population = 12;
  dense_config.use_spatial_index = false;
  GgpsoConfig indexed_config = dense_config;
  indexed_config.use_spatial_index = true;
  for (int threads : {1, 4}) {
    SetParallelThreadCount(threads);
    AssignmentPlan dense =
        GgpsoAssign(batch.tasks, batch.workers, batch.now, dense_config);
    AssignmentPlan indexed =
        GgpsoAssign(batch.tasks, batch.workers, batch.now, indexed_config);
    EXPECT_FALSE(dense.pairs.empty());
    ExpectSamePlan(dense, indexed);
  }
  SetParallelThreadCount(0);
}

TEST_P(PlanParityTest, IndexActuallyPrunes) {
  // Guard against the parity tests passing vacuously because the prune
  // radius covers the whole map: on both workloads the index must skip a
  // substantial share of the dense pairs.
  Batch batch = BuildBatch(GetParam());
  CandidateIndex index(batch.workers);
  CandidateGenStats stats;
  GenerateCandidates(batch.tasks, batch.workers, /*match_radius_km=*/1.0,
                     batch.now, &index, &stats);
  EXPECT_GT(stats.pruned, 0);
  EXPECT_LT(stats.evaluated,
            static_cast<int64_t>(batch.tasks.size() * batch.workers.size()));
}

INSTANTIATE_TEST_SUITE_P(Workloads, PlanParityTest,
                         ::testing::Values(
                             data::WorkloadKind::kPortoDidi,
                             data::WorkloadKind::kGowallaFoursquare),
                         [](const auto& info) {
                           return info.param == data::WorkloadKind::kPortoDidi
                                      ? "Porto"
                                      : "Gowalla";
                         });

}  // namespace
}  // namespace tamp::assign
