#include "meta/trainer.h"

#include <gtest/gtest.h>

#include "meta/taml.h"

#include "common/rng.h"

namespace tamp::meta {
namespace {

/// Eight workers in two mobility groups: rightward movers (with POIs/
/// locations in the west) and upward movers (east). Gives the clustering
/// factors real signal.
std::vector<LearningTask> MakeGroupedTasks(tamp::Rng& rng) {
  std::vector<LearningTask> tasks;
  for (int w = 0; w < 8; ++w) {
    bool group_a = w < 4;
    double vx = group_a ? 0.05 : 0.0;
    double vy = group_a ? 0.0 : 0.05;
    double cx = group_a ? 0.25 : 0.65;
    LearningTask task;
    task.worker_id = w;
    auto sample = [&]() {
      TrainingSample s;
      double x = cx + rng.Uniform(-0.1, 0.1);
      double y = 0.3 + rng.Uniform(-0.1, 0.1);
      for (int t = 0; t < 4; ++t) s.input.push_back({x + vx * t, y + vy * t});
      s.target.push_back({x + vx * 4, y + vy * 4});
      s.target_km.push_back({(x + vx * 4) * 20.0, (y + vy * 4) * 10.0});
      return s;
    };
    for (int i = 0; i < 6; ++i) task.support.push_back(sample());
    for (int i = 0; i < 4; ++i) task.query.push_back(sample());
    for (int i = 0; i < 4; ++i) task.eval.push_back(sample());
    for (const auto& s : task.support) {
      task.location_cloud.push_back(s.target_km[0]);
    }
    for (int p = 0; p < 3; ++p) {
      task.pois.emplace_back(cx * 20.0 + rng.Uniform(-1.0, 1.0),
                             3.0 + rng.Uniform(-1.0, 1.0), group_a ? 0 : 1);
    }
    tasks.push_back(std::move(task));
  }
  return tasks;
}

TrainerConfig SmallConfig() {
  TrainerConfig config;
  config.model.hidden_dim = 6;
  config.meta.iterations = 6;
  config.meta.batch_size = 2;
  config.fine_tune_steps = 5;
  config.tree.game.k = 2;
  config.tree.thresholds = {0.95, 0.95};
  config.projection_dim = 16;
  config.path_steps = 2;
  config.ctml_k = 2;
  config.seed = 42;
  return config;
}

class TrainerAlgorithmSweep : public ::testing::TestWithParam<MetaAlgorithm> {
};

TEST_P(TrainerAlgorithmSweep, TrainsAndEvaluatesAllAlgorithms) {
  tamp::Rng rng(7);
  auto tasks = MakeGroupedTasks(rng);
  MobilityTrainer trainer(SmallConfig());
  TrainedModels models = trainer.Train(tasks, GetParam());

  ASSERT_EQ(models.worker_params.size(), tasks.size());
  for (const auto& params : models.worker_params) {
    EXPECT_EQ(params.size(), trainer.model().param_count());
  }
  EXPECT_GE(models.num_leaves, 1);
  EXPECT_GT(models.train_seconds, 0.0);
  ASSERT_NE(models.tree, nullptr);

  geo::GridSpec grid(20.0, 10.0, 50, 100);
  EvalResult eval = trainer.Evaluate(models, tasks, grid, 2.0);
  EXPECT_EQ(eval.per_worker.size(), tasks.size());
  EXPECT_GT(eval.aggregate.num_points, 0);
  EXPECT_GE(eval.aggregate.matching_rate, 0.0);
  EXPECT_LE(eval.aggregate.matching_rate, 1.0);
  EXPECT_GT(eval.aggregate.rmse_km, 0.0);
  EXPECT_GE(eval.aggregate.rmse_km, eval.aggregate.mae_km);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, TrainerAlgorithmSweep,
                         ::testing::Values(MetaAlgorithm::kMaml,
                                           MetaAlgorithm::kCtml,
                                           MetaAlgorithm::kGttamlGt,
                                           MetaAlgorithm::kGttaml));

TEST(MobilityTrainerTest, MamlUsesOneCluster) {
  tamp::Rng rng(9);
  auto tasks = MakeGroupedTasks(rng);
  MobilityTrainer trainer(SmallConfig());
  TrainedModels models = trainer.Train(tasks, MetaAlgorithm::kMaml);
  EXPECT_EQ(models.num_leaves, 1);
}

TEST(MobilityTrainerTest, GttamlSeparatesTheGroups) {
  tamp::Rng rng(11);
  auto tasks = MakeGroupedTasks(rng);
  MobilityTrainer trainer(SmallConfig());
  TrainedModels models = trainer.Train(tasks, MetaAlgorithm::kGttaml);
  EXPECT_GE(models.num_leaves, 2);
  // Workers of the same movement group should share a leaf.
  const cluster::TaskTreeNode* leaf0 = FindLeafForTask(*models.tree, 0);
  const cluster::TaskTreeNode* leaf4 = FindLeafForTask(*models.tree, 4);
  ASSERT_NE(leaf0, nullptr);
  ASSERT_NE(leaf4, nullptr);
  EXPECT_NE(leaf0, leaf4);
}

TEST(MobilityTrainerTest, DeterministicForSameSeed) {
  tamp::Rng rng_a(13), rng_b(13);
  auto tasks_a = MakeGroupedTasks(rng_a);
  auto tasks_b = MakeGroupedTasks(rng_b);
  MobilityTrainer trainer_a(SmallConfig());
  MobilityTrainer trainer_b(SmallConfig());
  TrainedModels models_a = trainer_a.Train(tasks_a, MetaAlgorithm::kGttaml);
  TrainedModels models_b = trainer_b.Train(tasks_b, MetaAlgorithm::kGttaml);
  ASSERT_EQ(models_a.worker_params.size(), models_b.worker_params.size());
  for (size_t w = 0; w < models_a.worker_params.size(); ++w) {
    EXPECT_EQ(models_a.worker_params[w], models_b.worker_params[w]);
  }
}

TEST(MobilityTrainerTest, NewcomerAdaptationUsesTheRightCluster) {
  tamp::Rng rng(17);
  auto tasks = MakeGroupedTasks(rng);
  MobilityTrainer trainer(SmallConfig());
  TrainedModels models = trainer.Train(tasks, MetaAlgorithm::kGttaml);

  // A newcomer resembling group B (east, upward movers), with few samples.
  LearningTask newcomer;
  newcomer.worker_id = 100;
  for (int i = 0; i < 3; ++i) {
    TrainingSample s;
    double x = 0.65, y = 0.3 + 0.02 * i;
    for (int t = 0; t < 4; ++t) s.input.push_back({x, y + 0.05 * t});
    s.target.push_back({x, y + 0.2});
    s.target_km.push_back({x * 20.0, (y + 0.2) * 10.0});
    newcomer.support.push_back(s);
    newcomer.location_cloud.push_back(s.target_km[0]);
  }
  std::vector<double> theta = trainer.AdaptNewcomer(models, tasks, newcomer);
  EXPECT_EQ(theta.size(), trainer.model().param_count());
}

TEST(MobilityTrainerTest, WeightFnFlowsIntoTraining) {
  tamp::Rng rng(19);
  auto tasks = MakeGroupedTasks(rng);
  TrainerConfig config = SmallConfig();
  TrainerConfig weighted = SmallConfig();
  weighted.meta.weight_fn = [](const geo::Point& p) {
    return p.x > 10.0 ? 3.0 : 0.5;
  };
  MobilityTrainer plain(config);
  MobilityTrainer with_weights(weighted);
  TrainedModels m_plain = plain.Train(tasks, MetaAlgorithm::kMaml);
  TrainedModels m_weighted = with_weights.Train(tasks, MetaAlgorithm::kMaml);
  // Different losses must yield different parameters.
  EXPECT_NE(m_plain.worker_params[0], m_weighted.worker_params[0]);
}

}  // namespace
}  // namespace tamp::meta
