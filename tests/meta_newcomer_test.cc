// The cold-start path end-to-end: meta-training on veterans must transfer
// to a newcomer through the most-similar-node initialization (Section
// III-B's newcomer strategy) better than training from scratch on the same
// few-shot budget.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "meta/meta_training.h"
#include "meta/taml.h"
#include "meta/trainer.h"
#include "similarity/wasserstein.h"

namespace tamp::meta {
namespace {

/// Veterans in two movement groups; the newcomer belongs to group B.
LearningTask MakeTask(int id, bool group_a, int n_train, tamp::Rng& rng) {
  double vx = group_a ? 0.05 : -0.05;
  double cx = group_a ? 0.25 : 0.75;
  LearningTask task;
  task.worker_id = id;
  auto sample = [&]() {
    TrainingSample s;
    double x = cx + rng.Uniform(-0.05, 0.05);
    double y = 0.4 + rng.Uniform(-0.1, 0.1);
    for (int t = 0; t < 4; ++t) s.input.push_back({x + vx * t, y});
    s.target.push_back({x + vx * 4, y});
    s.target_km.push_back({(x + vx * 4) * 20.0, y * 10.0});
    return s;
  };
  for (int i = 0; i < n_train; ++i) task.support.push_back(sample());
  for (int i = 0; i < n_train / 2 + 1; ++i) task.query.push_back(sample());
  for (int i = 0; i < 6; ++i) task.eval.push_back(sample());
  for (const auto& s : task.support) {
    task.location_cloud.push_back(s.target_km[0]);
  }
  task.pois.emplace_back(cx * 20.0, 4.0, group_a ? 0 : 1);
  return task;
}

double EvalRmse(const nn::EncoderDecoder& model,
                const std::vector<double>& params, const LearningTask& task) {
  double se = 0.0;
  int n = 0;
  for (const auto& sample : task.eval) {
    nn::Sequence pred = model.Predict(params, sample.input);
    for (size_t t = 0; t < pred.size(); ++t) {
      for (size_t d = 0; d < pred[t].size(); ++d) {
        double diff = pred[t][d] - sample.target[t][d];
        se += diff * diff;
        ++n;
      }
    }
  }
  return std::sqrt(se / n);
}

TEST(NewcomerAdaptationTest, TreeInitBeatsScratchOnFewShots) {
  tamp::Rng rng(5);
  std::vector<LearningTask> veterans;
  for (int i = 0; i < 8; ++i) veterans.push_back(MakeTask(i, i < 4, 10, rng));

  TrainerConfig config;
  config.model.hidden_dim = 8;
  config.meta.iterations = 25;
  config.meta.batch_size = 3;
  config.fine_tune_steps = 5;  // Few-shot budget.
  config.tree.game.k = 2;
  config.projection_dim = 12;
  config.seed = 9;
  MobilityTrainer trainer(config);
  TrainedModels models = trainer.Train(veterans, MetaAlgorithm::kGttaml);

  // A group-B newcomer with only 3 samples.
  LearningTask newcomer = MakeTask(100, /*group_a=*/false, 3, rng);
  std::vector<double> tree_init =
      trainer.AdaptNewcomer(models, veterans, newcomer);

  tamp::Rng scratch_rng(17);
  std::vector<double> scratch = trainer.model().InitParams(scratch_rng);
  FineTune(trainer.model(), newcomer, scratch, config.fine_tune_steps,
           config.fine_tune_lr, config.meta);

  double tree_rmse = EvalRmse(trainer.model(), tree_init, newcomer);
  double scratch_rmse = EvalRmse(trainer.model(), scratch, newcomer);
  EXPECT_LT(tree_rmse, scratch_rmse)
      << "tree " << tree_rmse << " scratch " << scratch_rmse;
}

TEST(NewcomerAdaptationTest, PicksTheMatchingGroupNode) {
  tamp::Rng rng(19);
  std::vector<LearningTask> veterans;
  for (int i = 0; i < 8; ++i) veterans.push_back(MakeTask(i, i < 4, 10, rng));

  TrainerConfig config;
  config.model.hidden_dim = 6;
  config.meta.iterations = 5;
  config.tree.game.k = 2;
  config.projection_dim = 12;
  config.seed = 21;
  MobilityTrainer trainer(config);
  TrainedModels models = trainer.Train(veterans, MetaAlgorithm::kGttaml);
  ASSERT_GE(models.num_leaves, 2);

  LearningTask newcomer = MakeTask(100, /*group_a=*/false, 3, rng);
  // The most similar node must contain only group-B veterans (ids >= 4).
  auto similarity_to = [&](int task_id) {
    return similarity::DistributionSimilarity(
        newcomer.location_cloud, veterans[task_id].location_cloud, 8, 2.0);
  };
  const cluster::TaskTreeNode* best =
      FindMostSimilarNode(*models.tree, similarity_to);
  ASSERT_NE(best, nullptr);
  for (int t : best->tasks) {
    EXPECT_GE(t, 4) << "newcomer matched to the wrong movement group";
  }
}

}  // namespace
}  // namespace tamp::meta
