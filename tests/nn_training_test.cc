#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/encoder_decoder.h"
#include "nn/optimizer.h"

namespace tamp::nn {
namespace {

/// A toy trajectory task: points move diagonally with constant velocity;
/// the model should learn to extrapolate.
struct ToyData {
  std::vector<Sequence> inputs;
  std::vector<Sequence> targets;
};

ToyData MakeToyData(int n, int seq_in, int seq_out, tamp::Rng& rng) {
  ToyData data;
  for (int s = 0; s < n; ++s) {
    double x = rng.Uniform(0.1, 0.5);
    double y = rng.Uniform(0.1, 0.5);
    double vx = 0.04, vy = 0.02;
    Sequence input, target;
    for (int t = 0; t < seq_in; ++t) {
      input.push_back({x + vx * t, y + vy * t});
    }
    for (int t = 0; t < seq_out; ++t) {
      target.push_back({x + vx * (seq_in + t), y + vy * (seq_in + t)});
    }
    data.inputs.push_back(std::move(input));
    data.targets.push_back(std::move(target));
  }
  return data;
}

TEST(EncoderDecoderTrainingTest, LossDecreasesUnderSgd) {
  tamp::Rng rng(11);
  Seq2SeqConfig config;
  config.hidden_dim = 8;
  config.seq_out = 1;
  EncoderDecoder model(config);
  std::vector<double> params = model.InitParams(rng);
  ToyData data = MakeToyData(16, 4, 1, rng);

  auto epoch_loss = [&](bool train) {
    std::vector<double> grad(params.size(), 0.0);
    double total = 0.0;
    for (size_t i = 0; i < data.inputs.size(); ++i) {
      std::fill(grad.begin(), grad.end(), 0.0);
      total += model.LossAndGradient(params, data.inputs[i], data.targets[i],
                                     {}, grad);
      if (train) {
        ClipGradientNorm(grad, 5.0);
        Sgd(0.2).Step(params, grad);
      }
    }
    return total / data.inputs.size();
  };

  double initial = epoch_loss(false);
  for (int e = 0; e < 60; ++e) epoch_loss(true);
  double trained = epoch_loss(false);
  EXPECT_LT(trained, initial * 0.3)
      << "initial=" << initial << " trained=" << trained;
}

TEST(EncoderDecoderTrainingTest, PredictionApproachesTarget) {
  tamp::Rng rng(13);
  Seq2SeqConfig config;
  config.hidden_dim = 8;
  EncoderDecoder model(config);
  std::vector<double> params = model.InitParams(rng);
  ToyData data = MakeToyData(16, 4, 1, rng);

  std::vector<double> grad(params.size(), 0.0);
  for (int e = 0; e < 150; ++e) {
    for (size_t i = 0; i < data.inputs.size(); ++i) {
      std::fill(grad.begin(), grad.end(), 0.0);
      model.LossAndGradient(params, data.inputs[i], data.targets[i], {}, grad);
      ClipGradientNorm(grad, 5.0);
      Sgd(0.2).Step(params, grad);
    }
  }
  // Mean absolute prediction error should be small on training data.
  double err = 0.0;
  int count = 0;
  for (size_t i = 0; i < data.inputs.size(); ++i) {
    Sequence pred = model.Predict(params, data.inputs[i]);
    for (size_t t = 0; t < pred.size(); ++t) {
      for (size_t d = 0; d < pred[t].size(); ++d) {
        err += std::fabs(pred[t][d] - data.targets[i][t][d]);
        ++count;
      }
    }
  }
  EXPECT_LT(err / count, 0.05);
}

TEST(EncoderDecoderTest, PredictIsDeterministic) {
  tamp::Rng rng(17);
  Seq2SeqConfig config;
  EncoderDecoder model(config);
  std::vector<double> params = model.InitParams(rng);
  Sequence input = {{0.1, 0.2}, {0.3, 0.4}};
  Sequence a = model.Predict(params, input);
  Sequence b = model.Predict(params, input);
  ASSERT_EQ(a.size(), b.size());
  for (size_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a[t], b[t]);
  }
}

TEST(EncoderDecoderTest, SeqOutControlsPredictionLength) {
  tamp::Rng rng(19);
  for (int seq_out : {1, 2, 3}) {
    Seq2SeqConfig config;
    config.seq_out = seq_out;
    EncoderDecoder model(config);
    std::vector<double> params = model.InitParams(rng);
    Sequence pred = model.Predict(params, {{0.5, 0.5}});
    EXPECT_EQ(static_cast<int>(pred.size()), seq_out);
    for (const auto& step : pred) EXPECT_EQ(step.size(), 2u);
  }
}

TEST(EncoderDecoderTest, ParamCountMatchesLayout) {
  Seq2SeqConfig config;
  config.input_dim = 2;
  config.hidden_dim = 16;
  config.output_dim = 2;
  EncoderDecoder model(config);
  size_t h4 = 4 * 16;
  size_t enc = h4 * 2 + h4 * 16 + h4;
  size_t dec = h4 * 2 + h4 * 16 + h4;
  size_t readout = 16 * 2 + 2;
  EXPECT_EQ(model.param_count(), enc + dec + readout);
}

TEST(EncoderDecoderTest, InitParamsDependOnSeed) {
  Seq2SeqConfig config;
  EncoderDecoder model(config);
  tamp::Rng a(1), b(1), c(2);
  EXPECT_EQ(model.InitParams(a), model.InitParams(b));
  EXPECT_NE(model.InitParams(a), model.InitParams(c));
}

TEST(EncoderDecoderTest, EvalLossZeroForOracleTargets) {
  tamp::Rng rng(23);
  Seq2SeqConfig config;
  EncoderDecoder model(config);
  std::vector<double> params = model.InitParams(rng);
  Sequence input = {{0.2, 0.2}, {0.4, 0.4}};
  Sequence pred = model.Predict(params, input);
  EXPECT_NEAR(model.EvalLoss(params, input, pred, {}), 0.0, 1e-18);
}

}  // namespace
}  // namespace tamp::nn
