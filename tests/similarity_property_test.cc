// Parameterized metric-property suites for the similarity substrate: the
// Wasserstein distances must behave like metrics and the similarity
// transforms must stay bounded and monotone — the clustering game's
// convergence proof quietly relies on these.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "similarity/wasserstein.h"

namespace tamp::similarity {
namespace {

std::vector<geo::Point> RandomCloud(int n, tamp::Rng& rng, double spread) {
  std::vector<geo::Point> cloud;
  for (int i = 0; i < n; ++i) {
    cloud.push_back({rng.Uniform(0.0, spread), rng.Uniform(0.0, spread)});
  }
  return cloud;
}

class WassersteinSweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(WassersteinSweep, NonNegativityAndIdentity) {
  auto [n, seed] = GetParam();
  tamp::Rng rng(seed);
  auto a = RandomCloud(n, rng, 10.0);
  auto b = RandomCloud(n, rng, 10.0);
  EXPECT_GE(SlicedWasserstein2D(a, b, 8), 0.0);
  EXPECT_NEAR(SlicedWasserstein2D(a, a, 8), 0.0, 1e-12);
  EXPECT_GE(ExactWasserstein2D(a, b), 0.0);
  EXPECT_NEAR(ExactWasserstein2D(a, a), 0.0, 1e-12);
}

TEST_P(WassersteinSweep, Symmetry) {
  auto [n, seed] = GetParam();
  tamp::Rng rng(seed + 1);
  auto a = RandomCloud(n, rng, 10.0);
  auto b = RandomCloud(n, rng, 10.0);
  EXPECT_NEAR(SlicedWasserstein2D(a, b, 16), SlicedWasserstein2D(b, a, 16),
              1e-9);
  EXPECT_NEAR(ExactWasserstein2D(a, b), ExactWasserstein2D(b, a), 1e-9);
}

TEST_P(WassersteinSweep, TriangleInequalityExact) {
  auto [n, seed] = GetParam();
  tamp::Rng rng(seed + 2);
  auto a = RandomCloud(n, rng, 10.0);
  auto b = RandomCloud(n, rng, 10.0);
  auto c = RandomCloud(n, rng, 10.0);
  double ab = ExactWasserstein2D(a, b);
  double bc = ExactWasserstein2D(b, c);
  double ac = ExactWasserstein2D(a, c);
  EXPECT_LE(ac, ab + bc + 1e-9);
}

TEST_P(WassersteinSweep, TranslationEquivariance) {
  auto [n, seed] = GetParam();
  tamp::Rng rng(seed + 3);
  auto a = RandomCloud(n, rng, 10.0);
  std::vector<geo::Point> shifted;
  for (const auto& p : a) shifted.push_back({p.x + 4.0, p.y - 1.0});
  // W(a, a + v) == |v| for a pure translation.
  EXPECT_NEAR(ExactWasserstein2D(a, shifted), std::sqrt(16.0 + 1.0), 1e-9);
}

TEST_P(WassersteinSweep, SlicedLowerBoundsExact) {
  auto [n, seed] = GetParam();
  tamp::Rng rng(seed + 4);
  auto a = RandomCloud(n, rng, 10.0);
  auto b = RandomCloud(n, rng, 10.0);
  EXPECT_LE(SlicedWasserstein2D(a, b, 32), ExactWasserstein2D(a, b) + 1e-9);
}

TEST_P(WassersteinSweep, SimilarityBoundedAndMonotone) {
  auto [n, seed] = GetParam();
  tamp::Rng rng(seed + 5);
  auto a = RandomCloud(n, rng, 5.0);
  std::vector<geo::Point> near, far;
  for (const auto& p : a) {
    near.push_back({p.x + 0.5, p.y});
    far.push_back({p.x + 15.0, p.y});
  }
  double s_self = DistributionSimilarity(a, a, 8, 2.0);
  double s_near = DistributionSimilarity(a, near, 8, 2.0);
  double s_far = DistributionSimilarity(a, far, 8, 2.0);
  EXPECT_NEAR(s_self, 1.0, 1e-12);
  EXPECT_GT(s_near, s_far);
  EXPECT_GE(s_far, 0.0);
  EXPECT_LE(s_near, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WassersteinSweep,
                         ::testing::Values(std::make_tuple(4, 1ULL),
                                           std::make_tuple(12, 2ULL),
                                           std::make_tuple(25, 3ULL),
                                           std::make_tuple(40, 4ULL)));

}  // namespace
}  // namespace tamp::similarity
