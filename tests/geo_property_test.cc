// Randomized geometric invariants underpinning the assignment math: the
// detour of Lemma 1 is a triangle-inequality excess (never negative), the
// planner never violates deadlines, and interpolation stays on segments.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/trajectory.h"

namespace tamp::geo {
namespace {

Trajectory RandomTrajectory(tamp::Rng& rng, int points) {
  Trajectory traj;
  double t = 0.0;
  Point p{rng.Uniform(0, 20), rng.Uniform(0, 10)};
  for (int i = 0; i < points; ++i) {
    traj.Append({p, t});
    p.x += rng.Normal(0.0, 1.5);
    p.y += rng.Normal(0.0, 1.0);
    t += rng.Uniform(5.0, 15.0);
  }
  return traj;
}

class GeoRandomSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeoRandomSweep, DetourIsNeverNegative) {
  tamp::Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    Trajectory traj = RandomTrajectory(rng, 6);
    Point task{rng.Uniform(-2, 22), rng.Uniform(-2, 12)};
    auto plan = PlanTaskVisit(traj, task, 1.0, 1e9);
    ASSERT_TRUE(plan.has_value());
    // Triangle inequality: dis(a, t) + dis(t, b) >= dis(a, b).
    EXPECT_GE(plan->detour_km, -1e-9);
  }
}

TEST_P(GeoRandomSweep, PlannerRespectsDeadlines) {
  tamp::Rng rng(GetParam() + 100);
  for (int trial = 0; trial < 30; ++trial) {
    Trajectory traj = RandomTrajectory(rng, 6);
    Point task{rng.Uniform(0, 20), rng.Uniform(0, 10)};
    double deadline = rng.Uniform(5.0, 60.0);
    auto plan = PlanTaskVisit(traj, task, 0.5, deadline);
    if (plan.has_value()) {
      EXPECT_LE(plan->arrival_time_min, deadline + 1e-9);
    }
  }
}

TEST_P(GeoRandomSweep, TighterDeadlineNeverLowersDetour) {
  tamp::Rng rng(GetParam() + 200);
  for (int trial = 0; trial < 30; ++trial) {
    Trajectory traj = RandomTrajectory(rng, 6);
    Point task{rng.Uniform(0, 20), rng.Uniform(0, 10)};
    auto loose = PlanTaskVisit(traj, task, 1.0, 1e9);
    auto tight = PlanTaskVisit(traj, task, 1.0, rng.Uniform(10.0, 40.0));
    ASSERT_TRUE(loose.has_value());
    if (tight.has_value()) {
      // The tight plan optimizes over a subset of insertions.
      EXPECT_GE(tight->detour_km, loose->detour_km - 1e-9);
    }
  }
}

TEST_P(GeoRandomSweep, PositionAtStaysInsideTheBoundingBox) {
  tamp::Rng rng(GetParam() + 300);
  Trajectory traj = RandomTrajectory(rng, 8);
  double min_x = 1e9, max_x = -1e9, min_y = 1e9, max_y = -1e9;
  for (const auto& p : traj.points()) {
    min_x = std::min(min_x, p.loc.x);
    max_x = std::max(max_x, p.loc.x);
    min_y = std::min(min_y, p.loc.y);
    max_y = std::max(max_y, p.loc.y);
  }
  for (int i = 0; i < 50; ++i) {
    Point p = traj.PositionAt(
        rng.Uniform(traj.start_time() - 10.0, traj.end_time() + 10.0));
    // Linear interpolation is a convex combination of vertices.
    EXPECT_GE(p.x, min_x - 1e-9);
    EXPECT_LE(p.x, max_x + 1e-9);
    EXPECT_GE(p.y, min_y - 1e-9);
    EXPECT_LE(p.y, max_y + 1e-9);
  }
}

TEST_P(GeoRandomSweep, MinDistanceLowerBoundsPlannedLeg) {
  tamp::Rng rng(GetParam() + 400);
  for (int trial = 0; trial < 20; ++trial) {
    Trajectory traj = RandomTrajectory(rng, 5);
    Point task{rng.Uniform(0, 20), rng.Uniform(0, 10)};
    auto plan = PlanTaskVisit(traj, task, 1.0, 1e9);
    ASSERT_TRUE(plan.has_value());
    // Best insertion detour is at least the excess of visiting the task
    // from the single closest vertex (out-and-back bound is 2 * min_dis;
    // insertion can only be cheaper than out-and-back, never cheaper than
    // zero, so test the sound bound: detour <= 2 * min over vertices).
    EXPECT_LE(plan->detour_km, 2.0 * traj.MinDistanceTo(task) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeoRandomSweep,
                         ::testing::Values(1ULL, 7ULL, 42ULL, 1234ULL));

}  // namespace
}  // namespace tamp::geo
