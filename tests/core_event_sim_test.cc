#include "core/event_sim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/obs/metrics.h"
#include "common/parallel.h"
#include "core/pipeline.h"
#include "core/simulator.h"
#include "data/workload.h"
#include "nn/encoder_decoder.h"

namespace tamp::core {
namespace {

/// Restores the parallel thread count on scope exit so a failing test
/// can't leak its thread setting into the rest of the binary.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int threads) : saved_(ParallelThreadCount()) {
    SetParallelThreadCount(threads);
  }
  ~ThreadCountGuard() { SetParallelThreadCount(saved_); }

 private:
  int saved_;
};

/// Bitwise SimMetrics comparison (assign_seconds is wall-clock and
/// deliberately excluded — everything else must match exactly).
void ExpectBitwiseEqual(const SimMetrics& a, const SimMetrics& b,
                        const char* context) {
  EXPECT_EQ(a.total_tasks, b.total_tasks) << context;
  EXPECT_EQ(a.assignments, b.assignments) << context;
  EXPECT_EQ(a.accepted, b.accepted) << context;
  EXPECT_EQ(a.completed, b.completed) << context;
  EXPECT_EQ(a.dropouts, b.dropouts) << context;
  EXPECT_EQ(a.total_cost_km, b.total_cost_km) << context;  // Bitwise.
}

// ---------------------------------------------------------------------------
// Hand-built workloads: availability windows, dropout, expiry ordering.
// ---------------------------------------------------------------------------

/// A worker parked at (x, y) for the whole test horizon — acceptance is
/// then a zero-detour formality, so each test controls outcomes purely
/// through sessions, deadlines, and the dropout model.
data::WorkerRecord StationaryWorker(int id, double x, double y,
                                    double horizon_end_min) {
  data::WorkerRecord record;
  record.id = id;
  // One sample per minute: the acceptance test plans against the sample
  // points inside Slice(now, now + horizon), so the routine must actually
  // carry points there.
  std::vector<geo::TimedPoint> points;
  for (double t = 0.0; t <= horizon_end_min; t += 1.0) {
    points.push_back({x, y, t});
  }
  record.test = geo::Trajectory(std::move(points));
  record.detour_budget_km = 4.0;
  record.speed_kmpm = 0.5;
  record.online_start_min = 0.0;
  record.online_end_min = horizon_end_min;
  record.availability = {{0.0, horizon_end_min}};
  return record;
}

assign::SpatialTask MakeTask(int id, double x, double y, double release_min,
                             double deadline_min) {
  assign::SpatialTask task;
  task.id = id;
  task.location = {x, y};
  task.release_time_min = release_min;
  task.deadline_min = deadline_min;
  return task;
}

/// Runs a hand-built workload through the event core directly (triggers on
/// the same cadence BatchSimulator schedules), returning metrics + stats
/// and optionally capturing the drained event sequence.
struct EventRun {
  SimMetrics metrics;
  EventStats stats;
};

EventRun RunEventHorizon(const data::Workload& workload,
                         const SimulatorConfig& config, AssignMethod method,
                         std::vector<SimEvent>* trace = nullptr) {
  nn::Seq2SeqConfig model_config;
  model_config.input_dim = data::kSampleInputDim;
  model_config.hidden_dim = 4;
  nn::EncoderDecoder model(model_config);
  BatchAssignStep step(workload, model, config, nullptr);
  EventSimulator sim(workload, config, step);
  sim.set_event_trace(trace);
  const double start = workload.task_stream.front().release_time_min;
  double end = 0.0;
  for (const assign::SpatialTask& task : workload.task_stream) {
    end = std::max(end, task.deadline_min);
  }
  for (double now = start; now <= end; now += config.batch_window_min) {
    sim.ScheduleAssignTrigger(now);
  }
  std::vector<WorkerPredictor> predictors(workload.workers.size());
  EventRun run;
  run.metrics = sim.Run(method, predictors);
  run.stats = sim.stats();
  return run;
}

/// Runs the same workload through BatchSimulator with a chosen engine
/// (prediction-free LB, so no trained models are needed).
SimMetrics RunEngine(const data::Workload& workload, SimulatorConfig config,
                     SimEngine engine) {
  config.engine = engine;
  nn::Seq2SeqConfig model_config;
  model_config.input_dim = data::kSampleInputDim;
  model_config.hidden_dim = 4;
  nn::EncoderDecoder model(model_config);
  BatchSimulator sim(workload, model, config);
  std::vector<WorkerPredictor> predictors(workload.workers.size());
  return sim.Run(AssignMethod::kLowerBound, predictors);
}

void ExpectEnginesAgree(const data::Workload& workload,
                        const SimulatorConfig& config, const char* context) {
  ExpectBitwiseEqual(RunEngine(workload, config, SimEngine::kEvent),
                     RunEngine(workload, config, SimEngine::kBatchReplay),
                     context);
}

TEST(EventSimEdgeCaseTest, SameInstantExpiryBeatsAssignTrigger) {
  // Regression pin for the same-instant semantics: a task whose deadline
  // falls exactly on a batch instant must never be proposed at that
  // instant (kTaskExpiry sorts before kAssignTrigger). The worker logs in
  // at 11, so the only trigger that could serve task 0 is t=12 — exactly
  // its deadline.
  data::Workload workload;
  workload.workers.push_back(StationaryWorker(0, 5.0, 5.0, 200.0));
  workload.workers[0].availability = {{11.0, 200.0}};
  workload.task_stream.push_back(MakeTask(0, 5.0, 5.0, 10.0, 12.0));
  workload.task_stream.push_back(MakeTask(1, 5.0, 5.0, 10.0, 100.0));

  SimulatorConfig config;
  EventRun run = RunEventHorizon(workload, config, AssignMethod::kLowerBound);
  // Only task 1 is ever assigned; task 0 died on the trigger instant.
  EXPECT_EQ(run.metrics.assignments, 1);
  EXPECT_EQ(run.metrics.accepted, 1);
  EXPECT_EQ(run.metrics.completed, 1);
  EXPECT_EQ(run.metrics.dropouts, 0);
  // Both expiry events fire (task 1's lazily, after its acceptance).
  EXPECT_EQ(run.stats.task_expiries, 2);
  EXPECT_EQ(run.stats.task_arrivals, 2);
  ExpectEnginesAgree(workload, config, "same-instant expiry");
}

TEST(EventSimEdgeCaseTest, LogoutMidServiceStillCompletes) {
  // The worker accepts at t=10 (busy through the ~2-minute service) and
  // their session ends at t=11, mid-service. The accepted task still
  // completes — acceptance is a commitment — but the worker takes nothing
  // afterwards: task 1, released at 12.5 with a wide-open deadline, is
  // never assigned because the only worker is logged out.
  data::Workload workload;
  workload.workers.push_back(StationaryWorker(0, 5.0, 5.0, 200.0));
  workload.workers[0].availability = {{0.0, 11.0}};
  workload.task_stream.push_back(MakeTask(0, 5.0, 5.0, 10.0, 100.0));
  workload.task_stream.push_back(MakeTask(1, 5.0, 5.0, 12.5, 100.0));

  SimulatorConfig config;
  EventRun run = RunEventHorizon(workload, config, AssignMethod::kLowerBound);
  EXPECT_EQ(run.metrics.assignments, 1);
  EXPECT_EQ(run.metrics.accepted, 1);
  EXPECT_EQ(run.metrics.completed, 1);
  EXPECT_EQ(run.stats.worker_logins, 1);
  EXPECT_EQ(run.stats.worker_logouts, 1);
  // Exactly one completion event: the mid-service logout does not abort
  // the committed task (only the dropout model can).
  EXPECT_EQ(run.stats.worker_completions, 1);
  ExpectEnginesAgree(workload, config, "logout mid-service");
}

TEST(EventSimEdgeCaseTest, SessionGapLeavesMidGapTaskUnserved) {
  // Churn-style availability: two short sessions with a dead gap between
  // them. A task that lives entirely inside the gap expires unserved even
  // though the worker is free, in budget, and in range the whole time.
  data::Workload workload;
  workload.workers.push_back(StationaryWorker(0, 5.0, 5.0, 200.0));
  workload.workers[0].availability = {{10.0, 12.0}, {20.0, 22.0}};
  workload.task_stream.push_back(MakeTask(0, 5.0, 5.0, 10.0, 100.0));
  workload.task_stream.push_back(MakeTask(1, 5.0, 5.0, 13.0, 19.0));

  SimulatorConfig config;
  EventRun run = RunEventHorizon(workload, config, AssignMethod::kLowerBound);
  // Task 0 is served in the first session; task 1 (alive only over the
  // triggers at 14/16/18, all inside the gap) never is.
  EXPECT_EQ(run.metrics.assignments, 1);
  EXPECT_EQ(run.metrics.completed, 1);
  EXPECT_EQ(run.stats.worker_logins, 2);
  EXPECT_EQ(run.stats.worker_logouts, 2);
  ExpectEnginesAgree(workload, config, "session gap");
}

TEST(EventSimEdgeCaseTest, CertainDropoutUnderBusyUntilArrival) {
  // dropout.prob == 1: every acceptance aborts mid-service. The draw is a
  // pure function of (worker, task), so the re-pooled task keeps drawing
  // the same abort until its deadline — nothing ever completes and no
  // detour cost is booked. busy_until_arrival exercises the commitment
  // variant of the busy window (the worker is 0.5 km from the task, so
  // arrival is strictly after the trigger).
  data::Workload workload;
  workload.dropout = {1.0, 99};
  workload.workers.push_back(StationaryWorker(0, 5.0, 5.0, 200.0));
  workload.task_stream.push_back(MakeTask(0, 5.5, 5.0, 10.0, 30.0));

  SimulatorConfig config;
  config.busy_until_arrival = true;
  EventRun run = RunEventHorizon(workload, config, AssignMethod::kLowerBound);
  EXPECT_EQ(run.metrics.completed, 0);
  EXPECT_EQ(run.metrics.total_cost_km, 0.0);
  EXPECT_EQ(run.metrics.dropouts, run.metrics.accepted);
  // The aborted task re-pools and is re-accepted at later triggers.
  EXPECT_GE(run.metrics.dropouts, 2);
  EXPECT_EQ(run.stats.dropouts,
            static_cast<int64_t>(run.metrics.dropouts));
  // One completion event per acceptance, dropped or not.
  EXPECT_EQ(run.stats.worker_completions,
            static_cast<int64_t>(run.metrics.accepted));
  // Each abort re-arrives (the deadline cutoff eventually stops it).
  EXPECT_GE(run.stats.task_arrivals, run.stats.dropouts);
}

TEST(EventSimEdgeCaseTest, SkippedTriggersCountIdenticallyInBothEngines) {
  // Satellite regression: a trigger that finds no pending task, or tasks
  // but nobody available, must skip the solver yet still be accounted —
  // and the batch-replay loop counts its matching `continue` sites on the
  // same sim.batch_skips counter, so the engines' totals agree. The
  // workload forces both skip kinds: after task 0 is served the pool sits
  // empty for ~40 minutes of triggers, and task 1 (released at 50) finds
  // every session already over.
  data::Workload workload;
  workload.workers.push_back(StationaryWorker(0, 5.0, 5.0, 200.0));
  workload.workers[0].availability = {{10.0, 12.0}, {30.0, 32.0}};
  workload.task_stream.push_back(MakeTask(0, 5.0, 5.0, 10.0, 40.0));
  workload.task_stream.push_back(MakeTask(1, 5.0, 5.0, 50.0, 60.0));

  SimulatorConfig config;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter& skips = registry.GetCounter("sim.batch_skips");
  obs::Counter& batches = registry.GetCounter("sim.batches");

  int64_t skips_before = skips.value();
  int64_t batches_before = batches.value();
  EventRun event_run =
      RunEventHorizon(workload, config, AssignMethod::kLowerBound);
  const int64_t event_skips = skips.value() - skips_before;
  const int64_t event_batches = batches.value() - batches_before;

  skips_before = skips.value();
  batches_before = batches.value();
  SimMetrics replay = RunEngine(workload, config, SimEngine::kBatchReplay);
  const int64_t replay_skips = skips.value() - skips_before;
  const int64_t replay_batches = batches.value() - batches_before;

  ExpectBitwiseEqual(event_run.metrics, replay, "skip accounting");
  EXPECT_GT(event_skips, 0);
  EXPECT_GT(event_batches, 0);
  EXPECT_EQ(event_skips, replay_skips);
  EXPECT_EQ(event_batches, replay_batches);
  // Every trigger either reached the solver (sim.batches) or was skipped.
  EXPECT_EQ(event_run.stats.assign_triggers, event_batches + event_skips);
}

TEST(EventSimEdgeCaseTest, StatsAccountForEveryEvent) {
  data::Workload workload;
  workload.workers.push_back(StationaryWorker(0, 5.0, 5.0, 200.0));
  workload.workers[0].availability = {{10.0, 12.0}, {20.0, 22.0}};
  workload.task_stream.push_back(MakeTask(0, 5.0, 5.0, 10.0, 40.0));
  workload.task_stream.push_back(MakeTask(1, 5.0, 5.0, 13.0, 19.0));

  SimulatorConfig config;
  std::vector<SimEvent> trace;
  EventRun run =
      RunEventHorizon(workload, config, AssignMethod::kLowerBound, &trace);
  EXPECT_EQ(run.stats.events,
            run.stats.task_arrivals + run.stats.task_expiries +
                run.stats.worker_logins + run.stats.worker_completions +
                run.stats.assign_triggers + run.stats.worker_logouts);
  EXPECT_EQ(run.stats.events, static_cast<int64_t>(trace.size()));
  // One trigger per batch window over [10, 40].
  EXPECT_EQ(run.stats.assign_triggers, 16);
  // The drained sequence respects the (time, kind, id) total order.
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_FALSE(EventBefore(trace[i], trace[i - 1])) << "position " << i;
  }
}

// ---------------------------------------------------------------------------
// Trained-pipeline parity: event engine vs batch replay, Porto + Gowalla.
// ---------------------------------------------------------------------------

data::WorkloadConfig ParityWorkload(data::WorkloadKind kind) {
  data::WorkloadConfig config;
  config.kind = kind;
  config.num_workers = 12;
  config.num_train_days = 2;
  config.num_tasks = 60;
  config.num_historical_tasks = 300;
  config.seed = kind == data::WorkloadKind::kPortoDidi ? 33 : 44;
  return config;
}

PipelineConfig ParityPipeline() {
  PipelineConfig config;
  config.trainer.model.hidden_dim = 6;
  config.trainer.meta.iterations = 3;
  config.trainer.fine_tune_steps = 3;
  config.trainer.projection_dim = 8;
  config.trainer.tree.game.k = 2;
  config.sim.prediction_horizon_steps = 4;
  config.sim.ggpso.generations = 10;
  config.sim.ggpso.population = 10;
  return config;
}

/// One workload + one offline training pass per dataset, shared across the
/// parity tests (training dominates the suite's cost).
class EventBatchParityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TampPipeline trainer(ParityPipeline());
    porto_ = new data::Workload(data::GenerateWorkload(
        ParityWorkload(data::WorkloadKind::kPortoDidi)));
    porto_offline_ = new OfflineResult(trainer.TrainOffline(*porto_));
    gowalla_ = new data::Workload(data::GenerateWorkload(
        ParityWorkload(data::WorkloadKind::kGowallaFoursquare)));
    gowalla_offline_ = new OfflineResult(trainer.TrainOffline(*gowalla_));
  }
  static void TearDownTestSuite() {
    delete gowalla_offline_;
    delete gowalla_;
    delete porto_offline_;
    delete porto_;
    gowalla_offline_ = nullptr;
    gowalla_ = nullptr;
    porto_offline_ = nullptr;
    porto_ = nullptr;
  }

  /// The tentpole acceptance criterion: the event-driven core reproduces
  /// the batch-synchronous SimMetrics bitwise, for every assignment
  /// method, at 1 and 4 threads.
  static void ExpectEngineParity(const data::Workload& workload,
                                 const OfflineResult& offline) {
    PipelineConfig batch_config = ParityPipeline();
    batch_config.sim.engine = SimEngine::kBatchReplay;
    TampPipeline event_pipeline(ParityPipeline());  // Default: kEvent.
    TampPipeline batch_pipeline(batch_config);
    for (int threads : {1, 4}) {
      ThreadCountGuard guard(threads);
      for (AssignMethod method : AllAssignMethods()) {
        SimMetrics event = event_pipeline.RunOnline(workload, offline, method);
        SimMetrics batch = batch_pipeline.RunOnline(workload, offline, method);
        ExpectBitwiseEqual(event, batch, AssignMethodName(method).data());
      }
    }
  }

  static data::Workload* porto_;
  static OfflineResult* porto_offline_;
  static data::Workload* gowalla_;
  static OfflineResult* gowalla_offline_;
};

data::Workload* EventBatchParityTest::porto_ = nullptr;
OfflineResult* EventBatchParityTest::porto_offline_ = nullptr;
data::Workload* EventBatchParityTest::gowalla_ = nullptr;
OfflineResult* EventBatchParityTest::gowalla_offline_ = nullptr;

TEST_F(EventBatchParityTest, PortoBitwiseParity) {
  ExpectEngineParity(*porto_, *porto_offline_);
}

TEST_F(EventBatchParityTest, GowallaBitwiseParity) {
  ExpectEngineParity(*gowalla_, *gowalla_offline_);
}

TEST_F(EventBatchParityTest, EventOrderIdenticalAcrossThreadCounts) {
  // The determinism contract: the drained event sequence — not just the
  // final metrics — is identical at any thread count, with a predicting
  // method so the fleet forecast fan-out actually runs in parallel.
  const PipelineConfig config = ParityPipeline();
  nn::EncoderDecoder model(porto_offline_->models.model_config);
  std::vector<WorkerPredictor> predictors(porto_->workers.size());
  for (size_t w = 0; w < porto_->workers.size(); ++w) {
    predictors[w].params = &porto_offline_->models.worker_params[w];
    predictors[w].matching_rate =
        porto_offline_->eval.per_worker[w].matching_rate;
  }
  const double start = porto_->task_stream.front().release_time_min;
  double end = 0.0;
  for (const assign::SpatialTask& task : porto_->task_stream) {
    end = std::max(end, task.deadline_min);
  }

  std::vector<SimEvent> reference;
  SimMetrics reference_metrics;
  for (int threads : {1, 2, 4, 8}) {
    ThreadCountGuard guard(threads);
    BatchAssignStep step(*porto_, model, config.sim, nullptr);
    EventSimulator sim(*porto_, config.sim, step);
    std::vector<SimEvent> trace;
    sim.set_event_trace(&trace);
    for (double now = start; now <= end;
         now += config.sim.batch_window_min) {
      sim.ScheduleAssignTrigger(now);
    }
    SimMetrics metrics = sim.Run(AssignMethod::kKm, predictors);
    if (threads == 1) {
      reference = trace;
      reference_metrics = metrics;
      EXPECT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(trace, reference) << threads << " threads";
      ExpectBitwiseEqual(metrics, reference_metrics, "threads");
    }
  }
}

TEST_F(EventBatchParityTest, ChurnScenarioRunsAndDropsTasks) {
  // End-to-end smoke of the dynamic-availability path on a generated
  // churn workload: sessions gate assignments, dropouts are recorded, and
  // the accounting identity completed == accepted - dropouts holds.
  data::WorkloadConfig config = ParityWorkload(data::WorkloadKind::kPortoDidi);
  config.scenario = data::WorkloadScenario::kChurn;
  config.churn.dropout_prob = 0.5;
  data::Workload workload = data::GenerateWorkload(config);
  EXPECT_GT(workload.dropout.prob, 0.0);

  SimulatorConfig sim_config;
  EventRun run =
      RunEventHorizon(workload, sim_config, AssignMethod::kLowerBound);
  EXPECT_GT(run.metrics.accepted, 0);
  EXPECT_GT(run.metrics.dropouts, 0);
  EXPECT_EQ(run.metrics.completed,
            run.metrics.accepted - run.metrics.dropouts);
  // Churn splits each worker's window into several sessions.
  EXPECT_GT(run.stats.worker_logins,
            static_cast<int64_t>(workload.workers.size()));
  EXPECT_EQ(run.stats.worker_logins, run.stats.worker_logouts);
}

}  // namespace
}  // namespace tamp::core
