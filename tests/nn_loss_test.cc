#include "nn/loss.h"

#include <gtest/gtest.h>

namespace tamp::nn {
namespace {

TEST(WeightedMseLossTest, PlainMseValue) {
  Sequence pred = {{1.0, 2.0}, {3.0, 4.0}};
  Sequence target = {{1.0, 2.0}, {3.0, 6.0}};
  // Only one term differs by 2 -> squared 4, divided by 4 terms = 1.
  EXPECT_DOUBLE_EQ(WeightedMseLoss::Value(pred, target, {}), 1.0);
}

TEST(WeightedMseLossTest, PerfectPredictionIsZero) {
  Sequence seq = {{0.5, 0.5}, {0.2, 0.8}};
  EXPECT_DOUBLE_EQ(WeightedMseLoss::Value(seq, seq, {}), 0.0);
}

TEST(WeightedMseLossTest, WeightsScaleSteps) {
  Sequence pred = {{1.0}, {1.0}};
  Sequence target = {{0.0}, {0.0}};
  // Uniform: (1 + 1) / 2 = 1. Weighted 3x on the first step: (3+1)/2 = 2.
  EXPECT_DOUBLE_EQ(WeightedMseLoss::Value(pred, target, {}), 1.0);
  EXPECT_DOUBLE_EQ(WeightedMseLoss::Value(pred, target, {3.0, 1.0}), 2.0);
}

TEST(WeightedMseLossTest, GradientDirectionAndScale) {
  Sequence pred = {{2.0, 0.0}};
  Sequence target = {{0.0, 0.0}};
  Sequence grad = WeightedMseLoss::Gradient(pred, target, {});
  ASSERT_EQ(grad.size(), 1u);
  // dL/dp = 2 * (p - t) / terms = 2 * 2 / 2 = 2.
  EXPECT_DOUBLE_EQ(grad[0][0], 2.0);
  EXPECT_DOUBLE_EQ(grad[0][1], 0.0);
}

TEST(WeightedMseLossTest, GradientMatchesFiniteDifference) {
  Sequence pred = {{0.3, 0.7}, {0.1, 0.2}};
  Sequence target = {{0.5, 0.4}, {0.0, 0.9}};
  std::vector<double> weights = {1.5, 0.25};
  Sequence grad = WeightedMseLoss::Gradient(pred, target, weights);
  const double h = 1e-7;
  for (size_t t = 0; t < pred.size(); ++t) {
    for (size_t d = 0; d < pred[t].size(); ++d) {
      Sequence plus = pred, minus = pred;
      plus[t][d] += h;
      minus[t][d] -= h;
      double numeric = (WeightedMseLoss::Value(plus, target, weights) -
                        WeightedMseLoss::Value(minus, target, weights)) /
                       (2.0 * h);
      EXPECT_NEAR(grad[t][d], numeric, 1e-6);
    }
  }
}

TEST(WeightedMseLossTest, HigherWeightMeansLargerGradient) {
  Sequence pred = {{1.0}, {1.0}};
  Sequence target = {{0.0}, {0.0}};
  Sequence grad = WeightedMseLoss::Gradient(pred, target, {4.0, 1.0});
  EXPECT_GT(grad[0][0], grad[1][0]);
  EXPECT_DOUBLE_EQ(grad[0][0] / grad[1][0], 4.0);
}

}  // namespace
}  // namespace tamp::nn
