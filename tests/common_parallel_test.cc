// Tests of the deterministic parallel runtime (src/common/parallel):
// pool reuse across regions, exception propagation, nested-call safety,
// and the 1-thread == serial contract.
#include "common/parallel.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace tamp {
namespace {

/// Restores the configured thread count on scope exit so tests compose.
class ScopedThreads {
 public:
  explicit ScopedThreads(int threads) { SetParallelThreadCount(threads); }
  ~ScopedThreads() { SetParallelThreadCount(0); }
};

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ScopedThreads threads(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ZeroAndOneElementBatches) {
  ScopedThreads threads(4);
  ParallelFor(0, [](size_t) { FAIL() << "fn called for n = 0"; });
  int calls = 0;
  ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, PoolIsReusedAcrossManyRegions) {
  ScopedThreads threads(4);
  // Many back-to-back regions through the same lazily-started pool; a
  // pool that leaked workers or deadlocked on reuse would hang or die.
  for (int round = 0; round < 200; ++round) {
    std::atomic<long> sum{0};
    ParallelFor(64, [&](size_t i) {
      sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 64L * 63L / 2L);
  }
}

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  ScopedThreads threads(4);
  EXPECT_THROW(
      ParallelFor(128,
                  [&](size_t i) {
                    if (i == 77) throw std::runtime_error("worker failure");
                  }),
      std::runtime_error);
  try {
    ParallelFor(128, [&](size_t i) {
      if (i == 5) throw std::runtime_error("first of many");
    });
    FAIL() << "expected the worker exception to be rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "first of many");
  }
}

TEST(ParallelForTest, PoolSurvivesAnExceptionRegion) {
  ScopedThreads threads(4);
  EXPECT_THROW(ParallelFor(32, [](size_t) { throw std::logic_error("boom"); }),
               std::logic_error);
  // The pool must remain usable after a failed region.
  std::atomic<int> count{0};
  ParallelFor(32, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 32);
}

TEST(ParallelForTest, NestedCallsRunSeriallyInline) {
  ScopedThreads threads(4);
  EXPECT_FALSE(InParallelRegion());
  std::atomic<int> inner_total{0};
  ParallelFor(8, [&](size_t) {
    EXPECT_TRUE(InParallelRegion());
    // A nested region must not dispatch to the (busy) pool: it runs
    // inline on this thread, so it cannot deadlock.
    int local = 0;
    ParallelFor(16, [&](size_t) {
      EXPECT_TRUE(InParallelRegion());
      ++local;  // Serial inline: plain int is safe.
    });
    EXPECT_EQ(local, 16);
    inner_total.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_FALSE(InParallelRegion());
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ParallelForTest, OneThreadTakesTheSerialPath) {
  ScopedThreads threads(1);
  // Serial contract: runs on the calling thread, in index order, with no
  // pool involvement — observable as strictly increasing indices and no
  // InParallelRegion flag (the pool path would set it).
  std::vector<size_t> order;
  ParallelFor(64, [&](size_t i) {
    EXPECT_FALSE(InParallelRegion());
    order.push_back(i);
  });
  std::vector<size_t> expected(64);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ParallelThreadCountTest, OverrideWinsAndResetRestoresEnv) {
  SetParallelThreadCount(3);
  EXPECT_EQ(ParallelThreadCount(), 3);
  SetParallelThreadCount(0);
  EXPECT_GE(ParallelThreadCount(), 1);  // env / hardware fallback
}

TEST(ParallelThreadCountTest, ReadsTampThreadsEnv) {
  SetParallelThreadCount(0);
  ASSERT_EQ(setenv("TAMP_THREADS", "7", 1), 0);
  EXPECT_EQ(ParallelThreadCount(), 7);
  ASSERT_EQ(setenv("TAMP_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(ParallelThreadCount(), 1);  // garbage ignored, fallback
  ASSERT_EQ(unsetenv("TAMP_THREADS"), 0);
}

TEST(ParallelMapTest, ResultsLandAtTheirIndex) {
  ScopedThreads threads(4);
  std::vector<int> out =
      ParallelMap<int>(257, [](size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 257u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ParallelMapTest, ZeroOneAndFewerElementsThanThreads) {
  ScopedThreads threads(8);
  // n = 0: no fn call, empty result.
  std::vector<int> none = ParallelMap<int>(0, [](size_t) -> int {
    ADD_FAILURE() << "fn called for n = 0";
    return -1;
  });
  EXPECT_TRUE(none.empty());
  // n = 1 and n < thread count: every index lands at its slot exactly
  // once even when most workers have nothing to claim.
  std::vector<int> one = ParallelMap<int>(1, [](size_t i) {
    return static_cast<int>(i) + 41;
  });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 41);
  std::vector<int> few = ParallelMap<int>(3, [](size_t i) {
    return static_cast<int>(i * 10);
  });
  EXPECT_EQ(few, (std::vector<int>{0, 10, 20}));
}

TEST(ParallelOrderedReduceTest, ZeroOneAndFewerElementsThanThreads) {
  ScopedThreads threads(8);
  auto add = [](double acc, double part) { return acc + part; };
  // n = 0: the init value comes back untouched, no map call.
  double none = ParallelOrderedReduce<double, double>(
      0, 7.5,
      [](size_t) -> double {
        ADD_FAILURE() << "map_fn called for n = 0";
        return 0.0;
      },
      add);
  EXPECT_EQ(none, 7.5);
  auto square = [](size_t i) { return static_cast<double>(i * i); };
  double one = ParallelOrderedReduce<double, double>(1, 0.5, square, add);
  EXPECT_EQ(one, 0.5);
  // n = 5 < 8 threads: same serial fold as the index-order loop.
  double few = ParallelOrderedReduce<double, double>(5, 0.0, square, add);
  EXPECT_EQ(few, 0.0 + 1.0 + 4.0 + 9.0 + 16.0);
}

TEST(ParallelOrderedReduceTest, BitIdenticalToSerialAtAnyThreadCount) {
  // A reduction whose value depends on accumulation order: summing
  // magnitudes of very different scale. The ordered reduce must give the
  // exact serial result for every thread count.
  auto map_fn = [](size_t i) {
    return (i % 3 == 0) ? 1e-9 * static_cast<double>(i)
                        : 1e6 / (static_cast<double>(i) + 1.0);
  };
  auto reduce_fn = [](double acc, double part) { return acc + part; };
  constexpr size_t kN = 2048;

  double serial = 0.0;
  for (size_t i = 0; i < kN; ++i) serial = reduce_fn(serial, map_fn(i));

  for (int threads : {1, 2, 4, 8}) {
    ScopedThreads scoped(threads);
    double parallel = ParallelOrderedReduce<double, double>(
        kN, 0.0, map_fn, reduce_fn);
    EXPECT_EQ(parallel, serial) << "threads = " << threads;
  }
}

}  // namespace
}  // namespace tamp
