#include "cluster/task_tree.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tamp::cluster {
namespace {

/// Factor 1 separates {0..5} vs {6..11}; factor 2 separates even vs odd
/// within each half.
similarity::PairwiseSimilarity HalvesFactor() {
  return similarity::PairwiseSimilarity(12, [](int i, int j) {
    return (i < 6) == (j < 6) ? 0.8 : 0.05;
  });
}

similarity::PairwiseSimilarity ParityFactor() {
  return similarity::PairwiseSimilarity(12, [](int i, int j) {
    return (i % 2) == (j % 2) ? 0.9 : 0.1;
  });
}

TaskTreeConfig DefaultConfig() {
  TaskTreeConfig config;
  config.game.k = 2;
  config.game.gamma = 0.2;
  config.thresholds = {0.95, 0.95};  // Always refine while factors remain.
  return config;
}

TEST(TaskTreeTest, SingleFactorBuildsOneLevel) {
  auto f1 = HalvesFactor();
  tamp::Rng rng(3);
  auto root = BuildLearningTaskTree({&f1}, DefaultConfig(), rng);
  ASSERT_NE(root, nullptr);
  EXPECT_TRUE(ValidateTree(*root));
  EXPECT_EQ(root->tasks.size(), 12u);
  EXPECT_EQ(root->children.size(), 2u);
  EXPECT_EQ(CountLeaves(*root), 2);
  EXPECT_EQ(CountNodes(*root), 3);
}

TEST(TaskTreeTest, TwoFactorsBuildTwoLevels) {
  auto f1 = HalvesFactor();
  auto f2 = ParityFactor();
  tamp::Rng rng(5);
  auto root = BuildLearningTaskTree({&f1, &f2}, DefaultConfig(), rng);
  EXPECT_TRUE(ValidateTree(*root));
  // Level 1 splits halves; level 2 splits each half by parity -> 4 leaves.
  EXPECT_EQ(CountLeaves(*root), 4);
  for (const auto* leaf : CollectLeaves(*root)) {
    EXPECT_EQ(leaf->depth, 2);
    // Each leaf is one parity within one half.
    std::set<int> parities, halves;
    for (int t : leaf->tasks) {
      parities.insert(t % 2);
      halves.insert(t < 6 ? 0 : 1);
    }
    EXPECT_EQ(parities.size(), 1u);
    EXPECT_EQ(halves.size(), 1u);
  }
}

TEST(TaskTreeTest, HighQualityClustersStopRefining) {
  auto f1 = HalvesFactor();
  auto f2 = ParityFactor();
  TaskTreeConfig config = DefaultConfig();
  // Threshold below the halves' quality (0.8): level-1 children are good
  // enough, so factor 2 is never used.
  config.thresholds = {0.5};
  tamp::Rng rng(7);
  auto root = BuildLearningTaskTree({&f1, &f2}, config, rng);
  EXPECT_TRUE(ValidateTree(*root));
  EXPECT_EQ(CountLeaves(*root), 2);
  for (const auto* leaf : CollectLeaves(*root)) {
    EXPECT_EQ(leaf->depth, 1);
  }
}

TEST(TaskTreeTest, LeavesPartitionTheRoot) {
  auto f1 = HalvesFactor();
  auto f2 = ParityFactor();
  tamp::Rng rng(9);
  auto root = BuildLearningTaskTree({&f1, &f2}, DefaultConfig(), rng);
  std::set<int> leaf_tasks;
  for (const auto* leaf : CollectLeaves(*root)) {
    for (int t : leaf->tasks) {
      EXPECT_TRUE(leaf_tasks.insert(t).second);
    }
  }
  EXPECT_EQ(leaf_tasks.size(), 12u);
}

TEST(TaskTreeTest, KMedoidsVariantAlsoBuildsValidTree) {
  auto f1 = HalvesFactor();
  auto f2 = ParityFactor();
  TaskTreeConfig config = DefaultConfig();
  config.use_game = false;  // The GTTAML-GT ablation.
  tamp::Rng rng(11);
  auto root = BuildLearningTaskTree({&f1, &f2}, config, rng);
  EXPECT_TRUE(ValidateTree(*root));
  EXPECT_GE(CountLeaves(*root), 2);
}

TEST(TaskTreeTest, MutableAndConstLeafCollectionAgree) {
  auto f1 = HalvesFactor();
  tamp::Rng rng(13);
  auto root = BuildLearningTaskTree({&f1}, DefaultConfig(), rng);
  auto const_leaves = CollectLeaves(static_cast<const TaskTreeNode&>(*root));
  auto mutable_leaves = CollectLeaves(*root);
  EXPECT_EQ(const_leaves.size(), mutable_leaves.size());
}

TEST(TaskTreeTest, ChildrenInheritParentTheta) {
  auto f1 = HalvesFactor();
  TaskTreeConfig config = DefaultConfig();
  tamp::Rng rng(17);
  // The root theta is empty at build time; Alg. 1 line 15 copies it.
  auto root = BuildLearningTaskTree({&f1}, config, rng);
  for (const auto& child : root->children) {
    EXPECT_EQ(child->theta, root->theta);
    EXPECT_EQ(child->parent, root.get());
  }
}

TEST(ValidateTreeTest, DetectsBrokenPartition) {
  TaskTreeNode root;
  root.tasks = {0, 1, 2};
  auto child = std::make_unique<TaskTreeNode>();
  child->tasks = {0, 1};  // Task 2 missing.
  child->parent = &root;
  child->depth = 1;
  root.children.push_back(std::move(child));
  EXPECT_FALSE(ValidateTree(root));
}

}  // namespace
}  // namespace tamp::cluster
