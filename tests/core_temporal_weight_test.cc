// The temporal extension of the task-assignment-oriented loss (the
// "future work" the paper's Section III-C explicitly scopes out): weights
// follow the time-of-day structure of historical demand.
#include <gtest/gtest.h>

#include "core/ta_loss.h"

namespace tamp::core {
namespace {

geo::GridSpec TestGrid() { return geo::GridSpec(10.0, 10.0, 20, 20); }

/// Morning demand at (2,2), evening demand at (8,8).
std::vector<geo::TimedPoint> SplitDemand() {
  std::vector<geo::TimedPoint> tasks;
  for (int i = 0; i < 30; ++i) {
    tasks.push_back({{2.0, 2.0}, 9.0 * 60.0 + i});    // ~09:00.
    tasks.push_back({{8.0, 8.0}, 19.0 * 60.0 + i});   // ~19:00.
  }
  return tasks;
}

TaLossParams WindowedParams() {
  TaLossParams params;
  params.temporal_window_min = 90.0;
  return params;
}

TEST(TemporalWeightTest, DisabledWindowFallsBackToSpatialWeight) {
  TaLossParams params;  // temporal_window_min = 0.
  TaskOrientedWeighter weighter(TestGrid(), SplitDemand(), params);
  EXPECT_DOUBLE_EQ(weighter.WeightAt({2.0, 2.0}, 9.0 * 60.0),
                   weighter.Weight({2.0, 2.0}));
}

TEST(TemporalWeightTest, UntimedConstructionFallsBack) {
  std::vector<geo::Point> locations = {{2, 2}, {8, 8}};
  TaskOrientedWeighter weighter(TestGrid(), locations, WindowedParams());
  EXPECT_DOUBLE_EQ(weighter.WeightAt({2.0, 2.0}, 600.0),
                   weighter.Weight({2.0, 2.0}));
}

TEST(TemporalWeightTest, MorningHotspotOnlyWeighsInTheMorning) {
  TaskOrientedWeighter weighter(TestGrid(), SplitDemand(), WindowedParams());
  double morning = weighter.WeightAt({2.0, 2.0}, 9.0 * 60.0);
  double evening = weighter.WeightAt({2.0, 2.0}, 19.0 * 60.0);
  EXPECT_GT(morning, evening);
  // In the evening the morning hotspot carries only the base weight.
  EXPECT_DOUBLE_EQ(evening, WindowedParams().delta);
}

TEST(TemporalWeightTest, EveningHotspotMirrors) {
  TaskOrientedWeighter weighter(TestGrid(), SplitDemand(), WindowedParams());
  EXPECT_GT(weighter.WeightAt({8.0, 8.0}, 19.0 * 60.0),
            weighter.WeightAt({8.0, 8.0}, 9.0 * 60.0));
}

TEST(TemporalWeightTest, WindowWrapsAroundMidnight) {
  std::vector<geo::TimedPoint> late_demand;
  for (int i = 0; i < 20; ++i) {
    late_demand.push_back({{5.0, 5.0}, 23.5 * 60.0 + i * 0.1});  // ~23:30.
  }
  TaskOrientedWeighter weighter(TestGrid(), late_demand, WindowedParams());
  // Half past midnight is within 90 minutes of 23:30 across the wrap.
  double after_midnight = weighter.WeightAt({5.0, 5.0}, 0.5 * 60.0);
  double noon = weighter.WeightAt({5.0, 5.0}, 12.0 * 60.0);
  EXPECT_GT(after_midnight, noon);
}

TEST(TemporalWeightTest, AbsoluteTimesReduceToTimeOfDay) {
  TaskOrientedWeighter weighter(TestGrid(), SplitDemand(), WindowedParams());
  // Day 3, 09:00 == day 0, 09:00.
  EXPECT_DOUBLE_EQ(weighter.WeightAt({2.0, 2.0}, 3.0 * 1440.0 + 540.0),
                   weighter.WeightAt({2.0, 2.0}, 540.0));
}

TEST(TemporalWeightTest, CapStillApplies) {
  std::vector<geo::TimedPoint> stacked(400, {{3.0, 3.0}, 600.0});
  TaLossParams params = WindowedParams();
  params.max_weight = 4.0;
  TaskOrientedWeighter weighter(TestGrid(), stacked, params);
  EXPECT_DOUBLE_EQ(weighter.WeightAt({3.0, 3.0}, 600.0), 4.0);
}

}  // namespace
}  // namespace tamp::core
