#include "geo/grid.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/point.h"

namespace tamp::geo {
namespace {

TEST(PointTest, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(DistanceSquared({0, 0}, {3, 4}), 25.0);
}

TEST(PointTest, Arithmetic) {
  Point p = Point{1, 2} + Point{3, 4};
  EXPECT_EQ(p, (Point{4, 6}));
  Point q = Point{3, 4} - Point{1, 1};
  EXPECT_EQ(q, (Point{2, 3}));
  Point r = Point{1, 2} * 2.0;
  EXPECT_EQ(r, (Point{2, 4}));
}

TEST(GridSpecTest, PaperGridShape) {
  // The paper's 100x50 Porto grid: 100 latitude rows, 50 longitude cols.
  GridSpec grid(20.0, 10.0, 50, 100);
  EXPECT_EQ(grid.num_cells(), 5000);
}

TEST(GridSpecTest, CellOfCorners) {
  GridSpec grid(10.0, 10.0, 10, 10);
  EXPECT_EQ(grid.CellOf({0.0, 0.0}).row, 0);
  EXPECT_EQ(grid.CellOf({0.0, 0.0}).col, 0);
  GridCell far = grid.CellOf({9.99, 9.99});
  EXPECT_EQ(far.row, 9);
  EXPECT_EQ(far.col, 9);
  // The far border clamps into the last cell.
  GridCell border = grid.CellOf({10.0, 10.0});
  EXPECT_EQ(border.row, 9);
  EXPECT_EQ(border.col, 9);
}

TEST(GridSpecTest, OutOfBoundsClampsToBorder) {
  GridSpec grid(10.0, 10.0, 10, 10);
  GridCell c = grid.CellOf({-5.0, 100.0});
  EXPECT_EQ(c.col, 0);
  EXPECT_EQ(c.row, 9);
}

TEST(GridSpecTest, CellCenterRoundTrip) {
  GridSpec grid(10.0, 20.0, 4, 5);
  for (int row = 0; row < 4; ++row) {
    for (int col = 0; col < 5; ++col) {
      Point center = grid.CellCenter({row, col});
      GridCell back = grid.CellOf(center);
      EXPECT_EQ(back.row, row);
      EXPECT_EQ(back.col, col);
    }
  }
}

TEST(GridSpecTest, FlatIndexIsBijective) {
  GridSpec grid(10.0, 10.0, 3, 7);
  std::vector<bool> seen(grid.num_cells(), false);
  for (int row = 0; row < 3; ++row) {
    for (int col = 0; col < 7; ++col) {
      int idx = grid.FlatIndex({row, col});
      ASSERT_GE(idx, 0);
      ASSERT_LT(idx, grid.num_cells());
      EXPECT_FALSE(seen[idx]);
      seen[idx] = true;
    }
  }
}

TEST(GridSpecTest, NormalizeDenormalizeRoundTrip) {
  GridSpec grid(20.0, 10.0, 50, 100);
  tamp::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    Point p{rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 10.0)};
    Point n = grid.Normalize(p);
    EXPECT_GE(n.x, 0.0);
    EXPECT_LE(n.x, 1.0);
    EXPECT_GE(n.y, 0.0);
    EXPECT_LE(n.y, 1.0);
    Point back = grid.Denormalize(n);
    EXPECT_NEAR(back.x, p.x, 1e-9);
    EXPECT_NEAR(back.y, p.y, 1e-9);
  }
}

TEST(GridSpecTest, DenormalizeClampsInput) {
  GridSpec grid(10.0, 10.0, 10, 10);
  Point p = grid.Denormalize({-0.5, 1.5});
  EXPECT_DOUBLE_EQ(p.x, 0.0);
  EXPECT_DOUBLE_EQ(p.y, 10.0);
}

}  // namespace
}  // namespace tamp::geo
