#include "core/simulator.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "data/workload.h"

namespace tamp::core {
namespace {

data::WorkloadConfig SmallWorkload() {
  data::WorkloadConfig config;
  config.num_workers = 12;
  config.num_train_days = 2;
  config.num_tasks = 60;
  config.num_historical_tasks = 300;
  config.seed = 33;
  return config;
}

PipelineConfig SmallPipeline() {
  PipelineConfig config;
  config.trainer.model.hidden_dim = 6;
  config.trainer.meta.iterations = 3;
  config.trainer.fine_tune_steps = 3;
  config.trainer.projection_dim = 8;
  config.trainer.tree.game.k = 2;
  config.sim.prediction_horizon_steps = 4;
  config.sim.ggpso.generations = 10;
  config.sim.ggpso.population = 10;
  return config;
}

/// Shared fixture: one workload, one offline training pass.
class SimulatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new data::Workload(data::GenerateWorkload(SmallWorkload()));
    pipeline_ = new TampPipeline(SmallPipeline());
    offline_ = new OfflineResult(pipeline_->TrainOffline(*workload_));
  }
  static void TearDownTestSuite() {
    delete offline_;
    delete pipeline_;
    delete workload_;
    offline_ = nullptr;
    pipeline_ = nullptr;
    workload_ = nullptr;
  }

  static data::Workload* workload_;
  static TampPipeline* pipeline_;
  static OfflineResult* offline_;
};

data::Workload* SimulatorTest::workload_ = nullptr;
TampPipeline* SimulatorTest::pipeline_ = nullptr;
OfflineResult* SimulatorTest::offline_ = nullptr;

TEST_F(SimulatorTest, UpperBoundNeverRejected) {
  SimMetrics m =
      pipeline_->RunOnline(*workload_, *offline_, AssignMethod::kUpperBound);
  EXPECT_EQ(m.assignments, m.accepted);
  EXPECT_DOUBLE_EQ(m.RejectionRatio(), 0.0);
  EXPECT_GT(m.completed, 0);
}

TEST_F(SimulatorTest, MetricsAccountingIsConsistent) {
  for (AssignMethod method :
       {AssignMethod::kUpperBound, AssignMethod::kLowerBound,
        AssignMethod::kKm, AssignMethod::kPpi, AssignMethod::kGgpso}) {
    SimMetrics m = pipeline_->RunOnline(*workload_, *offline_, method);
    EXPECT_EQ(m.total_tasks, 60) << AssignMethodName(method);
    EXPECT_LE(m.accepted, m.assignments) << AssignMethodName(method);
    EXPECT_EQ(m.completed, m.accepted) << AssignMethodName(method);
    EXPECT_LE(m.completed, m.total_tasks) << AssignMethodName(method);
    EXPECT_GE(m.total_cost_km, 0.0) << AssignMethodName(method);
    EXPECT_GE(m.CompletionRatio(), 0.0);
    EXPECT_LE(m.CompletionRatio(), 1.0);
    EXPECT_GE(m.RejectionRatio(), 0.0);
    EXPECT_LE(m.RejectionRatio(), 1.0);
  }
}

TEST_F(SimulatorTest, UpperBoundDominatesLowerBoundOnCompletion) {
  SimMetrics ub =
      pipeline_->RunOnline(*workload_, *offline_, AssignMethod::kUpperBound);
  SimMetrics lb =
      pipeline_->RunOnline(*workload_, *offline_, AssignMethod::kLowerBound);
  EXPECT_GE(ub.CompletionRatio(), lb.CompletionRatio());
}

TEST_F(SimulatorTest, AcceptedDetoursRespectBudgets) {
  // Every accepted assignment's cost is bounded by the (uniform) budget,
  // so the average cost is too.
  SimMetrics m = pipeline_->RunOnline(*workload_, *offline_, AssignMethod::kPpi);
  if (m.accepted > 0) {
    EXPECT_LE(m.AvgCostKm(), SmallWorkload().detour_budget_km + 1e-9);
  }
}

TEST_F(SimulatorTest, DeterministicAcrossRuns) {
  SimMetrics a = pipeline_->RunOnline(*workload_, *offline_, AssignMethod::kKm);
  SimMetrics b = pipeline_->RunOnline(*workload_, *offline_, AssignMethod::kKm);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_DOUBLE_EQ(a.total_cost_km, b.total_cost_km);
}

TEST_F(SimulatorTest, IncrementalModeMatchesIndexedBitIdentical) {
  // Full-horizon parity: --candidates=incremental must reproduce the
  // indexed metrics exactly — across the whole batch loop with real
  // worker churn (busy/offline windows), task expiry, and rejections —
  // for every predicting method, runs back-to-back through one pipeline
  // (so later runs replay earlier instants against a warm row cache).
  PipelineConfig incremental_config = SmallPipeline();
  incremental_config.sim.candidate_mode = core::CandidateMode::kIncremental;
  TampPipeline incremental_pipeline(incremental_config);
  for (AssignMethod method :
       {AssignMethod::kKm, AssignMethod::kPpi, AssignMethod::kGgpso}) {
    SimMetrics cold = pipeline_->RunOnline(*workload_, *offline_, method);
    SimMetrics warm =
        incremental_pipeline.RunOnline(*workload_, *offline_, method);
    EXPECT_EQ(cold.assignments, warm.assignments) << AssignMethodName(method);
    EXPECT_EQ(cold.accepted, warm.accepted) << AssignMethodName(method);
    EXPECT_EQ(cold.completed, warm.completed) << AssignMethodName(method);
    EXPECT_EQ(cold.total_cost_km, warm.total_cost_km)
        << AssignMethodName(method);
  }
}

TEST(PurgeExpiredTasksTest, DropsLargeBacklogInOnePassPreservingOrder) {
  // Regression: the old purge restarted the scan from begin() after every
  // erase (O(n^2) when a backlog expires at once). The single-pass purge
  // must drop every expired task and keep survivors in release order.
  std::deque<assign::SpatialTask> pool;
  for (int i = 0; i < 2000; ++i) {
    assign::SpatialTask task;
    task.id = i;
    task.release_time_min = static_cast<double>(i);
    // Interleave expired (even ids, deadline 5) and live (odd ids).
    task.deadline_min = (i % 2 == 0) ? 5.0 : 1e6;
    pool.push_back(task);
  }
  const size_t dropped = PurgeExpiredTasks(pool, /*now_min=*/10.0);
  EXPECT_EQ(dropped, 1000u);
  ASSERT_EQ(pool.size(), 1000u);
  for (size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(pool[i].id, static_cast<int>(2 * i + 1));
  }
}

TEST(PurgeExpiredTasksTest, DeadlineEqualToNowExpires) {
  // Matches EvaluateCandidate's strict deadline test: a task due exactly
  // now can no longer be served, so the pool must not keep it.
  std::deque<assign::SpatialTask> pool(1);
  pool[0].deadline_min = 10.0;
  EXPECT_EQ(PurgeExpiredTasks(pool, 10.0), 1u);
  EXPECT_TRUE(pool.empty());
}

TEST(AssignMethodNameTest, AllNamed) {
  EXPECT_EQ(AssignMethodName(AssignMethod::kUpperBound), "UB");
  EXPECT_EQ(AssignMethodName(AssignMethod::kLowerBound), "LB");
  EXPECT_EQ(AssignMethodName(AssignMethod::kKm), "KM");
  EXPECT_EQ(AssignMethodName(AssignMethod::kPpi), "PPI");
  EXPECT_EQ(AssignMethodName(AssignMethod::kGgpso), "GGPSO");
}

TEST(SimMetricsTest, RatiosHandleZeroDenominators) {
  SimMetrics m;
  EXPECT_EQ(m.CompletionRatio(), 0.0);
  EXPECT_EQ(m.RejectionRatio(), 0.0);
  EXPECT_EQ(m.AvgCostKm(), 0.0);
}

}  // namespace
}  // namespace tamp::core
