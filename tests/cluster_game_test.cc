#include "cluster/game_clustering.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "similarity/cluster_quality.h"

namespace tamp::cluster {
namespace {

/// Two clean groups {0..4} and {5..9}.
similarity::PairwiseSimilarity TwoGroups() {
  return similarity::PairwiseSimilarity(10, [](int i, int j) {
    return (i < 5) == (j < 5) ? 0.85 : 0.05;
  });
}

std::vector<int> AllItems(int n) {
  std::vector<int> items(n);
  for (int i = 0; i < n; ++i) items[i] = i;
  return items;
}

GameClusteringConfig DefaultConfig() {
  GameClusteringConfig config;
  config.k = 4;
  config.gamma = 0.2;
  return config;
}

void ExpectPartition(const GameClusteringResult& result, int n) {
  std::set<int> seen;
  for (const auto& cluster : result.clusters) {
    EXPECT_FALSE(cluster.empty());
    for (int item : cluster) {
      EXPECT_TRUE(seen.insert(item).second) << "duplicate item " << item;
    }
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(n));
}

TEST(GameTheoreticClusterTest, PartitionsAllItems) {
  auto sim = TwoGroups();
  tamp::Rng rng(3);
  auto result =
      GameTheoreticCluster(sim, AllItems(10), DefaultConfig(), rng);
  ExpectPartition(result, 10);
}

TEST(GameTheoreticClusterTest, ReachesNashEquilibrium) {
  auto sim = TwoGroups();
  tamp::Rng rng(5);
  auto result =
      GameTheoreticCluster(sim, AllItems(10), DefaultConfig(), rng);
  EXPECT_TRUE(result.converged);
  EXPECT_GE(result.rounds, 1);
}

TEST(GameTheoreticClusterTest, PotentialIsMonotoneNonDecreasing) {
  // Theorem 1: the game is an exact potential game, so best-response moves
  // never decrease F = sum Q(G).
  tamp::Rng seed_rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    // Random similarity instance.
    std::vector<std::vector<double>> m(12, std::vector<double>(12, 0.0));
    for (int i = 0; i < 12; ++i) {
      for (int j = i + 1; j < 12; ++j) {
        m[i][j] = m[j][i] = seed_rng.Uniform01();
      }
    }
    similarity::PairwiseSimilarity sim(
        12, [&m](int i, int j) { return m[i][j]; });
    tamp::Rng rng(100 + trial);
    auto result = GameTheoreticCluster(sim, AllItems(12), DefaultConfig(), rng);
    for (size_t s = 1; s < result.potential_history.size(); ++s) {
      EXPECT_GE(result.potential_history[s],
                result.potential_history[s - 1] - 1e-9)
          << "potential decreased at sweep " << s;
    }
  }
}

TEST(GameTheoreticClusterTest, SeparatesTheTwoGroups) {
  auto sim = TwoGroups();
  tamp::Rng rng(11);
  GameClusteringConfig config = DefaultConfig();
  config.k = 2;
  auto result = GameTheoreticCluster(sim, AllItems(10), config, rng);
  ASSERT_EQ(result.clusters.size(), 2u);
  for (const auto& cluster : result.clusters) {
    bool low = std::all_of(cluster.begin(), cluster.end(),
                           [](int i) { return i < 5; });
    bool high = std::all_of(cluster.begin(), cluster.end(),
                            [](int i) { return i >= 5; });
    EXPECT_TRUE(low || high) << "mixed cluster";
  }
}

TEST(GameTheoreticClusterTest, NashCertificate) {
  // At equilibrium no player can strictly improve by moving (checked via
  // the reference JoinUtility implementation).
  auto sim = TwoGroups();
  tamp::Rng rng(13);
  GameClusteringConfig config = DefaultConfig();
  auto result = GameTheoreticCluster(sim, AllItems(10), config, rng);
  ASSERT_TRUE(result.converged);
  for (size_t c = 0; c < result.clusters.size(); ++c) {
    for (int player : result.clusters[c]) {
      // Current utility: Q(G) - Q(G \ {player}).
      std::vector<int> without = result.clusters[c];
      without.erase(std::find(without.begin(), without.end(), player));
      double stay = similarity::JoinUtility(sim, without, player, config.gamma);
      for (size_t other = 0; other < result.clusters.size(); ++other) {
        if (other == c) continue;
        double join = similarity::JoinUtility(sim, result.clusters[other],
                                              player, config.gamma);
        EXPECT_LE(join, stay + 1e-9)
            << "player " << player << " would move " << c << "->" << other;
      }
    }
  }
}

TEST(GameTheoreticClusterTest, SingleItem) {
  similarity::PairwiseSimilarity sim(1, [](int, int) { return 1.0; });
  tamp::Rng rng(17);
  auto result = GameTheoreticCluster(sim, {0}, DefaultConfig(), rng);
  ASSERT_EQ(result.clusters.size(), 1u);
  EXPECT_EQ(result.clusters[0], std::vector<int>{0});
}

TEST(GameTheoreticClusterTest, WorksOnItemSubsets) {
  // Items need not be 0..n-1: pass global learning-task ids.
  auto sim = TwoGroups();
  tamp::Rng rng(19);
  std::vector<int> subset = {1, 3, 6, 8};
  auto result = GameTheoreticCluster(sim, subset, DefaultConfig(), rng);
  std::set<int> seen;
  for (const auto& cluster : result.clusters) {
    for (int item : cluster) seen.insert(item);
  }
  EXPECT_EQ(seen, std::set<int>(subset.begin(), subset.end()));
}

TEST(KMedoidsClusterTest, PartitionsWithoutGame) {
  auto sim = TwoGroups();
  tamp::Rng rng(23);
  auto result = KMedoidsCluster(sim, AllItems(10), DefaultConfig(), rng);
  ExpectPartition(result, 10);
  EXPECT_EQ(result.rounds, 0);
}

TEST(GameTheoreticClusterTest, GameNeverWorseThanInitOnPotential) {
  // The final potential must be >= the k-medoids initialization potential.
  auto sim = TwoGroups();
  tamp::Rng rng_a(29), rng_b(29);
  auto init = KMedoidsCluster(sim, AllItems(10), DefaultConfig(), rng_a);
  auto refined = GameTheoreticCluster(sim, AllItems(10), DefaultConfig(), rng_b);
  EXPECT_GE(refined.potential_history.back(),
            init.potential_history.front() - 1e-9);
}

}  // namespace
}  // namespace tamp::cluster
