#include "assign/sharding.h"

#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "assign/ggpso.h"
#include "assign/incremental.h"
#include "assign/km_assigner.h"
#include "assign/ppi.h"
#include "common/obs/metrics.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "data/workload.h"
#include "matching/hungarian.h"

namespace tamp::assign {
namespace {

SpatialTask MakeTask(int id, geo::Point loc, double deadline) {
  SpatialTask t;
  t.id = id;
  t.location = loc;
  t.deadline_min = deadline;
  return t;
}

CandidateWorker MakeWorker(int id, std::vector<geo::TimedPoint> predicted,
                           geo::Point current, double detour_km, double speed,
                           double mr) {
  CandidateWorker w;
  w.id = id;
  w.predicted = std::move(predicted);
  w.current_location = current;
  w.detour_budget_km = detour_km;
  w.speed_kmpm = speed;
  w.matching_rate = mr;
  return w;
}

/// Batch vectors whose ids equal their indices — enough for signature and
/// plan-structure tests that never evaluate geometry.
void IdentityBatch(int num_tasks, int num_workers,
                   std::vector<SpatialTask>* tasks,
                   std::vector<CandidateWorker>* workers) {
  tasks->clear();
  workers->clear();
  for (int t = 0; t < num_tasks; ++t) {
    tasks->push_back(MakeTask(t, {0.0, 0.0}, 100.0));
  }
  for (int w = 0; w < num_workers; ++w) {
    workers->push_back(MakeWorker(w, {}, {0.0, 0.0}, 4.0, 0.5, 0.5));
  }
}

/// A candidate table holding exactly the given (task, worker) rows.
std::vector<std::vector<TaskCandidate>> TableFromRows(
    int num_tasks, const std::vector<std::pair<int, int>>& rows) {
  std::vector<std::vector<TaskCandidate>> table(
      static_cast<size_t>(num_tasks));
  for (auto [t, w] : rows) {
    TaskCandidate tc;
    tc.worker = w;
    tc.stage3_feasible = true;
    table[static_cast<size_t>(t)].push_back(tc);
  }
  for (auto& row : table) {
    std::sort(row.begin(), row.end(),
              [](const TaskCandidate& a, const TaskCandidate& b) {
                return a.worker < b.worker;
              });
  }
  return table;
}

TEST(ShardPlanTest, ComponentsMembershipAndCountersOnHandBuiltTable) {
  // t0-w0, t0-w1, t1-w1 form one component; t2-w3 a second; t3 has no rows
  // and w2/w4 are never referenced, so all three stay unsharded.
  std::vector<SpatialTask> tasks;
  std::vector<CandidateWorker> workers;
  IdentityBatch(4, 5, &tasks, &workers);
  auto table = TableFromRows(4, {{0, 0}, {0, 1}, {1, 1}, {2, 3}});

  obs::Counter& count_counter =
      obs::MetricsRegistry::Global().GetCounter("assign.shard_count");
  const int64_t count_before = count_counter.value();
  ShardPlan plan = BuildShardPlan(table, tasks, workers);
  EXPECT_EQ(count_counter.value() - count_before, 2);

  ASSERT_EQ(plan.shards.size(), 2u);
  // LPT: the 3-row component costs 3*4=12, the 1-row one 1*2=2.
  EXPECT_EQ(plan.shards[0].tasks, (std::vector<int>{0, 1}));
  EXPECT_EQ(plan.shards[0].workers, (std::vector<int>{0, 1}));
  EXPECT_EQ(plan.shards[0].rows, 3);
  EXPECT_EQ(plan.shards[0].cost, 12);
  EXPECT_EQ(plan.shards[1].tasks, (std::vector<int>{2}));
  EXPECT_EQ(plan.shards[1].workers, (std::vector<int>{3}));
  EXPECT_EQ(plan.shards[1].rows, 1);
  EXPECT_EQ(plan.shard_of_task, (std::vector<int>{0, 0, 1, -1}));
  EXPECT_EQ(plan.shard_of_worker, (std::vector<int>{0, 0, -1, 1, -1}));
  EXPECT_EQ(plan.total_rows, 4);
  EXPECT_EQ(plan.max_rows, 3);
  EXPECT_NE(plan.shards[0].signature, plan.shards[1].signature);
}

TEST(ShardPlanTest, LptOrdersShardsByCostDescending) {
  // First-appearing component is the cheap one; LPT must still put the
  // expensive one first.
  std::vector<SpatialTask> tasks;
  std::vector<CandidateWorker> workers;
  IdentityBatch(4, 4, &tasks, &workers);
  auto table =
      TableFromRows(4, {{0, 0}, {1, 1}, {1, 2}, {2, 1}, {3, 2}});
  ShardPlan plan = BuildShardPlan(table, tasks, workers);
  ASSERT_EQ(plan.shards.size(), 2u);
  EXPECT_GT(plan.shards[0].cost, plan.shards[1].cost);
  EXPECT_EQ(plan.shards[0].tasks, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(plan.shards[1].tasks, (std::vector<int>{0}));
  EXPECT_EQ(plan.shard_of_task, (std::vector<int>{1, 0, 0, 0}));
}

TEST(ShardPlanTest, SignatureTracksStableIdsNotBatchPositions) {
  // The same membership (by id) reshuffled to different batch positions
  // keeps its signature; adding one worker to the membership changes it.
  std::vector<SpatialTask> tasks;
  std::vector<CandidateWorker> workers;
  IdentityBatch(2, 3, &tasks, &workers);
  auto table_a = TableFromRows(2, {{0, 0}, {0, 1}, {1, 1}});
  ShardPlan plan_a = BuildShardPlan(table_a, tasks, workers);
  ASSERT_EQ(plan_a.shards.size(), 1u);

  // Same ids, permuted worker batch order: worker id 0 now at index 2,
  // id 1 at index 0, and an unrelated id 2 at index 1.
  std::vector<CandidateWorker> permuted = {workers[1], workers[2],
                                           workers[0]};
  auto table_b = TableFromRows(2, {{0, 0}, {0, 2}, {1, 0}});
  ShardPlan plan_b = BuildShardPlan(table_b, tasks, permuted);
  ASSERT_EQ(plan_b.shards.size(), 1u);
  EXPECT_EQ(plan_a.shards[0].signature, plan_b.shards[0].signature);

  // Grow the membership by worker id 2: different signature.
  auto table_c = TableFromRows(2, {{0, 0}, {0, 1}, {1, 1}, {1, 2}});
  ShardPlan plan_c = BuildShardPlan(table_c, tasks, workers);
  ASSERT_EQ(plan_c.shards.size(), 1u);
  EXPECT_NE(plan_a.shards[0].signature, plan_c.shards[0].signature);
}

TEST(ShardWarmPoolTest, EvictsOnlyWhenTheIncomingBatchWouldOverflow) {
  ShardWarmPool pool;
  pool.BeginBatch(2);
  matching::KmWarmState* a = pool.Acquire(1);
  matching::KmWarmState* b = pool.Acquire(2);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.size(), 2u);
  pool.BeginBatch(10);  // Fits: nothing evicted, holders stable.
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.Acquire(1), a);
  pool.BeginBatch(4095);  // 2 + 4095 > 4096: everything evicted.
  EXPECT_EQ(pool.size(), 0u);
}

void ExpectSameMatch(const matching::MatchResult& a,
                     const matching::MatchResult& b) {
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (size_t i = 0; i < a.pairs.size(); ++i) {
    EXPECT_EQ(a.pairs[i], b.pairs[i]) << "pair " << i;
  }
  EXPECT_EQ(a.total_weight, b.total_weight);  // Bitwise, not approximate.
}

TEST(ShardedMatchingTest, BruteForceRandomGraphParityAtEveryThreadCount) {
  // The acceptance property: on random candidate graphs the sharded solve
  // is bitwise-equal (pairs and total) to the global KM, at 1/2/4/8
  // threads. Duplicate edges (max wins) and non-positive edges (dropped)
  // are sprinkled in because the global matcher handles both.
  tamp::Rng rng(808);
  for (int trial = 0; trial < 25; ++trial) {
    const int num_tasks = 1 + static_cast<int>(rng.UniformInt(0, 11));
    const int num_workers = 1 + static_cast<int>(rng.UniformInt(0, 11));
    const double density = rng.Uniform(0.05, 0.4);
    std::vector<matching::Edge> edges;
    std::vector<std::pair<int, int>> rows;
    for (int t = 0; t < num_tasks; ++t) {
      for (int w = 0; w < num_workers; ++w) {
        if (!rng.Bernoulli(density)) continue;
        edges.push_back({t, w, rng.Uniform(0.1, 5.0)});
        rows.emplace_back(t, w);
        if (rng.Bernoulli(0.1)) {  // Duplicate: the max must win.
          edges.push_back({t, w, rng.Uniform(0.1, 5.0)});
        }
      }
    }
    if (rng.Bernoulli(0.5) && !rows.empty()) {
      // A non-positive edge: both solvers drop it (no table row needed).
      edges.push_back({rows[0].first, rows[0].second, 0.0});
    }
    std::vector<SpatialTask> tasks;
    std::vector<CandidateWorker> workers;
    IdentityBatch(num_tasks, num_workers, &tasks, &workers);
    auto table = TableFromRows(num_tasks, rows);
    ShardPlan plan = BuildShardPlan(table, tasks, workers);

    matching::MatchResult global =
        matching::MaxWeightMatching(num_tasks, num_workers, edges);
    for (int threads : {1, 2, 4, 8}) {
      SetParallelThreadCount(threads);
      matching::MatchResult sharded = ShardedMaxWeightMatching(
          num_tasks, num_workers, edges, plan);
      ExpectSameMatch(global, sharded);
    }
    SetParallelThreadCount(0);
  }
}

TEST(ShardedMatchingTest, WarmPoolUnderWorkerPermutationStaysBitIdentical) {
  // Satellite-1 regression: the same memberships come back batch after
  // batch but the worker *batch order* permutes — so the warm holder found
  // by signature faces a different column ordering. The bitwise row-prefix
  // gate must recompute rather than silently resume, keeping the plan
  // identical to the cold and global solves on every batch.
  tamp::Rng rng(4242);
  const int num_tasks = 10, num_workers = 12;
  // Id-level weights, fixed across batches.
  std::vector<std::vector<double>> weight_of_ids(
      num_tasks, std::vector<double>(num_workers, 0.0));
  for (int t = 0; t < num_tasks; ++t) {
    for (int w = 0; w < num_workers; ++w) {
      if (rng.Bernoulli(0.3)) weight_of_ids[t][w] = rng.Uniform(0.1, 5.0);
    }
  }
  std::vector<SpatialTask> tasks;
  std::vector<CandidateWorker> id_workers;
  IdentityBatch(num_tasks, num_workers, &tasks, &id_workers);

  ShardWarmPool pool;
  std::vector<int> perm(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) perm[static_cast<size_t>(w)] = w;
  for (int batch = 0; batch < 6; ++batch) {
    // A fresh worker order each batch (batch 0 is the identity).
    if (batch > 0) rng.Shuffle(perm);
    std::vector<CandidateWorker> workers;
    for (int idx : perm) {
      workers.push_back(id_workers[static_cast<size_t>(idx)]);
    }
    std::vector<matching::Edge> edges;
    std::vector<std::pair<int, int>> rows;
    for (int t = 0; t < num_tasks; ++t) {
      for (int w = 0; w < num_workers; ++w) {
        const int id = workers[static_cast<size_t>(w)].id;
        const double weight =
            weight_of_ids[static_cast<size_t>(t)][static_cast<size_t>(id)];
        if (weight <= 0.0) continue;
        edges.push_back({t, w, weight});
        rows.emplace_back(t, w);
      }
    }
    auto table = TableFromRows(num_tasks, rows);
    ShardPlan plan = BuildShardPlan(table, tasks, workers);
    matching::MatchResult global =
        matching::MaxWeightMatching(num_tasks, num_workers, edges);
    matching::MatchResult cold =
        ShardedMaxWeightMatching(num_tasks, num_workers, edges, plan);
    matching::MatchResult warm = ShardedMaxWeightMatching(
        num_tasks, num_workers, edges, plan, &pool);
    ExpectSameMatch(global, cold);
    ExpectSameMatch(global, warm);
    EXPECT_GT(pool.size(), 0u);
  }
}

TEST(ShardedMatchingTest, DegenerateInputsReturnEmptyWithoutSolving) {
  std::vector<SpatialTask> tasks;
  std::vector<CandidateWorker> workers;

  // Empty everything.
  IdentityBatch(0, 0, &tasks, &workers);
  ShardPlan empty_plan = BuildShardPlan({}, tasks, workers);
  EXPECT_TRUE(empty_plan.shards.empty());
  matching::MatchResult r = ShardedMaxWeightMatching(0, 0, {}, empty_plan);
  EXPECT_TRUE(r.pairs.empty());
  EXPECT_EQ(r.total_weight, 0.0);

  // Rows exist but every edge weight is non-positive: all shards end up
  // edgeless and the result is empty, exactly like the global matcher.
  IdentityBatch(2, 2, &tasks, &workers);
  auto table = TableFromRows(2, {{0, 0}, {1, 1}});
  ShardPlan plan = BuildShardPlan(table, tasks, workers);
  ASSERT_EQ(plan.shards.size(), 2u);
  std::vector<matching::Edge> filtered = {{0, 0, 0.0}, {1, 1, -1.0}};
  r = ShardedMaxWeightMatching(2, 2, filtered, plan);
  EXPECT_TRUE(r.pairs.empty());
  EXPECT_EQ(r.total_weight, 0.0);

  // 1xN: one task, several workers — a single-shard matching.
  IdentityBatch(1, 3, &tasks, &workers);
  auto one_row = TableFromRows(1, {{0, 0}, {0, 1}, {0, 2}});
  ShardPlan one_plan = BuildShardPlan(one_row, tasks, workers);
  std::vector<matching::Edge> one_edges = {
      {0, 0, 1.0}, {0, 1, 3.0}, {0, 2, 2.0}};
  matching::MatchResult one =
      ShardedMaxWeightMatching(1, 3, one_edges, one_plan);
  matching::MatchResult one_global = matching::MaxWeightMatching(1, 3,
                                                                 one_edges);
  ExpectSameMatch(one_global, one);
  ASSERT_EQ(one.pairs.size(), 1u);
  EXPECT_EQ(one.pairs[0], (std::pair<int, int>{0, 1}));
}

/// Workload-scale sharded-vs-global plan parity (the ISSUE acceptance
/// gate): KM, PPI, and GGPSO on Porto and Gowalla batches at 1 and 4
/// threads, with and without incremental reuse. Mirrors the churn schedule
/// of assign_incremental_test's IncrementalPlanParityTest.
class ShardingPlanParityTest
    : public ::testing::TestWithParam<data::WorkloadKind> {
 protected:
  struct Batch {
    std::vector<SpatialTask> tasks;
    std::vector<CandidateWorker> workers;
    double now = 0.0;
  };

  static std::vector<Batch> BuildBatches(data::WorkloadKind kind) {
    data::WorkloadConfig config;
    config.kind = kind;
    config.num_workers = 50;
    config.num_train_days = 1;
    config.num_tasks = 300;
    config.num_historical_tasks = 50;
    config.seed = 4242;
    data::Workload workload = data::GenerateWorkload(config);

    const double start = workload.task_stream[workload.task_stream.size() / 2]
                             .release_time_min;
    std::vector<Batch> batches;
    for (int b = 0; b < 5; ++b) {
      Batch batch;
      batch.now = start + 2.0 * b;
      for (const SpatialTask& task : workload.task_stream) {
        if (task.release_time_min <= batch.now &&
            task.deadline_min > batch.now) {
          batch.tasks.push_back(task);
        }
      }
      for (size_t w = 0; w < workload.workers.size(); ++w) {
        // Churn: each batch a different ~1/5 of the fleet is offline, so
        // shard memberships change (and warm signatures with them).
        if ((static_cast<int>(w) + b) % 5 == 0) continue;
        const data::WorkerRecord& record = workload.workers[w];
        std::vector<geo::TimedPoint> pred;
        for (int s = 1; s <= 5; ++s) {
          const double t = batch.now + 10.0 * s;
          pred.push_back({record.test.PositionAt(t), t});
        }
        batch.workers.push_back(MakeWorker(
            record.id, std::move(pred), record.test.PositionAt(batch.now),
            record.detour_budget_km, record.speed_kmpm,
            0.2 + 0.6 * static_cast<double>(w) /
                      static_cast<double>(workload.workers.size())));
      }
      batches.push_back(std::move(batch));
    }
    return batches;
  }

  static void ExpectSamePlan(const AssignmentPlan& a,
                             const AssignmentPlan& b) {
    ASSERT_EQ(a.pairs.size(), b.pairs.size());
    for (size_t i = 0; i < a.pairs.size(); ++i) {
      EXPECT_EQ(a.pairs[i].task_index, b.pairs[i].task_index);
      EXPECT_EQ(a.pairs[i].worker_index, b.pairs[i].worker_index);
      EXPECT_EQ(a.pairs[i].expected_detour_km, b.pairs[i].expected_detour_km);
    }
  }
};

TEST_P(ShardingPlanParityTest, KmShardedAndGlobalBitIdentical) {
  std::vector<Batch> batches = BuildBatches(GetParam());
  for (int threads : {1, 4}) {
    SetParallelThreadCount(threads);
    AssignReuse reuse;
    bool any = false;
    for (const Batch& batch : batches) {
      AssignmentPlan global = KmAssign(batch.tasks, batch.workers, batch.now,
                                       /*match_radius_km=*/1.0,
                                       /*weight_floor_km=*/1e-3,
                                       /*use_spatial_index=*/true);
      AssignmentPlan sharded =
          KmAssign(batch.tasks, batch.workers, batch.now, 1.0, 1e-3, true,
                   /*reuse=*/nullptr, /*shard_components=*/true);
      AssignmentPlan sharded_warm =
          KmAssign(batch.tasks, batch.workers, batch.now, 1.0, 1e-3, true,
                   &reuse, /*shard_components=*/true);
      ExpectSamePlan(global, sharded);
      ExpectSamePlan(global, sharded_warm);
      any = any || !global.pairs.empty();
    }
    EXPECT_TRUE(any);
  }
  SetParallelThreadCount(0);
}

TEST_P(ShardingPlanParityTest, PpiShardedAndGlobalBitIdentical) {
  std::vector<Batch> batches = BuildBatches(GetParam());
  PpiConfig global_config;
  PpiConfig sharded_config;
  sharded_config.shard_components = true;
  for (int threads : {1, 4}) {
    SetParallelThreadCount(threads);
    AssignReuse reuse;
    bool any = false;
    for (const Batch& batch : batches) {
      AssignmentPlan global =
          PpiAssign(batch.tasks, batch.workers, batch.now, global_config);
      AssignmentPlan sharded =
          PpiAssign(batch.tasks, batch.workers, batch.now, sharded_config);
      AssignmentPlan sharded_warm = PpiAssign(
          batch.tasks, batch.workers, batch.now, sharded_config, &reuse);
      ExpectSamePlan(global, sharded);
      ExpectSamePlan(global, sharded_warm);
      any = any || !global.pairs.empty();
    }
    EXPECT_TRUE(any);
  }
  SetParallelThreadCount(0);
}

TEST_P(ShardingPlanParityTest, GgpsoFlagOnAndOffBitIdentical) {
  // GGPSO's sharding is record-only (GgpsoConfig doc): the flag must not
  // perturb the plan in any way.
  std::vector<Batch> batches = BuildBatches(GetParam());
  GgpsoConfig off;
  off.generations = 15;
  off.population = 12;
  GgpsoConfig on = off;
  on.shard_components = true;
  for (int threads : {1, 4}) {
    SetParallelThreadCount(threads);
    bool any = false;
    for (const Batch& batch : batches) {
      AssignmentPlan plan_off =
          GgpsoAssign(batch.tasks, batch.workers, batch.now, off);
      AssignmentPlan plan_on =
          GgpsoAssign(batch.tasks, batch.workers, batch.now, on);
      ExpectSamePlan(plan_off, plan_on);
      any = any || !plan_off.pairs.empty();
    }
    EXPECT_TRUE(any);
  }
  SetParallelThreadCount(0);
}

INSTANTIATE_TEST_SUITE_P(Workloads, ShardingPlanParityTest,
                         ::testing::Values(
                             data::WorkloadKind::kPortoDidi,
                             data::WorkloadKind::kGowallaFoursquare),
                         [](const auto& info) {
                           return info.param == data::WorkloadKind::kPortoDidi
                                      ? "Porto"
                                      : "Gowalla";
                         });

}  // namespace
}  // namespace tamp::assign
