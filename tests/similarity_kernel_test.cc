#include "similarity/kernel.h"

#include <gtest/gtest.h>

namespace tamp::similarity {
namespace {

SpatialKernelParams DefaultParams() {
  SpatialKernelParams p;
  p.bandwidth_km = 1.0;
  p.type_mismatch_factor = 0.5;
  return p;
}

TEST(PoiKernelTest, IdenticalPoisScoreOne) {
  geo::Poi v(1.0, 2.0, 3);
  EXPECT_DOUBLE_EQ(PoiKernel(v, v, DefaultParams()), 1.0);
}

TEST(PoiKernelTest, DecaysWithDistance) {
  SpatialKernelParams p = DefaultParams();
  geo::Poi a(0.0, 0.0, 1);
  double near = PoiKernel(a, {0.5, 0.0, 1}, p);
  double far = PoiKernel(a, {3.0, 0.0, 1}, p);
  EXPECT_GT(near, far);
  EXPECT_GT(near, 0.8);
  EXPECT_LT(far, 0.05);
}

TEST(PoiKernelTest, TypeMismatchAttenuates) {
  SpatialKernelParams p = DefaultParams();
  geo::Poi a(0.0, 0.0, 1);
  geo::Poi same(0.0, 0.0, 1);
  geo::Poi other(0.0, 0.0, 2);
  EXPECT_DOUBLE_EQ(PoiKernel(a, other, p),
                   p.type_mismatch_factor * PoiKernel(a, same, p));
}

TEST(PoiKernelTest, IsSymmetric) {
  SpatialKernelParams p = DefaultParams();
  geo::Poi a(0.0, 0.0, 1), b(1.5, 2.0, 3);
  EXPECT_DOUBLE_EQ(PoiKernel(a, b, p), PoiKernel(b, a, p));
}

TEST(PoiKernelTest, BandwidthControlsReach) {
  geo::Poi a(0.0, 0.0, 1), b(2.0, 0.0, 1);
  SpatialKernelParams narrow = DefaultParams();
  narrow.bandwidth_km = 0.5;
  SpatialKernelParams wide = DefaultParams();
  wide.bandwidth_km = 4.0;
  EXPECT_LT(PoiKernel(a, b, narrow), PoiKernel(a, b, wide));
}

TEST(SpatialSimilarityTest, EmptySequencesScoreZero) {
  geo::PoiSequence a = {{0, 0, 1}};
  EXPECT_EQ(SpatialSimilarity({}, a, DefaultParams()), 0.0);
  EXPECT_EQ(SpatialSimilarity(a, {}, DefaultParams()), 0.0);
  EXPECT_EQ(SpatialSimilarity({}, {}, DefaultParams()), 0.0);
}

TEST(SpatialSimilarityTest, IdenticalSequencesScoreHigh) {
  geo::PoiSequence a = {{1, 1, 0}, {1.2, 1.0, 0}};
  double sim = SpatialSimilarity(a, a, DefaultParams());
  EXPECT_GT(sim, 0.9);
  EXPECT_LE(sim, 1.0);
}

TEST(SpatialSimilarityTest, InRangeZeroOne) {
  geo::PoiSequence a = {{0, 0, 0}, {5, 5, 1}};
  geo::PoiSequence b = {{10, 10, 2}, {2, 3, 0}};
  double sim = SpatialSimilarity(a, b, DefaultParams());
  EXPECT_GE(sim, 0.0);
  EXPECT_LE(sim, 1.0);
}

TEST(SpatialSimilarityTest, NearbySequencesBeatsFarOnes) {
  SpatialKernelParams p = DefaultParams();
  geo::PoiSequence base = {{1, 1, 0}, {2, 1, 0}};
  geo::PoiSequence near = {{1.3, 1.1, 0}, {2.2, 0.8, 0}};
  geo::PoiSequence far = {{15, 8, 0}, {18, 9, 0}};
  EXPECT_GT(SpatialSimilarity(base, near, p), SpatialSimilarity(base, far, p));
}

TEST(SpatialSimilarityTest, IsSymmetric) {
  SpatialKernelParams p = DefaultParams();
  geo::PoiSequence a = {{0, 0, 0}, {1, 2, 1}};
  geo::PoiSequence b = {{3, 1, 1}};
  EXPECT_DOUBLE_EQ(SpatialSimilarity(a, b, p), SpatialSimilarity(b, a, p));
}

}  // namespace
}  // namespace tamp::similarity
