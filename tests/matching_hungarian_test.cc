#include "matching/hungarian.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tamp::matching {
namespace {

/// Exhaustive maximum-weight matching by trying every left->right injective
/// assignment (exponential; only for tiny instances).
double BruteForceBest(int num_left, int num_right,
                      const std::vector<Edge>& edges) {
  std::vector<std::vector<double>> w(num_left,
                                     std::vector<double>(num_right, 0.0));
  for (const Edge& e : edges) {
    if (e.weight > 0.0) w[e.left][e.right] = std::max(w[e.left][e.right], e.weight);
  }
  double best = 0.0;
  std::vector<int> rights(num_right);
  for (int i = 0; i < num_right; ++i) rights[i] = i;
  // Recursion over left vertices: match to any free right or stay single.
  std::vector<char> used(num_right, 0);
  std::function<void(int, double)> rec = [&](int left, double acc) {
    if (left == num_left) {
      best = std::max(best, acc);
      return;
    }
    rec(left + 1, acc);  // Leave `left` unmatched.
    for (int r = 0; r < num_right; ++r) {
      if (used[r] || w[left][r] <= 0.0) continue;
      used[r] = 1;
      rec(left + 1, acc + w[left][r]);
      used[r] = 0;
    }
  };
  rec(0, 0.0);
  return best;
}

void ExpectValidMatching(const MatchResult& result, int num_left,
                         int num_right) {
  std::set<int> lefts, rights;
  for (auto [l, r] : result.pairs) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, num_left);
    EXPECT_GE(r, 0);
    EXPECT_LT(r, num_right);
    EXPECT_TRUE(lefts.insert(l).second) << "duplicate left " << l;
    EXPECT_TRUE(rights.insert(r).second) << "duplicate right " << r;
  }
}

TEST(MinCostAssignmentTest, TwoByTwo) {
  auto result = MinCostAssignment({{1.0, 2.0}, {2.0, 1.0}});
  EXPECT_DOUBLE_EQ(result.total_cost, 2.0);
  EXPECT_EQ(result.col_of_row[0], 0);
  EXPECT_EQ(result.col_of_row[1], 1);
}

TEST(MinCostAssignmentTest, RectangularRowsLessThanCols) {
  auto result = MinCostAssignment({{5.0, 1.0, 9.0}});
  EXPECT_DOUBLE_EQ(result.total_cost, 1.0);
  EXPECT_EQ(result.col_of_row[0], 1);
}

TEST(MinCostAssignmentTest, ClassicExample) {
  // A well-known 3x3 instance with optimal cost 5 (1+3+1... verify):
  // rows choose (0,1)=2? Let's use a matrix with a known answer:
  //   [4 1 3]
  //   [2 0 5]
  //   [3 2 2]   optimum: 1 + 2 + 2 = 5.
  auto result = MinCostAssignment({{4, 1, 3}, {2, 0, 5}, {3, 2, 2}});
  EXPECT_DOUBLE_EQ(result.total_cost, 5.0);
}

TEST(MinCostAssignmentTest, ZeroRowMatrixIsADegenerateNoOp) {
  // A 0-row matrix returns empty without touching scratch or warm state
  // (the sharded path can hand a solver an edgeless shard after weight
  // filtering; resumable state from a previous larger solve must survive).
  auto result = MinCostAssignment({});
  EXPECT_TRUE(result.col_of_row.empty());
  EXPECT_EQ(result.total_cost, 0.0);

  MatchingScratch scratch;
  KmWarmState warm;
  std::vector<std::vector<double>> small = {
      {1.0, 4.0, 2.0}, {3.0, 1.0, 5.0}, {2.0, 2.0, 1.0}};
  auto cold = MinCostAssignment(small);
  (void)MinCostAssignment(small, &scratch, &warm);
  const std::vector<std::vector<double>> prev_cost_before = warm.prev_cost;
  const size_t checkpoints_before = warm.checkpoints.size();
  ASSERT_GT(checkpoints_before, 0u);

  (void)MinCostAssignment({}, &scratch, &warm);
  // Stored warm state is untouched by the degenerate call...
  EXPECT_EQ(warm.prev_cost, prev_cost_before);
  EXPECT_EQ(warm.checkpoints.size(), checkpoints_before);
  // ...and still resumes the original instance bitwise.
  auto resumed = MinCostAssignment(small, &scratch, &warm);
  EXPECT_EQ(resumed.col_of_row, cold.col_of_row);
  EXPECT_EQ(resumed.total_cost, cold.total_cost);
}

TEST(MaxWeightMatchingTest, EmptyInputs) {
  EXPECT_TRUE(MaxWeightMatching(0, 5, {}).pairs.empty());
  EXPECT_TRUE(MaxWeightMatching(5, 0, {}).pairs.empty());
  EXPECT_TRUE(MaxWeightMatching(3, 3, {}).pairs.empty());
}

TEST(MaxWeightMatchingTest, SingleEdge) {
  auto result = MaxWeightMatching(2, 2, {{0, 1, 3.5}});
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_EQ(result.pairs[0], std::make_pair(0, 1));
  EXPECT_DOUBLE_EQ(result.total_weight, 3.5);
}

TEST(MaxWeightMatchingTest, PrefersHeavierCombination) {
  // Greedy would take (0,0,10) then only (1,1,1) = 11; optimal is
  // (0,1,9) + (1,0,9) = 18.
  std::vector<Edge> edges = {{0, 0, 10.0}, {0, 1, 9.0}, {1, 0, 9.0},
                             {1, 1, 1.0}};
  auto result = MaxWeightMatching(2, 2, edges);
  EXPECT_DOUBLE_EQ(result.total_weight, 18.0);
  auto greedy = GreedyMatching(2, 2, edges);
  EXPECT_DOUBLE_EQ(greedy.total_weight, 11.0);
}

TEST(MaxWeightMatchingTest, NonPositiveEdgesIgnored) {
  auto result = MaxWeightMatching(2, 2, {{0, 0, 0.0}, {1, 1, -3.0}});
  EXPECT_TRUE(result.pairs.empty());
}

TEST(MaxWeightMatchingTest, DuplicateEdgesKeepMax) {
  auto result = MaxWeightMatching(1, 1, {{0, 0, 1.0}, {0, 0, 7.0}});
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(result.total_weight, 7.0);
}

TEST(MaxWeightMatchingTest, LeavesVerticesUnmatchedWhenNoEdge) {
  // 3 tasks, 3 workers, but only task 0 has edges.
  auto result = MaxWeightMatching(3, 3, {{0, 2, 1.0}});
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_EQ(result.pairs[0], std::make_pair(0, 2));
}

TEST(MaxWeightMatchingTest, RectangularMoreLeftThanRight) {
  std::vector<Edge> edges = {{0, 0, 5.0}, {1, 0, 6.0}, {2, 0, 7.0}};
  auto result = MaxWeightMatching(3, 1, edges);
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(result.total_weight, 7.0);
}

/// Property sweep: on random instances the KM result is a valid matching,
/// optimal (vs brute force), and >= the greedy total.
class MatchingRandomSweep
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(MatchingRandomSweep, OptimalOnRandomInstances) {
  auto [num_left, num_right, seed] = GetParam();
  tamp::Rng rng(seed);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Edge> edges;
    for (int l = 0; l < num_left; ++l) {
      for (int r = 0; r < num_right; ++r) {
        if (rng.Bernoulli(0.6)) {
          edges.push_back({l, r, rng.Uniform(0.1, 10.0)});
        }
      }
    }
    auto result = MaxWeightMatching(num_left, num_right, edges);
    ExpectValidMatching(result, num_left, num_right);
    double brute = BruteForceBest(num_left, num_right, edges);
    EXPECT_NEAR(result.total_weight, brute, 1e-9);
    auto greedy = GreedyMatching(num_left, num_right, edges);
    EXPECT_LE(greedy.total_weight, result.total_weight + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MatchingRandomSweep,
    ::testing::Values(std::make_tuple(2, 2, 1ULL), std::make_tuple(3, 3, 2ULL),
                      std::make_tuple(4, 4, 3ULL), std::make_tuple(5, 3, 4ULL),
                      std::make_tuple(3, 6, 5ULL),
                      std::make_tuple(6, 6, 6ULL)));

TEST(MatchingScratchTest, ReusedScratchMatchesFreshCalls) {
  // One scratch across a sequence of differently-sized solves must yield
  // exactly the per-call-allocation results (stale buffer contents from a
  // larger earlier solve must not leak into a smaller later one).
  tamp::Rng rng(321);
  MatchingScratch scratch;
  for (int trial = 0; trial < 30; ++trial) {
    const int num_left = static_cast<int>(rng.UniformInt(1, 8));
    const int num_right = static_cast<int>(rng.UniformInt(1, 8));
    std::vector<Edge> edges;
    for (int l = 0; l < num_left; ++l) {
      for (int r = 0; r < num_right; ++r) {
        if (rng.Bernoulli(0.5)) edges.push_back({l, r, rng.Uniform(0.1, 9.0)});
      }
    }
    auto fresh = MaxWeightMatching(num_left, num_right, edges);
    auto reused = MaxWeightMatching(num_left, num_right, edges, &scratch);
    EXPECT_EQ(reused.pairs, fresh.pairs);
    EXPECT_DOUBLE_EQ(reused.total_weight, fresh.total_weight);
  }
}

TEST(MatchingScratchTest, MinCostAssignmentWithScratch) {
  MatchingScratch scratch;
  std::vector<std::vector<double>> big = {
      {4, 1, 3, 9}, {2, 0, 5, 8}, {3, 2, 2, 7}, {1, 6, 4, 0}};
  auto big_fresh = MinCostAssignment(big);
  auto big_reused = MinCostAssignment(big, &scratch);
  EXPECT_EQ(big_reused.col_of_row, big_fresh.col_of_row);
  EXPECT_DOUBLE_EQ(big_reused.total_cost, big_fresh.total_cost);
  // Shrinking reuse after the larger solve.
  std::vector<std::vector<double>> small = {{4.0, 1.0}, {2.0, 3.0}};
  auto small_reused = MinCostAssignment(small, &scratch);
  EXPECT_EQ(small_reused.col_of_row, MinCostAssignment(small).col_of_row);
  EXPECT_DOUBLE_EQ(small_reused.total_cost, 3.0);
}

TEST(MatchingScratchTest, ShrinkThenGrowScratchReuseParity) {
  // Regression for the padded-square fill: a large solve leaves stale
  // weight/cost rows in the scratch; a smaller solve then resizes the
  // matrices down, and a regrown solve resizes them up again. Every used
  // cell must be written for the current instance — any stale cell leaking
  // through would change the optimum here, because all three instances put
  // different weights on overlapping (l, r) cells.
  MatchingScratch scratch;
  auto run_both = [&scratch](int num_left, int num_right,
                             const std::vector<Edge>& edges) {
    auto fresh = MaxWeightMatching(num_left, num_right, edges);
    auto reused = MaxWeightMatching(num_left, num_right, edges, &scratch);
    EXPECT_EQ(reused.pairs, fresh.pairs);
    EXPECT_DOUBLE_EQ(reused.total_weight, fresh.total_weight);
  };
  // Large 6x6 with heavy weights everywhere.
  std::vector<Edge> big;
  for (int l = 0; l < 6; ++l) {
    for (int r = 0; r < 6; ++r) {
      big.push_back({l, r, 5.0 + l + 0.3 * r});
    }
  }
  run_both(6, 6, big);
  // Shrink to 2x2 whose optimum (cross pairing) would be beaten by any
  // stale >= 5.0 cell surviving from the big solve.
  run_both(2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 0, 2.5}, {1, 1, 1.2}});
  // Regrow to 4x4, sparse: rows 2-3 were untouched by the 2x2 solve and
  // must not resurrect the 6x6 weights.
  run_both(4, 4, {{0, 3, 1.0}, {1, 2, 2.0}, {2, 1, 3.0}, {3, 0, 4.0},
                  {2, 2, 0.5}});
  // Shrink all the way to the degenerate cases — a 0-row instance and an
  // all-filtered (non-positive weights) one. Neither may touch the scratch
  // left by the 4x4 solve...
  run_both(0, 3, {});
  run_both(3, 3, {{0, 0, 0.0}, {1, 2, -1.0}});
  // ...so regrowing afterwards still matches fresh solves.
  run_both(5, 5, {{0, 0, 2.0}, {1, 1, 1.5}, {2, 3, 4.0}, {4, 2, 0.7}});
}

TEST(MatchingScratchTest, AllFilteredSolvePreservesScratchAndWarm) {
  // An instance whose every edge is dropped by the positivity filter must
  // return before touching scratch or warm state from a previous larger
  // solve (the degenerate-shard path of the sharded assigner).
  MatchingScratch scratch;
  KmWarmState warm;
  std::vector<Edge> real = {{0, 0, 2.0}, {0, 1, 5.0}, {1, 0, 4.0},
                            {1, 1, 1.0}};
  auto cold = MaxWeightMatching(2, 2, real);
  (void)MaxWeightMatching(2, 2, real, &scratch, &warm);
  const size_t checkpoints_before = warm.checkpoints.size();
  ASSERT_GT(checkpoints_before, 0u);

  auto filtered = MaxWeightMatching(9, 9, {{5, 5, 0.0}, {8, 2, -2.0}},
                                    &scratch, &warm);
  EXPECT_TRUE(filtered.pairs.empty());
  EXPECT_EQ(warm.checkpoints.size(), checkpoints_before);

  auto resumed = MaxWeightMatching(2, 2, real, &scratch, &warm);
  EXPECT_EQ(resumed.pairs, cold.pairs);
  EXPECT_EQ(resumed.total_weight, cold.total_weight);
}

TEST(KmWarmStateTest, WarmMinCostAssignmentMatchesColdExactly) {
  // A warm holder across a sequence of cost matrices sharing row prefixes
  // must return bitwise the cold results: the resumed (u, v, p) state is a
  // pure function of the shared prefix.
  tamp::Rng rng(4321);
  KmWarmState warm;
  MatchingScratch scratch;
  const size_t n = 7, m = 9;
  std::vector<std::vector<double>> cost(n, std::vector<double>(m, 0.0));
  for (auto& row : cost) {
    for (double& c : row) c = rng.Uniform(0.0, 10.0);
  }
  for (int trial = 0; trial < 25; ++trial) {
    auto cold = MinCostAssignment(cost);
    auto warmed = MinCostAssignment(cost, &scratch, &warm);
    EXPECT_EQ(warmed.col_of_row, cold.col_of_row) << "trial " << trial;
    // Bitwise, not approximate: the warm path must replay the identical
    // arithmetic.
    EXPECT_EQ(warmed.total_cost, cold.total_cost) << "trial " << trial;
    // Mutate a suffix of rows (sometimes none — full cache replay;
    // sometimes all — no reuse at all).
    const size_t first_changed = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(n)));
    for (size_t i = first_changed; i < n; ++i) {
      for (double& c : cost[i]) c = rng.Uniform(0.0, 10.0);
    }
  }
}

TEST(KmWarmStateTest, WarmMaxWeightMatchingMatchesColdExactly) {
  // Same property at the MaxWeightMatching level, where the padded square
  // cost matrix is derived from max_weight (which the suffix mutation may
  // change, invalidating every row — the prefix check handles that
  // naturally because row contents then differ).
  tamp::Rng rng(987);
  KmWarmState warm;
  MatchingScratch scratch;
  const int num_left = 6, num_right = 8;
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<Edge> edges;
    for (int l = 0; l < num_left; ++l) {
      for (int r = 0; r < num_right; ++r) {
        if (rng.Bernoulli(0.7)) edges.push_back({l, r, rng.Uniform(0.1, 8.0)});
      }
    }
    auto cold = MaxWeightMatching(num_left, num_right, edges);
    auto warmed =
        MaxWeightMatching(num_left, num_right, edges, &scratch, &warm);
    EXPECT_EQ(warmed.pairs, cold.pairs) << "trial " << trial;
    EXPECT_EQ(warmed.total_weight, cold.total_weight) << "trial " << trial;
  }
}

TEST(KmWarmStateTest, OversizedSolveClearsStoredState) {
  // A solve beyond max_dim must not leave checkpoints a later small solve
  // could wrongly resume from.
  KmWarmState warm;
  warm.max_dim = 4;
  std::vector<std::vector<double>> small = {
      {1.0, 4.0, 2.0}, {3.0, 1.0, 5.0}, {2.0, 2.0, 1.0}};
  (void)MinCostAssignment(small, nullptr, &warm);
  EXPECT_FALSE(warm.checkpoints.empty());
  std::vector<std::vector<double>> big(
      6, std::vector<double>(6, 1.0));
  (void)MinCostAssignment(big, nullptr, &warm);
  EXPECT_TRUE(warm.checkpoints.empty());
  EXPECT_TRUE(warm.prev_cost.empty());
  // And the holder still works (cold restart) afterwards.
  auto again = MinCostAssignment(small, nullptr, &warm);
  EXPECT_EQ(again.col_of_row, MinCostAssignment(small).col_of_row);
}

TEST(MaxWeightMatchingTest, LargeInstanceRunsAndIsValid) {
  tamp::Rng rng(123);
  const int n = 120;
  std::vector<Edge> edges;
  for (int l = 0; l < n; ++l) {
    for (int r = 0; r < n; ++r) {
      if (rng.Bernoulli(0.15)) edges.push_back({l, r, rng.Uniform(0.1, 5.0)});
    }
  }
  auto result = MaxWeightMatching(n, n, edges);
  ExpectValidMatching(result, n, n);
  EXPECT_GT(result.pairs.size(), 50u);
}

}  // namespace
}  // namespace tamp::matching
