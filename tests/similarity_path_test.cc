#include "similarity/learning_path.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tamp::similarity {
namespace {

TEST(CosineSimilarityTest, ParallelVectorsScoreOne) {
  EXPECT_NEAR(CosineSimilarity({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
}

TEST(CosineSimilarityTest, OrthogonalVectorsScoreZero) {
  EXPECT_NEAR(CosineSimilarity({1, 0}, {0, 1}), 0.0, 1e-12);
}

TEST(CosineSimilarityTest, OppositeVectorsScoreMinusOne) {
  EXPECT_NEAR(CosineSimilarity({1, 1}, {-1, -1}), -1.0, 1e-12);
}

TEST(CosineSimilarityTest, ZeroVectorScoresZero) {
  EXPECT_EQ(CosineSimilarity({0, 0}, {1, 2}), 0.0);
}

TEST(LearningPathSimilarityTest, IdenticalPathsScoreOne) {
  GradientPath p = {{1, 2}, {3, 4}, {-1, 0.5}};
  EXPECT_NEAR(LearningPathSimilarity(p, p), 1.0, 1e-12);
}

TEST(LearningPathSimilarityTest, OppositePathsScoreZero) {
  GradientPath a = {{1, 2}, {3, 4}};
  GradientPath b = {{-1, -2}, {-3, -4}};
  // Mean cosine -1 maps to 0 in the [0,1] range.
  EXPECT_NEAR(LearningPathSimilarity(a, b), 0.0, 1e-12);
}

TEST(LearningPathSimilarityTest, MixedStepsAverage) {
  GradientPath a = {{1, 0}, {1, 0}};
  GradientPath b = {{1, 0}, {0, 1}};  // cos 1 then cos 0 -> mean 0.5 -> 0.75.
  EXPECT_NEAR(LearningPathSimilarity(a, b), 0.75, 1e-12);
}

TEST(LearningPathSimilarityTest, EmptyPathsScoreZero) {
  EXPECT_EQ(LearningPathSimilarity({}, {}), 0.0);
}

TEST(RandomProjectorTest, DeterministicForSeed) {
  RandomProjector a(10, 4, 99), b(10, 4, 99);
  std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_EQ(a.Project(v), b.Project(v));
}

TEST(RandomProjectorTest, OutputDimension) {
  RandomProjector proj(10, 4, 1);
  EXPECT_EQ(proj.Project(std::vector<double>(10, 1.0)).size(), 4u);
}

TEST(RandomProjectorTest, LinearInInput) {
  RandomProjector proj(6, 3, 7);
  std::vector<double> v = {1, -2, 3, 0.5, 0, 2};
  std::vector<double> scaled(v.size());
  for (size_t i = 0; i < v.size(); ++i) scaled[i] = 2.0 * v[i];
  auto pv = proj.Project(v);
  auto ps = proj.Project(scaled);
  for (size_t i = 0; i < pv.size(); ++i) EXPECT_NEAR(ps[i], 2.0 * pv[i], 1e-12);
}

TEST(RandomProjectorTest, ApproximatelyPreservesCosine) {
  // Johnson-Lindenstrauss sanity: cosine similarity of high-dimensional
  // vectors survives projection to a moderate dimension, on average.
  const size_t dim = 512, proj_dim = 64;
  tamp::Rng rng(5);
  RandomProjector proj(dim, proj_dim, 11);
  double total_error = 0.0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> a(dim), b(dim);
    for (size_t i = 0; i < dim; ++i) {
      a[i] = rng.Normal();
      // b correlates with a.
      b[i] = 0.7 * a[i] + 0.3 * rng.Normal();
    }
    double full = CosineSimilarity(a, b);
    double projected = CosineSimilarity(proj.Project(a), proj.Project(b));
    total_error += std::fabs(full - projected);
  }
  EXPECT_LT(total_error / trials, 0.12);
}

}  // namespace
}  // namespace tamp::similarity
