#include "assign/ppi.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tamp::assign {
namespace {

SpatialTask MakeTask(int id, geo::Point loc, double deadline = 1000.0) {
  SpatialTask t;
  t.id = id;
  t.location = loc;
  t.deadline_min = deadline;
  return t;
}

CandidateWorker MakeWorker(int id, std::vector<geo::TimedPoint> predicted,
                           double mr, double detour_km = 2.0) {
  CandidateWorker w;
  w.id = id;
  w.predicted = std::move(predicted);
  w.detour_budget_km = detour_km;
  w.speed_kmpm = 1.0;
  w.matching_rate = mr;
  return w;
}

void ExpectDisjoint(const AssignmentPlan& plan) {
  std::set<int> tasks, workers;
  for (const auto& pair : plan.pairs) {
    EXPECT_TRUE(tasks.insert(pair.task_index).second);
    EXPECT_TRUE(workers.insert(pair.worker_index).second);
  }
}

std::map<int, int> WorkerOfTask(const AssignmentPlan& plan) {
  std::map<int, int> out;
  for (const auto& pair : plan.pairs) out[pair.task_index] = pair.worker_index;
  return out;
}

/// A staged scenario (a = 0, d = 2 so the Theorem-2 bound is 1):
///  - W0 (MR 0.6) has two predicted points near T0: |B| = 2, score 1.2
///    -> matched in stage 1.
///  - W1 (MR 0.5) has one point near T0: score 0.5 -> stage 2, but T0 is
///    already taken, so W1 stays free.
///  - W2 (MR 0.4) has one point near T1: score 0.4 -> matched in stage 2.
TEST(PpiAssignTest, StagesResolveInOrder) {
  std::vector<SpatialTask> tasks = {MakeTask(0, {0.0, 0.0}),
                                    MakeTask(1, {10.0, 0.0})};
  std::vector<CandidateWorker> workers = {
      MakeWorker(0, {{0.0, 0.0, 10.0}, {0.5, 0.0, 20.0}}, 0.6),
      MakeWorker(1, {{0.8, 0.0, 10.0}}, 0.5),
      MakeWorker(2, {{10.2, 0.0, 10.0}}, 0.4),
  };
  PpiConfig config;
  config.match_radius_km = 0.0;
  config.epsilon = 1;
  AssignmentPlan plan = PpiAssign(tasks, workers, 0.0, config);
  ExpectDisjoint(plan);
  auto assignment = WorkerOfTask(plan);
  ASSERT_EQ(assignment.size(), 2u);
  EXPECT_EQ(assignment[0], 0);  // Stage 1: the certain pair wins T0.
  EXPECT_EQ(assignment[1], 2);  // Stage 2.
}

TEST(PpiAssignTest, StageOnePrefersCertainOverCloser) {
  // W0 is *closer* to the task but uncertain (low MR, small |B|); W1 is a
  // bit farther but certain (score >= 1). Stage 1 runs first, so W1 gets
  // the task even though a pure nearest matching would pick W0.
  std::vector<SpatialTask> tasks = {MakeTask(0, {0.0, 0.0})};
  std::vector<CandidateWorker> workers = {
      MakeWorker(0, {{0.1, 0.0, 10.0}}, 0.3),
      MakeWorker(1, {{0.4, 0.0, 10.0}, {0.5, 0.0, 20.0}, {0.6, 0.0, 30.0}},
                 0.5),
  };
  PpiConfig config;
  config.match_radius_km = 0.0;
  AssignmentPlan plan = PpiAssign(tasks, workers, 0.0, config);
  auto assignment = WorkerOfTask(plan);
  ASSERT_EQ(assignment.size(), 1u);
  EXPECT_EQ(assignment[0], 1);
}

TEST(PpiAssignTest, StageThreeCatchesTheoremTwoRejects) {
  // With a = 0.6 and bound 1: the worker's best distance 0.8 fails the
  // Theorem-2 test (0.8 + 0.6 > 1) but passes stage 3 (0.8 <= 1).
  std::vector<SpatialTask> tasks = {MakeTask(0, {0.0, 0.0})};
  std::vector<CandidateWorker> workers = {
      MakeWorker(0, {{0.8, 0.0, 10.0}}, 0.9)};
  PpiConfig config;
  config.match_radius_km = 0.6;
  AssignmentPlan plan = PpiAssign(tasks, workers, 0.0, config);
  ASSERT_EQ(plan.pairs.size(), 1u);
}

TEST(PpiAssignTest, InfeasiblePairsStayUnassigned) {
  std::vector<SpatialTask> tasks = {MakeTask(0, {50.0, 50.0})};
  std::vector<CandidateWorker> workers = {
      MakeWorker(0, {{0.0, 0.0, 10.0}}, 0.9)};
  PpiConfig config;
  AssignmentPlan plan = PpiAssign(tasks, workers, 0.0, config);
  EXPECT_TRUE(plan.pairs.empty());
}

TEST(PpiAssignTest, EmptyInputs) {
  PpiConfig config;
  EXPECT_TRUE(PpiAssign({}, {MakeWorker(0, {}, 0.5)}, 0.0, config)
                  .pairs.empty());
  EXPECT_TRUE(
      PpiAssign({MakeTask(0, {0, 0})}, {}, 0.0, config).pairs.empty());
}

TEST(PpiAssignTest, MoreTasksThanWorkers) {
  std::vector<SpatialTask> tasks;
  for (int i = 0; i < 5; ++i) {
    tasks.push_back(MakeTask(i, {static_cast<double>(i), 0.0}));
  }
  std::vector<CandidateWorker> workers = {
      MakeWorker(0, {{0.0, 0.0, 10.0}}, 0.8),
      MakeWorker(1, {{4.0, 0.0, 10.0}}, 0.8),
  };
  PpiConfig config;
  config.match_radius_km = 0.0;
  AssignmentPlan plan = PpiAssign(tasks, workers, 0.0, config);
  ExpectDisjoint(plan);
  EXPECT_EQ(plan.pairs.size(), 2u);
}

TEST(PpiAssignTest, EpsilonBatchingDoesNotDropPairs) {
  // Many uncertain pairs: whatever epsilon, all feasible tasks must end up
  // assigned (one worker each).
  std::vector<SpatialTask> tasks;
  std::vector<CandidateWorker> workers;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back(MakeTask(i, {static_cast<double>(2 * i), 0.0}));
    workers.push_back(MakeWorker(
        i, {{2.0 * i + 0.3, 0.0, 10.0}}, 0.3 + 0.05 * i));
  }
  for (int epsilon : {1, 2, 3, 10}) {
    PpiConfig config;
    config.match_radius_km = 0.0;
    config.epsilon = epsilon;
    AssignmentPlan plan = PpiAssign(tasks, workers, 0.0, config);
    ExpectDisjoint(plan);
    EXPECT_EQ(plan.pairs.size(), 6u) << "epsilon=" << epsilon;
  }
}

TEST(PpiAssignTest, RandomInstancesProduceValidPlans) {
  tamp::Rng rng(37);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<SpatialTask> tasks;
    std::vector<CandidateWorker> workers;
    int nt = 3 + static_cast<int>(rng.UniformInt(0, 7));
    int nw = 3 + static_cast<int>(rng.UniformInt(0, 7));
    for (int i = 0; i < nt; ++i) {
      tasks.push_back(MakeTask(i, {rng.Uniform(0, 10), rng.Uniform(0, 10)},
                               rng.Uniform(5, 60)));
    }
    for (int i = 0; i < nw; ++i) {
      std::vector<geo::TimedPoint> pred;
      for (int p = 0; p < 4; ++p) {
        pred.push_back(
            {{rng.Uniform(0, 10), rng.Uniform(0, 10)}, 10.0 * (p + 1)});
      }
      workers.push_back(MakeWorker(i, pred, rng.Uniform01(),
                                   rng.Uniform(1.0, 6.0)));
    }
    PpiConfig config;
    config.match_radius_km = 0.5;
    config.epsilon = 2;
    AssignmentPlan plan = PpiAssign(tasks, workers, 0.0, config);
    ExpectDisjoint(plan);
    for (const auto& pair : plan.pairs) {
      EXPECT_GE(pair.task_index, 0);
      EXPECT_LT(pair.task_index, nt);
      EXPECT_GE(pair.worker_index, 0);
      EXPECT_LT(pair.worker_index, nw);
    }
  }
}

}  // namespace
}  // namespace tamp::assign
