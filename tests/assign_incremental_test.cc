#include "assign/incremental.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "assign/candidate_index.h"
#include "assign/candidates.h"
#include "assign/ggpso.h"
#include "assign/km_assigner.h"
#include "assign/ppi.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "data/workload.h"

namespace tamp::assign {
namespace {

SpatialTask MakeTask(int id, geo::Point loc, double deadline) {
  SpatialTask t;
  t.id = id;
  t.location = loc;
  t.deadline_min = deadline;
  return t;
}

CandidateWorker MakeWorker(int id, std::vector<geo::TimedPoint> predicted,
                           geo::Point current, double detour_km, double speed,
                           double mr) {
  CandidateWorker w;
  w.id = id;
  w.predicted = std::move(predicted);
  w.current_location = current;
  w.detour_budget_km = detour_km;
  w.speed_kmpm = speed;
  w.matching_rate = mr;
  return w;
}

void ExpectSameTable(const std::vector<std::vector<TaskCandidate>>& a,
                     const std::vector<std::vector<TaskCandidate>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t t = 0; t < a.size(); ++t) {
    ASSERT_EQ(a[t].size(), b[t].size()) << "task " << t;
    for (size_t k = 0; k < a[t].size(); ++k) {
      EXPECT_EQ(a[t][k].worker, b[t][k].worker) << "task " << t;
      EXPECT_EQ(a[t][k].b_count, b[t][k].b_count) << "task " << t;
      EXPECT_EQ(a[t][k].min_b, b[t][k].min_b) << "task " << t;
      EXPECT_EQ(a[t][k].min_dis, b[t][k].min_dis) << "task " << t;
      EXPECT_EQ(a[t][k].stage3_feasible, b[t][k].stage3_feasible)
          << "task " << t;
    }
  }
}

/// Random heterogeneous batch with declines sprinkled in (the one
/// EvaluateCandidate input the row cache does not key, so it must be
/// exercised).
void RandomBatch(tamp::Rng& rng, int num_tasks, int num_workers,
                 std::vector<SpatialTask>* tasks,
                 std::vector<CandidateWorker>* workers) {
  tasks->clear();
  workers->clear();
  for (int i = 0; i < num_tasks; ++i) {
    SpatialTask t = MakeTask(i, {rng.Uniform(0, 25), rng.Uniform(0, 12)},
                             rng.Uniform(-5.0, 60.0));
    while (rng.Bernoulli(0.1)) {
      t.declined_worker_ids.push_back(
          static_cast<int>(rng.UniformInt(0, num_workers - 1)));
    }
    tasks->push_back(std::move(t));
  }
  for (int i = 0; i < num_workers; ++i) {
    std::vector<geo::TimedPoint> pred;
    const int steps = static_cast<int>(rng.UniformInt(0, 5));
    for (int p = 0; p < steps; ++p) {
      pred.push_back(
          {{rng.Uniform(0, 25), rng.Uniform(0, 12)}, 10.0 * (p + 1)});
    }
    workers->push_back(MakeWorker(
        i, std::move(pred), {rng.Uniform(0, 25), rng.Uniform(0, 12)},
        rng.Uniform(0.5, 6.0), rng.Uniform(0.1, 1.0), rng.Uniform01()));
  }
}

TEST(IncrementalEngineTest, TableMatchesGenerateCandidatesOnRandomBatches) {
  // Batch-by-batch parity against both cold paths, with worker churn
  // (random subsets each batch) and random perturbations so the delta
  // Insert/RemoveLabel machinery is exercised, not just the first build.
  tamp::Rng rng(2024);
  IncrementalCandidateEngine engine;
  std::vector<SpatialTask> tasks;
  std::vector<CandidateWorker> all_workers;
  for (int batch = 0; batch < 8; ++batch) {
    RandomBatch(rng, 25, 35, &tasks, &all_workers);
    std::vector<CandidateWorker> workers;
    for (const CandidateWorker& w : all_workers) {
      if (rng.Bernoulli(0.8)) workers.push_back(w);  // Churn.
    }
    if (workers.empty()) workers.push_back(all_workers[0]);
    const double a = rng.Uniform(0.0, 1.0);
    const double now = rng.Uniform(0.0, 10.0);

    CandidateGenStats dense_stats, inc_stats;
    auto dense =
        GenerateCandidates(tasks, workers, a, now, nullptr, &dense_stats);
    CandidateIndex index(workers);
    auto indexed = GenerateCandidates(tasks, workers, a, now, &index);
    auto incremental = engine.BuildTable(tasks, workers, a, now, &inc_stats);
    ExpectSameTable(dense, incremental);
    ExpectSameTable(indexed, incremental);
    // The accounting identity: every dense pair is evaluated, pruned, or a
    // cache hit.
    EXPECT_EQ(inc_stats.evaluated + inc_stats.pruned + inc_stats.cache_hits,
              static_cast<int64_t>(tasks.size()) *
                  static_cast<int64_t>(workers.size()))
        << "batch " << batch;
    EXPECT_EQ(engine.num_indexed_workers(), workers.size());
  }
}

TEST(IncrementalEngineTest, SameTickExpiryAdmitsNoCandidatesAnywhere) {
  // Regression (satellite audit): the simulator purges deadline <= now
  // *before* assignment, so a task expiring exactly on the batch tick must
  // never be assigned — which requires every candidate path (dense,
  // indexed, incremental) to agree that such a task has no candidates, or
  // an expire-then-assign same tick would be counted twice.
  std::vector<CandidateWorker> workers = {
      MakeWorker(0, {{{1.0, 1.0}, 10.0}}, {1.0, 1.0}, 4.0, 0.5, 0.5)};
  std::vector<SpatialTask> tasks = {
      MakeTask(0, {1.0, 1.0}, /*deadline=*/5.0)};
  const double now = 5.0;  // deadline == now: expired (Def. 1, strict <).
  auto dense = GenerateCandidates(tasks, workers, 0.5, now, nullptr);
  CandidateIndex index(workers);
  auto indexed = GenerateCandidates(tasks, workers, 0.5, now, &index);
  IncrementalCandidateEngine engine;
  auto incremental = engine.BuildTable(tasks, workers, 0.5, now);
  EXPECT_TRUE(dense[0].empty());
  EXPECT_TRUE(indexed[0].empty());
  EXPECT_TRUE(incremental[0].empty());
  for (AssignmentPlan plan :
       {KmAssign(tasks, workers, now, 0.5),
        PpiAssign(tasks, workers, now, PpiConfig{}),
        GgpsoAssign(tasks, workers, now, GgpsoConfig{})}) {
    EXPECT_TRUE(plan.pairs.empty());
  }
}

TEST(IncrementalEngineTest, SecondPassOverSameInstantsHitsTheCache) {
  // The cross-run reuse story: replaying the same batch instants with the
  // same worker geometry (what the sweep benches do when several methods
  // share one pipeline) must serve rows from the cache, bit-identically.
  tamp::Rng rng(77);
  std::vector<SpatialTask> tasks;
  std::vector<CandidateWorker> workers;
  RandomBatch(rng, 30, 40, &tasks, &workers);
  IncrementalCandidateEngine engine;
  const double a = 0.5;
  const std::vector<double> nows = {10.0, 12.0, 14.0};

  std::vector<std::vector<std::vector<TaskCandidate>>> first;
  CandidateGenStats first_stats;
  for (double now : nows) {
    first.push_back(engine.BuildTable(tasks, workers, a, now, &first_stats));
  }
  EXPECT_EQ(first_stats.cache_hits, 0);  // Nothing to reuse yet.

  CandidateGenStats second_stats;
  for (size_t i = 0; i < nows.size(); ++i) {
    auto table = engine.BuildTable(tasks, workers, a, nows[i], &second_stats);
    ExpectSameTable(first[i], table);
  }
  // Every row that was evaluated in pass one is a hit in pass two.
  EXPECT_EQ(second_stats.cache_hits, first_stats.evaluated);
  EXPECT_EQ(second_stats.evaluated, 0);
  EXPECT_GT(second_stats.cache_hits, 0);
  EXPECT_EQ(engine.num_snapshots(), nows.size());
}

TEST(IncrementalEngineTest, MovedWorkerMissesOnlyItsOwnRows) {
  tamp::Rng rng(31);
  std::vector<SpatialTask> tasks;
  std::vector<CandidateWorker> workers;
  RandomBatch(rng, 20, 30, &tasks, &workers);
  // Drop declines for this test: hit accounting below assumes every
  // non-pruned pair has a row.
  for (SpatialTask& t : tasks) t.declined_worker_ids.clear();
  IncrementalCandidateEngine engine;
  const double a = 0.5, now = 5.0;
  CandidateGenStats pass1;
  auto before = engine.BuildTable(tasks, workers, a, now, &pass1);

  // Move one worker; geometry of the rest is untouched.
  workers[7].current_location.x += 0.25;
  CandidateGenStats pass2;
  auto after = engine.BuildTable(tasks, workers, a, now, &pass2);
  EXPECT_GT(pass2.cache_hits, 0);
  // The moved worker's rows re-evaluate (or vanish/appear); everyone
  // else's reuse. Verify against a cold build of the new state.
  auto cold = GenerateCandidates(tasks, workers, a, now, nullptr);
  ExpectSameTable(cold, after);
  for (size_t t = 0; t < after.size(); ++t) {
    for (size_t k = 0; k < after[t].size(); ++k) {
      if (after[t][k].worker != 7) {
        // Unmoved workers' rows must be bitwise what the first pass held
        // (when present there).
        for (const TaskCandidate& old_tc : before[t]) {
          if (old_tc.worker == after[t][k].worker) {
            EXPECT_EQ(old_tc.min_dis, after[t][k].min_dis);
            EXPECT_EQ(old_tc.min_b, after[t][k].min_b);
          }
        }
      }
    }
  }
}

TEST(IncrementalEngineTest, StatsAndTablesAreThreadCountInvariant) {
  tamp::Rng rng(404);
  std::vector<SpatialTask> tasks;
  std::vector<CandidateWorker> workers;
  RandomBatch(rng, 30, 40, &tasks, &workers);

  auto run = [&](int threads) {
    SetParallelThreadCount(threads);
    IncrementalCandidateEngine engine;
    CandidateGenStats stats;
    std::vector<std::vector<std::vector<TaskCandidate>>> tables;
    for (double now : {3.0, 5.0, 3.0, 7.0}) {  // Includes a replay.
      tables.push_back(engine.BuildTable(tasks, workers, 0.5, now, &stats));
    }
    SetParallelThreadCount(0);
    return std::make_pair(stats, tables);
  };
  auto [stats1, tables1] = run(1);
  auto [stats4, tables4] = run(4);
  EXPECT_EQ(stats1.evaluated, stats4.evaluated);
  EXPECT_EQ(stats1.pruned, stats4.pruned);
  EXPECT_EQ(stats1.cache_hits, stats4.cache_hits);
  EXPECT_GT(stats1.cache_hits, 0);  // The replayed instant hit.
  ASSERT_EQ(tables1.size(), tables4.size());
  for (size_t i = 0; i < tables1.size(); ++i) {
    ExpectSameTable(tables1[i], tables4[i]);
  }
}

/// Workload-scale, multi-batch plan parity: cold (dense and indexed) vs
/// incremental across a churn schedule — workers leave and rejoin between
/// batches, tasks expire and accumulate declines — for each assigner, on
/// both datasets, at 1 and 4 threads.
class IncrementalPlanParityTest
    : public ::testing::TestWithParam<data::WorkloadKind> {
 protected:
  struct Batch {
    std::vector<SpatialTask> tasks;
    std::vector<CandidateWorker> workers;
    double now = 0.0;
  };

  static std::vector<Batch> BuildBatches(data::WorkloadKind kind) {
    data::WorkloadConfig config;
    config.kind = kind;
    config.num_workers = 50;
    config.num_train_days = 1;
    config.num_tasks = 300;
    config.num_historical_tasks = 50;
    config.seed = 4242;
    data::Workload workload = data::GenerateWorkload(config);

    const double start = workload.task_stream[workload.task_stream.size() / 2]
                             .release_time_min;
    std::vector<Batch> batches;
    for (int b = 0; b < 5; ++b) {
      Batch batch;
      batch.now = start + 2.0 * b;
      for (const SpatialTask& task : workload.task_stream) {
        if (task.release_time_min <= batch.now &&
            task.deadline_min > batch.now) {
          SpatialTask pooled = task;
          // Carried-over tasks accumulate declines over batches
          // (remember_declines mode): deterministic schedule.
          for (int d = 0; d < b; ++d) {
            if ((task.id + d) % 9 == 0) {
              pooled.declined_worker_ids.push_back(
                  workload.workers[static_cast<size_t>(
                                       (task.id + 3 * d) %
                                       static_cast<int>(
                                           workload.workers.size()))]
                      .id);
            }
          }
          batch.tasks.push_back(std::move(pooled));
        }
      }
      for (size_t w = 0; w < workload.workers.size(); ++w) {
        // Churn: each batch a different ~1/5 of the fleet is offline, so
        // between consecutive batches workers both leave and (re)join.
        if ((static_cast<int>(w) + b) % 5 == 0) continue;
        const data::WorkerRecord& record = workload.workers[w];
        std::vector<geo::TimedPoint> pred;
        for (int s = 1; s <= 5; ++s) {
          const double t = batch.now + 10.0 * s;
          pred.push_back({record.test.PositionAt(t), t});
        }
        batch.workers.push_back(MakeWorker(
            record.id, std::move(pred), record.test.PositionAt(batch.now),
            record.detour_budget_km, record.speed_kmpm,
            0.2 + 0.6 * static_cast<double>(w) /
                      static_cast<double>(workload.workers.size())));
      }
      batches.push_back(std::move(batch));
    }
    return batches;
  }

  static void ExpectSamePlan(const AssignmentPlan& a,
                             const AssignmentPlan& b) {
    ASSERT_EQ(a.pairs.size(), b.pairs.size());
    for (size_t i = 0; i < a.pairs.size(); ++i) {
      EXPECT_EQ(a.pairs[i].task_index, b.pairs[i].task_index);
      EXPECT_EQ(a.pairs[i].worker_index, b.pairs[i].worker_index);
      // Bit-identical, not approximately equal: the incremental path must
      // replay exactly the cold arithmetic on every surviving pair.
      EXPECT_EQ(a.pairs[i].expected_detour_km, b.pairs[i].expected_detour_km);
    }
  }
};

TEST_P(IncrementalPlanParityTest, PpiColdAndIncrementalBitIdentical) {
  std::vector<Batch> batches = BuildBatches(GetParam());
  PpiConfig dense_config;
  dense_config.use_spatial_index = false;
  PpiConfig indexed_config;
  indexed_config.use_spatial_index = true;
  for (int threads : {1, 4}) {
    SetParallelThreadCount(threads);
    AssignReuse reuse;
    bool any = false;
    for (const Batch& batch : batches) {
      AssignmentPlan dense =
          PpiAssign(batch.tasks, batch.workers, batch.now, dense_config);
      AssignmentPlan indexed =
          PpiAssign(batch.tasks, batch.workers, batch.now, indexed_config);
      AssignmentPlan incremental = PpiAssign(batch.tasks, batch.workers,
                                             batch.now, indexed_config,
                                             &reuse);
      ExpectSamePlan(dense, indexed);
      ExpectSamePlan(dense, incremental);
      any = any || !dense.pairs.empty();
    }
    EXPECT_TRUE(any);
  }
  SetParallelThreadCount(0);
}

TEST_P(IncrementalPlanParityTest, KmColdAndIncrementalBitIdentical) {
  std::vector<Batch> batches = BuildBatches(GetParam());
  for (int threads : {1, 4}) {
    SetParallelThreadCount(threads);
    AssignReuse reuse;
    bool any = false;
    for (const Batch& batch : batches) {
      AssignmentPlan dense = KmAssign(batch.tasks, batch.workers, batch.now,
                                      /*match_radius_km=*/1.0,
                                      /*weight_floor_km=*/1e-3,
                                      /*use_spatial_index=*/false);
      AssignmentPlan indexed =
          KmAssign(batch.tasks, batch.workers, batch.now, 1.0, 1e-3, true);
      AssignmentPlan incremental = KmAssign(batch.tasks, batch.workers,
                                            batch.now, 1.0, 1e-3, true,
                                            &reuse);
      ExpectSamePlan(dense, indexed);
      ExpectSamePlan(dense, incremental);
      any = any || !dense.pairs.empty();
    }
    EXPECT_TRUE(any);
  }
  SetParallelThreadCount(0);
}

TEST_P(IncrementalPlanParityTest, GgpsoColdAndIncrementalBitIdentical) {
  std::vector<Batch> batches = BuildBatches(GetParam());
  GgpsoConfig config;
  config.generations = 15;
  config.population = 12;
  config.use_spatial_index = true;
  for (int threads : {1, 4}) {
    SetParallelThreadCount(threads);
    AssignReuse reuse;
    bool any = false;
    for (const Batch& batch : batches) {
      AssignmentPlan cold =
          GgpsoAssign(batch.tasks, batch.workers, batch.now, config);
      AssignmentPlan incremental =
          GgpsoAssign(batch.tasks, batch.workers, batch.now, config, &reuse);
      ExpectSamePlan(cold, incremental);
      any = any || !cold.pairs.empty();
    }
    EXPECT_TRUE(any);
  }
  SetParallelThreadCount(0);
}

TEST_P(IncrementalPlanParityTest, MethodsSharingAnEngineHitTheCache) {
  // The fig-7 pipeline shape: several methods replay the same batch
  // instants against one pipeline-owned engine. The first method pays the
  // evaluations; the later ones must see a positive cache hit rate.
  std::vector<Batch> batches = BuildBatches(GetParam());
  AssignReuse reuse;
  CandidateGenStats ppi_stats;
  for (const Batch& batch : batches) {
    (void)KmAssign(batch.tasks, batch.workers, batch.now, 1.0, 1e-3, true,
                   &reuse);
  }
  for (const Batch& batch : batches) {
    auto table = reuse.candidates.BuildTable(batch.tasks, batch.workers, 1.0,
                                             batch.now, &ppi_stats);
    (void)table;
  }
  EXPECT_GT(ppi_stats.cache_hits, 0);
  EXPECT_EQ(ppi_stats.evaluated, 0);  // Identical replay: all hits.
}

INSTANTIATE_TEST_SUITE_P(Workloads, IncrementalPlanParityTest,
                         ::testing::Values(
                             data::WorkloadKind::kPortoDidi,
                             data::WorkloadKind::kGowallaFoursquare),
                         [](const auto& info) {
                           return info.param == data::WorkloadKind::kPortoDidi
                                      ? "Porto"
                                      : "Gowalla";
                         });

}  // namespace
}  // namespace tamp::assign
