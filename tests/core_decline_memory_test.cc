// The remember_declines extension: declined (task, worker) pairs are never
// re-proposed. Exercises both the SpatialTask-level mechanism and the
// simulator-level ablation flag.
#include <gtest/gtest.h>

#include "assign/candidates.h"
#include "assign/ppi.h"
#include "core/pipeline.h"
#include "data/workload.h"

namespace tamp {
namespace {

TEST(DeclinedWorkerTest, DeclinedByLookup) {
  assign::SpatialTask task;
  task.declined_worker_ids = {3, 7};
  EXPECT_TRUE(task.DeclinedBy(3));
  EXPECT_TRUE(task.DeclinedBy(7));
  EXPECT_FALSE(task.DeclinedBy(1));
}

TEST(DeclinedWorkerTest, EvaluateCandidateExcludesDeclinedWorkers) {
  assign::SpatialTask task;
  task.location = {0.0, 0.0};
  task.deadline_min = 1000.0;
  assign::CandidateWorker worker;
  worker.id = 5;
  worker.predicted = {{{0.1, 0.0}, 10.0}};
  worker.current_location = {0.1, 0.0};
  worker.detour_budget_km = 4.0;
  worker.speed_kmpm = 1.0;

  assign::CandidateInfo ok = assign::EvaluateCandidate(task, worker, 0.0, 0.0);
  EXPECT_TRUE(ok.stage3_feasible);

  task.declined_worker_ids.push_back(5);
  assign::CandidateInfo blocked =
      assign::EvaluateCandidate(task, worker, 0.0, 0.0);
  EXPECT_FALSE(blocked.stage3_feasible);
  EXPECT_TRUE(blocked.b_distances.empty());
}

TEST(DeclinedWorkerTest, PpiSkipsDeclinedPairs) {
  assign::SpatialTask task;
  task.id = 0;
  task.location = {0.0, 0.0};
  task.deadline_min = 1000.0;
  task.declined_worker_ids = {0};  // The only worker already declined.
  assign::CandidateWorker worker;
  worker.id = 0;
  worker.predicted = {{{0.1, 0.0}, 10.0}};
  worker.current_location = {0.1, 0.0};
  worker.detour_budget_km = 4.0;
  worker.speed_kmpm = 1.0;
  worker.matching_rate = 0.9;
  assign::PpiConfig config;
  EXPECT_TRUE(assign::PpiAssign({task}, {worker}, 0.0, config).pairs.empty());
}

TEST(DeclineMemorySimulationTest, MemoryNeverHurtsCompletion) {
  data::WorkloadConfig workload_config;
  workload_config.num_workers = 10;
  workload_config.num_train_days = 2;
  workload_config.num_tasks = 120;
  workload_config.seed = 77;
  data::Workload workload = data::GenerateWorkload(workload_config);

  core::PipelineConfig config;
  config.trainer.meta.iterations = 3;
  config.trainer.fine_tune_steps = 5;
  core::TampPipeline pipeline(config);
  core::OfflineResult offline = pipeline.TrainOffline(workload);

  auto run = [&](bool remember) {
    core::PipelineConfig with_flag = config;
    with_flag.sim.remember_declines = remember;
    core::TampPipeline p(with_flag);
    return p.RunOnline(workload, offline, core::AssignMethod::kKm);
  };
  core::SimMetrics without = run(false);
  core::SimMetrics with = run(true);
  // Never re-proposing a declined pair diversifies the search, so the
  // completion count cannot drop and re-proposal waste cannot rise.
  EXPECT_GE(with.completed, without.completed);
  EXPECT_LE(with.assignments, without.assignments);
}

}  // namespace
}  // namespace tamp
