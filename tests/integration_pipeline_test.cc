#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "data/workload.h"

namespace tamp::core {
namespace {

/// End-to-end: generate a workload, train offline with GTTAML + the
/// task-assignment-oriented loss, run every assignment method, and verify
/// the qualitative relationships the paper's evaluation establishes.
class PipelineIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::WorkloadConfig workload_config;
    workload_config.num_workers = 16;
    workload_config.num_train_days = 3;
    workload_config.num_tasks = 400;
    workload_config.num_historical_tasks = 600;
    workload_config.seed = 4242;
    workload_ = new data::Workload(data::GenerateWorkload(workload_config));

    // Training must be strong enough that predictions genuinely inform
    // assignment (matching rate well above chance); weaker settings are
    // exercised by the unit tests.
    PipelineConfig config;
    config.trainer.model.hidden_dim = 16;
    config.trainer.meta.iterations = 25;
    config.trainer.fine_tune_steps = 60;
    config.trainer.projection_dim = 12;
    config.trainer.tree.game.k = 3;
    config.sim.prediction_horizon_steps = 4;
    config.sim.ggpso.generations = 15;
    pipeline_ = new TampPipeline(config);
    offline_ = new OfflineResult(pipeline_->TrainOffline(*workload_));
  }
  static void TearDownTestSuite() {
    delete offline_;
    delete pipeline_;
    delete workload_;
  }

  static data::Workload* workload_;
  static TampPipeline* pipeline_;
  static OfflineResult* offline_;
};

data::Workload* PipelineIntegrationTest::workload_ = nullptr;
TampPipeline* PipelineIntegrationTest::pipeline_ = nullptr;
OfflineResult* PipelineIntegrationTest::offline_ = nullptr;

TEST_F(PipelineIntegrationTest, OfflineStageProducesUsableModels) {
  EXPECT_EQ(offline_->models.worker_params.size(), workload_->workers.size());
  EXPECT_GT(offline_->models.train_seconds, 0.0);
  EXPECT_GT(offline_->eval.aggregate.num_points, 0);
  EXPECT_GT(offline_->eval.aggregate.matching_rate, 0.0);
  // The prediction should comfortably beat a "random corner" baseline on a
  // 20x10 km map.
  EXPECT_LT(offline_->eval.aggregate.rmse_km, 12.0);
}

TEST_F(PipelineIntegrationTest, UpperBoundIsTheBestCompletion) {
  SimMetrics ub =
      pipeline_->RunOnline(*workload_, *offline_, AssignMethod::kUpperBound);
  for (AssignMethod method : {AssignMethod::kLowerBound, AssignMethod::kKm,
                              AssignMethod::kPpi}) {
    SimMetrics m = pipeline_->RunOnline(*workload_, *offline_, method);
    EXPECT_GE(ub.CompletionRatio() + 1e-9, m.CompletionRatio())
        << AssignMethodName(method);
  }
  EXPECT_DOUBLE_EQ(ub.RejectionRatio(), 0.0);
}

TEST_F(PipelineIntegrationTest, PredictionBeatsCurrentLocationOnly) {
  // The headline claim of prediction-aware assignment: using predicted
  // routines (PPI) completes at least as many tasks as the LB
  // current-location baseline while *covering* strictly more candidate
  // pairs (the strict completion separation shows at bench scale; at this
  // unit-test scale the two can tie on a given seed).
  SimMetrics lb =
      pipeline_->RunOnline(*workload_, *offline_, AssignMethod::kLowerBound);
  SimMetrics ppi =
      pipeline_->RunOnline(*workload_, *offline_, AssignMethod::kPpi);
  // Within single-seed noise (~2 tasks of 400) PPI must not lose to LB.
  EXPECT_GE(ppi.CompletionRatio() + 0.02, lb.CompletionRatio());
  EXPECT_GT(ppi.assignments, lb.assignments);
}

TEST_F(PipelineIntegrationTest, PpiRejectsNoMoreThanKm) {
  // PPI's whole point: prioritizing high-confidence pairs lowers the
  // rejection rate relative to plain KM on the same predictions.
  SimMetrics km = pipeline_->RunOnline(*workload_, *offline_, AssignMethod::kKm);
  SimMetrics ppi =
      pipeline_->RunOnline(*workload_, *offline_, AssignMethod::kPpi);
  EXPECT_LE(ppi.RejectionRatio(), km.RejectionRatio() + 0.05);
}

TEST_F(PipelineIntegrationTest, MslossVariantDiffersFromTaLoss) {
  PipelineConfig config = pipeline_->config();
  config.use_ta_loss = false;
  TampPipeline mse_pipeline(config);
  OfflineResult mse_offline = mse_pipeline.TrainOffline(*workload_);
  // Different training objective -> different parameters.
  EXPECT_NE(mse_offline.models.worker_params[0],
            offline_->models.worker_params[0]);
}

TEST_F(PipelineIntegrationTest, MetaAlgorithmsAreInterchangeable) {
  PipelineConfig config = pipeline_->config();
  config.meta_algorithm = meta::MetaAlgorithm::kMaml;
  config.trainer.meta.iterations = 3;
  TampPipeline maml_pipeline(config);
  OfflineResult maml_offline = maml_pipeline.TrainOffline(*workload_);
  EXPECT_EQ(maml_offline.models.num_leaves, 1);
  SimMetrics m =
      maml_pipeline.RunOnline(*workload_, maml_offline, AssignMethod::kPpi);
  EXPECT_GE(m.completed, 0);
}

}  // namespace
}  // namespace tamp::core
