#include "meta/meta_training.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "meta/learning_task.h"
#include "nn/encoder_decoder.h"

namespace tamp::meta {
namespace {

/// A learning task whose worker moves with constant velocity (vx, vy) in
/// normalized coordinates; the model must learn to extrapolate.
LearningTask MakeLinearTask(int worker_id, double vx, double vy,
                            tamp::Rng& rng, int n_support = 6,
                            int n_query = 4, int n_eval = 4) {
  LearningTask task;
  task.worker_id = worker_id;
  auto make_sample = [&]() {
    TrainingSample sample;
    double x = rng.Uniform(0.1, 0.5), y = rng.Uniform(0.1, 0.5);
    for (int t = 0; t < 4; ++t) {
      sample.input.push_back({x + vx * t, y + vy * t});
    }
    sample.target.push_back({x + vx * 4, y + vy * 4});
    sample.target_km.push_back({(x + vx * 4) * 10.0, (y + vy * 4) * 10.0});
    return sample;
  };
  for (int i = 0; i < n_support; ++i) task.support.push_back(make_sample());
  for (int i = 0; i < n_query; ++i) task.query.push_back(make_sample());
  for (int i = 0; i < n_eval; ++i) task.eval.push_back(make_sample());
  for (const auto& s : task.support) {
    task.location_cloud.push_back(s.target_km[0]);
  }
  task.pois.emplace_back(vx * 100.0, vy * 100.0, worker_id % 3);
  return task;
}

nn::EncoderDecoder SmallModel() {
  nn::Seq2SeqConfig config;
  config.hidden_dim = 6;
  return nn::EncoderDecoder(config);
}

double AvgQueryLoss(const nn::EncoderDecoder& model,
                    const std::vector<double>& theta,
                    const std::vector<LearningTask>& tasks,
                    const MetaTrainConfig& config) {
  double total = 0.0;
  int count = 0;
  for (const auto& task : tasks) {
    std::vector<double> adapted = AdaptKSteps(
        model, theta, task.support, config.adapt_steps, config.beta, config);
    for (const auto& sample : task.query) {
      total += model.EvalLoss(adapted, sample.input, sample.target, {});
      ++count;
    }
  }
  return total / count;
}

TEST(SampleWeightsTest, EmptyWithoutWeightFn) {
  MetaTrainConfig config;
  TrainingSample sample;
  sample.target_km.push_back({1.0, 2.0});
  EXPECT_TRUE(SampleWeights(config, sample).empty());
}

TEST(SampleWeightsTest, AppliesWeightFnPerTargetPoint) {
  MetaTrainConfig config;
  config.weight_fn = [](const geo::Point& p) { return p.x + p.y; };
  TrainingSample sample;
  sample.target_km.push_back({1.0, 2.0});
  sample.target_km.push_back({0.5, 0.25});
  auto weights = SampleWeights(config, sample);
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_DOUBLE_EQ(weights[0], 3.0);
  EXPECT_DOUBLE_EQ(weights[1], 0.75);
}

TEST(BatchLossAndGradientTest, AveragesOverSamples) {
  tamp::Rng rng(3);
  nn::EncoderDecoder model = SmallModel();
  std::vector<double> theta = model.InitParams(rng);
  LearningTask task = MakeLinearTask(0, 0.03, 0.01, rng);
  MetaTrainConfig config;
  std::vector<double> grad(theta.size(), 0.0);
  double loss =
      BatchLossAndGradient(model, theta, task.support, config, grad);
  EXPECT_GT(loss, 0.0);
  double norm = 0.0;
  for (double g : grad) norm += g * g;
  EXPECT_GT(norm, 0.0);
}

TEST(AdaptKStepsTest, ReducesSupportLoss) {
  tamp::Rng rng(5);
  nn::EncoderDecoder model = SmallModel();
  std::vector<double> theta = model.InitParams(rng);
  LearningTask task = MakeLinearTask(0, 0.04, 0.02, rng, 12, 4);
  MetaTrainConfig config;
  config.beta = 0.2;

  auto support_loss = [&](const std::vector<double>& params) {
    std::vector<double> scratch(params.size(), 0.0);
    return BatchLossAndGradient(model, params, task.support, config, scratch);
  };
  double before = support_loss(theta);
  std::vector<double> adapted =
      AdaptKSteps(model, theta, task.support, 10, config.beta, config);
  double after = support_loss(adapted);
  EXPECT_LT(after, before);
}

TEST(AdaptKStepsTest, ZeroStepsIsIdentity) {
  tamp::Rng rng(7);
  nn::EncoderDecoder model = SmallModel();
  std::vector<double> theta = model.InitParams(rng);
  LearningTask task = MakeLinearTask(0, 0.02, 0.02, rng);
  MetaTrainConfig config;
  EXPECT_EQ(AdaptKSteps(model, theta, task.support, 0, 0.1, config), theta);
}

TEST(MetaTrainTest, ReducesAveragePostAdaptationQueryLoss) {
  tamp::Rng rng(9);
  nn::EncoderDecoder model = SmallModel();
  std::vector<double> theta = model.InitParams(rng);
  std::vector<LearningTask> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back(MakeLinearTask(i, 0.03, 0.015, rng));
  }
  std::vector<int> members = {0, 1, 2, 3, 4, 5};
  MetaTrainConfig config;
  config.iterations = 40;
  config.alpha = 0.1;
  config.beta = 0.15;
  config.adapt_steps = 2;
  config.batch_size = 3;

  double before = AvgQueryLoss(model, theta, tasks, config);
  MetaTrainResult result =
      MetaTrain(model, tasks, members, theta, config, rng);
  double after = AvgQueryLoss(model, theta, tasks, config);
  EXPECT_LT(after, before);
  EXPECT_GT(result.avg_query_loss, 0.0);
  EXPECT_EQ(result.meta_gradient.size(), theta.size());
}

TEST(FineTuneTest, ReducesLossOnWorkerData) {
  tamp::Rng rng(11);
  nn::EncoderDecoder model = SmallModel();
  std::vector<double> theta = model.InitParams(rng);
  LearningTask task = MakeLinearTask(0, 0.05, 0.01, rng, 10, 6);
  MetaTrainConfig config;

  auto all_loss = [&](const std::vector<double>& params) {
    std::vector<double> scratch(params.size(), 0.0);
    double l = BatchLossAndGradient(model, params, task.support, config,
                                    scratch);
    std::fill(scratch.begin(), scratch.end(), 0.0);
    l += BatchLossAndGradient(model, params, task.query, config, scratch);
    return l;
  };
  double before = all_loss(theta);
  FineTune(model, task, theta, 30, 0.02, config);
  double after = all_loss(theta);
  EXPECT_LT(after, before);
}

TEST(ComputeGradientPathTest, ShapeAndDeterminism) {
  tamp::Rng rng(13);
  nn::EncoderDecoder model = SmallModel();
  std::vector<double> probe = model.InitParams(rng);
  LearningTask task = MakeLinearTask(0, 0.02, 0.03, rng);
  similarity::RandomProjector projector(model.param_count(), 16, 77);

  auto path_a = ComputeGradientPath(model, task, probe, 3, 0.1, projector);
  auto path_b = ComputeGradientPath(model, task, probe, 3, 0.1, projector);
  ASSERT_EQ(path_a.size(), 3u);
  for (const auto& step : path_a) EXPECT_EQ(step.size(), 16u);
  EXPECT_EQ(path_a, path_b);
}

TEST(ComputeGradientPathTest, SimilarTasksHaveSimilarPaths) {
  tamp::Rng rng(17);
  nn::EncoderDecoder model = SmallModel();
  std::vector<double> probe = model.InitParams(rng);
  similarity::RandomProjector projector(model.param_count(), 32, 78);
  LearningTask a = MakeLinearTask(0, 0.05, 0.0, rng, 10, 4);
  LearningTask b = MakeLinearTask(1, 0.05, 0.0, rng, 10, 4);
  LearningTask c = MakeLinearTask(2, -0.05, 0.0, rng, 10, 4);

  auto pa = ComputeGradientPath(model, a, probe, 3, 0.1, projector);
  auto pb = ComputeGradientPath(model, b, probe, 3, 0.1, projector);
  auto pc = ComputeGradientPath(model, c, probe, 3, 0.1, projector);
  double same = similarity::LearningPathSimilarity(pa, pb);
  double diff = similarity::LearningPathSimilarity(pa, pc);
  EXPECT_GT(same, diff);
}

}  // namespace
}  // namespace tamp::meta
