#include "similarity/cluster_quality.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tamp::similarity {
namespace {

/// A fixed symmetric similarity over 5 tasks used across tests.
PairwiseSimilarity MakeFixture() {
  // Two natural groups: {0,1,2} similar (0.9), {3,4} similar (0.8),
  // cross-group 0.1.
  return PairwiseSimilarity(5, [](int i, int j) {
    bool gi = i <= 2, gj = j <= 2;
    if (gi != gj) return 0.1;
    return gi ? 0.9 : 0.8;
  });
}

TEST(PairwiseSimilarityTest, DiagonalIsOne) {
  auto sim = MakeFixture();
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(sim(i, i), 1.0);
}

TEST(PairwiseSimilarityTest, SymmetricAccess) {
  auto sim = MakeFixture();
  EXPECT_DOUBLE_EQ(sim(0, 3), sim(3, 0));
  EXPECT_DOUBLE_EQ(sim(1, 2), 0.9);
}

TEST(PairwiseSimilarityTest, CachesComputation) {
  int calls = 0;
  PairwiseSimilarity sim(3, [&calls](int, int) {
    ++calls;
    return 0.5;
  });
  sim(0, 1);
  sim(1, 0);
  sim(0, 1);
  EXPECT_EQ(calls, 1);
  sim.Materialize();
  EXPECT_EQ(calls, 3);  // All 3 unordered pairs.
}

TEST(ClusterQualityTest, EmptyClusterIsZero) {
  auto sim = MakeFixture();
  EXPECT_EQ(ClusterQuality(sim, {}, 0.2), 0.0);
}

TEST(ClusterQualityTest, SingletonIsGamma) {
  auto sim = MakeFixture();
  EXPECT_DOUBLE_EQ(ClusterQuality(sim, {2}, 0.2), 0.2);
  EXPECT_DOUBLE_EQ(ClusterQuality(sim, {2}, 0.7), 0.7);
}

TEST(ClusterQualityTest, PairIsTheirSimilarity) {
  auto sim = MakeFixture();
  // Eq. 4 for |G|=2: 2 * s / (2 * 1) = s.
  EXPECT_DOUBLE_EQ(ClusterQuality(sim, {0, 1}, 0.2), 0.9);
  EXPECT_DOUBLE_EQ(ClusterQuality(sim, {0, 3}, 0.2), 0.1);
}

TEST(ClusterQualityTest, TripleAveragesPairs) {
  auto sim = MakeFixture();
  EXPECT_NEAR(ClusterQuality(sim, {0, 1, 2}, 0.2), 0.9, 1e-12);
  // Mixed cluster {0, 1, 3}: pairs 0.9, 0.1, 0.1 -> mean ~0.3667.
  EXPECT_NEAR(ClusterQuality(sim, {0, 1, 3}, 0.2), (0.9 + 0.1 + 0.1) / 3.0,
              1e-12);
}

TEST(ClusterQualityTest, CoherentClusterBeatsMixed) {
  auto sim = MakeFixture();
  EXPECT_GT(ClusterQuality(sim, {0, 1, 2}, 0.2),
            ClusterQuality(sim, {0, 1, 3}, 0.2));
}

TEST(JoinUtilityTest, JoiningEmptyYieldsGamma) {
  auto sim = MakeFixture();
  EXPECT_DOUBLE_EQ(JoinUtility(sim, {}, 0, 0.2), 0.2);
}

TEST(JoinUtilityTest, MatchesQualityDifference) {
  auto sim = MakeFixture();
  // u(task, G) must equal Q(G + task) - Q(G) (Eq. 5).
  std::vector<int> cluster = {0, 1};
  double expected = ClusterQuality(sim, {0, 1, 2}, 0.2) -
                    ClusterQuality(sim, {0, 1}, 0.2);
  EXPECT_NEAR(JoinUtility(sim, cluster, 2, 0.2), expected, 1e-12);
}

TEST(JoinUtilityTest, MatchesQualityDifferenceFromSingleton) {
  auto sim = MakeFixture();
  double expected =
      ClusterQuality(sim, {3, 4}, 0.2) - ClusterQuality(sim, {3}, 0.2);
  EXPECT_NEAR(JoinUtility(sim, {3}, 4, 0.2), expected, 1e-12);
}

TEST(JoinUtilityTest, SimilarTaskHasHigherUtilityThanDissimilar) {
  auto sim = MakeFixture();
  std::vector<int> cluster = {0, 1};
  EXPECT_GT(JoinUtility(sim, cluster, 2, 0.2),
            JoinUtility(sim, cluster, 4, 0.2));
}

TEST(JoinUtilityTest, RandomizedConsistencyWithQualityDifference) {
  tamp::Rng rng(31);
  // Random symmetric similarities; verify Eq. 5 identity on random subsets.
  std::vector<std::vector<double>> matrix(8, std::vector<double>(8, 0.0));
  for (int i = 0; i < 8; ++i) {
    for (int j = i + 1; j < 8; ++j) {
      matrix[i][j] = matrix[j][i] = rng.Uniform01();
    }
  }
  PairwiseSimilarity sim(8, [&matrix](int i, int j) { return matrix[i][j]; });
  for (int trial = 0; trial < 30; ++trial) {
    size_t size = static_cast<size_t>(rng.UniformInt(0, 5));
    auto members = rng.SampleWithoutReplacement(7, size);
    std::vector<int> cluster(members.begin(), members.end());
    int task = 7;  // Always outside the cluster.
    std::vector<int> with = cluster;
    with.push_back(task);
    double expected = ClusterQuality(sim, with, 0.2) -
                      ClusterQuality(sim, cluster, 0.2);
    EXPECT_NEAR(JoinUtility(sim, cluster, task, 0.2), expected, 1e-12);
  }
}

}  // namespace
}  // namespace tamp::similarity
