#include "common/statistics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tamp {
namespace {

TEST(RunningStatTest, EmptyDefaults) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.variance(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat stat;
  stat.Add(3.5);
  EXPECT_EQ(stat.count(), 1u);
  EXPECT_DOUBLE_EQ(stat.mean(), 3.5);
  EXPECT_EQ(stat.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stat.min(), 3.5);
  EXPECT_DOUBLE_EQ(stat.max(), 3.5);
}

TEST(RunningStatTest, MatchesDirectComputation) {
  std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStat stat;
  for (double v : values) stat.Add(v);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 9.0);
  EXPECT_DOUBLE_EQ(stat.sum(), 40.0);
}

TEST(MeanTest, Basics) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(StdDevTest, Basics) {
  EXPECT_EQ(StdDev({}), 0.0);
  EXPECT_EQ(StdDev({5.0}), 0.0);
  EXPECT_NEAR(StdDev({2.0, 4.0}), std::sqrt(2.0), 1e-12);
}

TEST(PercentileTest, MedianAndExtremes) {
  std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 5.0);
}

TEST(PercentileTest, Interpolates) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 25.0), 2.5);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 99.0), 7.0);
}

TEST(ErrorMetricsTest, RmseAndMae) {
  std::vector<double> pred = {1.0, 2.0, 3.0};
  std::vector<double> truth = {1.0, 4.0, 1.0};
  EXPECT_NEAR(Rmse(pred, truth), std::sqrt((0.0 + 4.0 + 4.0) / 3.0), 1e-12);
  EXPECT_NEAR(Mae(pred, truth), (0.0 + 2.0 + 2.0) / 3.0, 1e-12);
}

TEST(ErrorMetricsTest, EmptyIsZero) {
  EXPECT_EQ(Rmse({}, {}), 0.0);
  EXPECT_EQ(Mae({}, {}), 0.0);
}

TEST(ErrorMetricsTest, PerfectPrediction) {
  std::vector<double> v = {1.0, -2.0, 0.5};
  EXPECT_EQ(Rmse(v, v), 0.0);
  EXPECT_EQ(Mae(v, v), 0.0);
}

}  // namespace
}  // namespace tamp
