#include <set>

#include <gtest/gtest.h>

#include "assign/bounds.h"
#include "assign/ggpso.h"
#include "assign/km_assigner.h"
#include "common/rng.h"

namespace tamp::assign {
namespace {

SpatialTask MakeTask(int id, geo::Point loc, double deadline = 1000.0) {
  SpatialTask t;
  t.id = id;
  t.location = loc;
  t.deadline_min = deadline;
  return t;
}

CandidateWorker MakeWorker(int id, geo::Point current,
                           std::vector<geo::TimedPoint> predicted,
                           double detour_km = 4.0) {
  CandidateWorker w;
  w.id = id;
  w.current_location = current;
  w.predicted = std::move(predicted);
  w.detour_budget_km = detour_km;
  w.speed_kmpm = 1.0;
  w.matching_rate = 0.5;
  return w;
}

void ExpectDisjoint(const AssignmentPlan& plan) {
  std::set<int> tasks, workers;
  for (const auto& pair : plan.pairs) {
    EXPECT_TRUE(tasks.insert(pair.task_index).second);
    EXPECT_TRUE(workers.insert(pair.worker_index).second);
  }
}

TEST(KmAssignTest, MatchesNearestFeasible) {
  std::vector<SpatialTask> tasks = {MakeTask(0, {0, 0}), MakeTask(1, {5, 0})};
  std::vector<CandidateWorker> workers = {
      MakeWorker(0, {0, 0}, {{0.2, 0.0, 10.0}}),
      MakeWorker(1, {5, 0}, {{5.1, 0.0, 10.0}}),
  };
  AssignmentPlan plan = KmAssign(tasks, workers, 0.0, 0.2);
  ExpectDisjoint(plan);
  ASSERT_EQ(plan.pairs.size(), 2u);
}

TEST(KmAssignTest, RespectsFeasibilityBound) {
  // Worker's predicted point is 3 km away but budget d=4 -> bound 2: no.
  std::vector<SpatialTask> tasks = {MakeTask(0, {3.0, 0.0})};
  std::vector<CandidateWorker> workers = {
      MakeWorker(0, {0, 0}, {{0.0, 0.0, 10.0}})};
  EXPECT_TRUE(KmAssign(tasks, workers, 0.0, 0.0).pairs.empty());
}

TEST(UpperBoundAssignTest, UsesRealTrajectories) {
  std::vector<SpatialTask> tasks = {MakeTask(0, {2.0, 1.0})};
  // The predicted view is useless, but the real routine passes close by.
  std::vector<CandidateWorker> workers = {
      MakeWorker(0, {0, 0}, {{50.0, 50.0, 10.0}})};
  std::vector<geo::Trajectory> real = {
      geo::Trajectory({{0, 0, 0.0}, {4, 0, 4.0}})};
  AssignmentPlan plan = UpperBoundAssign(tasks, workers, real, 0.0);
  ASSERT_EQ(plan.pairs.size(), 1u);
  // Detour = dis((0,0),(2,1)) + dis((2,1),(4,0)) - 4.
  double expected = std::sqrt(5.0) + std::sqrt(5.0) - 4.0;
  EXPECT_NEAR(plan.pairs[0].expected_detour_km, expected, 1e-9);
}

TEST(UpperBoundAssignTest, AcceptanceByConstruction) {
  // Every UB pair satisfies the real-trajectory constraints, so replaying
  // the acceptance test never rejects (rejection rate 0, Section IV-A).
  tamp::Rng rng(5);
  std::vector<SpatialTask> tasks;
  std::vector<CandidateWorker> workers;
  std::vector<geo::Trajectory> real;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back(MakeTask(i, {rng.Uniform(0, 10), rng.Uniform(0, 10)},
                             rng.Uniform(10, 40)));
    geo::Point start{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    geo::Point end{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    real.push_back(geo::Trajectory(
        {{start, 0.0}, {end, geo::Distance(start, end)}}));
    workers.push_back(MakeWorker(i, start, {}));
  }
  AssignmentPlan plan = UpperBoundAssign(tasks, workers, real, 0.0);
  ExpectDisjoint(plan);
  for (const auto& pair : plan.pairs) {
    auto visit = geo::PlanTaskVisit(real[pair.worker_index],
                                    tasks[pair.task_index].location, 1.0,
                                    tasks[pair.task_index].deadline_min);
    ASSERT_TRUE(visit.has_value());
    EXPECT_LE(visit->detour_km,
              workers[pair.worker_index].detour_budget_km + 1e-9);
  }
}

TEST(LowerBoundAssignTest, UsesCurrentLocationOnly) {
  std::vector<SpatialTask> tasks = {MakeTask(0, {1.0, 0.0})};
  std::vector<CandidateWorker> workers = {
      MakeWorker(0, {0, 0}, /*predicted=*/{})};
  AssignmentPlan plan = LowerBoundAssign(tasks, workers, 0.0);
  ASSERT_EQ(plan.pairs.size(), 1u);
  // LB's naive cost estimate is the current distance itself.
  EXPECT_NEAR(plan.pairs[0].expected_detour_km, 1.0, 1e-12);
}

TEST(LowerBoundAssignTest, DetourBudgetBindsOutAndBack) {
  // Task 2.5 km away exceeds the d/2 = 2 km bound (out-and-back logic).
  std::vector<SpatialTask> tasks = {MakeTask(0, {2.5, 0.0})};
  std::vector<CandidateWorker> workers = {MakeWorker(0, {0, 0}, {})};
  EXPECT_TRUE(LowerBoundAssign(tasks, workers, 0.0).pairs.empty());
}

TEST(GgpsoAssignTest, ProducesValidPlans) {
  tamp::Rng rng(7);
  std::vector<SpatialTask> tasks;
  std::vector<CandidateWorker> workers;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back(MakeTask(i, {rng.Uniform(0, 10), rng.Uniform(0, 10)},
                             rng.Uniform(20, 60)));
    std::vector<geo::TimedPoint> pred;
    for (int p = 0; p < 3; ++p) {
      pred.push_back(
          {{rng.Uniform(0, 10), rng.Uniform(0, 10)}, 10.0 * (p + 1)});
    }
    workers.push_back(
        MakeWorker(i, {rng.Uniform(0, 10), rng.Uniform(0, 10)}, pred));
  }
  GgpsoConfig config;
  config.generations = 20;
  AssignmentPlan plan = GgpsoAssign(tasks, workers, 0.0, config);
  ExpectDisjoint(plan);
}

TEST(GgpsoAssignTest, FindsTheObviousMatching) {
  // One feasible worker per task: GGPSO must assign all of them.
  std::vector<SpatialTask> tasks;
  std::vector<CandidateWorker> workers;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(MakeTask(i, {5.0 * i, 0.0}));
    workers.push_back(
        MakeWorker(i, {5.0 * i, 0.0}, {{5.0 * i + 0.2, 0.0, 10.0}}));
  }
  GgpsoConfig config;
  config.match_radius_km = 0.0;
  AssignmentPlan plan = GgpsoAssign(tasks, workers, 0.0, config);
  EXPECT_EQ(plan.pairs.size(), 4u);
}

TEST(GgpsoAssignTest, DeterministicForSeed) {
  std::vector<SpatialTask> tasks = {MakeTask(0, {0, 0}), MakeTask(1, {2, 0})};
  std::vector<CandidateWorker> workers = {
      MakeWorker(0, {0, 0}, {{0.1, 0.0, 10.0}, {1.9, 0.0, 20.0}}),
      MakeWorker(1, {2, 0}, {{2.1, 0.0, 10.0}}),
  };
  GgpsoConfig config;
  config.seed = 11;
  AssignmentPlan a = GgpsoAssign(tasks, workers, 0.0, config);
  AssignmentPlan b = GgpsoAssign(tasks, workers, 0.0, config);
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (size_t i = 0; i < a.pairs.size(); ++i) {
    EXPECT_EQ(a.pairs[i].task_index, b.pairs[i].task_index);
    EXPECT_EQ(a.pairs[i].worker_index, b.pairs[i].worker_index);
  }
}

TEST(GgpsoAssignTest, EmptyInputs) {
  GgpsoConfig config;
  EXPECT_TRUE(GgpsoAssign({}, {}, 0.0, config).pairs.empty());
}

}  // namespace
}  // namespace tamp::assign
