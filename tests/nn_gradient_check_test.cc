#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/encoder_decoder.h"
#include "nn/linear.h"
#include "nn/lstm_cell.h"

namespace tamp::nn {
namespace {

/// Central-difference numerical gradient of a scalar function of the
/// parameter vector.
std::vector<double> NumericalGradient(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> params, double h = 1e-6) {
  std::vector<double> grad(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    double orig = params[i];
    params[i] = orig + h;
    double plus = f(params);
    params[i] = orig - h;
    double minus = f(params);
    params[i] = orig;
    grad[i] = (plus - minus) / (2.0 * h);
  }
  return grad;
}

double MaxRelError(const std::vector<double>& a,
                   const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double denom = std::max({std::fabs(a[i]), std::fabs(b[i]), 1e-4});
    worst = std::max(worst, std::fabs(a[i] - b[i]) / denom);
  }
  return worst;
}

TEST(LinearGradientTest, MatchesFiniteDifferences) {
  tamp::Rng rng(3);
  Linear layer(3, 2, 0);
  std::vector<double> params(layer.param_count());
  layer.InitParams(rng, params);
  std::vector<double> x = {0.5, -0.3, 0.8};
  std::vector<double> target = {0.2, -0.1};

  auto loss_fn = [&](const std::vector<double>& p) {
    std::vector<double> y;
    layer.Forward(p, x.data(), y);
    double loss = 0.0;
    for (size_t i = 0; i < y.size(); ++i) {
      loss += (y[i] - target[i]) * (y[i] - target[i]);
    }
    return loss;
  };

  // Analytic gradient: dL/dy = 2(y - t), backprop through the layer.
  std::vector<double> y;
  layer.Forward(params, x.data(), y);
  std::vector<double> dy(y.size());
  for (size_t i = 0; i < y.size(); ++i) dy[i] = 2.0 * (y[i] - target[i]);
  std::vector<double> grad(params.size(), 0.0);
  std::vector<double> dx(x.size());
  layer.Backward(params, x.data(), dy.data(), grad, dx.data());

  std::vector<double> numeric = NumericalGradient(loss_fn, params);
  EXPECT_LT(MaxRelError(grad, numeric), 1e-5);
}

TEST(LinearGradientTest, InputGradientMatchesFiniteDifferences) {
  tamp::Rng rng(4);
  Linear layer(3, 2, 0);
  std::vector<double> params(layer.param_count());
  layer.InitParams(rng, params);
  std::vector<double> x = {0.5, -0.3, 0.8};

  auto loss_of_x = [&](const std::vector<double>& xin) {
    std::vector<double> y;
    layer.Forward(params, xin.data(), y);
    return y[0] * y[0] + 0.5 * y[1];
  };

  std::vector<double> y;
  layer.Forward(params, x.data(), y);
  std::vector<double> dy = {2.0 * y[0], 0.5};
  std::vector<double> grad(params.size(), 0.0);
  std::vector<double> dx(x.size());
  layer.Backward(params, x.data(), dy.data(), grad, dx.data());

  std::vector<double> numeric = NumericalGradient(loss_of_x, x);
  EXPECT_LT(MaxRelError(dx, numeric), 1e-5);
}

TEST(LstmCellGradientTest, MatchesFiniteDifferencesThroughTwoSteps) {
  tamp::Rng rng(5);
  const int input_dim = 2, hidden = 3;
  LstmCell cell(input_dim, hidden, 0);
  std::vector<double> params(cell.param_count());
  cell.InitParams(rng, params);
  std::vector<std::vector<double>> xs = {{0.3, -0.7}, {0.9, 0.1}};

  // Scalar objective: sum of final hidden state entries squared.
  auto loss_fn = [&](const std::vector<double>& p) {
    std::vector<double> h(hidden, 0.0), c(hidden, 0.0);
    LstmStepCache cache;
    for (const auto& x : xs) cell.Forward(p, x.data(), h, c, cache);
    double loss = 0.0;
    for (double v : h) loss += v * v;
    return loss;
  };

  // Analytic: forward with caches, backprop both steps.
  std::vector<double> h(hidden, 0.0), c(hidden, 0.0);
  std::vector<LstmStepCache> caches(xs.size());
  for (size_t t = 0; t < xs.size(); ++t) {
    cell.Forward(params, xs[t].data(), h, c, caches[t]);
  }
  std::vector<double> dh(hidden), dc(hidden, 0.0);
  for (int k = 0; k < hidden; ++k) dh[k] = 2.0 * h[k];
  std::vector<double> grad(params.size(), 0.0);
  for (int t = static_cast<int>(xs.size()) - 1; t >= 0; --t) {
    cell.Backward(params, caches[t], dh, dc, grad, nullptr);
  }

  std::vector<double> numeric = NumericalGradient(loss_fn, params);
  EXPECT_LT(MaxRelError(grad, numeric), 1e-4);
}

TEST(EncoderDecoderGradientTest, MatchesFiniteDifferences) {
  tamp::Rng rng(6);
  Seq2SeqConfig config;
  config.hidden_dim = 4;
  config.seq_out = 2;
  EncoderDecoder model(config);
  std::vector<double> params = model.InitParams(rng);

  Sequence input = {{0.2, 0.3}, {0.25, 0.35}, {0.3, 0.4}};
  Sequence target = {{0.35, 0.45}, {0.4, 0.5}};

  auto loss_fn = [&](const std::vector<double>& p) {
    std::vector<double> scratch(p.size(), 0.0);
    return model.LossAndGradient(p, input, target, {}, scratch);
  };

  std::vector<double> grad(params.size(), 0.0);
  model.LossAndGradient(params, input, target, {}, grad);
  std::vector<double> numeric = NumericalGradient(loss_fn, params);
  EXPECT_LT(MaxRelError(grad, numeric), 1e-4);
}

TEST(EncoderDecoderGradientTest, WeightedLossGradientMatches) {
  tamp::Rng rng(7);
  Seq2SeqConfig config;
  config.hidden_dim = 4;
  config.seq_out = 2;
  EncoderDecoder model(config);
  std::vector<double> params = model.InitParams(rng);

  Sequence input = {{0.1, 0.9}, {0.2, 0.8}};
  Sequence target = {{0.3, 0.7}, {0.4, 0.6}};
  std::vector<double> weights = {2.5, 0.5};  // Task-oriented step weights.

  auto loss_fn = [&](const std::vector<double>& p) {
    std::vector<double> scratch(p.size(), 0.0);
    return model.LossAndGradient(p, input, target, weights, scratch);
  };

  std::vector<double> grad(params.size(), 0.0);
  model.LossAndGradient(params, input, target, weights, grad);
  std::vector<double> numeric = NumericalGradient(loss_fn, params);
  EXPECT_LT(MaxRelError(grad, numeric), 1e-4);
}

}  // namespace
}  // namespace tamp::nn
