#include "core/rollout.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tamp::core {
namespace {

TEST(RolloutPredictTest, ProducesRequestedHorizon) {
  tamp::Rng rng(3);
  nn::Seq2SeqConfig config;
  config.hidden_dim = 6;
  config.seq_out = 1;
  nn::EncoderDecoder model(config);
  std::vector<double> params = model.InitParams(rng);
  geo::GridSpec grid(20.0, 10.0, 50, 100);

  std::vector<geo::Point> recent = {{5, 5}, {5.5, 5}, {6, 5}};
  auto predicted =
      RolloutPredict(model, params, recent, grid, 6, 100.0, 10.0);
  ASSERT_EQ(predicted.size(), 6u);
  for (size_t i = 0; i < predicted.size(); ++i) {
    EXPECT_DOUBLE_EQ(predicted[i].time_min, 100.0 + 10.0 * (i + 1));
    EXPECT_GE(predicted[i].loc.x, 0.0);
    EXPECT_LE(predicted[i].loc.x, grid.width_km());
    EXPECT_GE(predicted[i].loc.y, 0.0);
    EXPECT_LE(predicted[i].loc.y, grid.height_km());
  }
}

TEST(RolloutPredictTest, MultiStepModelFillsHorizonInChunks) {
  tamp::Rng rng(5);
  nn::Seq2SeqConfig config;
  config.hidden_dim = 6;
  config.seq_out = 3;
  nn::EncoderDecoder model(config);
  std::vector<double> params = model.InitParams(rng);
  geo::GridSpec grid(20.0, 10.0, 50, 100);

  auto predicted = RolloutPredict(model, params, {{5, 5}}, grid, 7, 0.0, 10.0);
  EXPECT_EQ(predicted.size(), 7u);  // 3 + 3 + 1 (truncated).
}

TEST(RolloutPredictTest, DeterministicGivenParams) {
  tamp::Rng rng(7);
  nn::Seq2SeqConfig config;
  config.hidden_dim = 6;
  nn::EncoderDecoder model(config);
  std::vector<double> params = model.InitParams(rng);
  geo::GridSpec grid(20.0, 10.0, 50, 100);
  std::vector<geo::Point> recent = {{3, 3}, {4, 4}};
  auto a = RolloutPredict(model, params, recent, grid, 5, 0.0, 10.0);
  auto b = RolloutPredict(model, params, recent, grid, 5, 0.0, 10.0);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].loc.x, b[i].loc.x);
    EXPECT_DOUBLE_EQ(a[i].loc.y, b[i].loc.y);
  }
}

TEST(RolloutPredictTest, TrainedModelExtrapolatesMotion) {
  // Train a small model on rightward motion (+0.05 per step, normalized),
  // then check the rollout continues rightward.
  tamp::Rng rng(9);
  nn::Seq2SeqConfig config;
  config.hidden_dim = 8;
  nn::EncoderDecoder model(config);
  std::vector<double> params = model.InitParams(rng);
  std::vector<double> grad(params.size());
  for (int epoch = 0; epoch < 300; ++epoch) {
    double x = rng.Uniform(0.1, 0.5), y = rng.Uniform(0.3, 0.7);
    nn::Sequence input;
    for (int t = 0; t < 3; ++t) input.push_back({x + 0.05 * t, y});
    nn::Sequence target = {{x + 0.15, y}};
    std::fill(grad.begin(), grad.end(), 0.0);
    model.LossAndGradient(params, input, target, {}, grad);
    for (size_t i = 0; i < params.size(); ++i) params[i] -= 0.2 * grad[i];
  }
  geo::GridSpec grid(10.0, 10.0, 10, 10);
  std::vector<geo::Point> recent = {{2.0, 5.0}, {2.5, 5.0}, {3.0, 5.0}};
  auto predicted = RolloutPredict(model, params, recent, grid, 4, 0.0, 10.0);
  // Each prediction should be to the right of the last observation, and
  // the sequence should keep advancing.
  EXPECT_GT(predicted[0].loc.x, 3.0);
  EXPECT_GT(predicted[3].loc.x, predicted[0].loc.x);
}

}  // namespace
}  // namespace tamp::core
