#include "nn/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tamp::nn {
namespace {

/// Quadratic bowl f(x) = sum (x_i - c_i)^2, gradient 2(x - c).
std::vector<double> QuadGrad(const std::vector<double>& x,
                             const std::vector<double>& c) {
  std::vector<double> g(x.size());
  for (size_t i = 0; i < x.size(); ++i) g[i] = 2.0 * (x[i] - c[i]);
  return g;
}

TEST(SgdTest, SingleStepMovesAgainstGradient) {
  Sgd opt(0.1);
  std::vector<double> params = {1.0, -2.0};
  std::vector<double> grad = {0.5, -1.0};
  opt.Step(params, grad);
  EXPECT_DOUBLE_EQ(params[0], 0.95);
  EXPECT_DOUBLE_EQ(params[1], -1.9);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Sgd opt(0.1);
  std::vector<double> x = {5.0, -3.0, 0.0};
  std::vector<double> target = {1.0, 2.0, -4.0};
  for (int i = 0; i < 200; ++i) opt.Step(x, QuadGrad(x, target));
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], target[i], 1e-6);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  std::vector<double> x = {5.0, -3.0};
  std::vector<double> target = {1.0, 2.0};
  Adam opt(x.size(), 0.1);
  for (int i = 0; i < 500; ++i) opt.Step(x, QuadGrad(x, target));
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], target[i], 1e-3);
}

TEST(AdamTest, ResetClearsState) {
  std::vector<double> x = {1.0};
  Adam opt(1, 0.1);
  std::vector<double> g = {1.0};
  opt.Step(x, g);
  double after_first = x[0];
  opt.Reset();
  std::vector<double> y = {1.0};
  opt.Step(y, g);
  EXPECT_DOUBLE_EQ(y[0], after_first);
}

TEST(AdamTest, FirstStepSizeIsLearningRate) {
  // Adam's bias correction makes the first step ~lr * sign(grad).
  std::vector<double> x = {0.0};
  Adam opt(1, 0.05);
  std::vector<double> g = {123.0};
  opt.Step(x, g);
  EXPECT_NEAR(x[0], -0.05, 1e-6);
}

TEST(ClipGradientNormTest, NoClipBelowMax) {
  std::vector<double> g = {3.0, 4.0};  // Norm 5.
  double norm = ClipGradientNorm(g, 10.0);
  EXPECT_DOUBLE_EQ(norm, 5.0);
  EXPECT_DOUBLE_EQ(g[0], 3.0);
  EXPECT_DOUBLE_EQ(g[1], 4.0);
}

TEST(ClipGradientNormTest, RescalesAboveMax) {
  std::vector<double> g = {3.0, 4.0};  // Norm 5.
  double norm = ClipGradientNorm(g, 1.0);
  EXPECT_DOUBLE_EQ(norm, 5.0);
  EXPECT_NEAR(std::sqrt(g[0] * g[0] + g[1] * g[1]), 1.0, 1e-12);
  EXPECT_NEAR(g[0] / g[1], 0.75, 1e-12);  // Direction preserved.
}

TEST(ClipGradientNormTest, ZeroGradientUntouched) {
  std::vector<double> g = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(ClipGradientNorm(g, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(g[0], 0.0);
}

}  // namespace
}  // namespace tamp::nn
