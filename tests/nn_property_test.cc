// Parameterized property sweeps over the neural substrate: gradient
// correctness and shape invariants must hold for every architecture the
// experiments instantiate (hidden sizes, input dims, seq_out).
#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/encoder_decoder.h"

namespace tamp::nn {
namespace {

struct Arch {
  int input_dim;
  int hidden_dim;
  int seq_out;
  int seq_in;
};

class ArchSweep : public ::testing::TestWithParam<Arch> {};

Sequence RandomSequence(int steps, int dim, tamp::Rng& rng) {
  Sequence seq(steps);
  for (auto& step : seq) {
    step.resize(dim);
    for (double& v : step) v = rng.Uniform(0.0, 1.0);
  }
  return seq;
}

TEST_P(ArchSweep, GradientMatchesFiniteDifferences) {
  const Arch arch = GetParam();
  Seq2SeqConfig config;
  config.input_dim = arch.input_dim;
  config.hidden_dim = arch.hidden_dim;
  config.seq_out = arch.seq_out;
  EncoderDecoder model(config);
  tamp::Rng rng(31 + arch.hidden_dim);
  std::vector<double> params = model.InitParams(rng);
  Sequence input = RandomSequence(arch.seq_in, arch.input_dim, rng);
  Sequence target = RandomSequence(arch.seq_out, config.output_dim, rng);

  std::vector<double> grad(params.size(), 0.0);
  model.LossAndGradient(params, input, target, {}, grad);

  // Spot-check a deterministic subset of coordinates against central
  // differences (full sweeps run in nn_gradient_check_test).
  auto loss_at = [&](std::vector<double> p) {
    std::vector<double> scratch(p.size(), 0.0);
    return model.LossAndGradient(p, input, target, {}, scratch);
  };
  const double h = 1e-6;
  for (size_t i = 0; i < params.size(); i += params.size() / 17 + 1) {
    std::vector<double> plus = params, minus = params;
    plus[i] += h;
    minus[i] -= h;
    double numeric = (loss_at(plus) - loss_at(minus)) / (2.0 * h);
    double denom = std::max({std::fabs(grad[i]), std::fabs(numeric), 1e-4});
    EXPECT_LT(std::fabs(grad[i] - numeric) / denom, 1e-4)
        << "param " << i << " analytic " << grad[i] << " numeric " << numeric;
  }
}

TEST_P(ArchSweep, PredictShapesAreConsistent) {
  const Arch arch = GetParam();
  Seq2SeqConfig config;
  config.input_dim = arch.input_dim;
  config.hidden_dim = arch.hidden_dim;
  config.seq_out = arch.seq_out;
  EncoderDecoder model(config);
  tamp::Rng rng(7);
  std::vector<double> params = model.InitParams(rng);
  Sequence input = RandomSequence(arch.seq_in, arch.input_dim, rng);
  Sequence pred = model.Predict(params, input);
  ASSERT_EQ(static_cast<int>(pred.size()), arch.seq_out);
  for (const auto& step : pred) {
    ASSERT_EQ(static_cast<int>(step.size()), config.output_dim);
    for (double v : step) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST_P(ArchSweep, LossIsNonNegativeAndZeroAtTarget) {
  const Arch arch = GetParam();
  Seq2SeqConfig config;
  config.input_dim = arch.input_dim;
  config.hidden_dim = arch.hidden_dim;
  config.seq_out = arch.seq_out;
  EncoderDecoder model(config);
  tamp::Rng rng(11);
  std::vector<double> params = model.InitParams(rng);
  Sequence input = RandomSequence(arch.seq_in, arch.input_dim, rng);
  Sequence target = RandomSequence(arch.seq_out, config.output_dim, rng);
  std::vector<double> grad(params.size(), 0.0);
  EXPECT_GE(model.LossAndGradient(params, input, target, {}, grad), 0.0);
  Sequence oracle = model.Predict(params, input);
  EXPECT_NEAR(model.EvalLoss(params, input, oracle, {}), 0.0, 1e-18);
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, ArchSweep,
    ::testing::Values(Arch{2, 4, 1, 3}, Arch{2, 8, 2, 5}, Arch{3, 4, 1, 5},
                      Arch{3, 6, 3, 4}, Arch{2, 4, 1, 1}, Arch{3, 12, 2, 10}));

}  // namespace
}  // namespace tamp::nn
