#include "assign/bounds.h"

#include <algorithm>

#include "common/check.h"
#include "matching/hungarian.h"

namespace tamp::assign {

AssignmentPlan UpperBoundAssign(const std::vector<SpatialTask>& tasks,
                                const std::vector<CandidateWorker>& workers,
                                const std::vector<geo::Trajectory>& real_routines,
                                double now_min, double weight_floor_km) {
  TAMP_CHECK(workers.size() == real_routines.size());
  AssignmentPlan plan;
  if (tasks.empty() || workers.empty()) return plan;
  (void)now_min;

  std::vector<matching::Edge> edges;
  std::vector<std::vector<double>> detours(
      tasks.size(), std::vector<double>(workers.size(), 0.0));
  for (size_t t = 0; t < tasks.size(); ++t) {
    for (size_t w = 0; w < workers.size(); ++w) {
      if (tasks[t].DeclinedBy(workers[w].id)) continue;
      auto visit = geo::PlanTaskVisit(real_routines[w], tasks[t].location,
                                      workers[w].speed_kmpm,
                                      tasks[t].deadline_min);
      if (!visit.has_value()) continue;
      if (visit->detour_km > workers[w].detour_budget_km) continue;
      detours[t][w] = visit->detour_km;
      edges.push_back({static_cast<int>(t), static_cast<int>(w),
                       1.0 / (visit->detour_km + weight_floor_km)});
    }
  }
  matching::MatchResult result = matching::MaxWeightMatching(
      static_cast<int>(tasks.size()), static_cast<int>(workers.size()), edges);
  for (auto [t, w] : result.pairs) {
    plan.pairs.push_back(
        {t, w, detours[static_cast<size_t>(t)][static_cast<size_t>(w)]});
  }
  return plan;
}

AssignmentPlan LowerBoundAssign(const std::vector<SpatialTask>& tasks,
                                const std::vector<CandidateWorker>& workers,
                                double now_min, double weight_floor_km) {
  AssignmentPlan plan;
  if (tasks.empty() || workers.empty()) return plan;

  std::vector<matching::Edge> edges;
  std::vector<std::vector<double>> detours(
      tasks.size(), std::vector<double>(workers.size(), 0.0));
  for (size_t t = 0; t < tasks.size(); ++t) {
    for (size_t w = 0; w < workers.size(); ++w) {
      if (tasks[t].DeclinedBy(workers[w].id)) continue;
      // The mobility-ignorant view: the same dis <= min(d/2, d_t) bound
      // PPI's stage 3 applies to predicted points, evaluated on the one
      // point this baseline knows — the current location. Whether the
      // worker's actual routine tolerates the detour is exactly what it
      // cannot know — hence its rejections.
      double dis = geo::Distance(workers[w].current_location,
                                 tasks[t].location);
      double d_t =
          workers[w].speed_kmpm * (tasks[t].deadline_min - now_min);
      if (tasks[t].deadline_min <= now_min) continue;
      if (dis > std::min(workers[w].detour_budget_km / 2.0, d_t)) continue;
      detours[t][w] = dis;
      edges.push_back({static_cast<int>(t), static_cast<int>(w),
                       1.0 / (dis + weight_floor_km)});
    }
  }
  matching::MatchResult result = matching::MaxWeightMatching(
      static_cast<int>(tasks.size()), static_cast<int>(workers.size()), edges);
  for (auto [t, w] : result.pairs) {
    plan.pairs.push_back(
        {t, w, detours[static_cast<size_t>(t)][static_cast<size_t>(w)]});
  }
  return plan;
}

}  // namespace tamp::assign
