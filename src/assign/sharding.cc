#include "assign/sharding.h"

#include <algorithm>
#include <cstdint>

#include "common/check.h"
#include "common/obs/metrics.h"
#include "common/obs/trace.h"
#include "common/parallel.h"

namespace tamp::assign {
namespace {

/// Packed (left, right) pair key; batch indices are well under 2^31.
int64_t PairKey(int left, int right) {
  return (static_cast<int64_t>(left) << 32) |
         static_cast<int64_t>(static_cast<uint32_t>(right));
}

uint64_t Fnv1aMix(uint64_t h, uint64_t x) {
  // One 64-bit FNV-1a step per ingested word.
  constexpr uint64_t kPrime = 1099511628211ull;
  return (h ^ x) * kPrime;
}

/// Union-find over task/worker nodes with path halving + union by size.
/// All traversal is by ascending index — never hash order — so the
/// resulting components and their numbering are deterministic.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
  }

  int Find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }

  void Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[static_cast<size_t>(a)] < size_[static_cast<size_t>(b)]) {
      std::swap(a, b);
    }
    parent_[static_cast<size_t>(b)] = a;
    size_[static_cast<size_t>(a)] += size_[static_cast<size_t>(b)];
  }

 private:
  std::vector<int> parent_;
  std::vector<int> size_;
};

}  // namespace

ShardPlan BuildShardPlan(const std::vector<std::vector<TaskCandidate>>& table,
                         const std::vector<SpatialTask>& tasks,
                         const std::vector<CandidateWorker>& workers) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter& count_counter =
      registry.GetCounter("assign.shard_count");
  static obs::Gauge& max_rows_gauge =
      registry.GetGauge("assign.shard_max_rows");

  TAMP_CHECK(table.size() == tasks.size());
  const int num_tasks = static_cast<int>(tasks.size());
  const int num_workers = static_cast<int>(workers.size());

  ShardPlan plan;
  plan.shard_of_task.assign(static_cast<size_t>(num_tasks), -1);
  plan.shard_of_worker.assign(static_cast<size_t>(num_workers), -1);

  // Nodes 0..T-1 are tasks, T..T+W-1 are workers. Every table row unions
  // its task with its worker; rows are visited in index order.
  UnionFind uf(static_cast<size_t>(num_tasks + num_workers));
  for (int t = 0; t < num_tasks; ++t) {
    for (const TaskCandidate& tc : table[static_cast<size_t>(t)]) {
      TAMP_DCHECK(tc.worker >= 0 && tc.worker < num_workers);
      uf.Union(t, num_tasks + tc.worker);
    }
  }

  // Number the components by first appearance over ascending task index;
  // tasks (and workers) with no rows stay unsharded (-1).
  std::vector<int> shard_of_root(static_cast<size_t>(num_tasks + num_workers),
                                 -1);
  for (int t = 0; t < num_tasks; ++t) {
    if (table[static_cast<size_t>(t)].empty()) continue;
    const int root = uf.Find(t);
    int& shard = shard_of_root[static_cast<size_t>(root)];
    if (shard < 0) {
      shard = static_cast<int>(plan.shards.size());
      plan.shards.emplace_back();
    }
    plan.shard_of_task[static_cast<size_t>(t)] = shard;
    plan.shards[static_cast<size_t>(shard)].tasks.push_back(t);
    const int64_t rows =
        static_cast<int64_t>(table[static_cast<size_t>(t)].size());
    plan.shards[static_cast<size_t>(shard)].rows += rows;
    plan.total_rows += rows;
  }
  for (int w = 0; w < num_workers; ++w) {
    const int shard = shard_of_root[static_cast<size_t>(uf.Find(num_tasks + w))];
    if (shard < 0) continue;  // No row references this worker.
    plan.shard_of_worker[static_cast<size_t>(w)] = shard;
    plan.shards[static_cast<size_t>(shard)].workers.push_back(w);
  }

  for (Shard& shard : plan.shards) {
    shard.cost = shard.rows * static_cast<int64_t>(shard.tasks.size() +
                                                   shard.workers.size());
    // Signature over stable ids (batch indices shift as the pool churns),
    // hashed in sorted-id order so it is a pure function of the membership
    // *set* — the same tasks/workers permuted to different batch positions
    // find their warm holder again. The 0/1 tags keep {task ids} and
    // {worker ids} from colliding.
    std::vector<int64_t> task_ids, worker_ids;
    task_ids.reserve(shard.tasks.size());
    for (int t : shard.tasks) {
      task_ids.push_back(tasks[static_cast<size_t>(t)].id);
    }
    worker_ids.reserve(shard.workers.size());
    for (int w : shard.workers) {
      worker_ids.push_back(workers[static_cast<size_t>(w)].id);
    }
    std::sort(task_ids.begin(), task_ids.end());
    std::sort(worker_ids.begin(), worker_ids.end());
    uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis.
    for (int64_t id : task_ids) {
      h = Fnv1aMix(h, 0);
      h = Fnv1aMix(h, static_cast<uint64_t>(id));
    }
    for (int64_t id : worker_ids) {
      h = Fnv1aMix(h, 1);
      h = Fnv1aMix(h, static_cast<uint64_t>(id));
    }
    shard.signature = h;
    plan.max_rows = std::max(plan.max_rows, shard.rows);
  }

  // LPT order: most expensive shard first, so the pool's dynamic index
  // claiming balances thread load. stable_sort keeps equal-cost shards in
  // first-appearance order — the ordering is deterministic either way, but
  // stability makes it independent of the sort implementation.
  std::vector<size_t> order(plan.shards.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return plan.shards[a].cost > plan.shards[b].cost;
  });
  std::vector<int> new_of_old(plan.shards.size());
  std::vector<Shard> sorted;
  sorted.reserve(plan.shards.size());
  for (size_t rank = 0; rank < order.size(); ++rank) {
    new_of_old[order[rank]] = static_cast<int>(rank);
    sorted.push_back(std::move(plan.shards[order[rank]]));
  }
  plan.shards = std::move(sorted);
  for (int& s : plan.shard_of_task) {
    if (s >= 0) s = new_of_old[static_cast<size_t>(s)];
  }
  for (int& s : plan.shard_of_worker) {
    if (s >= 0) s = new_of_old[static_cast<size_t>(s)];
  }

  count_counter.Increment(static_cast<int64_t>(plan.shards.size()));
  max_rows_gauge.Set(static_cast<double>(plan.max_rows));
  return plan;
}

void ShardWarmPool::BeginBatch(size_t incoming) {
  if (holders_.size() + incoming > kMaxHolders) holders_.clear();
}

matching::KmWarmState* ShardWarmPool::Acquire(uint64_t signature) {
  return &holders_[signature];
}

matching::MatchResult ShardedMaxWeightMatching(
    int num_left, int num_right, const std::vector<matching::Edge>& edges,
    const ShardPlan& plan, ShardWarmPool* warm_pool, uint64_t warm_salt) {
  TAMP_CHECK(num_left >= 0 && num_right >= 0);
  TAMP_CHECK(plan.shard_of_task.size() == static_cast<size_t>(num_left));
  TAMP_CHECK(plan.shard_of_worker.size() == static_cast<size_t>(num_right));
  matching::MatchResult result;
  if (edges.empty() || plan.shards.empty()) return result;

  const size_t num_shards = plan.shards.size();
  // Shard-local index of each global task/worker (each belongs to <= 1
  // shard; member lists are ascending, so local order mirrors global).
  std::vector<int> local_of_task(static_cast<size_t>(num_left), -1);
  std::vector<int> local_of_worker(static_cast<size_t>(num_right), -1);
  for (const Shard& shard : plan.shards) {
    for (size_t i = 0; i < shard.tasks.size(); ++i) {
      local_of_task[static_cast<size_t>(shard.tasks[i])] =
          static_cast<int>(i);
    }
    for (size_t i = 0; i < shard.workers.size(); ++i) {
      local_of_worker[static_cast<size_t>(shard.workers[i])] =
          static_cast<int>(i);
    }
  }

  // Partition edges by shard (relative order preserved) and remember each
  // pair's effective (duplicate-max) weight for the merged total below.
  std::vector<std::vector<matching::Edge>> shard_edges(num_shards);
  std::unordered_map<int64_t, double> weight_of_pair;  // Lookup-only.
  weight_of_pair.reserve(edges.size());
  for (const matching::Edge& e : edges) {
    TAMP_CHECK(e.left >= 0 && e.left < num_left);
    TAMP_CHECK(e.right >= 0 && e.right < num_right);
    if (e.weight <= 0.0) continue;  // The global matcher drops these too.
    const int s = plan.shard_of_task[static_cast<size_t>(e.left)];
    // A positive-weight edge is a candidate row, and every row was unioned
    // into exactly one component — so both endpoints share a shard.
    TAMP_CHECK_MSG(s >= 0 &&
                       s == plan.shard_of_worker[static_cast<size_t>(e.right)],
                   "edge crosses shard boundaries: plan/edges mismatch");
    shard_edges[static_cast<size_t>(s)].push_back(
        {local_of_task[static_cast<size_t>(e.left)],
         local_of_worker[static_cast<size_t>(e.right)], e.weight});
    double& cell = weight_of_pair[PairKey(e.left, e.right)];
    cell = std::max(cell, e.weight);
  }

  // Acquire warm holders serially before the fan-out (the pool is not
  // thread-safe). A signature collision inside one batch would hand two
  // concurrent solves the same holder — degrade the later shard to cold
  // instead of racing.
  std::vector<matching::KmWarmState*> warm_of(num_shards, nullptr);
  if (warm_pool != nullptr) {
    warm_pool->BeginBatch(num_shards);
    std::vector<matching::KmWarmState*> seen;
    seen.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      if (shard_edges[s].empty()) continue;
      const uint64_t key =
          Fnv1aMix(plan.shards[s].signature, warm_salt + 1);
      matching::KmWarmState* holder = warm_pool->Acquire(key);
      if (std::find(seen.begin(), seen.end(), holder) != seen.end()) continue;
      seen.push_back(holder);
      warm_of[s] = holder;
    }
  }

  // Solve shards concurrently. LPT: the plan orders shards cost-
  // descending and the pool claims indices dynamically, so the largest
  // solves start first. Writes are slot-indexed (sub[s]); the per-thread
  // scratch is the standard thread_local idiom of the parallel runtime.
  obs::TraceSpan solve_span("assign.shard_solve");
  std::vector<matching::MatchResult> sub(num_shards);
  ParallelFor(num_shards, [&](size_t s) {
    if (shard_edges[s].empty()) return;
    thread_local matching::MatchingScratch scratch;
    sub[s] = matching::MaxWeightMatching(
        static_cast<int>(plan.shards[s].tasks.size()),
        static_cast<int>(plan.shards[s].workers.size()), shard_edges[s],
        &scratch, warm_of[s]);
  });

  // Merge in global left-ascending order — the global solve's emission
  // order — and recompute total_weight by summing the pair weights in that
  // order, so both the pair list and the total are bitwise-equal to the
  // unsharded MaxWeightMatching.
  for (size_t s = 0; s < num_shards; ++s) {
    for (auto [l, r] : sub[s].pairs) {
      result.pairs.emplace_back(
          plan.shards[s].tasks[static_cast<size_t>(l)],
          plan.shards[s].workers[static_cast<size_t>(r)]);
    }
  }
  std::sort(result.pairs.begin(), result.pairs.end());
  for (auto [l, r] : result.pairs) {
    const auto it = weight_of_pair.find(PairKey(l, r));
    TAMP_CHECK(it != weight_of_pair.end());
    result.total_weight += it->second;
  }
  return result;
}

}  // namespace tamp::assign
