#include "assign/candidate_index.h"

#include <algorithm>

namespace tamp::assign {
namespace {

std::vector<geo::SpatialLabelIndex::Entry> PlatformVisiblePoints(
    const std::vector<CandidateWorker>& workers) {
  std::vector<geo::SpatialLabelIndex::Entry> entries;
  size_t total = workers.size();
  for (const CandidateWorker& w : workers) total += w.predicted.size();
  entries.reserve(total);
  for (size_t i = 0; i < workers.size(); ++i) {
    const CandidateWorker& w = workers[i];
    const int label = static_cast<int>(i);
    for (const geo::TimedPoint& p : w.predicted) {
      entries.push_back({p.loc, label});
    }
    // The current location feeds stage 3's dis^min, so it must be able to
    // keep a worker un-pruned on its own (EvaluateCandidate's fallback).
    entries.push_back({w.current_location, label});
  }
  return entries;
}

double MaxHalfDetourKm(const std::vector<CandidateWorker>& workers) {
  double max_half = 0.0;
  for (const CandidateWorker& w : workers) {
    max_half = std::max(max_half, w.detour_budget_km / 2.0);
  }
  return max_half;
}

double MaxSpeedKmpm(const std::vector<CandidateWorker>& workers) {
  double max_speed = 0.0;
  for (const CandidateWorker& w : workers) {
    max_speed = std::max(max_speed, w.speed_kmpm);
  }
  return max_speed;
}

}  // namespace

CandidateIndex::CandidateIndex(const std::vector<CandidateWorker>& workers)
    : max_half_detour_km_(MaxHalfDetourKm(workers)),
      max_speed_kmpm_(MaxSpeedKmpm(workers)),
      // Cells at half the dominant prune radius: queries then touch a
      // handful of buckets instead of the dozens the density-derived auto
      // size yields, which is what keeps the per-query constant below the
      // dense per-row cost at realistic batch sizes.
      index_(PlatformVisiblePoints(workers), max_half_detour_km_ / 2.0) {}

double CandidateIndex::PruneRadius(const SpatialTask& task,
                                   double match_radius_km,
                                   double now_min) const {
  if (task.deadline_min <= now_min) return -1.0;  // Expired: prune all.
  const double d_t = max_speed_kmpm_ * (task.deadline_min - now_min);
  return std::min(max_half_detour_km_, d_t) + match_radius_km;
}

}  // namespace tamp::assign
