#include "assign/ggpso.h"

#include <algorithm>
#include <limits>
#include <optional>

#include "assign/candidate_index.h"
#include "assign/candidates.h"
#include "assign/incremental.h"
#include "assign/sharding.h"
#include "common/check.h"
#include "common/obs/metrics.h"
#include "common/obs/trace.h"
#include "common/stopwatch.h"

namespace tamp::assign {
namespace {

/// A chromosome: worker index per task, or -1 when unassigned. Workers
/// appear at most once.
struct Individual {
  std::vector<int> worker_of_task;
  double fitness = -std::numeric_limits<double>::infinity();
};

struct FeasibleEdge {
  int worker = -1;
  double min_dis = 0.0;
};

/// Feasible workers per task plus the distance used by the fitness term.
using FeasibilityTable = std::vector<std::vector<FeasibleEdge>>;

FeasibilityTable BuildTable(const std::vector<SpatialTask>& tasks,
                            const std::vector<CandidateWorker>& workers,
                            double match_radius_km, double now_min,
                            bool use_spatial_index, bool shard_components,
                            AssignReuse* reuse) {
  static obs::Histogram& build_hist =
      obs::MetricsRegistry::Global().GetHistogram(
          "assign.index_build_s", obs::DurationEdgesSeconds());
  std::vector<std::vector<TaskCandidate>> candidates;
  if (reuse != nullptr) {
    obs::TraceSpan build_span("ggpso.index_build");
    candidates =
        reuse->candidates.BuildTable(tasks, workers, match_radius_km, now_min);
  } else {
    std::optional<CandidateIndex> index;
    if (use_spatial_index) {
      obs::TraceSpan build_span("ggpso.index_build");
      Stopwatch build_watch;
      index.emplace(workers);
      build_hist.Record(build_watch.ElapsedSeconds());
    }
    candidates = GenerateCandidates(tasks, workers, match_radius_km, now_min,
                                    index ? &*index : nullptr);
  }
  if (shard_components) {
    // Record-only under --sharding: the GA draws from one sequential RNG
    // stream across every task, so a per-shard evolution would diverge
    // bitwise from the global one. The decomposition is still computed so
    // shard observability (assign.shard_count / assign.shard_max_rows)
    // covers GGPSO batches like KM's and PPI's (see GgpsoConfig).
    (void)BuildShardPlan(candidates, tasks, workers);
  }
  FeasibilityTable table(tasks.size());
  for (size_t t = 0; t < candidates.size(); ++t) {
    for (const TaskCandidate& tc : candidates[t]) {
      if (tc.stage3_feasible) table[t].push_back({tc.worker, tc.min_dis});
    }
  }
  return table;
}

double MinDisOf(const FeasibilityTable& table, size_t task, int worker) {
  for (const FeasibleEdge& e : table[task]) {
    if (e.worker == worker) return e.min_dis;
  }
  return std::numeric_limits<double>::infinity();
}

double Fitness(const Individual& ind, const FeasibilityTable& table,
               double cost_weight) {
  double completed = 0.0, cost_term = 0.0;
  for (size_t t = 0; t < ind.worker_of_task.size(); ++t) {
    int w = ind.worker_of_task[t];
    if (w < 0) continue;
    completed += 1.0;
    cost_term += 1.0 / (1.0 + MinDisOf(table, t, w));
  }
  return completed + cost_weight * cost_term;
}

Individual RandomIndividual(const FeasibilityTable& table, int num_workers,
                            Rng& rng) {
  Individual ind;
  ind.worker_of_task.assign(table.size(), -1);
  std::vector<char> used(static_cast<size_t>(num_workers), 0);
  std::vector<size_t> order(table.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  for (size_t t : order) {
    if (table[t].empty()) continue;
    size_t pick = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(table[t].size()) - 1));
    // Linear probe from a random start so every feasible worker can win.
    for (size_t probe = 0; probe < table[t].size(); ++probe) {
      const FeasibleEdge& e = table[t][(pick + probe) % table[t].size()];
      if (!used[static_cast<size_t>(e.worker)]) {
        ind.worker_of_task[t] = e.worker;
        used[static_cast<size_t>(e.worker)] = 1;
        break;
      }
    }
  }
  return ind;
}

/// PSO-style guided crossover: the child keeps each gene from the global
/// best with probability `pull`, otherwise from the parent, repairing
/// duplicate workers by dropping later conflicts.
Individual Crossover(const Individual& parent, const Individual& best,
                     int num_workers, double pull, Rng& rng) {
  Individual child;
  child.worker_of_task.assign(parent.worker_of_task.size(), -1);
  std::vector<char> used(static_cast<size_t>(num_workers), 0);
  for (size_t t = 0; t < parent.worker_of_task.size(); ++t) {
    int gene = rng.Bernoulli(pull) ? best.worker_of_task[t]
                                   : parent.worker_of_task[t];
    if (gene >= 0 && !used[static_cast<size_t>(gene)]) {
      child.worker_of_task[t] = gene;
      used[static_cast<size_t>(gene)] = 1;
    }
  }
  return child;
}

void Mutate(Individual& ind, const FeasibilityTable& table, int num_workers,
            double rate, Rng& rng) {
  std::vector<char> used(static_cast<size_t>(num_workers), 0);
  for (int w : ind.worker_of_task) {
    if (w >= 0) used[static_cast<size_t>(w)] = 1;
  }
  for (size_t t = 0; t < ind.worker_of_task.size(); ++t) {
    if (table[t].empty() || !rng.Bernoulli(rate)) continue;
    size_t pick = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(table[t].size()) - 1));
    int candidate = table[t][pick].worker;
    if (used[static_cast<size_t>(candidate)]) continue;
    if (ind.worker_of_task[t] >= 0) {
      used[static_cast<size_t>(ind.worker_of_task[t])] = 0;
    }
    ind.worker_of_task[t] = candidate;
    used[static_cast<size_t>(candidate)] = 1;
  }
}

}  // namespace

AssignmentPlan GgpsoAssign(const std::vector<SpatialTask>& tasks,
                           const std::vector<CandidateWorker>& workers,
                           double now_min, const GgpsoConfig& config,
                           AssignReuse* reuse) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter& solves_counter = registry.GetCounter("ggpso.solves");
  static obs::Counter& generations_counter =
      registry.GetCounter("ggpso.generations");
  static obs::Histogram& solve_hist =
      registry.GetHistogram("ggpso.solve_s", obs::DurationEdgesSeconds());

  AssignmentPlan plan;
  if (tasks.empty() || workers.empty()) return plan;
  TAMP_CHECK(config.population > 1 && config.generations > 0);

  solves_counter.Increment();
  generations_counter.Increment(config.generations);
  Stopwatch solve_watch;
  obs::TraceSpan solve_span("ggpso.solve");

  FeasibilityTable table =
      BuildTable(tasks, workers, config.match_radius_km, now_min,
                 config.use_spatial_index, config.shard_components, reuse);
  Rng rng(config.seed);
  const int num_workers = static_cast<int>(workers.size());

  std::vector<Individual> population;
  population.reserve(static_cast<size_t>(config.population));
  for (int i = 0; i < config.population; ++i) {
    population.push_back(RandomIndividual(table, num_workers, rng));
    population.back().fitness =
        Fitness(population.back(), table, config.cost_weight);
  }
  Individual best = *std::max_element(
      population.begin(), population.end(),
      [](const Individual& a, const Individual& b) {
        return a.fitness < b.fitness;
      });

  for (int gen = 0; gen < config.generations; ++gen) {
    std::vector<Individual> next;
    next.reserve(static_cast<size_t>(config.population));
    next.push_back(best);  // Elitism.
    while (static_cast<int>(next.size()) < config.population) {
      // Tournament selection of the parent.
      size_t a = static_cast<size_t>(
          rng.UniformInt(0, config.population - 1));
      size_t b = static_cast<size_t>(
          rng.UniformInt(0, config.population - 1));
      const Individual& parent = population[a].fitness >= population[b].fitness
                                     ? population[a]
                                     : population[b];
      Individual child = rng.Bernoulli(config.crossover_rate)
                             ? Crossover(parent, best, num_workers, 0.5, rng)
                             : parent;
      Mutate(child, table, num_workers, config.mutation_rate, rng);
      child.fitness = Fitness(child, table, config.cost_weight);
      if (child.fitness > best.fitness) best = child;
      next.push_back(std::move(child));
    }
    population = std::move(next);
  }

  for (size_t t = 0; t < best.worker_of_task.size(); ++t) {
    int w = best.worker_of_task[t];
    if (w < 0) continue;
    plan.pairs.push_back({static_cast<int>(t), w, MinDisOf(table, t, w)});
  }
  solve_hist.Record(solve_watch.ElapsedSeconds());
  return plan;
}

}  // namespace tamp::assign
