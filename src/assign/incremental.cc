#include "assign/incremental.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/check.h"
#include "common/obs/metrics.h"
#include "common/parallel.h"
#include "common/stopwatch.h"

namespace tamp::assign {
namespace {

/// Snapshots are keyed by the batch instant's bit pattern: reuse requires
/// the *identical* `now`, and bitwise identity is exactly what makes the
/// cached arithmetic reproducible.
uint64_t SnapshotKey(double now_min) {
  uint64_t key = 0;
  static_assert(sizeof(key) == sizeof(now_min));
  std::memcpy(&key, &now_min, sizeof(key));
  return key;
}

/// (task id, worker id) packed; both are non-negative ints, so the key is
/// collision-free.
uint64_t PairKey(int task_id, int worker_id) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(task_id)) << 32) |
         static_cast<uint32_t>(worker_id);
}

/// Snapshots older than this many engine ticks past the LRU cap are
/// dropped; bounds memory across long sweeps with many distinct instants.
constexpr size_t kMaxSnapshots = 4096;

}  // namespace

void IncrementalCandidateEngine::ReconcileIndex(
    const std::vector<CandidateWorker>& workers) {
  if (!index_built_) {
    // First build mirrors CandidateIndex: every platform-visible point,
    // cells at half the dominant prune radius — except labels are stable
    // worker ids, which is what lets later batches delta against it.
    double max_half = 0.0;
    std::vector<geo::SpatialLabelIndex::Entry> entries;
    for (const CandidateWorker& w : workers) {
      max_half = std::max(max_half, w.detour_budget_km / 2.0);
      for (const geo::TimedPoint& p : w.predicted) {
        entries.push_back({p.loc, w.id});
      }
      entries.push_back({w.current_location, w.id});
    }
    index_ = geo::SpatialLabelIndex(entries, max_half / 2.0);
    index_built_ = true;
  } else {
    // Workers who left since the index was last current.
    std::vector<int> gone;
    for (const auto& [id, state] : indexed_) {
      bool present = false;
      for (const CandidateWorker& w : workers) {
        if (w.id == id) {
          present = true;
          break;
        }
      }
      if (!present) gone.push_back(id);
    }
    for (int id : gone) {
      index_.RemoveLabel(id);
      indexed_.erase(id);
    }
  }
  for (const CandidateWorker& w : workers) {
    auto [it, inserted] = indexed_.try_emplace(w.id);
    WorkerState& held = it->second;
    bool moved = inserted;
    if (!inserted) {
      moved = held.points.size() != w.predicted.size() + 1;
      if (!moved) {
        for (size_t i = 0; i < w.predicted.size(); ++i) {
          if (!(held.points[i] == w.predicted[i].loc)) {
            moved = true;
            break;
          }
        }
        moved = moved || !(held.points.back() == w.current_location);
      }
    }
    if (moved) {
      // A move is remove + insert against the already-built index.
      if (!inserted) index_.RemoveLabel(w.id);
      held.points.clear();
      held.points.reserve(w.predicted.size() + 1);
      for (const geo::TimedPoint& p : w.predicted) {
        index_.Insert({p.loc, w.id});
        held.points.push_back(p.loc);
      }
      index_.Insert({w.current_location, w.id});
      held.points.push_back(w.current_location);
    }
    // Bound ingredients ride along even when the points did not move: they
    // feed the per-worker query radii, not the index itself.
    held.half_detour_km = w.detour_budget_km / 2.0;
    held.speed_kmpm = w.speed_kmpm;
  }
}

void IncrementalCandidateEngine::EvictStaleSnapshots() {
  while (snapshots_.size() > kMaxSnapshots) {
    auto victim = snapshots_.begin();
    for (auto it = std::next(snapshots_.begin()); it != snapshots_.end();
         ++it) {
      // Deterministic LRU: oldest tick, ties broken by key, so eviction
      // (and therefore every later hit/miss count) is independent of the
      // unordered_map's iteration order.
      if (it->second.last_used < victim->second.last_used ||
          (it->second.last_used == victim->second.last_used &&
           it->first < victim->first)) {
        victim = it;
      }
    }
    snapshots_.erase(victim);
  }
}

std::vector<std::vector<TaskCandidate>> IncrementalCandidateEngine::BuildTable(
    const std::vector<SpatialTask>& tasks,
    const std::vector<CandidateWorker>& workers, double match_radius_km,
    double now_min, CandidateGenStats* stats) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter& evals_counter =
      registry.GetCounter("assign.candidate_evals");
  static obs::Counter& pruned_counter =
      registry.GetCounter("assign.candidates_pruned");
  static obs::Counter& hits_counter =
      registry.GetCounter("assign.candidate_cache_hits");
  static obs::Counter& delta_counter =
      registry.GetCounter("assign.index_delta_ops");
  static obs::Histogram& build_hist = registry.GetHistogram(
      "assign.index_build_s", obs::DurationEdgesSeconds());
  static obs::Histogram& query_hist = registry.GetHistogram(
      "assign.index_query_s", obs::DurationEdgesSeconds());

  std::vector<std::vector<TaskCandidate>> table(tasks.size());
  if (tasks.empty() || workers.empty()) return table;
  ++tick_;

  int max_id = 0;
  for (const CandidateWorker& w : workers) {
    TAMP_CHECK_MSG(w.id >= 0, "incremental engine requires worker ids >= 0");
    max_id = std::max(max_id, w.id);
  }

  // --- Serial phase 1: bring the persistent index up to this batch. ---
  Stopwatch maintain_watch;
  const uint64_t gen_before = index_.generation();
  ReconcileIndex(workers);
  build_hist.Record(maintain_watch.ElapsedSeconds());
  delta_counter.Increment(
      static_cast<int64_t>(index_.generation() - gen_before));

  // --- Serial phase 2: per-batch lookup arrays + snapshot epochs. ---
  std::vector<int> batch_index_of_id(static_cast<size_t>(max_id) + 1, -1);
  std::vector<double> half_of_id(static_cast<size_t>(max_id) + 1, -1.0);
  std::vector<double> speed_of_id(static_cast<size_t>(max_id) + 1, 0.0);
  double max_half = 0.0, max_speed = 0.0;
  for (size_t a = 0; a < workers.size(); ++a) {
    const CandidateWorker& w = workers[a];
    const size_t id = static_cast<size_t>(w.id);
    TAMP_CHECK_MSG(batch_index_of_id[id] < 0,
                   "duplicate worker id in one batch");
    batch_index_of_id[id] = static_cast<int>(a);
    half_of_id[id] = w.detour_budget_km / 2.0;
    speed_of_id[id] = w.speed_kmpm;
    max_half = std::max(max_half, half_of_id[id]);
    max_speed = std::max(max_speed, w.speed_kmpm);
  }

  Snapshot& snap = snapshots_[SnapshotKey(now_min)];
  snap.last_used = tick_;
  std::vector<uint64_t> epoch_of(workers.size(), 0);
  std::vector<char> can_hit(workers.size(), 0);
  for (size_t a = 0; a < workers.size(); ++a) {
    const CandidateWorker& w = workers[a];
    WorkerState state;
    state.points.reserve(w.predicted.size() + 1);
    for (const geo::TimedPoint& p : w.predicted) state.points.push_back(p.loc);
    state.points.push_back(w.current_location);
    state.half_detour_km = w.detour_budget_km / 2.0;
    state.speed_kmpm = w.speed_kmpm;
    auto [it, inserted] = snap.workers.try_emplace(w.id);
    if (!inserted && it->second.state == state) {
      // Same worker, bitwise-same geometry and bound ingredients as when
      // this instant's rows were written: those rows may be reused.
      can_hit[a] = 1;
    } else {
      it->second.state = std::move(state);
      it->second.epoch = next_epoch_++;
    }
    epoch_of[a] = it->second.epoch;
  }

  // --- Parallel read phase: per-task exact filter + cache lookups. The
  // snapshot is read-only here; freshly evaluated rows are buffered per
  // task slot and merged serially below, so the cache state after the
  // batch (and with it every hit/miss count) is thread-count-invariant. ---
  std::vector<int64_t> evals(tasks.size(), 0);
  std::vector<int64_t> hits(tasks.size(), 0);
  struct NewRow {
    uint64_t key = 0;
    CachedRow row;
  };
  std::vector<std::vector<NewRow>> fresh(tasks.size());
  ParallelFor(tasks.size(), [&](size_t t) {
    const SpatialTask& task = tasks[t];
    if (task.deadline_min <= now_min) return;  // Expired: no candidates.
    const double dt = task.deadline_min - now_min;

    thread_local std::vector<double> radii;
    radii.assign(static_cast<size_t>(max_id) + 1, -1.0);
    for (const CandidateWorker& w : workers) {
      const size_t id = static_cast<size_t>(w.id);
      // The exact Theorem-2 bound, computed with EvaluateCandidate's own
      // expressions so the filter and the evaluation agree bitwise.
      radii[id] = std::min(half_of_id[id], speed_of_id[id] * dt);
    }
    Stopwatch query_watch;
    thread_local std::vector<int> ids;
    thread_local geo::SpatialLabelIndex::QueryScratch scratch;
    index_.CollectLabelsWithinCaps(task.location,
                                   std::min(max_half, max_speed * dt), radii,
                                   ids, &scratch);
    query_hist.Record(query_watch.ElapsedSeconds());

    // Table rows must be in ascending batch order (the cold paths'
    // contract); ids ascending is not that when ids and batch positions
    // disagree.
    thread_local std::vector<int> cand;
    cand.clear();
    for (int id : ids) {
      const int a = batch_index_of_id[static_cast<size_t>(id)];
      TAMP_DCHECK(a >= 0);  // The index holds only this batch's workers.
      if (a >= 0) cand.push_back(a);
    }
    std::sort(cand.begin(), cand.end());

    for (int a : cand) {
      const CandidateWorker& w = workers[static_cast<size_t>(a)];
      // Declines are the one EvaluateCandidate input outside the cache
      // key; a declined pair contributes no row on any path, so skip it
      // before the cache (and never store rows for it).
      if (task.DeclinedBy(w.id)) continue;
      const double bound =
          std::min(w.detour_budget_km / 2.0,
                   w.speed_kmpm * (task.deadline_min - now_min));
      const uint64_t key = PairKey(task.id, w.id);
      if (can_hit[static_cast<size_t>(a)]) {
        auto it = snap.rows.find(key);
        if (it != snap.rows.end()) {
          const CachedRow& row = it->second;
          if (row.worker_epoch == epoch_of[static_cast<size_t>(a)] &&
              row.task_location == task.location &&
              row.task_deadline_min == task.deadline_min &&
              row.bound_km == bound &&
              row.match_radius_km == match_radius_km) {
            TaskCandidate tc;
            tc.worker = a;
            tc.b_count = row.b_count;
            tc.min_b = row.min_b;
            tc.min_dis = row.min_dis;
            tc.stage3_feasible = row.stage3_feasible;
            table[t].push_back(tc);
            ++hits[t];
            continue;
          }
        }
      }
      const CandidateInfo info =
          EvaluateCandidate(task, w, match_radius_km, now_min);
      ++evals[t];
      // The per-worker capped query is exact (see class comment), so every
      // surviving non-declined pair matters; the guard is belt-and-braces.
      TAMP_DCHECK(!info.b_distances.empty() || info.stage3_feasible);
      if (info.b_distances.empty() && !info.stage3_feasible) continue;
      TaskCandidate tc;
      tc.worker = a;
      tc.b_count = static_cast<int>(info.b_distances.size());
      tc.min_b = info.min_b;
      tc.min_dis = info.min_dis;
      tc.stage3_feasible = info.stage3_feasible;
      table[t].push_back(tc);
      CachedRow row;
      row.worker_epoch = epoch_of[static_cast<size_t>(a)];
      row.task_location = task.location;
      row.task_deadline_min = task.deadline_min;
      row.bound_km = bound;
      row.match_radius_km = match_radius_km;
      row.b_count = tc.b_count;
      row.min_b = tc.min_b;
      row.min_dis = tc.min_dis;
      row.stage3_feasible = tc.stage3_feasible;
      fresh[t].push_back({key, row});
    }
  });

  // --- Serial merge + accounting. ---
  for (std::vector<NewRow>& rows : fresh) {
    for (NewRow& nr : rows) {
      snap.rows.insert_or_assign(nr.key, nr.row);
    }
  }
  int64_t evaluated = 0, reused = 0;
  for (size_t t = 0; t < tasks.size(); ++t) {
    evaluated += evals[t];
    reused += hits[t];
  }
  const int64_t dense =
      static_cast<int64_t>(tasks.size()) * static_cast<int64_t>(workers.size());
  evals_counter.Increment(evaluated);
  hits_counter.Increment(reused);
  pruned_counter.Increment(dense - evaluated - reused);
  if (stats != nullptr) {
    stats->evaluated += evaluated;
    stats->cache_hits += reused;
    stats->pruned += dense - evaluated - reused;
  }
  EvictStaleSnapshots();
  return table;
}

}  // namespace tamp::assign
