#include "assign/candidates.h"

#include <algorithm>
#include <limits>

#include "assign/candidate_index.h"
#include "common/obs/metrics.h"
#include "common/parallel.h"
#include "common/stopwatch.h"

namespace tamp::assign {
namespace {

TaskCandidate CompactInfo(int worker, const CandidateInfo& info) {
  TaskCandidate c;
  c.worker = worker;
  c.b_count = static_cast<int>(info.b_distances.size());
  c.min_b = info.min_b;
  c.min_dis = info.min_dis;
  c.stage3_feasible = info.stage3_feasible;
  return c;
}

/// A pair enters the table iff some assignment stage could use it.
bool Matters(const CandidateInfo& info) {
  return !info.b_distances.empty() || info.stage3_feasible;
}

}  // namespace

CandidateInfo EvaluateCandidate(const SpatialTask& task,
                                const CandidateWorker& worker,
                                double match_radius_km, double now_min) {
  CandidateInfo info;
  info.min_b = std::numeric_limits<double>::infinity();
  info.min_dis = std::numeric_limits<double>::infinity();

  // A task must be reached strictly before its deadline (Def. 1); an
  // expired task admits no candidates at all. A worker who already
  // declined the task is never proposed again.
  if (task.deadline_min <= now_min) return info;
  if (task.DeclinedBy(worker.id)) return info;

  // Lemma 2: the worker can cover at most d_t km before the deadline.
  double d_t = worker.speed_kmpm * (task.deadline_min - now_min);
  // Theorem 2 bound: a + b <= min(d/2, d_t).
  double bound = std::min(worker.detour_budget_km / 2.0, d_t);

  for (const geo::TimedPoint& p : worker.predicted) {
    double dis = geo::Distance(p.loc, task.location);
    info.min_dis = std::min(info.min_dis, dis);
    if (dis + match_radius_km <= bound) {
      info.b_distances.push_back(dis);
      info.min_b = std::min(info.min_b, dis);
    }
  }
  // The reported current location is part of the platform's knowledge of
  // the (expected) routine; it feeds the plain distance test of stage 3,
  // but not B: B carries prediction-confidence semantics (Theorem 2).
  info.min_dis = std::min(
      info.min_dis, geo::Distance(worker.current_location, task.location));
  info.stage3_feasible = info.min_dis <= bound;
  return info;
}

std::vector<std::vector<TaskCandidate>> GenerateCandidates(
    const std::vector<SpatialTask>& tasks,
    const std::vector<CandidateWorker>& workers, double match_radius_km,
    double now_min, const CandidateIndex* index, CandidateGenStats* stats) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter& evals_counter =
      registry.GetCounter("assign.candidate_evals");
  static obs::Counter& pruned_counter =
      registry.GetCounter("assign.candidates_pruned");
  static obs::Histogram& query_hist =
      registry.GetHistogram("assign.index_query_s",
                            obs::DurationEdgesSeconds());

  std::vector<std::vector<TaskCandidate>> table(tasks.size());
  std::vector<int64_t> evals(tasks.size(), 0);
  ParallelFor(tasks.size(), [&](size_t t) {
    const SpatialTask& task = tasks[t];
    std::vector<TaskCandidate>& row = table[t];
    if (index == nullptr) {
      for (size_t w = 0; w < workers.size(); ++w) {
        CandidateInfo info =
            EvaluateCandidate(task, workers[w], match_radius_km, now_min);
        if (Matters(info)) row.push_back(CompactInfo(static_cast<int>(w), info));
      }
      evals[t] = static_cast<int64_t>(workers.size());
      return;
    }
    Stopwatch query_watch;
    // Per-pool-thread buffers: the hit list and dedup stamps are reused
    // across every task this thread handles, in this batch and later ones.
    thread_local std::vector<int> hits;  // Ascending worker indices.
    thread_local CandidateIndex::QueryScratch scratch;
    index->QueryWorkers(task.location,
                        index->PruneRadius(task, match_radius_km, now_min),
                        hits, &scratch);
    query_hist.Record(query_watch.ElapsedSeconds());
    for (int w : hits) {
      CandidateInfo info = EvaluateCandidate(
          task, workers[static_cast<size_t>(w)], match_radius_km, now_min);
      if (Matters(info)) row.push_back(CompactInfo(w, info));
    }
    evals[t] = static_cast<int64_t>(hits.size());
  });

  int64_t evaluated = 0;
  for (int64_t e : evals) evaluated += e;
  const int64_t dense =
      static_cast<int64_t>(tasks.size()) * static_cast<int64_t>(workers.size());
  evals_counter.Increment(evaluated);
  pruned_counter.Increment(dense - evaluated);
  if (stats != nullptr) {
    stats->evaluated += evaluated;
    stats->pruned += dense - evaluated;
  }
  return table;
}

}  // namespace tamp::assign
