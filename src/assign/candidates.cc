#include "assign/candidates.h"

#include <algorithm>
#include <limits>

namespace tamp::assign {

CandidateInfo EvaluateCandidate(const SpatialTask& task,
                                const CandidateWorker& worker,
                                double match_radius_km, double now_min) {
  CandidateInfo info;
  info.min_b = std::numeric_limits<double>::infinity();
  info.min_dis = std::numeric_limits<double>::infinity();

  // A task must be reached strictly before its deadline (Def. 1); an
  // expired task admits no candidates at all. A worker who already
  // declined the task is never proposed again.
  if (task.deadline_min <= now_min) return info;
  if (task.DeclinedBy(worker.id)) return info;

  // Lemma 2: the worker can cover at most d_t km before the deadline.
  double d_t = worker.speed_kmpm * (task.deadline_min - now_min);
  // Theorem 2 bound: a + b <= min(d/2, d_t).
  double bound = std::min(worker.detour_budget_km / 2.0, d_t);

  for (const geo::TimedPoint& p : worker.predicted) {
    double dis = geo::Distance(p.loc, task.location);
    info.min_dis = std::min(info.min_dis, dis);
    if (dis + match_radius_km <= bound) {
      info.b_distances.push_back(dis);
      info.min_b = std::min(info.min_b, dis);
    }
  }
  // The reported current location is part of the platform's knowledge of
  // the (expected) routine; it feeds the plain distance test of stage 3,
  // but not B: B carries prediction-confidence semantics (Theorem 2).
  info.min_dis = std::min(
      info.min_dis, geo::Distance(worker.current_location, task.location));
  info.stage3_feasible = info.min_dis <= bound;
  return info;
}

}  // namespace tamp::assign
