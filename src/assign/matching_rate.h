#pragma once

#include <vector>

#include "geo/point.h"

namespace tamp::assign {

/// Matching rate MR(r, r-hat) (Def. 7): the fraction of positions whose
/// prediction lies within `radius_km` (the threshold a) of the real
/// location. The sequences are index-aligned; sizes must match. Returns 0
/// for empty input.
double MatchingRate(const std::vector<geo::Point>& real,
                    const std::vector<geo::Point>& predicted,
                    double radius_km);

}  // namespace tamp::assign
