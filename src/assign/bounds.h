#pragma once

#include "assign/types.h"
#include "geo/trajectory.h"

namespace tamp::assign {

/// Upper Bound (UB) oracle: checks constraints against the workers' *real*
/// future trajectories (which the platform never actually knows), weights
/// edges by the reciprocal of the real detour, and solves one KM matching.
/// Its rejection rate is 0 by construction. `real_routines` is aligned
/// with `workers` and holds each worker's actual future movement.
AssignmentPlan UpperBoundAssign(const std::vector<SpatialTask>& tasks,
                                const std::vector<CandidateWorker>& workers,
                                const std::vector<geo::Trajectory>& real_routines,
                                double now_min, double weight_floor_km = 1e-3);

/// Lower Bound (LB): ignores mobility entirely and matches on the workers'
/// current locations only — a pair is feasible when the out-and-back trip
/// fits the detour budget and the deadline.
AssignmentPlan LowerBoundAssign(const std::vector<SpatialTask>& tasks,
                                const std::vector<CandidateWorker>& workers,
                                double now_min, double weight_floor_km = 1e-3);

}  // namespace tamp::assign
