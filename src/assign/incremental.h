#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "assign/candidates.h"
#include "assign/sharding.h"
#include "assign/types.h"
#include "geo/spatial_index.h"
#include "matching/hungarian.h"

namespace tamp::assign {

/// Batch-to-batch incremental candidate generation (ROADMAP item 4): the
/// warm counterpart of CandidateIndex + GenerateCandidates, producing a
/// bit-identical candidate table while paying only for what changed since
/// the state it already holds. Two persistent structures:
///
/// 1. A delta-updated geo::SpatialLabelIndex over the platform-visible
///    points of the *current* worker set, labelled by stable worker id.
///    Each BuildTable reconciles it against the batch — workers who left
///    are removed, newcomers inserted, movers re-inserted — instead of
///    rebuilding from scratch (entry mutations are counted on
///    assign.index_delta_ops). Queries use the per-worker Theorem-2 bound
///    min(d_w/2, speed_w * (deadline - now)) *without* the match-radius
///    slack `a`: B non-empty requires dis + a <= bound, and stage-3
///    feasibility requires dis^min <= bound, so a worker's evaluation can
///    matter iff some visible point lies within bound_w — the per-worker
///    capped query is an exact filter, not just a conservative superset.
///    Every surviving evaluation therefore produces a table row.
///
/// 2. A per-batch-instant row cache: EvaluateCandidate outcomes keyed by
///    (now, task id, worker id) and stamped with the worker's geometry
///    epoch at that instant. A hit requires the stored worker epoch, task
///    location/deadline, Theorem-2 bound, and match radius to be bitwise
///    equal to the current inputs — the cached row is then *provably* the
///    value EvaluateCandidate would recompute, which is what keeps plans
///    bit-identical to the cold paths (hits land on
///    assign.candidate_cache_hits). Any geometry or task mutation simply
///    misses and re-evaluates; declined pairs bypass the cache entirely
///    (decline state is the one EvaluateCandidate input not in the key).
///
/// Within one simulator run consecutive batches rarely hit (the forecast
/// input includes time-of-day, so predictions change every batch); the
/// cache earns its keep across *runs* that revisit the same batch instants
/// — the sweep benches replay identical worker geometry per `now` for
/// every assignment method sharing a pipeline, and each method after the
/// first reuses the first one's rows.
///
/// Not thread-safe across concurrent BuildTable calls; one engine per
/// simulator/pipeline. Within a call, tasks fan out over the deterministic
/// parallel runtime with slot-indexed writes (cache reads only; new rows
/// are buffered per task slot and merged serially), so tables, cache
/// state, and all counters are bit-identical at any thread count.
class IncrementalCandidateEngine {
 public:
  /// Builds the batch candidate table; the result is bit-identical to
  /// GenerateCandidates(tasks, workers, ...) with or without an index
  /// (pinned by assign_incremental_test across PPI/KM/GGPSO, Porto +
  /// Gowalla, 1 and 4 threads).
  std::vector<std::vector<TaskCandidate>> BuildTable(
      const std::vector<SpatialTask>& tasks,
      const std::vector<CandidateWorker>& workers, double match_radius_km,
      double now_min, CandidateGenStats* stats = nullptr);

  /// Mutation count of the persistent index (test/bench introspection).
  uint64_t index_generation() const { return index_.generation(); }
  size_t num_snapshots() const { return snapshots_.size(); }
  size_t num_indexed_workers() const { return indexed_.size(); }

 private:
  /// The EvaluateCandidate-relevant view of one worker: predicted point
  /// locations in order, then the current location (timestamps are not
  /// inputs of the evaluation), plus the bound ingredients.
  struct WorkerState {
    std::vector<geo::Point> points;
    double half_detour_km = 0.0;
    double speed_kmpm = 0.0;

    bool operator==(const WorkerState&) const = default;
  };
  struct SnapshotWorker {
    WorkerState state;
    uint64_t epoch = 0;  // Fresh epoch whenever `state` changes.
  };
  /// One cached EvaluateCandidate outcome plus everything that must match
  /// bitwise for the outcome to be reusable.
  struct CachedRow {
    uint64_t worker_epoch = 0;
    geo::Point task_location;
    double task_deadline_min = 0.0;
    double bound_km = 0.0;  // min(d_w/2, speed_w * (deadline - now)).
    double match_radius_km = 0.0;
    // The row payload (TaskCandidate minus the batch index, which is not
    // stable across runs).
    int b_count = 0;
    double min_b = 0.0;
    double min_dis = 0.0;
    bool stage3_feasible = false;
  };
  /// All reuse state tied to one batch instant `now` (keyed by its bits).
  struct Snapshot {
    uint64_t last_used = 0;  // Engine tick, for LRU eviction.
    std::unordered_map<int, SnapshotWorker> workers;  // By worker id.
    std::unordered_map<uint64_t, CachedRow> rows;     // By (task, worker).
  };

  /// Applies the worker-set delta to the persistent index and `indexed_`.
  void ReconcileIndex(const std::vector<CandidateWorker>& workers);
  void EvictStaleSnapshots();

  geo::SpatialLabelIndex index_;  // Labels are stable worker ids.
  bool index_built_ = false;
  std::unordered_map<int, WorkerState> indexed_;  // What index_ holds.
  uint64_t next_epoch_ = 1;
  uint64_t tick_ = 0;
  std::unordered_map<uint64_t, Snapshot> snapshots_;
};

/// Everything an assigner chain reuses across simulator batches when
/// SimulatorConfig::candidate_mode is kIncremental: the shared candidate
/// engine
/// plus per-solve-site KM warm-start holders. Owned by the pipeline (one
/// per TampPipeline, surviving across RunOnline calls) and threaded to the
/// assigners by pointer; a null AssignReuse* everywhere means the cold
/// per-batch paths.
struct AssignReuse {
  IncrementalCandidateEngine candidates;
  /// KmAssign's single per-batch matching.
  matching::KmWarmState km;
  /// PPI's per-batch matchings by solve ordinal (stage 1, each stage-2
  /// flush, stage 3). Grown on demand, capped so a pathological flush
  /// count cannot accumulate unbounded checkpoint state.
  std::vector<matching::KmWarmState> ppi;
  /// Per-shard warm holders keyed by shard signature, consumed instead of
  /// `km`/`ppi` when sharded solving is on (ShardMode::kComponents), so
  /// warm resume survives resharding across batches.
  ShardWarmPool shard_pool;
};

}  // namespace tamp::assign
