#pragma once

#include <cstdint>
#include <vector>

#include "assign/types.h"

namespace tamp::assign {

class CandidateIndex;

/// The Theorem-2 view of one (task, worker) pair: which predicted points
/// certify an expected completion probability of MR, and the fallback
/// stage-3 feasibility.
struct CandidateInfo {
  /// B (Alg. 4 lines 4-7): distances dis(l-hat_i, tau.l) of the predicted
  /// points passing the Theorem-2 test dis + a <= min(d/2, d_t).
  std::vector<double> b_distances;
  /// min B, or +inf when B is empty.
  double min_b = 0.0;
  /// Minimum distance from any predicted point to the task (dis^min of
  /// stage 3), or +inf when the worker has no predicted points.
  double min_dis = 0.0;
  /// Stage-3 feasibility: dis^min <= min(d/2, d_t).
  bool stage3_feasible = false;
};

/// Evaluates the Theorem-2 candidate test for one pair at time `now_min`.
/// d_t = speed * (tau.t - now) is the reachable radius before the deadline
/// (Lemma 2); d/2 bounds the detour (Lemma 1); `match_radius_km` is a.
CandidateInfo EvaluateCandidate(const SpatialTask& task,
                                const CandidateWorker& worker,
                                double match_radius_km, double now_min);

/// One surviving (task, worker) evaluation in a batch candidate table: the
/// compact subset of CandidateInfo the assignment algorithms consume.
struct TaskCandidate {
  int worker = -1;       // Batch index into the workers vector.
  int b_count = 0;       // |B| (0 when the Theorem-2 set is empty).
  double min_b = 0.0;    // min B; +inf when B is empty.
  double min_dis = 0.0;  // dis^min over predicted points + current location.
  bool stage3_feasible = false;
};

/// Work accounting for one candidate-table build (also mirrored into the
/// obs registry as assign.candidate_evals / assign.candidates_pruned /
/// assign.candidate_cache_hits). evaluated + pruned + cache_hits always
/// equals the dense T x W pair count of the call(s) accumulated.
struct CandidateGenStats {
  int64_t evaluated = 0;   // EvaluateCandidate invocations.
  int64_t pruned = 0;      // Dense pairs skipped via the spatial index.
  int64_t cache_hits = 0;  // Rows reused from the incremental engine's
                           // cache (always 0 for GenerateCandidates).
};

/// Builds the batch candidate table: for every task, the ascending-worker
/// list of pairs whose EvaluateCandidate outcome matters (non-empty B or
/// stage-3 feasible). With `index` non-null only workers surviving the
/// Theorem-2 radius prune are evaluated; with nullptr every T x W pair is.
/// Both paths produce the identical table — the prune only skips pairs
/// whose evaluation is provably empty/infeasible (see CandidateIndex).
///
/// Tasks fan out over the deterministic parallel runtime with slot-indexed
/// writes, so the table is bit-identical at any thread count.
std::vector<std::vector<TaskCandidate>> GenerateCandidates(
    const std::vector<SpatialTask>& tasks,
    const std::vector<CandidateWorker>& workers, double match_radius_km,
    double now_min, const CandidateIndex* index,
    CandidateGenStats* stats = nullptr);

}  // namespace tamp::assign
