#pragma once

#include <vector>

#include "assign/types.h"

namespace tamp::assign {

/// The Theorem-2 view of one (task, worker) pair: which predicted points
/// certify an expected completion probability of MR, and the fallback
/// stage-3 feasibility.
struct CandidateInfo {
  /// B (Alg. 4 lines 4-7): distances dis(l-hat_i, tau.l) of the predicted
  /// points passing the Theorem-2 test dis + a <= min(d/2, d_t).
  std::vector<double> b_distances;
  /// min B, or +inf when B is empty.
  double min_b = 0.0;
  /// Minimum distance from any predicted point to the task (dis^min of
  /// stage 3), or +inf when the worker has no predicted points.
  double min_dis = 0.0;
  /// Stage-3 feasibility: dis^min <= min(d/2, d_t).
  bool stage3_feasible = false;
};

/// Evaluates the Theorem-2 candidate test for one pair at time `now_min`.
/// d_t = speed * (tau.t - now) is the reachable radius before the deadline
/// (Lemma 2); d/2 bounds the detour (Lemma 1); `match_radius_km` is a.
CandidateInfo EvaluateCandidate(const SpatialTask& task,
                                const CandidateWorker& worker,
                                double match_radius_km, double now_min);

}  // namespace tamp::assign
