#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "assign/candidates.h"
#include "assign/types.h"
#include "matching/hungarian.h"

namespace tamp::assign {

/// Geo-sharded assignment (DESIGN.md §4k, ROADMAP item 2): the per-batch
/// candidate table decomposes into connected components of the bipartite
/// (task, worker) graph, and components share no feasible edge — so a
/// maximum-weight matching computed per component and concatenated is a
/// maximum-weight matching of the whole graph. With geographically
/// clustered fleets the largest component is orders of magnitude smaller
/// than the fleet, turning the one global O(n^3) Hungarian solve into many
/// small independent ones that the deterministic parallel runtime spreads
/// over the pool.

/// One connected component of the candidate graph, in batch indices.
struct Shard {
  std::vector<int> tasks;    // Ascending batch task indices.
  std::vector<int> workers;  // Ascending batch worker indices.
  /// Candidate-table rows inside the component.
  int64_t rows = 0;
  /// LPT cost model: rows x (tasks + workers), a proxy for the KM cycle
  /// count (each augmenting row scans every column of the padded matrix).
  int64_t cost = 0;
  /// FNV-1a over the member *ids* (stable across batches, unlike batch
  /// indices). Keys the shard's KmWarmState in a ShardWarmPool, so warm
  /// resume survives resharding: any membership change — a worker
  /// migrating in or out, two shards merging — lands on a different
  /// signature and therefore a fresh (or that membership's own) holder
  /// instead of silently warm-starting against a different column order.
  uint64_t signature = 0;
};

/// The full decomposition of one batch's candidate table.
struct ShardPlan {
  /// Components in LPT order: cost descending (stable — ties keep first-
  /// appearance order), so the pool's dynamic index claiming schedules the
  /// most expensive solves first.
  std::vector<Shard> shards;
  std::vector<int> shard_of_task;    // -1 when the task has no rows.
  std::vector<int> shard_of_worker;  // -1 when no row references it.
  int64_t total_rows = 0;
  int64_t max_rows = 0;  // Rows of the largest shard (0 when no shards).
};

/// Builds the connected components of `table` via union-find over its
/// rows. `tasks`/`workers` are the batch vectors the table was built from
/// (`table.size() == tasks.size()`); only their stable `.id` fields are
/// read, for shard signatures. Every traversal is index-ordered (tasks
/// ascending, each task's rows in table order), so the plan — shard
/// membership, ordering, and signatures — is a pure function of the table.
/// Serial; records assign.shard_count / assign.shard_max_rows.
ShardPlan BuildShardPlan(const std::vector<std::vector<TaskCandidate>>& table,
                         const std::vector<SpatialTask>& tasks,
                         const std::vector<CandidateWorker>& workers);

/// Per-shard KmWarmState holders keyed by shard signature, so incremental
/// reuse survives resharding (the holder a membership used last batch is
/// found again iff the membership is unchanged). Lookup-only: the map is
/// never iterated, so hash order cannot leak into results. Not
/// thread-safe — acquire every holder before fanning out solves.
class ShardWarmPool {
 public:
  /// Evicts everything when the incoming batch would overflow the cap;
  /// call once per sharded solve, before any Acquire. Deterministic: the
  /// decision depends only on sizes, never on hash order.
  void BeginBatch(size_t incoming);

  /// Returns the holder for `signature`, creating it on first use. The
  /// returned pointer is stable until the next BeginBatch.
  matching::KmWarmState* Acquire(uint64_t signature);

  size_t size() const { return holders_.size(); }

 private:
  /// Bounds cross-batch holder accumulation (stale signatures of long-gone
  /// memberships). Oversized shards store no checkpoints anyway
  /// (KmWarmState::max_dim), so each holder is small.
  static constexpr size_t kMaxHolders = 4096;
  std::unordered_map<uint64_t, matching::KmWarmState> holders_;
};

/// Sharded drop-in for matching::MaxWeightMatching: partitions `edges` by
/// `plan`, solves each shard concurrently via ParallelFor (each solve on a
/// thread_local MatchingScratch), and merges the per-shard matchings in
/// global left-ascending order — the exact emission order of the global
/// solve — recomputing total_weight in that order so the result is
/// bitwise-identical to MaxWeightMatching(num_left, num_right, edges)
/// whenever the optimum is unique (always, on the continuous distance
/// weights the assigners use; pinned by assign_sharding_test).
///
/// Every positive-weight edge must connect a task and worker of the same
/// shard (guaranteed when `plan` was built from the table the edges came
/// from). `warm_pool` (optional) warm-starts each shard's solve from the
/// previous batch of the same membership; `warm_salt` separates recurring
/// solve sites sharing one pool (PPI's per-ordinal solves).
matching::MatchResult ShardedMaxWeightMatching(
    int num_left, int num_right, const std::vector<matching::Edge>& edges,
    const ShardPlan& plan, ShardWarmPool* warm_pool = nullptr,
    uint64_t warm_salt = 0);

}  // namespace tamp::assign
