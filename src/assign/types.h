#pragma once

#include <vector>

#include "geo/point.h"
#include "geo/trajectory.h"

namespace tamp::assign {

/// A spatial task tau = (l, t) (Def. 1) as the assignment algorithms see
/// it inside one batch.
struct SpatialTask {
  int id = -1;
  geo::Point location;           // tau.l
  double release_time_min = 0.0; // When the requester posted it.
  double deadline_min = 0.0;     // tau.t
  /// Workers who already declined this task in an earlier batch; when a
  /// rejected task carries over (Section IV-B), the platform keeps
  /// searching for *other* suitable workers rather than re-proposing the
  /// declined pair.
  std::vector<int> declined_worker_ids;

  bool DeclinedBy(int worker_id) const {
    for (int declined : declined_worker_ids) {
      if (declined == worker_id) return true;
    }
    return false;
  }
};

/// A worker candidate within one assignment batch: what the platform knows
/// (current location, predicted routine, detour budget, the prediction
/// model's matching rate) — never the real trajectory, which only the
/// acceptance simulation and the UB oracle may consult.
struct CandidateWorker {
  int id = -1;
  /// Predicted future routine w.r-hat: timed locations over the horizon.
  /// Only these points enter Theorem 2's B set; the (exactly known)
  /// current location additionally feeds the stage-3 distance test.
  std::vector<geo::TimedPoint> predicted;
  geo::Point current_location;
  double detour_budget_km = 4.0;  // w.d
  double speed_kmpm = 0.5;        // km per minute.
  double matching_rate = 0.0;     // MR(r, r-hat) of this worker's model.
};

/// One proposed (task, worker) pair of an assignment plan M.
struct AssignmentPair {
  int task_index = -1;    // Index into the batch's task vector.
  int worker_index = -1;  // Index into the batch's worker vector.
  /// The algorithm's own estimate of the detour (km), from predictions.
  double expected_detour_km = 0.0;
};

/// An assignment plan M (Def. 4): disjoint (task, worker) pairs.
struct AssignmentPlan {
  std::vector<AssignmentPair> pairs;
};

}  // namespace tamp::assign
