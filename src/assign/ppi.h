#pragma once

#include "assign/types.h"

namespace tamp::assign {

struct AssignReuse;

/// Parameters of the Prediction-Performance-Involved assignment algorithm.
struct PpiConfig {
  /// Matching-rate radius a (Def. 7 / Theorem 2), km.
  double match_radius_km = 0.5;
  /// Stage-2 batching threshold epsilon (Alg. 4 line 20): how many B-pairs
  /// accumulate before an intermediate KM call.
  int epsilon = 8;
  /// Numerical floor added to distances before taking reciprocals as edge
  /// weights (1/minB), so zero-distance candidates stay finite.
  double weight_floor_km = 1e-3;
  /// When true (default), candidate generation prunes (task, worker) pairs
  /// through a per-batch spatial index over the workers' platform-visible
  /// points (CandidateIndex) instead of evaluating every dense T x W pair.
  /// The prune is a conservative Theorem-2 superset, so plans are
  /// bit-identical either way; the flag exists so tests can assert that.
  bool use_spatial_index = true;
  /// Geo-sharded per-stage solves (--sharding=components, DESIGN.md §4k):
  /// every stage's KM runs per connected component of the batch candidate
  /// table, concurrently. Stage edges never cross components (they are
  /// table rows), so plans are bit-identical to the global solves.
  bool shard_components = false;
};

/// Prediction Performance-Involved Task Assignment (Algorithm 4).
///
/// Stage 1 matches pairs whose expected completion probability is certain
/// (|B| * MR >= 1); stage 2 drains the remaining Theorem-2 candidates in
/// descending |B| * MR order, epsilon at a time; stage 3 falls back to a
/// plain predicted-trajectory bipartite matching for everything left. The
/// per-stage KM calls use 1/minB (or 1/dis^min) as edge weights so shorter
/// expected detours win.
///
/// A non-null `reuse` swaps candidate generation for the incremental
/// engine and warm-starts each per-stage KM solve (by solve ordinal) from
/// the previous batch; plans stay bit-identical to the cold paths.
AssignmentPlan PpiAssign(const std::vector<SpatialTask>& tasks,
                         const std::vector<CandidateWorker>& workers,
                         double now_min, const PpiConfig& config,
                         AssignReuse* reuse = nullptr);

}  // namespace tamp::assign
