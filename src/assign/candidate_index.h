#pragma once

#include <vector>

#include "assign/types.h"
#include "geo/spatial_index.h"

namespace tamp::assign {

/// Per-batch spatial index over the platform-visible points of a worker
/// set: every predicted TimedPoint plus the reported current location,
/// labelled with the worker's batch index.
///
/// The point of this index is Theorem 2: a (task, worker) pair can only be
/// feasible — for any PPI stage, or for the KM/GGPSO baselines, which all
/// share the `dis^min <= min(d/2, d_t)` test — when some platform-visible
/// point of the worker lies within min(d/2, d_t) of the task. Querying the
/// closed ball of radius PruneRadius(task) therefore returns a superset of
/// the workers EvaluateCandidate could accept, and every pruned pair is
/// one whose CandidateInfo is guaranteed empty/infeasible. Assignment
/// plans computed from the pruned candidate set are bit-identical to the
/// dense T x W evaluation (asserted by tests/assign_candidate_index_test).
class CandidateIndex {
 public:
  explicit CandidateIndex(const std::vector<CandidateWorker>& workers);

  /// The Theorem-2 pruning radius for `task` at time `now_min`:
  ///   min(max_w d_w / 2, max_w speed_w * (deadline - now)) + a.
  /// Per-worker bounds min(d_w/2, speed_w * dt) never exceed this batch
  /// bound, so one query radius serves every worker. Negative (prune
  /// everything) when the task is expired.
  double PruneRadius(const SpatialTask& task, double match_radius_km,
                     double now_min) const;

  using QueryScratch = geo::SpatialLabelIndex::QueryScratch;

  /// Ascending, deduplicated batch indices of workers with at least one
  /// indexed point within the closed ball dis <= radius_km. Clears `out`.
  /// Pass a per-thread `scratch` on hot query loops: it moves label dedup
  /// off the sort and amortizes the stamp allocation across queries.
  void QueryWorkers(const geo::Point& center, double radius_km,
                    std::vector<int>& out,
                    QueryScratch* scratch = nullptr) const {
    index_.CollectLabelsWithin(center, radius_km, out, scratch);
  }

  size_t num_points() const { return index_.num_entries(); }

 private:
  // Declared before index_: the member-initializer list sizes the index's
  // cells from the batch-max detour bound.
  double max_half_detour_km_ = 0.0;
  double max_speed_kmpm_ = 0.0;
  geo::SpatialLabelIndex index_;
};

}  // namespace tamp::assign
