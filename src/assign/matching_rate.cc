#include "assign/matching_rate.h"

#include "common/check.h"

namespace tamp::assign {

double MatchingRate(const std::vector<geo::Point>& real,
                    const std::vector<geo::Point>& predicted,
                    double radius_km) {
  TAMP_CHECK(real.size() == predicted.size());
  if (real.empty()) return 0.0;
  int matched = 0;
  for (size_t i = 0; i < real.size(); ++i) {
    if (geo::Distance(real[i], predicted[i]) <= radius_km) ++matched;
  }
  return static_cast<double>(matched) / static_cast<double>(real.size());
}

}  // namespace tamp::assign
