#include "assign/matching_rate.h"

#include "common/check.h"

namespace tamp::assign {

double MatchingRate(const std::vector<geo::Point>& real,
                    const std::vector<geo::Point>& predicted,
                    double radius_km) {
  TAMP_CHECK(real.size() == predicted.size());
  TAMP_CHECK_FINITE(radius_km);
  if (real.empty()) return 0.0;
  int matched = 0;
  for (size_t i = 0; i < real.size(); ++i) {
    // A NaN distance (corrupt prediction) must abort here rather than
    // silently count as unmatched and skew the PPI objective.
    if (TAMP_CHECK_FINITE(geo::Distance(real[i], predicted[i])) <= radius_km) {
      ++matched;
    }
  }
  return static_cast<double>(matched) / static_cast<double>(real.size());
}

}  // namespace tamp::assign
