#pragma once

#include "assign/types.h"
#include "common/rng.h"

namespace tamp::assign {

struct AssignReuse;

/// Parameters of the GGPSO baseline.
struct GgpsoConfig {
  int population = 24;
  int generations = 60;
  double crossover_rate = 0.7;
  double mutation_rate = 0.15;
  /// Fitness = completed-pair count + cost_weight * sum(1/(1+dis)).
  double cost_weight = 0.25;
  /// Matching-rate radius a used in the feasibility test (same as PPI's).
  double match_radius_km = 0.5;
  uint64_t seed = 99;
  /// Prune candidate generation through the per-batch spatial index
  /// (CandidateIndex); dense sweep when false. Plans are bit-identical
  /// either way.
  bool use_spatial_index = true;
  /// --sharding=components. GGPSO's population evolves through ONE
  /// sequential RNG stream spanning all tasks, so a per-shard evolution
  /// could not be bitwise-identical to the global one; with this flag the
  /// candidate-graph decomposition is computed and recorded (the
  /// assign.shard_count / assign.shard_max_rows instruments, matching
  /// KM/PPI observability) but the GA itself still runs globally — plans
  /// are trivially bit-identical with the flag on or off (DESIGN.md §4k).
  bool shard_components = false;
};

/// GGPSO [11]: the state-of-the-art mobility-prediction-aware assignment
/// baseline — a genetic algorithm with particle-swarm-style guidance that
/// iteratively improves a population of assignment plans through
/// crossover with the global best, mutation, and tournament selection.
/// Feasibility uses the same predicted-trajectory test as PPI's stage 3.
/// A non-null `reuse` builds the feasibility table through the incremental
/// engine (bit-identical table; no warm-start — GGPSO runs no KM).
AssignmentPlan GgpsoAssign(const std::vector<SpatialTask>& tasks,
                           const std::vector<CandidateWorker>& workers,
                           double now_min, const GgpsoConfig& config,
                           AssignReuse* reuse = nullptr);

}  // namespace tamp::assign
