#pragma once

#include "assign/types.h"

namespace tamp::assign {

struct AssignReuse;

/// The KM baseline (Section IV-A): builds the bipartite graph exactly as
/// PPI's third stage does — a pair is feasible when the closest predicted
/// point satisfies dis^min <= min(d/2, d_t) — and solves one maximum-weight
/// matching with 1/dis^min weights. Ignores matching rates entirely.
///
/// `use_spatial_index` selects the pruned candidate generation (default)
/// or the dense T x W sweep; both yield bit-identical plans (see
/// CandidateIndex). A non-null `reuse` switches to the incremental engine
/// (delta-updated index + row cache) and warm-starts the KM solve from the
/// previous batch through this holder — still bit-identical (see
/// IncrementalCandidateEngine / KmWarmState).
///
/// `shard_components` (--sharding=components) decomposes the candidate
/// graph into connected components and solves per-shard KM concurrently
/// (DESIGN.md §4k); plans stay bit-identical to the global solve. With
/// `reuse` the sharded solves warm-start from reuse->shard_pool (keyed by
/// shard signature) instead of the global reuse->km holder.
AssignmentPlan KmAssign(const std::vector<SpatialTask>& tasks,
                        const std::vector<CandidateWorker>& workers,
                        double now_min, double match_radius_km,
                        double weight_floor_km = 1e-3,
                        bool use_spatial_index = true,
                        AssignReuse* reuse = nullptr,
                        bool shard_components = false);

}  // namespace tamp::assign
