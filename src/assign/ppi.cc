#include "assign/ppi.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "assign/candidate_index.h"
#include "assign/candidates.h"
#include "assign/incremental.h"
#include "assign/sharding.h"
#include "common/check.h"
#include "common/obs/metrics.h"
#include "common/obs/trace.h"
#include "common/stopwatch.h"
#include "matching/hungarian.h"

namespace tamp::assign {
namespace {

/// A stage-1/2 candidate edge: the (task, worker) pair with its Theorem-2
/// evidence.
struct PpiCandidate {
  int task = -1;
  int worker = -1;
  double min_b = 0.0;
  double score = 0.0;  // |B| * MR.
};

/// Key for the pair -> min_b lookup below; task/worker are batch indices
/// well under 2^31 so the packed key is collision-free.
int64_t PairKey(int task, int worker) {
  return (static_cast<int64_t>(task) << 32) |
         static_cast<int64_t>(static_cast<uint32_t>(worker));
}

/// Reusable buffers for MatchAndCommit across the many per-batch KM calls
/// of one PpiAssign invocation.
struct CommitScratch {
  matching::MatchingScratch matching;
  std::vector<matching::Edge> km_edges;
  std::unordered_map<int64_t, double> min_b_of_pair;
};

/// Runs KM on the given candidate edges and appends the matched pairs to
/// `plan`, marking tasks/workers as assigned. Weights are 1/(min_b+floor).
/// With `reuse` non-null the solve warm-starts from the previous batch's
/// same-ordinal solve (stage 1, then each stage-2 flush, then stage 3 —
/// the sequence is deterministic, so ordinals line up whenever the batch
/// shapes do); `solve_ordinal` counts only calls that actually solve.
/// A non-null `shard_plan` solves per connected component instead of
/// globally (bit-identical; warm state moves to reuse->shard_pool keyed by
/// shard signature with the ordinal as salt).
void MatchAndCommit(const std::vector<PpiCandidate>& edges, int num_tasks,
                    int num_workers, double weight_floor,
                    CommitScratch& scratch, std::vector<char>& task_done,
                    std::vector<char>& worker_done, AssignmentPlan& plan,
                    AssignReuse* reuse, const ShardPlan* shard_plan,
                    size_t& solve_ordinal) {
  if (edges.empty()) return;
  // Cap the per-ordinal warm holders so a pathological flush count cannot
  // accumulate unbounded checkpoint state across batches.
  constexpr size_t kMaxWarmSolves = 32;
  matching::KmWarmState* warm = nullptr;
  ShardWarmPool* shard_pool = nullptr;
  uint64_t shard_salt = 0;
  if (reuse != nullptr) {
    if (solve_ordinal < kMaxWarmSolves) {
      if (shard_plan != nullptr) {
        shard_pool = &reuse->shard_pool;
      } else {
        if (reuse->ppi.size() <= solve_ordinal) {
          reuse->ppi.resize(solve_ordinal + 1);
        }
        warm = &reuse->ppi[solve_ordinal];
      }
    }
    shard_salt = solve_ordinal;
    ++solve_ordinal;
  }
  obs::TraceSpan match_span("ppi.match");
  std::vector<matching::Edge>& km_edges = scratch.km_edges;
  km_edges.clear();
  km_edges.reserve(edges.size());
  // Index min_b by pair id so recovering the detour of a matched pair is a
  // hash lookup, not a rescan of every edge per match (O(E * M) before).
  std::unordered_map<int64_t, double>& min_b_of_pair = scratch.min_b_of_pair;
  min_b_of_pair.clear();
  min_b_of_pair.reserve(edges.size());
  for (const PpiCandidate& c : edges) {
    km_edges.push_back({c.task, c.worker, 1.0 / (c.min_b + weight_floor)});
    const bool inserted =
        min_b_of_pair.emplace(PairKey(c.task, c.worker), c.min_b).second;
    // Each (task, worker) pair is evaluated once per stage, so a duplicate
    // edge means a caller bug (and would make the recovered min_b ambiguous).
    TAMP_DCHECK(inserted);
    (void)inserted;
  }
  matching::MatchResult result =
      shard_plan != nullptr
          ? ShardedMaxWeightMatching(num_tasks, num_workers, km_edges,
                                     *shard_plan, shard_pool, shard_salt)
          : matching::MaxWeightMatching(num_tasks, num_workers, km_edges,
                                        &scratch.matching, warm);
  for (auto [task, worker] : result.pairs) {
    const size_t ti = static_cast<size_t>(task);
    const size_t wi = static_cast<size_t>(worker);
    TAMP_CHECK(!task_done[ti] && !worker_done[wi]);
    task_done[ti] = 1;
    worker_done[wi] = 1;
    auto it = min_b_of_pair.find(PairKey(task, worker));
    TAMP_CHECK(it != min_b_of_pair.end());
    plan.pairs.push_back({task, worker, it->second});
  }
}

}  // namespace

AssignmentPlan PpiAssign(const std::vector<SpatialTask>& tasks,
                         const std::vector<CandidateWorker>& workers,
                         double now_min, const PpiConfig& config,
                         AssignReuse* reuse) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter& calls_counter = registry.GetCounter("ppi.calls");
  static obs::Counter& certain_counter =
      registry.GetCounter("ppi.stage1_certain_edges");
  static obs::Counter& pending_counter =
      registry.GetCounter("ppi.stage2_pending_edges");
  static obs::Counter& fallback_counter =
      registry.GetCounter("ppi.stage3_fallback_edges");
  static obs::Histogram& build_hist = registry.GetHistogram(
      "assign.index_build_s", obs::DurationEdgesSeconds());

  obs::TraceSpan ppi_span("ppi.assign");
  calls_counter.Increment();
  const int num_tasks = static_cast<int>(tasks.size());
  const int num_workers = static_cast<int>(workers.size());
  AssignmentPlan plan;
  if (num_tasks == 0 || num_workers == 0) return plan;

  // Candidate table shared by stages 1 and 3: EvaluateCandidate is pure in
  // (task, worker, now), so one evaluation per pair serves both stages.
  std::vector<std::vector<TaskCandidate>> table;
  if (reuse != nullptr) {
    obs::TraceSpan build_span("ppi.index_build");
    table = reuse->candidates.BuildTable(tasks, workers,
                                         config.match_radius_km, now_min);
  } else {
    std::optional<CandidateIndex> index;
    if (config.use_spatial_index) {
      obs::TraceSpan build_span("ppi.index_build");
      Stopwatch build_watch;
      index.emplace(workers);
      build_hist.Record(build_watch.ElapsedSeconds());
    }
    table = GenerateCandidates(tasks, workers, config.match_radius_km,
                               now_min, index ? &*index : nullptr);
  }

  std::vector<char> task_done(static_cast<size_t>(num_tasks), 0);
  std::vector<char> worker_done(static_cast<size_t>(num_workers), 0);
  CommitScratch scratch;
  size_t solve_ordinal = 0;

  // Geo-sharded mode: one decomposition serves every stage (each stage's
  // edges are table rows, so no edge crosses a component boundary).
  std::optional<ShardPlan> shard_plan;
  if (config.shard_components) {
    shard_plan.emplace(BuildShardPlan(table, tasks, workers));
  }
  const ShardPlan* shards = shard_plan ? &*shard_plan : nullptr;

  // ---- Stage 1 (Alg. 4 lines 1-12): certain pairs (|B| * MR >= 1). ----
  std::optional<obs::TraceSpan> stage1_span(std::in_place, "ppi.stage1");
  std::vector<PpiCandidate> certain;
  std::vector<PpiCandidate> pending;  // The B-set of lines 10-11.
  for (size_t t = 0; t < table.size(); ++t) {
    for (const TaskCandidate& tc : table[t]) {
      if (tc.b_count == 0) continue;
      PpiCandidate c;
      c.task = static_cast<int>(t);
      c.worker = tc.worker;
      c.min_b = tc.min_b;
      c.score = static_cast<double>(tc.b_count) *
                workers[static_cast<size_t>(tc.worker)].matching_rate;
      if (c.score >= 1.0) {
        certain.push_back(c);
      } else {
        pending.push_back(c);
      }
    }
  }
  certain_counter.Increment(static_cast<int64_t>(certain.size()));
  pending_counter.Increment(static_cast<int64_t>(pending.size()));
  MatchAndCommit(certain, num_tasks, num_workers, config.weight_floor_km,
                 scratch, task_done, worker_done, plan, reuse, shards,
                 solve_ordinal);
  stage1_span.reset();

  // ---- Stage 2 (lines 13-27): drain pending pairs in descending |B|*MR,
  // epsilon at a time. ----
  std::optional<obs::TraceSpan> stage2_span(std::in_place, "ppi.stage2");
  std::stable_sort(pending.begin(), pending.end(),
                   [](const PpiCandidate& a, const PpiCandidate& b) {
                     return a.score > b.score;
                   });
  std::vector<PpiCandidate> batch;
  std::vector<PpiCandidate> live;
  auto flush_batch = [&]() {
    if (batch.empty()) return;
    // Skip entries invalidated by earlier commits (lines 22-23's removal).
    live.clear();
    for (const PpiCandidate& c : batch) {
      if (!task_done[static_cast<size_t>(c.task)] &&
          !worker_done[static_cast<size_t>(c.worker)]) {
        live.push_back(c);
      }
    }
    MatchAndCommit(live, num_tasks, num_workers, config.weight_floor_km,
                   scratch, task_done, worker_done, plan, reuse, shards,
                   solve_ordinal);
    batch.clear();
  };
  for (const PpiCandidate& c : pending) {
    if (task_done[static_cast<size_t>(c.task)] ||
        worker_done[static_cast<size_t>(c.worker)]) {
      continue;
    }
    batch.push_back(c);
    if (static_cast<int>(batch.size()) == config.epsilon) flush_batch();
  }
  flush_batch();  // Lines 25-27: the final partial batch.
  stage2_span.reset();

  // ---- Stage 3 (lines 28-34): leftovers matched on dis^min only. ----
  obs::TraceSpan stage3_span("ppi.stage3");
  std::vector<PpiCandidate> fallback;
  for (size_t t = 0; t < table.size(); ++t) {
    if (task_done[t]) continue;
    for (const TaskCandidate& tc : table[t]) {
      if (worker_done[static_cast<size_t>(tc.worker)]) continue;
      if (!tc.stage3_feasible) continue;
      fallback.push_back({static_cast<int>(t), tc.worker, tc.min_dis, 0.0});
    }
  }
  fallback_counter.Increment(static_cast<int64_t>(fallback.size()));
  MatchAndCommit(fallback, num_tasks, num_workers, config.weight_floor_km,
                 scratch, task_done, worker_done, plan, reuse, shards,
                 solve_ordinal);
  return plan;
}

}  // namespace tamp::assign
