#include "assign/km_assigner.h"

#include <optional>

#include "assign/candidate_index.h"
#include "assign/candidates.h"
#include "assign/incremental.h"
#include "assign/sharding.h"
#include "common/obs/metrics.h"
#include "common/obs/trace.h"
#include "common/stopwatch.h"
#include "matching/hungarian.h"

namespace tamp::assign {

AssignmentPlan KmAssign(const std::vector<SpatialTask>& tasks,
                        const std::vector<CandidateWorker>& workers,
                        double now_min, double match_radius_km,
                        double weight_floor_km, bool use_spatial_index,
                        AssignReuse* reuse, bool shard_components) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter& solves_counter = registry.GetCounter("km.solves");
  static obs::Counter& edges_counter = registry.GetCounter("km.edges");
  static obs::Histogram& solve_hist =
      registry.GetHistogram("km.solve_s", obs::DurationEdgesSeconds());
  static obs::Histogram& build_hist = registry.GetHistogram(
      "assign.index_build_s", obs::DurationEdgesSeconds());

  AssignmentPlan plan;
  if (tasks.empty() || workers.empty()) return plan;

  std::vector<std::vector<TaskCandidate>> table;
  if (reuse != nullptr) {
    // Incremental path: the engine's delta-updated index + row cache stand
    // in for the per-batch CandidateIndex; tables are bit-identical.
    obs::TraceSpan build_span("km.index_build");
    table = reuse->candidates.BuildTable(tasks, workers, match_radius_km,
                                         now_min);
  } else {
    std::optional<CandidateIndex> index;
    if (use_spatial_index) {
      obs::TraceSpan build_span("km.index_build");
      Stopwatch build_watch;
      index.emplace(workers);
      build_hist.Record(build_watch.ElapsedSeconds());
    }
    table = GenerateCandidates(tasks, workers, match_radius_km, now_min,
                               index ? &*index : nullptr);
  }

  std::vector<matching::Edge> edges;
  for (size_t t = 0; t < table.size(); ++t) {
    for (const TaskCandidate& tc : table[t]) {
      if (!tc.stage3_feasible) continue;
      edges.push_back({static_cast<int>(t), tc.worker,
                       1.0 / (tc.min_dis + weight_floor_km)});
    }
  }
  solves_counter.Increment();
  edges_counter.Increment(static_cast<int64_t>(edges.size()));
  Stopwatch solve_watch;
  obs::TraceSpan solve_span("km.solve");
  matching::MatchResult result;
  if (shard_components) {
    // Geo-sharded solve (DESIGN.md §4k): connected components of the
    // candidate table share no feasible edge, so per-shard KM merged in
    // task order is bit-identical to the global solve. Warm state lives in
    // the signature-keyed shard pool (the global `km` holder's prefix
    // would never match the shard-local matrices).
    const ShardPlan shard_plan = BuildShardPlan(table, tasks, workers);
    result = ShardedMaxWeightMatching(
        static_cast<int>(tasks.size()), static_cast<int>(workers.size()),
        edges, shard_plan, reuse != nullptr ? &reuse->shard_pool : nullptr);
  } else {
    result = matching::MaxWeightMatching(
        static_cast<int>(tasks.size()), static_cast<int>(workers.size()),
        edges, nullptr, reuse != nullptr ? &reuse->km : nullptr);
  }
  solve_hist.Record(solve_watch.ElapsedSeconds());
  for (auto [t, w] : result.pairs) {
    // Recover dis^min of the matched pair from its table row (rows hold
    // ascending worker indices, so the scan is short and deterministic).
    double min_dis = 0.0;
    for (const TaskCandidate& tc : table[static_cast<size_t>(t)]) {
      if (tc.worker == w) {
        min_dis = tc.min_dis;
        break;
      }
    }
    plan.pairs.push_back({t, w, min_dis});
  }
  return plan;
}

}  // namespace tamp::assign
