#include "assign/km_assigner.h"

#include "assign/candidates.h"
#include "common/obs/metrics.h"
#include "common/obs/trace.h"
#include "common/stopwatch.h"
#include "matching/hungarian.h"

namespace tamp::assign {

AssignmentPlan KmAssign(const std::vector<SpatialTask>& tasks,
                        const std::vector<CandidateWorker>& workers,
                        double now_min, double match_radius_km,
                        double weight_floor_km) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter& solves_counter = registry.GetCounter("km.solves");
  static obs::Counter& edges_counter = registry.GetCounter("km.edges");
  static obs::Histogram& solve_hist =
      registry.GetHistogram("km.solve_s", obs::DurationEdgesSeconds());

  AssignmentPlan plan;
  if (tasks.empty() || workers.empty()) return plan;

  std::vector<matching::Edge> edges;
  std::vector<std::vector<double>> min_dis(
      tasks.size(), std::vector<double>(workers.size(), 0.0));
  for (size_t t = 0; t < tasks.size(); ++t) {
    for (size_t w = 0; w < workers.size(); ++w) {
      CandidateInfo info = EvaluateCandidate(tasks[t], workers[w],
                                             match_radius_km, now_min);
      if (!info.stage3_feasible) continue;
      min_dis[t][w] = info.min_dis;
      edges.push_back({static_cast<int>(t), static_cast<int>(w),
                       1.0 / (info.min_dis + weight_floor_km)});
    }
  }
  solves_counter.Increment();
  edges_counter.Increment(static_cast<int64_t>(edges.size()));
  Stopwatch solve_watch;
  obs::TraceSpan solve_span("km.solve");
  matching::MatchResult result = matching::MaxWeightMatching(
      static_cast<int>(tasks.size()), static_cast<int>(workers.size()), edges);
  solve_hist.Record(solve_watch.ElapsedSeconds());
  for (auto [t, w] : result.pairs) {
    plan.pairs.push_back(
        {t, w, min_dis[static_cast<size_t>(t)][static_cast<size_t>(w)]});
  }
  return plan;
}

}  // namespace tamp::assign
