#pragma once

#include <optional>
#include <vector>

#include "geo/point.h"

namespace tamp::geo {

/// A routine r = {(l_1, t_1), ..., (l_n, t_n)} (Def. 2): a time-ordered
/// series of locations. Workers move along straight segments between
/// consecutive points.
class Trajectory {
 public:
  Trajectory() = default;
  explicit Trajectory(std::vector<TimedPoint> points);

  bool empty() const { return points_.empty(); }
  size_t size() const { return points_.size(); }
  const TimedPoint& operator[](size_t i) const { return points_[i]; }
  const std::vector<TimedPoint>& points() const { return points_; }

  /// Appends a point; its timestamp must not precede the last one.
  void Append(const TimedPoint& p);

  double start_time() const;
  double end_time() const;

  /// Total path length in km (sum of segment lengths).
  double PathLength() const;

  /// Position at an arbitrary time, linearly interpolated along segments.
  /// Times before the start / after the end clamp to the endpoints.
  /// Requires a non-empty trajectory.
  Point PositionAt(double time_min) const;

  /// The sub-trajectory with timestamps in [t_begin, t_end] (inclusive).
  Trajectory Slice(double t_begin, double t_end) const;

  /// The locations only (drops timestamps), e.g. as model targets.
  std::vector<Point> Locations() const;

  /// Minimum distance from any trajectory point to `p` (the dis^min of
  /// Alg. 4 stage 3). Requires a non-empty trajectory.
  double MinDistanceTo(const Point& p) const;

 private:
  std::vector<TimedPoint> points_;
};

/// Result of planning a task visit along a routine.
struct DetourPlan {
  /// Extra distance the worker travels to visit the task location:
  /// dis(l_i, tau) + dis(tau, l_{i+1}) - dis(l_i, l_{i+1}) for the best
  /// insertion segment (the quantity bounded by w.d in Lemma 1).
  double detour_km = 0.0;
  /// When the worker reaches the task location, assuming it departs l_i at
  /// t_i and travels at `speed` (km/min).
  double arrival_time_min = 0.0;
  /// Index i of the segment (l_i -> l_{i+1}) the visit is inserted into;
  /// size()-1 denotes an out-and-back from the final point.
  size_t segment_index = 0;
};

/// Finds the cheapest feasible insertion of a visit to `task_loc` into
/// `routine`, subject to arriving no later than `deadline_min` when moving
/// at `speed_kmpm` km/min. Considers every segment plus an out-and-back
/// from the final point. Returns nullopt when no insertion meets the
/// deadline or the routine is empty.
std::optional<DetourPlan> PlanTaskVisit(const Trajectory& routine,
                                        const Point& task_loc,
                                        double speed_kmpm,
                                        double deadline_min);

/// Detour for a stationary worker at `loc` (the LB baseline's view): an
/// out-and-back trip of 2 * dis(loc, task). Returns nullopt when the task
/// cannot be reached before `deadline_min` at `speed_kmpm` starting at
/// `now_min`.
std::optional<DetourPlan> PlanFromPoint(const Point& loc, double now_min,
                                        const Point& task_loc,
                                        double speed_kmpm,
                                        double deadline_min);

}  // namespace tamp::geo
