#include "geo/trajectory.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace tamp::geo {

Trajectory::Trajectory(std::vector<TimedPoint> points)
    : points_(std::move(points)) {
  for (size_t i = 1; i < points_.size(); ++i) {
    TAMP_CHECK_MSG(points_[i].time_min >= points_[i - 1].time_min,
                   "trajectory timestamps must be non-decreasing");
  }
}

void Trajectory::Append(const TimedPoint& p) {
  if (!points_.empty()) {
    TAMP_CHECK_MSG(p.time_min >= points_.back().time_min,
                   "trajectory timestamps must be non-decreasing");
  }
  points_.push_back(p);
}

double Trajectory::start_time() const {
  TAMP_CHECK(!points_.empty());
  return points_.front().time_min;
}

double Trajectory::end_time() const {
  TAMP_CHECK(!points_.empty());
  return points_.back().time_min;
}

double Trajectory::PathLength() const {
  double total = 0.0;
  for (size_t i = 1; i < points_.size(); ++i) {
    total += Distance(points_[i - 1].loc, points_[i].loc);
  }
  return total;
}

Point Trajectory::PositionAt(double time_min) const {
  TAMP_CHECK(!points_.empty());
  if (time_min <= points_.front().time_min) return points_.front().loc;
  if (time_min >= points_.back().time_min) return points_.back().loc;
  // Binary search for the segment containing time_min.
  size_t lo = 0;
  size_t hi = points_.size() - 1;
  while (hi - lo > 1) {
    size_t mid = (lo + hi) / 2;
    if (points_[mid].time_min <= time_min) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const TimedPoint& a = points_[lo];
  const TimedPoint& b = points_[hi];
  double span = b.time_min - a.time_min;
  if (span <= 0.0) return a.loc;
  double frac = (time_min - a.time_min) / span;
  return a.loc + (b.loc - a.loc) * frac;
}

Trajectory Trajectory::Slice(double t_begin, double t_end) const {
  std::vector<TimedPoint> out;
  for (const auto& p : points_) {
    if (p.time_min >= t_begin && p.time_min <= t_end) out.push_back(p);
  }
  return Trajectory(std::move(out));
}

std::vector<Point> Trajectory::Locations() const {
  std::vector<Point> out;
  out.reserve(points_.size());
  for (const auto& p : points_) out.push_back(p.loc);
  return out;
}

double Trajectory::MinDistanceTo(const Point& p) const {
  TAMP_CHECK(!points_.empty());
  double best = std::numeric_limits<double>::infinity();
  for (const auto& tp : points_) {
    best = std::min(best, Distance(tp.loc, p));
  }
  return best;
}

std::optional<DetourPlan> PlanTaskVisit(const Trajectory& routine,
                                        const Point& task_loc,
                                        double speed_kmpm,
                                        double deadline_min) {
  if (routine.empty() || speed_kmpm <= 0.0) return std::nullopt;
  std::optional<DetourPlan> best;
  auto consider = [&](double detour, double arrival, size_t seg) {
    if (arrival > deadline_min) return;
    if (!best.has_value() || detour < best->detour_km) {
      best = DetourPlan{detour, arrival, seg};
    }
  };
  const auto& pts = routine.points();
  for (size_t i = 0; i + 1 < pts.size(); ++i) {
    double to_task = Distance(pts[i].loc, task_loc);
    double onward = Distance(task_loc, pts[i + 1].loc);
    double direct = Distance(pts[i].loc, pts[i + 1].loc);
    double detour = to_task + onward - direct;
    double arrival = pts[i].time_min + to_task / speed_kmpm;
    consider(detour, arrival, i);
  }
  // Out-and-back from the final routine point: the worker finishes the
  // routine, visits the task, and returns, costing twice the leg.
  {
    const TimedPoint& last = pts.back();
    double to_task = Distance(last.loc, task_loc);
    consider(2.0 * to_task, last.time_min + to_task / speed_kmpm,
             pts.size() - 1);
  }
  return best;
}

std::optional<DetourPlan> PlanFromPoint(const Point& loc, double now_min,
                                        const Point& task_loc,
                                        double speed_kmpm,
                                        double deadline_min) {
  if (speed_kmpm <= 0.0) return std::nullopt;
  double to_task = Distance(loc, task_loc);
  double arrival = now_min + to_task / speed_kmpm;
  if (arrival > deadline_min) return std::nullopt;
  return DetourPlan{2.0 * to_task, arrival, 0};
}

}  // namespace tamp::geo
