#include "geo/spatial_index.h"

#include <algorithm>
#include <cmath>

namespace tamp::geo {

SpatialCountIndex::SpatialCountIndex(const GridSpec& spec,
                                     const std::vector<Point>& points)
    : spec_(spec),
      buckets_(static_cast<size_t>(spec.num_cells())),
      num_points_(points.size()) {
  for (const Point& p : points) {
    Point clamped = spec_.Clamp(p);
    buckets_[static_cast<size_t>(spec_.FlatIndex(spec_.CellOf(clamped)))]
        .push_back(clamped);
  }
}

int SpatialCountIndex::CountWithin(const Point& center,
                                   double radius_km) const {
  if (radius_km <= 0.0) return 0;
  double cell_w = spec_.width_km() / spec_.cols();
  double cell_h = spec_.height_km() / spec_.rows();
  GridCell lo = spec_.CellOf({center.x - radius_km, center.y - radius_km});
  GridCell hi = spec_.CellOf({center.x + radius_km, center.y + radius_km});
  double r2 = radius_km * radius_km;
  int count = 0;
  for (int row = lo.row; row <= hi.row; ++row) {
    for (int col = lo.col; col <= hi.col; ++col) {
      // Skip cells whose nearest corner is already outside the radius.
      double cx0 = col * cell_w, cx1 = (col + 1) * cell_w;
      double cy0 = row * cell_h, cy1 = (row + 1) * cell_h;
      double dx = std::max({cx0 - center.x, 0.0, center.x - cx1});
      double dy = std::max({cy0 - center.y, 0.0, center.y - cy1});
      if (dx * dx + dy * dy > r2) continue;
      for (const Point& p :
           buckets_[static_cast<size_t>(row * spec_.cols() + col)]) {
        if (DistanceSquared(p, center) < r2) ++count;
      }
    }
  }
  return count;
}

std::vector<Point> SpatialCountIndex::QueryWithin(const Point& center,
                                                  double radius_km) const {
  std::vector<Point> out;
  if (radius_km <= 0.0) return out;
  GridCell lo = spec_.CellOf({center.x - radius_km, center.y - radius_km});
  GridCell hi = spec_.CellOf({center.x + radius_km, center.y + radius_km});
  double r2 = radius_km * radius_km;
  for (int row = lo.row; row <= hi.row; ++row) {
    for (int col = lo.col; col <= hi.col; ++col) {
      for (const Point& p :
           buckets_[static_cast<size_t>(row * spec_.cols() + col)]) {
        if (DistanceSquared(p, center) < r2) out.push_back(p);
      }
    }
  }
  return out;
}

double SpatialCountIndex::MeanCountPerDisk(double radius_km) const {
  double area = spec_.width_km() * spec_.height_km();
  double disk = M_PI * radius_km * radius_km;
  double mean = static_cast<double>(num_points_) * disk / area;
  return std::max(mean, 1e-6);
}

}  // namespace tamp::geo
