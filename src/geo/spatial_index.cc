#include "geo/spatial_index.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tamp::geo {

SpatialLabelIndex::SpatialLabelIndex(const std::vector<Entry>& entries,
                                     double target_cell_km) {
  num_entries_ = entries.size();
  if (entries.empty()) {
    buckets_.resize(1);
    return;
  }
  Point max = entries[0].loc;
  min_ = entries[0].loc;
  for (const Entry& e : entries) {
    min_.x = std::min(min_.x, e.loc.x);
    min_.y = std::min(min_.y, e.loc.y);
    max.x = std::max(max.x, e.loc.x);
    max.y = std::max(max.y, e.loc.y);
  }
  const double width = max.x - min_.x;
  const double height = max.y - min_.y;
  const double extent = std::max(width, height);
  double cell = target_cell_km;
  if (cell <= 0.0) {
    // ~1 point per cell: balances bucket scan length against the number of
    // cells a query rectangle covers.
    cell = std::sqrt(std::max(width * height, 1e-12) /
                     static_cast<double>(entries.size()));
  }
  cell_km_ = std::clamp(cell, 0.05, std::max(extent, 0.05));
  rows_ = static_cast<int>(height / cell_km_) + 1;
  cols_ = static_cast<int>(width / cell_km_) + 1;
  has_grid_ = true;
  buckets_.resize(static_cast<size_t>(rows_) * static_cast<size_t>(cols_));
  for (const Entry& e : entries) {
    buckets_[BucketOf(e.loc)].push_back(e);
    max_label_ = std::max(max_label_, e.label);
    if (e.label < 0) labels_non_negative_ = false;
  }
}

size_t SpatialLabelIndex::BucketOf(const Point& p) const {
  int row = static_cast<int>((p.y - min_.y) / cell_km_);
  int col = static_cast<int>((p.x - min_.x) / cell_km_);
  row = std::clamp(row, 0, rows_ - 1);
  col = std::clamp(col, 0, cols_ - 1);
  return static_cast<size_t>(row) * static_cast<size_t>(cols_) +
         static_cast<size_t>(col);
}

bool SpatialLabelIndex::InGridFrame(const Point& p) const {
  if (!has_grid_) return false;
  // The frame is the footprint of the rows_ x cols_ cells, which covers the
  // construction-time bounding box. BucketOf's clamp is geometrically sound
  // only for points inside it; anything else must go to overflow, or the
  // nearest-corner cell prune in Collect could skip a clamped-in entry.
  return p.x >= min_.x && p.y >= min_.y &&
         p.x <= min_.x + static_cast<double>(cols_) * cell_km_ &&
         p.y <= min_.y + static_cast<double>(rows_) * cell_km_;
}

void SpatialLabelIndex::EnsureSlots() {
  if (slots_built_) return;
  slots_built_ = true;
  slots_of_label_.clear();
  for (size_t b = 0; b < buckets_.size(); ++b) {
    for (const Entry& e : buckets_[b]) {
      slots_of_label_[e.label].push_back(static_cast<uint32_t>(b));
    }
  }
  for (const Entry& e : overflow_) {
    slots_of_label_[e.label].push_back(kOverflowSlot);
  }
}

void SpatialLabelIndex::Insert(const Entry& entry) {
  EnsureSlots();
  ++generation_;
  ++num_entries_;
  max_label_ = std::max(max_label_, entry.label);
  if (entry.label < 0) labels_non_negative_ = false;
  if (InGridFrame(entry.loc)) {
    const uint32_t slot = static_cast<uint32_t>(BucketOf(entry.loc));
    buckets_[slot].push_back(entry);
    slots_of_label_[entry.label].push_back(slot);
  } else {
    overflow_.push_back(entry);
    slots_of_label_[entry.label].push_back(kOverflowSlot);
  }
}

size_t SpatialLabelIndex::RemoveLabel(int label) {
  EnsureSlots();
  auto it = slots_of_label_.find(label);
  if (it == slots_of_label_.end()) return 0;
  std::vector<uint32_t>& slots = it->second;
  std::sort(slots.begin(), slots.end());
  slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
  size_t removed = 0;
  for (uint32_t slot : slots) {
    std::vector<Entry>& entries =
        slot == kOverflowSlot ? overflow_ : buckets_[slot];
    removed += std::erase_if(
        entries, [label](const Entry& e) { return e.label == label; });
  }
  slots_of_label_.erase(it);
  TAMP_DCHECK(removed <= num_entries_);
  num_entries_ -= removed;
  generation_ += removed;
  return removed;
}

void SpatialLabelIndex::Collect(const Point& center, double max_radius_km,
                                const double* radius_of_label,
                                [[maybe_unused]] size_t num_labels,
                                std::vector<int>& out,
                                QueryScratch* scratch) const {
  out.clear();
  if (max_radius_km < 0.0 || num_entries_ == 0) return;
  if (scratch != nullptr && labels_non_negative_) {
    scratch->stamp.resize(static_cast<size_t>(max_label_) + 1, 0u);
    ++scratch->epoch;
    if (scratch->epoch == 0u) {  // Wrapped: stale stamps may alias.
      std::fill(scratch->stamp.begin(), scratch->stamp.end(), uint64_t{0});
      scratch->epoch = 1u;
    }
  } else {
    scratch = nullptr;
  }
  // The capped path is an *exact* filter, not just a conservative one: a
  // caller comparing Distance(p, c) <= bound (EvaluateCandidate's closed
  // inequality) must get bitwise-identical accept/reject decisions here.
  // Squared-space comparison is not that — near the boundary,
  // d2 > fl(r*r) does not imply fl(sqrt(d2)) > r — so capped entries pay
  // one sqrt and compare in distance space with the caller's own
  // arithmetic. The cell-range prune below still works in squared space
  // and is inflated to stay a superset of the sqrt-space ball.
  const bool exact = radius_of_label != nullptr;
  const double cell_radius =
      exact ? max_radius_km * (1.0 + 1e-9) + 1e-12 : max_radius_km;
  const double max_r2 = cell_radius * cell_radius;
  auto visit = [&](const Entry& e) {
    // Closed ball: the Theorem-2 feasibility inequality is closed, so
    // boundary points must survive the prune (class comment).
    if (exact) {
      TAMP_DCHECK(e.label >= 0 &&
                  static_cast<size_t>(e.label) < num_labels);
      const double r = radius_of_label[static_cast<size_t>(e.label)];
      if (r < 0.0 || Distance(e.loc, center) > r) return;
    } else if (DistanceSquared(e.loc, center) > max_r2) {
      return;
    }
    if (scratch != nullptr) {
      uint64_t& stamp = scratch->stamp[static_cast<size_t>(e.label)];
      if (stamp == scratch->epoch) return;
      stamp = scratch->epoch;
    }
    out.push_back(e.label);
  };
  if (has_grid_) {
    // Cell ranks of the query rectangle's corners; BucketOf clamps, so the
    // range is valid even when the ball pokes outside the bounding box.
    const int row_lo = std::clamp(
        static_cast<int>((center.y - cell_radius - min_.y) / cell_km_), 0,
        rows_ - 1);
    const int row_hi = std::clamp(
        static_cast<int>((center.y + cell_radius - min_.y) / cell_km_), 0,
        rows_ - 1);
    const int col_lo = std::clamp(
        static_cast<int>((center.x - cell_radius - min_.x) / cell_km_), 0,
        cols_ - 1);
    const int col_hi = std::clamp(
        static_cast<int>((center.x + cell_radius - min_.x) / cell_km_), 0,
        cols_ - 1);
    for (int row = row_lo; row <= row_hi; ++row) {
      for (int col = col_lo; col <= col_hi; ++col) {
        const std::vector<Entry>& bucket =
            buckets_[static_cast<size_t>(row) * static_cast<size_t>(cols_) +
                     static_cast<size_t>(col)];
        if (bucket.empty()) continue;
        // Skip cells whose nearest corner already exceeds the radius.
        const double cx0 = min_.x + col * cell_km_, cx1 = cx0 + cell_km_;
        const double cy0 = min_.y + row * cell_km_, cy1 = cy0 + cell_km_;
        const double dx = std::max({cx0 - center.x, 0.0, center.x - cx1});
        const double dy = std::max({cy0 - center.y, 0.0, center.y - cy1});
        if (dx * dx + dy * dy > max_r2) continue;
        for (const Entry& e : bucket) visit(e);
      }
    }
  }
  // Overflow entries live outside the grid frame and are never cell-pruned.
  for (const Entry& e : overflow_) visit(e);
  std::sort(out.begin(), out.end());
  if (scratch == nullptr) {
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
}

void SpatialLabelIndex::CollectLabelsWithin(const Point& center,
                                            double radius_km,
                                            std::vector<int>& out,
                                            QueryScratch* scratch) const {
  Collect(center, radius_km, nullptr, 0, out, scratch);
}

void SpatialLabelIndex::CollectLabelsWithinCaps(
    const Point& center, double max_radius_km,
    const std::vector<double>& radius_of_label, std::vector<int>& out,
    QueryScratch* scratch) const {
  TAMP_CHECK_MSG(labels_non_negative_,
                 "CollectLabelsWithinCaps requires non-negative labels");
  Collect(center, max_radius_km, radius_of_label.data(),
          radius_of_label.size(), out, scratch);
}

SpatialCountIndex::SpatialCountIndex(const GridSpec& spec,
                                     const std::vector<Point>& points)
    : spec_(spec),
      buckets_(static_cast<size_t>(spec.num_cells())),
      num_points_(points.size()) {
  for (const Point& p : points) {
    Point clamped = spec_.Clamp(p);
    buckets_[static_cast<size_t>(spec_.FlatIndex(spec_.CellOf(clamped)))]
        .push_back(clamped);
  }
}

int SpatialCountIndex::CountWithin(const Point& center,
                                   double radius_km) const {
  if (radius_km <= 0.0) return 0;
  double cell_w = spec_.width_km() / spec_.cols();
  double cell_h = spec_.height_km() / spec_.rows();
  GridCell lo = spec_.CellOf({center.x - radius_km, center.y - radius_km});
  GridCell hi = spec_.CellOf({center.x + radius_km, center.y + radius_km});
  double r2 = radius_km * radius_km;
  int count = 0;
  for (int row = lo.row; row <= hi.row; ++row) {
    for (int col = lo.col; col <= hi.col; ++col) {
      // Skip cells whose nearest corner is already outside the radius.
      double cx0 = col * cell_w, cx1 = (col + 1) * cell_w;
      double cy0 = row * cell_h, cy1 = (row + 1) * cell_h;
      double dx = std::max({cx0 - center.x, 0.0, center.x - cx1});
      double dy = std::max({cy0 - center.y, 0.0, center.y - cy1});
      if (dx * dx + dy * dy > r2) continue;
      for (const Point& p :
           buckets_[static_cast<size_t>(row * spec_.cols() + col)]) {
        if (DistanceSquared(p, center) < r2) ++count;
      }
    }
  }
  return count;
}

std::vector<Point> SpatialCountIndex::QueryWithin(const Point& center,
                                                  double radius_km) const {
  std::vector<Point> out;
  if (radius_km <= 0.0) return out;
  GridCell lo = spec_.CellOf({center.x - radius_km, center.y - radius_km});
  GridCell hi = spec_.CellOf({center.x + radius_km, center.y + radius_km});
  double r2 = radius_km * radius_km;
  for (int row = lo.row; row <= hi.row; ++row) {
    for (int col = lo.col; col <= hi.col; ++col) {
      for (const Point& p :
           buckets_[static_cast<size_t>(row * spec_.cols() + col)]) {
        if (DistanceSquared(p, center) < r2) out.push_back(p);
      }
    }
  }
  return out;
}

double SpatialCountIndex::MeanCountPerDisk(double radius_km) const {
  double area = spec_.width_km() * spec_.height_km();
  double disk = M_PI * radius_km * radius_km;
  double mean = static_cast<double>(num_points_) * disk / area;
  return std::max(mean, 1e-6);
}

}  // namespace tamp::geo
