#pragma once

#include <cstdint>

#include "geo/point.h"

namespace tamp::geo {

/// Discrete cell index in a GridSpec. Mirrors the paper's
/// (latitude_i, longitude_i) 2-tuples from the 100x50 gridding of Porto.
struct GridCell {
  int row = 0;
  int col = 0;

  bool operator==(const GridCell& o) const {
    return row == o.row && col == o.col;
  }
};

/// Uniform grid over the rectangular city area. Maps continuous locations
/// to cells and back (cell centres); also converts to/from the normalized
/// [0,1]^2 coordinates the prediction model operates on.
class GridSpec {
 public:
  /// A grid of `rows` x `cols` cells covering [0, width_km] x [0, height_km].
  /// All extents must be positive.
  GridSpec(double width_km, double height_km, int rows, int cols);

  double width_km() const { return width_km_; }
  double height_km() const { return height_km_; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int num_cells() const { return rows_ * cols_; }

  /// Cell containing `p`; locations outside the area clamp to the border.
  GridCell CellOf(const Point& p) const;

  /// Centre of the given cell (indices are clamped into range).
  Point CellCenter(const GridCell& cell) const;

  /// Flat index in [0, num_cells()) for hashing/bucketing.
  int FlatIndex(const GridCell& cell) const;

  /// Clamps a continuous point into the city rectangle.
  Point Clamp(const Point& p) const;

  /// Maps a location to normalized [0,1]^2 model coordinates.
  Point Normalize(const Point& p) const;

  /// Inverse of Normalize (clamps normalized coords into [0,1] first).
  Point Denormalize(const Point& p) const;

 private:
  double width_km_;
  double height_km_;
  int rows_;
  int cols_;
};

}  // namespace tamp::geo
