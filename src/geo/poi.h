#pragma once

#include <vector>

#include "geo/point.h"

namespace tamp::geo {

/// Point of interest v = <x, y, a> from Section III-B: a typed location used
/// as the spatial feature of a learning task.
struct Poi {
  Point loc;
  int type = 0;

  Poi() = default;
  Poi(Point l, int t) : loc(l), type(t) {}
  Poi(double x, double y, int t) : loc(x, y), type(t) {}
};

/// The POI sequence V^(i) associated with a learning task (the POIs visited
/// while performing historical spatial tasks).
using PoiSequence = std::vector<Poi>;

}  // namespace tamp::geo
