#include "geo/grid.h"

#include <algorithm>

#include "common/check.h"

namespace tamp::geo {

GridSpec::GridSpec(double width_km, double height_km, int rows, int cols)
    : width_km_(width_km), height_km_(height_km), rows_(rows), cols_(cols) {
  TAMP_CHECK(width_km > 0.0 && height_km > 0.0);
  TAMP_CHECK(rows > 0 && cols > 0);
}

GridCell GridSpec::CellOf(const Point& p) const {
  Point c = Clamp(p);
  int row = static_cast<int>(c.y / height_km_ * rows_);
  int col = static_cast<int>(c.x / width_km_ * cols_);
  row = std::min(row, rows_ - 1);
  col = std::min(col, cols_ - 1);
  return {row, col};
}

Point GridSpec::CellCenter(const GridCell& cell) const {
  int row = std::clamp(cell.row, 0, rows_ - 1);
  int col = std::clamp(cell.col, 0, cols_ - 1);
  double cell_w = width_km_ / cols_;
  double cell_h = height_km_ / rows_;
  return {(col + 0.5) * cell_w, (row + 0.5) * cell_h};
}

int GridSpec::FlatIndex(const GridCell& cell) const {
  int row = std::clamp(cell.row, 0, rows_ - 1);
  int col = std::clamp(cell.col, 0, cols_ - 1);
  return row * cols_ + col;
}

Point GridSpec::Clamp(const Point& p) const {
  return {std::clamp(p.x, 0.0, width_km_), std::clamp(p.y, 0.0, height_km_)};
}

Point GridSpec::Normalize(const Point& p) const {
  Point c = Clamp(p);
  return {c.x / width_km_, c.y / height_km_};
}

Point GridSpec::Denormalize(const Point& p) const {
  double nx = std::clamp(p.x, 0.0, 1.0);
  double ny = std::clamp(p.y, 0.0, 1.0);
  return {nx * width_km_, ny * height_km_};
}

}  // namespace tamp::geo
