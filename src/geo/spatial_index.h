#pragma once

#include <vector>

#include "geo/grid.h"
#include "geo/point.h"

namespace tamp::geo {

/// Uniform-grid point index supporting fast "count points within radius"
/// queries. The task-assignment-oriented loss (Eq. 7) calls this once per
/// trajectory point per training step, so the count path must be cheap.
class SpatialCountIndex {
 public:
  /// Buckets points into `spec`'s cells. Points are clamped into the area.
  SpatialCountIndex(const GridSpec& spec, const std::vector<Point>& points);

  /// Number of indexed points with dis(point, center) < radius_km.
  int CountWithin(const Point& center, double radius_km) const;

  /// Indexed points with dis(point, center) < radius_km.
  std::vector<Point> QueryWithin(const Point& center, double radius_km) const;

  size_t num_points() const { return num_points_; }

  /// Average number of points falling in a disk of the given radius, i.e.
  /// the rho^t normalizer of Eq. 7 (points per unit circular area times the
  /// disk area). Returns at least a small positive value so weights stay
  /// finite on empty histories.
  double MeanCountPerDisk(double radius_km) const;

 private:
  GridSpec spec_;
  std::vector<std::vector<Point>> buckets_;
  size_t num_points_ = 0;
};

}  // namespace tamp::geo
