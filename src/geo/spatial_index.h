#pragma once

#include <vector>

#include "geo/grid.h"
#include "geo/point.h"

namespace tamp::geo {

/// Uniform-grid index over labelled points (a label is typically a worker
/// index) on an arbitrary bounding box, supporting closed-ball label
/// queries: "which labels own at least one point with dis <= radius?".
///
/// This is the substrate of the assignment path's Theorem-2 candidate
/// pruning (assign::CandidateIndex): the query must be *conservative*
/// w.r.t. the closed inequality `dis + a <= bound`, so — unlike
/// SpatialCountIndex below, whose counting semantics are strict — points
/// exactly at the query radius are returned.
class SpatialLabelIndex {
 public:
  struct Entry {
    Point loc;
    int label = 0;
  };

  /// Reusable per-caller dedup state for CollectLabelsWithin. A label's
  /// stamp equal to the current epoch means "already collected this
  /// query"; bumping the epoch invalidates all stamps at once, so the
  /// vector is written, never cleared. One scratch per thread.
  struct QueryScratch {
    std::vector<unsigned> stamp;
    unsigned epoch = 0;
  };

  /// Buckets `entries` into a uniform grid over their bounding box. With
  /// `target_cell_km <= 0` the cell size is derived so the grid holds
  /// roughly one point per cell (clamped to [0.05 km, longest extent]).
  explicit SpatialLabelIndex(const std::vector<Entry>& entries,
                             double target_cell_km = 0.0);

  /// Collects into `out` the ascending, deduplicated labels of every entry
  /// with Distance(entry.loc, center) <= radius_km (closed ball; see class
  /// comment). Clears `out` first. No-op collection for radius < 0.
  ///
  /// With a `scratch`, duplicate labels are filtered as entries are
  /// scanned (O(unique) sort) instead of by a sort+unique pass over every
  /// matching point — the fast path for hot per-batch query loops. Only
  /// usable when all labels are non-negative; ignored otherwise.
  void CollectLabelsWithin(const Point& center, double radius_km,
                           std::vector<int>& out,
                           QueryScratch* scratch = nullptr) const;

  size_t num_entries() const { return num_entries_; }

 private:
  size_t BucketOf(const Point& p) const;

  Point min_;           // Bounding-box corner; grid origin.
  double cell_km_ = 1.0;
  int rows_ = 1;
  int cols_ = 1;
  std::vector<std::vector<Entry>> buckets_;
  size_t num_entries_ = 0;
  int max_label_ = -1;        // Largest label; sizes QueryScratch::stamp.
  bool labels_non_negative_ = true;
};

/// Uniform-grid point index supporting fast "count points within radius"
/// queries. The task-assignment-oriented loss (Eq. 7) calls this once per
/// trajectory point per training step, so the count path must be cheap.
class SpatialCountIndex {
 public:
  /// Buckets points into `spec`'s cells. Points are clamped into the area.
  SpatialCountIndex(const GridSpec& spec, const std::vector<Point>& points);

  /// Number of indexed points with dis(point, center) < radius_km.
  int CountWithin(const Point& center, double radius_km) const;

  /// Indexed points with dis(point, center) < radius_km.
  std::vector<Point> QueryWithin(const Point& center, double radius_km) const;

  size_t num_points() const { return num_points_; }

  /// Average number of points falling in a disk of the given radius, i.e.
  /// the rho^t normalizer of Eq. 7 (points per unit circular area times the
  /// disk area). Returns at least a small positive value so weights stay
  /// finite on empty histories.
  double MeanCountPerDisk(double radius_km) const;

 private:
  GridSpec spec_;
  std::vector<std::vector<Point>> buckets_;
  size_t num_points_ = 0;
};

}  // namespace tamp::geo
