#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/grid.h"
#include "geo/point.h"

namespace tamp::geo {

/// Uniform-grid index over labelled points (a label is typically a worker
/// index) on an arbitrary bounding box, supporting closed-ball label
/// queries: "which labels own at least one point with dis <= radius?".
///
/// This is the substrate of the assignment path's Theorem-2 candidate
/// pruning (assign::CandidateIndex): the query must be *conservative*
/// w.r.t. the closed inequality `dis + a <= bound`, so — unlike
/// SpatialCountIndex below, whose counting semantics are strict — points
/// exactly at the query radius are returned.
///
/// The index is also *delta-updatable* (Insert / RemoveLabel), which is
/// what lets the incremental assignment engine keep one index alive across
/// simulator batches instead of rebuilding it per batch. The grid frame
/// (origin, cell size, rows x cols) is fixed at construction; points
/// inserted outside the frame land in an overflow list that every query
/// scans linearly, so delta updates never lose the conservative-superset
/// guarantee, they only degrade toward a linear scan if the frame drifts
/// far from the data.
class SpatialLabelIndex {
 public:
  struct Entry {
    Point loc;
    int label = 0;
  };

  /// Reusable per-caller dedup state for the label queries. A label's
  /// stamp equal to the current epoch means "already collected this
  /// query"; bumping the epoch invalidates all stamps at once, so the
  /// vector is written, never cleared. One scratch per thread.
  ///
  /// The epoch is 64-bit: long-lived scratches (the incremental engine
  /// keeps thread_local scratches alive for a whole process) would wrap a
  /// 32-bit epoch within reach of a long sweep, and on wrap a stale stamp
  /// would alias the fresh epoch and silently drop hits. The wrap guard in
  /// the query is kept anyway (the fields are public, so a caller can seed
  /// an arbitrary epoch — the regression test does exactly that).
  struct QueryScratch {
    std::vector<uint64_t> stamp;
    uint64_t epoch = 0;
  };

  /// An empty index with no grid frame: every Insert goes to the overflow
  /// list. Intended as the pre-first-build state of long-lived holders;
  /// bulk-construct (and move-assign) once real entries exist.
  SpatialLabelIndex() = default;

  /// Buckets `entries` into a uniform grid over their bounding box. With
  /// `target_cell_km <= 0` the cell size is derived so the grid holds
  /// roughly one point per cell (clamped to [0.05 km, longest extent]).
  explicit SpatialLabelIndex(const std::vector<Entry>& entries,
                             double target_cell_km = 0.0);

  /// Collects into `out` the ascending, deduplicated labels of every entry
  /// with Distance(entry.loc, center) <= radius_km (closed ball; see class
  /// comment). Clears `out` first. No-op collection for radius < 0.
  ///
  /// With a `scratch`, duplicate labels are filtered as entries are
  /// scanned (O(unique) sort) instead of by a sort+unique pass over every
  /// matching point — the fast path for hot per-batch query loops. Only
  /// usable when all labels are non-negative; ignored otherwise.
  void CollectLabelsWithin(const Point& center, double radius_km,
                           std::vector<int>& out,
                           QueryScratch* scratch = nullptr) const;

  /// Per-label-radius variant: entry of label l is a hit iff
  /// Distance(entry.loc, center) <= radius_of_label[l] (closed ball).
  /// `max_radius_km` must dominate every per-label radius — it bounds the
  /// grid cells scanned, so an undersized value would wrongly prune.
  /// Negative per-label radii collect nothing for that label. Requires
  /// non-negative labels, each < radius_of_label.size().
  ///
  /// This is the exact Theorem-2 filter of the incremental engine: with
  /// radius_of_label[w] = min(d_w/2, speed_w * (deadline - now)), a worker
  /// is returned iff some platform-visible point lies within its *own*
  /// feasibility bound, not the batch-max bound.
  void CollectLabelsWithinCaps(const Point& center, double max_radius_km,
                               const std::vector<double>& radius_of_label,
                               std::vector<int>& out,
                               QueryScratch* scratch = nullptr) const;

  /// Adds one entry. Points outside the fixed grid frame (or inserted
  /// before any frame exists) go to the overflow list. O(1) amortized.
  void Insert(const Entry& entry);

  /// Removes every entry carrying `label`; returns how many were removed.
  /// The relative order of surviving entries in each bucket is preserved,
  /// so the index state after a sequence of deltas is independent of the
  /// order in which distinct labels were removed.
  size_t RemoveLabel(int label);

  /// Mutation counter: advances by one per entry inserted or removed
  /// (generation() - generation_at_build == delta entry ops). The same
  /// idiom as QueryScratch's epoch, lifted to index lifetime: callers that
  /// cache derived state key it by generation to notice staleness.
  uint64_t generation() const { return generation_; }

  size_t num_entries() const { return num_entries_; }

 private:
  static constexpr uint32_t kOverflowSlot = 0xFFFFFFFFu;

  size_t BucketOf(const Point& p) const;
  bool InGridFrame(const Point& p) const;
  /// Builds slots_of_label_ from the current buckets on first mutation
  /// (bulk construction skips it: per-batch throwaway indexes never pay
  /// for removal bookkeeping they will not use).
  void EnsureSlots();
  /// Shared query core: `radius_of_label == nullptr` means the uniform
  /// radius `max_radius_km` for every entry.
  void Collect(const Point& center, double max_radius_km,
               const double* radius_of_label, size_t num_labels,
               std::vector<int>& out, QueryScratch* scratch) const;

  Point min_;           // Bounding-box corner; grid origin.
  double cell_km_ = 1.0;
  int rows_ = 1;
  int cols_ = 1;
  bool has_grid_ = false;     // False until a non-empty bulk build.
  std::vector<std::vector<Entry>> buckets_;
  std::vector<Entry> overflow_;  // Outside the grid frame; always scanned.
  size_t num_entries_ = 0;
  int max_label_ = -1;        // Largest label ever seen; sizes stamps.
  bool labels_non_negative_ = true;
  uint64_t generation_ = 0;
  /// label -> bucket slots that may hold its entries (kOverflowSlot for
  /// the overflow list). May contain duplicates; RemoveLabel dedups.
  std::unordered_map<int, std::vector<uint32_t>> slots_of_label_;
  bool slots_built_ = false;
};

/// Uniform-grid point index supporting fast "count points within radius"
/// queries. The task-assignment-oriented loss (Eq. 7) calls this once per
/// trajectory point per training step, so the count path must be cheap.
class SpatialCountIndex {
 public:
  /// Buckets points into `spec`'s cells. Points are clamped into the area.
  SpatialCountIndex(const GridSpec& spec, const std::vector<Point>& points);

  /// Number of indexed points with dis(point, center) < radius_km.
  int CountWithin(const Point& center, double radius_km) const;

  /// Indexed points with dis(point, center) < radius_km.
  std::vector<Point> QueryWithin(const Point& center, double radius_km) const;

  size_t num_points() const { return num_points_; }

  /// Average number of points falling in a disk of the given radius, i.e.
  /// the rho^t normalizer of Eq. 7 (points per unit circular area times the
  /// disk area). Returns at least a small positive value so weights stay
  /// finite on empty histories.
  double MeanCountPerDisk(double radius_km) const;

 private:
  GridSpec spec_;
  std::vector<std::vector<Point>> buckets_;
  size_t num_points_ = 0;
};

}  // namespace tamp::geo
