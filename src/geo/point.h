#pragma once

#include <cmath>

namespace tamp::geo {

/// A location on the (planar) city map. Coordinates are kilometres in a
/// local tangent frame; all distances in the library are Euclidean on this
/// plane (the paper's grid-mapped coordinates behave identically).
struct Point {
  double x = 0.0;
  double y = 0.0;

  Point() = default;
  Point(double x_in, double y_in) : x(x_in), y(y_in) {}

  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  Point operator*(double s) const { return {x * s, y * s}; }

  bool operator==(const Point& o) const { return x == o.x && y == o.y; }
};

/// Euclidean distance between two points (km).
inline double Distance(const Point& a, const Point& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Squared Euclidean distance; cheaper when only comparisons are needed.
inline double DistanceSquared(const Point& a, const Point& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// A location stamped with the time (minutes since simulation start) at
/// which the worker is there. Routines (Def. 2) are sequences of these.
struct TimedPoint {
  Point loc;
  double time_min = 0.0;

  TimedPoint() = default;
  TimedPoint(Point l, double t) : loc(l), time_min(t) {}
  TimedPoint(double x, double y, double t) : loc(x, y), time_min(t) {}
};

}  // namespace tamp::geo
