#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tamp {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// splitmix64). Every stochastic component in the library draws from an
/// explicitly passed Rng so experiments are reproducible given a seed.
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform01();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (cached spare).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Poisson-distributed count with the given mean (Knuth for small lambda,
  /// normal approximation for large lambda).
  int Poisson(double lambda);

  /// Exponential inter-arrival time with the given rate (> 0).
  double Exponential(double rate);

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Non-positive weights are treated as zero; if all weights are zero the
  /// result is uniform.
  size_t SampleIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.empty()) return;
    for (size_t i = items.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap(items[i], items[j]);
    }
  }

  /// Draws `count` distinct indices from [0, n). Requires count <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t count);

 private:
  uint64_t state_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace tamp
