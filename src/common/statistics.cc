#include "common/statistics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tamp {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double m = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double Percentile(std::vector<double> values, double p) {
  TAMP_CHECK(!values.empty());
  TAMP_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Rmse(const std::vector<double>& predicted,
            const std::vector<double>& actual) {
  TAMP_CHECK(predicted.size() == actual.size());
  if (predicted.empty()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    double d = predicted[i] - actual[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(predicted.size()));
}

double Mae(const std::vector<double>& predicted,
           const std::vector<double>& actual) {
  TAMP_CHECK(predicted.size() == actual.size());
  if (predicted.empty()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    acc += std::fabs(predicted[i] - actual[i]);
  }
  return acc / static_cast<double>(predicted.size());
}

}  // namespace tamp
