#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace tamp {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  TAMP_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  TAMP_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << " |";
    }
    os << "\n";
  };
  print_row(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    for (size_t i = 0; i < widths[c] + 2; ++i) os << '-';
    os << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto write_cell = [&](const std::string& cell) {
    if (cell.find(',') != std::string::npos ||
        cell.find('"') != std::string::npos) {
      os << '"';
      for (char ch : cell) {
        if (ch == '"') os << '"';
        os << ch;
      }
      os << '"';
    } else {
      os << cell;
    }
  };
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      write_cell(row[c]);
    }
    os << "\n";
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

std::string Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Fmt(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return buf;
}

}  // namespace tamp
