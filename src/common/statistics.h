#pragma once

#include <cstddef>
#include <vector>

namespace tamp {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& values);

/// Sample standard deviation (n-1); 0 for fewer than two samples.
double StdDev(const std::vector<double>& values);

/// Linear-interpolation percentile, p in [0, 100]. Requires non-empty input.
double Percentile(std::vector<double> values, double p);

/// Root mean squared error between two equal-length vectors.
double Rmse(const std::vector<double>& predicted,
            const std::vector<double>& actual);

/// Mean absolute error between two equal-length vectors.
double Mae(const std::vector<double>& predicted,
           const std::vector<double>& actual);

}  // namespace tamp
