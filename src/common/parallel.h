#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

/// Deterministic data-parallel runtime for the offline stack.
///
/// One lazily-started fixed thread pool serves every ParallelFor /
/// ParallelMap call in the process. The pool size comes from the
/// TAMP_THREADS environment variable (or SetParallelThreadCount), default
/// std::thread::hardware_concurrency().
///
/// Determinism contract (see DESIGN.md "Parallel execution"):
///   - Worker lambdas must be pure per index: fn(i) may read shared state
///     but may only write state owned by index i. In particular they must
///     never draw from a shared Rng; sample on the caller thread before the
///     fan-out, or derive a seeded sub-Rng per index.
///   - Results are combined in index order (ParallelMap places fn(i) at
///     out[i]; reductions walk the parts serially 0..n-1), so parallel
///     output is bit-identical to serial regardless of thread count or
///     scheduling.
///   - With a 1-thread configuration the runtime takes the exact serial
///     path: fn runs inline on the calling thread, no pool is started.
///
/// Exceptions thrown by fn propagate to the ParallelFor caller (the first
/// one thrown, by completion order; remaining indices are skipped). Nested
/// ParallelFor calls from inside a worker run serially inline, so the
/// runtime never deadlocks on its own pool.
namespace tamp {

/// Number of threads parallel regions use: the explicit override if set,
/// else TAMP_THREADS, else hardware_concurrency (>= 1 always).
int ParallelThreadCount();

/// Overrides the thread count (tests, embedding applications). `threads`
/// must be >= 1; pass 0 to drop the override and re-read TAMP_THREADS.
/// Already-spawned pool workers are kept (the pool never shrinks); a lower
/// count only limits how many participate in subsequent regions.
void SetParallelThreadCount(int threads);

/// True while the calling thread is executing inside a parallel region
/// (used by the runtime to serialize nested calls; exposed for tests).
bool InParallelRegion();

/// Runs fn(0), ..., fn(n-1), distributing indices over the pool. Blocks
/// until all indices finished. See the determinism contract above.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

/// Maps fn over [0, n) into a vector with out[i] = fn(i). T must be
/// default-constructible and movable.
template <typename T, typename Fn>
std::vector<T> ParallelMap(size_t n, Fn&& fn) {
  std::vector<T> out(n);
  ParallelFor(n, [&](size_t i) { out[i] = fn(i); });
  return out;
}

/// Ordered parallel reduction: computes parts[i] = map_fn(i) in parallel,
/// then folds acc = reduce_fn(acc, parts[i]) serially in index order, so
/// the result is bit-identical to the serial loop
///   for (i = 0; i < n; ++i) acc = reduce_fn(acc, map_fn(i));
/// for any thread count (floating-point accumulation order is fixed).
template <typename Acc, typename Part, typename MapFn, typename ReduceFn>
Acc ParallelOrderedReduce(size_t n, Acc init, MapFn&& map_fn,
                          ReduceFn&& reduce_fn) {
  std::vector<Part> parts = ParallelMap<Part>(n, std::forward<MapFn>(map_fn));
  Acc acc = std::move(init);
  for (size_t i = 0; i < n; ++i) {
    acc = reduce_fn(std::move(acc), std::move(parts[i]));
  }
  return acc;
}

}  // namespace tamp
