#pragma once

#include <chrono>

namespace tamp {

/// Wall-clock stopwatch used to report the running-time metrics (TT and
/// task-assignment running time) in the experiment harness.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tamp
