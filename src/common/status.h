#pragma once

#include <string>
#include <utility>
#include <variant>

namespace tamp {

/// Error categories used throughout the library.
///
/// Follows the RocksDB/Arrow convention of returning rich status objects
/// instead of throwing exceptions from library code. Exceptions are reserved
/// for programmer errors (see TAMP_CHECK in check.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
};

/// A lightweight success/error result carrying a code and a message.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: k must be > 0".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Mirrors absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value: the common happy-path return.
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status.
  StatusOr(Status status) : rep_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) return kOkStatus;
    return std::get<Status>(rep_);
  }

  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace tamp

/// Propagates a non-OK status to the caller.
#define TAMP_RETURN_IF_ERROR(expr)             \
  do {                                         \
    ::tamp::Status _tamp_status = (expr);      \
    if (!_tamp_status.ok()) return _tamp_status; \
  } while (false)
