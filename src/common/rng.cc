#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace tamp {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform01() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform01();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  TAMP_CHECK(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // Full 64-bit range.
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1, u2;
  do {
    u1 = Uniform01();
  } while (u1 <= 1e-300);
  u2 = Uniform01();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_normal_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

int Rng::Poisson(double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda > 64.0) {
    // Normal approximation with continuity correction.
    double v = Normal(lambda, std::sqrt(lambda));
    return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
  }
  double limit = std::exp(-lambda);
  double prod = Uniform01();
  int n = 0;
  while (prod > limit) {
    ++n;
    prod *= Uniform01();
  }
  return n;
}

double Rng::Exponential(double rate) {
  TAMP_CHECK(rate > 0.0);
  double u;
  do {
    u = Uniform01();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

bool Rng::Bernoulli(double p) { return Uniform01() < p; }

size_t Rng::SampleIndex(const std::vector<double>& weights) {
  TAMP_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) {
    return static_cast<size_t>(
        UniformInt(0, static_cast<int64_t>(weights.size()) - 1));
  }
  double r = Uniform(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0.0 ? weights[i] : 0.0);
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t count) {
  TAMP_CHECK(count <= n);
  std::vector<size_t> pool(n);
  for (size_t i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher-Yates: the first `count` entries become the sample.
  for (size_t i = 0; i < count; ++i) {
    size_t j = static_cast<size_t>(
        UniformInt(static_cast<int64_t>(i), static_cast<int64_t>(n) - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(count);
  return pool;
}

}  // namespace tamp
