#ifndef TAMP_COMMON_CHECK_H_
#define TAMP_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Internal invariant checks. These abort on failure: they guard programmer
/// errors (broken invariants), not recoverable conditions, which are reported
/// via Status (see status.h).
#define TAMP_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "TAMP_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#define TAMP_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "TAMP_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, (msg));                        \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#endif  // TAMP_COMMON_CHECK_H_
