#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>

/// Internal invariant checks. These abort on failure: they guard programmer
/// errors (broken invariants), not recoverable conditions, which are reported
/// via Status (see status.h).
///
/// Layers:
///   TAMP_CHECK(cond)            always-on invariant check
///   TAMP_CHECK_MSG(cond, msg)   always-on, with an extra context string
///   TAMP_DCHECK(cond)           debug-only (compiled out when NDEBUG)
///   TAMP_CHECK_FINITE(x)        rejects NaN/Inf at numeric trust boundaries
///   TAMP_CHECK_INDEX(i, size)   bounds check; evaluates to the index
///
/// All failure messages carry file:line so a crash in a deep numeric path
/// (loss/gradient, similarity kernel, cost matrix) points at the boundary
/// that was violated, not at downstream corruption.

namespace tamp::internal {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* kind, const char* expr,
                                   const char* msg) {
  if (msg != nullptr) {
    std::fprintf(stderr, "%s failed at %s:%d: %s (%s)\n", kind, file, line,
                 expr, msg);
  } else {
    std::fprintf(stderr, "%s failed at %s:%d: %s\n", kind, file, line, expr);
  }
  std::abort();
}

/// Bounds-checked index helper backing TAMP_CHECK_INDEX. Returns the index
/// unchanged so it can be used inline: v[TAMP_CHECK_INDEX(i, v.size())].
template <typename Index, typename Size>
inline Index CheckedIndex(Index i, Size size, const char* file, int line,
                          const char* expr) {
  const bool negative = i < static_cast<Index>(0);
  const bool too_big = static_cast<unsigned long long>(i) >=
                       static_cast<unsigned long long>(size);
  if (negative || too_big) {
    std::fprintf(stderr,
                 "TAMP_CHECK_INDEX failed at %s:%d: %s (index %lld out of "
                 "range [0, %llu))\n",
                 file, line, expr, static_cast<long long>(i),
                 static_cast<unsigned long long>(size));
    std::abort();
  }
  return i;
}

/// Finite-value guard backing TAMP_CHECK_FINITE. Returns the value unchanged
/// so it can wrap expressions: return TAMP_CHECK_FINITE(loss);
template <typename Float>
inline Float CheckedFinite(Float x, const char* file, int line,
                           const char* expr) {
  if (!std::isfinite(x)) {
    std::fprintf(stderr,
                 "TAMP_CHECK_FINITE failed at %s:%d: %s is not finite "
                 "(value: %g)\n",
                 file, line, expr, static_cast<double>(x));
    std::abort();
  }
  return x;
}

}  // namespace tamp::internal

#define TAMP_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::tamp::internal::CheckFail(__FILE__, __LINE__, "TAMP_CHECK", #cond,   \
                                  nullptr);                                  \
    }                                                                        \
  } while (false)

#define TAMP_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::tamp::internal::CheckFail(__FILE__, __LINE__, "TAMP_CHECK", #cond,   \
                                  (msg));                                    \
    }                                                                        \
  } while (false)

#ifdef NDEBUG
#define TAMP_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define TAMP_DCHECK(cond)                                                    \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::tamp::internal::CheckFail(__FILE__, __LINE__, "TAMP_DCHECK", #cond,  \
                                  nullptr);                                  \
    }                                                                        \
  } while (false)
#endif

/// Aborts if x is NaN or +/-Inf; otherwise evaluates to x.
#define TAMP_CHECK_FINITE(x) \
  (::tamp::internal::CheckedFinite((x), __FILE__, __LINE__, #x))

/// Aborts unless 0 <= i < size; otherwise evaluates to i.
#define TAMP_CHECK_INDEX(i, size) \
  (::tamp::internal::CheckedIndex((i), (size), __FILE__, __LINE__, #i))
