#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "common/check.h"

namespace tamp {
namespace {

/// Threads the caller asked for, before any override. Reads TAMP_THREADS
/// once per call so tests can flip the env var between regions.
int DetectThreadCount() {
  const char* env = std::getenv("TAMP_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v >= 1 && v <= 4096) {
      return static_cast<int>(v);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::atomic<int> g_thread_override{0};

/// Set while the current thread executes a parallel region's body (both on
/// pool workers and on the calling thread); nested regions see it and run
/// serially inline instead of deadlocking on the busy pool.
thread_local bool tls_in_region = false;

/// One fan-out: a batch of n independent indices claimed atomically.
/// Completion is index-counted so late-waking workers that find no work
/// left never block the region from finishing.
struct Job {
  const std::function<void(size_t)>* fn = nullptr;
  size_t n = 0;
  std::atomic<size_t> next{0};        // Next unclaimed index.
  std::atomic<size_t> unfinished{0};  // Indices not yet accounted for.
  std::atomic<bool> has_error{false};
  std::exception_ptr error;  // First exception; guarded by error_mu.
  std::mutex error_mu;
};

/// Lazily-started fixed pool. Workers persist for the process lifetime
/// (reused across regions); the pool grows up to the configured count but
/// never shrinks, and only min(count-1, n-1) workers participate in a
/// region — the caller always works too.
class Pool {
 public:
  static Pool& Instance() {
    static Pool* pool = new Pool();  // Leaked: workers may outlive main.
    return *pool;
  }

  void Run(Job& job, int max_threads) {
    // One top-level region at a time: concurrent callers from independent
    // threads queue here instead of clobbering current_/epoch_.
    std::lock_guard<std::mutex> region(run_mu_);
    EnsureWorkers(max_threads - 1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      current_ = &job;
      ++epoch_;
    }
    cv_workers_.notify_all();
    Work(job);
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] {
      return job.unfinished.load(std::memory_order_acquire) == 0 &&
             participants_ == 0;
    });
    current_ = nullptr;
  }

  /// Claims and runs indices until the job is drained. Called from the
  /// region's caller thread and from pool workers.
  static void Work(Job& job) {
    tls_in_region = true;
    for (;;) {
      size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job.n) break;
      if (!job.has_error.load(std::memory_order_acquire)) {
        try {
          (*job.fn)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(job.error_mu);
          if (!job.has_error.load(std::memory_order_relaxed)) {
            job.error = std::current_exception();
            job.has_error.store(true, std::memory_order_release);
          }
        }
      }
      job.unfinished.fetch_sub(1, std::memory_order_acq_rel);
    }
    tls_in_region = false;
  }

  int spawned() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(workers_.size());
  }

 private:
  Pool() = default;

  void EnsureWorkers(int want) {
    std::lock_guard<std::mutex> lock(mu_);
    while (static_cast<int>(workers_.size()) < want) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void WorkerLoop() {
    uint64_t seen_epoch = 0;
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_workers_.wait(lock, [&] {
          return current_ != nullptr && epoch_ != seen_epoch;
        });
        seen_epoch = epoch_;
        job = current_;
        ++participants_;
      }
      Work(*job);
      {
        std::lock_guard<std::mutex> lock(mu_);
        --participants_;
      }
      cv_done_.notify_all();
    }
  }

  std::mutex run_mu_;  // Serializes top-level regions.
  mutable std::mutex mu_;
  std::condition_variable cv_workers_;
  std::condition_variable cv_done_;
  std::vector<std::thread> workers_;  // Detached-by-leak: never joined.
  Job* current_ = nullptr;
  uint64_t epoch_ = 0;
  int participants_ = 0;  // Workers currently inside Work() for current_.
};

}  // namespace

int ParallelThreadCount() {
  int override_count = g_thread_override.load(std::memory_order_relaxed);
  if (override_count >= 1) return override_count;
  return DetectThreadCount();
}

void SetParallelThreadCount(int threads) {
  TAMP_CHECK(threads >= 0);
  g_thread_override.store(threads, std::memory_order_relaxed);
}

bool InParallelRegion() { return tls_in_region; }

void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  int threads = ParallelThreadCount();
  // Serial path: configured serial, trivial batch, or nested inside a
  // running region (the pool is busy; inline keeps progress + determinism).
  if (threads <= 1 || n == 1 || tls_in_region) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  Job job;
  job.fn = &fn;
  job.n = n;
  job.unfinished.store(n, std::memory_order_relaxed);
  int participating = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(threads), n));
  Pool::Instance().Run(job, participating);
  if (job.has_error.load(std::memory_order_acquire)) {
    std::rethrow_exception(job.error);
  }
}

}  // namespace tamp
