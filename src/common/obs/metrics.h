#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

/// Process-wide metrics: counters, gauges, and fixed-bucket histograms.
///
/// Design goals (DESIGN.md §4e):
///   - Dependency-free and cheap enough to leave on: recording is one
///     relaxed atomic RMW (counter/gauge) or one bucket search plus two
///     RMWs (histogram). No locks on the record path.
///   - Thread-safe under the src/common/parallel pool: instruments may be
///     hit from worker lambdas; totals are exact regardless of
///     interleaving, so deterministic quantities (batch counts, adapt
///     steps) snapshot bit-identically at any thread count.
///   - Stable handles: Get* returns a reference that lives for the
///     process; hot paths cache it (typically in a function-local static)
///     and never pay the registry lookup again.
///
/// Naming scheme: `<area>.<what>[_<unit>]`, areas matching the library
/// layout (sim, ppi, km, ggpso, cluster, meta, eval). Wall-clock metrics
/// carry the `_s` suffix so tools/bench_compare treats them as advisory;
/// everything else is expected to be machine-independent and is compared
/// strictly.
namespace tamp::obs {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void Increment(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-value metric (e.g. a loss reported at the end of a stage).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket edges are inclusive upper bounds given
/// at registration; values above the last edge land in the overflow
/// bucket. Snapshots export cumulative counts (`le_<edge>` = observations
/// <= edge, Prometheus-style) plus `count` and `sum`.
class Histogram {
 public:
  explicit Histogram(std::vector<double> edges);

  void Record(double v);
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& edges() const { return edges_; }
  /// Raw (non-cumulative) count of bucket i; index edges().size() is the
  /// overflow bucket.
  int64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void Reset();

 private:
  std::vector<double> edges_;  // Sorted, strictly increasing.
  std::vector<std::atomic<int64_t>> buckets_;  // edges_.size() + 1 slots.
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Exponential bucket edges for durations in seconds: 1e-5 .. 30s in
/// roughly x3 steps. The shared default for `*_s` histograms.
const std::vector<double>& DurationEdgesSeconds();

/// Small-count bucket edges (queue depths, candidate counts):
/// {0, 1, 2, 5, 10, 20, 50, 100, 200, 500}.
const std::vector<double>& CountEdges();

/// The process-wide instrument registry.
///
/// Get* registers on first use and returns the same instrument for the
/// same name forever after (a name is permanently one kind; requesting it
/// as another kind aborts). Snapshot() flattens every instrument into an
/// ordered name -> value map, which is what bench JSON embedding and the
/// --metrics sink serialize.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  /// `edges` is consulted only on first registration.
  Histogram& GetHistogram(std::string_view name, const std::vector<double>& edges);

  /// Flattened view: counters/gauges as `<name>`, histograms as
  /// `<name>.count`, `<name>.sum`, `<name>.avg`, `<name>.le_<edge>` and
  /// `<name>.le_inf` (cumulative). Deterministic ordering (std::map).
  std::map<std::string, double> Snapshot() const;

  /// Writes the snapshot as a flat JSON object ({"metrics": {...}}).
  Status WriteJson(const std::string& path) const;

  /// Zeroes every registered instrument (tests and long-lived embedders;
  /// instruments stay registered so cached references remain valid).
  void ResetAll();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;  // Guards the maps, not the instruments.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Formats a bucket edge the way Snapshot() names it ("le_0.001"): %g, so
/// keys are short and stable.
std::string FormatEdge(double edge);

}  // namespace tamp::obs
