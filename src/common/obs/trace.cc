#include "common/obs/trace.h"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "common/obs/metrics.h"

namespace tamp::obs {

namespace {

using SteadyClock = std::chrono::steady_clock;

SteadyClock::time_point TraceEpoch() {
  static const SteadyClock::time_point epoch = SteadyClock::now();
  return epoch;
}

/// Small stable per-thread ids: the main thread (first to record) is 0,
/// pool workers get 1, 2, ... in first-use order.
int ThreadTraceId() {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

thread_local int t_span_depth = 0;

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

double TraceRecorder::NowMicros() {
  return std::chrono::duration<double, std::micro>(SteadyClock::now() -
                                                   TraceEpoch())
      .count();
}

void TraceRecorder::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::map<std::string, SpanStats> TraceRecorder::AggregateStats() const {
  std::map<std::string, SpanStats> stats;
  for (const TraceEvent& e : Snapshot()) {
    SpanStats& s = stats[e.name];
    s.count += 1;
    s.total_s += e.dur_us * 1e-6;
  }
  return stats;
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return Status::Internal("could not write " + path);
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : Snapshot()) {
    if (!first) os << ",";
    first = false;
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "\n    {\"name\": \"%s\", \"cat\": \"tamp\", \"ph\": \"X\", "
                  "\"pid\": 0, \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f, "
                  "\"args\": {\"depth\": %d}}",
                  JsonEscape(e.name).c_str(), e.tid, e.ts_us, e.dur_us,
                  e.depth);
    os << buf;
  }
  os << "\n  ]\n}\n";
  return Status::Ok();
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

Status WriteStatsJson(const std::string& path) {
  std::ofstream os(path);
  if (!os) return Status::Internal("could not write " + path);
  auto write_section = [&os](const char* name,
                             const std::map<std::string, double>& values,
                             bool trailing_comma) {
    os << "  \"" << name << "\": {";
    bool first = true;
    for (const auto& [key, value] : values) {
      if (!first) os << ",";
      first = false;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", value);
      os << "\n    \"" << JsonEscape(key) << "\": " << buf;
    }
    if (!values.empty()) os << "\n  ";
    os << "}" << (trailing_comma ? "," : "") << "\n";
  };
  std::map<std::string, double> spans;
  for (const auto& [name, stats] : TraceRecorder::Global().AggregateStats()) {
    spans[name + ".count"] = static_cast<double>(stats.count);
    spans[name + ".total_s"] = stats.total_s;
  }
  os << "{\n";
  write_section("metrics", MetricsRegistry::Global().Snapshot(),
                /*trailing_comma=*/!spans.empty());
  if (!spans.empty()) write_section("spans", spans, /*trailing_comma=*/false);
  os << "}\n";
  return Status::Ok();
}

TraceSpan::TraceSpan(std::string_view name)
    : active_(TraceRecorder::Global().enabled()) {
  if (!active_) return;
  name_ = name;
  depth_ = t_span_depth++;
  start_us_ = TraceRecorder::NowMicros();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  --t_span_depth;
  TraceEvent event;
  event.name = std::move(name_);
  event.tid = ThreadTraceId();
  event.ts_us = start_us_;
  event.dur_us = TraceRecorder::NowMicros() - start_us_;
  event.depth = depth_;
  TraceRecorder::Global().Record(std::move(event));
}

}  // namespace tamp::obs
