#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

/// Trace spans: nested, RAII-scoped duration events exported as a Chrome
/// `trace_event` timeline (chrome://tracing, Perfetto, speedscope all load
/// it) plus flat per-span-name aggregates.
///
/// Recording is off by default: a disabled TraceSpan constructor is one
/// relaxed atomic load and nothing else (no clock read, no allocation), so
/// instrumented hot paths stay on their PR-2 performance. Enable with
/// TraceRecorder::Global().Enable() — the bench/example harness does this
/// when the user passes --trace=out.json (core::ApplyRunOptions).
///
/// Spans may start and end on pool worker threads; nesting depth is
/// tracked per thread, and the exported timeline groups events by a small
/// stable per-thread id, so Chrome renders the fan-out lanes under the
/// main lane.
namespace tamp::obs {

/// One completed span. Timestamps are microseconds since the recorder's
/// process-wide epoch (first use).
struct TraceEvent {
  std::string name;
  int tid = 0;       // Small per-thread id (0 = first thread seen).
  double ts_us = 0;  // Start.
  double dur_us = 0;
  int depth = 0;     // Nesting depth on that thread at start (0 = root).
};

/// Aggregate of every completed span with one name.
struct SpanStats {
  int64_t count = 0;
  double total_s = 0.0;
};

class TraceRecorder {
 public:
  static TraceRecorder& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends a completed event (called by ~TraceSpan). Events beyond the
  /// safety cap are counted but dropped.
  void Record(TraceEvent event);

  /// Completed events so far, in completion order. Sort by (tid, ts_us)
  /// for a per-thread timeline view.
  std::vector<TraceEvent> Snapshot() const;

  /// Per-name aggregates of the recorded events.
  std::map<std::string, SpanStats> AggregateStats() const;

  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Writes the Chrome trace_event JSON ({"traceEvents": [...]}, "X"
  /// complete events, ts/dur in microseconds).
  Status WriteChromeTrace(const std::string& path) const;

  void Clear();

  /// Microseconds since the process-wide trace epoch (exposed for tests).
  static double NowMicros();

 private:
  TraceRecorder() = default;

  static constexpr size_t kMaxEvents = 1 << 20;  // Memory safety cap.

  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> dropped_{0};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// Writes the flat stats JSON: the global MetricsRegistry snapshot under
/// "metrics" plus (when any spans were recorded) per-span-name aggregates
/// under "spans" as `<name>.count` / `<name>.total_s`.
Status WriteStatsJson(const std::string& path);

/// RAII span: records one TraceEvent covering its lifetime when the global
/// recorder is enabled at construction; a no-op otherwise.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool active_;
  int depth_ = 0;
  double start_us_ = 0.0;
  std::string name_;
};

}  // namespace tamp::obs
