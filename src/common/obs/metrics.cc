#include "common/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/check.h"

namespace tamp::obs {

namespace {

/// Relaxed atomic add for doubles (fetch_add on atomic<double> needs
/// hardware support; the CAS loop is portable and the path is not hot
/// enough to care).
void AtomicAdd(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + v,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges)), buckets_(edges_.size() + 1) {
  TAMP_CHECK_MSG(!edges_.empty(), "histogram needs at least one bucket edge");
  TAMP_CHECK_MSG(std::is_sorted(edges_.begin(), edges_.end()),
                 "histogram edges must be sorted");
  for (size_t i = 1; i < edges_.size(); ++i) {
    TAMP_CHECK_MSG(edges_[i] > edges_[i - 1],
                   "histogram edges must be strictly increasing");
  }
}

void Histogram::Record(double v) {
  // First edge >= v; values above every edge go to the overflow slot.
  size_t b = static_cast<size_t>(
      std::lower_bound(edges_.begin(), edges_.end(), v) - edges_.begin());
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, v);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& DurationEdgesSeconds() {
  static const std::vector<double> kEdges = {
      1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2,
      3e-2, 0.1,  0.3,  1.0,  3.0,  10.0, 30.0};
  return kEdges;
}

const std::vector<double>& CountEdges() {
  static const std::vector<double> kEdges = {0.0,  1.0,   2.0,   5.0,  10.0,
                                             20.0, 50.0,  100.0, 200.0, 500.0};
  return kEdges;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  TAMP_CHECK_MSG(gauges_.find(name) == gauges_.end() &&
                     histograms_.find(name) == histograms_.end(),
                 "metric name already registered as a different kind");
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  TAMP_CHECK_MSG(counters_.find(name) == counters_.end() &&
                     histograms_.find(name) == histograms_.end(),
                 "metric name already registered as a different kind");
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         const std::vector<double>& edges) {
  std::lock_guard<std::mutex> lock(mu_);
  TAMP_CHECK_MSG(counters_.find(name) == counters_.end() &&
                     gauges_.find(name) == gauges_.end(),
                 "metric name already registered as a different kind");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(edges))
             .first;
  }
  return *it->second;
}

std::string FormatEdge(double edge) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", edge);
  return buf;
}

std::map<std::string, double> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, counter] : counters_) {
    out[name] = static_cast<double>(counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    out[name] = gauge->value();
  }
  for (const auto& [name, hist] : histograms_) {
    const int64_t count = hist->count();
    out[name + ".count"] = static_cast<double>(count);
    out[name + ".sum"] = hist->sum();
    out[name + ".avg"] = count > 0 ? hist->sum() / static_cast<double>(count)
                                   : 0.0;
    int64_t cumulative = 0;
    for (size_t i = 0; i < hist->edges().size(); ++i) {
      cumulative += hist->bucket(i);
      out[name + ".le_" + FormatEdge(hist->edges()[i])] =
          static_cast<double>(cumulative);
    }
    cumulative += hist->bucket(hist->edges().size());
    out[name + ".le_inf"] = static_cast<double>(cumulative);
  }
  return out;
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return Status::Internal("could not write " + path);
  os << "{\n  \"metrics\": {";
  bool first = true;
  for (const auto& [key, value] : Snapshot()) {
    if (!first) os << ",";
    first = false;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    os << "\n    \"" << key << "\": " << buf;
  }
  os << "\n  }\n}\n";
  return Status::Ok();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace tamp::obs
