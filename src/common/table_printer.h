#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace tamp {

/// Renders experiment results as fixed-width text tables (the form the
/// paper's tables take) and as CSV blocks for downstream plotting.
///
/// Usage:
///   TablePrinter t({"algo", "RMSE", "MR"});
///   t.AddRow({"GTTAML", Fmt(0.8937, 4), Fmt(0.4446, 4)});
///   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; its size must match the header's.
  void AddRow(std::vector<std::string> row);

  /// Writes an aligned text table with a header separator.
  void Print(std::ostream& os) const;

  /// Writes the same data as CSV (comma-separated, quoted when needed).
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision, e.g. Fmt(0.89371, 4) -> "0.8937".
std::string Fmt(double value, int precision);

/// Formats an integer value.
std::string Fmt(int64_t value);

}  // namespace tamp
