#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace tamp::matching {

/// A weighted edge of the assignment bipartite graph. In the TAMP setting
/// the left side is tasks, the right side is workers, and the weight is the
/// reciprocal of the (expected) detour, so maximizing total weight prefers
/// short detours (Alg. 4 lines 9/16/32).
struct Edge {
  int left = 0;
  int right = 0;
  double weight = 0.0;  // Must be positive; non-positive edges are dropped.
};

/// Result of a matching: the chosen (left, right) pairs and their summed
/// edge weight.
struct MatchResult {
  std::vector<std::pair<int, int>> pairs;
  double total_weight = 0.0;
};

/// Result of a minimum-cost perfect assignment on a dense cost matrix.
struct AssignmentResult {
  /// col_of_row[r] is the column assigned to row r.
  std::vector<int> col_of_row;
  double total_cost = 0.0;
};

/// Reusable working set for the matchers below. Hot callers that solve
/// many matchings per batch (PPI's per-epsilon-batch KM calls) keep one of
/// these across calls so the O(n^2) potentials/matrix buffers are
/// allocated once and recycled; results are identical with or without a
/// scratch. Not thread-safe: one scratch per calling thread.
struct MatchingScratch {
  // MinCostAssignment working vectors.
  std::vector<double> u, v, minv;
  std::vector<std::size_t> p, way;
  std::vector<char> used;
  // MaxWeightMatching padded square matrices.
  std::vector<std::vector<double>> weight;
  std::vector<std::vector<double>> cost;
};

/// Minimum-cost perfect assignment of every row to a distinct column via
/// the Kuhn-Munkres potentials/shortest-augmenting-path algorithm, O(r^2 c).
/// Requires a rectangular matrix with rows() <= cols() and finite costs.
/// This is the computational core shared by MaxWeightMatching and the exact
/// 2-D Wasserstein distance. `scratch` may be null (per-call buffers).
AssignmentResult MinCostAssignment(const std::vector<std::vector<double>>& cost,
                                   MatchingScratch* scratch = nullptr);

/// Maximum-weight bipartite matching via the Kuhn-Munkres algorithm
/// ([35], [36] in the paper) with potentials and shortest augmenting paths,
/// O(n^3) on the padded square matrix. Vertices may stay unmatched: only
/// pairs connected by a real (positive-weight) input edge are reported.
///
/// `num_left`/`num_right` bound the vertex ids appearing in `edges`.
/// Duplicate edges keep the maximum weight. `scratch` may be null.
MatchResult MaxWeightMatching(int num_left, int num_right,
                              const std::vector<Edge>& edges,
                              MatchingScratch* scratch = nullptr);

/// Greedy descending-weight matching; used as a test oracle bound (the
/// greedy total is always <= the KM total) and a cheap fallback.
MatchResult GreedyMatching(int num_left, int num_right,
                           const std::vector<Edge>& edges);

}  // namespace tamp::matching
