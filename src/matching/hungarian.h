#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace tamp::matching {

/// A weighted edge of the assignment bipartite graph. In the TAMP setting
/// the left side is tasks, the right side is workers, and the weight is the
/// reciprocal of the (expected) detour, so maximizing total weight prefers
/// short detours (Alg. 4 lines 9/16/32).
struct Edge {
  int left = 0;
  int right = 0;
  double weight = 0.0;  // Must be positive; non-positive edges are dropped.
};

/// Result of a matching: the chosen (left, right) pairs and their summed
/// edge weight.
struct MatchResult {
  std::vector<std::pair<int, int>> pairs;
  double total_weight = 0.0;
};

/// Result of a minimum-cost perfect assignment on a dense cost matrix.
struct AssignmentResult {
  /// col_of_row[r] is the column assigned to row r.
  std::vector<int> col_of_row;
  double total_cost = 0.0;
};

/// Reusable working set for the matchers below. Hot callers that solve
/// many matchings per batch (PPI's per-epsilon-batch KM calls) keep one of
/// these across calls so the O(n^2) potentials/matrix buffers are
/// allocated once and recycled; results are identical with or without a
/// scratch. Not thread-safe: one scratch per calling thread.
struct MatchingScratch {
  // MinCostAssignment working vectors.
  std::vector<double> u, v, minv;
  std::vector<std::size_t> p, way;
  std::vector<char> used;
  // MaxWeightMatching padded square matrices.
  std::vector<std::vector<double>> weight;
  std::vector<std::vector<double>> cost;
};

/// Cross-solve warm-start state for MinCostAssignment. The KM inner loop
/// processes cost rows 1..n in order, and the algorithm state after row k
/// — the potentials (u, v) and the partial column assignment p — is a pure
/// function of rows 1..k (minv/used/way are per-row temporaries). A warm
/// holder therefore keeps the previous solve's cost matrix plus a
/// checkpoint of (u, v, p) after every processed row; the next solve finds
/// the longest bitwise-equal row prefix against its own cost matrix,
/// restores the checkpoint at the end of that prefix, and resumes from the
/// first differing row. Skipped rows re-use — not re-derive — the exact
/// state the cold run would have computed, so warm results are
/// bit-identical to cold ones (pinned by matching_hungarian_test).
///
/// Shape and ordering safety: because resume is gated on a *bitwise* row-
/// prefix match against the stored cost matrix (and each checkpoint is a
/// pure function of those rows), a solve whose columns mean different
/// things — a worker migrated between shards, a column permutation, a
/// different width — simply matches a shorter (possibly empty) prefix and
/// recomputes from there; it can never silently resume against a stale
/// column ordering (pinned by matching_hungarian_test /
/// assign_sharding_test's permutation regressions).
///
/// One holder per *recurring solve site* (e.g. the per-batch KM call of
/// one assigner), not per thread: the holder mutates on every solve.
struct KmWarmState {
  /// Cost matrix of the previous tracked solve; empty before the first.
  std::vector<std::vector<double>> prev_cost;
  /// checkpoints[k] is the state after processing row k+1: u truncated to
  /// its touched prefix [0, k+1], and full v/p (cols + 1 entries each).
  struct RowCheckpoint {
    std::vector<double> u, v;
    std::vector<std::size_t> p;
  };
  std::vector<RowCheckpoint> checkpoints;
  /// Solves whose padded dimension exceeds this bypass warm tracking
  /// entirely (the O(n^2) checkpoint copies would outgrow the resume win).
  std::size_t max_dim = 256;
};

/// Minimum-cost perfect assignment of every row to a distinct column via
/// the Kuhn-Munkres potentials/shortest-augmenting-path algorithm, O(r^2 c).
/// Requires a rectangular matrix with rows() <= cols() and finite costs.
/// A 0-row matrix is a degenerate no-op: the empty result is returned
/// without touching `scratch` or `warm` (so state from a previous larger
/// solve stays resumable).
/// This is the computational core shared by MaxWeightMatching and the exact
/// 2-D Wasserstein distance. `scratch` may be null (per-call buffers).
///
/// With a non-null `warm`, consecutive solves sharing a row prefix resume
/// mid-algorithm instead of starting from zero potentials (see
/// KmWarmState); rows skipped this way are counted on the
/// assign.km_warm_rounds obs counter. Results are identical with or
/// without warm state.
AssignmentResult MinCostAssignment(const std::vector<std::vector<double>>& cost,
                                   MatchingScratch* scratch = nullptr,
                                   KmWarmState* warm = nullptr);

/// Maximum-weight bipartite matching via the Kuhn-Munkres algorithm
/// ([35], [36] in the paper) with potentials and shortest augmenting paths,
/// O(n^3) on the padded square matrix. Vertices may stay unmatched: only
/// pairs connected by a real (positive-weight) input edge are reported.
///
/// `num_left`/`num_right` bound the vertex ids appearing in `edges`.
/// Duplicate edges keep the maximum weight. `scratch` may be null; `warm`
/// (see MinCostAssignment) accelerates a solve whose padded cost matrix
/// shares a row prefix with the previous solve through the same holder.
MatchResult MaxWeightMatching(int num_left, int num_right,
                              const std::vector<Edge>& edges,
                              MatchingScratch* scratch = nullptr,
                              KmWarmState* warm = nullptr);

/// Greedy descending-weight matching; used as a test oracle bound (the
/// greedy total is always <= the KM total) and a cheap fallback.
MatchResult GreedyMatching(int num_left, int num_right,
                           const std::vector<Edge>& edges);

}  // namespace tamp::matching
