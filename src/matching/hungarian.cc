#include "matching/hungarian.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/obs/metrics.h"

namespace tamp::matching {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

AssignmentResult MinCostAssignment(const std::vector<std::vector<double>>& cost,
                                   MatchingScratch* scratch,
                                   KmWarmState* warm) {
  const size_t n = cost.size();
  if (n == 0) {
    // Degenerate (empty-shard) solve: nothing to assign. Return without
    // touching scratch or warm state, so resume data recorded by a
    // previous larger solve through the same holders stays valid.
    return AssignmentResult{};
  }
  const size_t m = cost[0].size();
  TAMP_CHECK_MSG(n <= m, "MinCostAssignment requires rows() <= cols()");
  for (const auto& row : cost) {
    TAMP_CHECK(row.size() == m);
    // Trust boundary: a NaN/Inf cost breaks the shortest-path potentials
    // silently (comparisons with NaN are all false), producing a plausible
    // but wrong assignment instead of a crash.
    for (double c : row) TAMP_CHECK_FINITE(c);
  }

  MatchingScratch local;
  MatchingScratch& s = scratch != nullptr ? *scratch : local;

  // Classic potentials formulation (1-indexed): p[j] is the row assigned to
  // column j; each outer iteration augments along a shortest path.
  // assign() both sizes and resets, so a reused scratch starts clean.
  std::vector<double>& u = s.u;
  std::vector<double>& v = s.v;
  std::vector<size_t>& p = s.p;
  std::vector<size_t>& way = s.way;
  u.assign(n + 1, 0.0);
  v.assign(m + 1, 0.0);
  p.assign(m + 1, 0);
  way.assign(m + 1, 0);

  // Warm start: resume after the longest row prefix bitwise-equal to the
  // previous solve through this holder (KmWarmState's contract). `way` is
  // a per-row temporary — every entry read during row i's augmentation
  // backtrack was written earlier in the same row — so only (u, v, p) need
  // restoring.
  const bool track =
      warm != nullptr && n <= warm->max_dim && m <= warm->max_dim;
  size_t start_row = 0;  // Rows 1..start_row come from checkpoints.
  if (track && !warm->prev_cost.empty() && warm->prev_cost[0].size() == m) {
    const size_t limit =
        std::min({n, warm->prev_cost.size(), warm->checkpoints.size()});
    while (start_row < limit &&
           warm->prev_cost[start_row] == cost[start_row]) {
      ++start_row;
    }
  }
  if (start_row > 0) {
    static obs::Counter& warm_counter =
        obs::MetricsRegistry::Global().GetCounter("assign.km_warm_rounds");
    warm_counter.Increment(static_cast<int64_t>(start_row));
    const KmWarmState::RowCheckpoint& cp = warm->checkpoints[start_row - 1];
    std::copy(cp.u.begin(), cp.u.end(), u.begin());
    v = cp.v;
    p = cp.p;
  }
  if (track) {
    warm->checkpoints.resize(start_row);  // Stale suffix is for other rows.
    warm->checkpoints.reserve(n);
  } else if (warm != nullptr) {
    // Oversized solve: drop any stored state so a later small solve cannot
    // resume against a cost matrix that was never recorded.
    warm->prev_cost.clear();
    warm->checkpoints.clear();
  }

  for (size_t i = start_row + 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double>& minv = s.minv;
    std::vector<char>& used = s.used;
    minv.assign(m + 1, kInf);
    used.assign(m + 1, 0);
    do {
      used[j0] = 1;
      size_t i0 = p[j0];
      size_t j1 = 0;
      double delta = kInf;
      for (size_t j = 1; j <= m; ++j) {
        if (used[j]) continue;
        double cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
    if (track) {
      // State after row i, for the next solve's prefix resume. u is
      // truncated to [0, i]: rows past i still hold their initial zeros.
      warm->checkpoints.push_back(
          {std::vector<double>(u.begin(),
                               u.begin() + static_cast<ptrdiff_t>(i) + 1),
           v, p});
    }
  }
  if (track) warm->prev_cost = cost;

  AssignmentResult result;
  result.col_of_row.assign(n, -1);
  for (size_t j = 1; j <= m; ++j) {
    if (p[j] == 0) continue;
    result.col_of_row[p[j] - 1] = static_cast<int>(j - 1);
    result.total_cost += cost[p[j] - 1][j - 1];
  }
  return result;
}

MatchResult MaxWeightMatching(int num_left, int num_right,
                              const std::vector<Edge>& edges,
                              MatchingScratch* scratch, KmWarmState* warm) {
  TAMP_CHECK(num_left >= 0 && num_right >= 0);
  MatchResult result;
  if (num_left == 0 || num_right == 0) return result;

  // Validate and scan for the heaviest edge before touching any scratch:
  // an all-filtered (or empty) edge set must leave a reused scratch — and
  // any warm state recorded by a previous larger solve — untouched, so a
  // later real solve still resumes against consistent buffers.
  double max_weight = 0.0;
  for (const Edge& e : edges) {
    TAMP_CHECK(e.left >= 0 && e.left < num_left);
    TAMP_CHECK(e.right >= 0 && e.right < num_right);
    max_weight = std::max(max_weight, e.weight);
  }
  if (max_weight <= 0.0) return result;  // No positive-weight edges.

  MatchingScratch local;
  MatchingScratch& s = scratch != nullptr ? *scratch : local;

  // Pad to a square weight matrix; absent edges have weight 0 (matching to
  // them is equivalent to staying unmatched and costs nothing).
  const size_t n = static_cast<size_t>(std::max(num_left, num_right));
  std::vector<std::vector<double>>& weight = s.weight;
  weight.resize(n);
  for (auto& row : weight) row.assign(n, 0.0);
  for (const Edge& e : edges) {
    if (e.weight <= 0.0) continue;
    auto& cell = weight[static_cast<size_t>(e.left)][static_cast<size_t>(
        e.right)];
    cell = std::max(cell, e.weight);
  }

  // Convert to a min-cost assignment: cost = max_weight - weight >= 0.
  // Every cell of the used n x n region is written exactly once; resize()
  // alone is safe here because rows kept from a larger previous solve are
  // fully overwritten before use (scratch-reuse parity is pinned by
  // matching_hungarian_test's shrink-then-grow case).
  std::vector<std::vector<double>>& cost = s.cost;
  cost.resize(n);
  for (size_t i = 0; i < n; ++i) {
    cost[i].resize(n);
    for (size_t j = 0; j < n; ++j) cost[i][j] = max_weight - weight[i][j];
  }
  AssignmentResult assignment = MinCostAssignment(cost, &s, warm);

  for (size_t left = 0; left < n; ++left) {
    int right = assignment.col_of_row[left];
    if (right < 0) continue;
    if (left >= static_cast<size_t>(num_left) || right >= num_right) {
      continue;  // Padding.
    }
    const double w = weight[left][static_cast<size_t>(right)];
    if (w <= 0.0) continue;  // Dummy (unmatched) edge.
    result.pairs.emplace_back(static_cast<int>(left), right);
    result.total_weight += w;
  }
  return result;
}

MatchResult GreedyMatching(int num_left, int num_right,
                           const std::vector<Edge>& edges) {
  TAMP_CHECK(num_left >= 0 && num_right >= 0);
  std::vector<Edge> sorted;
  sorted.reserve(edges.size());
  for (const Edge& e : edges) {
    TAMP_CHECK(e.left >= 0 && e.left < num_left);
    TAMP_CHECK(e.right >= 0 && e.right < num_right);
    if (e.weight > 0.0) sorted.push_back(e);
  }
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Edge& a, const Edge& b) {
                     return a.weight > b.weight;
                   });
  std::vector<char> left_used(static_cast<size_t>(num_left), 0);
  std::vector<char> right_used(static_cast<size_t>(num_right), 0);
  MatchResult result;
  for (const Edge& e : sorted) {
    const size_t l = static_cast<size_t>(e.left);
    const size_t r = static_cast<size_t>(e.right);
    if (left_used[l] || right_used[r]) continue;
    left_used[l] = 1;
    right_used[r] = 1;
    result.pairs.emplace_back(e.left, e.right);
    result.total_weight += e.weight;
  }
  return result;
}

}  // namespace tamp::matching
