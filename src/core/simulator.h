#pragma once

#include <cstddef>
#include <deque>
#include <string_view>
#include <vector>

#include "assign/ggpso.h"
#include "assign/ppi.h"
#include "assign/types.h"
#include "common/status.h"
#include "core/rollout.h"
#include "data/workload.h"
#include "nn/batched_seq2seq.h"
#include "nn/encoder_decoder.h"

namespace tamp::assign {
struct AssignReuse;
}  // namespace tamp::assign

namespace tamp::core {

/// The compared assignment strategies of Section IV-A.
enum class AssignMethod {
  kUpperBound,  // Oracle on real trajectories (rejection rate 0).
  kLowerBound,  // Current location only.
  kKm,          // Plain KM on predicted trajectories.
  kPpi,         // Algorithm 4.
  kGgpso,       // Genetic/PSO baseline [11].
};

/// Canonical display name ("UB", "LB", "KM", "PPI", "GGPSO"). The returned
/// view points at static storage and round-trips through
/// ParseAssignMethod.
std::string_view AssignMethodName(AssignMethod method);

/// Inverse of AssignMethodName (case-insensitive); InvalidArgument for
/// anything else, listing the accepted names.
StatusOr<AssignMethod> ParseAssignMethod(std::string_view name);

/// Every AssignMethod, in the fixed presentation order of the paper's
/// figures (UB, LB, KM, PPI, GGPSO).
const std::vector<AssignMethod>& AllAssignMethods();

/// How assigners generate (task, worker) candidate pairs. The single
/// source of truth behind the --candidates flag: ParseRunFlags parses the
/// flag with ParseCandidateMode and stores the enum here, and every mode's
/// plans are bit-identical (DESIGN.md §4f/§4h).
enum class CandidateMode {
  kDense,        // The dense T x W sweep (parity reference).
  kIndexed,      // Per-batch spatial-index pruning (default).
  kIncremental,  // Batch-to-batch delta index + row cache + warm KM.
};

/// Canonical flag value ("dense", "indexed", "incremental"); static
/// storage, round-trips through ParseCandidateMode.
std::string_view CandidateModeName(CandidateMode mode);

/// Inverse of CandidateModeName (case-insensitive); InvalidArgument for
/// anything else, listing the accepted names.
StatusOr<CandidateMode> ParseCandidateMode(std::string_view name);

/// Every CandidateMode, in flag-help order (dense, indexed, incremental).
const std::vector<CandidateMode>& AllCandidateModes();

/// How per-worker forecasts are computed. The single source of truth
/// behind the --forecast flag; predictions are bit-identical either way
/// (DESIGN.md §4i).
enum class ForecastMode {
  kScalar,   // One scalar LstmCell chain per worker (parity reference).
  kBatched,  // Fleet-wide SoA engine, fused gate kernels (default).
};

/// Canonical flag value ("scalar", "batched"); static storage, round-trips
/// through ParseForecastMode.
std::string_view ForecastModeName(ForecastMode mode);

/// Inverse of ForecastModeName (case-insensitive); InvalidArgument for
/// anything else, listing the accepted names.
StatusOr<ForecastMode> ParseForecastMode(std::string_view name);

/// Every ForecastMode, in flag-help order (scalar, batched).
const std::vector<ForecastMode>& AllForecastModes();

/// Which simulation engine replays the horizon. Both produce bit-identical
/// SimMetrics on batch-replay workloads (the parity ctest); only the event
/// engine supports mid-task dropout and reports events/second.
enum class SimEngine {
  kEvent,        // Event-queue core (default; DESIGN.md §4j).
  kBatchReplay,  // The legacy batch-synchronous loop (parity reference).
};

/// Canonical flag value ("event", "batch"); static storage, round-trips
/// through ParseSimEngine.
std::string_view SimEngineName(SimEngine engine);

/// Inverse of SimEngineName (case-insensitive); InvalidArgument for
/// anything else, listing the accepted names.
StatusOr<SimEngine> ParseSimEngine(std::string_view name);

/// Every SimEngine, in flag-help order (event, batch).
const std::vector<SimEngine>& AllSimEngines();

/// How per-batch matchings are solved. The single source of truth behind
/// the --sharding flag; plans are bit-identical either way (DESIGN.md
/// §4k), with kOff kept as the parity reference the same way
/// --candidates=dense and --forecast=scalar are.
enum class ShardMode {
  kOff,         // One global Hungarian solve per batch (default).
  kComponents,  // Per-connected-component solves via ParallelFor.
};

/// Canonical flag value ("off", "components"); static storage, round-trips
/// through ParseShardMode.
std::string_view ShardModeName(ShardMode mode);

/// Inverse of ShardModeName (case-insensitive); InvalidArgument for
/// anything else, listing the accepted names.
StatusOr<ShardMode> ParseShardMode(std::string_view name);

/// Every ShardMode, in flag-help order (off, components).
const std::vector<ShardMode>& AllShardModes();

/// Batch-based online-stage settings (Table III: 2-minute windows, 10-min
/// time units).
struct SimulatorConfig {
  double batch_window_min = 2.0;
  double sample_period_min = 10.0;
  /// How many future positions the platform forecasts per worker per batch
  /// (the predicted routine w.r-hat the assigners see).
  int prediction_horizon_steps = 5;
  /// Matching-rate radius a (shared by Def. 7 evaluation and Theorem 2).
  double match_radius_km = 1.0;
  /// Brief hand-over pause after completing a task before the worker can
  /// take another assignment.
  double service_time_min = 2.0;
  /// When true a worker stays committed (unassignable) until they reach
  /// the accepted task; when false only the service pause applies (the
  /// check-in-style tasks of the paper's running example are performed en
  /// route and barely interrupt the routine -- the default, matching the
  /// paper's batch-replay evaluation).
  bool busy_until_arrival = false;
  /// When true the platform records declined (task, worker) pairs and
  /// never re-proposes them (an extension beyond the paper, exercised by
  /// the ablation bench); when false — the paper's behaviour — a rejected
  /// task simply returns to the pool and may be re-proposed to anyone.
  bool remember_declines = false;
  /// Candidate generation (--candidates): dense sweep, per-batch spatial
  /// index (default), or batch-to-batch incremental reuse. Plans — and
  /// therefore every simulator metric — are bit-identical across modes;
  /// kIncremental requires an AssignReuse holder at construction.
  CandidateMode candidate_mode = CandidateMode::kIndexed;
  /// Forecast path (--forecast): the fleet-wide SoA engine (default) or
  /// the per-worker scalar rollout; bit-identical either way.
  ForecastMode forecast_mode = ForecastMode::kBatched;
  /// Simulation engine (--engine): the event-queue core (default) or the
  /// legacy batch-synchronous loop kept as the parity reference.
  SimEngine engine = SimEngine::kEvent;
  /// Per-batch matching decomposition (--sharding): geo-sharded
  /// per-component solves (kComponents) or the single global solve (kOff,
  /// default — the parity reference). Plans are bit-identical either way.
  ShardMode shard_mode = ShardMode::kOff;
  assign::PpiConfig ppi;
  assign::GgpsoConfig ggpso;

  // -- Deprecated boolean mode switches (one release of compatibility). --
  // The three independent bools only loosely mirrored --candidates /
  // --forecast; the typed enums above are now the single source of truth.
  [[deprecated("set candidate_mode = CandidateMode::{kIndexed,kDense}")]]
  void set_use_spatial_index(bool on) {
    candidate_mode = on ? CandidateMode::kIndexed : CandidateMode::kDense;
  }
  [[deprecated("set candidate_mode = CandidateMode::kIncremental")]]
  void set_use_incremental(bool on) {
    candidate_mode = on ? CandidateMode::kIncremental : CandidateMode::kIndexed;
  }
  [[deprecated("set forecast_mode = ForecastMode::{kBatched,kScalar}")]]
  void set_use_batched_forecast(bool on) {
    forecast_mode = on ? ForecastMode::kBatched : ForecastMode::kScalar;
  }
};

/// Removes every task whose deadline has passed (deadline <= now) from the
/// pending pool in a single pass, preserving the release order of the
/// survivors. Returns the number of tasks dropped.
size_t PurgeExpiredTasks(std::deque<assign::SpatialTask>& pool,
                         double now_min);

/// Aggregate outcome of one simulated horizon (the Fig. 6-11 metrics).
struct SimMetrics {
  int total_tasks = 0;        // Tasks released over the horizon.
  int assignments = 0;        // |M| accumulated over batches.
  int accepted = 0;           // |M'|: assignments workers accepted.
  int completed = 0;          // Tasks completed. Equal to `accepted` minus
                              // `dropouts` (batch-replay workloads have no
                              // dropout, so there accepted == completed).
  int dropouts = 0;           // Accepted tasks aborted mid-service (churn
                              // scenarios under the event engine).
  double total_cost_km = 0.0; // Sum of real detours of completed tasks.
  double assign_seconds = 0.0;// Pure assignment-algorithm running time.

  double CompletionRatio() const {
    return total_tasks == 0 ? 0.0
                            : static_cast<double>(completed) / total_tasks;
  }
  double RejectionRatio() const {
    return assignments == 0
               ? 0.0
               : static_cast<double>(assignments - accepted) / assignments;
  }
  double AvgCostKm() const {
    return completed == 0 ? 0.0 : total_cost_km / completed;
  }
};

/// Per-worker prediction inputs the simulator needs: the trained model
/// parameters and the offline-estimated matching rate.
struct WorkerPredictor {
  const std::vector<double>* params = nullptr;  // Null for UB/LB methods.
  double matching_rate = 0.0;
};

/// The per-batch machinery both engines share: given the pending pool and
/// the available worker indices at one instant, forecast the fleet's
/// routines, run the chosen assignment algorithm, and simulate the
/// workers' accept/reject decisions against their real trajectories.
/// Owning it once per run keeps the fleet forecast scratch warm across
/// batches; because both engines call the exact same code with the exact
/// same inputs, event-driven metrics are bit-identical to batch-replay by
/// construction (the parity ctest pins the remaining state-machine
/// translation).
class BatchAssignStep {
 public:
  BatchAssignStep(const data::Workload& workload,
                  const nn::EncoderDecoder& model,
                  const SimulatorConfig& config,
                  assign::AssignReuse* reuse);

  /// One accepted assignment: the workload worker index, the task, the
  /// real detour, and when the worker's service ends.
  struct Accepted {
    int worker = -1;           // Index into workload.workers.
    int task_id = -1;
    double detour_km = 0.0;
    double busy_until_min = 0.0;
  };

  /// Everything one batch decided, in plan order. The engine applies it to
  /// its own state (metrics, busy/pool bookkeeping, decline memory).
  struct Outcome {
    int assignments = 0;       // |M| this batch proposed.
    std::vector<Accepted> accepted;
    /// (task_id, worker_id) pairs the workers declined, recorded only
    /// when config.remember_declines.
    std::vector<std::pair<int, int>> declined;
    double assign_seconds = 0.0;  // Assignment-algorithm time this batch.
  };

  /// Runs one batch at `now` over the pending pool and the available
  /// workload-worker indices (ascending). Also records the per-batch
  /// observability (batch count, pool/fleet depths, forecast/assign
  /// timings).
  Outcome Step(AssignMethod method,
               const std::vector<WorkerPredictor>& predictors, double now,
               const std::deque<assign::SpatialTask>& pool,
               const std::vector<int>& available);

 private:
  const data::Workload& workload_;
  const nn::EncoderDecoder& model_;
  const SimulatorConfig& config_;
  assign::AssignReuse* reuse_ = nullptr;  // Not owned; may be null.
  /// Observation window length (matches the training seq_in).
  int observe_steps_ = 5;
  /// Fleet-batched forecast engine + its cross-batch scratch (SoA windows,
  /// tile plan, gate matrices); only touched when forecast_mode==kBatched.
  nn::BatchedSeq2Seq batched_model_;
  FleetForecastScratch forecast_scratch_;
  std::vector<const std::vector<double>*> forecast_params_;
  std::vector<std::vector<geo::Point>> forecast_recents_;
  std::vector<std::vector<geo::TimedPoint>> forecast_out_;
};

/// The online stage: replays the test-horizon task stream with assignment
/// fired every 2 minutes. Each batch the platform forecasts available
/// workers' routines, runs the chosen assignment algorithm, and every
/// assigned worker then accepts or rejects against their *real* trajectory
/// (detour <= w.d and arrival before the deadline). Rejected tasks return
/// to the pool until they expire; accepted workers are busy until they
/// reach the task.
///
/// Run() is a thin client of the event-queue core (DESIGN.md §4j): it
/// enqueues one assignment-trigger event per batch window and lets the
/// EventSimulator drain the queue. config.engine == kBatchReplay instead
/// runs the legacy batch-synchronous loop, kept as the bitwise parity
/// reference.
class BatchSimulator {
 public:
  /// `reuse` (optional) is the cross-batch reuse holder consumed when
  /// config.candidate_mode == kIncremental; it may outlive the simulator
  /// (the pipeline keeps one across runs so later runs revisiting the same
  /// batch instants hit its row cache).
  BatchSimulator(const data::Workload& workload,
                 const nn::EncoderDecoder& model,
                 const SimulatorConfig& config,
                 assign::AssignReuse* reuse = nullptr);

  /// Runs the full horizon with one method. `predictors` is index-aligned
  /// with the workload's workers; prediction-free methods (UB, LB) ignore
  /// the params but UB still uses no predictor and LB only locations.
  SimMetrics Run(AssignMethod method,
                 const std::vector<WorkerPredictor>& predictors);

 private:
  /// The legacy batch-synchronous loop (the parity reference).
  SimMetrics RunBatchReplay(AssignMethod method,
                            const std::vector<WorkerPredictor>& predictors);

  const data::Workload& workload_;
  const nn::EncoderDecoder& model_;
  SimulatorConfig config_;
  assign::AssignReuse* reuse_ = nullptr;  // Not owned; may be null.
  BatchAssignStep step_;
};

}  // namespace tamp::core
