#pragma once

#include <cstddef>
#include <deque>
#include <string_view>
#include <vector>

#include "assign/ggpso.h"
#include "assign/ppi.h"
#include "assign/types.h"
#include "common/status.h"
#include "core/rollout.h"
#include "data/workload.h"
#include "nn/batched_seq2seq.h"
#include "nn/encoder_decoder.h"

namespace tamp::assign {
struct AssignReuse;
}  // namespace tamp::assign

namespace tamp::core {

/// The compared assignment strategies of Section IV-A.
enum class AssignMethod {
  kUpperBound,  // Oracle on real trajectories (rejection rate 0).
  kLowerBound,  // Current location only.
  kKm,          // Plain KM on predicted trajectories.
  kPpi,         // Algorithm 4.
  kGgpso,       // Genetic/PSO baseline [11].
};

/// Canonical display name ("UB", "LB", "KM", "PPI", "GGPSO"). The returned
/// view points at static storage and round-trips through
/// ParseAssignMethod.
std::string_view AssignMethodName(AssignMethod method);

/// Inverse of AssignMethodName (case-insensitive); InvalidArgument for
/// anything else, listing the accepted names.
StatusOr<AssignMethod> ParseAssignMethod(std::string_view name);

/// Every AssignMethod, in the fixed presentation order of the paper's
/// figures (UB, LB, KM, PPI, GGPSO).
const std::vector<AssignMethod>& AllAssignMethods();

/// Batch-based online-stage settings (Table III: 2-minute windows, 10-min
/// time units).
struct SimulatorConfig {
  double batch_window_min = 2.0;
  double sample_period_min = 10.0;
  /// How many future positions the platform forecasts per worker per batch
  /// (the predicted routine w.r-hat the assigners see).
  int prediction_horizon_steps = 5;
  /// Matching-rate radius a (shared by Def. 7 evaluation and Theorem 2).
  double match_radius_km = 1.0;
  /// Brief hand-over pause after completing a task before the worker can
  /// take another assignment.
  double service_time_min = 2.0;
  /// When true a worker stays committed (unassignable) until they reach
  /// the accepted task; when false only the service pause applies (the
  /// check-in-style tasks of the paper's running example are performed en
  /// route and barely interrupt the routine -- the default, matching the
  /// paper's batch-replay evaluation).
  bool busy_until_arrival = false;
  /// When true the platform records declined (task, worker) pairs and
  /// never re-proposes them (an extension beyond the paper, exercised by
  /// the ablation bench); when false — the paper's behaviour — a rejected
  /// task simply returns to the pool and may be re-proposed to anyone.
  bool remember_declines = false;
  /// Forwarded to every assigner that generates candidates (PPI, KM,
  /// GGPSO): prune candidate pairs through the per-batch spatial index
  /// (default) or run the dense T x W sweep. Plans — and therefore every
  /// simulator metric — are bit-identical either way.
  bool use_spatial_index = true;
  /// Batch-to-batch reuse (--candidates=incremental): candidate tables come
  /// from the pipeline-owned IncrementalCandidateEngine (delta-updated
  /// index + cached EvaluateCandidate rows) and KM solves warm-start from
  /// the previous batch. Requires an AssignReuse holder to be passed to the
  /// BatchSimulator; plans stay bit-identical to the cold paths.
  bool use_incremental = false;
  /// Forecast path (--forecast=batched|scalar): batch every available
  /// worker's autoregressive rollout through the fleet-wide SoA
  /// nn::BatchedSeq2Seq engine (fused gate kernels, persistent scratch
  /// across batches) instead of one scalar LstmCell chain per worker.
  /// Predictions — and therefore plans and every simulator metric — are
  /// bit-identical either way; the scalar path is the parity reference.
  bool use_batched_forecast = true;
  assign::PpiConfig ppi;
  assign::GgpsoConfig ggpso;
};

/// Removes every task whose deadline has passed (deadline <= now) from the
/// pending pool in a single pass, preserving the release order of the
/// survivors. Returns the number of tasks dropped.
size_t PurgeExpiredTasks(std::deque<assign::SpatialTask>& pool,
                         double now_min);

/// Aggregate outcome of one simulated horizon (the Fig. 6-11 metrics).
struct SimMetrics {
  int total_tasks = 0;        // Tasks released over the horizon.
  int assignments = 0;        // |M| accumulated over batches.
  int accepted = 0;           // |M'|: assignments workers accepted.
  int completed = 0;          // Tasks completed (== accepted, kept for
                              // clarity: acceptance implies completion).
  double total_cost_km = 0.0; // Sum of real detours of accepted tasks.
  double assign_seconds = 0.0;// Pure assignment-algorithm running time.

  double CompletionRatio() const {
    return total_tasks == 0 ? 0.0
                            : static_cast<double>(completed) / total_tasks;
  }
  double RejectionRatio() const {
    return assignments == 0
               ? 0.0
               : static_cast<double>(assignments - accepted) / assignments;
  }
  double AvgCostKm() const {
    return accepted == 0 ? 0.0 : total_cost_km / accepted;
  }
};

/// Per-worker prediction inputs the simulator needs: the trained model
/// parameters and the offline-estimated matching rate.
struct WorkerPredictor {
  const std::vector<double>* params = nullptr;  // Null for UB/LB methods.
  double matching_rate = 0.0;
};

/// The online stage: replays the test-horizon task stream in 2-minute
/// batches. Each batch the platform forecasts available workers' routines,
/// runs the chosen assignment algorithm, and every assigned worker then
/// accepts or rejects against their *real* trajectory (detour <= w.d and
/// arrival before the deadline). Rejected tasks return to the pool until
/// they expire; accepted workers are busy until they reach the task.
class BatchSimulator {
 public:
  /// `reuse` (optional) is the cross-batch reuse holder consumed when
  /// config.use_incremental is set; it may outlive the simulator (the
  /// pipeline keeps one across runs so later runs revisiting the same
  /// batch instants hit its row cache).
  BatchSimulator(const data::Workload& workload,
                 const nn::EncoderDecoder& model,
                 const SimulatorConfig& config,
                 assign::AssignReuse* reuse = nullptr);

  /// Runs the full horizon with one method. `predictors` is index-aligned
  /// with the workload's workers; prediction-free methods (UB, LB) ignore
  /// the params but UB still uses no predictor and LB only locations.
  SimMetrics Run(AssignMethod method,
                 const std::vector<WorkerPredictor>& predictors);

 private:
  const data::Workload& workload_;
  const nn::EncoderDecoder& model_;
  SimulatorConfig config_;
  assign::AssignReuse* reuse_ = nullptr;  // Not owned; may be null.
  /// Fleet-batched forecast engine + its cross-batch scratch (SoA windows,
  /// tile plan, gate matrices); only touched when use_batched_forecast.
  nn::BatchedSeq2Seq batched_model_;
  FleetForecastScratch forecast_scratch_;
  std::vector<const std::vector<double>*> forecast_params_;
  std::vector<std::vector<geo::Point>> forecast_recents_;
  std::vector<std::vector<geo::TimedPoint>> forecast_out_;
};

}  // namespace tamp::core
