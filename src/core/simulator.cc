#include "core/simulator.h"

#include <algorithm>
#include <cctype>
#include <deque>
#include <optional>
#include <string>

#include "assign/bounds.h"
#include "assign/incremental.h"
#include "assign/km_assigner.h"
#include "common/check.h"
#include "common/obs/metrics.h"
#include "common/obs/trace.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "core/event_sim.h"
#include "core/rollout.h"
#include "geo/trajectory.h"

namespace tamp::core {

namespace {

std::string LowerCopy(std::string_view name) {
  std::string lower(name);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return lower;
}

}  // namespace

std::string_view AssignMethodName(AssignMethod method) {
  switch (method) {
    case AssignMethod::kUpperBound:
      return "UB";
    case AssignMethod::kLowerBound:
      return "LB";
    case AssignMethod::kKm:
      return "KM";
    case AssignMethod::kPpi:
      return "PPI";
    case AssignMethod::kGgpso:
      return "GGPSO";
  }
  return "?";
}

const std::vector<AssignMethod>& AllAssignMethods() {
  static const std::vector<AssignMethod> kAll = {
      AssignMethod::kUpperBound, AssignMethod::kLowerBound, AssignMethod::kKm,
      AssignMethod::kPpi, AssignMethod::kGgpso};
  return kAll;
}

StatusOr<AssignMethod> ParseAssignMethod(std::string_view name) {
  std::string upper(name);
  for (char& c : upper) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  for (AssignMethod method : AllAssignMethods()) {
    if (upper == AssignMethodName(method)) return method;
  }
  std::string accepted;
  for (AssignMethod method : AllAssignMethods()) {
    if (!accepted.empty()) accepted += ", ";
    accepted += AssignMethodName(method);
  }
  return Status::InvalidArgument("unknown assignment method '" +
                                 std::string(name) + "' (accepted: " +
                                 accepted + ")");
}

std::string_view CandidateModeName(CandidateMode mode) {
  switch (mode) {
    case CandidateMode::kDense:
      return "dense";
    case CandidateMode::kIndexed:
      return "indexed";
    case CandidateMode::kIncremental:
      return "incremental";
  }
  return "?";
}

const std::vector<CandidateMode>& AllCandidateModes() {
  static const std::vector<CandidateMode> kAll = {CandidateMode::kDense,
                                                  CandidateMode::kIndexed,
                                                  CandidateMode::kIncremental};
  return kAll;
}

StatusOr<CandidateMode> ParseCandidateMode(std::string_view name) {
  const std::string lower = LowerCopy(name);
  for (CandidateMode mode : AllCandidateModes()) {
    if (lower == CandidateModeName(mode)) return mode;
  }
  std::string accepted;
  for (CandidateMode mode : AllCandidateModes()) {
    if (!accepted.empty()) accepted += ", ";
    accepted += CandidateModeName(mode);
  }
  return Status::InvalidArgument("unknown candidate mode '" +
                                 std::string(name) + "' (accepted: " +
                                 accepted + ")");
}

std::string_view ForecastModeName(ForecastMode mode) {
  switch (mode) {
    case ForecastMode::kScalar:
      return "scalar";
    case ForecastMode::kBatched:
      return "batched";
  }
  return "?";
}

const std::vector<ForecastMode>& AllForecastModes() {
  static const std::vector<ForecastMode> kAll = {ForecastMode::kScalar,
                                                 ForecastMode::kBatched};
  return kAll;
}

StatusOr<ForecastMode> ParseForecastMode(std::string_view name) {
  const std::string lower = LowerCopy(name);
  for (ForecastMode mode : AllForecastModes()) {
    if (lower == ForecastModeName(mode)) return mode;
  }
  std::string accepted;
  for (ForecastMode mode : AllForecastModes()) {
    if (!accepted.empty()) accepted += ", ";
    accepted += ForecastModeName(mode);
  }
  return Status::InvalidArgument("unknown forecast mode '" +
                                 std::string(name) + "' (accepted: " +
                                 accepted + ")");
}

std::string_view SimEngineName(SimEngine engine) {
  switch (engine) {
    case SimEngine::kEvent:
      return "event";
    case SimEngine::kBatchReplay:
      return "batch";
  }
  return "?";
}

const std::vector<SimEngine>& AllSimEngines() {
  static const std::vector<SimEngine> kAll = {SimEngine::kEvent,
                                              SimEngine::kBatchReplay};
  return kAll;
}

StatusOr<SimEngine> ParseSimEngine(std::string_view name) {
  const std::string lower = LowerCopy(name);
  for (SimEngine engine : AllSimEngines()) {
    if (lower == SimEngineName(engine)) return engine;
  }
  std::string accepted;
  for (SimEngine engine : AllSimEngines()) {
    if (!accepted.empty()) accepted += ", ";
    accepted += SimEngineName(engine);
  }
  return Status::InvalidArgument("unknown sim engine '" + std::string(name) +
                                 "' (accepted: " + accepted + ")");
}

std::string_view ShardModeName(ShardMode mode) {
  switch (mode) {
    case ShardMode::kOff:
      return "off";
    case ShardMode::kComponents:
      return "components";
  }
  return "?";
}

const std::vector<ShardMode>& AllShardModes() {
  static const std::vector<ShardMode> kAll = {ShardMode::kOff,
                                              ShardMode::kComponents};
  return kAll;
}

StatusOr<ShardMode> ParseShardMode(std::string_view name) {
  const std::string lower = LowerCopy(name);
  for (ShardMode mode : AllShardModes()) {
    if (lower == ShardModeName(mode)) return mode;
  }
  std::string accepted;
  for (ShardMode mode : AllShardModes()) {
    if (!accepted.empty()) accepted += ", ";
    accepted += ShardModeName(mode);
  }
  return Status::InvalidArgument("unknown shard mode '" + std::string(name) +
                                 "' (accepted: " + accepted + ")");
}

size_t PurgeExpiredTasks(std::deque<assign::SpatialTask>& pool,
                         double now_min) {
  // One linear pass; the old restart-from-begin scan-erase loop was
  // O(pool^2) per batch when a backlog expired at once.
  return std::erase_if(pool, [now_min](const assign::SpatialTask& task) {
    return task.deadline_min <= now_min;
  });
}

BatchAssignStep::BatchAssignStep(const data::Workload& workload,
                                 const nn::EncoderDecoder& model,
                                 const SimulatorConfig& config,
                                 assign::AssignReuse* reuse)
    : workload_(workload),
      model_(model),
      config_(config),
      reuse_(reuse),
      batched_model_(model.config()) {
  // The observation window length matches the training seq_in: infer it
  // from the first learning task if available.
  if (!workload_.learning_tasks.empty() &&
      !workload_.learning_tasks.front().support.empty()) {
    observe_steps_ = static_cast<int>(
        workload_.learning_tasks.front().support.front().input.size());
  } else if (!workload_.learning_tasks.empty() &&
             !workload_.learning_tasks.front().eval.empty()) {
    observe_steps_ = static_cast<int>(
        workload_.learning_tasks.front().eval.front().input.size());
  }
}

BatchAssignStep::Outcome BatchAssignStep::Step(
    AssignMethod method, const std::vector<WorkerPredictor>& predictors,
    double now, const std::deque<assign::SpatialTask>& pool,
    const std::vector<int>& available) {
  // Per-batch visibility (DESIGN.md §4e): batch counts, pool/candidate
  // depths, and the forecast vs assignment split of each batch's time.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter& batches_counter = registry.GetCounter("sim.batches");
  static obs::Counter& assignments_counter =
      registry.GetCounter("sim.assignments");
  static obs::Counter& accepted_counter = registry.GetCounter("sim.accepted");
  static obs::Histogram& pool_depth_hist =
      registry.GetHistogram("sim.pool_depth", obs::CountEdges());
  static obs::Histogram& available_hist =
      registry.GetHistogram("sim.available_workers", obs::CountEdges());
  static obs::Histogram& forecast_hist =
      registry.GetHistogram("sim.forecast_s", obs::DurationEdgesSeconds());
  static obs::Histogram& assign_hist =
      registry.GetHistogram("sim.assign_s", obs::DurationEdgesSeconds());

  TAMP_DCHECK(!pool.empty());
  TAMP_DCHECK(!available.empty());
  const auto& workers = workload_.workers;

  obs::TraceSpan batch_span("sim.batch");
  batches_counter.Increment();
  pool_depth_hist.Record(static_cast<double>(pool.size()));
  available_hist.Record(static_cast<double>(available.size()));

  // Build the batch views. The autoregressive forecast dominates this
  // block. Batched mode (the default) only collects each worker's recent
  // observations here and then runs ONE fleet-wide SoA rollout below;
  // scalar mode keeps the per-worker RolloutPredict chain inside the
  // fan-out. Either way every write is slot-indexed, so the batch order
  // (and thus the assignment input) is identical to the serial loop.
  std::vector<assign::SpatialTask> batch_tasks(pool.begin(), pool.end());
  std::vector<assign::CandidateWorker> batch_workers(available.size());
  std::vector<geo::Trajectory> real_futures(available.size());
  double horizon_min =
      config_.prediction_horizon_steps * config_.sample_period_min;
  const bool predicts = method == AssignMethod::kKm ||
                        method == AssignMethod::kPpi ||
                        method == AssignMethod::kGgpso;
  const bool batched =
      predicts && config_.forecast_mode == ForecastMode::kBatched;
  if (batched) {
    forecast_params_.resize(available.size());
    forecast_recents_.resize(available.size());
  }
  Stopwatch forecast_watch;
  std::optional<obs::TraceSpan> forecast_span(std::in_place, "sim.forecast");
  ParallelFor(available.size(), [&](size_t a) {
    const size_t wi = static_cast<size_t>(available[a]);
    const data::WorkerRecord& record = workers[wi];
    assign::CandidateWorker cw;
    cw.id = record.id;
    cw.current_location = record.test.PositionAt(now);
    cw.detour_budget_km = record.detour_budget_km;
    cw.speed_kmpm = record.speed_kmpm;
    cw.matching_rate = predictors[wi].matching_rate;
    if (predicts) {
      TAMP_CHECK(predictors[wi].params != nullptr);
      // Recent observed positions (platform-visible location reports).
      // In batched mode they land in the persistent per-slot buffer.
      std::vector<geo::Point> local_recent;
      std::vector<geo::Point>& recent =
          batched ? forecast_recents_[a] : local_recent;
      recent.clear();
      for (int s = observe_steps_ - 1; s >= 0; --s) {
        recent.push_back(
            record.test.PositionAt(now - s * config_.sample_period_min));
      }
      if (batched) {
        forecast_params_[a] = predictors[wi].params;
      } else {
        cw.predicted = RolloutPredict(model_, *predictors[wi].params, recent,
                                      workload_.grid,
                                      config_.prediction_horizon_steps, now,
                                      config_.sample_period_min);
      }
    }
    batch_workers[a] = std::move(cw);
    // The oracle's and the acceptance test's view of reality.
    real_futures[a] = record.test.Slice(now, now + horizon_min);
  });
  if (batched) {
    // The fleet-level forecast call: one batched rollout replaces the
    // per-worker scalar chains, reusing the engine scratch across batches.
    RolloutPredictBatch(batched_model_, forecast_params_, forecast_recents_,
                        workload_.grid, config_.prediction_horizon_steps, now,
                        config_.sample_period_min, forecast_scratch_,
                        &forecast_out_);
    for (size_t a = 0; a < available.size(); ++a) {
      batch_workers[a].predicted = std::move(forecast_out_[a]);
    }
  }
  forecast_span.reset();
  forecast_hist.Record(forecast_watch.ElapsedSeconds());

  // Run the assignment algorithm (timed: this is the reported runtime).
  Stopwatch watch;
  std::optional<obs::TraceSpan> assign_span(std::in_place, "sim.assign");
  assign::AssignmentPlan plan;
  const bool use_index = config_.candidate_mode != CandidateMode::kDense;
  const bool shard = config_.shard_mode == ShardMode::kComponents;
  assign::AssignReuse* reuse =
      config_.candidate_mode == CandidateMode::kIncremental ? reuse_ : nullptr;
  switch (method) {
    case AssignMethod::kUpperBound:
      plan = assign::UpperBoundAssign(batch_tasks, batch_workers, real_futures,
                                      now);
      break;
    case AssignMethod::kLowerBound:
      plan = assign::LowerBoundAssign(batch_tasks, batch_workers, now);
      break;
    case AssignMethod::kKm:
      plan = assign::KmAssign(batch_tasks, batch_workers, now,
                              config_.match_radius_km,
                              /*weight_floor_km=*/1e-3, use_index, reuse,
                              shard);
      break;
    case AssignMethod::kPpi: {
      assign::PpiConfig ppi = config_.ppi;
      ppi.match_radius_km = config_.match_radius_km;
      ppi.use_spatial_index = use_index;
      ppi.shard_components = shard;
      plan = assign::PpiAssign(batch_tasks, batch_workers, now, ppi, reuse);
      break;
    }
    case AssignMethod::kGgpso: {
      assign::GgpsoConfig ggpso = config_.ggpso;
      ggpso.match_radius_km = config_.match_radius_km;
      ggpso.use_spatial_index = use_index;
      ggpso.shard_components = shard;
      plan = assign::GgpsoAssign(batch_tasks, batch_workers, now, ggpso,
                                 reuse);
      break;
    }
  }
  assign_span.reset();

  Outcome outcome;
  outcome.assignments = static_cast<int>(plan.pairs.size());
  outcome.assign_seconds = watch.ElapsedSeconds();
  assign_hist.Record(outcome.assign_seconds);

  // Worker decisions against reality (step 3 of the framework): accept
  // iff the real detour fits w.d and the deadline is met.
  for (const assign::AssignmentPair& pair : plan.pairs) {
    const assign::SpatialTask& task =
        batch_tasks[static_cast<size_t>(pair.task_index)];
    int w = available[static_cast<size_t>(pair.worker_index)];
    const data::WorkerRecord& record = workers[static_cast<size_t>(w)];
    auto visit = geo::PlanTaskVisit(
        real_futures[static_cast<size_t>(pair.worker_index)], task.location,
        record.speed_kmpm, task.deadline_min);
    bool accepts =
        visit.has_value() && visit->detour_km <= record.detour_budget_km;
    if (!accepts) {
      // Rejected: the task stays pooled and carries over to the next
      // batch (Section IV-B). With remember_declines the platform also
      // avoids re-proposing this exact pair.
      if (config_.remember_declines) {
        outcome.declined.emplace_back(task.id, record.id);
      }
      continue;
    }
    Accepted accepted;
    accepted.worker = w;
    accepted.task_id = task.id;
    accepted.detour_km = visit->detour_km;
    accepted.busy_until_min =
        config_.busy_until_arrival
            ? visit->arrival_time_min + config_.service_time_min
            : now + config_.service_time_min;
    outcome.accepted.push_back(accepted);
  }
  assignments_counter.Increment(static_cast<int64_t>(plan.pairs.size()));
  accepted_counter.Increment(static_cast<int64_t>(outcome.accepted.size()));
  return outcome;
}

BatchSimulator::BatchSimulator(const data::Workload& workload,
                               const nn::EncoderDecoder& model,
                               const SimulatorConfig& config,
                               assign::AssignReuse* reuse)
    : workload_(workload),
      model_(model),
      config_(config),
      reuse_(reuse),
      step_(workload_, model_, config_, reuse_) {
  // kIncremental without a holder would silently run cold; make the
  // contract explicit at construction instead of per batch.
  TAMP_CHECK_MSG(
      config_.candidate_mode != CandidateMode::kIncremental || reuse_ != nullptr,
      "CandidateMode::kIncremental requires an AssignReuse holder");
}

SimMetrics BatchSimulator::Run(
    AssignMethod method, const std::vector<WorkerPredictor>& predictors) {
  if (config_.engine == SimEngine::kBatchReplay) {
    return RunBatchReplay(method, predictors);
  }
  obs::TraceSpan run_span("sim.run");
  const auto& workers = workload_.workers;
  TAMP_CHECK(predictors.size() == workers.size());
  SimMetrics metrics;
  metrics.total_tasks = static_cast<int>(workload_.task_stream.size());
  if (workers.empty() || workload_.task_stream.empty()) return metrics;

  // The thin-client contract (DESIGN.md §4j): the batch cadence lives
  // HERE — one assignment-trigger event per batch window, with the exact
  // same floating-point accumulation the legacy loop used — and the event
  // core handles everything else (arrivals, expiries, sessions,
  // completions).
  double horizon_start = workload_.task_stream.front().release_time_min;
  double horizon_end = 0.0;
  for (const auto& task : workload_.task_stream) {
    horizon_end = std::max(horizon_end, task.deadline_min);
  }
  EventSimulator sim(workload_, config_, step_);
  for (double now = horizon_start; now <= horizon_end;
       now += config_.batch_window_min) {
    sim.ScheduleAssignTrigger(now);
  }
  return sim.Run(method, predictors);
}

SimMetrics BatchSimulator::RunBatchReplay(
    AssignMethod method, const std::vector<WorkerPredictor>& predictors) {
  obs::TraceSpan run_span("sim.run");
  static obs::Counter& skips_counter =
      obs::MetricsRegistry::Global().GetCounter("sim.batch_skips");
  const auto& workers = workload_.workers;
  TAMP_CHECK(predictors.size() == workers.size());
  SimMetrics metrics;
  metrics.total_tasks = static_cast<int>(workload_.task_stream.size());
  if (workers.empty() || workload_.task_stream.empty()) return metrics;

  // Horizon bounds from the task stream.
  double horizon_start = workload_.task_stream.front().release_time_min;
  double horizon_end = 0.0;
  for (const auto& task : workload_.task_stream) {
    horizon_end = std::max(horizon_end, task.deadline_min);
  }

  std::vector<double> busy_until(workers.size(), 0.0);
  std::deque<assign::SpatialTask> pool;  // Pending (released, unexpired).
  size_t next_release = 0;

  for (double now = horizon_start; now <= horizon_end;
       now += config_.batch_window_min) {
    // Admit newly released tasks; drop expired ones.
    while (next_release < workload_.task_stream.size() &&
           workload_.task_stream[next_release].release_time_min <= now) {
      pool.push_back(workload_.task_stream[next_release]);
      ++next_release;
    }
    PurgeExpiredTasks(pool, now);
    // Counted skips mirror EventSimulator::HandleAssignTrigger exactly:
    // same predicate, same counter, so the engines' totals stay equal.
    if (pool.empty()) {
      skips_counter.Increment();
      continue;
    }

    // Available workers still on shift.
    std::vector<int> available;
    for (size_t w = 0; w < workers.size(); ++w) {
      if (busy_until[w] > now) continue;
      if (workers[w].test.empty()) continue;
      if (now < workers[w].test.start_time() ||
          now > workers[w].test.end_time()) {
        continue;
      }
      // Part-time workers only take tasks inside a login session.
      if (!workers[w].AvailableAt(now)) continue;
      available.push_back(static_cast<int>(w));
    }
    if (available.empty()) {
      skips_counter.Increment();
      continue;
    }

    BatchAssignStep::Outcome outcome =
        step_.Step(method, predictors, now, pool, available);
    metrics.assignments += outcome.assignments;
    metrics.assign_seconds += outcome.assign_seconds;
    for (const auto& [task_id, worker_id] : outcome.declined) {
      for (auto& pooled : pool) {
        if (pooled.id == task_id) {
          pooled.declined_worker_ids.push_back(worker_id);
          break;
        }
      }
    }
    for (const BatchAssignStep::Accepted& accepted : outcome.accepted) {
      ++metrics.accepted;
      ++metrics.completed;
      metrics.total_cost_km += accepted.detour_km;
      busy_until[static_cast<size_t>(accepted.worker)] =
          accepted.busy_until_min;
      // Remove the accepted task from the pool.
      for (auto it = pool.begin(); it != pool.end(); ++it) {
        if (it->id == accepted.task_id) {
          pool.erase(it);
          break;
        }
      }
    }
  }
  return metrics;
}

}  // namespace tamp::core
