#include "core/pipeline.h"

#include <memory>

#include "common/check.h"
#include "common/obs/trace.h"

namespace tamp::core {

TampPipeline::TampPipeline(const PipelineConfig& config) : config_(config) {
  // Workload samples carry (x, y, time-of-day) inputs; the model must
  // match regardless of what the caller left in the trainer config.
  config_.trainer.model.input_dim = data::kSampleInputDim;
}

OfflineResult TampPipeline::TrainOffline(const data::Workload& workload) {
  obs::TraceSpan span("pipeline.train_offline");
  TAMP_CHECK(!workload.learning_tasks.empty());
  meta::TrainerConfig trainer_config = config_.trainer;

  // The weighter must outlive training; keep it alive for this call.
  std::unique_ptr<TaskOrientedWeighter> weighter;
  if (config_.use_ta_loss) {
    weighter = std::make_unique<TaskOrientedWeighter>(
        workload.grid, workload.historical_task_locations, config_.ta_loss);
    trainer_config.meta.weight_fn = weighter->AsFunction();
  } else {
    trainer_config.meta.weight_fn = nullptr;
  }

  meta::MobilityTrainer trainer(trainer_config);
  OfflineResult result;
  result.models =
      trainer.Train(workload.learning_tasks, config_.meta_algorithm);
  result.eval = trainer.Evaluate(result.models, workload.learning_tasks,
                                 workload.grid, config_.sim.match_radius_km);
  return result;
}

SimMetrics TampPipeline::RunOnline(const data::Workload& workload,
                                   const OfflineResult& offline,
                                   AssignMethod method) {
  obs::TraceSpan span("pipeline.run_online");
  nn::EncoderDecoder model(config_.trainer.model);
  if (config_.sim.candidate_mode == CandidateMode::kIncremental &&
      assign_reuse_ == nullptr) {
    assign_reuse_ = std::make_unique<assign::AssignReuse>();
  }
  BatchSimulator simulator(workload, model, config_.sim,
                           assign_reuse_.get());

  std::vector<WorkerPredictor> predictors(workload.workers.size());
  const bool needs_models = method == AssignMethod::kKm ||
                            method == AssignMethod::kPpi ||
                            method == AssignMethod::kGgpso;
  if (needs_models) {
    TAMP_CHECK(offline.models.worker_params.size() ==
               workload.workers.size());
    for (size_t w = 0; w < workload.workers.size(); ++w) {
      predictors[w].params = &offline.models.worker_params[w];
      predictors[w].matching_rate =
          offline.eval.per_worker[w].matching_rate;
    }
  }
  return simulator.Run(method, predictors);
}

}  // namespace tamp::core
