#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace tamp::core {

/// The discrete event kinds of the streaming simulator. The enumerator
/// values are the SAME-INSTANT PRIORITY ORDER and encode the batch-replay
/// predicates exactly (DESIGN.md §4j): at one instant t, everything that
/// the batch loop's "<= now" tests would admit fires before the
/// assignment trigger, and everything its "<= now" availability test
/// would still allow fires after it.
enum class EventKind : uint8_t {
  /// A task's release (release_time <= now admits it into the pool).
  kTaskArrival = 0,
  /// A task's deadline (deadline <= now purges it — so a task expiring
  /// exactly at a trigger instant is never proposed).
  kTaskExpiry = 1,
  /// A worker's availability session starts (now >= start is assignable).
  kWorkerLogin = 2,
  /// A worker's service ends (busy_until > now excludes, so a worker
  /// freeing exactly at a trigger instant IS assignable again).
  kWorkerCompletion = 3,
  /// Run the assignment algorithm over the current pool and fleet.
  kAssignTrigger = 4,
  /// A worker's availability session ends (now <= end is assignable, so a
  /// session ending exactly at a trigger instant still serves it).
  kWorkerLogout = 5,
};

/// Canonical short name ("task_arrival", "assign_trigger", ...); static
/// storage.
std::string_view EventKindName(EventKind kind);

/// One discrete event. `id` is the kind-specific stable identifier (task
/// stream index, flat session index, worker index, or trigger sequence
/// number) that completes the total order.
struct SimEvent {
  double time_min = 0.0;
  EventKind kind = EventKind::kTaskArrival;
  int64_t id = 0;

  friend bool operator==(const SimEvent&, const SimEvent&) = default;
};

/// The total-order tie-break contract: (time, kind, id), lexicographic.
/// Because the order is total over distinct events, the pop sequence of
/// EventQueue is a pure function of the pushed multiset — independent of
/// insertion order, heap layout, and thread count — which is what makes
/// event-driven runs bit-identical (DESIGN.md §4j).
inline bool EventBefore(const SimEvent& a, const SimEvent& b) {
  if (a.time_min != b.time_min) return a.time_min < b.time_min;
  if (a.kind != b.kind) return a.kind < b.kind;
  return a.id < b.id;
}

/// Deterministic priority queue of SimEvents: a binary min-heap under
/// EventBefore. Pop always returns the unique minimum of the current set,
/// so the output sequence is insertion-order-invariant.
class EventQueue {
 public:
  void Push(const SimEvent& event);

  /// Removes and returns the least event (EventBefore order). Requires
  /// !empty().
  SimEvent Pop();

  /// The least event without removing it. Requires !empty().
  const SimEvent& Peek() const;

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

 private:
  std::vector<SimEvent> heap_;
};

}  // namespace tamp::core
