#include "core/run_options.h"

#include <cstdlib>
#include <iostream>
#include <set>

#include "common/obs/metrics.h"
#include "common/obs/trace.h"
#include "common/parallel.h"

namespace tamp::core {

namespace {

Status CheckPositive(double v, const char* field) {
  if (v > 0.0) return Status::Ok();
  return Status::InvalidArgument(std::string(field) + " must be > 0");
}

Status CheckFraction(double v, const char* field) {
  if (v >= 0.0 && v <= 1.0) return Status::Ok();
  return Status::InvalidArgument(std::string(field) + " must be in [0, 1]");
}

/// Parses a non-negative integer flag value; InvalidArgument on junk.
Status ParseInt(const std::string& value, const std::string& flag,
                long long* out) {
  char* end = nullptr;
  *out = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || *out < 0) {
    return Status::InvalidArgument(flag + " expects a non-negative integer, "
                                   "got '" + value + "'");
  }
  return Status::Ok();
}

}  // namespace

Status RunOptions::Validate() const {
  if (threads < 0) {
    return Status::InvalidArgument("threads must be >= 0 (0 = default)");
  }
  TAMP_RETURN_IF_ERROR(CheckPositive(sim.batch_window_min,
                                     "sim.batch_window_min"));
  TAMP_RETURN_IF_ERROR(CheckPositive(sim.sample_period_min,
                                     "sim.sample_period_min"));
  if (sim.prediction_horizon_steps < 1) {
    return Status::InvalidArgument(
        "sim.prediction_horizon_steps (--horizon) must be >= 1");
  }
  TAMP_RETURN_IF_ERROR(CheckPositive(sim.match_radius_km,
                                     "sim.match_radius_km"));
  if (sim.service_time_min < 0.0) {
    return Status::InvalidArgument("sim.service_time_min must be >= 0");
  }
  if (sim.ppi.epsilon < 1) {
    return Status::InvalidArgument("sim.ppi.epsilon must be >= 1");
  }
  TAMP_RETURN_IF_ERROR(CheckPositive(sim.ppi.weight_floor_km,
                                     "sim.ppi.weight_floor_km"));
  if (sim.ggpso.population < 1) {
    return Status::InvalidArgument("sim.ggpso.population must be >= 1");
  }
  if (sim.ggpso.generations < 0) {
    return Status::InvalidArgument("sim.ggpso.generations must be >= 0");
  }
  TAMP_RETURN_IF_ERROR(CheckFraction(sim.ggpso.crossover_rate,
                                     "sim.ggpso.crossover_rate"));
  TAMP_RETURN_IF_ERROR(CheckFraction(sim.ggpso.mutation_rate,
                                     "sim.ggpso.mutation_rate"));
  std::set<AssignMethod> seen;
  for (AssignMethod method : methods) {
    if (!seen.insert(method).second) {
      return Status::InvalidArgument(
          "duplicate assignment method '" +
          std::string(AssignMethodName(method)) + "' in methods");
    }
  }
  return Status::Ok();
}

std::string RunFlagsHelp() {
  return
      "  --dataset=porto|gowalla  workload dataset pair\n"
      "  --workload=SPEC          dataset pair plus scenario: porto,\n"
      "                           porto_surge, porto_churn, gowalla,\n"
      "                           gowalla_surge, gowalla_churn\n"
      "  --seed=N                 workload seed (0 = dataset default)\n"
      "  --threads=N              parallel runtime threads (0 = default)\n"
      "  --horizon=N              forecast horizon steps per worker\n"
      "  --candidates=indexed|dense|incremental  candidate generation:\n"
      "                           spatial-index pruning (default), dense\n"
      "                           T x W sweep, or batch-to-batch delta\n"
      "                           index + row cache + warm-started KM\n"
      "  --forecast=batched|scalar  worker forecasts: the fleet-wide SoA\n"
      "                           engine (default) or the per-worker\n"
      "                           scalar rollout (bit-identical reference)\n"
      "  --engine=event|batch     simulation engine: the event-queue core\n"
      "                           (default) or the batch-synchronous\n"
      "                           replay loop (bit-identical reference)\n"
      "  --sharding=off|components  solve each connected component of the\n"
      "                           candidate graph as its own parallel KM\n"
      "                           shard (plans bit-identical to off)\n"
      "  --methods=A,B,...        assignment methods (UB,LB,KM,PPI,GGPSO;\n"
      "                           default all)\n"
      "  --json-dir=DIR           directory for the BENCH_<target>.json\n"
      "  --trace=PATH             write a Chrome trace_event timeline\n"
      "  --metrics=PATH           write a flat metrics-snapshot JSON\n"
      "  --help                   this text\n";
}

Status ParseRunFlags(int argc, char** argv, RunOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return Status::FailedPrecondition(RunFlagsHelp());
    }
    const std::size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      return Status::InvalidArgument("unknown argument '" + arg +
                                     "' (flags take --name=value form)\n" +
                                     RunFlagsHelp());
    }
    const std::string flag = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    if (flag == "--dataset") {
      StatusOr<data::WorkloadKind> kind = data::ParseWorkloadKind(value);
      if (!kind.ok()) return kind.status();
      options->workload.kind = *kind;
    } else if (flag == "--workload") {
      StatusOr<data::WorkloadSpec> spec = data::ParseWorkloadSpec(value);
      if (!spec.ok()) {
        return Status::InvalidArgument(flag + ": " +
                                       std::string(spec.status().message()));
      }
      options->workload = *spec;
    } else if (flag == "--seed") {
      long long v = 0;
      TAMP_RETURN_IF_ERROR(ParseInt(value, flag, &v));
      options->seed = static_cast<uint64_t>(v);
    } else if (flag == "--threads") {
      long long v = 0;
      TAMP_RETURN_IF_ERROR(ParseInt(value, flag, &v));
      options->threads = static_cast<int>(v);
    } else if (flag == "--horizon") {
      long long v = 0;
      TAMP_RETURN_IF_ERROR(ParseInt(value, flag, &v));
      options->sim.prediction_horizon_steps = static_cast<int>(v);
    } else if (flag == "--candidates") {
      StatusOr<CandidateMode> mode = ParseCandidateMode(value);
      if (!mode.ok()) {
        return Status::InvalidArgument(flag + ": " +
                                       std::string(mode.status().message()));
      }
      options->sim.candidate_mode = *mode;
    } else if (flag == "--forecast") {
      StatusOr<ForecastMode> mode = ParseForecastMode(value);
      if (!mode.ok()) {
        return Status::InvalidArgument(flag + ": " +
                                       std::string(mode.status().message()));
      }
      options->sim.forecast_mode = *mode;
    } else if (flag == "--engine") {
      StatusOr<SimEngine> engine = ParseSimEngine(value);
      if (!engine.ok()) {
        return Status::InvalidArgument(
            flag + ": " + std::string(engine.status().message()));
      }
      options->sim.engine = *engine;
    } else if (flag == "--sharding") {
      StatusOr<ShardMode> mode = ParseShardMode(value);
      if (!mode.ok()) {
        return Status::InvalidArgument(flag + ": " +
                                       std::string(mode.status().message()));
      }
      options->sim.shard_mode = *mode;
    } else if (flag == "--methods") {
      options->methods.clear();
      std::size_t start = 0;
      while (start <= value.size()) {
        std::size_t comma = value.find(',', start);
        if (comma == std::string::npos) comma = value.size();
        StatusOr<AssignMethod> method =
            ParseAssignMethod(value.substr(start, comma - start));
        if (!method.ok()) return method.status();
        options->methods.push_back(*method);
        start = comma + 1;
      }
    } else if (flag == "--json-dir") {
      options->sinks.bench_json_dir = value;
    } else if (flag == "--trace") {
      options->sinks.trace_path = value;
    } else if (flag == "--metrics") {
      options->sinks.metrics_path = value;
    } else {
      return Status::InvalidArgument("unknown flag '" + flag + "'\n" +
                                     RunFlagsHelp());
    }
  }
  return Status::Ok();
}

void ApplyRunOptions(const RunOptions& options) {
  if (options.threads > 0) SetParallelThreadCount(options.threads);
  if (!options.sinks.trace_path.empty()) {
    obs::TraceRecorder::Global().Enable();
  }
}

Status WriteRunArtifacts(const RunOptions& options) {
  if (!options.sinks.trace_path.empty()) {
    obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
    TAMP_RETURN_IF_ERROR(
        recorder.WriteChromeTrace(options.sinks.trace_path));
    std::cout << "Trace: " << options.sinks.trace_path << " ("
              << recorder.Snapshot().size() << " spans";
    if (recorder.dropped() > 0) {
      std::cout << ", " << recorder.dropped() << " dropped";
    }
    std::cout << ")\n";
  }
  if (!options.sinks.metrics_path.empty()) {
    TAMP_RETURN_IF_ERROR(obs::WriteStatsJson(options.sinks.metrics_path));
    std::cout << "Metrics: " << options.sinks.metrics_path << "\n";
  }
  return Status::Ok();
}

const std::vector<AssignMethod>& EffectiveMethods(const RunOptions& options) {
  return options.methods.empty() ? AllAssignMethods() : options.methods;
}

}  // namespace tamp::core
