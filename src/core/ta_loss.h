#pragma once

#include <functional>
#include <vector>

#include "geo/grid.h"
#include "geo/point.h"
#include "geo/spatial_index.h"

namespace tamp::core {

/// Hyper-parameters of the task-assignment-oriented loss weight (Eq. 7).
struct TaLossParams {
  /// kappa in (0,1): strength of the historical-task-density term.
  double kappa = 0.5;
  /// delta > 0: base weight so sparse regions still contribute.
  double delta = 0.5;
  /// d^q: radius (km) of the disk whose historical-task count drives the
  /// weight at a trajectory point.
  double dq_km = 1.0;
  /// Stability cap on f_w. When the historical tasks concentrate on a few
  /// tight hotspots (the Foursquare-like workload), the raw Eq. 7 ratio
  /// count/rho^t spikes by orders of magnitude and destabilizes training;
  /// capping preserves the ordering of weights while bounding the
  /// effective learning-rate amplification. Set to +inf to disable.
  double max_weight = 4.0;
  /// Future-work extension: Section III-C deliberately ignores the
  /// temporal relationship between trajectories and tasks. When > 0,
  /// WeightAt(point, time) counts only historical tasks whose time-of-day
  /// lies within this window (minutes, hour-bucket granularity) of the
  /// queried time — demand at 9am no longer inflates weights at 9pm.
  double temporal_window_min = 0.0;
};

/// The weighted function f_w of Eq. 7:
///   f_w(l) = kappa * |{tau : dis(tau, l) < d^q}| / rho^t + delta,
/// where rho^t is the expected number of historical tasks in a disk of
/// radius d^q (the unit-space normalizer). Trajectory points in task-dense
/// areas get larger loss weights, steering the prediction model toward
/// accuracy exactly where assignments happen (Challenge II).
class TaskOrientedWeighter {
 public:
  TaskOrientedWeighter(const geo::GridSpec& grid,
                       const std::vector<geo::Point>& historical_tasks,
                       const TaLossParams& params);

  /// Time-aware construction (requires params.temporal_window_min > 0 for
  /// WeightAt to differ from Weight): historical tasks carry the
  /// time-of-day they were posted at.
  TaskOrientedWeighter(const geo::GridSpec& grid,
                       const std::vector<geo::TimedPoint>& historical_tasks,
                       const TaLossParams& params);

  /// f_w at a map location (km coordinates).
  double Weight(const geo::Point& location_km) const;

  /// Temporally-scoped f_w (the future-work extension): counts only
  /// historical tasks within params.temporal_window_min of `time_min`'s
  /// time-of-day. Falls back to Weight() when the window is disabled or
  /// the weighter was built without timestamps.
  double WeightAt(const geo::Point& location_km, double time_min) const;

  /// The rho^t normalizer in use.
  double rho() const { return rho_; }

  /// Adapter for MetaTrainConfig::weight_fn. The returned callable holds a
  /// pointer to this weighter, which must outlive it.
  std::function<double(const geo::Point&)> AsFunction() const;

 private:
  geo::SpatialCountIndex index_;
  TaLossParams params_;
  double rho_;
  /// Hour-of-day buckets for the temporal extension (empty when the
  /// weighter was built without timestamps).
  std::vector<geo::SpatialCountIndex> hour_indexes_;
  double map_area_km2_ = 0.0;
};

}  // namespace tamp::core
