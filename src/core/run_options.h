#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "core/simulator.h"
#include "data/workload.h"

namespace tamp::core {

/// Where a run writes its machine-readable artifacts. Every sink is
/// optional; empty string = sink off (bench JSON falls back to the
/// TAMP_BENCH_JSON_DIR environment variable, then the working directory).
struct OutputSinks {
  /// Directory for the BENCH_<target>.json report a bench target writes.
  std::string bench_json_dir;
  /// Chrome trace_event timeline (--trace=out.json). Non-empty enables
  /// span recording for the whole run.
  std::string trace_path;
  /// Flat metrics-snapshot JSON (--metrics=out.json): the
  /// obs::MetricsRegistry snapshot plus per-span aggregates when tracing.
  std::string metrics_path;
};

/// The one façade every runnable entry point (bench mains, examples)
/// configures itself from, so adding a knob or an output sink touches this
/// struct and its parser — not ten mains.
///
/// Lifecycle: fill (or ParseRunFlags over argv), Validate(), then
/// ApplyRunOptions() once before the run and WriteRunArtifacts() after.
struct RunOptions {
  /// Which workload to generate: a dataset pair plus a scenario
  /// (baseline / surge / churn). --dataset selects the pair, keeping the
  /// scenario; --workload selects both at once ("porto_surge").
  data::WorkloadSpec workload;
  /// Workload seed; 0 = the dataset's calibrated default.
  uint64_t seed = 0;
  /// Assignment methods to run, in order. Empty = AllAssignMethods().
  std::vector<AssignMethod> methods;
  /// Online-stage settings, including the forecast horizon
  /// (sim.prediction_horizon_steps — the --horizon flag).
  SimulatorConfig sim;
  /// Worker threads for the deterministic parallel runtime; 0 = inherit
  /// TAMP_THREADS / hardware default.
  int threads = 0;
  OutputSinks sinks;

  /// Checks every field is in range (thread count non-negative, simulator
  /// windows/radii positive, GGPSO rates in [0,1], no duplicate methods,
  /// ...). InvalidArgument with a field-naming message on the first
  /// violation.
  Status Validate() const;
};

/// One-line-per-flag help text for the flags ParseRunFlags understands.
std::string RunFlagsHelp();

/// Parses the shared command-line surface into `options` (which carries
/// the caller's defaults): --dataset=porto|gowalla,
/// --workload=porto|porto_surge|gowalla_churn|..., --seed=N, --threads=N,
/// --horizon=N, --candidates=indexed|dense|incremental,
/// --forecast=batched|scalar, --engine=event|batch, --methods=KM,PPI,...,
/// --json-dir=DIR, --trace=PATH, --metrics=PATH, --help. The mode flags
/// parse through the typed enums (ParseCandidateMode, ParseForecastMode,
/// ParseSimEngine, data::ParseWorkloadSpec) so flag strings and enum names
/// cannot drift. Unknown flags and malformed values are InvalidArgument;
/// --help is a kFailedPrecondition carrying RunFlagsHelp() so callers
/// print-and-exit-0.
Status ParseRunFlags(int argc, char** argv, RunOptions* options);

/// Applies the process-wide parts of a validated RunOptions: sets the
/// parallel thread count and enables trace recording when a trace sink is
/// configured. Call once, before the run.
void ApplyRunOptions(const RunOptions& options);

/// Writes the configured trace / metrics sinks (no-ops when empty). Call
/// once, after the run. Prints each written path to stdout.
Status WriteRunArtifacts(const RunOptions& options);

/// The methods a run executes: `methods` if non-empty, else all.
const std::vector<AssignMethod>& EffectiveMethods(const RunOptions& options);

}  // namespace tamp::core
