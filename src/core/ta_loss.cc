#include "core/ta_loss.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tamp::core {
namespace {

std::vector<geo::Point> DropTimes(const std::vector<geo::TimedPoint>& timed) {
  std::vector<geo::Point> out;
  out.reserve(timed.size());
  for (const auto& p : timed) out.push_back(p.loc);
  return out;
}

int HourOfDay(double time_min) {
  double tod = std::fmod(time_min, 1440.0);
  if (tod < 0.0) tod += 1440.0;
  return std::min(23, static_cast<int>(tod / 60.0));
}

void ValidateParams(const TaLossParams& params) {
  TAMP_CHECK(params.kappa > 0.0 && params.kappa < 1.0);
  TAMP_CHECK(params.delta > 0.0);
  TAMP_CHECK(params.dq_km > 0.0);
}

}  // namespace

TaskOrientedWeighter::TaskOrientedWeighter(
    const geo::GridSpec& grid, const std::vector<geo::Point>& historical_tasks,
    const TaLossParams& params)
    : index_(grid, historical_tasks), params_(params),
      rho_(index_.MeanCountPerDisk(params.dq_km)),
      map_area_km2_(grid.width_km() * grid.height_km()) {
  ValidateParams(params);
}

TaskOrientedWeighter::TaskOrientedWeighter(
    const geo::GridSpec& grid,
    const std::vector<geo::TimedPoint>& historical_tasks,
    const TaLossParams& params)
    : index_(grid, DropTimes(historical_tasks)), params_(params),
      rho_(index_.MeanCountPerDisk(params.dq_km)),
      map_area_km2_(grid.width_km() * grid.height_km()) {
  ValidateParams(params);
  // Bucket tasks by hour of day for the temporal extension.
  std::vector<std::vector<geo::Point>> buckets(24);
  for (const auto& task : historical_tasks) {
    buckets[static_cast<size_t>(HourOfDay(task.time_min))].push_back(
        task.loc);
  }
  hour_indexes_.reserve(24);
  for (const auto& bucket : buckets) {
    hour_indexes_.emplace_back(grid, bucket);
  }
}

double TaskOrientedWeighter::Weight(const geo::Point& location_km) const {
  int count = index_.CountWithin(location_km, params_.dq_km);
  double weight =
      params_.kappa * static_cast<double>(count) / rho_ + params_.delta;
  return std::min(weight, params_.max_weight);
}

double TaskOrientedWeighter::WeightAt(const geo::Point& location_km,
                                      double time_min) const {
  if (params_.temporal_window_min <= 0.0 || hour_indexes_.empty()) {
    return Weight(location_km);
  }
  // Hours whose midpoint falls within the window of time_min's
  // time-of-day (wrapping at midnight).
  double tod = std::fmod(time_min, 1440.0);
  if (tod < 0.0) tod += 1440.0;
  int count = 0;
  size_t in_window_total = 0;
  for (int hour = 0; hour < 24; ++hour) {
    double mid = hour * 60.0 + 30.0;
    double delta = std::fabs(mid - tod);
    delta = std::min(delta, 1440.0 - delta);  // Wrap-around distance.
    if (delta > params_.temporal_window_min) continue;
    const size_t hi = static_cast<size_t>(hour);
    count += hour_indexes_[hi].CountWithin(location_km, params_.dq_km);
    in_window_total += hour_indexes_[hi].num_points();
  }
  // rho restricted to the in-window tasks so the ratio stays calibrated.
  double disk = M_PI * params_.dq_km * params_.dq_km;
  double rho_window = std::max(
      static_cast<double>(in_window_total) * disk / map_area_km2_, 1e-6);
  double weight =
      params_.kappa * static_cast<double>(count) / rho_window + params_.delta;
  return std::min(weight, params_.max_weight);
}

std::function<double(const geo::Point&)> TaskOrientedWeighter::AsFunction()
    const {
  return [this](const geo::Point& p) { return Weight(p); };
}

}  // namespace tamp::core
