#pragma once

#include <vector>

#include "geo/grid.h"
#include "geo/point.h"
#include "geo/trajectory.h"
#include "nn/batched_seq2seq.h"
#include "nn/encoder_decoder.h"

namespace tamp::core {

/// Continuously forecasts a worker's routine (Def. 3's "continuously
/// forecast w's subsequent mobility routine"): encodes the `recent`
/// observed locations (km) and autoregressively rolls the decoder out for
/// `horizon_steps` future positions, re-encoding its own predictions, so
/// the predicted routine can span more steps than the model's native
/// seq_out. Returned points carry timestamps now + i * step_period_min.
/// `scratch` (optional) reuses the model's forward buffers across calls.
std::vector<geo::TimedPoint> RolloutPredict(
    const nn::EncoderDecoder& model, const std::vector<double>& params,
    const std::vector<geo::Point>& recent_km, const geo::GridSpec& grid,
    int horizon_steps, double now_min, double step_period_min,
    nn::PredictScratch* scratch = nullptr);

/// Cross-batch state for RolloutPredictBatch: the engine scratch plus the
/// fleet-wide SoA sliding window and prediction buffers. Grow-only — the
/// simulator keeps one for its whole run, so steady-state batches are
/// allocation-free (PR 7's AssignReuse idiom applied to forecasting).
struct FleetForecastScratch {
  nn::BatchedSeq2SeqScratch engine;
  std::vector<double> window;  // [seq_len][input_dim][rows], row-ordered.
  std::vector<double> preds;   // [seq_out][output_dim][rows].
};

/// Fleet-batched RolloutPredict: one autoregressive rollout for all rows
/// at once through the SoA BatchedSeq2Seq engine. Row r's output is
/// bitwise identical to
///   RolloutPredict(model, *row_params[r], recent_km[r], ...)
/// for an EncoderDecoder sharing `engine`'s config — the window
/// normalization, time-of-day feature, denormalization and window slide
/// are element-wise identical, and the engine preserves the scalar
/// per-element dot-product order. All rows must share one window length
/// (the simulator's observation window is uniform by construction).
/// `(*out)[r]` receives row r's horizon_steps predicted points.
void RolloutPredictBatch(
    const nn::BatchedSeq2Seq& engine,
    const std::vector<const std::vector<double>*>& row_params,
    const std::vector<std::vector<geo::Point>>& recent_km,
    const geo::GridSpec& grid, int horizon_steps, double now_min,
    double step_period_min, FleetForecastScratch& scratch,
    std::vector<std::vector<geo::TimedPoint>>* out);

}  // namespace tamp::core
