#pragma once

#include <vector>

#include "geo/grid.h"
#include "geo/point.h"
#include "geo/trajectory.h"
#include "nn/encoder_decoder.h"

namespace tamp::core {

/// Continuously forecasts a worker's routine (Def. 3's "continuously
/// forecast w's subsequent mobility routine"): encodes the `recent`
/// observed locations (km) and autoregressively rolls the decoder out for
/// `horizon_steps` future positions, re-encoding its own predictions, so
/// the predicted routine can span more steps than the model's native
/// seq_out. Returned points carry timestamps now + i * step_period_min.
std::vector<geo::TimedPoint> RolloutPredict(
    const nn::EncoderDecoder& model, const std::vector<double>& params,
    const std::vector<geo::Point>& recent_km, const geo::GridSpec& grid,
    int horizon_steps, double now_min, double step_period_min);

}  // namespace tamp::core
