#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "assign/types.h"
#include "core/event_queue.h"
#include "core/simulator.h"
#include "data/workload.h"

namespace tamp::core {

/// Aggregate event counts of one EventSimulator::Run. Deterministic: a
/// pure function of the workload and the trigger schedule (bench_stream
/// gates these in bench/baselines/BENCH_stream.json), independent of
/// thread count.
struct EventStats {
  int64_t events = 0;  // Total events processed (sum of the per-kind rows).
  int64_t task_arrivals = 0;
  int64_t task_expiries = 0;
  int64_t worker_logins = 0;
  int64_t worker_completions = 0;
  int64_t assign_triggers = 0;
  int64_t worker_logouts = 0;
  /// Accepted assignments aborted mid-service (subset of the completions).
  int64_t dropouts = 0;
};

/// The event-queue simulation core (DESIGN.md §4j). The client schedules
/// assignment triggers (BatchSimulator enqueues one per batch window);
/// Run() seeds the workload's own events — task arrivals and deadline
/// expiries, one login/logout pair per worker availability session
/// (intersected with the worker's test horizon), and a completion per
/// accepted assignment — and drains the queue in (time, kind, id) order.
///
/// State transitions per kind:
///  - task_arrival       pool.push_back(stream[id]) (also re-queues a
///                       dropped task, as a fresh copy: decline memory
///                       does not survive a dropout).
///  - task_expiry        removes stream[id]'s task from the pool if still
///                       pending (lazy no-op when already accepted).
///  - worker_login/out   toggles the session's worker online flag.
///                       Sessions must be disjoint (generated workloads
///                       are; see data::WorkerRecord::availability).
///  - worker_completion  frees the worker (id = worker index).
///  - assign_trigger     runs one BatchAssignStep over the pending pool
///                       and the online, non-busy fleet, then applies the
///                       outcome: bookkeeping, completion events, and —
///                       when the workload carries a DropoutModel — the
///                       per-(worker, task) dropout draw.
///
/// Because the event order is total and every draw is keyed by stable ids,
/// a run is bit-identical at any thread count, and — on dropout-free
/// workloads — bit-identical to BatchSimulator's batch-replay loop (the
/// parity ctest).
class EventSimulator {
 public:
  /// `step` holds the shared per-batch machinery (and its warm forecast
  /// scratch); it must outlive the simulator.
  EventSimulator(const data::Workload& workload,
                 const SimulatorConfig& config, BatchAssignStep& step);

  /// Enqueues one assignment trigger. Call any number of times before
  /// Run(); the trigger's stable id is its call sequence number.
  void ScheduleAssignTrigger(double time_min);

  /// Seeds the workload events and drains the queue. Single-shot: one
  /// Run per instance.
  SimMetrics Run(AssignMethod method,
                 const std::vector<WorkerPredictor>& predictors);

  /// Event counts of the completed Run.
  const EventStats& stats() const { return stats_; }

  /// When set, Run appends every processed event in pop order — the
  /// determinism tests assert the trace is identical across thread counts
  /// and insertion orders.
  void set_event_trace(std::vector<SimEvent>* trace) { trace_ = trace; }

 private:
  void SeedWorkloadEvents();
  void HandleAssignTrigger(double now, AssignMethod method,
                           const std::vector<WorkerPredictor>& predictors,
                           SimMetrics* metrics);
  /// Index into workload.task_stream of the task with this id.
  size_t StreamIndexOf(int task_id) const;
  /// Removes the task with this id from the pending pool if present.
  void ErasePooledTask(int task_id);

  const data::Workload& workload_;
  const SimulatorConfig& config_;
  BatchAssignStep& step_;

  EventQueue queue_;
  int64_t next_trigger_id_ = 0;
  /// Worker index behind each flat login/logout session id.
  std::vector<int> session_worker_;
  std::deque<assign::SpatialTask> pool_;  // Pending (released, unexpired).
  std::vector<char> online_;  // Inside an availability session right now.
  std::vector<char> busy_;    // Serving an accepted task right now.
  std::vector<int> available_;  // Per-trigger scratch.
  EventStats stats_;
  std::vector<SimEvent>* trace_ = nullptr;
};

}  // namespace tamp::core
