#include "core/event_sim.h"

#include <algorithm>

#include "common/check.h"
#include "common/obs/metrics.h"
#include "common/obs/trace.h"
#include "common/rng.h"

namespace tamp::core {

namespace {

/// Seed for the per-(worker, task) dropout draw: a pure function of the
/// pair, so the outcome is independent of event order, thread count, and
/// engine. The multipliers are the splitmix64 constants; Rng re-mixes the
/// result anyway, this only has to separate nearby (worker, task) pairs.
uint64_t DropoutDrawSeed(uint64_t model_seed, int worker_id, int task_id) {
  constexpr uint64_t kWorkerMul = 0x9E3779B97F4A7C15ULL;
  constexpr uint64_t kTaskMul = 0xBF58476D1CE4E5B9ULL;
  uint64_t mixed = model_seed;
  mixed ^= static_cast<uint64_t>(static_cast<int64_t>(worker_id)) * kWorkerMul;
  mixed ^= static_cast<uint64_t>(static_cast<int64_t>(task_id)) * kTaskMul;
  return mixed;
}

}  // namespace

EventSimulator::EventSimulator(const data::Workload& workload,
                               const SimulatorConfig& config,
                               BatchAssignStep& step)
    : workload_(workload), config_(config), step_(step) {
  online_.assign(workload_.workers.size(), 0);
  busy_.assign(workload_.workers.size(), 0);
}

void EventSimulator::ScheduleAssignTrigger(double time_min) {
  queue_.Push({time_min, EventKind::kAssignTrigger, next_trigger_id_});
  ++next_trigger_id_;
}

void EventSimulator::SeedWorkloadEvents() {
  // Every task contributes its arrival and its deadline expiry, keyed by
  // stream index (the stream is sorted by release time, so same-instant
  // arrivals pool in stream order — exactly the batch loop's admit order).
  for (size_t i = 0; i < workload_.task_stream.size(); ++i) {
    const assign::SpatialTask& task = workload_.task_stream[i];
    queue_.Push({task.release_time_min, EventKind::kTaskArrival,
                 static_cast<int64_t>(i)});
    queue_.Push({task.deadline_min, EventKind::kTaskExpiry,
                 static_cast<int64_t>(i)});
  }
  // One login/logout pair per availability session, clipped to the
  // worker's test horizon (outside it the simulator has no ground-truth
  // position, so the batch predicate excludes the worker there too).
  for (size_t w = 0; w < workload_.workers.size(); ++w) {
    const data::WorkerRecord& record = workload_.workers[w];
    if (record.test.empty()) continue;
    const double horizon_lo = record.test.start_time();
    const double horizon_hi = record.test.end_time();
    // Mirror WorkerRecord::AvailableAt's fallback for hand-built records.
    std::vector<data::AvailabilitySession> envelope;
    const std::vector<data::AvailabilitySession>& sessions =
        record.availability.empty()
            ? (envelope = {{record.online_start_min, record.online_end_min}})
            : record.availability;
    for (const data::AvailabilitySession& session : sessions) {
      const double login = std::max(session.start_min, horizon_lo);
      const double logout = std::min(session.end_min, horizon_hi);
      if (login > logout) continue;
      const int64_t session_id =
          static_cast<int64_t>(session_worker_.size());
      session_worker_.push_back(static_cast<int>(w));
      queue_.Push({login, EventKind::kWorkerLogin, session_id});
      queue_.Push({logout, EventKind::kWorkerLogout, session_id});
    }
  }
}

size_t EventSimulator::StreamIndexOf(int task_id) const {
  for (size_t i = 0; i < workload_.task_stream.size(); ++i) {
    if (workload_.task_stream[i].id == task_id) return i;
  }
  TAMP_CHECK_MSG(false, "task id not in the workload stream");
  return 0;
}

void EventSimulator::ErasePooledTask(int task_id) {
  for (auto it = pool_.begin(); it != pool_.end(); ++it) {
    if (it->id == task_id) {
      pool_.erase(it);
      return;
    }
  }
}

void EventSimulator::HandleAssignTrigger(
    double now, AssignMethod method,
    const std::vector<WorkerPredictor>& predictors, SimMetrics* metrics) {
  static obs::Counter& dropouts_counter =
      obs::MetricsRegistry::Global().GetCounter("sim.dropouts");
  static obs::Counter& skips_counter =
      obs::MetricsRegistry::Global().GetCounter("sim.batch_skips");

  // The batch loop's skip conditions: no pending tasks, or nobody online
  // and free. (Busy/online flags were already settled by the same-instant
  // completion/login events, which sort before the trigger.) A skipped
  // trigger still counts — the batch-replay loop increments the same
  // counter at its matching `continue` sites, and the cross-engine
  // accounting test pins the two totals equal.
  if (pool_.empty()) {
    skips_counter.Increment();
    return;
  }
  available_.clear();
  for (size_t w = 0; w < workload_.workers.size(); ++w) {
    if (!online_[w] || busy_[w]) continue;
    available_.push_back(static_cast<int>(w));
  }
  if (available_.empty()) {
    skips_counter.Increment();
    return;
  }

  BatchAssignStep::Outcome outcome =
      step_.Step(method, predictors, now, pool_, available_);
  metrics->assignments += outcome.assignments;
  metrics->assign_seconds += outcome.assign_seconds;
  for (const auto& [task_id, worker_id] : outcome.declined) {
    for (auto& pooled : pool_) {
      if (pooled.id == task_id) {
        pooled.declined_worker_ids.push_back(worker_id);
        break;
      }
    }
  }
  for (const BatchAssignStep::Accepted& accepted : outcome.accepted) {
    ++metrics->accepted;
    const data::WorkerRecord& record =
        workload_.workers[static_cast<size_t>(accepted.worker)];
    // The dropout draw (churn workloads): keyed by (model seed, worker,
    // task), decided at acceptance so exactly one completion event is ever
    // scheduled per acceptance — at the real service end.
    double service_end = accepted.busy_until_min;
    bool dropped = false;
    if (workload_.dropout.prob > 0.0) {
      Rng draw(DropoutDrawSeed(workload_.dropout.seed, record.id,
                               accepted.task_id));
      dropped = draw.Bernoulli(workload_.dropout.prob);
      if (dropped) {
        // The worker aborts partway through the service interval.
        service_end =
            now + draw.Uniform01() * (accepted.busy_until_min - now);
      }
    }
    busy_[static_cast<size_t>(accepted.worker)] = 1;
    queue_.Push({service_end, EventKind::kWorkerCompletion,
                 static_cast<int64_t>(accepted.worker)});
    ErasePooledTask(accepted.task_id);
    if (dropped) {
      ++metrics->dropouts;
      ++stats_.dropouts;
      dropouts_counter.Increment();
      // The aborted task returns to the pool (fresh arrival) if it can
      // still meet its deadline; otherwise it is lost.
      const size_t stream_index = StreamIndexOf(accepted.task_id);
      if (service_end <
          workload_.task_stream[stream_index].deadline_min) {
        queue_.Push({service_end, EventKind::kTaskArrival,
                     static_cast<int64_t>(stream_index)});
      }
    } else {
      ++metrics->completed;
      metrics->total_cost_km += accepted.detour_km;
    }
  }
}

SimMetrics EventSimulator::Run(
    AssignMethod method, const std::vector<WorkerPredictor>& predictors) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter& events_counter = registry.GetCounter("sim.events");
  static obs::Counter& arrival_counter =
      registry.GetCounter("sim.ev_task_arrival");
  static obs::Counter& expiry_counter =
      registry.GetCounter("sim.ev_task_expiry");
  static obs::Counter& login_counter =
      registry.GetCounter("sim.ev_worker_login");
  static obs::Counter& completion_counter =
      registry.GetCounter("sim.ev_worker_completion");
  static obs::Counter& trigger_counter =
      registry.GetCounter("sim.ev_assign_trigger");
  static obs::Counter& logout_counter =
      registry.GetCounter("sim.ev_worker_logout");

  obs::TraceSpan run_span("sim.run");
  TAMP_CHECK(predictors.size() == workload_.workers.size());
  SimMetrics metrics;
  metrics.total_tasks = static_cast<int>(workload_.task_stream.size());
  if (workload_.workers.empty() || workload_.task_stream.empty()) {
    return metrics;
  }

  SeedWorkloadEvents();
  while (!queue_.empty()) {
    const SimEvent event = queue_.Pop();
    if (trace_ != nullptr) trace_->push_back(event);
    ++stats_.events;
    events_counter.Increment();
    switch (event.kind) {
      case EventKind::kTaskArrival:
        ++stats_.task_arrivals;
        arrival_counter.Increment();
        pool_.push_back(
            workload_.task_stream[static_cast<size_t>(event.id)]);
        break;
      case EventKind::kTaskExpiry:
        ++stats_.task_expiries;
        expiry_counter.Increment();
        ErasePooledTask(
            workload_.task_stream[static_cast<size_t>(event.id)].id);
        break;
      case EventKind::kWorkerLogin:
        ++stats_.worker_logins;
        login_counter.Increment();
        online_[static_cast<size_t>(
            session_worker_[static_cast<size_t>(event.id)])] = 1;
        break;
      case EventKind::kWorkerCompletion:
        ++stats_.worker_completions;
        completion_counter.Increment();
        busy_[static_cast<size_t>(event.id)] = 0;
        break;
      case EventKind::kAssignTrigger:
        ++stats_.assign_triggers;
        trigger_counter.Increment();
        HandleAssignTrigger(event.time_min, method, predictors, &metrics);
        break;
      case EventKind::kWorkerLogout:
        ++stats_.worker_logouts;
        logout_counter.Increment();
        online_[static_cast<size_t>(
            session_worker_[static_cast<size_t>(event.id)])] = 0;
        break;
    }
  }
  return metrics;
}

}  // namespace tamp::core
