#pragma once

#include <memory>
#include <vector>

#include "assign/incremental.h"
#include "core/simulator.h"
#include "core/ta_loss.h"
#include "data/workload.h"
#include "meta/trainer.h"

namespace tamp::core {

/// Configuration of the full TAMP system: offline training plus online
/// batch assignment.
struct PipelineConfig {
  meta::TrainerConfig trainer;
  meta::MetaAlgorithm meta_algorithm = meta::MetaAlgorithm::kGttaml;
  /// true: train with the task-assignment-oriented loss (Eqs. 6-7);
  /// false: plain MSE (the KM-loss / PPI-loss ablation variants).
  bool use_ta_loss = true;
  TaLossParams ta_loss;
  SimulatorConfig sim;
};

/// Result of the offline stage: per-worker models plus their measured
/// prediction quality (the matching rates feed PPI).
struct OfflineResult {
  meta::TrainedModels models;
  meta::EvalResult eval;
};

/// The public entry point of the library: the two-stage TAMP platform of
/// Fig. 1. TrainOffline learns per-worker mobility models (Section III-B/C)
/// and estimates their matching rates; RunOnline replays the task stream
/// through the batch simulator with the chosen assignment method
/// (Section III-D).
class TampPipeline {
 public:
  explicit TampPipeline(const PipelineConfig& config);

  const PipelineConfig& config() const { return config_; }

  /// Offline stage: builds the Eq. 7 weighter from the workload's
  /// historical tasks (when use_ta_loss), trains with the configured
  /// meta-learning algorithm, and evaluates RMSE/MAE/MR per worker.
  OfflineResult TrainOffline(const data::Workload& workload);

  /// Online stage: runs the batch simulator with one assignment method
  /// against models produced by TrainOffline. For UB/LB, `offline` may be
  /// any result (their decisions ignore the models).
  SimMetrics RunOnline(const data::Workload& workload,
                       const OfflineResult& offline, AssignMethod method);

 private:
  PipelineConfig config_;
  /// Cross-batch (and cross-run) reuse state consumed by RunOnline when
  /// sim.candidate_mode is kIncremental; created lazily on the first such
  /// run and
  /// kept for the pipeline's lifetime so later runs revisiting the same
  /// batch instants hit the engine's row cache.
  std::unique_ptr<assign::AssignReuse> assign_reuse_;
};

}  // namespace tamp::core
