#include "core/event_queue.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tamp::core {

std::string_view EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kTaskArrival:
      return "task_arrival";
    case EventKind::kTaskExpiry:
      return "task_expiry";
    case EventKind::kWorkerLogin:
      return "worker_login";
    case EventKind::kWorkerCompletion:
      return "worker_completion";
    case EventKind::kAssignTrigger:
      return "assign_trigger";
    case EventKind::kWorkerLogout:
      return "worker_logout";
  }
  return "?";
}

namespace {

/// std::*_heap comparators build a max-heap, so invert EventBefore.
bool EventAfter(const SimEvent& a, const SimEvent& b) {
  return EventBefore(b, a);
}

}  // namespace

void EventQueue::Push(const SimEvent& event) {
  TAMP_DCHECK(std::isfinite(event.time_min));
  heap_.push_back(event);
  std::push_heap(heap_.begin(), heap_.end(), EventAfter);
}

SimEvent EventQueue::Pop() {
  TAMP_CHECK_MSG(!heap_.empty(), "Pop on empty EventQueue");
  std::pop_heap(heap_.begin(), heap_.end(), EventAfter);
  SimEvent event = heap_.back();
  heap_.pop_back();
  return event;
}

const SimEvent& EventQueue::Peek() const {
  TAMP_CHECK_MSG(!heap_.empty(), "Peek on empty EventQueue");
  return heap_.front();
}

}  // namespace tamp::core
