#include "core/rollout.h"

#include "common/check.h"

namespace tamp::core {

std::vector<geo::TimedPoint> RolloutPredict(
    const nn::EncoderDecoder& model, const std::vector<double>& params,
    const std::vector<geo::Point>& recent_km, const geo::GridSpec& grid,
    int horizon_steps, double now_min, double step_period_min) {
  TAMP_CHECK(!recent_km.empty());
  TAMP_CHECK(horizon_steps >= 1);
  const int input_dim = model.config().input_dim;
  TAMP_CHECK_MSG(input_dim == 2 || input_dim == 3,
                 "rollout supports (x, y) or (x, y, time-of-day) inputs");

  // Observed inputs: the i-th recent point was reported at
  // now - (n-1-i) * step_period.
  auto time_of_day = [](double t_min) {
    return std::fmod(t_min, 1440.0) / 1440.0;
  };
  nn::Sequence window;
  window.reserve(recent_km.size());
  for (size_t i = 0; i < recent_km.size(); ++i) {
    geo::Point n = grid.Normalize(recent_km[i]);
    double t = now_min - (static_cast<double>(recent_km.size() - 1 - i)) *
                             step_period_min;
    std::vector<double> step = {n.x, n.y};
    if (input_dim == 3) step.push_back(time_of_day(t));
    window.push_back(std::move(step));
  }
  const size_t window_size = window.size();

  std::vector<geo::TimedPoint> out;
  out.reserve(static_cast<size_t>(horizon_steps));
  while (static_cast<int>(out.size()) < horizon_steps) {
    nn::Sequence pred = model.Predict(params, window);
    for (const auto& step : pred) {
      if (static_cast<int>(out.size()) >= horizon_steps) break;
      geo::Point km = grid.Denormalize({step[0], step[1]});
      double t = now_min + (static_cast<double>(out.size()) + 1.0) *
                               step_period_min;
      out.push_back({km, t});
      // Slide the window: feed the prediction back as the latest
      // observation (with its future timestamp when time is an input).
      std::vector<double> next = {step[0], step[1]};
      if (input_dim == 3) next.push_back(time_of_day(t));
      window.push_back(std::move(next));
      if (window.size() > window_size) window.erase(window.begin());
    }
  }
  return out;
}

}  // namespace tamp::core
