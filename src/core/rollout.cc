#include "core/rollout.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/check.h"

namespace tamp::core {

std::vector<geo::TimedPoint> RolloutPredict(
    const nn::EncoderDecoder& model, const std::vector<double>& params,
    const std::vector<geo::Point>& recent_km, const geo::GridSpec& grid,
    int horizon_steps, double now_min, double step_period_min,
    nn::PredictScratch* scratch) {
  TAMP_CHECK(!recent_km.empty());
  TAMP_CHECK(horizon_steps >= 1);
  const int input_dim = model.config().input_dim;
  TAMP_CHECK_MSG(input_dim == 2 || input_dim == 3,
                 "rollout supports (x, y) or (x, y, time-of-day) inputs");

  // Observed inputs: the i-th recent point was reported at
  // now - (n-1-i) * step_period.
  auto time_of_day = [](double t_min) {
    return std::fmod(t_min, 1440.0) / 1440.0;
  };
  nn::Sequence window;
  window.reserve(recent_km.size());
  for (size_t i = 0; i < recent_km.size(); ++i) {
    geo::Point n = grid.Normalize(recent_km[i]);
    double t = now_min - (static_cast<double>(recent_km.size() - 1 - i)) *
                             step_period_min;
    std::vector<double> step = {n.x, n.y};
    if (input_dim == 3) step.push_back(time_of_day(t));
    window.push_back(std::move(step));
  }
  const size_t window_size = window.size();

  std::vector<geo::TimedPoint> out;
  out.reserve(static_cast<size_t>(horizon_steps));
  while (static_cast<int>(out.size()) < horizon_steps) {
    nn::Sequence pred = model.Predict(params, window, scratch);
    for (const auto& step : pred) {
      if (static_cast<int>(out.size()) >= horizon_steps) break;
      geo::Point km = grid.Denormalize({step[0], step[1]});
      double t = now_min + (static_cast<double>(out.size()) + 1.0) *
                               step_period_min;
      out.push_back({km, t});
      // Slide the window: feed the prediction back as the latest
      // observation (with its future timestamp when time is an input).
      std::vector<double> next = {step[0], step[1]};
      if (input_dim == 3) next.push_back(time_of_day(t));
      window.push_back(std::move(next));
      if (window.size() > window_size) window.erase(window.begin());
    }
  }
  return out;
}

void RolloutPredictBatch(
    const nn::BatchedSeq2Seq& engine,
    const std::vector<const std::vector<double>*>& row_params,
    const std::vector<std::vector<geo::Point>>& recent_km,
    const geo::GridSpec& grid, int horizon_steps, double now_min,
    double step_period_min, FleetForecastScratch& scratch,
    std::vector<std::vector<geo::TimedPoint>>* out) {
  TAMP_CHECK(out != nullptr);
  TAMP_CHECK(recent_km.size() == row_params.size());
  const size_t rows = row_params.size();
  out->resize(rows);
  if (rows == 0) return;
  TAMP_CHECK(horizon_steps >= 1);
  const int input_dim = engine.config().input_dim;
  TAMP_CHECK_MSG(input_dim == 2 || input_dim == 3,
                 "rollout supports (x, y) or (x, y, time-of-day) inputs");
  TAMP_CHECK(!recent_km[0].empty());
  const size_t window_size = recent_km[0].size();
  for (const std::vector<geo::Point>& recent : recent_km) {
    TAMP_CHECK_MSG(recent.size() == window_size,
                   "batched rollout rows must share one window length");
  }

  auto time_of_day = [](double t_min) {
    return std::fmod(t_min, 1440.0) / 1440.0;
  };
  // Pack the fleet's sliding windows as SoA [step][feature][row] (caller
  // row order; the engine handles its own column permutation). Same
  // normalization and timestamps as the scalar path, element for element.
  const size_t id = static_cast<size_t>(input_dim);
  const size_t od = static_cast<size_t>(engine.config().output_dim);
  const size_t seq_out = static_cast<size_t>(engine.config().seq_out);
  scratch.window.resize(window_size * id * rows);
  scratch.preds.resize(seq_out * od * rows);
  for (size_t t = 0; t < window_size; ++t) {
    const double t_min =
        now_min -
        static_cast<double>(window_size - 1 - t) * step_period_min;
    const double tod = time_of_day(t_min);
    double* wx = scratch.window.data() + (t * id + 0) * rows;
    double* wy = scratch.window.data() + (t * id + 1) * rows;
    double* wt = input_dim == 3
                     ? scratch.window.data() + (t * id + 2) * rows
                     : nullptr;
    for (size_t r = 0; r < rows; ++r) {
      geo::Point n = grid.Normalize(recent_km[r][t]);
      wx[r] = n.x;
      wy[r] = n.y;
      if (wt != nullptr) wt[r] = tod;
    }
  }

  for (size_t r = 0; r < rows; ++r) {
    (*out)[r].clear();
    (*out)[r].reserve(static_cast<size_t>(horizon_steps));
  }
  int produced = 0;
  while (produced < horizon_steps) {
    engine.Forward(row_params, static_cast<int>(window_size),
                   scratch.window.data(), scratch.preds.data(),
                   scratch.engine);
    for (size_t s = 0; s < seq_out; ++s) {
      if (produced >= horizon_steps) break;
      const double* px = scratch.preds.data() + (s * od + 0) * rows;
      const double* py = scratch.preds.data() + (s * od + 1) * rows;
      const double t =
          now_min + (static_cast<double>(produced) + 1.0) * step_period_min;
      for (size_t r = 0; r < rows; ++r) {
        geo::Point km = grid.Denormalize({px[r], py[r]});
        (*out)[r].push_back({km, t});
      }
      // Slide every window one step: drop the oldest step (a block shift
      // in [step][feature][row] layout) and append the prediction with its
      // future timestamp, exactly like the scalar feedback loop.
      std::copy(scratch.window.begin() +
                    static_cast<std::ptrdiff_t>(id * rows),
                scratch.window.end(), scratch.window.begin());
      double* wx =
          scratch.window.data() + ((window_size - 1) * id + 0) * rows;
      double* wy =
          scratch.window.data() + ((window_size - 1) * id + 1) * rows;
      for (size_t r = 0; r < rows; ++r) {
        wx[r] = px[r];
        wy[r] = py[r];
      }
      if (input_dim == 3) {
        double* wt =
            scratch.window.data() + ((window_size - 1) * id + 2) * rows;
        const double tod = time_of_day(t);
        for (size_t r = 0; r < rows; ++r) wt[r] = tod;
      }
      ++produced;
    }
  }
}

}  // namespace tamp::core
