#include "similarity/cluster_quality.h"

#include <atomic>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"

namespace tamp::similarity {

PairwiseSimilarity::PairwiseSimilarity(int n, SimilarityFn fn)
    : n_(n), fn_(std::move(fn)) {
  TAMP_CHECK(n >= 0);
  size_t pairs = static_cast<size_t>(n) * static_cast<size_t>(n + 1) / 2;
  cache_.assign(pairs, 0.0);
  computed_.assign(pairs, 0);
}

size_t PairwiseSimilarity::PackIndex(int i, int j) const {
  TAMP_CHECK(i >= 0 && i < n_ && j >= 0 && j < n_);
  if (i > j) std::swap(i, j);
  // Row-major upper triangle: offset of row i plus column displacement.
  return static_cast<size_t>(i) * static_cast<size_t>(2 * n_ - i + 1) / 2 +
         static_cast<size_t>(j - i);
}

double PairwiseSimilarity::operator()(int i, int j) const {
  if (i == j) return 1.0;
  size_t idx = PackIndex(i, j);
  // Release/acquire on the per-entry flag orders the cache_ write before
  // any reader that observes the flag set, so reads racing a *different*
  // entry's fill (and all reads after Materialize()) are data-race-free.
  std::atomic_ref<char> flag(computed_[idx]);
  if (!flag.load(std::memory_order_acquire)) {
    cache_[idx] = fn_(i, j);
    flag.store(1, std::memory_order_release);
  }
  return cache_[idx];
}

void PairwiseSimilarity::Materialize() const {
  if (materialized_) return;
  // Flatten the strict upper triangle so the fan-out is load-balanced at
  // pair granularity (row lengths shrink linearly); each worker fills
  // disjoint entries, which is exactly the single-writer contract.
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(static_cast<size_t>(n_) * static_cast<size_t>(n_) / 2);
  for (int i = 0; i < n_; ++i) {
    for (int j = i + 1; j < n_; ++j) pairs.emplace_back(i, j);
  }
  ParallelFor(pairs.size(), [&](size_t p) {
    (*this)(pairs[p].first, pairs[p].second);
  });
  materialized_ = true;
}

double ClusterQuality(const PairwiseSimilarity& sim,
                      const std::vector<int>& members,
                      double gamma_singleton) {
  size_t size = members.size();
  if (size == 0) return 0.0;
  if (size == 1) return gamma_singleton;
  double sum = 0.0;
  for (size_t a = 0; a < size; ++a) {
    for (size_t b = a + 1; b < size; ++b) {
      sum += sim(members[a], members[b]);
    }
  }
  // Eq. 4 sums ordered pairs (i, j != i); the unordered sum counts each
  // pair once, so double it before normalizing by |G|(|G|-1).
  return 2.0 * sum /
         (static_cast<double>(size) * static_cast<double>(size - 1));
}

double JoinUtility(const PairwiseSimilarity& sim,
                   const std::vector<int>& cluster_without_task, int task,
                   double gamma_singleton) {
  size_t old_size = cluster_without_task.size();
  if (old_size == 0) {
    // Joining an empty cluster creates a singleton: Q goes 0 -> gamma.
    return gamma_singleton;
  }
  double old_sum = 0.0;
  for (size_t a = 0; a < old_size; ++a) {
    for (size_t b = a + 1; b < old_size; ++b) {
      old_sum += sim(cluster_without_task[a], cluster_without_task[b]);
    }
  }
  double join_sum = 0.0;
  for (int member : cluster_without_task) join_sum += sim(member, task);
  double new_size = static_cast<double>(old_size + 1);
  double q_new = 2.0 * (old_sum + join_sum) / (new_size * (new_size - 1.0));
  double q_old = old_size == 1
                     ? gamma_singleton
                     : 2.0 * old_sum / (static_cast<double>(old_size) *
                                        (static_cast<double>(old_size) - 1.0));
  return q_new - q_old;
}

}  // namespace tamp::similarity
