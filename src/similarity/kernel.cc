#include "similarity/kernel.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tamp::similarity {

double PoiKernel(const geo::Poi& a, const geo::Poi& b,
                 const SpatialKernelParams& params) {
  TAMP_CHECK(params.bandwidth_km > 0.0);
  double d2 = geo::DistanceSquared(a.loc, b.loc);
  double h2 = params.bandwidth_km * params.bandwidth_km;
  double spatial = std::exp(-d2 / (2.0 * h2));
  double type_factor = a.type == b.type ? 1.0 : params.type_mismatch_factor;
  return TAMP_CHECK_FINITE(spatial * type_factor);
}

double SpatialSimilarity(const geo::PoiSequence& a, const geo::PoiSequence& b,
                         const SpatialKernelParams& params) {
  if (a.empty() || b.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& va : a) {
    for (const auto& vb : b) acc += PoiKernel(va, vb, params);
  }
  double mean =
      acc / (static_cast<double>(a.size()) * static_cast<double>(b.size()));
  return std::clamp(TAMP_CHECK_FINITE(mean), 0.0, 1.0);
}

}  // namespace tamp::similarity
