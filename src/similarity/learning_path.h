#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tamp::similarity {

/// The k-step gradient path Z^(i) of a learning task: the gradient vector
/// recorded at each of the first k adaptation steps of a probe meta-learner
/// (Section III-B, "Learning path").
using GradientPath = std::vector<std::vector<double>>;

/// Cosine similarity of two vectors; 0 when either is (near) zero.
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Learning-path similarity Sim_l (Eq. 2): the mean cosine similarity of
/// the step-aligned gradients. The paths must have the same number of
/// steps. Result is mapped from [-1,1] into [0,1] so it composes with the
/// other similarity factors in Q(G).
double LearningPathSimilarity(const GradientPath& a, const GradientPath& b);

/// Seeded sparse random projection (Achlioptas +-1 signs) used to reduce
/// model-sized gradient vectors to a small fixed dimension before storing
/// them in gradient paths. Johnson-Lindenstrauss: cosine similarities are
/// approximately preserved, which is all Sim_l consumes.
class RandomProjector {
 public:
  /// Projects `input_dim`-vectors to `output_dim`-vectors. The projection
  /// matrix is derived deterministically from `seed` so every learning task
  /// shares the same projection.
  RandomProjector(size_t input_dim, size_t output_dim, uint64_t seed);

  size_t input_dim() const { return input_dim_; }
  size_t output_dim() const { return output_dim_; }

  std::vector<double> Project(const std::vector<double>& input) const;

 private:
  size_t input_dim_;
  size_t output_dim_;
  /// Row-major sign matrix [output_dim x input_dim], entries +-1.
  std::vector<int8_t> signs_;
};

}  // namespace tamp::similarity
