#pragma once

#include "geo/poi.h"

namespace tamp::similarity {

/// Parameters of the kernel used by the spatial-feature similarity (Eq. 1).
/// Follows the kernel-density modelling of human location data of [23]/[24]:
/// a Gaussian spatial kernel combined with a POI-type agreement factor.
struct SpatialKernelParams {
  /// Gaussian bandwidth h in km.
  double bandwidth_km = 1.0;
  /// Multiplier applied when the two POIs have different types, in [0, 1].
  double type_mismatch_factor = 0.5;
};

/// K_h(v_a, v_b): Gaussian kernel on the POI distance, attenuated when the
/// POI types differ. Always in (0, 1].
double PoiKernel(const geo::Poi& a, const geo::Poi& b,
                 const SpatialKernelParams& params);

/// Spatial-feature similarity Sim_s (Eq. 1): the mean pairwise kernel value
/// between the two POI sequences, normalized into [0, 1] (the kernel is
/// already bounded by 1, so Norm is a clamp). Returns 0 when either
/// sequence is empty.
double SpatialSimilarity(const geo::PoiSequence& a, const geo::PoiSequence& b,
                         const SpatialKernelParams& params);

}  // namespace tamp::similarity
