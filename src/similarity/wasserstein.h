#pragma once

#include <cstdint>
#include <vector>

#include "geo/point.h"

namespace tamp::similarity {

/// Exact 1-Wasserstein (earth mover's) distance between two 1-D empirical
/// distributions with uniform weights: the integral of |F_a - F_b| over the
/// merged support. Handles unequal sample counts. Requires both non-empty.
double Wasserstein1D(std::vector<double> a, std::vector<double> b);

/// Sliced 1-Wasserstein distance between two 2-D empirical point sets: the
/// mean of Wasserstein1D over `num_projections` evenly spaced directions.
/// This is the scalable estimator used by Sim_d for large learning tasks.
double SlicedWasserstein2D(const std::vector<geo::Point>& a,
                           const std::vector<geo::Point>& b,
                           int num_projections);

/// Exact 1-Wasserstein distance between two equal-size 2-D empirical point
/// sets via a minimum-cost perfect assignment (O(n^3)); used as the ground
/// truth the sliced estimator is tested against, and directly for small
/// tasks. Requires equal, non-zero sizes.
double ExactWasserstein2D(const std::vector<geo::Point>& a,
                          const std::vector<geo::Point>& b);

/// Distribution similarity Sim_d (Eq. 3): the reciprocal of the Wasserstein
/// distance between the two learning tasks' location distributions, squashed
/// into [0, 1] via s/(s + W) with scale parameter `scale_km` so it composes
/// with Sim_s/Sim_l inside Q(G). Identical distributions give 1.
double DistributionSimilarity(const std::vector<geo::Point>& a,
                              const std::vector<geo::Point>& b,
                              int num_projections, double scale_km);

}  // namespace tamp::similarity
