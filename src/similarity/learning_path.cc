#include "similarity/learning_path.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace tamp::similarity {

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  TAMP_CHECK(a.size() == b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na < 1e-24 || nb < 1e-24) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double LearningPathSimilarity(const GradientPath& a, const GradientPath& b) {
  TAMP_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (size_t step = 0; step < a.size(); ++step) {
    acc += CosineSimilarity(a[step], b[step]);
  }
  double mean_cos = acc / static_cast<double>(a.size());
  // Map [-1, 1] -> [0, 1] so Sim_l composes with Sim_s / Sim_d in Q(G).
  return TAMP_CHECK_FINITE(0.5 * (mean_cos + 1.0));
}

RandomProjector::RandomProjector(size_t input_dim, size_t output_dim,
                                 uint64_t seed)
    : input_dim_(input_dim), output_dim_(output_dim) {
  TAMP_CHECK(input_dim > 0 && output_dim > 0);
  Rng rng(seed);
  signs_.resize(input_dim * output_dim);
  for (auto& s : signs_) s = rng.Bernoulli(0.5) ? 1 : -1;
}

std::vector<double> RandomProjector::Project(
    const std::vector<double>& input) const {
  TAMP_CHECK(input.size() == input_dim_);
  std::vector<double> out(output_dim_, 0.0);
  double scale = 1.0 / std::sqrt(static_cast<double>(output_dim_));
  for (size_t r = 0; r < output_dim_; ++r) {
    const int8_t* row = signs_.data() + r * input_dim_;
    double acc = 0.0;
    for (size_t c = 0; c < input_dim_; ++c) {
      acc += row[c] > 0 ? input[c] : -input[c];
    }
    out[r] = acc * scale;
  }
  return out;
}

}  // namespace tamp::similarity
