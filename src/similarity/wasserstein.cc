#include "similarity/wasserstein.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "matching/hungarian.h"

namespace tamp::similarity {

double Wasserstein1D(std::vector<double> a, std::vector<double> b) {
  TAMP_CHECK(!a.empty() && !b.empty());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  // Sweep the merged support accumulating |F_a(x) - F_b(x)| * dx.
  double dist = 0.0;
  size_t ia = 0, ib = 0;
  double na = static_cast<double>(a.size());
  double nb = static_cast<double>(b.size());
  double prev = std::min(a[0], b[0]);
  while (ia < a.size() || ib < b.size()) {
    double next;
    if (ia == a.size()) {
      next = b[ib];
    } else if (ib == b.size()) {
      next = a[ia];
    } else {
      next = std::min(a[ia], b[ib]);
    }
    double fa = static_cast<double>(ia) / na;
    double fb = static_cast<double>(ib) / nb;
    dist += std::fabs(fa - fb) * (next - prev);
    prev = next;
    while (ia < a.size() && a[ia] == next) ++ia;
    while (ib < b.size() && b[ib] == next) ++ib;
  }
  return dist;
}

double SlicedWasserstein2D(const std::vector<geo::Point>& a,
                           const std::vector<geo::Point>& b,
                           int num_projections) {
  TAMP_CHECK(!a.empty() && !b.empty());
  TAMP_CHECK(num_projections > 0);
  double acc = 0.0;
  for (int k = 0; k < num_projections; ++k) {
    // Evenly spaced directions in [0, pi): deterministic and unbiased for
    // the sliced integral.
    double theta = M_PI * (static_cast<double>(k) + 0.5) / num_projections;
    double ux = std::cos(theta), uy = std::sin(theta);
    std::vector<double> pa(a.size()), pb(b.size());
    for (size_t i = 0; i < a.size(); ++i) pa[i] = ux * a[i].x + uy * a[i].y;
    for (size_t i = 0; i < b.size(); ++i) pb[i] = ux * b[i].x + uy * b[i].y;
    acc += Wasserstein1D(std::move(pa), std::move(pb));
  }
  return acc / num_projections;
}

double ExactWasserstein2D(const std::vector<geo::Point>& a,
                          const std::vector<geo::Point>& b) {
  TAMP_CHECK(!a.empty());
  TAMP_CHECK(a.size() == b.size());
  std::vector<std::vector<double>> cost(a.size(),
                                        std::vector<double>(b.size()));
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      cost[i][j] = geo::Distance(a[i], b[j]);
    }
  }
  matching::AssignmentResult result = matching::MinCostAssignment(cost);
  return result.total_cost / static_cast<double>(a.size());
}

double DistributionSimilarity(const std::vector<geo::Point>& a,
                              const std::vector<geo::Point>& b,
                              int num_projections, double scale_km) {
  TAMP_CHECK(scale_km > 0.0);
  if (a.empty() || b.empty()) return 0.0;
  double w = SlicedWasserstein2D(a, b, num_projections);
  // Monotone transform of Eq. 3's 1/W into [0, 1]: preserves the ordering
  // 1/W induces while staying finite for identical distributions.
  return TAMP_CHECK_FINITE(scale_km / (scale_km + w));
}

}  // namespace tamp::similarity
