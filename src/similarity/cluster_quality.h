#pragma once

#include <functional>
#include <vector>

namespace tamp::similarity {

/// Pairwise similarity over a fixed set of n learning tasks, evaluated
/// lazily and cached. The clustering game queries the same pairs many times
/// during best-response iteration, so values are computed at most once.
///
/// Threading contract: Materialize() fills the whole triangle with a
/// parallel pass (distinct pairs on distinct threads); afterwards
/// operator() is a pure read and safe to call concurrently. Before
/// materialization, lazy fills are single-writer only: concurrent
/// operator() calls are safe for *distinct* pairs (per-entry release /
/// acquire flags), but two threads must not fault in the same pair — call
/// Materialize() up front whenever readers run in parallel.
class PairwiseSimilarity {
 public:
  using SimilarityFn = std::function<double(int, int)>;

  /// `fn(i, j)` must be symmetric, deterministic, and thread-safe for
  /// concurrent distinct pairs; it is only called for i != j.
  PairwiseSimilarity(int n, SimilarityFn fn);

  int size() const { return n_; }

  /// Similarity of tasks i and j (cached); Sim(i, i) is defined as 1.
  double operator()(int i, int j) const;

  /// Computes all pairs up front, fanning the triangle out over the thread
  /// pool (pair order does not matter: entries are independent and exact).
  /// Idempotent; after it returns, concurrent reads are data-race-free.
  void Materialize() const;

 private:
  int n_;
  SimilarityFn fn_;
  mutable std::vector<double> cache_;    // Upper-triangular, packed.
  mutable std::vector<char> computed_;   // Per-entry flags (atomic_ref'd).
  mutable bool materialized_ = false;
  size_t PackIndex(int i, int j) const;
};

/// Cluster quality Q(G) (Eq. 4): mean pairwise similarity for |G| > 1,
/// `gamma_singleton` for |G| = 1, and 0 for an empty cluster. `members`
/// holds task indices into `sim`.
double ClusterQuality(const PairwiseSimilarity& sim,
                      const std::vector<int>& members,
                      double gamma_singleton);

/// Marginal utility u(task, G) = Q(G ∪ {task}) - Q(G) (Eq. 5's change in
/// quality when `task` joins `G`, with `G` given *excluding* the task).
/// Reference implementation used by tests; the GTMC game maintains
/// per-cluster pairwise sums incrementally for speed.
double JoinUtility(const PairwiseSimilarity& sim,
                   const std::vector<int>& cluster_without_task, int task,
                   double gamma_singleton);

}  // namespace tamp::similarity
