#pragma once

#include <functional>
#include <vector>

namespace tamp::similarity {

/// Pairwise similarity over a fixed set of n learning tasks, evaluated
/// lazily and cached. The clustering game queries the same pairs many times
/// during best-response iteration, so values are computed at most once.
class PairwiseSimilarity {
 public:
  using SimilarityFn = std::function<double(int, int)>;

  /// `fn(i, j)` must be symmetric and is only called for i != j.
  PairwiseSimilarity(int n, SimilarityFn fn);

  int size() const { return n_; }

  /// Similarity of tasks i and j (cached); Sim(i, i) is defined as 1.
  double operator()(int i, int j) const;

  /// Forces computation of all pairs (useful before timing-sensitive code).
  void Materialize() const;

 private:
  int n_;
  SimilarityFn fn_;
  mutable std::vector<double> cache_;    // Upper-triangular, packed.
  mutable std::vector<char> computed_;
  size_t PackIndex(int i, int j) const;
};

/// Cluster quality Q(G) (Eq. 4): mean pairwise similarity for |G| > 1,
/// `gamma_singleton` for |G| = 1, and 0 for an empty cluster. `members`
/// holds task indices into `sim`.
double ClusterQuality(const PairwiseSimilarity& sim,
                      const std::vector<int>& members,
                      double gamma_singleton);

/// Marginal utility u(task, G) = Q(G ∪ {task}) - Q(G) (Eq. 5's change in
/// quality when `task` joins `G`, with `G` given *excluding* the task).
/// Reference implementation used by tests; the GTMC game maintains
/// per-cluster pairwise sums incrementally for speed.
double JoinUtility(const PairwiseSimilarity& sim,
                   const std::vector<int>& cluster_without_task, int task,
                   double gamma_singleton);

}  // namespace tamp::similarity
