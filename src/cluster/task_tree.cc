#include "cluster/task_tree.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "common/check.h"
#include "common/parallel.h"

namespace tamp::cluster {

std::unique_ptr<TaskTreeNode> BuildLearningTaskTree(
    const std::vector<const similarity::PairwiseSimilarity*>& factors,
    const TaskTreeConfig& config, Rng& rng) {
  TAMP_CHECK(!factors.empty());
  const int n = factors[0]->size();
  TAMP_CHECK(n > 0);
  for (const auto* f : factors) TAMP_CHECK(f->size() == n);

  // With a multi-threaded pool, pre-fill every factor's similarity
  // triangle with the parallel materialize pass: the O(n^2) independent
  // kernel evaluations dominate the build, and afterwards the clustering
  // game below only ever performs data-race-free reads. A 1-thread run
  // keeps the lazy fill (it computes only the pairs the clustering
  // actually queries); values are identical either way, so the resulting
  // tree does not depend on the thread count.
  if (ParallelThreadCount() > 1) {
    for (const auto* f : factors) f->Materialize();
  }

  auto root = std::make_unique<TaskTreeNode>();
  root->tasks.resize(static_cast<size_t>(n));
  std::iota(root->tasks.begin(), root->tasks.end(), 0);

  // Alg. 1 lines 2-18: queue of (node, factor index j).
  std::deque<std::pair<TaskTreeNode*, size_t>> queue;
  queue.emplace_back(root.get(), 0);
  while (!queue.empty()) {
    auto [node, j] = queue.front();
    queue.pop_front();
    const similarity::PairwiseSimilarity& sim = *factors[j];

    GameClusteringResult level =
        config.use_game
            ? GameTheoreticCluster(sim, node->tasks, config.game, rng)
            : KMedoidsCluster(sim, node->tasks, config.game, rng);

    // Alg. 1 line 13: only split when more than one sub-cluster remains.
    if (level.clusters.size() <= 1) continue;
    for (auto& sub : level.clusters) {
      auto child = std::make_unique<TaskTreeNode>();
      child->tasks = std::move(sub);
      child->parent = node;
      child->theta = node->theta;  // Alg. 1 line 15: inherit parent init.
      child->depth = node->depth + 1;
      child->factor_index = static_cast<int>(j);
      // Alg. 1 lines 17-18: refine with the next factor while quality is
      // below this level's threshold.
      if (j + 1 < factors.size()) {
        double threshold =
            j < config.thresholds.size() ? config.thresholds[j] : 1.0;
        double quality =
            similarity::ClusterQuality(sim, child->tasks, config.game.gamma);
        if (quality < threshold && child->tasks.size() > 1) {
          queue.emplace_back(child.get(), j + 1);
        }
      }
      node->children.push_back(std::move(child));
    }
  }
  return root;
}

int CountNodes(const TaskTreeNode& root) {
  int count = 1;
  for (const auto& child : root.children) count += CountNodes(*child);
  return count;
}

int CountLeaves(const TaskTreeNode& root) {
  if (root.is_leaf()) return 1;
  int count = 0;
  for (const auto& child : root.children) count += CountLeaves(*child);
  return count;
}

namespace {

template <typename Node, typename Out>
void CollectLeavesImpl(Node& node, Out& out) {
  if (node.is_leaf()) {
    out.push_back(&node);
    return;
  }
  for (auto& child : node.children) CollectLeavesImpl(*child, out);
}

}  // namespace

std::vector<const TaskTreeNode*> CollectLeaves(const TaskTreeNode& root) {
  std::vector<const TaskTreeNode*> out;
  CollectLeavesImpl(root, out);
  return out;
}

std::vector<TaskTreeNode*> CollectLeaves(TaskTreeNode& root) {
  std::vector<TaskTreeNode*> out;
  CollectLeavesImpl(root, out);
  return out;
}

bool ValidateTree(const TaskTreeNode& root) {
  if (root.is_leaf()) return !root.tasks.empty();
  std::vector<int> combined;
  for (const auto& child : root.children) {
    if (child->parent != &root) return false;
    if (child->depth != root.depth + 1) return false;
    if (!ValidateTree(*child)) return false;
    combined.insert(combined.end(), child->tasks.begin(), child->tasks.end());
  }
  std::vector<int> expected = root.tasks;
  std::sort(expected.begin(), expected.end());
  std::sort(combined.begin(), combined.end());
  return expected == combined;
}

}  // namespace tamp::cluster
