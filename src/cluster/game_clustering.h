#pragma once

#include <vector>

#include "common/rng.h"
#include "similarity/cluster_quality.h"

namespace tamp::cluster {

/// Configuration of one level of the GTMC clustering game (Algorithm 1
/// lines 5-12).
struct GameClusteringConfig {
  /// Number of initial clusters produced by k-medoids.
  int k = 4;
  /// Singleton cluster quality gamma in (0,1) (Eq. 4); the paper sets 0.2.
  double gamma = 0.2;
  /// Safety cap on best-response sweeps. Convergence is guaranteed by the
  /// exact-potential property (Theorem 1); the cap only guards against
  /// floating-point tie cycling.
  int max_rounds = 100;
  /// A player only moves when the utility improves by more than this.
  double improvement_epsilon = 1e-12;
};

/// Result of the best-response clustering game.
struct GameClusteringResult {
  /// Non-empty clusters, each a list of item ids (as passed in `items`).
  std::vector<std::vector<int>> clusters;
  /// Potential F = sum_G Q(G) after initialization and after every sweep.
  /// Strictly non-decreasing (asserting Theorem 1's potential argument).
  std::vector<double> potential_history;
  int rounds = 0;
  /// True when a Nash equilibrium was reached (no player can improve).
  bool converged = false;
};

/// One level of Game Theory-based Multi-level Learning Task Clustering:
/// initializes clusters with k-medoids on 1/similarity, then runs
/// best-response dynamics on the exact potential game of Eq. 5 until Nash
/// equilibrium. `items` are indices into `sim`.
GameClusteringResult GameTheoreticCluster(
    const similarity::PairwiseSimilarity& sim, const std::vector<int>& items,
    const GameClusteringConfig& config, Rng& rng);

/// The same interface with plain k-means-style (k-medoids) clustering and
/// no game refinement: the GTTAML-GT ablation variant.
GameClusteringResult KMedoidsCluster(
    const similarity::PairwiseSimilarity& sim, const std::vector<int>& items,
    const GameClusteringConfig& config, Rng& rng);

}  // namespace tamp::cluster
