#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace tamp::cluster {
namespace {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  TAMP_CHECK(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

/// k-means++ seeding: first centroid uniform, subsequent ones proportional
/// to squared distance from the nearest chosen centroid.
std::vector<std::vector<double>> SeedCentroids(
    const std::vector<std::vector<double>>& points, int k, Rng& rng) {
  std::vector<std::vector<double>> centroids;
  centroids.reserve(static_cast<size_t>(k));
  size_t first = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(points.size()) - 1));
  centroids.push_back(points[first]);
  std::vector<double> d2(points.size());
  while (static_cast<int>(centroids.size()) < k) {
    for (size_t p = 0; p < points.size(); ++p) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& c : centroids) {
        best = std::min(best, SquaredDistance(points[p], c));
      }
      d2[p] = best;
    }
    centroids.push_back(points[rng.SampleIndex(d2)]);
  }
  return centroids;
}

}  // namespace

KMeansResult KMeans(const std::vector<std::vector<double>>& points, int k,
                    Rng& rng, int max_iterations) {
  TAMP_CHECK(!points.empty());
  TAMP_CHECK(k > 0);
  k = std::min<int>(k, static_cast<int>(points.size()));
  const size_t dim = points[0].size();
  for (const auto& p : points) TAMP_CHECK(p.size() == dim);

  KMeansResult result;
  result.centroids = SeedCentroids(points, k, rng);
  result.assignments.assign(points.size(), 0);

  for (int iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    result.inertia = 0.0;
    for (size_t p = 0; p < points.size(); ++p) {
      int best_c = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < static_cast<size_t>(k); ++c) {
        double d = SquaredDistance(points[p], result.centroids[c]);
        if (d < best_d) {
          best_d = d;
          best_c = static_cast<int>(c);
        }
      }
      if (result.assignments[p] != best_c) {
        result.assignments[p] = best_c;
        changed = true;
      }
      result.inertia += best_d;
    }
    result.iterations = iter + 1;
    if (!changed && iter > 0) break;
    // Recompute centroids; empty clusters keep their previous centroid.
    const size_t num_clusters = static_cast<size_t>(k);
    std::vector<std::vector<double>> sums(num_clusters,
                                          std::vector<double>(dim, 0.0));
    std::vector<int> counts(num_clusters, 0);
    for (size_t p = 0; p < points.size(); ++p) {
      size_t c = static_cast<size_t>(result.assignments[p]);
      ++counts[c];
      for (size_t d = 0; d < dim; ++d) sums[c][d] += points[p][d];
    }
    for (size_t c = 0; c < num_clusters; ++c) {
      if (counts[c] == 0) continue;
      for (size_t d = 0; d < dim; ++d) {
        result.centroids[c][d] = sums[c][d] / counts[c];
      }
    }
  }
  return result;
}

SoftKMeansResult SoftKMeans(const std::vector<std::vector<double>>& points,
                            int k, double beta, Rng& rng,
                            int max_iterations) {
  TAMP_CHECK(!points.empty());
  TAMP_CHECK(k > 0);
  TAMP_CHECK(beta > 0.0);
  k = std::min<int>(k, static_cast<int>(points.size()));
  const size_t dim = points[0].size();
  for (const auto& p : points) TAMP_CHECK(p.size() == dim);

  SoftKMeansResult result;
  result.centroids = SeedCentroids(points, k, rng);
  const size_t num_clusters = static_cast<size_t>(k);
  result.responsibilities.assign(points.size(),
                                 std::vector<double>(num_clusters, 0.0));

  for (int iter = 0; iter < max_iterations; ++iter) {
    // E-step: Gaussian responsibilities (numerically stabilized).
    for (size_t p = 0; p < points.size(); ++p) {
      std::vector<double> logits(num_clusters);
      double max_logit = -std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < num_clusters; ++c) {
        logits[c] = -beta * SquaredDistance(points[p], result.centroids[c]);
        max_logit = std::max(max_logit, logits[c]);
      }
      double denom = 0.0;
      for (size_t c = 0; c < num_clusters; ++c) {
        logits[c] = std::exp(logits[c] - max_logit);
        denom += logits[c];
      }
      for (size_t c = 0; c < num_clusters; ++c) {
        result.responsibilities[p][c] = logits[c] / denom;
      }
    }
    // M-step: responsibility-weighted centroids.
    double shift = 0.0;
    for (size_t c = 0; c < num_clusters; ++c) {
      std::vector<double> sum(dim, 0.0);
      double weight = 0.0;
      for (size_t p = 0; p < points.size(); ++p) {
        double r = result.responsibilities[p][c];
        weight += r;
        for (size_t d = 0; d < dim; ++d) sum[d] += r * points[p][d];
      }
      if (weight < 1e-12) continue;
      std::vector<double> updated(dim);
      for (size_t d = 0; d < dim; ++d) updated[d] = sum[d] / weight;
      shift += SquaredDistance(updated, result.centroids[c]);
      result.centroids[c] = std::move(updated);
    }
    result.iterations = iter + 1;
    if (shift < 1e-12) break;
  }
  return result;
}

}  // namespace tamp::cluster
