#include "cluster/game_clustering.h"

#include <algorithm>
#include <limits>

#include "cluster/kmedoids.h"
#include "common/check.h"
#include "common/obs/metrics.h"
#include "common/obs/trace.h"

namespace tamp::cluster {
namespace {

/// Cluster/player ids are ints at the API surface; containers index by
/// size_t. Ids are checked non-negative on entry, so the cast is safe.
inline size_t I(int id) { return static_cast<size_t>(id); }

/// Incremental view of the clustering game state: per-cluster member lists
/// and pairwise-similarity sums, so Q(G) and join/leave utilities are O(|G|)
/// per evaluation instead of O(|G|^2).
class GameState {
 public:
  GameState(const similarity::PairwiseSimilarity& sim,
            const std::vector<int>& items,
            const std::vector<int>& initial_assignment, int k, double gamma)
      : sim_(sim), items_(items), gamma_(gamma), members_(I(k)), pair_sum_(I(k), 0.0),
        assignment_(initial_assignment) {
    TAMP_CHECK(items.size() == initial_assignment.size());
    for (size_t p = 0; p < items.size(); ++p) {
      int c = initial_assignment[p];
      TAMP_CHECK(c >= 0 && c < k);
      for (int other : members_[I(c)]) {
        pair_sum_[I(c)] += sim_(items_[p], items_[I(other)]);
      }
      members_[I(c)].push_back(static_cast<int>(p));
    }
  }

  int num_clusters() const { return static_cast<int>(members_.size()); }
  int cluster_of(int player) const { return assignment_[I(player)]; }
  const std::vector<int>& members(int c) const { return members_[I(c)]; }

  /// Q of cluster c from its cached pairwise sum (Eq. 4).
  double Quality(int c) const {
    size_t size = members_[I(c)].size();
    if (size == 0) return 0.0;
    if (size == 1) return gamma_;
    return 2.0 * pair_sum_[I(c)] /
           (static_cast<double>(size) * static_cast<double>(size - 1));
  }

  /// Sum of similarities from `player` to every member of c (excluding the
  /// player itself if it is a member).
  double LinkSum(int player, int c) const {
    double sum = 0.0;
    for (int other : members_[I(c)]) {
      if (other == player) continue;
      sum += sim_(items_[I(player)], items_[I(other)]);
    }
    return sum;
  }

  /// Utility of player's current situation: Q(G) - Q(G \ {player}) (Eq. 5).
  double StayUtility(int player) const {
    int c = assignment_[I(player)];
    size_t size = members_[I(c)].size();
    TAMP_CHECK(size >= 1);
    if (size == 1) return gamma_;  // Q({p}) - Q(empty) = gamma.
    double link = LinkSum(player, c);
    double q_with = Quality(c);
    double sum_without = pair_sum_[I(c)] - link;
    size_t size_without = size - 1;
    double q_without =
        size_without == 1
            ? gamma_
            : 2.0 * sum_without / (static_cast<double>(size_without) *
                                   static_cast<double>(size_without - 1));
    return q_with - q_without;
  }

  /// Utility of moving to cluster c: Q(G_c + player) - Q(G_c).
  double JoinUtility(int player, int c) const {
    size_t size = members_[I(c)].size();
    if (size == 0) return gamma_;
    double link = LinkSum(player, c);
    double new_size = static_cast<double>(size + 1);
    double q_new =
        2.0 * (pair_sum_[I(c)] + link) / (new_size * (new_size - 1.0));
    return q_new - Quality(c);
  }

  void Move(int player, int to) {
    int from = assignment_[I(player)];
    TAMP_CHECK(from != to);
    pair_sum_[I(from)] -= LinkSum(player, from);
    auto& from_members = members_[I(from)];
    from_members.erase(
        std::find(from_members.begin(), from_members.end(), player));
    pair_sum_[I(to)] += LinkSum(player, to);
    members_[I(to)].push_back(player);
    assignment_[I(player)] = to;
  }

  /// The potential function F = sum_G Q(G) of Theorem 1's proof.
  double Potential() const {
    double total = 0.0;
    for (int c = 0; c < num_clusters(); ++c) total += Quality(c);
    return total;
  }

 private:
  const similarity::PairwiseSimilarity& sim_;
  const std::vector<int>& items_;
  double gamma_;
  std::vector<std::vector<int>> members_;
  std::vector<double> pair_sum_;
  std::vector<int> assignment_;
};

std::vector<int> InitialAssignment(const similarity::PairwiseSimilarity& sim,
                                   const std::vector<int>& items, int k,
                                   Rng& rng) {
  // Algorithm 1 line 5: k-medoids with 1/Sim as the distance.
  auto dist = [&](int a, int b) {
    double s = sim(items[I(a)], items[I(b)]);
    return 1.0 / std::max(s, 1e-9);
  };
  KMedoidsResult init =
      KMedoids(static_cast<int>(items.size()), k, dist, rng);
  return init.assignments;
}

GameClusteringResult Collect(const GameState& state,
                             const std::vector<int>& items) {
  GameClusteringResult result;
  for (int c = 0; c < state.num_clusters(); ++c) {
    if (state.members(c).empty()) continue;  // Alg. 1 line 12.
    std::vector<int> cluster;
    cluster.reserve(state.members(c).size());
    for (int p : state.members(c)) cluster.push_back(items[I(p)]);
    std::sort(cluster.begin(), cluster.end());
    result.clusters.push_back(std::move(cluster));
  }
  return result;
}

}  // namespace

GameClusteringResult GameTheoreticCluster(
    const similarity::PairwiseSimilarity& sim, const std::vector<int>& items,
    const GameClusteringConfig& config, Rng& rng) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter& runs_counter = registry.GetCounter("cluster.game_runs");
  static obs::Counter& rounds_counter =
      registry.GetCounter("cluster.br_rounds");
  static obs::Histogram& rounds_hist =
      registry.GetHistogram("cluster.br_rounds_per_run", obs::CountEdges());

  obs::TraceSpan game_span("cluster.game");
  runs_counter.Increment();
  TAMP_CHECK(!items.empty());
  TAMP_CHECK(config.k > 0);
  TAMP_CHECK(config.gamma > 0.0 && config.gamma < 1.0);
  int k = std::min<int>(config.k, static_cast<int>(items.size()));

  GameState state(sim, items, InitialAssignment(sim, items, k, rng), k,
                  config.gamma);
  GameClusteringResult partial;
  partial.potential_history.push_back(state.Potential());

  // Best-response sweeps (Alg. 1 lines 6-11): each player moves to the
  // cluster maximizing its utility; Nash when a full sweep makes no move.
  bool converged = false;
  int rounds = 0;
  while (rounds < config.max_rounds && !converged) {
    ++rounds;
    bool moved = false;
    for (size_t p = 0; p < items.size(); ++p) {
      int player = static_cast<int>(p);
      double best_utility = state.StayUtility(player);
      int best_cluster = state.cluster_of(player);
      for (int c = 0; c < k; ++c) {
        if (c == state.cluster_of(player)) continue;
        double u = state.JoinUtility(player, c);
        if (u > best_utility + config.improvement_epsilon) {
          best_utility = u;
          best_cluster = c;
        }
      }
      if (best_cluster != state.cluster_of(player)) {
        state.Move(player, best_cluster);
        moved = true;
      }
    }
    partial.potential_history.push_back(state.Potential());
    converged = !moved;
  }

  rounds_counter.Increment(rounds);
  rounds_hist.Record(static_cast<double>(rounds));

  GameClusteringResult result = Collect(state, items);
  result.potential_history = std::move(partial.potential_history);
  result.rounds = rounds;
  result.converged = converged;
  return result;
}

GameClusteringResult KMedoidsCluster(
    const similarity::PairwiseSimilarity& sim, const std::vector<int>& items,
    const GameClusteringConfig& config, Rng& rng) {
  TAMP_CHECK(!items.empty());
  int k = std::min<int>(config.k, static_cast<int>(items.size()));
  GameState state(sim, items, InitialAssignment(sim, items, k, rng), k,
                  config.gamma);
  GameClusteringResult result = Collect(state, items);
  result.potential_history.push_back(state.Potential());
  result.rounds = 0;
  result.converged = true;
  return result;
}

}  // namespace tamp::cluster
