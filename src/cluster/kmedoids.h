#pragma once

#include <functional>
#include <vector>

#include "common/rng.h"

namespace tamp::cluster {

/// Result of k-medoids clustering over an index set.
struct KMedoidsResult {
  std::vector<int> assignments;  // Cluster id per item.
  std::vector<int> medoids;      // Item index of each cluster's medoid.
  int iterations = 0;
  double total_cost = 0.0;       // Sum of item-to-medoid distances.
};

/// Simple-and-fast k-medoids (Park & Jun [26], the initializer of
/// Algorithm 1 line 5) over `n` items described only by a pairwise distance
/// function. In GTMC the distance is 1/Sim_f as prescribed by the paper.
/// `dist(i, j)` must be symmetric and non-negative; k is clamped to n.
KMedoidsResult KMedoids(int n, int k,
                        const std::function<double(int, int)>& dist, Rng& rng,
                        int max_iterations = 50);

}  // namespace tamp::cluster
