#include "cluster/kmedoids.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace tamp::cluster {

KMedoidsResult KMedoids(int n, int k,
                        const std::function<double(int, int)>& dist, Rng& rng,
                        int max_iterations) {
  TAMP_CHECK(n > 0);
  TAMP_CHECK(k > 0);
  k = std::min(k, n);

  KMedoidsResult result;
  std::vector<size_t> seed =
      rng.SampleWithoutReplacement(static_cast<size_t>(n),
                                   static_cast<size_t>(k));
  result.medoids.assign(seed.begin(), seed.end());
  result.assignments.assign(static_cast<size_t>(n), 0);

  for (int iter = 0; iter < max_iterations; ++iter) {
    // Assignment step.
    bool changed = iter == 0;
    result.total_cost = 0.0;
    for (int i = 0; i < n; ++i) {
      int best_c = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < static_cast<size_t>(k); ++c) {
        double d = i == result.medoids[c] ? 0.0 : dist(i, result.medoids[c]);
        if (d < best_d) {
          best_d = d;
          best_c = static_cast<int>(c);
        }
      }
      if (result.assignments[static_cast<size_t>(i)] != best_c) {
        result.assignments[static_cast<size_t>(i)] = best_c;
        changed = true;
      }
      result.total_cost += best_d;
    }
    result.iterations = iter + 1;
    if (!changed) break;

    // Update step: each cluster's medoid becomes the member minimizing the
    // total intra-cluster distance.
    for (size_t c = 0; c < static_cast<size_t>(k); ++c) {
      std::vector<int> members;
      for (int i = 0; i < n; ++i) {
        if (result.assignments[static_cast<size_t>(i)] ==
            static_cast<int>(c)) {
          members.push_back(i);
        }
      }
      if (members.empty()) continue;
      int best_medoid = members[0];
      double best_sum = std::numeric_limits<double>::infinity();
      for (int candidate : members) {
        double sum = 0.0;
        for (int other : members) {
          if (other != candidate) sum += dist(candidate, other);
        }
        if (sum < best_sum) {
          best_sum = sum;
          best_medoid = candidate;
        }
      }
      result.medoids[c] = best_medoid;
    }
  }
  return result;
}

}  // namespace tamp::cluster
