#pragma once

#include <vector>

#include "common/rng.h"

namespace tamp::cluster {

/// Result of (hard) k-means clustering.
struct KMeansResult {
  std::vector<int> assignments;            // Cluster id per point.
  std::vector<std::vector<double>> centroids;
  int iterations = 0;
  double inertia = 0.0;                    // Sum of squared distances.
};

/// Lloyd's k-means with k-means++ seeding on dense feature vectors.
/// `points` must be non-empty and rectangular; k is clamped to the number
/// of points. Used by the GTTAML-GT variant (k-means-only multi-level
/// clustering) and as the k-medoids comparison baseline.
KMeansResult KMeans(const std::vector<std::vector<double>>& points, int k,
                    Rng& rng, int max_iterations = 100);

/// Result of soft (fuzzy) k-means: per-point membership distribution.
struct SoftKMeansResult {
  /// responsibilities[p][c] in [0,1], rows sum to 1.
  std::vector<std::vector<double>> responsibilities;
  std::vector<std::vector<double>> centroids;
  int iterations = 0;
};

/// Soft k-means with Gaussian responsibilities (stiffness `beta`), the
/// clustering device of the CTML baseline [41]: tasks are assigned to the
/// cluster of maximum responsibility but gradients of all clusters can be
/// mixed by responsibility.
SoftKMeansResult SoftKMeans(const std::vector<std::vector<double>>& points,
                            int k, double beta, Rng& rng,
                            int max_iterations = 100);

}  // namespace tamp::cluster
