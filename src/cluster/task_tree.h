#pragma once

#include <memory>
#include <vector>

#include "cluster/game_clustering.h"
#include "common/rng.h"
#include "similarity/cluster_quality.h"

namespace tamp::cluster {

/// A node of the learning task tree (Def. 6): a cluster of learning-task
/// ids, its children from the next clustering level, and the initialization
/// parameters theta of the mobility prediction model trained for this
/// cluster by TAML. Only leaves carry training data (Fig. 3); interior
/// nodes aggregate their children's parameters.
struct TaskTreeNode {
  std::vector<int> tasks;  // Learning-task ids in this cluster (G).
  std::vector<std::unique_ptr<TaskTreeNode>> children;  // CH.
  TaskTreeNode* parent = nullptr;                       // fr.
  std::vector<double> theta;                            // Model init params.
  int depth = 0;            // Root is 0.
  int factor_index = -1;    // Similarity factor that produced this split.

  bool is_leaf() const { return children.empty(); }
};

/// Configuration of the multi-level GTMC build (Algorithm 1's outer loop).
struct TaskTreeConfig {
  /// Per-level clustering game settings (k, gamma, ...).
  GameClusteringConfig game;
  /// Quality thresholds Theta_j: a node produced at level j is clustered
  /// further only while Q < thresholds[j] (Alg. 1 line 17). Size must be at
  /// least the number of similarity factors minus one; missing entries
  /// default to 1.0 (always refine while factors remain).
  std::vector<double> thresholds;
  /// When false, the k-medoids-only variant replaces the game at every
  /// level (the GTTAML-GT ablation).
  bool use_game = true;
};

/// Builds the learning task tree by multi-level clustering: level j splits
/// each pending node with similarity factor `factors[j]` (the paper's
/// ordered list F^s = [Sim_d, Sim_s, Sim_l]). All factors must be defined
/// over the same n learning tasks; the root covers tasks 0..n-1.
std::unique_ptr<TaskTreeNode> BuildLearningTaskTree(
    const std::vector<const similarity::PairwiseSimilarity*>& factors,
    const TaskTreeConfig& config, Rng& rng);

/// Number of nodes (including the root).
int CountNodes(const TaskTreeNode& root);

/// Number of leaves.
int CountLeaves(const TaskTreeNode& root);

/// All leaves in depth-first order.
std::vector<const TaskTreeNode*> CollectLeaves(const TaskTreeNode& root);
std::vector<TaskTreeNode*> CollectLeaves(TaskTreeNode& root);

/// Verifies structural invariants: children partition their parent's task
/// set, parent pointers are consistent, depths increase by one. Returns
/// false (and stops) on the first violation.
bool ValidateTree(const TaskTreeNode& root);

}  // namespace tamp::cluster
