#pragma once

#include <memory>
#include <vector>

#include "cluster/task_tree.h"
#include "common/rng.h"
#include "geo/grid.h"
#include "meta/learning_task.h"
#include "meta/meta_training.h"
#include "nn/batched_seq2seq.h"
#include "nn/encoder_decoder.h"
#include "similarity/kernel.h"

namespace tamp::meta {

/// The similarity factors GTMC can cluster by (Table IV's ablation axes).
/// The order of the configured list is the paper's F^s ordering
/// [Sim_d, Sim_s, Sim_l] by default.
enum class Factor {
  kDistribution,  // Sim_d: Wasserstein distance of location clouds (Eq. 3).
  kSpatial,       // Sim_s: kernel-density POI similarity (Eq. 1).
  kLearningPath,  // Sim_l: k-step gradient cosine similarity (Eq. 2).
};

/// The compared mobility-prediction algorithms (Section IV-A).
enum class MetaAlgorithm {
  kMaml,      // No clustering: one cluster holds every learning task.
  kCtml,      // Soft k-means on [data features ++ learning path] [41].
  kGttamlGt,  // Multi-level k-medoids clustering (no game) + TAML.
  kGttaml,    // GTMC game clustering + TAML (the paper's method).
};

/// Everything the prediction-side pipeline needs.
struct TrainerConfig {
  nn::Seq2SeqConfig model;
  MetaTrainConfig meta;
  cluster::TaskTreeConfig tree;
  /// Ordered clustering factors, F^s. Must be non-empty for the clustered
  /// algorithms.
  std::vector<Factor> factors = {Factor::kDistribution, Factor::kSpatial,
                                 Factor::kLearningPath};
  /// Per-worker fine-tuning after meta-initialization.
  int fine_tune_steps = 15;
  double fine_tune_lr = 0.01;
  /// Learning-path probe: steps and projection dimensionality.
  int path_steps = 3;
  int projection_dim = 32;
  /// Sim_d estimator settings.
  int sliced_projections = 8;
  double sim_d_scale_km = 2.0;
  /// Sim_s kernel.
  similarity::SpatialKernelParams kernel;
  /// CTML soft k-means stiffness and cluster count.
  double ctml_beta = 1.0;
  int ctml_k = 4;
  uint64_t seed = 1;
  /// Evaluate() batches each worker's held-out samples through the SoA
  /// forecast engine (nn::BatchedSeq2Seq): all of a worker's eval samples
  /// share one parameter vector, so every encoder/decoder step runs as a
  /// true GEMM across the sample batch. Bitwise identical to the scalar
  /// per-sample path (the parity reference), which also serves rows with
  /// non-uniform input lengths.
  bool batched_eval = true;
};

/// Per-worker prediction quality on held-out data.
struct PredictionMetrics {
  double rmse_km = 0.0;
  double mae_km = 0.0;
  double matching_rate = 0.0;  // Def. 7 with the configured threshold a.
  int num_points = 0;          // Evaluated (sample, step) predictions.
};

/// Output of training: per-worker model parameters plus diagnostics.
struct TrainedModels {
  nn::Seq2SeqConfig model_config;
  /// Parameters per learning task (index-aligned with the input task list).
  std::vector<std::vector<double>> worker_params;
  /// The learning task tree (single-node for MAML, one level for CTML).
  std::unique_ptr<cluster::TaskTreeNode> tree;
  double train_seconds = 0.0;  // The TT metric.
  double avg_query_loss = 0.0;
  int num_leaves = 0;
};

/// Aggregate + per-worker evaluation result.
struct EvalResult {
  PredictionMetrics aggregate;
  std::vector<PredictionMetrics> per_worker;
};

/// End-to-end prediction-side pipeline: builds the similarity factors,
/// clusters the learning tasks (per the chosen algorithm), meta-trains with
/// TAML, and fine-tunes one parameter vector per worker.
class MobilityTrainer {
 public:
  explicit MobilityTrainer(const TrainerConfig& config);

  const TrainerConfig& config() const { return config_; }
  const nn::EncoderDecoder& model() const { return model_; }

  /// Trains per-worker mobility models with the given algorithm.
  TrainedModels Train(const std::vector<LearningTask>& tasks,
                      MetaAlgorithm algorithm);

  /// Evaluates trained models on every task's held-out `eval` samples.
  /// `match_radius_km` is the matching-rate threshold a (Def. 7).
  EvalResult Evaluate(const TrainedModels& models,
                      const std::vector<LearningTask>& tasks,
                      const geo::GridSpec& grid,
                      double match_radius_km) const;

  /// Onboards a newcomer (Section III-B, end): finds the most similar tree
  /// node, initializes from its theta, and fine-tunes on the newcomer's
  /// (few) support samples. `existing_tasks` must be the list Train saw.
  std::vector<double> AdaptNewcomer(const TrainedModels& models,
                                    const std::vector<LearningTask>& existing_tasks,
                                    const LearningTask& newcomer);

 private:
  /// Builds the cached pairwise similarity for one factor.
  similarity::PairwiseSimilarity BuildFactor(
      Factor factor, const std::vector<LearningTask>& tasks,
      const std::vector<similarity::GradientPath>& paths) const;

  /// Gradient paths for every task from a shared probe initialization.
  std::vector<similarity::GradientPath> ComputePaths(
      const std::vector<LearningTask>& tasks) const;

  TrainerConfig config_;
  nn::EncoderDecoder model_;
  /// Shares model_'s parameter layout; used by the batched Evaluate path.
  nn::BatchedSeq2Seq batched_model_;
};

}  // namespace tamp::meta
