#pragma once

#include <functional>
#include <vector>

#include "cluster/task_tree.h"
#include "common/rng.h"
#include "meta/learning_task.h"
#include "meta/meta_training.h"
#include "nn/encoder_decoder.h"

namespace tamp::meta {

/// Result of a (sub)tree TAML pass.
struct TamlResult {
  double avg_loss = 0.0;
  /// Mean first-order meta-gradient of the subtree, propagated upward for
  /// the non-leaf update (Alg. 2 line 6).
  std::vector<double> gradient;
};

/// Task Adaptive Meta-learning (Algorithm 2): recursively trains the
/// learning task tree. Leaves run Meta-Training (Algorithm 3) on their
/// cluster; every interior node averages its children's losses and
/// meta-gradients and applies one meta step of rate `config.alpha` to its
/// own theta. Every node's theta must already be sized to
/// model.param_count() (see InitializeTreeParams).
TamlResult Taml(cluster::TaskTreeNode& node,
                const std::vector<LearningTask>& tasks,
                const nn::EncoderDecoder& model, const MetaTrainConfig& config,
                Rng& rng);

/// Seeds every node's theta with the same freshly initialized parameter
/// vector (the shared starting point Alg. 1 line 15 propagates).
void InitializeTreeParams(cluster::TaskTreeNode& root,
                          const std::vector<double>& theta);

/// The leaf whose cluster contains `task_id`, or nullptr. Workers present
/// during training take their leaf's meta-trained theta as initialization.
const cluster::TaskTreeNode* FindLeafForTask(const cluster::TaskTreeNode& root,
                                             int task_id);

/// Newcomer adaptation (Section III-B, end): depth-first post-order search
/// for the tree node whose member tasks are on average most similar to the
/// newcomer, where `similarity_to(task_id)` scores the newcomer against an
/// existing learning task. The newcomer's model is then initialized from
/// that node's theta. Returns the best node (never null for a valid tree).
const cluster::TaskTreeNode* FindMostSimilarNode(
    const cluster::TaskTreeNode& root,
    const std::function<double(int)>& similarity_to);

}  // namespace tamp::meta
