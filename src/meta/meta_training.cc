#include "meta/meta_training.h"

#include <algorithm>

#include "common/check.h"
#include "common/obs/metrics.h"
#include "common/obs/trace.h"
#include "common/parallel.h"
#include "nn/optimizer.h"

namespace tamp::meta {

std::vector<double> SampleWeights(const MetaTrainConfig& config,
                                  const TrainingSample& sample) {
  if (!config.weight_fn) return {};
  std::vector<double> weights;
  weights.reserve(sample.target_km.size());
  for (const auto& p : sample.target_km) weights.push_back(config.weight_fn(p));
  return weights;
}

std::vector<std::vector<double>> BatchSampleWeights(
    const MetaTrainConfig& config, const std::vector<TrainingSample>& samples) {
  std::vector<std::vector<double>> weights;
  if (!config.weight_fn) return weights;  // Empty: uniform for every sample.
  weights.reserve(samples.size());
  for (const TrainingSample& sample : samples) {
    weights.push_back(SampleWeights(config, sample));
  }
  return weights;
}

double BatchLossAndGradient(const nn::EncoderDecoder& model,
                            const std::vector<double>& params,
                            const std::vector<TrainingSample>& samples,
                            const std::vector<std::vector<double>>& weights,
                            std::vector<double>& grad) {
  TAMP_CHECK(!samples.empty());
  TAMP_CHECK(grad.size() == params.size());
  TAMP_CHECK(weights.empty() || weights.size() == samples.size());
  static const std::vector<double> kUniform;
  std::vector<double> sample_grad(params.size(), 0.0);
  double loss_sum = 0.0;
  double inv = 1.0 / static_cast<double>(samples.size());
  for (size_t s = 0; s < samples.size(); ++s) {
    const TrainingSample& sample = samples[s];
    std::fill(sample_grad.begin(), sample_grad.end(), 0.0);
    loss_sum += model.LossAndGradient(params, sample.input, sample.target,
                                      weights.empty() ? kUniform : weights[s],
                                      sample_grad);
    for (size_t i = 0; i < grad.size(); ++i) grad[i] += sample_grad[i] * inv;
  }
  // Plain division (not * inv) keeps the loss bit-identical to the
  // pre-optimization code path.
  return loss_sum / static_cast<double>(samples.size());
}

double BatchLossAndGradient(const nn::EncoderDecoder& model,
                            const std::vector<double>& params,
                            const std::vector<TrainingSample>& samples,
                            const MetaTrainConfig& config,
                            std::vector<double>& grad) {
  return BatchLossAndGradient(model, params, samples,
                              BatchSampleWeights(config, samples), grad);
}

std::vector<double> AdaptKSteps(const nn::EncoderDecoder& model,
                                const std::vector<double>& theta,
                                const std::vector<TrainingSample>& samples,
                                int steps, double beta,
                                const MetaTrainConfig& config) {
  std::vector<double> adapted = theta;
  if (samples.empty()) return adapted;
  // f_w only depends on the sample targets: evaluate it once per sample
  // here instead of once per sample per step inside the loop.
  std::vector<std::vector<double>> weights =
      BatchSampleWeights(config, samples);
  std::vector<double> grad(theta.size());
  for (int s = 0; s < steps; ++s) {
    std::fill(grad.begin(), grad.end(), 0.0);
    BatchLossAndGradient(model, adapted, samples, weights, grad);
    nn::ClipGradientNorm(grad, config.grad_clip);
    for (size_t i = 0; i < adapted.size(); ++i) adapted[i] -= beta * grad[i];
  }
  return adapted;
}

MetaTrainResult MetaTrain(const nn::EncoderDecoder& model,
                          const std::vector<LearningTask>& tasks,
                          const std::vector<int>& members,
                          std::vector<double>& theta,
                          const MetaTrainConfig& config, Rng& rng) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter& iterations_counter =
      registry.GetCounter("meta.iterations");
  static obs::Counter& adapt_steps_counter =
      registry.GetCounter("meta.adapt_steps");
  static obs::Gauge& query_loss_gauge =
      registry.GetGauge("meta.avg_query_loss");

  obs::TraceSpan train_span("meta.train");
  TAMP_CHECK(!members.empty());
  TAMP_CHECK(theta.size() == model.param_count());

  MetaTrainResult result;
  result.meta_gradient.assign(theta.size(), 0.0);

  // One sampled pick's adapt + query-loss result. Computed independently
  // per pick (Alg. 3 lines 4-8 touch only theta, the task's own data, and
  // pick-local buffers), so the batch fans out over the thread pool.
  struct PickResult {
    double query_loss = 0.0;
    bool contributing = false;
    std::vector<double> contribution;  // This pick's meta-gradient term.
  };

  for (int iter = 0; iter < config.iterations; ++iter) {
    iterations_counter.Increment();
    // Alg. 3 line 2: sample a batch of m member tasks. The shared rng is
    // consumed only here, on the calling thread, before the fan-out; the
    // per-pick work below is RNG-free, so no sub-Rng derivation is needed
    // and 1-thread and N-thread runs are bit-identical.
    int m = std::min<int>(config.batch_size, static_cast<int>(members.size()));
    std::vector<size_t> batch = rng.SampleWithoutReplacement(
        members.size(), static_cast<size_t>(m));

    std::vector<PickResult> picks = ParallelMap<PickResult>(
        batch.size(), [&](size_t b) {
          PickResult out;
          const LearningTask& task =
              tasks[static_cast<size_t>(members[batch[b]])];
          if (task.support.empty() || task.query.empty()) return out;
          // Alg. 3 lines 4-7: adapt k steps on the support set.
          std::vector<double> adapted =
              AdaptKSteps(model, theta, task.support, config.adapt_steps,
                          config.beta, config);
          adapt_steps_counter.Increment(config.adapt_steps);
          // Alg. 3 line 8: query loss at the adapted parameters.
          std::vector<double> query_grad(theta.size(), 0.0);
          out.query_loss = BatchLossAndGradient(model, adapted, task.query,
                                                config, query_grad);
          if (config.update_rule == MetaUpdateRule::kFomaml) {
            // First-order MAML: the query gradient at theta_i is this
            // task's contribution to the meta-gradient.
            out.contribution = std::move(query_grad);
          } else {
            // Reptile: move toward the adapted parameters; expressed as a
            // gradient so the same meta step applies.
            double inv_beta = 1.0 / config.beta;
            out.contribution.resize(theta.size());
            for (size_t i = 0; i < theta.size(); ++i) {
              out.contribution[i] = (theta[i] - adapted[i]) * inv_beta;
            }
          }
          out.contributing = true;
          return out;
        });

    // Ordered reduction: accumulate in pick order, exactly as the serial
    // loop did, so the meta step is bit-identical at any thread count.
    std::fill(result.meta_gradient.begin(), result.meta_gradient.end(), 0.0);
    double loss_sum = 0.0;
    int contributing = 0;
    for (const PickResult& pick : picks) {
      if (!pick.contributing) continue;
      for (size_t i = 0; i < theta.size(); ++i) {
        result.meta_gradient[i] += pick.contribution[i];
      }
      loss_sum += pick.query_loss;
      ++contributing;
    }
    if (contributing == 0) continue;
    double inv = 1.0 / static_cast<double>(contributing);
    for (double& g : result.meta_gradient) g *= inv;
    nn::ClipGradientNorm(result.meta_gradient, config.grad_clip);
    // Alg. 3 line 9: meta update.
    for (size_t i = 0; i < theta.size(); ++i) {
      theta[i] -= config.alpha * result.meta_gradient[i];
    }
    result.avg_query_loss = loss_sum * inv;
    query_loss_gauge.Set(result.avg_query_loss);
  }
  return result;
}

double FineTune(const nn::EncoderDecoder& model, const LearningTask& task,
                std::vector<double>& theta, int steps, double learning_rate,
                const MetaTrainConfig& config) {
  std::vector<TrainingSample> samples = task.support;
  samples.insert(samples.end(), task.query.begin(), task.query.end());
  if (samples.empty() || steps <= 0) return 0.0;
  // As in AdaptKSteps: sample weights are step-invariant, compute once.
  std::vector<std::vector<double>> weights =
      BatchSampleWeights(config, samples);
  nn::Adam optimizer(theta.size(), learning_rate);
  std::vector<double> grad(theta.size());
  double loss = 0.0;
  for (int s = 0; s < steps; ++s) {
    std::fill(grad.begin(), grad.end(), 0.0);
    loss = BatchLossAndGradient(model, theta, samples, weights, grad);
    nn::ClipGradientNorm(grad, config.grad_clip);
    optimizer.Step(theta, grad);
  }
  return loss;
}

similarity::GradientPath ComputeGradientPath(
    const nn::EncoderDecoder& model, const LearningTask& task,
    const std::vector<double>& probe_theta, int steps, double beta,
    const similarity::RandomProjector& projector) {
  TAMP_CHECK(probe_theta.size() == model.param_count());
  TAMP_CHECK(projector.input_dim() == model.param_count());
  similarity::GradientPath path;
  path.reserve(static_cast<size_t>(steps));
  MetaTrainConfig plain;  // Uniform weights for the probe.
  std::vector<double> theta = probe_theta;
  std::vector<double> grad(theta.size());
  const std::vector<TrainingSample>& samples =
      task.support.empty() ? task.query : task.support;
  for (int s = 0; s < steps; ++s) {
    std::fill(grad.begin(), grad.end(), 0.0);
    if (!samples.empty()) {
      BatchLossAndGradient(model, theta, samples, plain, grad);
      nn::ClipGradientNorm(grad, plain.grad_clip);
    }
    path.push_back(projector.Project(grad));
    for (size_t i = 0; i < theta.size(); ++i) theta[i] -= beta * grad[i];
  }
  return path;
}

}  // namespace tamp::meta
