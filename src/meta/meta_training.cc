#include "meta/meta_training.h"

#include <algorithm>

#include "common/check.h"
#include "nn/optimizer.h"

namespace tamp::meta {

std::vector<double> SampleWeights(const MetaTrainConfig& config,
                                  const TrainingSample& sample) {
  if (!config.weight_fn) return {};
  std::vector<double> weights;
  weights.reserve(sample.target_km.size());
  for (const auto& p : sample.target_km) weights.push_back(config.weight_fn(p));
  return weights;
}

double BatchLossAndGradient(const nn::EncoderDecoder& model,
                            const std::vector<double>& params,
                            const std::vector<TrainingSample>& samples,
                            const MetaTrainConfig& config,
                            std::vector<double>& grad) {
  TAMP_CHECK(!samples.empty());
  TAMP_CHECK(grad.size() == params.size());
  std::vector<double> sample_grad(params.size(), 0.0);
  double loss_sum = 0.0;
  for (const TrainingSample& sample : samples) {
    std::fill(sample_grad.begin(), sample_grad.end(), 0.0);
    loss_sum += model.LossAndGradient(params, sample.input, sample.target,
                                      SampleWeights(config, sample),
                                      sample_grad);
    double inv = 1.0 / static_cast<double>(samples.size());
    for (size_t i = 0; i < grad.size(); ++i) grad[i] += sample_grad[i] * inv;
  }
  return loss_sum / static_cast<double>(samples.size());
}

std::vector<double> AdaptKSteps(const nn::EncoderDecoder& model,
                                const std::vector<double>& theta,
                                const std::vector<TrainingSample>& samples,
                                int steps, double beta,
                                const MetaTrainConfig& config) {
  std::vector<double> adapted = theta;
  if (samples.empty()) return adapted;
  std::vector<double> grad(theta.size());
  for (int s = 0; s < steps; ++s) {
    std::fill(grad.begin(), grad.end(), 0.0);
    BatchLossAndGradient(model, adapted, samples, config, grad);
    nn::ClipGradientNorm(grad, config.grad_clip);
    for (size_t i = 0; i < adapted.size(); ++i) adapted[i] -= beta * grad[i];
  }
  return adapted;
}

MetaTrainResult MetaTrain(const nn::EncoderDecoder& model,
                          const std::vector<LearningTask>& tasks,
                          const std::vector<int>& members,
                          std::vector<double>& theta,
                          const MetaTrainConfig& config, Rng& rng) {
  TAMP_CHECK(!members.empty());
  TAMP_CHECK(theta.size() == model.param_count());

  MetaTrainResult result;
  result.meta_gradient.assign(theta.size(), 0.0);
  std::vector<double> query_grad(theta.size());

  for (int iter = 0; iter < config.iterations; ++iter) {
    // Alg. 3 line 2: sample a batch of m member tasks.
    int m = std::min<int>(config.batch_size, static_cast<int>(members.size()));
    std::vector<size_t> batch = rng.SampleWithoutReplacement(
        members.size(), static_cast<size_t>(m));

    std::fill(result.meta_gradient.begin(), result.meta_gradient.end(), 0.0);
    double loss_sum = 0.0;
    int contributing = 0;
    for (size_t pick : batch) {
      const LearningTask& task = tasks[static_cast<size_t>(members[pick])];
      if (task.support.empty() || task.query.empty()) continue;
      // Alg. 3 lines 4-7: adapt k steps on the support set.
      std::vector<double> adapted =
          AdaptKSteps(model, theta, task.support, config.adapt_steps,
                      config.beta, config);
      // Alg. 3 line 8: query loss at the adapted parameters.
      std::fill(query_grad.begin(), query_grad.end(), 0.0);
      loss_sum += BatchLossAndGradient(model, adapted, task.query, config,
                                       query_grad);
      if (config.update_rule == MetaUpdateRule::kFomaml) {
        // First-order MAML: the query gradient at theta_i is this task's
        // contribution to the meta-gradient.
        for (size_t i = 0; i < theta.size(); ++i) {
          result.meta_gradient[i] += query_grad[i];
        }
      } else {
        // Reptile: move toward the adapted parameters; expressed as a
        // gradient so the same meta step applies.
        double inv_beta = 1.0 / config.beta;
        for (size_t i = 0; i < theta.size(); ++i) {
          result.meta_gradient[i] += (theta[i] - adapted[i]) * inv_beta;
        }
      }
      ++contributing;
    }
    if (contributing == 0) continue;
    double inv = 1.0 / static_cast<double>(contributing);
    for (double& g : result.meta_gradient) g *= inv;
    nn::ClipGradientNorm(result.meta_gradient, config.grad_clip);
    // Alg. 3 line 9: meta update.
    for (size_t i = 0; i < theta.size(); ++i) {
      theta[i] -= config.alpha * result.meta_gradient[i];
    }
    result.avg_query_loss = loss_sum * inv;
  }
  return result;
}

double FineTune(const nn::EncoderDecoder& model, const LearningTask& task,
                std::vector<double>& theta, int steps, double learning_rate,
                const MetaTrainConfig& config) {
  std::vector<TrainingSample> samples = task.support;
  samples.insert(samples.end(), task.query.begin(), task.query.end());
  if (samples.empty() || steps <= 0) return 0.0;
  nn::Adam optimizer(theta.size(), learning_rate);
  std::vector<double> grad(theta.size());
  double loss = 0.0;
  for (int s = 0; s < steps; ++s) {
    std::fill(grad.begin(), grad.end(), 0.0);
    loss = BatchLossAndGradient(model, theta, samples, config, grad);
    nn::ClipGradientNorm(grad, config.grad_clip);
    optimizer.Step(theta, grad);
  }
  return loss;
}

similarity::GradientPath ComputeGradientPath(
    const nn::EncoderDecoder& model, const LearningTask& task,
    const std::vector<double>& probe_theta, int steps, double beta,
    const similarity::RandomProjector& projector) {
  TAMP_CHECK(probe_theta.size() == model.param_count());
  TAMP_CHECK(projector.input_dim() == model.param_count());
  similarity::GradientPath path;
  path.reserve(static_cast<size_t>(steps));
  MetaTrainConfig plain;  // Uniform weights for the probe.
  std::vector<double> theta = probe_theta;
  std::vector<double> grad(theta.size());
  const std::vector<TrainingSample>& samples =
      task.support.empty() ? task.query : task.support;
  for (int s = 0; s < steps; ++s) {
    std::fill(grad.begin(), grad.end(), 0.0);
    if (!samples.empty()) {
      BatchLossAndGradient(model, theta, samples, plain, grad);
      nn::ClipGradientNorm(grad, plain.grad_clip);
    }
    path.push_back(projector.Project(grad));
    for (size_t i = 0; i < theta.size(); ++i) theta[i] -= beta * grad[i];
  }
  return path;
}

}  // namespace tamp::meta
