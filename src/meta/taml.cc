#include "meta/taml.h"

#include "common/check.h"
#include "nn/optimizer.h"

namespace tamp::meta {

TamlResult Taml(cluster::TaskTreeNode& node,
                const std::vector<LearningTask>& tasks,
                const nn::EncoderDecoder& model, const MetaTrainConfig& config,
                Rng& rng) {
  TAMP_CHECK(node.theta.size() == model.param_count());
  TamlResult result;
  if (node.is_leaf()) {
    // Alg. 2 lines 1-2: leaves run Meta-Training on their own cluster.
    MetaTrainResult trained =
        MetaTrain(model, tasks, node.tasks, node.theta, config, rng);
    result.avg_loss = trained.avg_query_loss;
    result.gradient = std::move(trained.meta_gradient);
    return result;
  }
  // Alg. 2 lines 3-5: recurse into children, averaging losses/gradients.
  result.gradient.assign(model.param_count(), 0.0);
  for (auto& child : node.children) {
    TamlResult child_result = Taml(*child, tasks, model, config, rng);
    result.avg_loss += child_result.avg_loss;
    for (size_t i = 0; i < result.gradient.size(); ++i) {
      result.gradient[i] += child_result.gradient[i];
    }
  }
  double inv = 1.0 / static_cast<double>(node.children.size());
  result.avg_loss *= inv;
  for (double& g : result.gradient) g *= inv;
  // Alg. 2 line 6: update this node's theta with the average gradient.
  nn::ClipGradientNorm(result.gradient, config.grad_clip);
  for (size_t i = 0; i < node.theta.size(); ++i) {
    node.theta[i] -= config.alpha * result.gradient[i];
  }
  return result;
}

void InitializeTreeParams(cluster::TaskTreeNode& root,
                          const std::vector<double>& theta) {
  root.theta = theta;
  for (auto& child : root.children) InitializeTreeParams(*child, theta);
}

const cluster::TaskTreeNode* FindLeafForTask(const cluster::TaskTreeNode& root,
                                             int task_id) {
  if (root.is_leaf()) {
    for (int t : root.tasks) {
      if (t == task_id) return &root;
    }
    return nullptr;
  }
  for (const auto& child : root.children) {
    const cluster::TaskTreeNode* found = FindLeafForTask(*child, task_id);
    if (found != nullptr) return found;
  }
  return nullptr;
}

namespace {

void SearchMostSimilar(const cluster::TaskTreeNode& node,
                       const std::function<double(int)>& similarity_to,
                       const cluster::TaskTreeNode** best,
                       double* best_score) {
  // Depth-first post-order: children first, then the node itself.
  for (const auto& child : node.children) {
    SearchMostSimilar(*child, similarity_to, best, best_score);
  }
  if (node.tasks.empty()) return;
  double sum = 0.0;
  for (int t : node.tasks) sum += similarity_to(t);
  double avg = sum / static_cast<double>(node.tasks.size());
  if (avg > *best_score) {
    *best_score = avg;
    *best = &node;
  }
}

}  // namespace

const cluster::TaskTreeNode* FindMostSimilarNode(
    const cluster::TaskTreeNode& root,
    const std::function<double(int)>& similarity_to) {
  const cluster::TaskTreeNode* best = &root;
  double best_score = -1.0;
  SearchMostSimilar(root, similarity_to, &best, &best_score);
  return best;
}

}  // namespace tamp::meta
