#pragma once

#include <vector>

#include "geo/point.h"
#include "geo/poi.h"
#include "nn/loss.h"

namespace tamp::meta {

/// One (input routine, future routine) pair sampled from a worker's
/// historical data (Def. 3): the input is the seq_in most recent observed
/// locations, the target the seq_out locations that follow. Model
/// coordinates are normalized into [0,1]^2; `target_km` keeps the same
/// target points in map kilometres for the task-assignment-oriented loss
/// weights (Eq. 7), which are functions of real distances to historical tasks.
struct TrainingSample {
  nn::Sequence input;                // seq_in x 2, normalized.
  nn::Sequence target;               // seq_out x 2, normalized.
  std::vector<geo::Point> target_km; // seq_out points in km.
};

/// A learning task Gamma_i (Section III-B): everything the meta-learning
/// stack knows about one worker's mobility-prediction problem.
struct LearningTask {
  int worker_id = -1;

  /// Few-shot adaptation set (MAML inner loop, Alg. 3 lines 4-7).
  std::vector<TrainingSample> support;
  /// Meta-objective set (Alg. 3 line 8).
  std::vector<TrainingSample> query;
  /// Held-out test-day samples used only for RMSE/MAE/MR evaluation.
  std::vector<TrainingSample> eval;

  /// Spatial feature V^(i): POIs visited while performing historical tasks.
  geo::PoiSequence pois;
  /// Distribution feature: the worker's historical location cloud (km),
  /// compared across tasks with the Wasserstein distance (Eq. 3).
  std::vector<geo::Point> location_cloud;
};

}  // namespace tamp::meta
