#include "meta/trainer.h"

#include <algorithm>
#include <cmath>

#include <optional>

#include "cluster/kmeans.h"
#include "common/check.h"
#include "common/obs/metrics.h"
#include "common/obs/trace.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "meta/taml.h"
#include "similarity/learning_path.h"
#include "similarity/wasserstein.h"

namespace tamp::meta {

MobilityTrainer::MobilityTrainer(const TrainerConfig& config)
    : config_(config), model_(config.model), batched_model_(config.model) {
  TAMP_CHECK(!config.factors.empty());
}

std::vector<similarity::GradientPath> MobilityTrainer::ComputePaths(
    const std::vector<LearningTask>& tasks) const {
  obs::TraceSpan paths_span("meta.paths");
  Rng rng(config_.seed ^ 0xA5A5A5A5ULL);
  std::vector<double> probe = model_.InitParams(rng);
  similarity::RandomProjector projector(
      model_.param_count(), static_cast<size_t>(config_.projection_dim),
      config_.seed ^ 0x5A5A5A5AULL);
  // Each task's probe path only reads the shared probe/projector, so the
  // per-task loop fans out; results land at their task index.
  return ParallelMap<similarity::GradientPath>(
      tasks.size(), [&](size_t t) {
        return ComputeGradientPath(model_, tasks[t], probe,
                                   config_.path_steps, config_.meta.beta,
                                   projector);
      });
}

similarity::PairwiseSimilarity MobilityTrainer::BuildFactor(
    Factor factor, const std::vector<LearningTask>& tasks,
    const std::vector<similarity::GradientPath>& paths) const {
  int n = static_cast<int>(tasks.size());
  switch (factor) {
    case Factor::kDistribution:
      return similarity::PairwiseSimilarity(n, [this, &tasks](int i, int j) {
        return similarity::DistributionSimilarity(
            tasks[static_cast<size_t>(i)].location_cloud,
            tasks[static_cast<size_t>(j)].location_cloud,
            config_.sliced_projections, config_.sim_d_scale_km);
      });
    case Factor::kSpatial:
      return similarity::PairwiseSimilarity(n, [this, &tasks](int i, int j) {
        return similarity::SpatialSimilarity(tasks[static_cast<size_t>(i)].pois,
                                             tasks[static_cast<size_t>(j)].pois,
                                             config_.kernel);
      });
    case Factor::kLearningPath:
      return similarity::PairwiseSimilarity(n, [&paths](int i, int j) {
        return similarity::LearningPathSimilarity(paths[static_cast<size_t>(i)],
                                                  paths[static_cast<size_t>(j)]);
      });
  }
  TAMP_CHECK_MSG(false, "unknown factor");
  return similarity::PairwiseSimilarity(0, nullptr);
}

namespace {

/// CTML's task embedding [41]: summary statistics of the input data
/// distribution concatenated with the flattened learning path.
std::vector<double> CtmlFeatures(const LearningTask& task,
                                 const similarity::GradientPath& path) {
  double mx = 0.0, my = 0.0;
  for (const auto& p : task.location_cloud) {
    mx += p.x;
    my += p.y;
  }
  double n = std::max<double>(1.0, static_cast<double>(task.location_cloud.size()));
  mx /= n;
  my /= n;
  double sx = 0.0, sy = 0.0;
  for (const auto& p : task.location_cloud) {
    sx += (p.x - mx) * (p.x - mx);
    sy += (p.y - my) * (p.y - my);
  }
  std::vector<double> features = {mx, my, std::sqrt(sx / n),
                                  std::sqrt(sy / n)};
  for (const auto& step : path) {
    features.insert(features.end(), step.begin(), step.end());
  }
  return features;
}

std::unique_ptr<cluster::TaskTreeNode> SingleClusterTree(int n) {
  auto root = std::make_unique<cluster::TaskTreeNode>();
  root->tasks.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) root->tasks[static_cast<size_t>(i)] = i;
  return root;
}

}  // namespace

TrainedModels MobilityTrainer::Train(const std::vector<LearningTask>& tasks,
                                     MetaAlgorithm algorithm) {
  TAMP_CHECK(!tasks.empty());
  obs::TraceSpan train_span("meta.train_offline");
  Stopwatch watch;
  Rng rng(config_.seed);

  TrainedModels out;
  out.model_config = config_.model;

  const bool needs_paths =
      algorithm == MetaAlgorithm::kCtml ||
      ((algorithm == MetaAlgorithm::kGttaml ||
        algorithm == MetaAlgorithm::kGttamlGt) &&
       std::find(config_.factors.begin(), config_.factors.end(),
                 Factor::kLearningPath) != config_.factors.end());
  std::vector<similarity::GradientPath> paths;
  if (needs_paths) paths = ComputePaths(tasks);

  // Stage 1: build the learning task tree per the chosen algorithm.
  std::optional<obs::TraceSpan> tree_span(std::in_place, "meta.tree");
  switch (algorithm) {
    case MetaAlgorithm::kMaml:
      out.tree = SingleClusterTree(static_cast<int>(tasks.size()));
      break;
    case MetaAlgorithm::kCtml: {
      // One-level tree from soft k-means hard assignments.
      std::vector<std::vector<double>> features;
      features.reserve(tasks.size());
      for (size_t i = 0; i < tasks.size(); ++i) {
        features.push_back(CtmlFeatures(tasks[i], paths[i]));
      }
      cluster::SoftKMeansResult soft = cluster::SoftKMeans(
          features, config_.ctml_k, config_.ctml_beta, rng);
      out.tree = SingleClusterTree(static_cast<int>(tasks.size()));
      std::vector<std::vector<int>> groups(soft.centroids.size());
      for (size_t p = 0; p < tasks.size(); ++p) {
        const auto& resp = soft.responsibilities[p];
        int best = static_cast<int>(
            std::max_element(resp.begin(), resp.end()) - resp.begin());
        groups[static_cast<size_t>(best)].push_back(static_cast<int>(p));
      }
      for (auto& group : groups) {
        if (group.empty()) continue;
        auto child = std::make_unique<cluster::TaskTreeNode>();
        child->tasks = std::move(group);
        child->parent = out.tree.get();
        child->depth = 1;
        out.tree->children.push_back(std::move(child));
      }
      break;
    }
    case MetaAlgorithm::kGttamlGt:
    case MetaAlgorithm::kGttaml: {
      std::vector<similarity::PairwiseSimilarity> factor_sims;
      factor_sims.reserve(config_.factors.size());
      for (Factor f : config_.factors) {
        factor_sims.push_back(BuildFactor(f, tasks, paths));
      }
      std::vector<const similarity::PairwiseSimilarity*> factor_ptrs;
      for (const auto& f : factor_sims) factor_ptrs.push_back(&f);
      cluster::TaskTreeConfig tree_config = config_.tree;
      tree_config.use_game = algorithm == MetaAlgorithm::kGttaml;
      out.tree =
          cluster::BuildLearningTaskTree(factor_ptrs, tree_config, rng);
      break;
    }
  }

  tree_span.reset();

  // Stage 2: TAML over the tree (Alg. 2; plain MAML when the tree is a
  // single node).
  std::optional<obs::TraceSpan> taml_span(std::in_place, "meta.taml");
  std::vector<double> init = model_.InitParams(rng);
  InitializeTreeParams(*out.tree, init);
  TamlResult taml = Taml(*out.tree, tasks, model_, config_.meta, rng);
  out.avg_query_loss = taml.avg_loss;
  out.num_leaves = cluster::CountLeaves(*out.tree);
  taml_span.reset();

  // Stage 3: per-worker fine-tuning from the covering leaf's theta. The
  // tree is read-only here and each worker owns its params slot, so the
  // loop fans out per worker.
  obs::TraceSpan fine_tune_span("meta.fine_tune");
  out.worker_params.resize(tasks.size());
  ParallelFor(tasks.size(), [&](size_t i) {
    const cluster::TaskTreeNode* leaf =
        FindLeafForTask(*out.tree, static_cast<int>(i));
    TAMP_CHECK(leaf != nullptr);
    out.worker_params[i] = leaf->theta;
    FineTune(model_, tasks[i], out.worker_params[i], config_.fine_tune_steps,
             config_.fine_tune_lr, config_.meta);
  });

  out.train_seconds = watch.ElapsedSeconds();
  return out;
}

EvalResult MobilityTrainer::Evaluate(const TrainedModels& models,
                                     const std::vector<LearningTask>& tasks,
                                     const geo::GridSpec& grid,
                                     double match_radius_km) const {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter& evals_counter = registry.GetCounter("eval.runs");
  static obs::Counter& points_counter = registry.GetCounter("eval.points");
  static obs::Gauge& matching_rate_gauge =
      registry.GetGauge("eval.matching_rate");

  obs::TraceSpan eval_span("eval.matching_rate");
  evals_counter.Increment();
  TAMP_CHECK(models.worker_params.size() == tasks.size());
  EvalResult result;
  result.per_worker.resize(tasks.size());

  // Per-worker matching-rate / error estimation is independent across
  // workers: fan out, keeping per-worker partial sums, then aggregate them
  // serially in worker order (bit-identical to the serial loop).
  struct WorkerSums {
    double se = 0.0, ae = 0.0;
    int matched = 0, points = 0;
  };
  std::vector<WorkerSums> sums(tasks.size());
  ParallelFor(tasks.size(), [&](size_t w) {
    const std::vector<TrainingSample>& eval = tasks[w].eval;
    // Per-pool-thread reusable forward buffers: outputs never depend on
    // scratch contents, so the fan-out stays bit-deterministic.
    thread_local nn::PredictScratch predict_scratch;
    thread_local nn::BatchedSeq2SeqScratch batch_scratch;
    thread_local std::vector<const std::vector<double>*> row_params;
    thread_local std::vector<const nn::Sequence*> batch_inputs;
    thread_local std::vector<nn::Sequence> batch_preds;
    // All of this worker's samples share worker_params[w], so the whole
    // eval set runs as one shared-parameter (GEMM) batch; the scalar path
    // remains for non-uniform sample lengths (and as parity reference).
    bool batched = config_.batched_eval && !eval.empty();
    for (size_t i = 1; batched && i < eval.size(); ++i) {
      if (eval[i].input.size() != eval.front().input.size()) batched = false;
    }
    if (batched) {
      row_params.assign(eval.size(), &models.worker_params[w]);
      batch_inputs.resize(eval.size());
      for (size_t i = 0; i < eval.size(); ++i) {
        batch_inputs[i] = &eval[i].input;
      }
      batched_model_.PredictBatch(row_params, batch_inputs, &batch_preds,
                                  batch_scratch);
    }
    double worker_se = 0.0, worker_ae = 0.0;
    int worker_matched = 0, worker_points = 0;
    for (size_t i = 0; i < eval.size(); ++i) {
      const TrainingSample& sample = eval[i];
      nn::Sequence scalar_pred;
      if (!batched) {
        scalar_pred = model_.Predict(models.worker_params[w], sample.input,
                                     &predict_scratch);
      }
      const nn::Sequence& pred = batched ? batch_preds[i] : scalar_pred;
      for (size_t t = 0; t < pred.size(); ++t) {
        geo::Point pred_km = grid.Denormalize({pred[t][0], pred[t][1]});
        geo::Point true_km =
            grid.Denormalize({sample.target[t][0], sample.target[t][1]});
        double d = geo::Distance(pred_km, true_km);
        worker_se += d * d;
        worker_ae += d;
        if (d <= match_radius_km) ++worker_matched;
        ++worker_points;
      }
    }
    PredictionMetrics& pm = result.per_worker[w];
    pm.num_points = worker_points;
    if (worker_points > 0) {
      pm.rmse_km = std::sqrt(worker_se / worker_points);
      pm.mae_km = worker_ae / worker_points;
      pm.matching_rate =
          static_cast<double>(worker_matched) / worker_points;
    }
    sums[w] = {worker_se, worker_ae, worker_matched, worker_points};
  });

  double se_sum = 0.0, ae_sum = 0.0;
  int matched_total = 0, points_total = 0;
  for (const WorkerSums& s : sums) {
    se_sum += s.se;
    ae_sum += s.ae;
    matched_total += s.matched;
    points_total += s.points;
  }

  result.aggregate.num_points = points_total;
  if (points_total > 0) {
    result.aggregate.rmse_km = std::sqrt(se_sum / points_total);
    result.aggregate.mae_km = ae_sum / points_total;
    result.aggregate.matching_rate =
        static_cast<double>(matched_total) / points_total;
  }
  points_counter.Increment(points_total);
  matching_rate_gauge.Set(result.aggregate.matching_rate);
  return result;
}

std::vector<double> MobilityTrainer::AdaptNewcomer(
    const TrainedModels& models,
    const std::vector<LearningTask>& existing_tasks,
    const LearningTask& newcomer) {
  TAMP_CHECK(models.tree != nullptr);
  // Score the newcomer against existing tasks with the distribution factor
  // (the most direct representation; Sim_s/Sim_l need data the newcomer
  // may not have yet).
  auto similarity_to = [&](int task_id) {
    return similarity::DistributionSimilarity(
        newcomer.location_cloud,
        existing_tasks[static_cast<size_t>(task_id)].location_cloud,
        config_.sliced_projections, config_.sim_d_scale_km);
  };
  const cluster::TaskTreeNode* best =
      FindMostSimilarNode(*models.tree, similarity_to);
  std::vector<double> theta = best->theta;
  FineTune(model_, newcomer, theta, config_.fine_tune_steps,
           config_.fine_tune_lr, config_.meta);
  return theta;
}

}  // namespace tamp::meta
