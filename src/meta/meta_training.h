#pragma once

#include <functional>
#include <vector>

#include "common/rng.h"
#include "meta/learning_task.h"
#include "nn/encoder_decoder.h"
#include "similarity/learning_path.h"

namespace tamp::meta {

/// How the meta-gradient of Alg. 3 line 9 is formed.
enum class MetaUpdateRule {
  /// First-order MAML: the query-loss gradient at the adapted parameters
  /// (the default; see DESIGN.md for why this substitutes for the paper's
  /// second-order MAML).
  kFomaml,
  /// Reptile (Nichol et al.): the negated adaptation displacement
  /// (theta - theta_adapted) / beta. Cheaper — no query backward pass —
  /// and a useful ablation of the meta-update itself.
  kReptile,
};

/// Hyper-parameters of the meta-training loop (Algorithm 3) and the
/// per-worker adaptation that follows it.
struct MetaTrainConfig {
  double alpha = 0.05;   // Meta learning rate (outer update).
  double beta = 0.1;     // Adapt learning rate (inner update).
  int adapt_steps = 3;   // k inner steps per sampled task.
  int batch_size = 4;    // m tasks sampled per meta iteration.
  int iterations = 25;   // Meta iterations per leaf cluster.
  double grad_clip = 5.0;
  MetaUpdateRule update_rule = MetaUpdateRule::kFomaml;

  /// Per-location loss weight f_w (Eq. 7) evaluated at the ground-truth
  /// target points; empty means uniform weights (plain MSE), which is what
  /// the *-loss baseline variants use.
  std::function<double(const geo::Point&)> weight_fn;
};

/// Output of one Meta-Training run on a cluster.
struct MetaTrainResult {
  /// Average query loss over the final iteration (Alg. 3 line 10).
  double avg_query_loss = 0.0;
  /// The last meta-gradient (first-order), used by TAML's non-leaf updates.
  std::vector<double> meta_gradient;
};

/// Loss-step weights for a sample: f_w applied to each target point, or
/// empty (uniform) when no weight function is configured.
std::vector<double> SampleWeights(const MetaTrainConfig& config,
                                  const TrainingSample& sample);

/// SampleWeights for every sample of a batch, evaluated once. Returns an
/// empty outer vector when no weight function is configured (uniform).
/// Weights only depend on the sample targets, so multi-step loops (inner
/// adaptation, fine-tuning) compute them once instead of per step.
std::vector<std::vector<double>> BatchSampleWeights(
    const MetaTrainConfig& config, const std::vector<TrainingSample>& samples);

/// Average training loss and (accumulated) gradient of `params` over a set
/// of samples. Returns the mean loss; the mean gradient is *added* into
/// `grad` (which must be zeroed by the caller if desired).
double BatchLossAndGradient(const nn::EncoderDecoder& model,
                            const std::vector<double>& params,
                            const std::vector<TrainingSample>& samples,
                            const MetaTrainConfig& config,
                            std::vector<double>& grad);

/// Same, with the per-sample weights precomputed via BatchSampleWeights
/// (the hot path for multi-step loops).
double BatchLossAndGradient(const nn::EncoderDecoder& model,
                            const std::vector<double>& params,
                            const std::vector<TrainingSample>& samples,
                            const std::vector<std::vector<double>>& weights,
                            std::vector<double>& grad);

/// Adapts `theta` for `steps` SGD steps of rate `beta` on the samples,
/// returning the adapted copy (the MAML inner loop, Alg. 3 lines 4-7).
std::vector<double> AdaptKSteps(const nn::EncoderDecoder& model,
                                const std::vector<double>& theta,
                                const std::vector<TrainingSample>& samples,
                                int steps, double beta,
                                const MetaTrainConfig& config);

/// Meta-Training (Algorithm 3) on one cluster of learning tasks using
/// first-order MAML: each iteration samples m member tasks, adapts k steps
/// on each task's support set, and applies the mean query gradient at the
/// adapted parameters to `theta`. `members` indexes into `tasks`.
MetaTrainResult MetaTrain(const nn::EncoderDecoder& model,
                          const std::vector<LearningTask>& tasks,
                          const std::vector<int>& members,
                          std::vector<double>& theta,
                          const MetaTrainConfig& config, Rng& rng);

/// Per-worker fine-tuning after meta-initialization: `steps` Adam steps on
/// the worker's support + query data. Returns the final training loss.
double FineTune(const nn::EncoderDecoder& model, const LearningTask& task,
                std::vector<double>& theta, int steps, double learning_rate,
                const MetaTrainConfig& config);

/// Records the k-step gradient path Z^(i) of a learning task (Section
/// III-B "Learning path"): the gradient produced at each of the first k
/// adaptation steps starting from the shared probe parameters, each
/// random-projected by `projector` so the cosine similarity (Eq. 2) stays
/// cheap.
similarity::GradientPath ComputeGradientPath(
    const nn::EncoderDecoder& model, const LearningTask& task,
    const std::vector<double>& probe_theta, int steps, double beta,
    const similarity::RandomProjector& projector);

}  // namespace tamp::meta
