#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "nn/encoder_decoder.h"

namespace tamp::nn {

/// Reusable state for BatchedSeq2Seq (DESIGN.md §4i). Grow-only: holding
/// one scratch across batches (the simulator keeps one for the whole run)
/// amortizes every buffer here, in the spirit of assign::AssignReuse.
/// Contents never influence results — each Forward fully overwrites what
/// it reads — so reuse is bit-safe by construction.
struct BatchedSeq2SeqScratch {
  /// One contiguous column range processed by one kernel chain. `shared`
  /// tiles cover rows of a single parameter vector (the weight row is a
  /// loop invariant: a true GEMM); mixed tiles pack runs of
  /// distinct-parameter rows (blocked batched GEMV).
  struct Tile {
    size_t begin = 0;
    size_t end = 0;
    bool shared = false;
  };

  // Batch plan, rebuilt by every Forward.
  std::vector<int> col_row;  // column -> caller row index.
  std::vector<const std::vector<double>*> col_params;
  std::vector<Tile> tiles;
  // Grouping helpers (the map is lookup-only, never iterated).
  std::unordered_map<const std::vector<double>*, size_t> group_index;
  std::vector<std::vector<int>> group_rows;

  // SoA state, feature-major [feature][column] with the batch width as
  // stride so the per-worker inner loops are contiguous.
  std::vector<double> x;    // Current step inputs.
  std::vector<double> h;    // Hidden state.
  std::vector<double> c;    // Cell state.
  std::vector<double> z;    // Gate pre-activations [4H][W].
  std::vector<double> out;  // Decoder outputs [seq_out][output_dim][W].

  // PredictBatch packing buffers.
  std::vector<double> pack_in;
  std::vector<double> pack_out;
};

/// Fleet-batched LSTM encoder-decoder inference over the EncoderDecoder
/// parameter layout: packs every row's (= worker's / sample's) hidden and
/// cell state plus per-step inputs into structure-of-arrays matrices and
/// runs each encoder/decoder timestep as one fused gate kernel per column
/// tile instead of one scalar LstmCell::Forward chain per row.
///
/// Rows are grouped by parameter-vector identity (first-occurrence order,
/// deterministic). Groups of >= 2 rows — e.g. cluster predictors before
/// fine-tune, or one worker's eval samples — share their weights across
/// the tile, making each gate kernel a true GEMM; runs of
/// distinct-parameter rows are packed into fixed-width mixed tiles and
/// run as blocked batched GEMVs. Tiles are kTileCols wide regardless of
/// thread count, so the nn.* work counters are thread-invariant.
///
/// Bit-identity contract: for every output element the floating-point
/// operation chain is exactly the scalar path's — acc starts at b[r],
/// accumulates W_x row r against the input in ascending k, then W_h row r
/// against h_prev in ascending k; gates apply the same Sigmoid/tanh
/// element-wise. Batching only interchanges loops *across* independent
/// elements, so predictions are bitwise identical to
/// EncoderDecoder::Predict (asserted by tests/nn_batched_forecast_test.cc
/// on both datasets at 1 and 4 threads).
class BatchedSeq2Seq {
 public:
  explicit BatchedSeq2Seq(const Seq2SeqConfig& config);

  const Seq2SeqConfig& config() const { return config_; }
  size_t param_count() const { return param_count_; }

  /// Columns per tile. Fixed (not derived from the thread count) so the
  /// deterministic work counters gate exact values in the bench JSON.
  static constexpr size_t kTileCols = 64;

  /// One batched encode+decode pass. `row_params[r]` is row r's full
  /// parameter vector (EncoderDecoder layout, param_count() long).
  /// `inputs` is caller-row-ordered SoA [seq_in][input_dim][R]; `outputs`
  /// (caller-allocated, [seq_out][output_dim][R]) receives the seq_out
  /// predicted steps per row. Increments nn.forecast_cells /
  /// nn.batched_gemm_calls / nn.batch_rows.
  void Forward(const std::vector<const std::vector<double>*>& row_params,
               int seq_in, const double* inputs, double* outputs,
               BatchedSeq2SeqScratch& scratch) const;

  /// Sequence-level convenience wrapper over Forward for callers holding
  /// per-row nn::Sequence inputs (meta evaluation, tests). All inputs must
  /// share one length. `(*outputs)[r]` is bitwise identical to
  /// EncoderDecoder::Predict(*row_params[r], *inputs[r]).
  void PredictBatch(const std::vector<const std::vector<double>*>& row_params,
                    const std::vector<const Sequence*>& inputs,
                    std::vector<Sequence>* outputs,
                    BatchedSeq2SeqScratch& scratch) const;

 private:
  void PlanBatch(const std::vector<const std::vector<double>*>& row_params,
                 BatchedSeq2SeqScratch& scratch) const;

  /// Runs the whole encode+decode for one tile's column range. Tiles touch
  /// disjoint columns of the shared SoA buffers, so they fan out across
  /// the deterministic pool with no synchronization.
  void RunTile(const BatchedSeq2SeqScratch::Tile& tile, size_t width,
               int seq_in, const double* inputs,
               BatchedSeq2SeqScratch& scratch) const;

  /// z = W_x x + W_h h + b for one tile (GEMM when shared, batched GEMV
  /// otherwise), then the element-wise gate update of h/c.
  void CellStep(const LstmCell& cell,
                const BatchedSeq2SeqScratch::Tile& tile, size_t width,
                BatchedSeq2SeqScratch& scratch) const;

  /// Readout y = W h + b for one tile into `dst` [output_dim][width].
  void ReadoutStep(const BatchedSeq2SeqScratch::Tile& tile, size_t width,
                   double* dst, BatchedSeq2SeqScratch& scratch) const;

  Seq2SeqConfig config_;
  LstmCell encoder_;
  LstmCell decoder_;
  Linear readout_;
  size_t param_count_;
};

}  // namespace tamp::nn
