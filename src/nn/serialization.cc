#include "nn/serialization.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace tamp::nn {
namespace {

constexpr char kMagic[] = "TAMP_MODEL v1";

}  // namespace

Status SaveModelBundle(const std::string& path, const ModelBundle& bundle) {
  EncoderDecoder model(bundle.config);
  for (const auto& params : bundle.param_sets) {
    if (params.size() != model.param_count()) {
      return Status::InvalidArgument(
          "parameter set size does not match the model architecture");
    }
  }
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");
  out << kMagic << "\n";
  out << bundle.config.input_dim << " " << bundle.config.hidden_dim << " "
      << bundle.config.output_dim << " " << bundle.config.seq_out << "\n";
  out << bundle.param_sets.size() << " " << model.param_count() << "\n";
  char buf[32];
  for (const auto& params : bundle.param_sets) {
    for (size_t i = 0; i < params.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%.17g", params[i]);
      out << buf << (i + 1 == params.size() ? "" : " ");
    }
    out << "\n";
  }
  out.flush();
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::Ok();
}

StatusOr<ModelBundle> LoadModelBundle(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::string magic;
  std::getline(in, magic);
  if (magic != kMagic) {
    return Status::InvalidArgument("'" + path + "' is not a TAMP model file");
  }
  ModelBundle bundle;
  size_t num_sets = 0, param_count = 0;
  if (!(in >> bundle.config.input_dim >> bundle.config.hidden_dim >>
        bundle.config.output_dim >> bundle.config.seq_out)) {
    return Status::InvalidArgument("malformed architecture line");
  }
  if (bundle.config.input_dim <= 0 || bundle.config.hidden_dim <= 0 ||
      bundle.config.output_dim <= 0 || bundle.config.seq_out <= 0) {
    return Status::InvalidArgument("non-positive architecture dimension");
  }
  if (!(in >> num_sets >> param_count)) {
    return Status::InvalidArgument("malformed size line");
  }
  EncoderDecoder model(bundle.config);
  if (param_count != model.param_count()) {
    return Status::InvalidArgument(
        "recorded parameter count does not match the architecture");
  }
  bundle.param_sets.resize(num_sets);
  for (auto& params : bundle.param_sets) {
    params.resize(param_count);
    for (double& v : params) {
      if (!(in >> v)) {
        return Status::InvalidArgument("truncated parameter data");
      }
    }
  }
  return bundle;
}

}  // namespace tamp::nn
