#include "nn/loss.h"

#include "common/check.h"

namespace tamp::nn {
namespace {

void CheckShapes(const Sequence& predicted, const Sequence& target,
                 const std::vector<double>& weights) {
  TAMP_CHECK(!predicted.empty());
  TAMP_CHECK(predicted.size() == target.size());
  TAMP_CHECK(weights.empty() || weights.size() == predicted.size());
  for (size_t t = 0; t < predicted.size(); ++t) {
    TAMP_CHECK(predicted[t].size() == target[t].size());
    TAMP_CHECK(!predicted[t].empty());
  }
}

}  // namespace

double WeightedMseLoss::Value(const Sequence& predicted,
                              const Sequence& target,
                              const std::vector<double>& weights) {
  CheckShapes(predicted, target, weights);
  double acc = 0.0;
  size_t terms = 0;
  for (size_t t = 0; t < predicted.size(); ++t) {
    double w = weights.empty() ? 1.0 : weights[t];
    for (size_t d = 0; d < predicted[t].size(); ++d) {
      double diff = predicted[t][d] - target[t][d];
      acc += w * diff * diff;
    }
    terms += predicted[t].size();
  }
  // Trust boundary: a NaN/Inf loss silently corrupts meta-training curves.
  return TAMP_CHECK_FINITE(acc / static_cast<double>(terms));
}

Sequence WeightedMseLoss::Gradient(const Sequence& predicted,
                                   const Sequence& target,
                                   const std::vector<double>& weights) {
  CheckShapes(predicted, target, weights);
  size_t terms = 0;
  for (const auto& step : predicted) terms += step.size();
  double scale = 2.0 / static_cast<double>(terms);
  Sequence grad(predicted.size());
  for (size_t t = 0; t < predicted.size(); ++t) {
    double w = weights.empty() ? 1.0 : weights[t];
    grad[t].resize(predicted[t].size());
    for (size_t d = 0; d < predicted[t].size(); ++d) {
      grad[t][d] = TAMP_CHECK_FINITE(scale * w *
                                     (predicted[t][d] - target[t][d]));
    }
  }
  return grad;
}

}  // namespace tamp::nn
