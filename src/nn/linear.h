#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace tamp::nn {

/// A fully-connected layer y = W x + b whose parameters live in a caller-
/// provided flat vector at a fixed offset. The flat-parameter design lets
/// the meta-learning code clone/update whole models with plain vector
/// arithmetic (theta' = theta - beta * grad).
///
/// Layout at `offset`: W row-major [out_dim x in_dim], then b [out_dim].
class Linear {
 public:
  Linear(int in_dim, int out_dim, size_t offset);

  int in_dim() const { return in_dim_; }
  int out_dim() const { return out_dim_; }
  size_t offset() const { return offset_; }
  size_t param_count() const {
    return static_cast<size_t>(out_dim_) * static_cast<size_t>(in_dim_) +
           static_cast<size_t>(out_dim_);
  }

  /// Xavier-initializes this layer's slice of `params`.
  void InitParams(Rng& rng, std::vector<double>& params) const;

  /// y = W x + b. `x` has in_dim entries; `y` is resized to out_dim.
  void Forward(const std::vector<double>& params, const double* x,
               std::vector<double>& y) const;

  /// Accumulates parameter gradients into `grad` and (if dx != nullptr)
  /// writes the input gradient. `dy` has out_dim entries; `x` is the input
  /// from the forward pass.
  void Backward(const std::vector<double>& params, const double* x,
                const double* dy, std::vector<double>& grad,
                double* dx) const;

 private:
  int in_dim_;
  int out_dim_;
  size_t offset_;
};

}  // namespace tamp::nn
