#pragma once

#include <vector>

namespace tamp::nn {

/// A sequence of D-dimensional vectors (model inputs, outputs, targets).
using Sequence = std::vector<std::vector<double>>;

/// Weighted mean-squared-error over an output sequence — Eq. 6 of the
/// paper:  L = (1/|r|) * sum_i f_w(l_i) * ||l_i - l̂_i||^2,
/// normalized additionally by the point dimensionality so losses are
/// comparable across output dims. With all weights equal to 1 this is the
/// plain MSE loss the baselines (KM-loss / PPI-loss) train with.
class WeightedMseLoss {
 public:
  /// Loss value. `weights` has one entry per sequence step; pass an empty
  /// vector for uniform (plain MSE) weights. Sequences must be non-empty
  /// and shape-consistent.
  static double Value(const Sequence& predicted, const Sequence& target,
                      const std::vector<double>& weights);

  /// dL/d(predicted); same shape as `predicted`.
  static Sequence Gradient(const Sequence& predicted, const Sequence& target,
                           const std::vector<double>& weights);
};

}  // namespace tamp::nn
