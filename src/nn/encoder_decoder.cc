#include "nn/encoder_decoder.h"

#include "common/check.h"

namespace tamp::nn {

EncoderDecoder::EncoderDecoder(const Seq2SeqConfig& config)
    : config_(config),
      encoder_(config.input_dim, config.hidden_dim, /*offset=*/0),
      decoder_(config.output_dim, config.hidden_dim,
               encoder_.param_count()),
      readout_(config.hidden_dim, config.output_dim,
               encoder_.param_count() + decoder_.param_count()),
      param_count_(encoder_.param_count() + decoder_.param_count() +
                   readout_.param_count()) {
  TAMP_CHECK(config.seq_out >= 1);
}

std::vector<double> EncoderDecoder::InitParams(Rng& rng) const {
  std::vector<double> params(param_count_, 0.0);
  encoder_.InitParams(rng, params);
  decoder_.InitParams(rng, params);
  readout_.InitParams(rng, params);
  return params;
}

void EncoderDecoder::RunForward(
    const std::vector<double>& params, const Sequence& input_seq,
    const Sequence* teacher_targets, std::vector<LstmStepCache>* enc_caches,
    std::vector<LstmStepCache>* dec_caches,
    std::vector<std::vector<double>>* dec_hidden, Sequence* outputs,
    PredictScratch* scratch) const {
  TAMP_CHECK(params.size() == param_count_);
  TAMP_CHECK(!input_seq.empty());
  for (const auto& step : input_seq) {
    TAMP_CHECK(static_cast<int>(step.size()) == config_.input_dim);
  }

  const size_t hd = static_cast<size_t>(config_.hidden_dim);
  const size_t seq_out = static_cast<size_t>(config_.seq_out);
  const size_t out_dim = static_cast<size_t>(config_.output_dim);
  // State buffers come from the scratch when given (reused across calls;
  // fully overwritten here, so results are identical either way).
  std::vector<double> local_h;
  std::vector<double> local_c;
  std::vector<double> local_dec;
  LstmStepCache local_cache;
  std::vector<double>& h = scratch != nullptr ? scratch->h : local_h;
  std::vector<double>& c = scratch != nullptr ? scratch->c : local_c;
  h.assign(hd, 0.0);
  c.assign(hd, 0.0);

  if (enc_caches != nullptr) enc_caches->resize(input_seq.size());
  LstmStepCache& step_cache =
      scratch != nullptr ? scratch->cell : local_cache;
  for (size_t t = 0; t < input_seq.size(); ++t) {
    LstmStepCache& cache =
        enc_caches != nullptr ? (*enc_caches)[t] : step_cache;
    encoder_.Forward(params, input_seq[t].data(), h, c, cache);
  }

  if (dec_caches != nullptr) dec_caches->resize(seq_out);
  if (dec_hidden != nullptr) dec_hidden->resize(seq_out);

  outputs->resize(seq_out);
  // The decoder's first input is the most recent observed location; later
  // inputs are the previous ground truth (teacher forcing) or the previous
  // prediction (autoregressive inference).
  std::vector<double>& dec_input =
      scratch != nullptr ? scratch->dec_input : local_dec;
  dec_input = input_seq.back();
  dec_input.resize(out_dim, 0.0);
  for (size_t t = 0; t < seq_out; ++t) {
    LstmStepCache& cache =
        dec_caches != nullptr ? (*dec_caches)[t] : step_cache;
    decoder_.Forward(params, dec_input.data(), h, c, cache);
    if (dec_hidden != nullptr) (*dec_hidden)[t] = h;
    readout_.Forward(params, h.data(), (*outputs)[t]);
    if (t + 1 < seq_out) {
      dec_input = teacher_targets != nullptr
                      ? (*teacher_targets)[t]
                      : (*outputs)[t];
      dec_input.resize(out_dim, 0.0);
    }
  }
}

Sequence EncoderDecoder::Predict(const std::vector<double>& params,
                                 const Sequence& input_seq,
                                 PredictScratch* scratch) const {
  Sequence outputs;
  RunForward(params, input_seq, /*teacher_targets=*/nullptr,
             /*enc_caches=*/nullptr, /*dec_caches=*/nullptr,
             /*dec_hidden=*/nullptr, &outputs, scratch);
  return outputs;
}

double EncoderDecoder::LossAndGradient(const std::vector<double>& params,
                                       const Sequence& input_seq,
                                       const Sequence& target_seq,
                                       const std::vector<double>& step_weights,
                                       std::vector<double>& grad) const {
  TAMP_CHECK(grad.size() == param_count_);
  TAMP_CHECK(static_cast<int>(target_seq.size()) == config_.seq_out);

  std::vector<LstmStepCache> enc_caches;
  std::vector<LstmStepCache> dec_caches;
  std::vector<std::vector<double>> dec_hidden;
  Sequence outputs;
  RunForward(params, input_seq, &target_seq, &enc_caches, &dec_caches,
             &dec_hidden, &outputs, /*scratch=*/nullptr);

  double loss = WeightedMseLoss::Value(outputs, target_seq, step_weights);
  Sequence dout = WeightedMseLoss::Gradient(outputs, target_seq, step_weights);

  const size_t hd = static_cast<size_t>(config_.hidden_dim);
  std::vector<double> dh(hd, 0.0);
  std::vector<double> dc(hd, 0.0);
  std::vector<double> dh_step(hd);

  // Backward through the decoder. Teacher forcing means decoder inputs are
  // constants, so no gradient flows through dx; the recurrent state carries
  // all credit back into the encoder.
  for (size_t t = static_cast<size_t>(config_.seq_out); t-- > 0;) {
    readout_.Backward(params, dec_hidden[t].data(), dout[t].data(), grad,
                      dh_step.data());
    for (size_t k = 0; k < hd; ++k) dh[k] += dh_step[k];
    decoder_.Backward(params, dec_caches[t], dh, dc, grad, /*dx=*/nullptr);
  }
  // Backward through the encoder; input gradients are not needed.
  for (size_t t = enc_caches.size(); t-- > 0;) {
    encoder_.Backward(params, enc_caches[t], dh, dc, grad, /*dx=*/nullptr);
  }
  return loss;
}

double EncoderDecoder::EvalLoss(const std::vector<double>& params,
                                const Sequence& input_seq,
                                const Sequence& target_seq,
                                const std::vector<double>& step_weights,
                                PredictScratch* scratch) const {
  Sequence local;
  Sequence& outputs = scratch != nullptr ? scratch->outputs : local;
  RunForward(params, input_seq, /*teacher_targets=*/nullptr,
             /*enc_caches=*/nullptr, /*dec_caches=*/nullptr,
             /*dec_hidden=*/nullptr, &outputs, scratch);
  return WeightedMseLoss::Value(outputs, target_seq, step_weights);
}

}  // namespace tamp::nn
