#include "nn/lstm_cell.h"

#include <cmath>

#include "common/check.h"
#include "nn/init.h"

namespace tamp::nn {
namespace {

double Sigmoid(double v) { return 1.0 / (1.0 + std::exp(-v)); }

}  // namespace

LstmCell::LstmCell(int input_dim, int hidden_dim, size_t offset)
    : input_dim_(input_dim), hidden_dim_(hidden_dim), offset_(offset) {
  TAMP_CHECK(input_dim > 0 && hidden_dim > 0);
}

void LstmCell::InitParams(Rng& rng, std::vector<double>& params) const {
  TAMP_CHECK(params.size() >= offset_ + param_count());
  const size_t id = static_cast<size_t>(input_dim_);
  const size_t hd = static_cast<size_t>(hidden_dim_);
  const size_t h4 = 4 * hd;
  double* wx = params.data() + offset_;
  double* wh = wx + h4 * id;
  double* b = wh + h4 * hd;
  XavierUniform(rng, wx, h4 * id, input_dim_, hidden_dim_);
  XavierUniform(rng, wh, h4 * hd, hidden_dim_, hidden_dim_);
  Fill(b, h4, 0.0);
  // Forget-gate bias block (second of four) starts open.
  Fill(b + hd, hd, 1.0);
}

void LstmCell::Forward(const std::vector<double>& params, const double* x,
                       std::vector<double>& h, std::vector<double>& c,
                       LstmStepCache& cache) const {
  const size_t id = static_cast<size_t>(input_dim_);
  const size_t hd = static_cast<size_t>(hidden_dim_);
  const size_t h4 = 4 * hd;
  const double* wx = params.data() + offset_;
  const double* wh = wx + h4 * id;
  const double* b = wh + h4 * hd;

  cache.x.assign(x, x + id);
  cache.h_prev = h;
  cache.c_prev = c;

  // z = W_x x + W_h h_prev + b, gate blocks [i f g o]. The buffer lives in
  // the cache so a reused cache makes the step allocation-free; every
  // entry is overwritten below.
  cache.z.resize(h4);
  std::vector<double>& z = cache.z;
  for (size_t r = 0; r < h4; ++r) {
    double acc = b[r];
    const double* wxr = wx + r * id;
    for (size_t k = 0; k < id; ++k) acc += wxr[k] * x[k];
    const double* whr = wh + r * hd;
    for (size_t k = 0; k < hd; ++k) acc += whr[k] * cache.h_prev[k];
    z[r] = acc;
  }

  cache.i.resize(hd);
  cache.f.resize(hd);
  cache.g.resize(hd);
  cache.o.resize(hd);
  cache.c.resize(hd);
  cache.tanh_c.resize(hd);
  for (size_t k = 0; k < hd; ++k) {
    cache.i[k] = Sigmoid(z[k]);
    cache.f[k] = Sigmoid(z[hd + k]);
    cache.g[k] = std::tanh(z[2 * hd + k]);
    cache.o[k] = Sigmoid(z[3 * hd + k]);
    cache.c[k] = cache.f[k] * cache.c_prev[k] + cache.i[k] * cache.g[k];
    cache.tanh_c[k] = std::tanh(cache.c[k]);
  }
  c = cache.c;
  h.resize(hd);
  for (size_t k = 0; k < hd; ++k) h[k] = cache.o[k] * cache.tanh_c[k];
}

void LstmCell::Backward(const std::vector<double>& params,
                        const LstmStepCache& cache, std::vector<double>& dh,
                        std::vector<double>& dc, std::vector<double>& grad,
                        double* dx) const {
  TAMP_CHECK(grad.size() == params.size());
  const size_t id = static_cast<size_t>(input_dim_);
  const size_t hd = static_cast<size_t>(hidden_dim_);
  const size_t h4 = 4 * hd;
  const double* wx = params.data() + offset_;
  const double* wh = wx + h4 * id;
  double* dwx = grad.data() + offset_;
  double* dwh = dwx + h4 * id;
  double* db = dwh + h4 * hd;

  // Gate pre-activation gradients dz, blocks [i f g o].
  std::vector<double> dz(h4);
  std::vector<double> dc_prev(hd);
  for (size_t k = 0; k < hd; ++k) {
    double i = cache.i[k], f = cache.f[k], g = cache.g[k], o = cache.o[k];
    double tc = cache.tanh_c[k];
    double d_o = dh[k] * tc;
    double d_c = dc[k] + dh[k] * o * (1.0 - tc * tc);
    double d_i = d_c * g;
    double d_f = d_c * cache.c_prev[k];
    double d_g = d_c * i;
    dz[k] = d_i * i * (1.0 - i);
    dz[hd + k] = d_f * f * (1.0 - f);
    dz[2 * hd + k] = d_g * (1.0 - g * g);
    dz[3 * hd + k] = d_o * o * (1.0 - o);
    dc_prev[k] = d_c * f;
  }

  std::vector<double> dh_prev(hd, 0.0);
  if (dx != nullptr) {
    for (size_t k = 0; k < id; ++k) dx[k] = 0.0;
  }
  for (size_t r = 0; r < h4; ++r) {
    double gz = dz[r];
    db[r] += gz;
    const double* wxr = wx + r * id;
    double* dwxr = dwx + r * id;
    for (size_t k = 0; k < id; ++k) {
      dwxr[k] += gz * cache.x[k];
      if (dx != nullptr) dx[k] += gz * wxr[k];
    }
    const double* whr = wh + r * hd;
    double* dwhr = dwh + r * hd;
    for (size_t k = 0; k < hd; ++k) {
      dwhr[k] += gz * cache.h_prev[k];
      dh_prev[k] += gz * whr[k];
    }
  }
  dh = std::move(dh_prev);
  dc = std::move(dc_prev);
}

}  // namespace tamp::nn
