#pragma once

#include <cstddef>

#include "common/rng.h"

namespace tamp::nn {

/// Xavier/Glorot uniform initialization for a weight block of shape
/// fan_out x fan_in: U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out))).
void XavierUniform(Rng& rng, double* data, size_t count, int fan_in,
                   int fan_out);

/// Fills a block with a constant (used for biases; LSTM forget-gate biases
/// are conventionally initialized to 1 for gradient flow).
void Fill(double* data, size_t count, double value);

}  // namespace tamp::nn
