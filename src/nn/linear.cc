#include "nn/linear.h"

#include "common/check.h"
#include "nn/init.h"

namespace tamp::nn {

Linear::Linear(int in_dim, int out_dim, size_t offset)
    : in_dim_(in_dim), out_dim_(out_dim), offset_(offset) {
  TAMP_CHECK(in_dim > 0 && out_dim > 0);
}

void Linear::InitParams(Rng& rng, std::vector<double>& params) const {
  TAMP_CHECK(params.size() >= offset_ + param_count());
  size_t w_count = static_cast<size_t>(out_dim_) * static_cast<size_t>(in_dim_);
  XavierUniform(rng, params.data() + offset_, w_count, in_dim_, out_dim_);
  Fill(params.data() + offset_ + w_count, static_cast<size_t>(out_dim_), 0.0);
}

void Linear::Forward(const std::vector<double>& params, const double* x,
                     std::vector<double>& y) const {
  const size_t in = static_cast<size_t>(in_dim_);
  const size_t out = static_cast<size_t>(out_dim_);
  const double* w = params.data() + offset_;
  const double* b = w + out * in;
  y.assign(out, 0.0);
  for (size_t r = 0; r < out; ++r) {
    double acc = b[r];
    const double* wr = w + r * in;
    for (size_t c = 0; c < in; ++c) acc += wr[c] * x[c];
    y[r] = acc;
  }
}

void Linear::Backward(const std::vector<double>& params, const double* x,
                      const double* dy, std::vector<double>& grad,
                      double* dx) const {
  TAMP_CHECK(grad.size() == params.size());
  const size_t in = static_cast<size_t>(in_dim_);
  const size_t out = static_cast<size_t>(out_dim_);
  const double* w = params.data() + offset_;
  double* dw = grad.data() + offset_;
  double* db = dw + out * in;
  if (dx != nullptr) {
    for (size_t c = 0; c < in; ++c) dx[c] = 0.0;
  }
  for (size_t r = 0; r < out; ++r) {
    double g = dy[r];
    db[r] += g;
    const double* wr = w + r * in;
    double* dwr = dw + r * in;
    for (size_t c = 0; c < in; ++c) {
      dwr[c] += g * x[c];
      if (dx != nullptr) dx[c] += g * wr[c];
    }
  }
}

}  // namespace tamp::nn
