#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/encoder_decoder.h"

namespace tamp::nn {

/// A model bundle on disk: the architecture plus one or more parameter
/// vectors (e.g. the per-worker models the offline stage produces).
struct ModelBundle {
  Seq2SeqConfig config;
  std::vector<std::vector<double>> param_sets;
};

/// Writes a bundle as a line-oriented text file (round-trip exact via
/// %.17g). Returns InvalidArgument for inconsistent shapes and Internal
/// for I/O failures. The trained platform state can thus persist between
/// the offline and online stages, as Fig. 1's deployment implies.
Status SaveModelBundle(const std::string& path, const ModelBundle& bundle);

/// Reads a bundle written by SaveModelBundle. Returns NotFound when the
/// file cannot be opened and InvalidArgument on malformed content
/// (including parameter counts that do not match the recorded config).
StatusOr<ModelBundle> LoadModelBundle(const std::string& path);

}  // namespace tamp::nn
