#include "nn/gru_cell.h"

#include <cmath>

#include "common/check.h"
#include "nn/init.h"

namespace tamp::nn {
namespace {

double Sigmoid(double v) { return 1.0 / (1.0 + std::exp(-v)); }

}  // namespace

GruCell::GruCell(int input_dim, int hidden_dim, size_t offset)
    : input_dim_(input_dim), hidden_dim_(hidden_dim), offset_(offset) {
  TAMP_CHECK(input_dim > 0 && hidden_dim > 0);
}

void GruCell::InitParams(Rng& rng, std::vector<double>& params) const {
  TAMP_CHECK(params.size() >= offset_ + param_count());
  const size_t id = static_cast<size_t>(input_dim_);
  const size_t hd = static_cast<size_t>(hidden_dim_);
  const size_t h3 = 3 * hd;
  double* w = params.data() + offset_;
  double* u = w + h3 * id;
  double* b = u + h3 * hd;
  XavierUniform(rng, w, h3 * id, input_dim_, hidden_dim_);
  XavierUniform(rng, u, h3 * hd, hidden_dim_, hidden_dim_);
  Fill(b, h3, 0.0);
}

void GruCell::Forward(const std::vector<double>& params, const double* x,
                      std::vector<double>& h, GruStepCache& cache) const {
  const size_t id = static_cast<size_t>(input_dim_);
  const size_t hd = static_cast<size_t>(hidden_dim_);
  const size_t h3 = 3 * hd;
  const double* w = params.data() + offset_;
  const double* u = w + h3 * id;
  const double* b = u + h3 * hd;

  cache.x.assign(x, x + id);
  cache.h_prev = h;

  // Pre-activations: a = W x + b for all three blocks; uh = U h per block.
  std::vector<double> a(h3);
  std::vector<double> uh(h3);
  for (size_t row = 0; row < h3; ++row) {
    double acc = b[row];
    const double* wr = w + row * id;
    for (size_t k = 0; k < id; ++k) acc += wr[k] * x[k];
    a[row] = acc;
    const double* ur = u + row * hd;
    double acc_u = 0.0;
    for (size_t k = 0; k < hd; ++k) acc_u += ur[k] * cache.h_prev[k];
    uh[row] = acc_u;
  }

  cache.z.resize(hd);
  cache.r.resize(hd);
  cache.n.resize(hd);
  cache.uh.assign(uh.begin() + static_cast<ptrdiff_t>(2 * hd),
                  uh.end());  // U_n h block only.
  h.resize(hd);
  for (size_t k = 0; k < hd; ++k) {
    cache.z[k] = Sigmoid(a[k] + uh[k]);
    cache.r[k] = Sigmoid(a[hd + k] + uh[hd + k]);
    cache.n[k] = std::tanh(a[2 * hd + k] + cache.r[k] * cache.uh[k]);
    h[k] = (1.0 - cache.z[k]) * cache.n[k] + cache.z[k] * cache.h_prev[k];
  }
}

void GruCell::Backward(const std::vector<double>& params,
                       const GruStepCache& cache, std::vector<double>& dh,
                       std::vector<double>& grad, double* dx) const {
  TAMP_CHECK(grad.size() == params.size());
  const size_t id = static_cast<size_t>(input_dim_);
  const size_t hd = static_cast<size_t>(hidden_dim_);
  const size_t h3 = 3 * hd;
  const double* w = params.data() + offset_;
  const double* u = w + h3 * id;
  double* dw = grad.data() + offset_;
  double* du = dw + h3 * id;
  double* db = du + h3 * hd;

  // Pre-activation gradients, blocks [z r n]. The n-block's U-product is
  // gated by r, handled separately below.
  std::vector<double> dpre(h3);
  std::vector<double> dh_prev(hd, 0.0);
  for (size_t k = 0; k < hd; ++k) {
    double z = cache.z[k], r = cache.r[k], n = cache.n[k];
    double d_out = dh[k];
    double d_z = d_out * (cache.h_prev[k] - n);
    double d_n = d_out * (1.0 - z);
    dh_prev[k] += d_out * z;
    double d_npre = d_n * (1.0 - n * n);
    double d_r = d_npre * cache.uh[k];
    dpre[k] = d_z * z * (1.0 - z);
    dpre[hd + k] = d_r * r * (1.0 - r);
    dpre[2 * hd + k] = d_npre;
  }

  if (dx != nullptr) {
    for (size_t k = 0; k < id; ++k) dx[k] = 0.0;
  }
  for (size_t row = 0; row < h3; ++row) {
    size_t k = row % hd;
    bool n_block = row >= 2 * hd;
    double g = dpre[row];
    db[row] += g;
    const double* wr = w + row * id;
    double* dwr = dw + row * id;
    for (size_t c = 0; c < id; ++c) {
      dwr[c] += g * cache.x[c];
      if (dx != nullptr) dx[c] += g * wr[c];
    }
    // U-path: for z/r blocks dL/d(U h) = g; for the n block the product
    // is gated by r, so dL/d(U_n h) = g * r.
    double gu = n_block ? g * cache.r[k] : g;
    const double* ur = u + row * hd;
    double* dur = du + row * hd;
    for (size_t c = 0; c < hd; ++c) {
      dur[c] += gu * cache.h_prev[c];
      dh_prev[c] += gu * ur[c];
    }
  }
  dh = std::move(dh_prev);
}

}  // namespace tamp::nn
