#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/lstm_cell.h"

namespace tamp::nn {

/// Architecture of the mobility prediction model (Section III-B
/// "Discussion"): an LSTM encoder over the seq_in observed locations, an
/// LSTM decoder rolled out for seq_out future steps, and a linear read-out
/// producing a location per decoder step.
struct Seq2SeqConfig {
  int input_dim = 2;    // (x, y), normalized into [0,1].
  int hidden_dim = 16;  // LSTM state width.
  int output_dim = 2;   // Predicted (x, y).
  int seq_out = 1;      // Number of future locations to emit.
};

/// Reusable buffers for the gradient-free forward passes. Without one,
/// Predict / EvalLoss allocate the recurrent state, decoder input, step
/// cache and (EvalLoss) the output sequence afresh on every call — pure
/// allocator traffic on the rollout and evaluation hot loops. Passing a
/// scratch (persisted across calls; shrink-then-grow safe) removes it;
/// results are bitwise identical with or without one.
struct PredictScratch {
  LstmStepCache cell;
  std::vector<double> h;
  std::vector<double> c;
  std::vector<double> dec_input;
  Sequence outputs;  // EvalLoss's prediction buffer.
};

/// LSTM-Encoder-Decoder mobility prediction model with hand-written
/// backpropagation-through-time.
///
/// The model is *stateless*: all weights live in a flat caller-owned
/// std::vector<double> whose layout this class defines. This makes the
/// meta-learning algorithms (MAML / TAML) plain vector arithmetic: clone the
/// vector, adapt it with Sgd, compute a query gradient against it. Gradients
/// produced here are exact (validated against finite differences in
/// tests/nn_gradient_check_test.cc).
class EncoderDecoder {
 public:
  explicit EncoderDecoder(const Seq2SeqConfig& config);

  const Seq2SeqConfig& config() const { return config_; }
  size_t param_count() const { return param_count_; }

  /// Freshly initialized parameter vector (Xavier weights, forget bias 1).
  std::vector<double> InitParams(Rng& rng) const;

  /// Autoregressive inference: encodes `input_seq` (>= 1 steps of
  /// input_dim values) and decodes config().seq_out future points, feeding
  /// each prediction back as the next decoder input. `scratch` (optional)
  /// reuses buffers across calls.
  Sequence Predict(const std::vector<double>& params,
                   const Sequence& input_seq,
                   PredictScratch* scratch = nullptr) const;

  /// Teacher-forced training pass on one (input, target) sample: runs the
  /// forward pass, computes the weighted MSE (Eq. 6; empty `step_weights`
  /// means plain MSE), and *accumulates* dLoss/dparams into `grad` (which
  /// must be param_count() long). Returns the loss value.
  double LossAndGradient(const std::vector<double>& params,
                         const Sequence& input_seq, const Sequence& target_seq,
                         const std::vector<double>& step_weights,
                         std::vector<double>& grad) const;

  /// Loss of the autoregressive prediction against the target (no
  /// gradient); used for held-out evaluation. With a `scratch` the call is
  /// allocation-free (the prediction lands in scratch->outputs).
  double EvalLoss(const std::vector<double>& params, const Sequence& input_seq,
                  const Sequence& target_seq,
                  const std::vector<double>& step_weights,
                  PredictScratch* scratch = nullptr) const;

 private:
  /// Shared forward machinery. When `teacher_targets` is non-null the
  /// decoder consumes ground-truth previous locations (training); otherwise
  /// it consumes its own predictions (inference). Caches are filled only
  /// when `enc_caches`/`dec_caches` are non-null. Predictions land in
  /// `*outputs` (resized to seq_out); `scratch` (optional) supplies the
  /// recurrent-state / decoder-input / step-cache buffers.
  void RunForward(const std::vector<double>& params,
                  const Sequence& input_seq, const Sequence* teacher_targets,
                  std::vector<LstmStepCache>* enc_caches,
                  std::vector<LstmStepCache>* dec_caches,
                  std::vector<std::vector<double>>* dec_hidden,
                  Sequence* outputs, PredictScratch* scratch) const;

  Seq2SeqConfig config_;
  LstmCell encoder_;
  LstmCell decoder_;
  Linear readout_;
  size_t param_count_;
};

}  // namespace tamp::nn
