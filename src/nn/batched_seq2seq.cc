#include "nn/batched_seq2seq.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/obs/metrics.h"
#include "common/parallel.h"

namespace tamp::nn {
namespace {

double Sigmoid(double v) { return 1.0 / (1.0 + std::exp(-v)); }

}  // namespace

BatchedSeq2Seq::BatchedSeq2Seq(const Seq2SeqConfig& config)
    : config_(config),
      encoder_(config.input_dim, config.hidden_dim, /*offset=*/0),
      decoder_(config.output_dim, config.hidden_dim, encoder_.param_count()),
      readout_(config.hidden_dim, config.output_dim,
               encoder_.param_count() + decoder_.param_count()),
      param_count_(encoder_.param_count() + decoder_.param_count() +
                   readout_.param_count()) {
  TAMP_CHECK(config.seq_out >= 1);
}

void BatchedSeq2Seq::PlanBatch(
    const std::vector<const std::vector<double>*>& row_params,
    BatchedSeq2SeqScratch& scratch) const {
  const size_t rows = row_params.size();
  // Group rows by parameter-vector identity in first-occurrence order (the
  // map is a lookup table only — the deterministic order lives in
  // group_rows). Identity, not value: two equal vectors at different
  // addresses stay separate groups, which only costs GEMM-ness, never
  // correctness.
  scratch.group_index.clear();
  size_t n_groups = 0;
  for (size_t r = 0; r < rows; ++r) {
    TAMP_CHECK(row_params[r] != nullptr);
    TAMP_CHECK(row_params[r]->size() == param_count_);
    auto [it, inserted] = scratch.group_index.try_emplace(row_params[r],
                                                          n_groups);
    if (inserted) {
      if (scratch.group_rows.size() <= n_groups) {
        scratch.group_rows.emplace_back();
      }
      scratch.group_rows[n_groups].clear();
      ++n_groups;
    }
    scratch.group_rows[it->second].push_back(static_cast<int>(r));
  }

  // Lay the groups out as columns: multi-row groups become `shared` tiles
  // (one weight fetch serves the whole tile: GEMM); runs of consecutive
  // single-row groups are packed together into mixed tiles (blocked
  // batched GEMV) so a fully fine-tuned fleet still amortizes loop
  // overhead across kTileCols workers per kernel.
  scratch.col_row.clear();
  scratch.col_params.clear();
  scratch.tiles.clear();
  size_t mixed_start = 0;  // First column of the open mixed run.
  auto flush_mixed = [&scratch, &mixed_start](size_t end) {
    for (size_t b = mixed_start; b < end; b += kTileCols) {
      scratch.tiles.push_back({b, std::min(end, b + kTileCols), false});
    }
    mixed_start = end;
  };
  for (size_t g = 0; g < n_groups; ++g) {
    const std::vector<int>& members = scratch.group_rows[g];
    if (members.size() == 1) {
      scratch.col_row.push_back(members[0]);
      scratch.col_params.push_back(row_params[static_cast<size_t>(members[0])]);
      continue;  // Stays in the open mixed run.
    }
    flush_mixed(scratch.col_row.size());
    const size_t group_begin = scratch.col_row.size();
    for (int r : members) {
      scratch.col_row.push_back(r);
      scratch.col_params.push_back(row_params[static_cast<size_t>(r)]);
    }
    for (size_t b = group_begin; b < scratch.col_row.size(); b += kTileCols) {
      scratch.tiles.push_back(
          {b, std::min(scratch.col_row.size(), b + kTileCols), true});
    }
    mixed_start = scratch.col_row.size();
  }
  flush_mixed(scratch.col_row.size());
  TAMP_CHECK(scratch.col_row.size() == rows);
}

void BatchedSeq2Seq::CellStep(const LstmCell& cell,
                              const BatchedSeq2SeqScratch::Tile& tile,
                              size_t width,
                              BatchedSeq2SeqScratch& scratch) const {
  const size_t id = static_cast<size_t>(cell.input_dim());
  const size_t hd = static_cast<size_t>(cell.hidden_dim());
  const size_t h4 = 4 * hd;
  const size_t begin = tile.begin;
  const size_t end = tile.end;
  double* z = scratch.z.data();
  double* h = scratch.h.data();
  double* c = scratch.c.data();
  const double* x = scratch.x.data();

  // z = W_x x + W_h h_prev + b, gate blocks [i f g o]. Per column the
  // accumulation chain is exactly LstmCell::Forward's: b[r], then W_x row
  // r in ascending k, then W_h row r in ascending k.
  if (tile.shared) {
    // One parameter vector for the whole tile: the weight element is a
    // loop invariant across columns (true GEMM, r-k-col loop order).
    const double* wx = scratch.col_params[begin]->data() + cell.offset();
    const double* wh = wx + h4 * id;
    const double* b = wh + h4 * hd;
    for (size_t r = 0; r < h4; ++r) {
      double* zr = z + r * width;
      const double br = b[r];
      for (size_t col = begin; col < end; ++col) zr[col] = br;
      const double* wxr = wx + r * id;
      for (size_t k = 0; k < id; ++k) {
        const double w = wxr[k];
        const double* xk = x + k * width;
        for (size_t col = begin; col < end; ++col) zr[col] += w * xk[col];
      }
      const double* whr = wh + r * hd;
      for (size_t k = 0; k < hd; ++k) {
        const double w = whr[k];
        const double* hk = h + k * width;
        for (size_t col = begin; col < end; ++col) zr[col] += w * hk[col];
      }
    }
  } else {
    // Distinct parameters per column: batched GEMV, one column at a time
    // against the SoA state (col-r-k loop order).
    for (size_t col = begin; col < end; ++col) {
      const double* wx = scratch.col_params[col]->data() + cell.offset();
      const double* wh = wx + h4 * id;
      const double* b = wh + h4 * hd;
      for (size_t r = 0; r < h4; ++r) {
        double acc = b[r];
        const double* wxr = wx + r * id;
        for (size_t k = 0; k < id; ++k) acc += wxr[k] * x[k * width + col];
        const double* whr = wh + r * hd;
        for (size_t k = 0; k < hd; ++k) acc += whr[k] * h[k * width + col];
        z[r * width + col] = acc;
      }
    }
  }

  // Element-wise gate update (independent per (k, col) element, so any
  // loop order preserves bit-identity with the scalar path).
  for (size_t k = 0; k < hd; ++k) {
    for (size_t col = begin; col < end; ++col) {
      const double iv = Sigmoid(z[k * width + col]);
      const double fv = Sigmoid(z[(hd + k) * width + col]);
      const double gv = std::tanh(z[(2 * hd + k) * width + col]);
      const double ov = Sigmoid(z[(3 * hd + k) * width + col]);
      const double cv = fv * c[k * width + col] + iv * gv;
      c[k * width + col] = cv;
      h[k * width + col] = ov * std::tanh(cv);
    }
  }
}

void BatchedSeq2Seq::ReadoutStep(const BatchedSeq2SeqScratch::Tile& tile,
                                 size_t width, double* dst,
                                 BatchedSeq2SeqScratch& scratch) const {
  const size_t in = static_cast<size_t>(readout_.in_dim());
  const size_t out = static_cast<size_t>(readout_.out_dim());
  const size_t begin = tile.begin;
  const size_t end = tile.end;
  const double* h = scratch.h.data();
  if (tile.shared) {
    const double* w = scratch.col_params[begin]->data() + readout_.offset();
    const double* b = w + out * in;
    for (size_t r = 0; r < out; ++r) {
      double* dr = dst + r * width;
      const double br = b[r];
      for (size_t col = begin; col < end; ++col) dr[col] = br;
      const double* wr = w + r * in;
      for (size_t k = 0; k < in; ++k) {
        const double wv = wr[k];
        const double* hk = h + k * width;
        for (size_t col = begin; col < end; ++col) dr[col] += wv * hk[col];
      }
    }
  } else {
    for (size_t col = begin; col < end; ++col) {
      const double* w = scratch.col_params[col]->data() + readout_.offset();
      const double* b = w + out * in;
      for (size_t r = 0; r < out; ++r) {
        double acc = b[r];
        const double* wr = w + r * in;
        for (size_t k = 0; k < in; ++k) acc += wr[k] * h[k * width + col];
        dst[r * width + col] = acc;
      }
    }
  }
}

void BatchedSeq2Seq::RunTile(const BatchedSeq2SeqScratch::Tile& tile,
                             size_t width, int seq_in, const double* inputs,
                             BatchedSeq2SeqScratch& scratch) const {
  const size_t id = static_cast<size_t>(config_.input_dim);
  const size_t hd = static_cast<size_t>(config_.hidden_dim);
  const size_t od = static_cast<size_t>(config_.output_dim);
  const size_t in_steps = static_cast<size_t>(seq_in);
  const size_t seq_out = static_cast<size_t>(config_.seq_out);
  const size_t begin = tile.begin;
  const size_t end = tile.end;
  double* x = scratch.x.data();
  double* h = scratch.h.data();
  double* c = scratch.c.data();

  for (size_t k = 0; k < hd; ++k) {
    for (size_t col = begin; col < end; ++col) {
      h[k * width + col] = 0.0;
      c[k * width + col] = 0.0;
    }
  }

  // Encoder: gather each step's caller-row-ordered inputs into the tile's
  // columns, then one fused cell step.
  for (size_t t = 0; t < in_steps; ++t) {
    for (size_t k = 0; k < id; ++k) {
      const double* src = inputs + (t * id + k) * width;
      double* xk = x + k * width;
      for (size_t col = begin; col < end; ++col) {
        xk[col] = src[static_cast<size_t>(scratch.col_row[col])];
      }
    }
    CellStep(encoder_, tile, width, scratch);
  }

  // Decoder: the first input is the last observed step resized to
  // output_dim (truncate or zero-pad, like EncoderDecoder::RunForward);
  // later inputs are the previous prediction.
  for (size_t k = 0; k < od; ++k) {
    double* xk = x + k * width;
    if (k < id) {
      const double* src = inputs + ((in_steps - 1) * id + k) * width;
      for (size_t col = begin; col < end; ++col) {
        xk[col] = src[static_cast<size_t>(scratch.col_row[col])];
      }
    } else {
      for (size_t col = begin; col < end; ++col) xk[col] = 0.0;
    }
  }
  for (size_t t = 0; t < seq_out; ++t) {
    CellStep(decoder_, tile, width, scratch);
    double* step_out = scratch.out.data() + t * od * width;
    ReadoutStep(tile, width, step_out, scratch);
    if (t + 1 < seq_out) {
      for (size_t k = 0; k < od; ++k) {
        const double* src = step_out + k * width;
        double* xk = x + k * width;
        for (size_t col = begin; col < end; ++col) xk[col] = src[col];
      }
    }
  }
}

void BatchedSeq2Seq::Forward(
    const std::vector<const std::vector<double>*>& row_params, int seq_in,
    const double* inputs, double* outputs,
    BatchedSeq2SeqScratch& scratch) const {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter& cells_counter =
      registry.GetCounter("nn.forecast_cells");
  static obs::Counter& gemm_counter =
      registry.GetCounter("nn.batched_gemm_calls");
  static obs::Counter& rows_counter = registry.GetCounter("nn.batch_rows");

  const size_t rows = row_params.size();
  if (rows == 0) return;
  TAMP_CHECK(seq_in >= 1);
  PlanBatch(row_params, scratch);

  const size_t id = static_cast<size_t>(config_.input_dim);
  const size_t hd = static_cast<size_t>(config_.hidden_dim);
  const size_t od = static_cast<size_t>(config_.output_dim);
  const size_t seq_out = static_cast<size_t>(config_.seq_out);
  const size_t x_rows = std::max(id, od);
  scratch.x.resize(x_rows * rows);
  scratch.h.resize(hd * rows);
  scratch.c.resize(hd * rows);
  scratch.z.resize(4 * hd * rows);
  scratch.out.resize(seq_out * od * rows);

  // Deterministic work accounting, centralized so the totals are exact and
  // thread-invariant: every row pays (seq_in + seq_out) cell steps (the
  // scalar path's LstmCell::Forward call count), and every tile launches
  // one fused gate kernel per cell step plus one readout kernel per
  // decoder step.
  const size_t cell_steps = static_cast<size_t>(seq_in) + seq_out;
  cells_counter.Increment(static_cast<int64_t>(rows * cell_steps));
  gemm_counter.Increment(
      static_cast<int64_t>(scratch.tiles.size() * (cell_steps + seq_out)));
  rows_counter.Increment(static_cast<int64_t>(rows));

  // Tiles write disjoint column ranges of the shared SoA buffers, so the
  // fan-out is race-free and the result thread-count independent.
  ParallelFor(scratch.tiles.size(), [&](size_t ti) {
    RunTile(scratch.tiles[ti], rows, seq_in, inputs, scratch);
  });

  // Scatter column-ordered outputs back to caller row order.
  for (size_t t = 0; t < seq_out; ++t) {
    for (size_t k = 0; k < od; ++k) {
      const double* src = scratch.out.data() + (t * od + k) * rows;
      double* dst = outputs + (t * od + k) * rows;
      for (size_t col = 0; col < rows; ++col) {
        dst[static_cast<size_t>(scratch.col_row[col])] = src[col];
      }
    }
  }
}

void BatchedSeq2Seq::PredictBatch(
    const std::vector<const std::vector<double>*>& row_params,
    const std::vector<const Sequence*>& inputs, std::vector<Sequence>* outputs,
    BatchedSeq2SeqScratch& scratch) const {
  TAMP_CHECK(outputs != nullptr);
  TAMP_CHECK(inputs.size() == row_params.size());
  const size_t rows = row_params.size();
  outputs->resize(rows);
  if (rows == 0) return;

  const size_t id = static_cast<size_t>(config_.input_dim);
  const size_t od = static_cast<size_t>(config_.output_dim);
  const size_t seq_out = static_cast<size_t>(config_.seq_out);
  TAMP_CHECK(inputs[0] != nullptr && !inputs[0]->empty());
  const size_t seq_in = inputs[0]->size();
  for (size_t r = 0; r < rows; ++r) {
    TAMP_CHECK(inputs[r] != nullptr);
    TAMP_CHECK_MSG(inputs[r]->size() == seq_in,
                   "PredictBatch rows must share one input length");
    for (const std::vector<double>& step : *inputs[r]) {
      TAMP_CHECK(step.size() == id);
    }
  }

  scratch.pack_in.resize(seq_in * id * rows);
  scratch.pack_out.resize(seq_out * od * rows);
  for (size_t t = 0; t < seq_in; ++t) {
    for (size_t k = 0; k < id; ++k) {
      double* dst = scratch.pack_in.data() + (t * id + k) * rows;
      for (size_t r = 0; r < rows; ++r) dst[r] = (*inputs[r])[t][k];
    }
  }
  Forward(row_params, static_cast<int>(seq_in), scratch.pack_in.data(),
          scratch.pack_out.data(), scratch);
  for (size_t r = 0; r < rows; ++r) {
    Sequence& seq = (*outputs)[r];
    seq.resize(seq_out);
    for (size_t t = 0; t < seq_out; ++t) {
      seq[t].resize(od);
      for (size_t k = 0; k < od; ++k) {
        seq[t][k] = scratch.pack_out[(t * od + k) * rows + r];
      }
    }
  }
}

}  // namespace tamp::nn
