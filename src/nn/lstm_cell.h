#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace tamp::nn {

/// Per-timestep activation cache written by LstmCell::Forward and consumed
/// by LstmCell::Backward during backpropagation-through-time.
struct LstmStepCache {
  std::vector<double> x;       // Input at this step.
  std::vector<double> h_prev;  // Hidden state entering the step.
  std::vector<double> c_prev;  // Cell state entering the step.
  std::vector<double> i;       // Input gate (post-sigmoid).
  std::vector<double> f;       // Forget gate (post-sigmoid).
  std::vector<double> g;       // Candidate (post-tanh).
  std::vector<double> o;       // Output gate (post-sigmoid).
  std::vector<double> c;       // New cell state.
  std::vector<double> tanh_c;  // tanh(c), reused in backward.
  std::vector<double> z;       // Pre-activation scratch (forward only;
                               // never read by Backward).
};

/// A single LSTM cell with parameters stored in a caller-provided flat
/// vector (see Linear for the rationale). Gate order in the packed weight
/// blocks is [input, forget, candidate, output].
///
/// Layout at `offset`:
///   W_x  [4H x I]  row-major
///   W_h  [4H x H]  row-major
///   b    [4H]
class LstmCell {
 public:
  LstmCell(int input_dim, int hidden_dim, size_t offset);

  int input_dim() const { return input_dim_; }
  int hidden_dim() const { return hidden_dim_; }
  size_t offset() const { return offset_; }
  size_t param_count() const {
    size_t h = static_cast<size_t>(hidden_dim_);
    size_t h4 = 4 * h;
    return h4 * static_cast<size_t>(input_dim_) + h4 * h + h4;
  }

  /// Xavier weights; forget-gate bias initialized to 1.
  void InitParams(Rng& rng, std::vector<double>& params) const;

  /// One timestep. `x` has input_dim entries; h/c are the recurrent state
  /// (hidden_dim each) and are updated in place. Fills `cache` for the
  /// backward pass.
  void Forward(const std::vector<double>& params, const double* x,
               std::vector<double>& h, std::vector<double>& c,
               LstmStepCache& cache) const;

  /// Backward through one timestep. `dh`/`dc` carry the gradient w.r.t. the
  /// step's outputs and are replaced with the gradient w.r.t. the incoming
  /// h_prev/c_prev. Parameter gradients accumulate into `grad`; if
  /// dx != nullptr the input gradient is written there.
  void Backward(const std::vector<double>& params, const LstmStepCache& cache,
                std::vector<double>& dh, std::vector<double>& dc,
                std::vector<double>& grad, double* dx) const;

 private:
  int input_dim_;
  int hidden_dim_;
  size_t offset_;
};

}  // namespace tamp::nn
