#include "nn/init.h"

#include <cmath>

namespace tamp::nn {

void XavierUniform(Rng& rng, double* data, size_t count, int fan_in,
                   int fan_out) {
  double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (size_t i = 0; i < count; ++i) data[i] = rng.Uniform(-limit, limit);
}

void Fill(double* data, size_t count, double value) {
  for (size_t i = 0; i < count; ++i) data[i] = value;
}

}  // namespace tamp::nn
