#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace tamp::nn {

/// Per-timestep activation cache for GruCell's backward pass.
struct GruStepCache {
  std::vector<double> x;       // Input at this step.
  std::vector<double> h_prev;  // Hidden state entering the step.
  std::vector<double> z;       // Update gate (post-sigmoid).
  std::vector<double> r;       // Reset gate (post-sigmoid).
  std::vector<double> n;       // Candidate (post-tanh).
  std::vector<double> uh;      // U_n h_prev (pre-reset product), reused.
};

/// A gated recurrent unit (Cho et al. [27] — the paper's encoder-decoder
/// reference architecture) with parameters in a caller-provided flat
/// vector, mirroring LstmCell's conventions. Provided as the alternative
/// recurrent substrate: the meta-learning stack is model-agnostic, and the
/// GRU trades a third of the LSTM's parameters for slightly less gating.
///
///   z = sigmoid(W_z x + U_z h + b_z)        (update gate)
///   r = sigmoid(W_r x + U_r h + b_r)        (reset gate)
///   n = tanh   (W_n x + r .* (U_n h) + b_n) (candidate)
///   h' = (1 - z) .* n + z .* h
///
/// Layout at `offset`:
///   W  [3H x I] row-major, gate blocks [z r n]
///   U  [3H x H] row-major, gate blocks [z r n]
///   b  [3H]
class GruCell {
 public:
  GruCell(int input_dim, int hidden_dim, size_t offset);

  int input_dim() const { return input_dim_; }
  int hidden_dim() const { return hidden_dim_; }
  size_t offset() const { return offset_; }
  size_t param_count() const {
    size_t h = static_cast<size_t>(hidden_dim_);
    size_t h3 = 3 * h;
    return h3 * static_cast<size_t>(input_dim_) + h3 * h + h3;
  }

  /// Xavier weights, zero biases.
  void InitParams(Rng& rng, std::vector<double>& params) const;

  /// One timestep; `h` (hidden_dim) is updated in place and `cache` filled
  /// for the backward pass.
  void Forward(const std::vector<double>& params, const double* x,
               std::vector<double>& h, GruStepCache& cache) const;

  /// Backward through one timestep: `dh` carries dLoss/dh' in and is
  /// replaced by dLoss/dh_prev. Parameter gradients accumulate into
  /// `grad`; the input gradient is written to `dx` when non-null.
  void Backward(const std::vector<double>& params, const GruStepCache& cache,
                std::vector<double>& dh, std::vector<double>& grad,
                double* dx) const;

 private:
  int input_dim_;
  int hidden_dim_;
  size_t offset_;
};

}  // namespace tamp::nn
