#pragma once

#include <cstddef>
#include <vector>

namespace tamp::nn {

/// Plain gradient descent: theta <- theta - lr * grad. This is the update
/// rule Algorithms 2-3 of the paper use for both the adapt (beta) and meta
/// (alpha) steps.
class Sgd {
 public:
  explicit Sgd(double learning_rate);

  double learning_rate() const { return lr_; }

  /// Applies one step in place. Sizes must match.
  void Step(std::vector<double>& params, const std::vector<double>& grad);

 private:
  double lr_;
};

/// Adam optimizer used for per-worker fine-tuning after meta-initialization
/// (faster convergence than SGD on the few-shot adaptation data).
class Adam {
 public:
  Adam(size_t param_count, double learning_rate, double beta1 = 0.9,
       double beta2 = 0.999, double epsilon = 1e-8);

  void Step(std::vector<double>& params, const std::vector<double>& grad);

  /// Clears the moment estimates (e.g. when re-used for a new model).
  void Reset();

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double epsilon_;
  int t_ = 0;
  std::vector<double> m_;
  std::vector<double> v_;
};

/// Rescales `grad` so its L2 norm does not exceed `max_norm`; returns the
/// pre-clip norm. Guards BPTT against exploding gradients.
double ClipGradientNorm(std::vector<double>& grad, double max_norm);

}  // namespace tamp::nn
