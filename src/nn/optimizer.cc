#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"

namespace tamp::nn {

Sgd::Sgd(double learning_rate) : lr_(learning_rate) {
  TAMP_CHECK(learning_rate > 0.0);
}

void Sgd::Step(std::vector<double>& params, const std::vector<double>& grad) {
  TAMP_CHECK(params.size() == grad.size());
  for (size_t i = 0; i < params.size(); ++i) params[i] -= lr_ * grad[i];
}

Adam::Adam(size_t param_count, double learning_rate, double beta1,
           double beta2, double epsilon)
    : lr_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      m_(param_count, 0.0),
      v_(param_count, 0.0) {
  TAMP_CHECK(learning_rate > 0.0);
}

void Adam::Step(std::vector<double>& params, const std::vector<double>& grad) {
  TAMP_CHECK(params.size() == grad.size());
  TAMP_CHECK(params.size() == m_.size());
  ++t_;
  double bc1 = 1.0 - std::pow(beta1_, t_);
  double bc2 = 1.0 - std::pow(beta2_, t_);
  for (size_t i = 0; i < params.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grad[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grad[i] * grad[i];
    double m_hat = m_[i] / bc1;
    double v_hat = v_[i] / bc2;
    params[i] -= lr_ * m_hat / (std::sqrt(v_hat) + epsilon_);
  }
}

void Adam::Reset() {
  t_ = 0;
  std::fill(m_.begin(), m_.end(), 0.0);
  std::fill(v_.begin(), v_.end(), 0.0);
}

double ClipGradientNorm(std::vector<double>& grad, double max_norm) {
  TAMP_CHECK(max_norm > 0.0);
  double norm_sq = 0.0;
  for (double g : grad) norm_sq += g * g;
  double norm = std::sqrt(norm_sq);
  if (norm > max_norm) {
    double scale = max_norm / norm;
    for (double& g : grad) g *= scale;
  }
  return norm;
}

}  // namespace tamp::nn
