#pragma once

#include <vector>

#include "assign/types.h"
#include "common/rng.h"
#include "geo/grid.h"
#include "geo/point.h"

namespace tamp::data {

/// A spatial demand hotspot: tasks appear around it with Gaussian spread.
/// Mirrors the Didi order dataset's concentration on pickup hotspots
/// (workload 1) / the Foursquare venue set (workload 2).
struct TaskHotspot {
  geo::Point center;
  double spread_km = 0.8;
  double weight = 1.0;  // Relative share of demand.
};

/// Parameters of the synthetic task stream.
struct TaskStreamConfig {
  int num_tasks = 1000;
  double horizon_start_min = 8 * 60.0;
  double horizon_end_min = 20 * 60.0;
  /// Validity period bounds in time units (Table III's "valid time of
  /// tasks"); one unit is `time_unit_min` minutes.
  double valid_lo_units = 3.0;
  double valid_hi_units = 4.0;
  double time_unit_min = 10.0;
  /// Rush-hour factor: arrival intensity is 1 + rush_amplitude at the
  /// morning/evening peaks, mirroring ride-hailing demand.
  double rush_amplitude = 1.0;
};

/// Generates `config.num_tasks` tasks: arrival times from a rush-hour-
/// shaped (thinned) process over the horizon, locations from the weighted
/// hotspot mixture, deadlines = arrival + Uniform[valid_lo, valid_hi] time
/// units. Tasks are returned sorted by release time with ids 0..n-1.
std::vector<assign::SpatialTask> GenerateTaskStream(
    const TaskStreamConfig& config, const std::vector<TaskHotspot>& hotspots,
    const geo::GridSpec& grid, Rng& rng);

/// Samples `count` task *locations* only (no times) from the hotspot
/// mixture: the historical-task point cloud the task-assignment-oriented
/// loss (Eq. 7) is weighted by.
std::vector<geo::Point> SampleTaskLocations(
    int count, const std::vector<TaskHotspot>& hotspots,
    const geo::GridSpec& grid, Rng& rng);

}  // namespace tamp::data
