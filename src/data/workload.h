#pragma once

#include <string_view>
#include <vector>

#include "assign/types.h"
#include "common/rng.h"
#include "common/status.h"
#include "data/mobility.h"
#include "data/tasks.h"
#include "geo/grid.h"
#include "geo/trajectory.h"
#include "meta/learning_task.h"

namespace tamp::data {

/// Which real-world dataset pair the synthetic workload mimics (Table II).
enum class WorkloadKind {
  /// Workload 1: Porto taxi trajectories (workers) + Didi orders (tasks).
  /// Dense city, heterogeneous archetypes, task hotspots distinct from
  /// worker home zones.
  kPortoDidi,
  /// Workload 2: Gowalla check-ins (workers) + Foursquare venues (tasks).
  /// Venue-hopping mobility; tasks placed on the *same* venue clusters as
  /// worker movement, so worker and task distributions are much more
  /// similar (the property Appendix C attributes the smaller worker-cost
  /// gaps to).
  kGowallaFoursquare,
};

/// Canonical short name of a dataset pair ("porto", "gowalla"); static
/// storage, round-trips through ParseWorkloadKind.
std::string_view WorkloadKindName(WorkloadKind kind);

/// Inverse of WorkloadKindName (case-insensitive; the long forms
/// "porto_didi" / "gowalla_foursquare" also parse). InvalidArgument for
/// anything else.
StatusOr<WorkloadKind> ParseWorkloadKind(std::string_view name);

/// Everything needed to generate one experiment's data.
struct WorkloadConfig {
  WorkloadKind kind = WorkloadKind::kPortoDidi;
  int num_workers = 60;
  int num_zones = 4;
  int num_train_days = 6;
  int num_test_days = 1;
  DayParams day;
  /// Sliding-window sample shape (Def. 3 / Table III).
  int seq_in = 5;
  int seq_out = 1;
  /// Fraction of train samples used as support (rest become query).
  double support_fraction = 0.6;
  /// Fraction of workers that are "newcomers" with a single train day.
  double newcomer_fraction = 0.0;
  /// Task stream over the test horizon.
  int num_tasks = 1000;
  double task_valid_lo_units = 3.0;
  double task_valid_hi_units = 4.0;
  double time_unit_min = 10.0;
  /// Historical task locations (for the Eq. 7 loss weights).
  int num_historical_tasks = 3000;
  /// Worker motion/constraint parameters.
  double detour_budget_km = 4.0;
  double speed_kmpm = 0.5;  // 30 km/h.
  /// Fraction of the day a part-time worker is online and assignable
  /// (Section II: workers "come to the platform dynamically"). The online
  /// window's start is drawn uniformly; 1.0 means always online.
  double online_fraction = 0.4;
  uint64_t seed = 7;
};

/// One synthetic worker: identity, ground-truth movement, and constraints.
struct WorkerRecord {
  int id = -1;
  MobilityProfile profile;
  geo::Trajectory train;  // num_train_days of movement (absolute minutes).
  geo::Trajectory test;   // The assignment-horizon day(s).
  double detour_budget_km = 4.0;
  double speed_kmpm = 0.5;
  /// When the worker is online/assignable during the test horizon
  /// (absolute minutes). The worker moves along the routine all day but
  /// only takes tasks inside this window.
  double online_start_min = 0.0;
  double online_end_min = 0.0;
  bool is_newcomer = false;
};

/// A fully generated workload.
struct Workload {
  geo::GridSpec grid{20.0, 10.0, 50, 100};
  std::vector<WorkerRecord> workers;
  /// One learning task per worker, index-aligned with `workers`.
  std::vector<meta::LearningTask> learning_tasks;
  /// The test-horizon task stream, sorted by release time.
  std::vector<assign::SpatialTask> task_stream;
  /// Historical (train-period) task locations for the Eq. 7 weights.
  std::vector<geo::Point> historical_task_locations;
  /// The demand hotspots the streams were drawn from.
  std::vector<TaskHotspot> hotspots;
};

/// Generates the full workload deterministically from config.seed.
Workload GenerateWorkload(const WorkloadConfig& config);

/// Dimensionality of the model input produced by ExtractSamples:
/// (x, y, time-of-day), all normalized into [0, 1]. Mobility routines are
/// strongly time-keyed (a commuter at 9am and 5pm heads opposite ways), so
/// the time feature is part of every workload sample.
inline constexpr int kSampleInputDim = 3;

/// Extracts sliding-window (seq_in -> seq_out) samples from a trajectory,
/// normalizing coordinates with `grid` and appending the normalized
/// time-of-day feature to each input step (kSampleInputDim total).
/// Samples never span day boundaries. Targets stay 2-D locations.
std::vector<meta::TrainingSample> ExtractSamples(const geo::Trajectory& traj,
                                                 int seq_in, int seq_out,
                                                 const geo::GridSpec& grid);

}  // namespace tamp::data
