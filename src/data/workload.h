#pragma once

#include <string_view>
#include <vector>

#include "assign/types.h"
#include "common/rng.h"
#include "common/status.h"
#include "data/mobility.h"
#include "data/tasks.h"
#include "geo/grid.h"
#include "geo/trajectory.h"
#include "meta/learning_task.h"

namespace tamp::data {

/// Which real-world dataset pair the synthetic workload mimics (Table II).
enum class WorkloadKind {
  /// Workload 1: Porto taxi trajectories (workers) + Didi orders (tasks).
  /// Dense city, heterogeneous archetypes, task hotspots distinct from
  /// worker home zones.
  kPortoDidi,
  /// Workload 2: Gowalla check-ins (workers) + Foursquare venues (tasks).
  /// Venue-hopping mobility; tasks placed on the *same* venue clusters as
  /// worker movement, so worker and task distributions are much more
  /// similar (the property Appendix C attributes the smaller worker-cost
  /// gaps to).
  kGowallaFoursquare,
};

/// Canonical short name of a dataset pair ("porto", "gowalla"); static
/// storage, round-trips through ParseWorkloadKind.
std::string_view WorkloadKindName(WorkloadKind kind);

/// Inverse of WorkloadKindName (case-insensitive; the long forms
/// "porto_didi" / "gowalla_foursquare" also parse). InvalidArgument for
/// anything else.
StatusOr<WorkloadKind> ParseWorkloadKind(std::string_view name);

/// Every WorkloadKind, in presentation order (porto, gowalla).
const std::vector<WorkloadKind>& AllWorkloadKinds();

/// The scenario axis, orthogonal to the dataset pair: how the generated
/// stream and the worker pool behave over the horizon. Baseline is the
/// paper's batch-replay setting; surge and churn are the DATA-WA-style
/// dynamic-availability stress scenarios the event-driven simulator
/// exists to measure (events/second under load).
enum class WorkloadScenario {
  /// The paper's setting: the calibrated task stream, one contiguous
  /// online window per worker, no mid-task dropout.
  kBaseline,
  /// Rush-hour / festival burst: an extra wave of tasks concentrated in a
  /// short time window around one dense hotspot, on top of the baseline
  /// stream. Workers are unchanged.
  kSurge,
  /// Dynamic worker availability: each worker's single online window is
  /// split into several short login/logout sessions across the day, and
  /// accepted tasks may be dropped mid-service (the worker logs off and
  /// the task returns to the pool).
  kChurn,
};

/// Canonical scenario name ("baseline", "surge", "churn"); static storage,
/// round-trips through ParseWorkloadScenario.
std::string_view WorkloadScenarioName(WorkloadScenario scenario);

/// Inverse of WorkloadScenarioName (case-insensitive); InvalidArgument for
/// anything else, listing the accepted names.
StatusOr<WorkloadScenario> ParseWorkloadScenario(std::string_view name);

/// Every WorkloadScenario, baseline first.
const std::vector<WorkloadScenario>& AllWorkloadScenarios();

/// The full workload selector every entry point configures itself from
/// (the --workload=<kind> flag): a dataset pair plus a scenario. Named
/// "<dataset>" for baseline and "<dataset>_<scenario>" otherwise, e.g.
/// "porto", "porto_surge", "gowalla_churn".
struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::kPortoDidi;
  WorkloadScenario scenario = WorkloadScenario::kBaseline;

  friend bool operator==(const WorkloadSpec&, const WorkloadSpec&) = default;
};

/// Canonical spec name ("porto", "gowalla_surge", ...); round-trips
/// through ParseWorkloadSpec.
std::string WorkloadSpecName(const WorkloadSpec& spec);

/// Inverse of WorkloadSpecName (case-insensitive; bare dataset names mean
/// the baseline scenario, and the long dataset forms parse too).
/// InvalidArgument for anything else, listing the accepted names.
StatusOr<WorkloadSpec> ParseWorkloadSpec(std::string_view name);

/// Every (kind, scenario) combination, grouped by dataset with baseline
/// first — the sweep order bench_stream reports in.
const std::vector<WorkloadSpec>& AllWorkloadSpecs();

/// Everything needed to generate one experiment's data.
struct WorkloadConfig {
  WorkloadKind kind = WorkloadKind::kPortoDidi;
  int num_workers = 60;
  int num_zones = 4;
  int num_train_days = 6;
  int num_test_days = 1;
  DayParams day;
  /// Sliding-window sample shape (Def. 3 / Table III).
  int seq_in = 5;
  int seq_out = 1;
  /// Fraction of train samples used as support (rest become query).
  double support_fraction = 0.6;
  /// Fraction of workers that are "newcomers" with a single train day.
  double newcomer_fraction = 0.0;
  /// Task stream over the test horizon.
  int num_tasks = 1000;
  double task_valid_lo_units = 3.0;
  double task_valid_hi_units = 4.0;
  double time_unit_min = 10.0;
  /// Historical task locations (for the Eq. 7 loss weights).
  int num_historical_tasks = 3000;
  /// Worker motion/constraint parameters.
  double detour_budget_km = 4.0;
  double speed_kmpm = 0.5;  // 30 km/h.
  /// Fraction of the day a part-time worker is online and assignable
  /// (Section II: workers "come to the platform dynamically"). The online
  /// window's start is drawn uniformly; 1.0 means always online.
  double online_fraction = 0.4;
  /// Which scenario post-pass to apply after the baseline generation.
  /// Baseline consumes exactly the RNG stream it always did, so existing
  /// seeds keep producing bit-identical workloads; surge/churn draw from a
  /// separate scenario RNG derived from `seed`.
  WorkloadScenario scenario = WorkloadScenario::kBaseline;
  /// kChurn knobs: the single online window (online_fraction of the
  /// horizon) is split into `sessions` equal-length login/logout sessions
  /// spread across the day, and each accepted task is dropped mid-service
  /// with probability dropout_prob (event-driven simulator only).
  struct ChurnParams {
    int sessions = 3;
    double dropout_prob = 0.2;
  };
  ChurnParams churn;
  /// kSurge knobs: extra_task_factor * num_tasks additional tasks released
  /// inside [start_fraction, start_fraction + duration_fraction] of the
  /// stream horizon, drawn around the densest hotspot with the given
  /// spread (a festival crowd, tighter than normal demand).
  struct SurgeParams {
    double start_fraction = 0.5;
    double duration_fraction = 0.15;
    double extra_task_factor = 1.0;
    double hotspot_spread_km = 0.6;
  };
  SurgeParams surge;
  uint64_t seed = 7;
};

/// One contiguous login..logout interval (absolute minutes, closed on both
/// ends — a worker whose session ends exactly at a batch instant is still
/// assignable at that instant, matching the batch-replay predicate).
struct AvailabilitySession {
  double start_min = 0.0;
  double end_min = 0.0;
};

/// One synthetic worker: identity, ground-truth movement, and constraints.
struct WorkerRecord {
  int id = -1;
  MobilityProfile profile;
  geo::Trajectory train;  // num_train_days of movement (absolute minutes).
  geo::Trajectory test;   // The assignment-horizon day(s).
  double detour_budget_km = 4.0;
  double speed_kmpm = 0.5;
  /// Envelope of the worker's availability (absolute minutes): the first
  /// session's start and the last session's end. Kept for reporting; the
  /// authoritative availability is `availability` below.
  double online_start_min = 0.0;
  double online_end_min = 0.0;
  /// The worker's login/logout sessions over the test horizon, sorted and
  /// disjoint. The worker moves along the routine all day but only takes
  /// tasks inside a session (baseline: exactly one session; churn:
  /// several). Never empty for generated workloads.
  std::vector<AvailabilitySession> availability;
  bool is_newcomer = false;

  /// Whether the worker is assignable at `time_min`: inside some
  /// availability session (closed on both ends). Falls back to the
  /// [online_start_min, online_end_min] envelope when `availability` is
  /// empty (hand-built workloads).
  bool AvailableAt(double time_min) const {
    if (availability.empty()) {
      return time_min >= online_start_min && time_min <= online_end_min;
    }
    for (const AvailabilitySession& s : availability) {
      if (time_min >= s.start_min && time_min <= s.end_min) return true;
    }
    return false;
  }
};

/// Mid-task dropout model (churn scenarios): after accepting a task, the
/// worker aborts mid-service with probability `prob`. Draws are keyed by
/// (seed, worker id, task id), so the outcome is a pure function of the
/// pair — independent of event order, thread count, and engine.
struct DropoutModel {
  double prob = 0.0;
  uint64_t seed = 0;
};

/// A fully generated workload.
struct Workload {
  geo::GridSpec grid{20.0, 10.0, 50, 100};
  /// The scenario the generator applied (reporting only).
  WorkloadScenario scenario = WorkloadScenario::kBaseline;
  /// Mid-task dropout (zero-probability unless the churn scenario set it).
  DropoutModel dropout;
  std::vector<WorkerRecord> workers;
  /// One learning task per worker, index-aligned with `workers`.
  std::vector<meta::LearningTask> learning_tasks;
  /// The test-horizon task stream, sorted by release time.
  std::vector<assign::SpatialTask> task_stream;
  /// Historical (train-period) task locations for the Eq. 7 weights.
  std::vector<geo::Point> historical_task_locations;
  /// The demand hotspots the streams were drawn from.
  std::vector<TaskHotspot> hotspots;
};

/// Generates the full workload deterministically from config.seed.
Workload GenerateWorkload(const WorkloadConfig& config);

/// Dimensionality of the model input produced by ExtractSamples:
/// (x, y, time-of-day), all normalized into [0, 1]. Mobility routines are
/// strongly time-keyed (a commuter at 9am and 5pm heads opposite ways), so
/// the time feature is part of every workload sample.
inline constexpr int kSampleInputDim = 3;

/// Extracts sliding-window (seq_in -> seq_out) samples from a trajectory,
/// normalizing coordinates with `grid` and appending the normalized
/// time-of-day feature to each input step (kSampleInputDim total).
/// Samples never span day boundaries. Targets stay 2-D locations.
std::vector<meta::TrainingSample> ExtractSamples(const geo::Trajectory& traj,
                                                 int seq_in, int seq_out,
                                                 const geo::GridSpec& grid);

}  // namespace tamp::data
