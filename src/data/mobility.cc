#include "data/mobility.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tamp::data {
namespace {

geo::Point JitterAround(const geo::Point& center, double radius_km,
                        const geo::GridSpec& grid, Rng& rng) {
  geo::Point p{center.x + rng.Normal(0.0, radius_km),
               center.y + rng.Normal(0.0, radius_km)};
  return grid.Clamp(p);
}

/// A scheduled stop on the day's route.
struct Waypoint {
  geo::Point loc;
  double arrive_min = 0.0;
  double depart_min = 0.0;
};

/// Appends a visit to `loc`: arrival follows from the previous departure
/// plus the travel time at `speed_kmpm`; the stop then dwells for
/// `dwell_min` (at least a momentary stop).
void Visit(std::vector<Waypoint>& schedule, const geo::Point& loc,
           double dwell_min, double speed_kmpm) {
  TAMP_CHECK(!schedule.empty());
  const Waypoint& prev = schedule.back();
  double arrive =
      prev.depart_min + geo::Distance(prev.loc, loc) / speed_kmpm;
  schedule.push_back({loc, arrive, arrive + std::max(dwell_min, 0.0)});
}

/// Builds the day's waypoint schedule from the profile's anchors. Travel
/// legs take distance/speed minutes, so the generated motion moves at the
/// same speed the assignment side assumes.
std::vector<Waypoint> BuildSchedule(const MobilityProfile& profile,
                                    const DayParams& params,
                                    const geo::GridSpec& grid, Rng& rng) {
  const double start = params.day_start_min;
  const double end = params.day_end_min;
  const double span = end - start;
  const double speed = params.speed_kmpm;
  TAMP_CHECK(speed > 0.0);
  std::vector<Waypoint> schedule;

  // Day-specific copy of the anchors, with occasional improvisation.
  std::vector<geo::Point> anchors = profile.anchors;
  for (auto& a : anchors) {
    if (rng.Bernoulli(profile.improvisation_prob)) {
      a = JitterAround(a, 1.5, grid, rng);
    }
  }
  auto jitter = [&]() { return rng.Normal(0.0, profile.time_jitter_min); };

  switch (profile.archetype) {
    case Archetype::kCommuter: {
      // anchors: [home, work, lunch]. Morning at home, day at work with a
      // lunch break, evening back home.
      TAMP_CHECK(anchors.size() >= 3);
      double leave_home = start + 0.05 * span + jitter();
      schedule.push_back({anchors[0], start, std::max(start, leave_home)});
      double lunch_out = start + 0.40 * span + jitter();
      Visit(schedule, anchors[1], 0.0, speed);
      schedule.back().depart_min =
          std::max(schedule.back().depart_min, lunch_out);
      Visit(schedule, anchors[2], 45.0 + jitter(), speed);
      double leave_work = start + 0.85 * span + jitter();
      Visit(schedule, anchors[1], 0.0, speed);
      schedule.back().depart_min =
          std::max(schedule.back().depart_min, leave_work);
      Visit(schedule, anchors[0], 0.0, speed);
      break;
    }
    case Archetype::kHubAndSpoke: {
      // anchors: [hub, spoke...]. Repeated hub -> spoke -> hub trips.
      TAMP_CHECK(anchors.size() >= 3);
      schedule.push_back({anchors[0], start, start + 20.0 + jitter()});
      size_t spoke = 1;
      while (schedule.back().depart_min < end - 60.0) {
        const geo::Point& target = anchors[1 + (spoke % (anchors.size() - 1))];
        Visit(schedule, target, 20.0 + std::fabs(jitter()), speed);
        Visit(schedule, anchors[0], 15.0 + std::fabs(jitter()), speed);
        ++spoke;
      }
      break;
    }
    case Archetype::kRoamer: {
      // anchors: [base]. A slow tour of random nearby spots.
      TAMP_CHECK(!anchors.empty());
      geo::Point base = anchors[0];
      schedule.push_back({base, start, start + 30.0 + std::fabs(jitter())});
      while (schedule.back().depart_min < end - 45.0) {
        Visit(schedule, JitterAround(base, 2.0, grid, rng),
              30.0 + std::fabs(jitter()), speed);
      }
      break;
    }
    case Archetype::kVenueHopper: {
      // anchors: [venue...]. A handful of long check-ins per day.
      TAMP_CHECK(anchors.size() >= 2);
      int visits = 3 + static_cast<int>(rng.UniformInt(0, 2));
      double dwell = span / (visits + 1);
      const geo::Point& first =
          anchors[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(anchors.size()) - 1))];
      schedule.push_back(
          {first, start, start + dwell * rng.Uniform(0.7, 1.1)});
      for (int v = 1; v < visits; ++v) {
        if (schedule.back().depart_min >= end) break;
        const geo::Point& venue =
            anchors[static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(anchors.size()) - 1))];
        Visit(schedule, venue, dwell * rng.Uniform(0.7, 1.1), speed);
      }
      break;
    }
  }
  // The day ends at the final stop.
  schedule.back().depart_min = std::max(schedule.back().depart_min, end);
  return schedule;
}

/// Position along the schedule at absolute minute `t` (piecewise: dwell at
/// a waypoint, linear travel between consecutive waypoints).
geo::Point ScheduledPosition(const std::vector<Waypoint>& schedule, double t) {
  if (t <= schedule.front().arrive_min) return schedule.front().loc;
  for (size_t i = 0; i < schedule.size(); ++i) {
    const Waypoint& wp = schedule[i];
    if (t <= wp.depart_min) {
      if (t >= wp.arrive_min) return wp.loc;  // Dwelling.
      // Travelling from the previous waypoint.
      TAMP_CHECK(i > 0);
      const Waypoint& prev = schedule[i - 1];
      double span = wp.arrive_min - prev.depart_min;
      if (span <= 0.0) return wp.loc;
      double frac = std::clamp((t - prev.depart_min) / span, 0.0, 1.0);
      return prev.loc + (wp.loc - prev.loc) * frac;
    }
    if (i + 1 < schedule.size() && t < schedule[i + 1].arrive_min) {
      const Waypoint& next = schedule[i + 1];
      double span = next.arrive_min - wp.depart_min;
      if (span <= 0.0) return next.loc;
      double frac = std::clamp((t - wp.depart_min) / span, 0.0, 1.0);
      return wp.loc + (next.loc - wp.loc) * frac;
    }
  }
  return schedule.back().loc;
}

}  // namespace

MobilityProfile MakeProfile(Archetype archetype, int zone,
                            const geo::Point& zone_center,
                            double zone_radius_km, const geo::GridSpec& grid,
                            Rng& rng) {
  MobilityProfile profile;
  profile.archetype = archetype;
  profile.zone = zone;
  switch (archetype) {
    case Archetype::kCommuter:
      // Home in the zone; work pulled toward the city centre; lunch near
      // work. Commutes are the most regular pattern: small timing jitter.
      profile.time_jitter_min = 8.0;
      {
        geo::Point home = JitterAround(zone_center, zone_radius_km, grid, rng);
        geo::Point center{grid.width_km() / 2.0, grid.height_km() / 2.0};
        geo::Point work = JitterAround(
            {0.5 * (center.x + zone_center.x), 0.5 * (center.y + zone_center.y)},
            zone_radius_km * 0.6, grid, rng);
        geo::Point lunch = JitterAround(work, 0.6, grid, rng);
        profile.anchors = {home, work, lunch};
      }
      break;
    case Archetype::kHubAndSpoke: {
      geo::Point hub = JitterAround(zone_center, zone_radius_km * 0.5, grid, rng);
      profile.anchors = {hub};
      int spokes = 3 + static_cast<int>(rng.UniformInt(0, 2));
      for (int s = 0; s < spokes; ++s) {
        profile.anchors.push_back(
            JitterAround(hub, zone_radius_km * 2.0, grid, rng));
      }
      break;
    }
    case Archetype::kRoamer:
      profile.anchors = {JitterAround(zone_center, zone_radius_km, grid, rng)};
      profile.noise_km = 0.25;
      break;
    case Archetype::kVenueHopper: {
      int venues = 4 + static_cast<int>(rng.UniformInt(0, 3));
      for (int v = 0; v < venues; ++v) {
        profile.anchors.push_back(
            JitterAround(zone_center, zone_radius_km * 1.5, grid, rng));
      }
      profile.time_jitter_min = 25.0;
      break;
    }
  }
  return profile;
}

geo::Trajectory GenerateDay(const MobilityProfile& profile,
                            const DayParams& params, int day_index,
                            const geo::GridSpec& grid, Rng& rng) {
  TAMP_CHECK(params.day_end_min > params.day_start_min);
  TAMP_CHECK(params.sample_period_min > 0.0);
  std::vector<Waypoint> schedule = BuildSchedule(profile, params, grid, rng);

  geo::Trajectory day;
  double day_offset = 1440.0 * day_index;
  for (double t = params.day_start_min; t <= params.day_end_min + 1e-9;
       t += params.sample_period_min) {
    geo::Point p = ScheduledPosition(schedule, t);
    p.x += rng.Normal(0.0, profile.noise_km);
    p.y += rng.Normal(0.0, profile.noise_km);
    day.Append({grid.Clamp(p), day_offset + t});
  }
  return day;
}

}  // namespace tamp::data
