#pragma once

#include <vector>

#include "common/rng.h"
#include "geo/grid.h"
#include "geo/point.h"
#include "geo/trajectory.h"

namespace tamp::data {

/// Mobility archetypes the synthetic workers are drawn from. The archetype
/// plus the worker's zone induce the heterogeneous, clusterable mobility
/// patterns the paper's GTMC is designed to separate (Challenge I).
enum class Archetype {
  kCommuter,     // Home -> work -> (lunch) -> work -> home, highly regular.
  kHubAndSpoke,  // Taxi-like: a hub with radial trips (Porto drivers).
  kRoamer,       // Smooth wandering around a preferred neighbourhood.
  kVenueHopper,  // Check-in style: hops between venues with long dwells
                 // (the Gowalla-like workload's dominant pattern).
};

/// A per-worker mobility profile: the anchors and rhythm from which each
/// day's routine is generated. Day-to-day variation comes from timing
/// jitter, positional noise, and occasional anchor substitution — the
/// "opportunistic behaviour" of Challenge I.
struct MobilityProfile {
  Archetype archetype = Archetype::kCommuter;
  int zone = 0;
  /// Ordered anchor locations (home, work, leisure / hub / venues...).
  std::vector<geo::Point> anchors;
  /// Positional noise (km) applied to every sampled location.
  double noise_km = 0.15;
  /// Timing jitter (minutes) applied to each day's schedule.
  double time_jitter_min = 15.0;
  /// Probability of substituting one anchor with a random nearby spot on a
  /// given day.
  double improvisation_prob = 0.1;
};

/// Parameters of day-trajectory generation.
struct DayParams {
  double day_start_min = 8 * 60.0;
  double day_end_min = 20 * 60.0;
  double sample_period_min = 10.0;
  /// Travel speed between waypoints (km/min); must match the speed the
  /// assignment side assumes so detour arrival times are consistent with
  /// the generated motion.
  double speed_kmpm = 0.5;
};

/// Builds a profile for a worker of the given archetype anchored in
/// `zone_center` (zone radius `zone_radius_km`), inside `grid`'s area.
MobilityProfile MakeProfile(Archetype archetype, int zone,
                            const geo::Point& zone_center,
                            double zone_radius_km, const geo::GridSpec& grid,
                            Rng& rng);

/// Generates one day of movement for the profile: locations sampled every
/// `params.sample_period_min` minutes, timestamps offset by
/// `day_index * 1440` so multiple days concatenate into one timeline.
geo::Trajectory GenerateDay(const MobilityProfile& profile,
                            const DayParams& params, int day_index,
                            const geo::GridSpec& grid, Rng& rng);

}  // namespace tamp::data
