#include "data/workload.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <iterator>
#include <string>

#include "common/check.h"

namespace tamp::data {

std::string_view WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kPortoDidi:
      return "porto";
    case WorkloadKind::kGowallaFoursquare:
      return "gowalla";
  }
  return "?";
}

StatusOr<WorkloadKind> ParseWorkloadKind(std::string_view name) {
  std::string lower(name);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "porto" || lower == "porto_didi") {
    return WorkloadKind::kPortoDidi;
  }
  if (lower == "gowalla" || lower == "gowalla_foursquare") {
    return WorkloadKind::kGowallaFoursquare;
  }
  return Status::InvalidArgument("unknown dataset '" + std::string(name) +
                                 "' (accepted: porto, gowalla)");
}

const std::vector<WorkloadKind>& AllWorkloadKinds() {
  static const std::vector<WorkloadKind> kAll = {
      WorkloadKind::kPortoDidi, WorkloadKind::kGowallaFoursquare};
  return kAll;
}

std::string_view WorkloadScenarioName(WorkloadScenario scenario) {
  switch (scenario) {
    case WorkloadScenario::kBaseline:
      return "baseline";
    case WorkloadScenario::kSurge:
      return "surge";
    case WorkloadScenario::kChurn:
      return "churn";
  }
  return "?";
}

StatusOr<WorkloadScenario> ParseWorkloadScenario(std::string_view name) {
  std::string lower(name);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  for (WorkloadScenario scenario : AllWorkloadScenarios()) {
    if (lower == WorkloadScenarioName(scenario)) return scenario;
  }
  return Status::InvalidArgument("unknown scenario '" + std::string(name) +
                                 "' (accepted: baseline, surge, churn)");
}

const std::vector<WorkloadScenario>& AllWorkloadScenarios() {
  static const std::vector<WorkloadScenario> kAll = {
      WorkloadScenario::kBaseline, WorkloadScenario::kSurge,
      WorkloadScenario::kChurn};
  return kAll;
}

std::string WorkloadSpecName(const WorkloadSpec& spec) {
  std::string name(WorkloadKindName(spec.kind));
  if (spec.scenario != WorkloadScenario::kBaseline) {
    name += '_';
    name += WorkloadScenarioName(spec.scenario);
  }
  return name;
}

StatusOr<WorkloadSpec> ParseWorkloadSpec(std::string_view name) {
  // "<dataset>" (baseline) or "<dataset>_<scenario>". The dataset part may
  // itself contain an underscore (the long forms), so try the full string
  // as a dataset first, then split at every '_'.
  StatusOr<WorkloadKind> bare = ParseWorkloadKind(name);
  if (bare.ok()) return WorkloadSpec{*bare, WorkloadScenario::kBaseline};
  for (size_t sep = name.find('_'); sep != std::string_view::npos;
       sep = name.find('_', sep + 1)) {
    StatusOr<WorkloadKind> kind = ParseWorkloadKind(name.substr(0, sep));
    if (!kind.ok()) continue;
    StatusOr<WorkloadScenario> scenario =
        ParseWorkloadScenario(name.substr(sep + 1));
    if (!scenario.ok()) continue;
    return WorkloadSpec{*kind, *scenario};
  }
  std::string accepted;
  for (const WorkloadSpec& spec : AllWorkloadSpecs()) {
    if (!accepted.empty()) accepted += ", ";
    accepted += WorkloadSpecName(spec);
  }
  return Status::InvalidArgument("unknown workload '" + std::string(name) +
                                 "' (accepted: " + accepted + ")");
}

const std::vector<WorkloadSpec>& AllWorkloadSpecs() {
  static const std::vector<WorkloadSpec> kAll = [] {
    std::vector<WorkloadSpec> specs;
    for (WorkloadKind kind : AllWorkloadKinds()) {
      for (WorkloadScenario scenario : AllWorkloadScenarios()) {
        specs.push_back({kind, scenario});
      }
    }
    return specs;
  }();
  return kAll;
}

namespace {

/// Evenly spread zone centres, pulled slightly inward from the borders.
std::vector<geo::Point> MakeZoneCenters(int num_zones,
                                        const geo::GridSpec& grid, Rng& rng) {
  std::vector<geo::Point> centers;
  centers.reserve(static_cast<size_t>(num_zones));
  int cols = static_cast<int>(std::ceil(std::sqrt(num_zones)));
  int rows = (num_zones + cols - 1) / cols;
  for (int z = 0; z < num_zones; ++z) {
    int r = z / cols, c = z % cols;
    double x = (c + 0.5) / cols * grid.width_km();
    double y = (r + 0.5) / rows * grid.height_km();
    centers.push_back(grid.Clamp({x + rng.Normal(0.0, 0.5),
                                  y + rng.Normal(0.0, 0.5)}));
  }
  return centers;
}

Archetype PickArchetype(WorkloadKind kind, Rng& rng) {
  if (kind == WorkloadKind::kGowallaFoursquare) {
    // Check-in data is dominated by venue hopping with some roaming.
    return rng.Bernoulli(0.75) ? Archetype::kVenueHopper : Archetype::kRoamer;
  }
  double r = rng.Uniform01();
  if (r < 0.4) return Archetype::kCommuter;
  if (r < 0.75) return Archetype::kHubAndSpoke;
  return Archetype::kRoamer;
}

/// POIs representing the worker's historical task activity: points near
/// the profile anchors, typed by the zone-dependent venue category.
geo::PoiSequence MakeWorkerPois(const MobilityProfile& profile,
                                const geo::GridSpec& grid, Rng& rng) {
  geo::PoiSequence pois;
  int per_anchor = 3;
  for (const geo::Point& anchor : profile.anchors) {
    for (int i = 0; i < per_anchor; ++i) {
      geo::Point p = grid.Clamp({anchor.x + rng.Normal(0.0, 0.4),
                                 anchor.y + rng.Normal(0.0, 0.4)});
      // Type mixes the zone with a per-POI category so that same-zone
      // workers share most (not all) types.
      int type = profile.zone * 4 + static_cast<int>(rng.UniformInt(0, 3));
      pois.emplace_back(p, type);
    }
  }
  return pois;
}

/// The shared venue layer of the Gowalla/Foursquare-like workload: both
/// worker check-ins and task placement draw from these points, which is
/// what makes the two distributions similar (Appendix C's observation).
std::vector<std::vector<geo::Point>> MakeVenues(
    const std::vector<geo::Point>& zones, double zone_radius_km,
    const geo::GridSpec& grid, Rng& rng) {
  std::vector<std::vector<geo::Point>> venues(zones.size());
  for (size_t z = 0; z < zones.size(); ++z) {
    int count = 6 + static_cast<int>(rng.UniformInt(0, 3));
    for (int v = 0; v < count; ++v) {
      venues[z].push_back(
          grid.Clamp({zones[z].x + rng.Normal(0.0, zone_radius_km),
                      zones[z].y + rng.Normal(0.0, zone_radius_km)}));
    }
  }
  return venues;
}

std::vector<TaskHotspot> MakeHotspots(
    WorkloadKind kind, const std::vector<geo::Point>& zones,
    const std::vector<std::vector<geo::Point>>& venues,
    const geo::GridSpec& grid, Rng& rng) {
  std::vector<TaskHotspot> hotspots;
  if (kind == WorkloadKind::kGowallaFoursquare) {
    // Tasks appear at the same venues the workers check in at, with a
    // tight spread -> worker/task distributions align.
    for (const auto& zone_venues : venues) {
      for (const geo::Point& v : zone_venues) {
        hotspots.push_back({v, 0.4, 1.0});
      }
    }
  } else {
    // Ride-hailing demand: a dominant downtown hotspot plus secondary
    // ones offset from the residential zones.
    geo::Point downtown{grid.width_km() / 2.0, grid.height_km() / 2.0};
    hotspots.push_back({downtown, 1.5, 2.0});
    for (size_t z = 0; z < zones.size(); ++z) {
      geo::Point offset = grid.Clamp({zones[z].x + rng.Normal(0.0, 1.5),
                                      zones[z].y + rng.Normal(0.0, 1.5)});
      hotspots.push_back({offset, 1.0, 0.8});
    }
  }
  return hotspots;
}

/// kChurn: re-draws each worker's availability as `sessions` disjoint
/// login/logout sessions with the same total online time as the baseline
/// window, spread across the worker's test horizon, and arms the dropout
/// model. Draws only from `rng` (the scenario stream), never the baseline
/// stream.
void ApplyChurnScenario(Workload& workload, const WorkloadConfig& config,
                        Rng& rng) {
  const int sessions = std::max(1, config.churn.sessions);
  for (WorkerRecord& record : workload.workers) {
    double horizon_start = record.test.start_time();
    double horizon_end = record.test.end_time();
    double span = horizon_end - horizon_start;
    double online_span =
        std::clamp(config.online_fraction, 0.0, 1.0) * span;
    double session_len = online_span / sessions;
    double slot_len = span / sessions;
    record.availability.clear();
    for (int s = 0; s < sessions; ++s) {
      // One session per equal slot keeps sessions sorted and disjoint by
      // construction (session_len <= slot_len since online_fraction <= 1).
      double slot_start = horizon_start + s * slot_len;
      double latest = slot_start + std::max(0.0, slot_len - session_len);
      double start = rng.Uniform(slot_start, std::max(slot_start, latest));
      record.availability.push_back({start, start + session_len});
    }
    record.online_start_min = record.availability.front().start_min;
    record.online_end_min = record.availability.back().end_min;
  }
  workload.dropout.prob = config.churn.dropout_prob;
  workload.dropout.seed = config.seed ^ 0xD120F0ADull;
}

/// kSurge: appends a burst of extra tasks inside a short window of the
/// stream horizon, drawn tightly around the densest hotspot (a festival
/// crowd), then re-sorts and re-ids the merged stream.
void ApplySurgeScenario(Workload& workload, const WorkloadConfig& config,
                        Rng& rng) {
  if (workload.hotspots.empty()) return;
  int extra = static_cast<int>(config.surge.extra_task_factor *
                               config.num_tasks);
  if (extra <= 0) return;
  const TaskHotspot* densest = &workload.hotspots.front();
  for (const TaskHotspot& h : workload.hotspots) {
    if (h.weight > densest->weight) densest = &h;
  }
  double test_day_offset = 1440.0 * config.num_train_days;
  double horizon_start = test_day_offset + config.day.day_start_min;
  double horizon_end = test_day_offset +
                       1440.0 * (config.num_test_days - 1) +
                       config.day.day_end_min;
  double span = horizon_end - horizon_start;
  TaskStreamConfig burst;
  burst.num_tasks = extra;
  burst.horizon_start_min =
      horizon_start + config.surge.start_fraction * span;
  burst.horizon_end_min =
      burst.horizon_start_min + config.surge.duration_fraction * span;
  burst.valid_lo_units = config.task_valid_lo_units;
  burst.valid_hi_units = config.task_valid_hi_units;
  burst.time_unit_min = config.time_unit_min;
  burst.rush_amplitude = 0.0;  // The burst window IS the peak.
  std::vector<TaskHotspot> festival = {
      {densest->center, config.surge.hotspot_spread_km, 1.0}};
  std::vector<assign::SpatialTask> surge_tasks =
      GenerateTaskStream(burst, festival, workload.grid, rng);
  std::vector<assign::SpatialTask> merged;
  merged.reserve(workload.task_stream.size() + surge_tasks.size());
  std::merge(workload.task_stream.begin(), workload.task_stream.end(),
             surge_tasks.begin(), surge_tasks.end(),
             std::back_inserter(merged),
             [](const assign::SpatialTask& a, const assign::SpatialTask& b) {
               return a.release_time_min < b.release_time_min;
             });
  for (size_t i = 0; i < merged.size(); ++i) {
    merged[i].id = static_cast<int>(i);
  }
  workload.task_stream = std::move(merged);
}

}  // namespace

std::vector<meta::TrainingSample> ExtractSamples(const geo::Trajectory& traj,
                                                 int seq_in, int seq_out,
                                                 const geo::GridSpec& grid) {
  TAMP_CHECK(seq_in >= 1 && seq_out >= 1);
  std::vector<meta::TrainingSample> samples;
  const auto& pts = traj.points();
  int window = seq_in + seq_out;
  if (static_cast<int>(pts.size()) < window) return samples;
  const size_t useq_in = static_cast<size_t>(seq_in);
  const size_t uwindow = static_cast<size_t>(window);
  for (size_t start = 0; start + uwindow <= pts.size(); ++start) {
    // Never span a day boundary: all points of the window must belong to
    // the same 1440-minute day.
    int day_first = static_cast<int>(pts[start].time_min / 1440.0);
    int day_last =
        static_cast<int>(pts[start + uwindow - 1].time_min / 1440.0);
    if (day_first != day_last) continue;
    meta::TrainingSample sample;
    sample.input.reserve(useq_in);
    for (size_t i = 0; i < useq_in; ++i) {
      geo::Point n = grid.Normalize(pts[start + i].loc);
      double tod = std::fmod(pts[start + i].time_min, 1440.0) / 1440.0;
      sample.input.push_back({n.x, n.y, tod});
    }
    sample.target.reserve(static_cast<size_t>(seq_out));
    for (size_t i = 0; i < static_cast<size_t>(seq_out); ++i) {
      const geo::Point& km = pts[start + useq_in + i].loc;
      geo::Point n = grid.Normalize(km);
      sample.target.push_back({n.x, n.y});
      sample.target_km.push_back(km);
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

Workload GenerateWorkload(const WorkloadConfig& config) {
  TAMP_CHECK(config.num_workers > 0);
  TAMP_CHECK(config.num_train_days >= 1 && config.num_test_days >= 1);
  Rng rng(config.seed);

  Workload workload;
  // Porto metro is ~40 km wide (the paper grids it 100x50); the Gowalla
  // check-in region is broader and square-ish. Worker coverage must be
  // scarce relative to detour budgets for assignment quality to matter.
  workload.grid = config.kind == WorkloadKind::kGowallaFoursquare
                      ? geo::GridSpec(36.0, 36.0, 60, 60)
                      : geo::GridSpec(28.0, 14.0, 50, 100);
  const geo::GridSpec& grid = workload.grid;

  std::vector<geo::Point> zones =
      MakeZoneCenters(config.num_zones, grid, rng);
  double zone_radius =
      0.12 * std::min(grid.width_km(), grid.height_km());
  std::vector<std::vector<geo::Point>> venues =
      MakeVenues(zones, zone_radius, grid, rng);
  workload.hotspots = MakeHotspots(config.kind, zones, venues, grid, rng);

  // ---- Workers and their ground-truth movement. ----
  DayParams day_params = config.day;
  day_params.speed_kmpm = config.speed_kmpm;
  int num_newcomers = static_cast<int>(
      std::floor(config.newcomer_fraction * config.num_workers));
  for (int w = 0; w < config.num_workers; ++w) {
    WorkerRecord record;
    record.id = w;
    record.detour_budget_km = config.detour_budget_km;
    record.speed_kmpm = config.speed_kmpm;
    record.is_newcomer = w < num_newcomers;
    int zone = static_cast<int>(rng.UniformInt(0, config.num_zones - 1));
    const size_t zi = static_cast<size_t>(zone);
    record.profile = MakeProfile(PickArchetype(config.kind, rng), zone,
                                 zones[zi], zone_radius, grid, rng);
    if (config.kind == WorkloadKind::kGowallaFoursquare) {
      // Check-in style movement: the anchors are actual venues of the
      // worker's zone, shared with the task hotspot layer.
      const auto& zone_venues = venues[zi];
      size_t picks = std::min<size_t>(zone_venues.size(),
                                      record.profile.anchors.size());
      auto chosen = rng.SampleWithoutReplacement(zone_venues.size(), picks);
      record.profile.anchors.clear();
      for (size_t v : chosen) record.profile.anchors.push_back(zone_venues[v]);
      if (record.profile.anchors.size() < 2) {
        record.profile.anchors.push_back(zone_venues.front());
      }
    }
    int train_days = record.is_newcomer ? 1 : config.num_train_days;
    // Newcomers join late: their single train day is the last one, so the
    // timeline stays aligned across workers.
    int first_day = config.num_train_days - train_days;
    for (int d = first_day; d < config.num_train_days; ++d) {
      geo::Trajectory day =
          GenerateDay(record.profile, day_params, d, grid, rng);
      for (const auto& p : day.points()) record.train.Append(p);
    }
    for (int d = 0; d < config.num_test_days; ++d) {
      geo::Trajectory day = GenerateDay(record.profile, day_params,
                                        config.num_train_days + d, grid, rng);
      for (const auto& p : day.points()) record.test.Append(p);
    }
    // Part-time availability: a contiguous online window within the test
    // horizon whose length is online_fraction of the horizon.
    {
      double horizon_start = record.test.start_time();
      double horizon_end = record.test.end_time();
      double span = horizon_end - horizon_start;
      double online_span =
          std::clamp(config.online_fraction, 0.0, 1.0) * span;
      double latest_start = horizon_end - online_span;
      record.online_start_min =
          rng.Uniform(horizon_start, std::max(horizon_start, latest_start));
      record.online_end_min = record.online_start_min + online_span;
      record.availability = {
          {record.online_start_min, record.online_end_min}};
    }
    workload.workers.push_back(std::move(record));
  }

  // ---- Learning tasks (Def. 3): samples, features, splits. ----
  for (WorkerRecord& record : workload.workers) {
    meta::LearningTask task;
    task.worker_id = record.id;
    std::vector<meta::TrainingSample> train_samples =
        ExtractSamples(record.train, config.seq_in, config.seq_out, grid);
    // Interleaved support/query split keeps both sets covering the whole
    // day rather than support = morning, query = evening.
    for (size_t i = 0; i < train_samples.size(); ++i) {
      double phase = static_cast<double>(i % 10) / 10.0;
      if (phase < config.support_fraction) {
        task.support.push_back(std::move(train_samples[i]));
      } else {
        task.query.push_back(std::move(train_samples[i]));
      }
    }
    task.eval = ExtractSamples(record.test, config.seq_in, config.seq_out, grid);
    task.pois = MakeWorkerPois(record.profile, grid, rng);
    task.location_cloud = record.train.Locations();
    workload.learning_tasks.push_back(std::move(task));
  }

  // ---- Task streams. ----
  TaskStreamConfig stream;
  stream.num_tasks = config.num_tasks;
  double test_day_offset = 1440.0 * config.num_train_days;
  stream.horizon_start_min = test_day_offset + config.day.day_start_min;
  stream.horizon_end_min =
      test_day_offset + 1440.0 * (config.num_test_days - 1) +
      config.day.day_end_min;
  stream.valid_lo_units = config.task_valid_lo_units;
  stream.valid_hi_units = config.task_valid_hi_units;
  stream.time_unit_min = config.time_unit_min;
  workload.task_stream =
      GenerateTaskStream(stream, workload.hotspots, grid, rng);
  workload.historical_task_locations = SampleTaskLocations(
      config.num_historical_tasks, workload.hotspots, grid, rng);

  // ---- Scenario post-pass (surge/churn). ----
  // Applied last, from a dedicated RNG stream, so the baseline generation
  // above consumes exactly the draws it always did: a given seed keeps
  // producing bit-identical baseline workloads (and therefore bench
  // baselines) whatever scenarios exist.
  workload.scenario = config.scenario;
  if (config.scenario != WorkloadScenario::kBaseline) {
    Rng scenario_rng(config.seed ^ 0x5CE7A210C0DEull);
    switch (config.scenario) {
      case WorkloadScenario::kBaseline:
        break;
      case WorkloadScenario::kSurge:
        ApplySurgeScenario(workload, config, scenario_rng);
        break;
      case WorkloadScenario::kChurn:
        ApplyChurnScenario(workload, config, scenario_rng);
        break;
    }
  }

  return workload;
}

}  // namespace tamp::data
