#include "data/tasks.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tamp::data {
namespace {

geo::Point SampleHotspotLocation(const std::vector<TaskHotspot>& hotspots,
                                 const geo::GridSpec& grid, Rng& rng) {
  std::vector<double> weights;
  weights.reserve(hotspots.size());
  for (const auto& h : hotspots) weights.push_back(h.weight);
  const TaskHotspot& h = hotspots[rng.SampleIndex(weights)];
  geo::Point p{h.center.x + rng.Normal(0.0, h.spread_km),
               h.center.y + rng.Normal(0.0, h.spread_km)};
  return grid.Clamp(p);
}

/// Relative arrival intensity at minute `t`: flat background plus two
/// Gaussian rush peaks at ~25% and ~75% of the horizon.
double Intensity(double t, double start, double end, double amplitude) {
  double span = end - start;
  double peak1 = start + 0.25 * span;
  double peak2 = start + 0.75 * span;
  double sigma = span / 10.0;
  auto bump = [&](double peak) {
    double z = (t - peak) / sigma;
    return std::exp(-0.5 * z * z);
  };
  return 1.0 + amplitude * (bump(peak1) + bump(peak2));
}

}  // namespace

std::vector<assign::SpatialTask> GenerateTaskStream(
    const TaskStreamConfig& config, const std::vector<TaskHotspot>& hotspots,
    const geo::GridSpec& grid, Rng& rng) {
  TAMP_CHECK(!hotspots.empty());
  TAMP_CHECK(config.num_tasks >= 0);
  TAMP_CHECK(config.horizon_end_min > config.horizon_start_min);
  TAMP_CHECK(config.valid_hi_units >= config.valid_lo_units);

  // Sample arrival times by rejection against the rush-hour intensity
  // (exactly num_tasks arrivals, shaped like a non-homogeneous Poisson
  // process conditioned on its count).
  double max_intensity = 1.0 + 2.0 * config.rush_amplitude;
  std::vector<double> arrivals;
  arrivals.reserve(static_cast<size_t>(config.num_tasks));
  while (static_cast<int>(arrivals.size()) < config.num_tasks) {
    double t = rng.Uniform(config.horizon_start_min, config.horizon_end_min);
    double accept = Intensity(t, config.horizon_start_min,
                              config.horizon_end_min, config.rush_amplitude) /
                    max_intensity;
    if (rng.Bernoulli(accept)) arrivals.push_back(t);
  }
  std::sort(arrivals.begin(), arrivals.end());

  std::vector<assign::SpatialTask> tasks;
  tasks.reserve(static_cast<size_t>(config.num_tasks));
  for (int i = 0; i < config.num_tasks; ++i) {
    assign::SpatialTask task;
    task.id = i;
    task.release_time_min = arrivals[static_cast<size_t>(i)];
    task.location = SampleHotspotLocation(hotspots, grid, rng);
    double validity_units =
        rng.Uniform(config.valid_lo_units, config.valid_hi_units);
    task.deadline_min =
        task.release_time_min + validity_units * config.time_unit_min;
    tasks.push_back(task);
  }
  return tasks;
}

std::vector<geo::Point> SampleTaskLocations(
    int count, const std::vector<TaskHotspot>& hotspots,
    const geo::GridSpec& grid, Rng& rng) {
  TAMP_CHECK(!hotspots.empty());
  std::vector<geo::Point> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(SampleHotspotLocation(hotspots, grid, rng));
  }
  return out;
}

}  // namespace tamp::data
