# Empty compiler generated dependencies file for geo_spatial_index_test.
# This may be replaced when dependencies are built.
