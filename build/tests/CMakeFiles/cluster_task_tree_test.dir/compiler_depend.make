# Empty compiler generated dependencies file for cluster_task_tree_test.
# This may be replaced when dependencies are built.
