file(REMOVE_RECURSE
  "CMakeFiles/core_decline_memory_test.dir/core_decline_memory_test.cc.o"
  "CMakeFiles/core_decline_memory_test.dir/core_decline_memory_test.cc.o.d"
  "core_decline_memory_test"
  "core_decline_memory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_decline_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
