# Empty compiler generated dependencies file for core_decline_memory_test.
# This may be replaced when dependencies are built.
