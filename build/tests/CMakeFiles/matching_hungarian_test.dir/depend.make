# Empty dependencies file for matching_hungarian_test.
# This may be replaced when dependencies are built.
