file(REMOVE_RECURSE
  "CMakeFiles/matching_hungarian_test.dir/matching_hungarian_test.cc.o"
  "CMakeFiles/matching_hungarian_test.dir/matching_hungarian_test.cc.o.d"
  "matching_hungarian_test"
  "matching_hungarian_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matching_hungarian_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
