# Empty dependencies file for assign_candidates_test.
# This may be replaced when dependencies are built.
