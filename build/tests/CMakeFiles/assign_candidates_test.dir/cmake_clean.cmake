file(REMOVE_RECURSE
  "CMakeFiles/assign_candidates_test.dir/assign_candidates_test.cc.o"
  "CMakeFiles/assign_candidates_test.dir/assign_candidates_test.cc.o.d"
  "assign_candidates_test"
  "assign_candidates_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assign_candidates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
