# Empty dependencies file for core_simulator_test.
# This may be replaced when dependencies are built.
