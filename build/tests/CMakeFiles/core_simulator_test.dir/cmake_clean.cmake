file(REMOVE_RECURSE
  "CMakeFiles/core_simulator_test.dir/core_simulator_test.cc.o"
  "CMakeFiles/core_simulator_test.dir/core_simulator_test.cc.o.d"
  "core_simulator_test"
  "core_simulator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
