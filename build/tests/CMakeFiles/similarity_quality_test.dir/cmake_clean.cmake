file(REMOVE_RECURSE
  "CMakeFiles/similarity_quality_test.dir/similarity_quality_test.cc.o"
  "CMakeFiles/similarity_quality_test.dir/similarity_quality_test.cc.o.d"
  "similarity_quality_test"
  "similarity_quality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/similarity_quality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
