# Empty compiler generated dependencies file for similarity_quality_test.
# This may be replaced when dependencies are built.
