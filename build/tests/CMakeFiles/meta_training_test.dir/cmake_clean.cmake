file(REMOVE_RECURSE
  "CMakeFiles/meta_training_test.dir/meta_training_test.cc.o"
  "CMakeFiles/meta_training_test.dir/meta_training_test.cc.o.d"
  "meta_training_test"
  "meta_training_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meta_training_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
