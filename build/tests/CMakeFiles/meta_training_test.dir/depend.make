# Empty dependencies file for meta_training_test.
# This may be replaced when dependencies are built.
