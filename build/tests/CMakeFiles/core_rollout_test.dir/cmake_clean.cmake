file(REMOVE_RECURSE
  "CMakeFiles/core_rollout_test.dir/core_rollout_test.cc.o"
  "CMakeFiles/core_rollout_test.dir/core_rollout_test.cc.o.d"
  "core_rollout_test"
  "core_rollout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_rollout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
