# Empty compiler generated dependencies file for core_rollout_test.
# This may be replaced when dependencies are built.
