file(REMOVE_RECURSE
  "CMakeFiles/meta_trainer_test.dir/meta_trainer_test.cc.o"
  "CMakeFiles/meta_trainer_test.dir/meta_trainer_test.cc.o.d"
  "meta_trainer_test"
  "meta_trainer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meta_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
