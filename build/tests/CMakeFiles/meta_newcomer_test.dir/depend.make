# Empty dependencies file for meta_newcomer_test.
# This may be replaced when dependencies are built.
