file(REMOVE_RECURSE
  "CMakeFiles/meta_newcomer_test.dir/meta_newcomer_test.cc.o"
  "CMakeFiles/meta_newcomer_test.dir/meta_newcomer_test.cc.o.d"
  "meta_newcomer_test"
  "meta_newcomer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meta_newcomer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
