# Empty dependencies file for geo_trajectory_test.
# This may be replaced when dependencies are built.
