file(REMOVE_RECURSE
  "CMakeFiles/geo_trajectory_test.dir/geo_trajectory_test.cc.o"
  "CMakeFiles/geo_trajectory_test.dir/geo_trajectory_test.cc.o.d"
  "geo_trajectory_test"
  "geo_trajectory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_trajectory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
