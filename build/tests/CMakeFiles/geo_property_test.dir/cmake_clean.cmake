file(REMOVE_RECURSE
  "CMakeFiles/geo_property_test.dir/geo_property_test.cc.o"
  "CMakeFiles/geo_property_test.dir/geo_property_test.cc.o.d"
  "geo_property_test"
  "geo_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
