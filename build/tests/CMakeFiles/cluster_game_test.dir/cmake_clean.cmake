file(REMOVE_RECURSE
  "CMakeFiles/cluster_game_test.dir/cluster_game_test.cc.o"
  "CMakeFiles/cluster_game_test.dir/cluster_game_test.cc.o.d"
  "cluster_game_test"
  "cluster_game_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_game_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
