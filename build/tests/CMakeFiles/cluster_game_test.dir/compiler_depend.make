# Empty compiler generated dependencies file for cluster_game_test.
# This may be replaced when dependencies are built.
