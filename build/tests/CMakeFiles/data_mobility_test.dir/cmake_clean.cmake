file(REMOVE_RECURSE
  "CMakeFiles/data_mobility_test.dir/data_mobility_test.cc.o"
  "CMakeFiles/data_mobility_test.dir/data_mobility_test.cc.o.d"
  "data_mobility_test"
  "data_mobility_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_mobility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
