# Empty compiler generated dependencies file for data_mobility_test.
# This may be replaced when dependencies are built.
