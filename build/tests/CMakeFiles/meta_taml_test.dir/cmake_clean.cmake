file(REMOVE_RECURSE
  "CMakeFiles/meta_taml_test.dir/meta_taml_test.cc.o"
  "CMakeFiles/meta_taml_test.dir/meta_taml_test.cc.o.d"
  "meta_taml_test"
  "meta_taml_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meta_taml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
