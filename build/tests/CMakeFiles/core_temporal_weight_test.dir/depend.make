# Empty dependencies file for core_temporal_weight_test.
# This may be replaced when dependencies are built.
