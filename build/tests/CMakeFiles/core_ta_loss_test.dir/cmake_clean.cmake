file(REMOVE_RECURSE
  "CMakeFiles/core_ta_loss_test.dir/core_ta_loss_test.cc.o"
  "CMakeFiles/core_ta_loss_test.dir/core_ta_loss_test.cc.o.d"
  "core_ta_loss_test"
  "core_ta_loss_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ta_loss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
