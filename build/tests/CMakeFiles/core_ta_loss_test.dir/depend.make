# Empty dependencies file for core_ta_loss_test.
# This may be replaced when dependencies are built.
