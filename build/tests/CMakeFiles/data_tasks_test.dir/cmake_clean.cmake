file(REMOVE_RECURSE
  "CMakeFiles/data_tasks_test.dir/data_tasks_test.cc.o"
  "CMakeFiles/data_tasks_test.dir/data_tasks_test.cc.o.d"
  "data_tasks_test"
  "data_tasks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_tasks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
