file(REMOVE_RECURSE
  "CMakeFiles/similarity_path_test.dir/similarity_path_test.cc.o"
  "CMakeFiles/similarity_path_test.dir/similarity_path_test.cc.o.d"
  "similarity_path_test"
  "similarity_path_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/similarity_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
