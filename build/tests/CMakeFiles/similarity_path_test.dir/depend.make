# Empty dependencies file for similarity_path_test.
# This may be replaced when dependencies are built.
