file(REMOVE_RECURSE
  "CMakeFiles/assign_ppi_test.dir/assign_ppi_test.cc.o"
  "CMakeFiles/assign_ppi_test.dir/assign_ppi_test.cc.o.d"
  "assign_ppi_test"
  "assign_ppi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assign_ppi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
