# Empty dependencies file for assign_ppi_test.
# This may be replaced when dependencies are built.
