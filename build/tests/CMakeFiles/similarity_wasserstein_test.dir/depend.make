# Empty dependencies file for similarity_wasserstein_test.
# This may be replaced when dependencies are built.
