file(REMOVE_RECURSE
  "CMakeFiles/similarity_wasserstein_test.dir/similarity_wasserstein_test.cc.o"
  "CMakeFiles/similarity_wasserstein_test.dir/similarity_wasserstein_test.cc.o.d"
  "similarity_wasserstein_test"
  "similarity_wasserstein_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/similarity_wasserstein_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
