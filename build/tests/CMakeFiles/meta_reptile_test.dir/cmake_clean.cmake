file(REMOVE_RECURSE
  "CMakeFiles/meta_reptile_test.dir/meta_reptile_test.cc.o"
  "CMakeFiles/meta_reptile_test.dir/meta_reptile_test.cc.o.d"
  "meta_reptile_test"
  "meta_reptile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meta_reptile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
