# Empty compiler generated dependencies file for meta_reptile_test.
# This may be replaced when dependencies are built.
