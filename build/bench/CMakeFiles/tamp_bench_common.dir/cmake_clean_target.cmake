file(REMOVE_RECURSE
  "libtamp_bench_common.a"
)
