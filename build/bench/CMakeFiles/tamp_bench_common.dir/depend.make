# Empty dependencies file for tamp_bench_common.
# This may be replaced when dependencies are built.
