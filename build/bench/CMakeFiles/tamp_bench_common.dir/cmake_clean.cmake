file(REMOVE_RECURSE
  "CMakeFiles/tamp_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/tamp_bench_common.dir/bench_common.cc.o.d"
  "libtamp_bench_common.a"
  "libtamp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
