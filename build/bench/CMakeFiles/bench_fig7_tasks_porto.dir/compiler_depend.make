# Empty compiler generated dependencies file for bench_fig7_tasks_porto.
# This may be replaced when dependencies are built.
