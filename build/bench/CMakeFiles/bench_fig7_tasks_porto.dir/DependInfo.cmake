
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_tasks_porto.cc" "bench/CMakeFiles/bench_fig7_tasks_porto.dir/bench_fig7_tasks_porto.cc.o" "gcc" "bench/CMakeFiles/bench_fig7_tasks_porto.dir/bench_fig7_tasks_porto.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/tamp_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tamp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/tamp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/assign/CMakeFiles/tamp_assign.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/tamp_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/tamp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/similarity/CMakeFiles/tamp_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/tamp_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/tamp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/tamp_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tamp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
