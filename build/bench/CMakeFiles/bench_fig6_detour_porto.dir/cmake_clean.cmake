file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_detour_porto.dir/bench_fig6_detour_porto.cc.o"
  "CMakeFiles/bench_fig6_detour_porto.dir/bench_fig6_detour_porto.cc.o.d"
  "bench_fig6_detour_porto"
  "bench_fig6_detour_porto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_detour_porto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
