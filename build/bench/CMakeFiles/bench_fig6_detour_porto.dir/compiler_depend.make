# Empty compiler generated dependencies file for bench_fig6_detour_porto.
# This may be replaced when dependencies are built.
