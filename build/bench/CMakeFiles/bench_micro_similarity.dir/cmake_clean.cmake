file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_similarity.dir/bench_micro_similarity.cc.o"
  "CMakeFiles/bench_micro_similarity.dir/bench_micro_similarity.cc.o.d"
  "bench_micro_similarity"
  "bench_micro_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
