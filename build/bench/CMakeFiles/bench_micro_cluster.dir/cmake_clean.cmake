file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_cluster.dir/bench_micro_cluster.cc.o"
  "CMakeFiles/bench_micro_cluster.dir/bench_micro_cluster.cc.o.d"
  "bench_micro_cluster"
  "bench_micro_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
