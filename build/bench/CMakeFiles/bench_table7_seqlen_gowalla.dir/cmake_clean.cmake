file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_seqlen_gowalla.dir/bench_table7_seqlen_gowalla.cc.o"
  "CMakeFiles/bench_table7_seqlen_gowalla.dir/bench_table7_seqlen_gowalla.cc.o.d"
  "bench_table7_seqlen_gowalla"
  "bench_table7_seqlen_gowalla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_seqlen_gowalla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
