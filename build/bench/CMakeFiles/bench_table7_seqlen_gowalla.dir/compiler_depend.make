# Empty compiler generated dependencies file for bench_table7_seqlen_gowalla.
# This may be replaced when dependencies are built.
