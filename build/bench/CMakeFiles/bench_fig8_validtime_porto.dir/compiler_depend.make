# Empty compiler generated dependencies file for bench_fig8_validtime_porto.
# This may be replaced when dependencies are built.
