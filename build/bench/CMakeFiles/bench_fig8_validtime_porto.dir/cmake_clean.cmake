file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_validtime_porto.dir/bench_fig8_validtime_porto.cc.o"
  "CMakeFiles/bench_fig8_validtime_porto.dir/bench_fig8_validtime_porto.cc.o.d"
  "bench_fig8_validtime_porto"
  "bench_fig8_validtime_porto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_validtime_porto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
